// Livenetwork spins up a small real network of concurrent peers over the
// in-memory transport: three sharers whose wants form a cycle (a live 3-way
// exchange ring) plus a free-rider, and shows the exchange mechanism at
// work: the ring commits, blocks flow with per-block validation, and the
// free-rider is served only from spare capacity.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livenetwork:", err)
		os.Exit(1)
	}
}

type directory struct {
	mu    sync.Mutex
	addrs map[barter.PeerID]string
}

func (d *directory) set(id barter.PeerID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = addr
}

func (d *directory) lookup(id barter.PeerID) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.addrs[id]
	return a, ok
}

func run() error {
	tr := barter.NewMemTransport()
	dir := &directory{addrs: make(map[barter.PeerID]string)}

	spawn := func(id barter.PeerID, share bool) (*barter.Node, error) {
		n, err := barter.NewNode(barter.NodeConfig{
			ID:           id,
			Transport:    tr,
			Lookup:       dir.lookup,
			Share:        share,
			UploadSlots:  1, // tight capacity: priority matters
			BlockSize:    2048,
			BlockDelay:   time.Millisecond,
			TickInterval: 5 * time.Millisecond,
			MaxRetries:   100,
		})
		if err != nil {
			return nil, err
		}
		dir.set(id, n.Addr())
		return n, nil
	}

	alice, err := spawn(1, true)
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := spawn(2, true)
	if err != nil {
		return err
	}
	defer bob.Close()
	carol, err := spawn(3, true)
	if err != nil {
		return err
	}
	defer carol.Close()
	rider, err := spawn(4, false)
	if err != nil {
		return err
	}
	defer rider.Close()

	// Content: each sharer holds the object its neighbor wants.
	const oAlice, oBob, oCarol = 100, 200, 300
	blob := func(seed byte) []byte {
		out := make([]byte, 400_000)
		for i := range out {
			out[i] = seed ^ byte(i)
		}
		return out
	}
	alice.AddObject(oAlice, blob(1))
	bob.AddObject(oBob, blob(2))
	carol.AddObject(oCarol, blob(3))

	fmt.Println("Topology: Carol wants Alice's object, Alice wants Bob's, Bob wants Carol's.")
	fmt.Println("The request chain closes into a live 3-way exchange ring.")
	fmt.Println()

	// The rider asks first — and gets preempted when the ring commits.
	riderCh := rider.Download(oAlice, map[barter.PeerID]string{1: mustAddr(dir, 1)})
	time.Sleep(30 * time.Millisecond)

	carolCh := carol.Download(oAlice, map[barter.PeerID]string{1: mustAddr(dir, 1)})
	time.Sleep(30 * time.Millisecond)
	aliceCh := alice.Download(oBob, map[barter.PeerID]string{2: mustAddr(dir, 2)})
	time.Sleep(30 * time.Millisecond)
	bobCh := bob.Download(oCarol, map[barter.PeerID]string{3: mustAddr(dir, 3)})

	start := time.Now()
	for name, ch := range map[string]<-chan error{"alice": aliceCh, "bob": bobCh, "carol": carolCh} {
		if err := barter.WaitDownload(ch, 60*time.Second); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%-5s completed its download after %v\n", name, time.Since(start).Round(time.Millisecond))
	}
	if err := barter.WaitDownload(riderCh, 60*time.Second); err != nil {
		return fmt.Errorf("rider: %w", err)
	}
	fmt.Printf("rider completed its download after %v (spare capacity only)\n", time.Since(start).Round(time.Millisecond))

	fmt.Println()
	for _, n := range []*barter.Node{alice, bob, carol} {
		st := n.Stats()
		fmt.Printf("peer %d: rings joined %d, exchange blocks sent %d, preemptions %d\n",
			n.ID(), st.RingsJoined, st.ExchangeBlocksSent, st.Preemptions)
	}
	return nil
}

func mustAddr(d *directory, id barter.PeerID) string {
	a, ok := d.lookup(id)
	if !ok {
		panic("peer not in directory")
	}
	return a
}
