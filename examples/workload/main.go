// Workload walks the temporal-workload layer end to end through the public
// barter surface: run a builtin demand spec open-loop in the simulator,
// record a live wave swarm as a JSON-lines trace, and replay that trace
// deterministically — the same TSV at any parallelism. See docs/WORKLOADS.md
// for the spec and trace formats field by field.
package main

import (
	"bytes"
	"fmt"
	"os"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "workload:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("Builtin workload specs: %v\n\n", barter.WorkloadBuiltins())

	// 1. Open-loop simulation: the flash builtin replaces the closed-loop
	// demand model with a quiet lead-in and a flash-crowd spike.
	fmt.Println("Simulating the flash builtin (open loop, quick world):")
	spec, err := barter.LoadWorkload("flash")
	if err != nil {
		return err
	}
	rep, err := barter.RunWorkload(spec, barter.ExperimentOptions{Seed: 7, Quick: true})
	if err != nil {
		return err
	}
	fmt.Print(rep.TSV())

	// 2. Record: drive a live wave swarm from the same spec and capture
	// every hold, arrival, request, and departure as a trace.
	fmt.Println()
	fmt.Println("Recording a 40-node live wave swarm driven by the same spec:")
	var trace bytes.Buffer
	res, err := barter.RunSwarm(barter.SwarmConfig{
		Scenario: barter.SwarmWave,
		Nodes:    40,
		Quick:    true,
		Seed:     7,
		Workload: spec,
		Record:   &trace,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.TSV())

	// 3. Replay: re-run the recorded demand in the simulator. The replayed
	// world's shape comes from the trace header; the TSV is byte-identical
	// at any Parallel for the same trace and options.
	tr, err := barter.ReadWorkloadTrace(&trace)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("Replaying the recorded trace (%d events) in the simulator:\n", len(tr.Events))
	one, err := barter.ReplayTrace(tr, barter.ExperimentOptions{Seed: 7, Quick: true, Parallel: 1, Replicas: 2})
	if err != nil {
		return err
	}
	eight, err := barter.ReplayTrace(tr, barter.ExperimentOptions{Seed: 7, Quick: true, Parallel: 8, Replicas: 2})
	if err != nil {
		return err
	}
	fmt.Print(one.TSV())
	if one.TSV() != eight.TSV() {
		return fmt.Errorf("replay diverged between -parallel 1 and -parallel 8")
	}
	fmt.Println()
	fmt.Println("Replay TSV is byte-identical at parallel 1 and parallel 8.")
	return nil
}
