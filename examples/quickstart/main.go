// Quickstart: run one scaled-down simulation under the 2-5-way exchange
// policy and print the headline result of the paper — sharing users download
// significantly faster than free-riders, while the no-exchange baseline
// treats both classes alike.
package main

import (
	"fmt"
	"os"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := barter.QuickConfig()
	cfg.UploadKbps = 40 // a loaded system, where incentives matter

	for _, policy := range []barter.Policy{barter.Policy2N, barter.PolicyNoExchange} {
		cfg.Policy = policy
		sim, err := barter.NewSimulation(cfg)
		if err != nil {
			return err
		}
		res, err := sim.Run()
		if err != nil {
			return err
		}
		fmt.Printf("policy %-12s  sharing %6.1f min   non-sharing %6.1f min   speedup %.2fx   exchange fraction %.2f\n",
			res.Policy,
			res.MeanDownloadMin(true),
			res.MeanDownloadMin(false),
			res.SpeedupSharingVsNonSharing(),
			res.ExchangeFraction)
	}
	fmt.Println("\nSharing pays under the exchange policy; the baseline is indifferent.")
	return nil
}
