// Creditcompare runs the incentive-mechanism shoot-out of the paper's
// related-work discussion (Section II) on one common workload: exchange
// priority versus plain FIFO, the eMule pairwise-credit queue rank, and the
// KaZaA self-reported participation level with free-riders running the
// well-known level hack. The output is the per-mechanism speedup of sharing
// users over free-riders.
package main

import (
	"fmt"
	"os"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "creditcompare:", err)
		os.Exit(1)
	}
}

func run() error {
	exp, ok := barter.ExperimentByID("ablation-credit")
	if !ok {
		return fmt.Errorf("ablation-credit experiment not registered")
	}
	fmt.Println(exp.Title)
	fmt.Println(exp.Description)
	fmt.Println()
	rep, err := exp.Run(barter.ExperimentOptions{
		Seed:  1,
		Quick: true,
		Progress: func(msg string) {
			fmt.Println("  " + msg)
		},
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(rep.TSV())
	fmt.Println("Reading: >1 means sharers are served faster than free-riders.")
	fmt.Println("Exchanges discriminate strongly; cheated self-reports do not.")
	return nil
}
