// Swarm runs two live-network scenarios back to back through the public
// barter.RunSwarm entry point: a flash crowd (one object, everyone fetches
// at once, completed sharers spread it epidemically) and a free-rider
// population (the live counterpart of the paper's Figure 12 — sharers,
// served with exchange priority, complete faster than free-riders).
package main

import (
	"fmt"
	"os"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swarm:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Flash crowd: 150 live peers fetch one object from a few seeds.")
	res, err := barter.RunSwarm(barter.SwarmConfig{
		Scenario: barter.SwarmFlashCrowd,
		Nodes:    150,
		Quick:    true,
		Seed:     42,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.TSV())

	fmt.Println()
	fmt.Println("Free-riders: 60 peers, 30% contribute nothing; watch the class gap.")
	res, err = barter.RunSwarm(barter.SwarmConfig{
		Scenario:      barter.SwarmFreerider,
		Nodes:         60,
		FreeriderFrac: 0.3,
		Quick:         true,
		Seed:          42,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.TSV())
	sharing, _ := res.ClassMean("sharing")
	riding, _ := res.ClassMean("non-sharing")
	fmt.Printf("\nsharers averaged %v per download, free-riders %v — the exchange\n", sharing.Round(0), riding.Round(0))
	fmt.Println("mechanism's incentive gap, reproduced on live connections.")
	return nil
}
