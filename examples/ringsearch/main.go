// Ringsearch reconstructs the paper's Figure 2 walkthrough: peer A's request
// tree contains requesters P2, P3, P11 at depth 2, P2's subtree reaches P9
// at depth 3, and P9 owns an object A wants — so A can initiate a 3-way
// exchange A -> P2 -> P9 -> A. The example prints the tree, runs the search
// under each policy, and shows the resulting rings.
package main

import (
	"fmt"

	"barter"
)

func main() {
	// P9 requested o9 from P2 (P9 itself has no requesters).
	p9 := barter.BuildTree(9, nil, barter.MaxRingDefault)
	// P2's queue: P7 wants o7, P9 wants o9 (carrying P9's empty tree).
	p2 := barter.BuildTree(2, []barter.IRQEntry{
		{Requester: 7, Object: 7},
		{Requester: 9, Object: 9, Attached: p9},
	}, barter.MaxRingDefault)
	// A's queue: P11 wants o11, P2 wants o2 (with P2's tree), P3 wants o3.
	tree := barter.BuildTree(1, []barter.IRQEntry{
		{Requester: 11, Object: 11},
		{Requester: 2, Object: 2, Attached: p2},
		{Requester: 3, Object: 3},
	}, barter.MaxRingDefault)

	fmt.Println("A's request tree (A = P1):")
	fmt.Println(tree)

	// A wants o100, provided by P9 (depth 3), and o200, provided by P3
	// (depth 2, a pairwise alternative).
	wants := []barter.Want{
		{Object: 100, Providers: map[barter.PeerID]bool{9: true}},
		{Object: 200, Providers: map[barter.PeerID]bool{3: true}},
	}
	fmt.Println("A wants o100 (provided by P9, depth 3) and o200 (provided by P3, depth 2).")
	fmt.Println()

	for _, pol := range []barter.Policy{barter.PolicyPairwise, barter.Policy2N, barter.PolicyN2} {
		ring, wi, stats, ok := barter.FindRing(tree, wants, pol)
		if !ok {
			fmt.Printf("%-10s found no ring\n", pol)
			continue
		}
		fmt.Printf("%-10s -> %d-way ring satisfying want o%d  (visited %d tree nodes)\n",
			pol, ring.Size(), wants[wi].Object, stats.NodesVisited)
		for i, m := range ring.Members {
			to := ring.Members[(i+1)%ring.Size()]
			fmt.Printf("             P%d uploads o%d to P%d\n", m.Peer, m.Gives, to.Peer)
		}
	}
}
