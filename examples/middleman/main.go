// Middleman demonstrates the Section III-B cheating scenario and its
// defense. Peer M sits between A and C, who could exchange directly: M
// relays A's blocks to C and C's blocks to A, obtaining high-priority
// service while contributing nothing. With the trusted mediator, both
// directions are encrypted, every block carries an encrypted origin and
// recipient header, and the audit refuses to release keys for blocks the
// claimed sender did not author — so the relay gains M nothing.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"

	"barter"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/protocol"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "middleman:", err)
		os.Exit(1)
	}
}

func run() error {
	tr := barter.NewMemTransport()

	// The content registry is the mediator's trustworthy digest source.
	const objX, objY barter.ObjectID = 1, 2
	blocksX := [][]byte{[]byte("x-block-0"), []byte("x-block-1")}
	registry := map[barter.ObjectID][][32]byte{
		objX: digests(blocksX),
	}
	oracle := func(o barter.ObjectID) ([][32]byte, bool) {
		d, ok := registry[o]
		return d, ok
	}
	med, err := barter.NewMediator(tr, "mem://mediator", oracle)
	if err != nil {
		return err
	}
	defer med.Close()

	const peerA, peerM, peerC barter.PeerID = 1, 2, 3
	fmt.Println("Scenario: A has x and wants y; C has y and wants x; M claims")
	fmt.Println("to have both and inserts itself into two exchanges.")
	fmt.Println()

	// A seals its blocks of x for its supposed exchange partner M, and
	// escrows its key for exchange 7.
	var keyA [16]byte
	copy(keyA[:], "secret-key-of-A.")
	sealed := make([]protocol.Block, len(blocksX))
	for i, b := range blocksX {
		enc, err := mediator.Seal(keyA, peerA, peerM, objX, uint32(i), b)
		if err != nil {
			return err
		}
		sealed[i] = protocol.Block{Object: objX, Index: uint32(i), Origin: peerA, Recipient: peerM, Encrypted: true, Payload: enc}
	}
	escrow, err := medclient.New(medclient.Config{Transport: tr, Seeds: []string{"mem://mediator"}})
	if err != nil {
		return err
	}
	defer escrow.Close()
	if err := escrow.Deposit(7, peerA, objX, keyA); err != nil {
		return err
	}
	// M also escrows a key, posing as the sender of x toward C.
	var keyM [16]byte
	copy(keyM[:], "key-of-cheater-M")
	if err := escrow.Deposit(7, peerM, objX, keyM); err != nil {
		return err
	}

	// M relays A's sealed blocks to C verbatim: it cannot decrypt them and
	// cannot rewrite the encrypted control headers.
	fmt.Println("M relays A's encrypted blocks of x to C and claims authorship.")
	clientC, err := medclient.New(medclient.Config{Transport: tr, Seeds: []string{"mem://mediator"}})
	if err != nil {
		return err
	}
	defer clientC.Close()
	if _, err := clientC.Verify(7, peerC, peerM, objX, sealed); err != nil {
		fmt.Printf("mediator verdict for C's audit of sender M: %v\n", err)
	} else {
		return fmt.Errorf("the middleman passed the audit — defense failed")
	}
	fmt.Printf("mediator has flagged M %d time(s)\n", med.Flagged(peerM))
	fmt.Println()

	// The honest direct exchange, by contrast, completes: A seals for C,
	// C's audit passes, the key is released, and C decrypts.
	fmt.Println("A and C now trade directly (exchange 8).")
	sealedForC := make([]protocol.Block, len(blocksX))
	for i, b := range blocksX {
		enc, err := mediator.Seal(keyA, peerA, peerC, objX, uint32(i), b)
		if err != nil {
			return err
		}
		sealedForC[i] = protocol.Block{Object: objX, Index: uint32(i), Origin: peerA, Recipient: peerC, Encrypted: true, Payload: enc}
	}
	if err := escrow.Deposit(8, peerA, objX, keyA); err != nil {
		return err
	}
	key, err := clientC.Verify(8, peerC, peerA, objX, sealedForC)
	if err != nil {
		return fmt.Errorf("honest exchange failed the audit: %w", err)
	}
	for i, sb := range sealedForC {
		_, _, plain, err := mediator.Open(key, objX, sb.Index, sb.Payload)
		if err != nil {
			return err
		}
		fmt.Printf("C decrypted block %d: %q\n", i, plain)
	}
	fmt.Println("\nDirect exchange verified and decrypted; the middleman got nothing.")
	_ = objY
	return nil
}

func digests(blocks [][]byte) [][32]byte {
	out := make([][32]byte, len(blocks))
	for i, b := range blocks {
		out[i] = sha256.Sum256(b)
	}
	return out
}
