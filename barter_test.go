package barter

import (
	"math"
	"testing"
	"time"
)

func TestConfigsValid(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default": DefaultConfig(),
		"paper":   PaperConfig(),
		"quick":   QuickConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s config invalid: %v", name, err)
		}
	}
}

func TestSimulationThroughFacade(t *testing.T) {
	cfg := QuickConfig()
	cfg.Duration = 10_000
	sim, err := NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedSharing == 0 {
		t.Fatal("facade run completed nothing")
	}
	if math.IsNaN(res.MeanDownloadMin(true)) {
		t.Fatal("no sharing download time")
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	if len(Experiments()) != 15 {
		t.Fatalf("got %d experiments, want 15", len(Experiments()))
	}
	if _, ok := ExperimentByID("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := ExperimentByID("bogus"); ok {
		t.Fatal("bogus experiment found")
	}
}

func TestRingSearchThroughFacade(t *testing.T) {
	tree := BuildTree(1, []IRQEntry{{Requester: 2, Object: 10}}, MaxRingDefault)
	wants := []Want{{Object: 20, Providers: map[PeerID]bool{2: true}}}
	ring, wi, _, ok := FindRing(tree, wants, PolicyPairwise)
	if !ok || wi != 0 || ring.Size() != 2 {
		t.Fatalf("facade ring search: ok=%v wi=%d ring=%v", ok, wi, ring)
	}
}

func TestLiveNodeThroughFacade(t *testing.T) {
	tr := NewMemTransport()
	server, err := NewNode(NodeConfig{ID: 1, Transport: tr, Share: true, BlockSize: 512,
		TickInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := NewNode(NodeConfig{ID: 2, Transport: tr, Share: true, BlockSize: 512,
		TickInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	server.AddObject(7, data)
	ch := client.Download(7, map[PeerID]string{1: server.Addr()})
	if err := WaitDownload(ch, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := client.Object(7); len(got) != len(data) {
		t.Fatalf("downloaded %d bytes, want %d", len(got), len(data))
	}
}

func TestMediatorThroughFacade(t *testing.T) {
	tr := NewMemTransport()
	med, err := NewMediator(tr, "mem://facade-mediator", func(ObjectID) ([][32]byte, bool) {
		return nil, false
	})
	if err != nil {
		t.Fatal(err)
	}
	med.Close()
}
