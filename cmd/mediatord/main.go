// Command mediatord runs the trusted mediator of Section III-B over TCP.
// Its digest oracle is seeded from a registry directory: every file in the
// directory named <objectID>.bin contributes that object's trusted block
// digests.
//
//	mediatord -listen 127.0.0.1:7100 -registry ./content -block 65536
//
// The mediator serves until interrupted, or for -duration if one is given.
package main

import (
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"barter"
)

// errUsage signals a flag-parsing failure whose specifics the FlagSet has
// already printed to stderr.
var errUsage = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mediatord:", err)
		os.Exit(1)
	}
}

// loadRegistry digests every <objectID>.bin file in dir at the given block
// size; other files are ignored.
func loadRegistry(dir string, block int) (map[barter.ObjectID][][32]byte, error) {
	if block <= 0 {
		return nil, fmt.Errorf("block size must be positive, got %d", block)
	}
	digests := make(map[barter.ObjectID][][32]byte)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".bin") {
			continue
		}
		objID, err := strconv.Atoi(strings.TrimSuffix(name, ".bin"))
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var digs [][32]byte
		for off := 0; off < len(data); off += block {
			end := min(off+block, len(data))
			digs = append(digs, sha256.Sum256(data[off:end]))
		}
		digests[barter.ObjectID(objID)] = digs
	}
	return digests, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mediatord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:7100", "listen address")
		registry = fs.String("registry", "", "directory of <objectID>.bin content files")
		block    = fs.Int("block", 64<<10, "block size in bytes (must match the peers')")
		duration = fs.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if *registry == "" {
		return fmt.Errorf("-registry is required (the mediator needs a trusted digest source)")
	}

	digests, err := loadRegistry(*registry, *block)
	if err != nil {
		return err
	}
	for objID, digs := range digests {
		fmt.Fprintf(stdout, "registered object %d: %d blocks\n", objID, len(digs))
	}

	med, err := barter.NewMediator(barter.NewTCPTransport(), *listen, func(o barter.ObjectID) ([][32]byte, bool) {
		d, ok := digests[o]
		return d, ok
	})
	if err != nil {
		return err
	}
	defer med.Close()
	fmt.Fprintf(stdout, "mediator listening on %s with %d registered objects\n", med.Addr(), len(digests))
	if *duration > 0 {
		time.Sleep(*duration)
		return nil
	}
	select {}
}
