// Command mediatord runs the trusted mediator of Section III-B over TCP —
// standalone, or as one shard of a horizontally sharded tier. Its digest
// oracle is seeded from a registry directory: every file in the directory
// named <objectID>.bin contributes that object's trusted block digests.
//
//	mediatord -listen 127.0.0.1:7100 -registry ./content -block 65536
//
// Sharded tier: run one process per shard, each told its position and the
// full member list (same order everywhere; "-" marks this process's own
// entry, substituted with -listen):
//
//	mediatord -listen 127.0.0.1:7100 -shard 0/2 -shardmap -,127.0.0.1:7101 -registry ./content
//	mediatord -listen 127.0.0.1:7101 -shard 1/2 -shardmap 127.0.0.1:7100,- -registry ./content
//
// Each shard serves (and redirects) only its slice of the object space,
// partitioned by consistent hashing, and answers shard-map requests so
// clients bootstrapped at any member discover the rest.
//
// With -data the shard keeps a write-ahead log of escrow deposits and
// cheater flags under the given directory and replays it at startup, so a
// restarted process forgets neither in-flight escrow nor detection history:
//
//	mediatord -listen 127.0.0.1:7100 -registry ./content -data ./medstate
//
// The mediator serves until SIGINT/SIGTERM (closing gracefully: open
// connections are torn down and their serve goroutines joined), or for
// -duration if one is given.
package main

import (
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"barter"
)

// errUsage signals a flag-parsing failure whose specifics the FlagSet has
// already printed to stderr.
var errUsage = errors.New("invalid arguments")

// notifySignals is swapped by tests to inject signals without raising them
// process-wide.
var notifySignals = func(ch chan<- os.Signal) {
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mediatord:", err)
		os.Exit(1)
	}
}

// parseShard parses "i/N" into a shard position.
func parseShard(s string) (index, count int, err error) {
	idx, rest, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard wants i/N, got %q", s)
	}
	index, err = strconv.Atoi(idx)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard index %q: %w", idx, err)
	}
	count, err = strconv.Atoi(rest)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard count %q: %w", rest, err)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard %q out of range", s)
	}
	return index, count, nil
}

// loadRegistry digests every <objectID>.bin file in dir at the given block
// size; other files are ignored.
func loadRegistry(dir string, block int) (map[barter.ObjectID][][32]byte, error) {
	if block <= 0 {
		return nil, fmt.Errorf("block size must be positive, got %d", block)
	}
	digests := make(map[barter.ObjectID][][32]byte)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".bin") {
			continue
		}
		objID, err := strconv.Atoi(strings.TrimSuffix(name, ".bin"))
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var digs [][32]byte
		for off := 0; off < len(data); off += block {
			end := min(off+block, len(data))
			digs = append(digs, sha256.Sum256(data[off:end]))
		}
		digests[barter.ObjectID(objID)] = digs
	}
	return digests, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mediatord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:7100", "listen address")
		registry = fs.String("registry", "", "directory of <objectID>.bin content files")
		block    = fs.Int("block", 64<<10, "block size in bytes (must match the peers')")
		duration = fs.Duration("duration", 0, "exit after this long (0 = run until interrupted)")
		shard    = fs.String("shard", "", `shard position "i/N" within a mediator tier (empty = standalone)`)
		shardmap = fs.String("shardmap", "", `comma-separated member addresses in index order; "-" marks this process (required with -shard when N > 1)`)
		dataDir  = fs.String("data", "", "write-ahead-log directory: escrow deposits and flags replay across restarts (empty = in-memory only)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}
	if *registry == "" {
		return fmt.Errorf("-registry is required (the mediator needs a trusted digest source)")
	}

	var opts barter.MediatorShardOpts
	opts.DataDir = *dataDir
	// selfAddr carries this shard's bound address into the topology map: a
	// ":0" listen would otherwise advertise an undialable port 0 as its own
	// entry. Stored once the listener exists; until then the raw -listen
	// value stands in.
	var selfAddr atomic.Value
	if *shard != "" {
		index, count, err := parseShard(*shard)
		if err != nil {
			return err
		}
		opts.Index, opts.Count = index, count
		if count > 1 {
			members := strings.Split(*shardmap, ",")
			if len(members) != count {
				return fmt.Errorf("-shardmap names %d members, -shard says %d", len(members), count)
			}
			for i, m := range members {
				if m == "-" {
					members[i] = *listen
				}
			}
			if members[index] != *listen {
				return fmt.Errorf("-shardmap entry %d is %q, but this process listens on %q", index, members[index], *listen)
			}
			// A static deployment: the topology is fixed at launch, except
			// the self entry, which tracks the bound address.
			selfIdx := index
			opts.Map = func() (uint64, []string) {
				out := append([]string(nil), members...)
				if a, ok := selfAddr.Load().(string); ok {
					out[selfIdx] = a
				}
				return 1, out
			}
		}
	}

	digests, err := loadRegistry(*registry, *block)
	if err != nil {
		return err
	}
	for objID, digs := range digests {
		fmt.Fprintf(stdout, "registered object %d: %d blocks\n", objID, len(digs))
	}

	oracle := func(o barter.ObjectID) ([][32]byte, bool) {
		d, ok := digests[o]
		return d, ok
	}
	med, err := barter.NewMediatorShard(barter.NewTCPTransport(), *listen, oracle, opts)
	if err != nil {
		return err
	}
	defer med.Close()
	selfAddr.Store(med.Addr())
	if opts.Count > 1 {
		fmt.Fprintf(stdout, "mediator shard %d/%d listening on %s with %d registered objects\n",
			opts.Index, opts.Count, med.Addr(), len(digests))
	} else {
		fmt.Fprintf(stdout, "mediator listening on %s with %d registered objects\n", med.Addr(), len(digests))
	}

	sigs := make(chan os.Signal, 1)
	notifySignals(sigs)
	var expired <-chan time.Time
	if *duration > 0 {
		t := time.NewTimer(*duration)
		defer t.Stop()
		expired = t.C
	}
	select {
	case sig := <-sigs:
		// Graceful: the deferred Close tears down open connections and
		// joins every serve goroutine instead of dying mid-audit.
		fmt.Fprintf(stdout, "received %v; shutting down\n", sig)
	case <-expired:
	}
	return nil
}
