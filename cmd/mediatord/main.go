// Command mediatord runs the trusted mediator of Section III-B over TCP.
// Its digest oracle is seeded from a registry directory: every file in the
// directory named <objectID>.bin contributes that object's trusted block
// digests.
//
//	mediatord -listen 127.0.0.1:7100 -registry ./content -block 65536
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mediatord:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", "127.0.0.1:7100", "listen address")
		registry = flag.String("registry", "", "directory of <objectID>.bin content files")
		block    = flag.Int("block", 64<<10, "block size in bytes (must match the peers')")
	)
	flag.Parse()
	if *registry == "" {
		return fmt.Errorf("-registry is required (the mediator needs a trusted digest source)")
	}

	digests := make(map[barter.ObjectID][][32]byte)
	entries, err := os.ReadDir(*registry)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".bin") {
			continue
		}
		objID, err := strconv.Atoi(strings.TrimSuffix(name, ".bin"))
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*registry, name))
		if err != nil {
			return err
		}
		var digs [][32]byte
		for off := 0; off < len(data); off += *block {
			end := off + *block
			if end > len(data) {
				end = len(data)
			}
			digs = append(digs, sha256.Sum256(data[off:end]))
		}
		digests[barter.ObjectID(objID)] = digs
		fmt.Printf("registered object %d: %d blocks\n", objID, len(digs))
	}

	med, err := barter.NewMediator(barter.NewTCPTransport(), *listen, func(o barter.ObjectID) ([][32]byte, bool) {
		d, ok := digests[o]
		return d, ok
	})
	if err != nil {
		return err
	}
	defer med.Close()
	fmt.Printf("mediator listening on %s with %d registered objects\n", med.Addr(), len(digests))
	select {}
}
