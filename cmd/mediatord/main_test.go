package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRegistryRequired(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Fatal("missing -registry accepted")
	}
}

func TestRegistryMissingDirErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-registry", "/does/not/exist"}, &out, &errOut); err == nil {
		t.Fatal("nonexistent registry accepted")
	}
}

func TestLoadRegistry(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "7.bin"), make([]byte, 2500), 0o644); err != nil {
		t.Fatal(err)
	}
	// Ignored: wrong suffix, non-numeric name.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "abc.bin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	digests, err := loadRegistry(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 1 {
		t.Fatalf("registered %d objects, want 1", len(digests))
	}
	if got := len(digests[7]); got != 3 { // 2500 bytes / 1000 per block
		t.Fatalf("object 7 has %d blocks, want 3", got)
	}
	if _, err := loadRegistry(dir, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

// TestServeDuration boots a real mediator from a registry over TCP and
// exits after -duration.
func TestServeDuration(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "42.bin"), make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-registry", dir,
		"-block", "1024",
		"-duration", "50ms",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "registered object 42: 4 blocks") {
		t.Fatalf("output:\n%s", got)
	}
	if !strings.Contains(got, "mediator listening on 127.0.0.1:") {
		t.Fatalf("output:\n%s", got)
	}
}
