package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"barter"
	"barter/internal/mediator"
	"barter/internal/protocol"
)

func TestBadFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRegistryRequired(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Fatal("missing -registry accepted")
	}
}

func TestRegistryMissingDirErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-registry", "/does/not/exist"}, &out, &errOut); err == nil {
		t.Fatal("nonexistent registry accepted")
	}
}

func TestLoadRegistry(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "7.bin"), make([]byte, 2500), 0o644); err != nil {
		t.Fatal(err)
	}
	// Ignored: wrong suffix, non-numeric name.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "abc.bin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	digests, err := loadRegistry(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 1 {
		t.Fatalf("registered %d objects, want 1", len(digests))
	}
	if got := len(digests[7]); got != 3 { // 2500 bytes / 1000 per block
		t.Fatalf("object 7 has %d blocks, want 3", got)
	}
	if _, err := loadRegistry(dir, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

// TestServeDuration boots a real mediator from a registry over TCP and
// exits after -duration.
func TestServeDuration(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "42.bin"), make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	err := run([]string{
		"-listen", "127.0.0.1:0",
		"-registry", dir,
		"-block", "1024",
		"-duration", "50ms",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "registered object 42: 4 blocks") {
		t.Fatalf("output:\n%s", got)
	}
	if !strings.Contains(got, "mediator listening on 127.0.0.1:") {
		t.Fatalf("output:\n%s", got)
	}
}

// registryDir builds a one-object registry for smoke runs.
func registryDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "1.bin"), make([]byte, 2048), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestGracefulSignalShutdown: a mediatord with no -duration must serve
// until SIGINT/SIGTERM and then exit cleanly through Close, not die
// mid-connection.
func TestGracefulSignalShutdown(t *testing.T) {
	sigs := make(chan chan<- os.Signal, 1)
	old := notifySignals
	notifySignals = func(ch chan<- os.Signal) { sigs <- ch }
	defer func() { notifySignals = old }()

	var out, errOut strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-registry", registryDir(t)}, &out, &errOut)
	}()
	select {
	case ch := <-sigs:
		ch <- os.Interrupt
	case <-time.After(5 * time.Second):
		t.Fatal("run never registered a signal handler")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGINT: %v\n%s", err, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit on SIGINT")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("no graceful-shutdown message:\n%s", out.String())
	}
}

// TestShardFlagParsing covers the i/N parser's edges.
func TestShardFlagParsing(t *testing.T) {
	if i, n, err := parseShard("2/4"); err != nil || i != 2 || n != 4 {
		t.Fatalf("parseShard(2/4) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/4", "1/b", "1/0"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Fatalf("parseShard(%q) accepted", bad)
		}
	}
}

// TestShardModeSmoke boots one shard of a declared 2-shard tier over real
// TCP and lets -duration expire.
func TestShardModeSmoke(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{
		"-listen", "127.0.0.1:7981",
		"-shard", "0/2",
		"-shardmap", "-,127.0.0.1:7982",
		"-registry", registryDir(t),
		"-block", "1024",
		"-duration", "50ms",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "mediator shard 0/2 listening on") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestShardMapValidation: a member list that disagrees with -shard, or a
// self entry that contradicts -listen, must be refused.
func TestShardMapValidation(t *testing.T) {
	dir := registryDir(t)
	var out, errOut strings.Builder
	if err := run([]string{"-listen", "127.0.0.1:0", "-shard", "0/2", "-shardmap", "-", "-registry", dir}, &out, &errOut); err == nil {
		t.Fatal("short shardmap accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-shard", "0/2", "-shardmap", "127.0.0.1:9,127.0.0.1:10", "-registry", dir}, &out, &errOut); err == nil {
		t.Fatal("shardmap contradicting -listen accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-shard", "9/2", "-shardmap", "-,-", "-registry", dir}, &out, &errOut); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// syncBuf is a concurrency-safe output sink for tests that read a running
// daemon's output.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestShardMapAdvertisesBoundAddr: a shard listening on ":0" must advertise
// its real bound port in the topology map, not the literal flag value.
func TestShardMapAdvertisesBoundAddr(t *testing.T) {
	var out, errOut syncBuf
	dir := registryDir(t) // on the test goroutine: TempDir cleanup registration
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-shard", "0/2",
			"-shardmap", "-,127.0.0.1:7993",
			"-registry", dir,
			"-duration", "3s",
		}, &out, &errOut)
	}()
	// Wait for the daemon to print its bound address.
	var addr string
	for i := 0; i < 100; i++ {
		if m := strings.SplitN(out.String(), "listening on ", 2); len(m) == 2 {
			addr = strings.Fields(m[1])[0]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("no bound address printed: %q", out.String())
	}
	cl, err := barter.NewMedClient(barter.MedClientConfig{Transport: barter.NewTCPTransport(), Seeds: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, addrs, err := cl.Map()
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 2 || addrs[0] != addr {
		t.Fatalf("shard map advertises %v, want self entry %s", addrs, addr)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
}

// bootDaemon starts a mediatord in the background and waits for its bound
// address. The caller stops it by sending on the returned signal channel
// and then receiving from done.
func bootDaemon(t *testing.T, args []string, out *syncBuf, sigs chan chan<- os.Signal) (addr string, done chan error) {
	t.Helper()
	var errOut syncBuf
	done = make(chan error, 1)
	go func() { done <- run(args, out, &errOut) }()
	for i := 0; i < 250 && addr == ""; i++ {
		if m := strings.SplitN(out.String(), "listening on ", 2); len(m) == 2 {
			addr = strings.Fields(m[1])[0]
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never printed a bound address:\n%s", out.String())
	}
	return addr, done
}

// TestRestartRecoversEscrow is the process-level durability smoke test: a
// mediatord run with -data escrows a key and is interrupted; a second
// process over the same directory must release that key to a verifying
// receiver with no re-deposit — the restart forgot nothing.
func TestRestartRecoversEscrow(t *testing.T) {
	sigs := make(chan chan<- os.Signal, 1)
	old := notifySignals
	notifySignals = func(ch chan<- os.Signal) { sigs <- ch }
	defer func() { notifySignals = old }()

	reg := registryDir(t) // object 1: 2048 zero bytes, one 64 KiB block
	data := t.TempDir()
	args := []string{"-listen", "127.0.0.1:0", "-registry", reg, "-data", data}

	stop := func(t *testing.T, done chan error) {
		t.Helper()
		select {
		case ch := <-sigs:
			ch <- os.Interrupt
		case <-time.After(5 * time.Second):
			t.Fatal("daemon never registered a signal handler")
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not exit on SIGINT")
		}
	}

	const sender, receiver barter.PeerID = 2, 3
	const obj barter.ObjectID = 1
	var key [16]byte
	copy(key[:], "restart-key-....")

	var out1 syncBuf
	addr, done := bootDaemon(t, args, &out1, sigs)
	cl, err := barter.NewMedClient(barter.MedClientConfig{Transport: barter.NewTCPTransport(), Seeds: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Deposit(77, sender, obj, key); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	cl.Close()
	stop(t, done)

	var out2 syncBuf
	addr, done = bootDaemon(t, args, &out2, sigs)
	cl, err = barter.NewMedClient(barter.MedClientConfig{Transport: barter.NewTCPTransport(), Seeds: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sealed, err := mediator.Seal(key, sender, receiver, obj, 0, make([]byte, 2048))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Verify(77, receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
	if err != nil {
		t.Fatalf("verify against the restarted daemon: %v", err)
	}
	if got != key {
		t.Fatal("restarted daemon released the wrong key")
	}
	stop(t, done)
}
