package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb strings.Builder
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestListPrintsEveryExperiment(t *testing.T) {
	out, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table2", "fig4", "fig12", "ablation-search"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list output missing %q:\n%s", id, out)
		}
	}
}

func TestUnknownExperimentErrors(t *testing.T) {
	_, _, err := runCmd(t, "-experiment", "fig99")
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("want error naming fig99, got %v", err)
	}
}

func TestNoActionErrors(t *testing.T) {
	_, stderr, err := runCmd(t)
	if err == nil {
		t.Fatal("no action did not error")
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-experiment") {
		t.Fatalf("usage not printed to stderr:\n%s", stderr)
	}
}

func TestBadFlagErrors(t *testing.T) {
	_, _, err := runCmd(t, "-no-such-flag")
	if err == nil {
		t.Fatal("undefined flag accepted")
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	_, stderr, err := runCmd(t, "-h")
	if err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Fatalf("-h did not print usage:\n%s", stderr)
	}
}

func TestTable2Runs(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "table2", "-quick", "-parallel", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "number of peers\t30") {
		t.Fatalf("quick table2 missing peer count:\n%s", out)
	}
	seq, _, err := runCmd(t, "-experiment", "table2", "-quick", "-parallel", "1")
	if err != nil {
		t.Fatal(err)
	}
	if out != seq {
		t.Fatalf("table2 diverged across -parallel:\n%s\nvs\n%s", out, seq)
	}
}

// TestParallelMatchesSequential is the CLI-level determinism contract:
// -parallel changes wall time only, never bytes.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick experiment skipped in -short; table2 path covered above")
	}
	exp := "ablation-search" // the smallest grid that still fans out
	seq, _, err := runCmd(t, "-experiment", exp, "-quick", "-parallel", "1")
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := runCmd(t, "-experiment", exp, "-quick", "-parallel", "4")
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("output diverged between -parallel 1 and -parallel 4:\n%s\nvs\n%s", seq, par)
	}
	if !strings.Contains(seq, "# Ablation: search budget") {
		t.Fatalf("unexpected output:\n%s", seq)
	}
}

func TestVerboseEmitsProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick experiment skipped in -short")
	}
	_, stderr, err := runCmd(t, "-experiment", "ablation-search", "-quick", "-v")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "ablation-search") {
		t.Fatalf("no progress lines on stderr:\n%s", stderr)
	}
}
