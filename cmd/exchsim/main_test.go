package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errb strings.Builder
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestListPrintsEveryExperiment(t *testing.T) {
	out, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table2", "fig4", "fig12", "ablation-search"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list output missing %q:\n%s", id, out)
		}
	}
}

func TestUnknownExperimentErrors(t *testing.T) {
	_, _, err := runCmd(t, "-experiment", "fig99")
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("want error naming fig99, got %v", err)
	}
}

func TestNoActionErrors(t *testing.T) {
	_, stderr, err := runCmd(t)
	if err == nil {
		t.Fatal("no action did not error")
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-experiment") {
		t.Fatalf("usage not printed to stderr:\n%s", stderr)
	}
}

func TestBadFlagErrors(t *testing.T) {
	_, _, err := runCmd(t, "-no-such-flag")
	if err == nil {
		t.Fatal("undefined flag accepted")
	}
}

func TestHelpIsNotAnError(t *testing.T) {
	_, stderr, err := runCmd(t, "-h")
	if err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Fatalf("-h did not print usage:\n%s", stderr)
	}
}

func TestTable2Runs(t *testing.T) {
	out, _, err := runCmd(t, "-experiment", "table2", "-quick", "-parallel", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "number of peers\t30") {
		t.Fatalf("quick table2 missing peer count:\n%s", out)
	}
	seq, _, err := runCmd(t, "-experiment", "table2", "-quick", "-parallel", "1")
	if err != nil {
		t.Fatal(err)
	}
	if out != seq {
		t.Fatalf("table2 diverged across -parallel:\n%s\nvs\n%s", out, seq)
	}
}

// TestParallelMatchesSequential is the CLI-level determinism contract:
// -parallel changes wall time only, never bytes.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick experiment skipped in -short; table2 path covered above")
	}
	exp := "ablation-search" // the smallest grid that still fans out
	seq, _, err := runCmd(t, "-experiment", exp, "-quick", "-parallel", "1")
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := runCmd(t, "-experiment", exp, "-quick", "-parallel", "4")
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("output diverged between -parallel 1 and -parallel 4:\n%s\nvs\n%s", seq, par)
	}
	if !strings.Contains(seq, "# Ablation: search budget") {
		t.Fatalf("unexpected output:\n%s", seq)
	}
}

func TestVerboseEmitsProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick experiment skipped in -short")
	}
	_, stderr, err := runCmd(t, "-experiment", "ablation-search", "-quick", "-v")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "ablation-search") {
		t.Fatalf("no progress lines on stderr:\n%s", stderr)
	}
}

// traceFile writes a minimal valid version-1 trace to a temp file: three
// peers, one held object, two requests inside a short session window.
func traceFile(t *testing.T) string {
	t.Helper()
	lines := []string{
		`{"kind":"header","version":1,"scenario":"test","nodes":3,"objects":2,"horizon":100}`,
		`{"kind":"hold","t":0,"peer":1,"obj":1}`,
		`{"kind":"request","t":5,"peer":2,"obj":1}`,
		`{"kind":"request","t":9,"peer":3,"obj":1}`,
	}
	path := filepath.Join(t.TempDir(), "test.trace")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWorkloadFlagRunsBuiltin: -workload with a builtin name produces the
// open-loop metric table, byte-identical across -parallel.
func TestWorkloadFlagRunsBuiltin(t *testing.T) {
	seq, _, err := runCmd(t, "-workload", "flash", "-quick", "-replicas", "2", "-parallel", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(seq, "completed downloads") {
		t.Fatalf("workload TSV missing completed-downloads series:\n%s", seq)
	}
	par, _, err := runCmd(t, "-workload", "flash", "-quick", "-replicas", "2", "-parallel", "8")
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("-workload output diverged across -parallel:\n%s\nvs\n%s", seq, par)
	}
}

// TestTraceFlagReplaysFile: -trace replays a recorded file and labels the
// table with the trace's scenario and event count.
func TestTraceFlagReplaysFile(t *testing.T) {
	out, _, err := runCmd(t, "-trace", traceFile(t), "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "replay test") || !strings.Contains(out, "completed downloads") {
		t.Fatalf("replay TSV unexpected:\n%s", out)
	}
}

// TestWorkloadTraceMutuallyExclusive: the two demand sources cannot be
// combined in one invocation.
func TestWorkloadTraceMutuallyExclusive(t *testing.T) {
	_, _, err := runCmd(t, "-workload", "flash", "-trace", "x.trace")
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
}

// TestUnknownWorkloadNameErrors: neither a file nor a builtin.
func TestUnknownWorkloadNameErrors(t *testing.T) {
	_, _, err := runCmd(t, "-workload", "no-such-spec")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestMissingTraceFileErrors surfaces the open error for a bad -trace path.
func TestMissingTraceFileErrors(t *testing.T) {
	_, _, err := runCmd(t, "-trace", filepath.Join(t.TempDir(), "absent.trace"))
	if err == nil {
		t.Fatal("missing trace file accepted")
	}
}
