// Command exchsim regenerates the paper's tables and figures.
//
// Usage:
//
//	exchsim -list
//	exchsim -experiment fig4 [-quick] [-seed 7] [-parallel 8] [-replicas 5] [-shards 4] [-v] [-perf]
//	exchsim -all [-quick]
//	exchsim -workload flash [-quick] [-replicas 5]
//	exchsim -trace run.trace [-quick] [-parallel 8]
//
// -workload runs one open-loop temporal workload spec (a builtin name —
// constant, diurnal, flash, waves — or a path to a JSON spec file) instead
// of a figure. -trace replays a recorded JSON-lines trace, typically an
// exchswarm -record capture; the replayed world's shape comes from the
// trace header. Both are documented field by field in docs/WORKLOADS.md.
//
// Output is tab-separated: one column per plotted series, one row per x
// value, matching the corresponding figure of the paper. Grid points run in
// parallel over -parallel workers (default: one per CPU); output is
// byte-identical at any worker count for the same seed. -replicas N runs
// every point N times under distinct derived seeds and adds mean ± 95% CI
// columns to the swept figures. -shards N partitions every run's peers
// across N parallel event-loop domains (see docs/DETERMINISM.md): output
// depends on the shard count but, for a fixed count, on nothing else.
// Runs whose config is fundamentally single-loop (credit rankers, trace
// replay) fall back to the single-threaded engine, so -shards composes
// with -all and the credit-baseline figures.
//
// -perf appends an engine performance report to stderr after the runs:
// events/sec of wall time, ring-search traversal effort, and allocation
// load. The counters are published once per completed run, outside the hot
// path, so the report never perturbs the deterministic TSV output.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"barter"
	"barter/internal/perfstats"
)

// errUsage signals a flag-parsing failure whose specifics the FlagSet has
// already printed to stderr, so main need not repeat them.
var errUsage = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "exchsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("exchsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list available experiments")
		expID    = fs.String("experiment", "", "experiment to run (e.g. fig4)")
		all      = fs.Bool("all", false, "run every experiment")
		quick    = fs.Bool("quick", false, "run the scaled-down world (seconds instead of minutes)")
		seed     = fs.Uint64("seed", 1, "random seed")
		parallel = fs.Int("parallel", 0, "worker pool size for grid points (0 = one per CPU)")
		replicas = fs.Int("replicas", 1, "replications per grid point (adds mean ± 95% CI columns)")
		shards   = fs.Int("shards", 0, "event-loop domains per run (0 or 1 = single-threaded engine)")
		verbose  = fs.Bool("v", false, "print per-run progress to stderr")
		perf     = fs.Bool("perf", false, "print an engine performance report to stderr after the runs")
		wl       = fs.String("workload", "", "run an open-loop workload spec: a builtin name or a JSON spec file")
		trace    = fs.String("trace", "", "replay a recorded JSON-lines trace file (e.g. from exchswarm -record)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	if *list {
		for _, e := range barter.Experiments() {
			fmt.Fprintf(stdout, "%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}

	opts := barter.ExperimentOptions{
		Seed:     *seed,
		Quick:    *quick,
		Parallel: *parallel,
		Replicas: *replicas,
		Shards:   *shards,
	}
	if *verbose {
		opts.Progress = func(msg string) { fmt.Fprintln(stderr, msg) }
	}
	if *perf {
		timer := perfstats.StartTimer()
		defer func() { fmt.Fprint(stderr, timer.Report()) }()
	}

	switch {
	case *wl != "" && *trace != "":
		return fmt.Errorf("-workload and -trace are mutually exclusive")
	case *wl != "":
		spec, err := barter.LoadWorkload(*wl)
		if err != nil {
			return err
		}
		rep, err := barter.RunWorkload(spec, opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, rep.TSV())
		return nil
	case *trace != "":
		f, err := os.Open(*trace)
		if err != nil {
			return err
		}
		tr, err := barter.ReadWorkloadTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		rep, err := barter.ReplayTrace(tr, opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, rep.TSV())
		return nil
	case *all:
		for _, e := range barter.Experiments() {
			fmt.Fprintf(stdout, "==== %s: %s ====\n", e.ID, e.Title)
			rep, err := e.Run(opts)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Fprintln(stdout, rep.TSV())
		}
		return nil
	case *expID != "":
		e, ok := barter.ExperimentByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *expID)
		}
		rep, err := e.Run(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, rep.TSV())
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -experiment, -all, -workload, or -trace")
	}
}
