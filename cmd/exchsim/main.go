// Command exchsim regenerates the paper's tables and figures.
//
// Usage:
//
//	exchsim -list
//	exchsim -experiment fig4 [-quick] [-seed 7] [-v]
//	exchsim -all [-quick]
//
// Output is tab-separated: one column per plotted series, one row per x
// value, matching the corresponding figure of the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exchsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		expID   = flag.String("experiment", "", "experiment to run (e.g. fig4)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "run the scaled-down world (seconds instead of minutes)")
		seed    = flag.Uint64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print per-run progress to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range barter.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}

	opts := barter.ExperimentOptions{Seed: *seed, Quick: *quick}
	if *verbose {
		opts.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	switch {
	case *all:
		for _, e := range barter.Experiments() {
			fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
			rep, err := e.Run(opts)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Println(rep.TSV())
		}
		return nil
	case *expID != "":
		e, ok := barter.ExperimentByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *expID)
		}
		rep, err := e.Run(opts)
		if err != nil {
			return err
		}
		fmt.Print(rep.TSV())
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -list, -experiment, or -all")
	}
}
