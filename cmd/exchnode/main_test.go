package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"barter"
)

func TestBadFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestParseDirectory(t *testing.T) {
	dir, err := parseDirectory("1=127.0.0.1:7001,2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if dir[1] != "127.0.0.1:7001" || dir[2] != "127.0.0.1:7002" {
		t.Fatalf("parsed %v", dir)
	}
	if _, err := parseDirectory("nonsense"); err == nil {
		t.Fatal("missing '=' accepted")
	}
	if _, err := parseDirectory("x=addr"); err == nil {
		t.Fatal("non-numeric peer id accepted")
	}
}

func TestBadEntriesError(t *testing.T) {
	cases := [][]string{
		{"-peers", "broken"},
		{"-serve", "broken"},
		{"-serve", "x=/nope"},
		{"-serve", "1=/does/not/exist"},
		{"-fetch", "broken"},
		{"-fetch", "x=1"},
		{"-fetch", "1=x"},
		{"-fetch", "1=99"}, // provider not in directory
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if err := run(args, &out, &errOut); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestServeOnlyDuration: a serve-only node with -duration exits cleanly.
func TestServeOnlyDuration(t *testing.T) {
	blob := filepath.Join(t.TempDir(), "obj.bin")
	if err := os.WriteFile(blob, []byte("hello exchnode"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	err := run([]string{
		"-id", "1", "-listen", "127.0.0.1:0",
		"-serve", "100=" + blob,
		"-duration", "50ms",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("serve-only run: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "serving object 100") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestFetchOverTCP drives the full fetch path: a library node serves over
// real sockets, and exchnode's run() downloads from it and exits.
func TestFetchOverTCP(t *testing.T) {
	server, err := barter.NewNode(barter.NodeConfig{
		ID:        1,
		Addr:      "127.0.0.1:0",
		Transport: barter.NewTCPTransport(),
		Share:     true,
		BlockSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	data := make([]byte, 10_000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	server.AddObject(100, data)

	var out, errOut strings.Builder
	err = run([]string{
		"-id", "2", "-listen", "127.0.0.1:0",
		"-peers", "1=" + server.Addr(),
		"-fetch", "100=1",
		"-timeout", "30s",
		"-deadline", "30s",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("fetch run: %v\nstdout:\n%s\nstderr:\n%s", err, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "fetched object 100 (10000 bytes)") {
		t.Fatalf("output:\n%s", out.String())
	}
	if server.Stats().BlocksSent == 0 {
		t.Fatal("server sent no blocks")
	}
}
