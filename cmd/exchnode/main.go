// Command exchnode runs a live exchange peer over TCP.
//
// A tiny static directory maps peer ids to addresses so small hand-built
// networks can form rings (the paper treats lookup as an external service):
//
//	exchnode -id 1 -listen 127.0.0.1:7001 -share \
//	    -peers 2=127.0.0.1:7002,3=127.0.0.1:7003 \
//	    -serve 100=./alice.bin -fetch 200=2 -timeout 60s
//
// serves object 100 from a local file and downloads object 200 from peer 2,
// exiting when every fetch completes. Without -fetch the node serves until
// interrupted, or for -duration if one is given. -deadline arms per-I/O
// read/write deadlines so a hung peer cannot wedge a connection forever.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"barter"
)

// errUsage signals a flag-parsing failure whose specifics the FlagSet has
// already printed to stderr.
var errUsage = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "exchnode:", err)
		os.Exit(1)
	}
}

// parseDirectory decodes an "id=addr,id=addr" peer directory.
func parseDirectory(spec string) (map[barter.PeerID]string, error) {
	dir := make(map[barter.PeerID]string)
	if spec == "" {
		return dir, nil
	}
	for _, ent := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("bad -peers entry %q", ent)
		}
		pid, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %w", k, err)
		}
		dir[barter.PeerID(pid)] = v
	}
	return dir, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("exchnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id       = fs.Int("id", 1, "peer id")
		listen   = fs.String("listen", "127.0.0.1:0", "listen address")
		share    = fs.Bool("share", true, "serve content (false = free-ride)")
		peers    = fs.String("peers", "", "directory: id=addr,id=addr,...")
		serve    = fs.String("serve", "", "objects to serve: objID=path,...")
		fetch    = fs.String("fetch", "", "objects to fetch: objID=peerID,...")
		slots    = fs.Int("slots", 4, "upload slots")
		block    = fs.Int("block", 64<<10, "block size in bytes")
		timeout  = fs.Duration("timeout", 120*time.Second, "per-fetch timeout")
		duration = fs.Duration("duration", 0, "serve-only mode: exit after this long (0 = run until interrupted)")
		deadline = fs.Duration("deadline", 0, "per-I/O read/write deadline on TCP connections (0 = none)")
		verbose  = fs.Bool("v", false, "log protocol activity")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	dir, err := parseDirectory(*peers)
	if err != nil {
		return err
	}

	cfg := barter.NodeConfig{
		ID:          barter.PeerID(*id),
		Addr:        *listen,
		Transport:   barter.NewTCPTransportDeadlines(*deadline, *deadline),
		Share:       *share,
		UploadSlots: *slots,
		BlockSize:   *block,
		Lookup: func(p barter.PeerID) (string, bool) {
			a, ok := dir[p]
			return a, ok
		},
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	n, err := barter.NewNode(cfg)
	if err != nil {
		return err
	}
	defer n.Close()
	fmt.Fprintf(stdout, "peer %d listening on %s (share=%v)\n", *id, n.Addr(), *share)

	if *serve != "" {
		for _, ent := range strings.Split(*serve, ",") {
			k, path, ok := strings.Cut(ent, "=")
			if !ok {
				return fmt.Errorf("bad -serve entry %q", ent)
			}
			objID, err := strconv.Atoi(k)
			if err != nil {
				return fmt.Errorf("bad object id %q: %w", k, err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			n.AddObject(barter.ObjectID(objID), data)
			fmt.Fprintf(stdout, "serving object %d (%d bytes) from %s\n", objID, len(data), path)
		}
	}

	if *fetch == "" {
		// Serve-only mode: run until interrupted, or for -duration.
		if *duration > 0 {
			time.Sleep(*duration)
			return nil
		}
		select {}
	}
	type pending struct {
		obj barter.ObjectID
		ch  <-chan error
	}
	var fetches []pending
	for _, ent := range strings.Split(*fetch, ",") {
		k, v, ok := strings.Cut(ent, "=")
		if !ok {
			return fmt.Errorf("bad -fetch entry %q", ent)
		}
		objID, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("bad object id %q: %w", k, err)
		}
		pid, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad provider id %q: %w", v, err)
		}
		addr, ok := dir[barter.PeerID(pid)]
		if !ok {
			return fmt.Errorf("provider %d not in -peers directory", pid)
		}
		ch := n.Download(barter.ObjectID(objID), map[barter.PeerID]string{barter.PeerID(pid): addr})
		fetches = append(fetches, pending{obj: barter.ObjectID(objID), ch: ch})
	}
	for _, f := range fetches {
		if err := barter.WaitDownload(f.ch, *timeout); err != nil {
			return fmt.Errorf("fetch %d: %w", f.obj, err)
		}
		fmt.Fprintf(stdout, "fetched object %d (%d bytes)\n", f.obj, len(n.Object(f.obj)))
	}
	st := n.Stats()
	fmt.Fprintf(stdout, "done: rings joined %d, exchange blocks sent %d, blocks received %d\n",
		st.RingsJoined, st.ExchangeBlocksSent, st.BlocksReceived)
	return nil
}
