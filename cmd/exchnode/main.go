// Command exchnode runs a live exchange peer over TCP.
//
// A tiny static directory maps peer ids to addresses so small hand-built
// networks can form rings (the paper treats lookup as an external service):
//
//	exchnode -id 1 -listen 127.0.0.1:7001 -share \
//	    -peers 2=127.0.0.1:7002,3=127.0.0.1:7003 \
//	    -serve 100=./alice.bin -fetch 200=2 -timeout 60s
//
// serves object 100 from a local file and downloads object 200 from peer 2,
// exiting when every fetch completes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"barter"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exchnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.Int("id", 1, "peer id")
		listen  = flag.String("listen", "127.0.0.1:0", "listen address")
		share   = flag.Bool("share", true, "serve content (false = free-ride)")
		peers   = flag.String("peers", "", "directory: id=addr,id=addr,...")
		serve   = flag.String("serve", "", "objects to serve: objID=path,...")
		fetch   = flag.String("fetch", "", "objects to fetch: objID=peerID,...")
		slots   = flag.Int("slots", 4, "upload slots")
		block   = flag.Int("block", 64<<10, "block size in bytes")
		timeout = flag.Duration("timeout", 120*time.Second, "per-fetch timeout")
		verbose = flag.Bool("v", false, "log protocol activity")
	)
	flag.Parse()

	dir := make(map[barter.PeerID]string)
	if *peers != "" {
		for _, ent := range strings.Split(*peers, ",") {
			k, v, ok := strings.Cut(ent, "=")
			if !ok {
				return fmt.Errorf("bad -peers entry %q", ent)
			}
			pid, err := strconv.Atoi(k)
			if err != nil {
				return fmt.Errorf("bad peer id %q: %w", k, err)
			}
			dir[barter.PeerID(pid)] = v
		}
	}

	cfg := barter.NodeConfig{
		ID:          barter.PeerID(*id),
		Addr:        *listen,
		Transport:   barter.NewTCPTransport(),
		Share:       *share,
		UploadSlots: *slots,
		BlockSize:   *block,
		Lookup: func(p barter.PeerID) (string, bool) {
			a, ok := dir[p]
			return a, ok
		},
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	n, err := barter.NewNode(cfg)
	if err != nil {
		return err
	}
	defer n.Close()
	fmt.Printf("peer %d listening on %s (share=%v)\n", *id, n.Addr(), *share)

	if *serve != "" {
		for _, ent := range strings.Split(*serve, ",") {
			k, path, ok := strings.Cut(ent, "=")
			if !ok {
				return fmt.Errorf("bad -serve entry %q", ent)
			}
			objID, err := strconv.Atoi(k)
			if err != nil {
				return fmt.Errorf("bad object id %q: %w", k, err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			n.AddObject(barter.ObjectID(objID), data)
			fmt.Printf("serving object %d (%d bytes) from %s\n", objID, len(data), path)
		}
	}

	if *fetch == "" {
		// Serve-only mode: run until interrupted.
		select {}
	}
	type pending struct {
		obj barter.ObjectID
		ch  <-chan error
	}
	var fetches []pending
	for _, ent := range strings.Split(*fetch, ",") {
		k, v, ok := strings.Cut(ent, "=")
		if !ok {
			return fmt.Errorf("bad -fetch entry %q", ent)
		}
		objID, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("bad object id %q: %w", k, err)
		}
		pid, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad provider id %q: %w", v, err)
		}
		addr, ok := dir[barter.PeerID(pid)]
		if !ok {
			return fmt.Errorf("provider %d not in -peers directory", pid)
		}
		ch := n.Download(barter.ObjectID(objID), map[barter.PeerID]string{barter.PeerID(pid): addr})
		fetches = append(fetches, pending{obj: barter.ObjectID(objID), ch: ch})
	}
	for _, f := range fetches {
		if err := barter.WaitDownload(f.ch, *timeout); err != nil {
			return fmt.Errorf("fetch %d: %w", f.obj, err)
		}
		fmt.Printf("fetched object %d (%d bytes)\n", f.obj, len(n.Object(f.obj)))
	}
	st := n.Stats()
	fmt.Printf("done: rings joined %d, exchange blocks sent %d, blocks received %d\n",
		st.RingsJoined, st.ExchangeBlocksSent, st.BlocksReceived)
	return nil
}
