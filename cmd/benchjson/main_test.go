package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: barter
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig4 	       1	 512340000 ns/op	         1.800 speedup@tightest
BenchmarkRingSearchPolicies/2-5-way-8 	  120000	      9876 ns/op	       3 allocs/op
BenchmarkSimulationEventRate 	       5	 166921274 ns/op	   4085559 events/s	 2867452 B/op	   53750 allocs/op
BenchmarkSimulationEventRate 	       5	 180000000 ns/op	   3700000 events/s	 2867452 B/op	   53750 allocs/op
PASS
ok  	barter	2.5s
`

func parseSample(t *testing.T) *Document {
	t.Helper()
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseHeaders(t *testing.T) {
	doc := parseSample(t)
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Fatalf("goos/goarch = %q/%q", doc.GOOS, doc.GOARCH)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if doc.Schema != Schema {
		t.Fatalf("schema = %d", doc.Schema)
	}
}

func TestParseBenchmarksAndMetrics(t *testing.T) {
	doc := parseSample(t)
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	er, ok := doc.find("BenchmarkSimulationEventRate")
	if !ok {
		t.Fatal("event-rate benchmark missing")
	}
	// Duplicates collapse to the lowest ns/op observation.
	if er.NsPerOp != 166921274 {
		t.Fatalf("ns/op = %v, want the faster of the two runs", er.NsPerOp)
	}
	if er.Metrics["events/s"] != 4085559 || er.Metrics["allocs/op"] != 53750 {
		t.Fatalf("metrics = %v", er.Metrics)
	}
	if er.Iterations != 5 {
		t.Fatalf("iterations = %d", er.Iterations)
	}
}

func TestParseStripsProcSuffix(t *testing.T) {
	doc := parseSample(t)
	b, ok := doc.find("BenchmarkRingSearchPolicies/2-5-way")
	if !ok {
		names := make([]string, 0, len(doc.Benchmarks))
		for _, x := range doc.Benchmarks {
			names = append(names, x.Name)
		}
		t.Fatalf("sub-benchmark not found under stripped name; have %v", names)
	}
	if b.Procs != 8 {
		t.Fatalf("procs = %d, want 8", b.Procs)
	}
}

func TestParseCustomUnitOnly(t *testing.T) {
	doc := parseSample(t)
	b, ok := doc.find("BenchmarkFig4")
	if !ok {
		t.Fatal("fig4 missing")
	}
	if b.Metrics["speedup@tightest"] != 1.8 {
		t.Fatalf("custom metric = %v", b.Metrics)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok barter 1s\n")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func writeDoc(t *testing.T, dir, name string, eventsPerSec float64) string {
	t.Helper()
	doc := Document{
		Schema: Schema,
		Benchmarks: []Benchmark{{
			Name:       "BenchmarkSimulationEventRate",
			Iterations: 5,
			NsPerOp:    1e8,
			Metrics:    map[string]float64{"events/s": eventsPerSec},
		}},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 1_000_000)
	head := writeDoc(t, dir, "head.json", 900_000) // -10%, inside 15%
	var out strings.Builder
	err := compareDocs(base, head, "BenchmarkSimulationEventRate", "events/s", 0.15, &out)
	if err != nil {
		t.Fatalf("within-tolerance compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("no OK verdict:\n%s", out.String())
	}
}

func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 1_000_000)
	head := writeDoc(t, dir, "head.json", 800_000) // -20%, outside 15%
	var out strings.Builder
	err := compareDocs(base, head, "BenchmarkSimulationEventRate", "events/s", 0.15, &out)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression not flagged: %v", err)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 1_000_000)
	head := writeDoc(t, dir, "head.json", 2_000_000) // +100%
	var out strings.Builder
	if err := compareDocs(base, head, "BenchmarkSimulationEventRate", "events/s", 0.15, &out); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}
}

func TestCompareNsPerOpDirection(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 1)
	head := writeDoc(t, dir, "head.json", 1)
	var out strings.Builder
	// ns/op identical in both docs -> passes.
	if err := compareDocs(base, head, "BenchmarkSimulationEventRate", "ns/op", 0.15, &out); err != nil {
		t.Fatalf("identical ns/op compare failed: %v", err)
	}
	// A doc with ns/op 30% higher must fail the lower-is-better gate.
	worse := writeDoc(t, dir, "worse.json", 1)
	raw, _ := os.ReadFile(worse)
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc.Benchmarks[0].NsPerOp = 1.3e8
	data, _ := json.Marshal(doc)
	if err := os.WriteFile(worse, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareDocs(base, worse, "BenchmarkSimulationEventRate", "ns/op", 0.15, &out); err == nil {
		t.Fatal("ns/op regression not flagged")
	}
}

func TestCompareMissingBenchmarkErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", 1)
	head := writeDoc(t, dir, "head.json", 1)
	var out strings.Builder
	if err := compareDocs(base, head, "BenchmarkNoSuch", "events/s", 0.15, &out); err == nil {
		t.Fatal("missing benchmark accepted")
	}
}

func TestRunEmitMode(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	var stdout, stderr strings.Builder
	err := run([]string{"-out", outPath}, strings.NewReader(sample), &stdout, &stderr)
	if err != nil {
		t.Fatalf("emit mode: %v\n%s", err, stderr.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("emitted JSON invalid: %v", err)
	}
	if doc.Generated == "" || len(doc.Benchmarks) != 3 {
		t.Fatalf("emitted doc incomplete: %+v", doc)
	}
}
