// Command benchjson turns `go test -bench` output into a machine-readable
// trajectory point and gates regressions against a committed baseline. It is
// pure Go with no dependencies beyond the standard library, so CI can run it
// on a bare toolchain.
//
// Emit mode (default) parses benchmark output from stdin (or -in) and writes
// a JSON document:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson -out BENCH_2.json
//
// Repeated runs of the same benchmark (e.g. -count=3) collapse to the run
// with the lowest ns/op — the least-noise observation, as benchstat's min
// column would report.
//
// Compare mode gates one benchmark's metric between two JSON documents:
//
//	benchjson -compare BENCH_2.json -new head.json \
//	    -bench BenchmarkSimulationEventRate -metric events/s -tolerance 0.15
//
// It exits nonzero when the new value regresses beyond the tolerance
// (direction-aware: events/s must not drop, ns/op must not rise).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Schema is the document version; bump on incompatible layout changes.
const Schema = 1

// Benchmark is one benchmark's best observation.
type Benchmark struct {
	// Name is the benchmark name with any trailing -GOMAXPROCS suffix
	// stripped (recorded separately in Procs) so documents from machines
	// with different core counts stay comparable.
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is one trajectory point of the benchmark suite.
type Document struct {
	Schema     int         `json:"schema"`
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "benchmark output to parse (default stdin)")
		out       = fs.String("out", "", "JSON file to write (default stdout)")
		compare   = fs.String("compare", "", "baseline JSON: switch to compare mode")
		newer     = fs.String("new", "", "candidate JSON to compare against the baseline")
		bench     = fs.String("bench", "BenchmarkSimulationEventRate", "benchmark name to gate in compare mode")
		metric    = fs.String("metric", "events/s", `metric to gate ("ns/op" gates the time itself)`)
		tolerance = fs.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare != "" {
		if *newer == "" {
			return fmt.Errorf("compare mode needs -new <candidate.json>")
		}
		return compareDocs(*compare, *newer, *bench, *metric, *tolerance, stdout)
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	doc, err := Parse(src)
	if err != nil {
		return err
	}
	doc.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// procSuffix matches the -GOMAXPROCS suffix go test appends to benchmark
// names.
var procSuffix = regexp.MustCompile(`-(\d+)$`)

// Parse reads `go test -bench` output and builds a Document. Benchmark result
// lines look like:
//
//	BenchmarkName-8   5   166921274 ns/op   4085559 events/s   53750 allocs/op
//
// Duplicate names (from -count or concatenated runs) collapse to the lowest
// ns/op observation.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{
		Schema:    Schema,
		GoVersion: runtime.Version(),
	}
	best := make(map[string]Benchmark)
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		prev, seen := best[b.Name]
		if !seen {
			order = append(order, b.Name)
		}
		if !seen || b.NsPerOp < prev.NsPerOp {
			best[b.Name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	for _, name := range order {
		doc.Benchmarks = append(doc.Benchmarks, best[name])
	}
	return doc, nil
}

// parseLine parses one benchmark result line. It reports false for lines
// that name a benchmark but carry no results (e.g. sub-benchmark headers).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	if m := procSuffix.FindStringSubmatch(b.Name); m != nil {
		b.Procs, _ = strconv.Atoi(m[1])
		b.Name = strings.TrimSuffix(b.Name, m[0])
	}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			sawNs = true
			continue
		}
		b.Metrics[unit] = val
	}
	if !sawNs {
		return Benchmark{}, false
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// lowerIsBetter reports the gate direction for a metric: time- and
// allocation-shaped metrics regress upward, throughput metrics downward.
func lowerIsBetter(metric string) bool {
	switch {
	case metric == "ns/op", metric == "B/op", metric == "allocs/op":
		return true
	case strings.HasSuffix(metric, "/s"):
		return false
	default:
		// Unknown custom metrics follow the throughput convention used
		// throughout this suite (bigger numbers are better).
		return false
	}
}

func loadDoc(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func (d *Document) find(name string) (Benchmark, bool) {
	for _, b := range d.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

func (b Benchmark) metric(name string) (float64, bool) {
	if name == "ns/op" {
		return b.NsPerOp, true
	}
	v, ok := b.Metrics[name]
	return v, ok
}

func compareDocs(basePath, newPath, bench, metric string, tolerance float64, out io.Writer) error {
	base, err := loadDoc(basePath)
	if err != nil {
		return err
	}
	head, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	bb, ok := base.find(bench)
	if !ok {
		return fmt.Errorf("baseline %s has no benchmark %q", basePath, bench)
	}
	hb, ok := head.find(bench)
	if !ok {
		return fmt.Errorf("candidate %s has no benchmark %q", newPath, bench)
	}
	bv, ok := bb.metric(metric)
	if !ok {
		return fmt.Errorf("baseline %s lacks metric %q for %s", basePath, metric, bench)
	}
	hv, ok := hb.metric(metric)
	if !ok {
		return fmt.Errorf("candidate %s lacks metric %q for %s", newPath, metric, bench)
	}
	if bv == 0 {
		return fmt.Errorf("baseline %s %s is zero; cannot compute a ratio", bench, metric)
	}
	change := hv/bv - 1
	regressed := change < -tolerance
	if lowerIsBetter(metric) {
		regressed = change > tolerance
	}
	fmt.Fprintf(out, "%s %s: baseline %.6g, new %.6g (%+.1f%%, tolerance ±%.0f%%)\n",
		bench, metric, bv, hv, 100*change, 100*tolerance)
	if regressed {
		return fmt.Errorf("%s regressed: %s changed %+.1f%% (tolerance %.0f%%)",
			bench, metric, 100*change, 100*tolerance)
	}
	fmt.Fprintln(out, "OK: within tolerance")
	return nil
}
