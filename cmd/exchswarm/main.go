// Command exchswarm runs a live-network swarm scenario: hundreds of real
// peers (plus a trusted mediator) over the in-memory transport or TCP
// loopback, driven by a declarative workload, reporting the same
// figure-shaped TSV the simulator emits so live and simulated results sit
// side by side.
//
// Usage:
//
//	exchswarm -list
//	exchswarm -scenario flashcrowd -nodes 300 -quick
//	exchswarm -scenario freerider -nodes 100 -frac 0.3 -quick
//	exchswarm -scenario churn -nodes 120 -restarts 100 -quick -v
//	exchswarm -scenario mixed -nodes 50 -tcp -peers
//	exchswarm -scenario adversary -nodes 80 -adaptive 0.2 -whitewash 0.1 -partial 0.2 -quick
//	exchswarm -scenario cheater -nodes 120 -mediators 4 -quick
//	exchswarm -scenario cheater -nodes 80 -mediators 4 -stripe 3 -quick
//	exchswarm -scenario medfail -nodes 80 -mediators 4 -medkills 6 -quick -v
//	exchswarm -scenario reshard -nodes 80 -reshards 9 -quick -v
//	exchswarm -scenario wave -nodes 60 -workload flash -quick -record run.trace
//
// The wave scenario schedules downloader demand from a temporal workload
// spec (-workload: a builtin name or a JSON spec file; see docs/WORKLOADS.md)
// compiled over the -window wall-clock horizon: request times follow the
// spec's demand curve, objects its popularity model, and cohort peers
// arrive late or depart early as live session churn. -record writes any
// scenario's run as a replayable JSON-lines trace that
// `exchsim -trace <file>` re-executes deterministically in the simulator.
//
// -mediators shards the mediator tier (consistent hashing over object id)
// for any scenario; medfail additionally kills and restarts shards mid-run
// while nodes speak the mediated block path natively. -stripe N switches
// any scenario onto the mediated path with each download striped across up
// to N origins — interleaved sealed blocks, per-origin escrow and audits —
// so a cheater scenario flags every corrupt origin organically while honest
// stripes complete in parallel. reshard runs the
// medfail mix over a durable tier (write-ahead logs under -meddata, or a
// temporary dir) while live AddShard/RemoveShard reshapes churn the ring;
// the run fails if any reshape — or the final full-tier restart — loses a
// detection-history flag.
//
// The aggregate TSV mirrors Figure 12's axes (mean download time per peer
// class vs. fraction of non-sharing peers); -peers appends one row per node
// with its protocol counters. Peer classes are the shared strategy layer's
// (internal/strategy), so the live series names match exchsim's figures.
// -seed makes the world structure (class assignment, placement, wants)
// reproducible; wall-clock timing still varies run to run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"barter"
)

// errUsage signals a flag-parsing failure whose specifics the FlagSet has
// already printed to stderr.
var errUsage = errors.New("invalid arguments")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "exchswarm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("exchswarm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list available scenarios")
		scenario = fs.String("scenario", "", "scenario to run (see -list)")
		nodes    = fs.Int("nodes", 100, "number of live peers")
		quick    = fs.Bool("quick", false, "small objects and pacing: a run takes seconds")
		seed     = fs.Uint64("seed", 1, "seed for placement, wants, and churn choices")
		useTCP   = fs.Bool("tcp", false, "TCP loopback (with I/O deadlines) instead of the in-memory transport")
		frac     = fs.Float64("frac", 0, "fraction of non-sharing peers (freerider/mixed/adversary scenarios)")
		corrupt  = fs.Float64("corrupt", 0, "fraction of corrupt seeds (cheater scenario)")
		adaptive = fs.Float64("adaptive", 0, "fraction of adaptive free-riders (adversary scenario)")
		wwash    = fs.Float64("whitewash", 0, "fraction of whitewashers (adversary scenario)")
		partial  = fs.Float64("partial", 0, "fraction of partial sharers (adversary scenario)")
		restarts = fs.Int("restarts", 0, "node restarts mid-run (churn scenario)")
		medshard = fs.Int("mediators", 0, "mediator tier size in shards (0 = scenario default)")
		medkills = fs.Int("medkills", 0, "mediator shard kill/restart cycles (medfail scenario)")
		reshards = fs.Int("reshards", 0, "elastic tier reshape cycles (reshard scenario)")
		meddata  = fs.String("meddata", "", "mediator write-ahead-log directory (reshard scenario; empty = temp dir)")
		stripe   = fs.Int("stripe", 0, "stripe mediated downloads across up to N origins (enables the mediated path; 0/1 = single sender)")
		objSize  = fs.Int("objsize", 0, "object size in bytes (0 = scenario default)")
		block    = fs.Int("block", 0, "block size in bytes (0 = scenario default)")
		slots    = fs.Int("slots", 0, "upload slots per sharer (0 = scenario default)")
		timeout  = fs.Duration("timeout", 0, "run deadline (0 = scenario default)")
		peers    = fs.Bool("peers", false, "append one TSV row per peer with protocol counters")
		verbose  = fs.Bool("v", false, "log swarm progress to stderr")
		wl       = fs.String("workload", "", "wave scenario demand spec: a builtin name or a JSON spec file")
		window   = fs.Duration("window", 0, "wave scenario wall-clock horizon (0 = scenario default)")
		record   = fs.String("record", "", "write the run as a replayable JSON-lines trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	if *list {
		for _, sc := range barter.SwarmScenarios() {
			fmt.Fprintln(stdout, sc)
		}
		return nil
	}
	if *scenario == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list or -scenario")
	}

	cfg := barter.SwarmConfig{
		Scenario:      barter.SwarmScenario(*scenario),
		Nodes:         *nodes,
		Quick:         *quick,
		Seed:          *seed,
		TCP:           *useTCP,
		FreeriderFrac: *frac,
		CorruptFrac:   *corrupt,
		AdaptiveFrac:  *adaptive,
		WhitewashFrac: *wwash,
		PartialFrac:   *partial,
		Restarts:      *restarts,
		Mediators:     *medshard,
		MedKills:      *medkills,
		Reshards:      *reshards,
		MedDataDir:    *meddata,
		Stripe:        *stripe,
		ObjectSize:    *objSize,
		BlockSize:     *block,
		UploadSlots:   *slots,
		Timeout:       *timeout,
		WaveWindow:    *window,
	}
	if *wl != "" {
		spec, err := barter.LoadWorkload(*wl)
		if err != nil {
			return err
		}
		cfg.Workload = spec
	}
	var recFile *os.File
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		recFile = f
		cfg.Record = f
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "swarm: "+format+"\n", args...)
		}
	}

	start := time.Now()
	res, err := barter.RunSwarm(cfg)
	if recFile != nil {
		// The trace was (or failed to be) written by Run; surface close
		// errors so a truncated recording never passes silently.
		if cerr := recFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.TSV())
	if *peers {
		fmt.Fprint(stdout, res.PeersTSV())
	}
	if *verbose {
		fmt.Fprintf(stderr, "swarm: %s with %d nodes finished in %s (wall %s)\n",
			res.Scenario, res.Nodes, res.Elapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d downloads failed", res.Failed, res.Wanted)
	}
	if res.FlagsLost > 0 {
		return fmt.Errorf("%d detection-history flags lost across tier reshapes", res.FlagsLost)
	}
	return nil
}
