package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"barter"
)

func TestListScenarios(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flashcrowd", "mixed", "freerider", "cheater", "churn", "adversary", "medfail"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNoScenarioErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestBadFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestUnknownScenarioErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scenario", "nope", "-nodes", "10"}, &out, &errOut); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// classColumn extracts the per-peer class sequence from a -peers TSV dump:
// the world-structure fingerprint that -seed must make reproducible.
func classColumn(t *testing.T, out string) []string {
	t.Helper()
	var classes []string
	inPeers := false
	for _, line := range strings.Split(out, "\n") {
		cols := strings.Split(line, "\t")
		if strings.HasPrefix(line, "peer\tclass\t") {
			inPeers = true
			continue
		}
		if inPeers && len(cols) > 2 {
			classes = append(classes, cols[1])
		}
	}
	if len(classes) == 0 {
		t.Fatalf("no peer rows in output:\n%s", out)
	}
	return classes
}

// TestSeedReproducesWorld is the -seed smoke test: the same seed must build
// the same world (per-peer class assignment), and a different seed a
// different one — the live counterpart of exchsim's determinism contract.
// Wall-clock timings still vary; only structure is pinned.
func TestSeedReproducesWorld(t *testing.T) {
	runSeed := func(seed string) []string {
		var out, errOut strings.Builder
		args := []string{"-scenario", "mixed", "-nodes", "24", "-frac", "0.4", "-quick", "-peers", "-seed", seed}
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("run -seed %s: %v\nstderr:\n%s", seed, err, errOut.String())
		}
		return classColumn(t, out.String())
	}
	a, b := runSeed("3"), runSeed("3")
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed built different worlds:\n%v\n%v", a, b)
	}
	c := runSeed("4")
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatalf("different seeds built identical worlds:\n%v", a)
	}
}

// TestAdversaryFlagsReachScenario: the adversary fractions plumb through to
// the world builder and every requested class shows up in the peer rows.
func TestAdversaryFlagsReachScenario(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-scenario", "adversary", "-nodes", "24", "-quick", "-peers", "-seed", "11",
		"-adaptive", "0.25", "-whitewash", "0.1", "-partial", "0.25"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	got := out.String()
	for _, class := range []string{"adaptive", "whitewasher", "partial", "sharing"} {
		if !strings.Contains(got, class) {
			t.Fatalf("output missing %s peers:\n%s", class, got)
		}
	}
}

// TestQuickFlashCrowd drives a real (small) swarm end to end through the
// CLI surface: TSV on stdout, progress on stderr, per-peer rows on demand.
func TestQuickFlashCrowd(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{"-scenario", "flashcrowd", "-nodes", "30", "-quick", "-peers", "-v"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "live/sharing") {
		t.Fatalf("aggregate TSV missing sharing series:\n%s", got)
	}
	if !strings.Contains(got, "peer\tclass\t") {
		t.Fatalf("-peers rows missing:\n%s", got)
	}
	if !strings.Contains(errOut.String(), "finished in") {
		t.Fatalf("-v progress missing:\n%s", errOut.String())
	}
}

// TestMedfailThroughCLI drives the mediator-failover scenario end to end
// through the CLI surface: a sharded tier, kills mid-run, and the mediator
// comment line in the TSV.
func TestMedfailThroughCLI(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-scenario", "medfail", "-nodes", "24", "-quick",
		"-mediators", "3", "-medkills", "2", "-seed", "7"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "shards=3") {
		t.Fatalf("TSV missing mediator tier line:\n%s", got)
	}
	if !strings.Contains(got, "flagged=") {
		t.Fatalf("TSV missing flagged counter:\n%s", got)
	}
}

// TestWaveRecordsReplayableTrace drives the wave scenario through the CLI:
// a builtin workload spec, a -record file, and the trace comment in the
// TSV. The recorded file must parse as a version-1 JSON-lines trace.
func TestWaveRecordsReplayableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wave.trace")
	var out, errOut strings.Builder
	args := []string{"-scenario", "wave", "-nodes", "24", "-quick", "-seed", "5",
		"-workload", "flash", "-record", path}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "trace: events=") {
		t.Fatalf("TSV missing trace comment:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := barter.ReadWorkloadTrace(f)
	if err != nil {
		t.Fatalf("recorded file is not a valid trace: %v", err)
	}
	if tr.Header.Scenario != "wave" || len(tr.Events) == 0 {
		t.Fatalf("unexpected trace: scenario %q with %d events", tr.Header.Scenario, len(tr.Events))
	}
}

// TestWorkloadFlagRejectedOffWave: a workload spec only drives the wave
// scenario; other scenarios must refuse it loudly rather than ignore it.
func TestWorkloadFlagRejectedOffWave(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{"-scenario", "mixed", "-nodes", "10", "-quick", "-workload", "flash"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "wave") {
		t.Fatalf("want wave-only error, got %v", err)
	}
}

// TestUnknownWorkloadErrors: a workload argument that is neither a builtin
// name nor a spec file fails before any nodes launch.
func TestUnknownWorkloadErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scenario", "wave", "-nodes", "10", "-quick", "-workload", "nope"}, &out, &errOut); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
