package main

import (
	"strings"
	"testing"
)

func TestListScenarios(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flashcrowd", "mixed", "freerider", "cheater", "churn"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNoScenarioErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestBadFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestUnknownScenarioErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scenario", "nope", "-nodes", "10"}, &out, &errOut); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestQuickFlashCrowd drives a real (small) swarm end to end through the
// CLI surface: TSV on stdout, progress on stderr, per-peer rows on demand.
func TestQuickFlashCrowd(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{"-scenario", "flashcrowd", "-nodes", "30", "-quick", "-peers", "-v"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "live/sharing") {
		t.Fatalf("aggregate TSV missing sharing series:\n%s", got)
	}
	if !strings.Contains(got, "peer\tclass\t") {
		t.Fatalf("-peers rows missing:\n%s", got)
	}
	if !strings.Contains(errOut.String(), "finished in") {
		t.Fatalf("-v progress missing:\n%s", errOut.String())
	}
}
