# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make check` locally means a green CI run.

GO ?= go

.PHONY: build test test-short test-full bench fmt vet check

build:
	$(GO) build ./...

## test-short: the race-enabled quick suite CI runs on every push.
test-short:
	$(GO) test -race -short ./...

## test: the full suite (figure sweeps included), no race detector.
test:
	$(GO) test ./...

## test-full: full suite exactly as CI's long job runs it.
test-full:
	$(GO) test -count=1 ./...

## bench: one iteration of every benchmark as a smoke pass.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: build fmt vet test-short
