# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make check` locally means a green CI run.

GO ?= go

# bench-json output path; CI regenerates into the default and compares it
# against the committed baseline copied aside beforehand.
BENCH_JSON ?= BENCH_2.json
BENCH_RAW  ?= /tmp/barter-bench-raw.txt

# The staticcheck version CI pins; the lint workflow installs exactly this
# (via `make -s print-staticcheck-version`) so the Makefile is the single
# source of truth for the linter toolchain.
STATICCHECK_VERSION ?= 2025.1

.PHONY: build test test-short test-full swarm-smoke shard-smoke soak fuzz-smoke bench bench-json bench-check fmt vet doccheck bartervet docs-check lint print-staticcheck-version check

# The deterministic packages — the bartervet allowlist. Mirrored by
# TestDeterministicPackagesAreClean and docs/DETERMINISM.md; change all
# three together.
DETERMINISTIC_PKGS = ./internal/sim ./internal/eventq ./internal/index \
	./internal/core ./internal/credit ./internal/strategy \
	./internal/workload ./internal/experiment ./internal/runner \
	./internal/rng ./internal/metrics

build:
	$(GO) build ./...

## test-short: the race-enabled quick suite CI runs on every push.
test-short:
	$(GO) test -race -short ./...

## test: the full suite (figure sweeps included), no race detector.
test:
	$(GO) test ./...

## test-full: full suite exactly as CI's long job runs it.
test-full:
	$(GO) test -count=1 ./...

## swarm-smoke: race-enabled live-network scenarios CI runs on every push —
## a 120-node flash crowd, a 100-node churn run (60 close/restart cycles),
## a 120-node cheater run against a 4-shard mediator tier, the same cheater
## mix with downloads striped across 3 origins, and a medfail run that
## kills mediator shards mid-run, so shutdown, backpressure, striping, and
## mediator-failover paths stay exercised outside the unit suite too.
swarm-smoke:
	$(GO) run -race ./cmd/exchswarm -scenario flashcrowd -nodes 120 -quick
	$(GO) run -race ./cmd/exchswarm -scenario churn -nodes 100 -restarts 60 -quick
	$(GO) run -race ./cmd/exchswarm -scenario cheater -nodes 120 -mediators 4 -quick
	$(GO) run -race ./cmd/exchswarm -scenario cheater -nodes 80 -mediators 4 -stripe 3 -quick
	$(GO) run -race ./cmd/exchswarm -scenario medfail -nodes 80 -mediators 4 -quick

## shard-smoke: a race-enabled sharded-engine run CI includes in the short
## suite — four event-loop domains on the worker pool, so the epoch
## barriers and cross-partition mailboxes run under the race detector on
## every push.
shard-smoke:
	$(GO) run -race ./cmd/exchsim -experiment fig4 -quick -shards 4 > /dev/null

## soak: the scheduled long-haul lane (.github/workflows/soak.yml) — a
## race-enabled reshard run (durable shards churned by kills, restarts, and
## live grow/shrink reshapes under a cheater mix; exits nonzero if any flag
## is lost) plus a longer medfail failover run than the per-push smoke.
soak:
	$(GO) run -race ./cmd/exchswarm -scenario reshard -nodes 96 -reshards 12 -quick -v
	$(GO) run -race ./cmd/exchswarm -scenario medfail -nodes 120 -mediators 4 -medkills 10 -quick -v

## fuzz-smoke: a short native-fuzzing pass over the wire codec; CI runs it
## in the short job so every push hammers Decode with fresh mutated frames.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDecode' -fuzztime 10s ./internal/protocol

## bench: one iteration of every benchmark as a smoke pass.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-json: run the benchmark suite and emit the machine-readable
## trajectory point (BENCH_2.json at the repo root). The headline
## BenchmarkSimulationEventRate gets extra repetitions so the recorded
## number is the least-noise observation, and BenchmarkMediatorVerify gets
## enough iterations for the pipelined clients to actually overlap RPCs
## (at -benchtime 1x a pipeline of one request is no pipeline at all).
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > $(BENCH_RAW)
	$(GO) test -run '^$$' -bench 'BenchmarkSimulationEventRate$$' -benchtime 2x -count 3 . >> $(BENCH_RAW)
	$(GO) test -run '^$$' -bench 'BenchmarkMediatorVerify$$' -benchtime 300x -count 2 . >> $(BENCH_RAW)
	$(GO) run ./cmd/benchjson -in $(BENCH_RAW) -out $(BENCH_JSON)

## bench-check: regenerate the trajectory point and fail if the engine
## event rate (single-threaded or sharded) — or the mediator tier's audit
## throughput, serialized or pipelined — regressed >15% against the
## committed baseline.
bench-check:
	$(MAKE) bench-json BENCH_JSON=/tmp/barter-bench-head.json
	$(GO) run ./cmd/benchjson -compare BENCH_2.json -new /tmp/barter-bench-head.json \
		-bench BenchmarkSimulationEventRate/shards=1 -metric events/s -tolerance 0.15
	$(GO) run ./cmd/benchjson -compare BENCH_2.json -new /tmp/barter-bench-head.json \
		-bench BenchmarkSimulationEventRate/shards=4 -metric events/s -tolerance 0.15
	$(GO) run ./cmd/benchjson -compare BENCH_2.json -new /tmp/barter-bench-head.json \
		-bench BenchmarkMediatorVerify/shards=4 -metric verifies/s -tolerance 0.15
	$(GO) run ./cmd/benchjson -compare BENCH_2.json -new /tmp/barter-bench-head.json \
		-bench BenchmarkMediatorVerify/pipelined=8 -metric verifies/s -tolerance 0.15

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## vet: run with the race build tag so vet sees exactly the file set the
## race-enabled short suite compiles.
vet:
	$(GO) vet -tags race ./...

## doccheck: documentation-coverage lint — every package must carry a
## package doc comment, and the layers with a documented public surface
## (workload trace/spec formats, the mediator tier and its strategy
## counterpart) must document every exported symbol.
doccheck:
	$(GO) run ./internal/tools/doccheck ./internal ./cmd ./examples .
	$(GO) run ./internal/tools/doccheck -exported ./internal/workload ./internal/mediator ./internal/strategy

## bartervet: the determinism-contract analyzers (docs/DETERMINISM.md).
## Map-order, wall-clock/global-rand, and pointer-identity dependence are
## errors in the deterministic packages; swallowed Write/Sync/Close errors
## are errors on the mediator durability and codec paths. Exceptions carry
## a `//barter:allow <check> <reason>` waiver; stale waivers fail too.
bartervet:
	$(GO) run ./internal/tools/bartervet -checks maprange,walltime,ptrorder $(DETERMINISTIC_PKGS)
	$(GO) run ./internal/tools/bartervet -checks unchecked-io ./internal/mediator ./internal/protocol

## docs-check: smoke-run every `go run ./cmd/...` line the ROADMAP
## quickstart advertises (-h per command, -list lines verbatim) so the
## docs cannot drift ahead of the CLIs.
docs-check:
	./scripts/docs-check.sh

## lint: gofmt + vet + doccheck + bartervet (all hard failures), plus
## staticcheck's correctness analyses (SA*) when the binary is available.
## Locally a missing staticcheck only warns, so the target works in
## hermetic environments without network access; CI runs with
## LINT_STRICT=1, where a missing binary is a hard failure — the lint job
## must never silently skip its own linter.
lint: fmt vet doccheck bartervet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck -checks 'SA*' ./...; \
	elif [ "$(LINT_STRICT)" = "1" ]; then \
		echo "lint: staticcheck not installed and LINT_STRICT=1"; exit 1; \
	else \
		echo "lint: staticcheck not installed; ran gofmt + go vet only"; \
	fi

## print-staticcheck-version: the pinned linter version, for CI to install.
print-staticcheck-version:
	@echo $(STATICCHECK_VERSION)

check: build fmt vet test-short
