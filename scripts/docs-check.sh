#!/bin/sh
# docs-check: the ROADMAP quickstart must not drift ahead of the CLIs.
# Every `go run ./cmd/...` line it advertises is smoke-run — `-h` for each
# distinct command, plus every `-list` line verbatim — and must exit 0.
set -eu
cd "$(dirname "$0")/.."

status=0
cmds=$(grep -o 'go run \./cmd/[a-z]*' ROADMAP.md | awk '{print $3}' | sort -u)
if [ -z "$cmds" ]; then
	echo "docs-check: no 'go run ./cmd/...' lines found in ROADMAP.md" >&2
	exit 1
fi
for c in $cmds; do
	if go run "$c" -h >/dev/null 2>&1; then
		echo "ok   $c -h"
	else
		echo "FAIL $c -h (quickstart advertises a command that rejects -h)"
		status=1
	fi
done

# -list lines are cheap and their output is what the docs tell users to
# start from, so run those exactly as written.
lists=$(grep -o '^go run \./cmd/[a-z]* -list' ROADMAP.md | awk '{print $3}' | sort -u)
for c in $lists; do
	if go run "$c" -list >/dev/null 2>&1; then
		echo "ok   $c -list"
	else
		echo "FAIL $c -list"
		status=1
	fi
done

exit $status
