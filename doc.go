// Package barter is a reproduction of "Exchange-Based Incentive Mechanisms
// for Peer-to-Peer File Sharing" (Anagnostakis & Greenwald, ICDCS 2004): an
// incentive mechanism in which peers give absolute service priority to
// requests from peers that can provide a simultaneous, symmetric service in
// return, generalized from pairwise swaps to n-way exchange rings discovered
// by searching request trees.
//
// The module contains three layers:
//
//   - A deterministic discrete-event simulator of the paper's evaluation
//     environment (Section IV), exposed through Config, NewSimulation, and
//     the Experiments registry that regenerates every table and figure.
//   - The exchange mechanism itself (request trees, ring search, search-order
//     policies), shared by the simulator and the live implementation.
//   - A live, concurrent peer implementation of the protocol over in-memory
//     or TCP transports, including the trusted-mediator defense against
//     middleman cheating (Section III-B), exposed through NewNode and
//     NewMediator.
//
// Experiments enumerate their parameter grids declaratively and execute
// them through RunGrid, a bounded worker pool over independent simulation
// runs. Its determinism contract: a job's effective seed depends only on
// (configured seed, job index, replica index), never on worker count or
// scheduling, so the same seed produces byte-identical tables at any
// parallelism. RunnerOptions.Replicas reruns every grid point under
// distinct derived seeds and aggregates swept series to mean ± 95% CI.
//
// Inside one run the engine honors the same contract at a finer grain, and
// every hot-path optimization must preserve it: the event queue breaks
// timestamp ties by schedule order, the incremental holders/wanters indexes
// iterate in ascending peer-id order (candidate order feeds the RNG draws),
// and no behavior depends on map iteration order, pointer values, or wall
// time. The engine hot path is allocation-free at steady state — free-listed
// event-queue items, closure-free block events, free-listed session/request
// objects, and pooled ring-search scratch — without bending any of the
// above.
//
// Performance is tracked continuously: exchsim -perf appends an engine
// report (events/sec, ring-search traversal effort, allocation load) to
// stderr without touching the hot path, and `make bench-json` runs the
// benchmark suite through cmd/benchjson into the machine-readable trajectory
// point BENCH_2.json at the repo root, which CI's bench-track job
// regenerates, gates (>15% event-rate regression fails), and archives on
// every push.
//
// The examples directory demonstrates all three layers; cmd/exchsim
// regenerates the paper's figures from the command line (-parallel bounds
// the pool, -replicas turns on replication, -perf reports engine
// performance).
package barter
