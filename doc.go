// Package barter is a reproduction of "Exchange-Based Incentive Mechanisms
// for Peer-to-Peer File Sharing" (Anagnostakis & Greenwald, ICDCS 2004): an
// incentive mechanism in which peers give absolute service priority to
// requests from peers that can provide a simultaneous, symmetric service in
// return, generalized from pairwise swaps to n-way exchange rings discovered
// by searching request trees.
//
// The module contains three layers:
//
//   - A deterministic discrete-event simulator of the paper's evaluation
//     environment (Section IV), exposed through Config, NewSimulation, and
//     the Experiments registry that regenerates every table and figure.
//   - The exchange mechanism itself (request trees, ring search, search-order
//     policies), shared by the simulator and the live implementation.
//   - A live, concurrent peer implementation of the protocol over in-memory
//     or TCP transports, including the trusted-mediator defense against
//     middleman cheating (Section III-B), exposed through NewNode,
//     NewMediator, and NewMediatorCluster — plus a swarm harness (RunSwarm,
//     cmd/exchswarm) that runs hundreds of live peers through declarative
//     scenarios.
//
// Peer behavior is declarative and shared across layers: internal/strategy
// defines population classes — sharers, static free-riders, adaptive
// free-riders that contribute only while refused, whitewashers that rejoin
// under fresh identities to shed reputation state, partial sharers with
// throttled upload slots, and corrupt seeds — and both the simulator
// (Config.Mix, the figw experiment) and the live swarm (the adversary
// scenario) consume the same definitions, so figure series and live TSV
// report identical class labels from one source of truth. The legacy
// two-class population (Config.FreeriderFrac) is the nil-Mix default and
// reproduces its historical output byte for byte.
//
// Demand is declarative too: internal/workload is the temporal counterpart
// of the strategy layer — one workload spec (multi-phase demand curves:
// constant, diurnal, flash-crowd with decay; Zipf popularity with optional
// drift; arrive/depart session cohorts, all in normalized horizon
// fractions) drives the simulator open-loop (Config.Workload, the figt
// experiment, exchsim -workload) and the live swarm's wave scenario
// (SwarmConfig.Workload) identically. The same package defines a versioned
// JSON-lines trace format: any swarm run recorded with exchswarm -record
// (SwarmConfig.Record) replays deterministically in the simulator via
// Config.Trace / exchsim -trace, with byte-identical output at any
// parallelism. Both formats are documented field by field in
// docs/WORKLOADS.md; docs/ARCHITECTURE.md maps the package layout to the
// paper's sections.
//
// Experiments enumerate their parameter grids declaratively and execute
// them through RunGrid, a bounded worker pool over independent simulation
// runs. Its determinism contract: a job's effective seed depends only on
// (configured seed, job index, replica index), never on worker count or
// scheduling, so the same seed produces byte-identical tables at any
// parallelism. RunnerOptions.Replicas reruns every grid point under
// distinct derived seeds and aggregates swept series to mean ± 95% CI.
//
// Inside one run the engine honors the same contract at a finer grain, and
// every hot-path optimization must preserve it: the event queue breaks
// timestamp ties by schedule order, the incremental holders/wanters indexes
// iterate in ascending peer-id order (candidate order feeds the RNG draws),
// and no behavior depends on map iteration order, pointer values, or wall
// time. The engine hot path is allocation-free at steady state — free-listed
// event-queue items, closure-free block events, free-listed session/request
// objects, and pooled ring-search scratch — without bending any of the
// above.
//
// Performance is tracked continuously: exchsim -perf appends an engine
// report (events/sec, ring-search traversal effort, allocation load) to
// stderr without touching the hot path, and `make bench-json` runs the
// benchmark suite through cmd/benchjson into the machine-readable trajectory
// point BENCH_2.json at the repo root, which CI's bench-track job
// regenerates, gates (>15% event-rate regression fails), and archives on
// every push.
//
// The trusted mediator is a horizontally scalable service tier, not a
// single process: a MediatorCluster partitions escrow and flagged-peer
// state across N shards by consistent hashing over object id, every shard
// serves the tier's topology (and redirects misrouted traffic), and nodes
// reach it exclusively through the shard-aware client layer
// (internal/medclient) — shard-map caching, pooled per-shard connections,
// retry with backoff, write-through replica deposits, and failover to the
// replica shard when a mediator dies mid-verify. With Config.Mediator set,
// nodes speak the mediated block path natively: blocks travel sealed under
// an escrowed per-exchange key and a transfer completes only after the
// mediator audits sample blocks and releases the key, so cheaters are
// flagged tier-wide rather than just blacklisted locally. Durability is
// layered: without a data directory a shard restart loses its in-memory
// escrow by design — the protocol distinguishes that transient refusal (no
// honest peer is ever flagged for it) and fresh sessions re-escrow, so
// detection converges through failures; with MediatorShardOpts.DataDir set
// each shard appends every deposit and flag to a per-shard write-ahead log
// and replays it at startup, so restarts forget neither escrow nor
// detection history, and flags replicate to the object's replica shard the
// way deposits already write through. The tier is also elastic:
// Cluster.AddShard and RemoveShard grow or shrink the ring live, migrating
// only the consistent-hash arcs that moved (via handoff messages between
// members) and bumping the shard-map epoch so clients refetch mid-run.
//
// The live stack scales past unit scenarios through the swarm harness
// (internal/swarm): RunSwarm launches N real nodes plus a mediator tier
// (Config.Mediators shards) over the in-memory transport or TCP loopback
// (with configurable per-I/O deadlines) and drives a declarative scenario —
// flash crowd, steady mixed workload, free-rider fraction, mediator-audited
// cheaters, churn that closes and restarts nodes mid-run hundreds of times,
// medfail, which kills and restarts mediator shards while mediated
// transfers are in flight and asserts cheater detection still converges, or
// reshard, which churns a durable tier with kills, restarts, and live
// grow/shrink reshapes and asserts zero detection history is lost.
// Results aggregate every node's Stats into the simulator's figure-shaped
// TSV (mean download seconds per "live/<class>" series keyed by the
// free-rider fraction), so the live network reproduces Figure 12's sharing
// vs non-sharing gap side by side with exchsim output. Shutdown is graceful
// end to end: nodes track every connection from the moment it is accepted
// or dialed, Close unblocks all readers and writers and fails pending
// Download waiters with ErrNodeClosed, and the mediator tears down idle
// client connections instead of waiting on them forever.
//
// The examples directory demonstrates all three layers; cmd/exchsim
// regenerates the paper's figures from the command line (-parallel bounds
// the pool, -replicas turns on replication, -perf reports engine
// performance); cmd/exchswarm runs the live-network scenarios.
package barter
