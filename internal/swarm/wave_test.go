package swarm

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"barter/internal/rng"
	"barter/internal/testutil"
	"barter/internal/workload"
)

// TestWaveScenario drives the temporal workload scenario end to end with a
// recorded trace: every scheduled download completes, and the trace that
// comes out parses, validates, and covers the run's holds and demand.
func TestWaveScenario(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	var buf bytes.Buffer
	res, err := Run(Config{Scenario: Wave, Nodes: 40, Quick: true, Seed: 9, Record: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("wave: %d of %d downloads failed\n%s", res.Failed, res.Wanted, res.PeersTSV())
	}
	if res.Wanted == 0 || res.Completed != res.Wanted {
		t.Fatalf("wave: completed %d of %d", res.Completed, res.Wanted)
	}
	if res.TraceEvents == 0 {
		t.Fatal("recorded run reported zero trace events")
	}
	if !strings.Contains(res.TSV(), "trace: events=") {
		t.Fatalf("TSV missing trace line:\n%s", res.TSV())
	}

	tr, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("recorded trace does not parse: %v", err)
	}
	if tr.Header.Scenario != string(Wave) || tr.Header.Nodes < 40 || tr.Header.Horizon <= 0 {
		t.Fatalf("trace header %+v", tr.Header)
	}
	holds, requests := 0, 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case workload.KindHold:
			holds++
		case workload.KindRequest:
			requests++
		}
	}
	if holds == 0 {
		t.Error("trace recorded no seed holdings")
	}
	if requests != res.Wanted {
		t.Errorf("trace recorded %d requests, run wanted %d", requests, res.Wanted)
	}
}

// TestWaveCohortDepartures runs a spec with an early-departing cohort and
// checks the session edges reach the trace: arrive events for the late
// cohort, depart events for the early one.
func TestWaveCohortDepartures(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	spec, _ := workload.Builtin("constant")
	spec.RequestsPerPeer = 2
	spec.Cohorts = []workload.Cohort{
		{Name: "early", Frac: 0.25, Arrive: 0, Depart: 0.5},
		{Name: "late", Frac: 0.25, Arrive: 0.3},
	}
	var buf bytes.Buffer
	res, err := Run(Config{Scenario: Wave, Nodes: 40, Quick: true, Seed: 4, Workload: spec, Record: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("wave cohorts: %d failures\n%s", res.Failed, res.PeersTSV())
	}
	tr, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	arrives, departs := 0, 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case workload.KindArrive:
			arrives++
		case workload.KindDepart:
			departs++
		}
	}
	if arrives == 0 {
		t.Error("late cohort recorded no arrive events")
	}
	if departs == 0 {
		t.Error("early cohort recorded no depart events")
	}
}

// TestWaveWantsDeterministic pins the structural determinism the replay
// story rests on: two runs with the same seed build identical want lists
// (objects and scheduled times), however the wall clock behaves.
func TestWaveWantsDeterministic(t *testing.T) {
	build := func() []string {
		s := &swarmRun{cfg: Config{Scenario: Wave, Nodes: 40, Quick: true, Seed: 6}}
		if err := s.cfg.fillDefaults(); err != nil {
			t.Fatal(err)
		}
		s.rng = rng.New(s.cfg.Seed)
		if err := s.buildWave(); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, p := range s.peers {
			for _, w := range p.wants {
				out = append(out, strings.Join([]string{
					strconv.Itoa(int(p.id)), strconv.Itoa(int(w.obj)), w.startAt.String(),
				}, "/"))
			}
		}
		return out
	}
	a, b := build(), build()
	if len(a) == 0 {
		t.Fatal("wave built no wants")
	}
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Fatal("wave want structure not deterministic")
	}
}

func TestWorkloadRejectedOffWave(t *testing.T) {
	spec, _ := workload.Builtin("flash")
	if _, err := Run(Config{Scenario: Mixed, Nodes: 10, Quick: true, Workload: spec}); err == nil {
		t.Fatal("Workload spec accepted on a non-wave scenario")
	}
}
