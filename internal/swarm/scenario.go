package swarm

import (
	"fmt"

	"barter/internal/catalog"
	"barter/internal/core"
)

// buildWorld assigns classes, places content, derives wants, and spawns
// every node for the configured scenario. All structural choices draw from
// the run's seeded RNG.
func (s *swarmRun) buildWorld() error {
	switch s.cfg.Scenario {
	case FlashCrowd:
		s.buildFlashCrowd(ClassSharing, 0)
	case Cheater:
		s.buildFlashCrowd(ClassCorrupt, s.cfg.CorruptFrac)
	case Mixed, Churn:
		s.buildMixed()
	case Freerider:
		s.buildFreerider()
	}
	for _, p := range s.peers {
		if err := s.spawn(p); err != nil {
			return err
		}
	}
	return nil
}

// buildFlashCrowd: one object, a handful of seed holders, everyone else
// downloads it simultaneously. badFrac of the seeds get badClass (the
// cheater scenario corrupts them; flashcrowd passes zero). Downloaders'
// provider sets hold every seed plus a few fellow downloaders, so completed
// sharers spread the object epidemically.
func (s *swarmRun) buildFlashCrowd(badClass string, badFrac float64) {
	const obj = catalog.ObjectID(1)
	seeds := max(2, s.cfg.Nodes/30)
	bad := 0
	if badFrac > 0 {
		// At least one corrupt seed so the scenario means something, and at
		// least one honest seed so downloads can complete at all.
		bad = min(max(1, int(float64(seeds)*badFrac)), seeds-1)
	}
	for i := 0; i < s.cfg.Nodes; i++ {
		p := &peerState{id: core.PeerID(i + 1), class: ClassSharing}
		if i < seeds {
			if i < bad {
				p.class = badClass
			}
			p.holds = []catalog.ObjectID{obj}
		}
		s.peers = append(s.peers, p)
	}
	seedIDs := make([]core.PeerID, seeds)
	for i := range seedIDs {
		seedIDs[i] = s.peers[i].id
	}
	for _, p := range s.peers[seeds:] {
		providers := append([]core.PeerID(nil), seedIDs...)
		// A few fellow downloaders: they hold nothing yet, but the retry
		// path finds them once they complete.
		for _, j := range s.rng.Perm(s.cfg.Nodes - seeds)[:min(s.cfg.ProvidersPerWant, s.cfg.Nodes-seeds)] {
			other := s.peers[seeds+j]
			if other.id != p.id {
				providers = append(providers, other.id)
			}
		}
		p.wants = []*wantState{{obj: obj, providers: providers}}
	}
}

// buildMixed: every object starts at one sharer (round-robin); every node
// wants WantsPerNode objects it does not hold, from the holder plus a few
// random peers.
func (s *swarmRun) buildMixed() {
	holder := make(map[catalog.ObjectID]core.PeerID, s.cfg.Objects)
	for i := 0; i < s.cfg.Nodes; i++ {
		p := &peerState{id: core.PeerID(i + 1), class: ClassSharing}
		if s.cfg.FreeriderFrac > 0 && s.rng.Float64() < s.cfg.FreeriderFrac {
			p.class = ClassNonSharing
		}
		s.peers = append(s.peers, p)
	}
	sharers := make([]*peerState, 0, len(s.peers))
	for _, p := range s.peers {
		if p.class == ClassSharing {
			sharers = append(sharers, p)
		}
	}
	if len(sharers) == 0 {
		// A high FreeriderFrac can randomly leave nobody to hold content;
		// the world needs at least one holder to mean anything.
		s.peers[0].class = ClassSharing
		sharers = append(sharers, s.peers[0])
	}
	for o := 1; o <= s.cfg.Objects; o++ {
		obj := catalog.ObjectID(o)
		p := sharers[(o-1)%len(sharers)]
		p.holds = append(p.holds, obj)
		holder[obj] = p.id
	}
	for _, p := range s.peers {
		held := make(map[catalog.ObjectID]bool, len(p.holds))
		for _, o := range p.holds {
			held[o] = true
		}
		for _, oi := range s.rng.Perm(s.cfg.Objects) {
			if len(p.wants) >= s.cfg.WantsPerNode {
				break
			}
			obj := catalog.ObjectID(oi + 1)
			if held[obj] {
				continue
			}
			providers := []core.PeerID{holder[obj]}
			for _, j := range s.rng.Perm(s.cfg.Nodes)[:min(s.cfg.ProvidersPerWant, s.cfg.Nodes)] {
				other := s.peers[j]
				if other.id != p.id && other.id != holder[obj] {
					providers = append(providers, other.id)
				}
			}
			p.wants = append(p.wants, &wantState{obj: obj, providers: providers})
		}
	}
}

// buildFreerider: sharers hold one object each and are paired into mutual
// wants — the live network's pairwise exchange substrate — while
// FreeriderFrac of the population holds nothing and wants random sharer
// objects. With scarce, paced upload slots the sharing class completes
// through exchange priority; the non-sharing class waits for spare
// capacity. This is the live qualitative check of the simulator's Fig. 12.
func (s *swarmRun) buildFreerider() {
	riders := int(float64(s.cfg.Nodes) * s.cfg.FreeriderFrac)
	sharers := s.cfg.Nodes - riders
	if sharers%2 == 1 { // pairing needs an even sharer count
		sharers--
		riders++
	}
	if sharers < 2 {
		// A high fraction at a small population can round the sharing class
		// away entirely; the scenario needs at least one exchange pair or
		// the run measures nothing.
		sharers = 2
		riders = s.cfg.Nodes - 2
	}
	// One object per sharer; sharer 2k and 2k+1 want each other's object.
	s.cfg.Objects = sharers
	for i := 0; i < sharers; i++ {
		obj := catalog.ObjectID(i + 1)
		p := &peerState{
			id:    core.PeerID(i + 1),
			class: ClassSharing,
			holds: []catalog.ObjectID{obj},
		}
		s.peers = append(s.peers, p)
	}
	for i := 0; i < sharers; i++ {
		partner := i ^ 1 // 0<->1, 2<->3, ...
		obj := catalog.ObjectID(partner + 1)
		s.peers[i].wants = []*wantState{{
			obj:       obj,
			providers: []core.PeerID{s.peers[partner].id},
		}}
	}
	for i := 0; i < riders; i++ {
		p := &peerState{id: core.PeerID(sharers + i + 1), class: ClassNonSharing}
		wants := min(s.cfg.WantsPerNode, sharers)
		for _, oi := range s.rng.Perm(sharers)[:wants] {
			obj := catalog.ObjectID(oi + 1)
			// Both the holder and its partner will hold the object once
			// their exchange completes.
			p.wants = append(p.wants, &wantState{
				obj:       obj,
				providers: []core.PeerID{s.peers[oi].id, s.peers[oi^1].id},
			})
		}
		s.peers = append(s.peers, p)
	}
	// The digest oracle sized the catalog before Objects was final; trim is
	// unnecessary (extra entries are harmless), but make sure every object
	// in play has digests.
	for o := 1; o <= s.cfg.Objects; o++ {
		obj := catalog.ObjectID(o)
		if _, ok := s.oracle[obj]; !ok {
			s.oracle[obj] = blockDigests(objData(obj, s.cfg.ObjectSize), s.cfg.BlockSize)
		}
	}
}

// describe names the world for progress logs.
func (s *swarmRun) describe() string {
	classes := make(map[string]int)
	for _, p := range s.peers {
		classes[p.class]++
	}
	return fmt.Sprintf("%s: %d nodes %v, %d objects", s.cfg.Scenario, len(s.peers), classes, s.cfg.Objects)
}
