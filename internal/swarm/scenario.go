package swarm

import (
	"fmt"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/strategy"
	"barter/internal/workload"
)

// buildWorld assigns strategy classes, places content, derives wants, and
// spawns every node for the configured scenario. All structural choices draw
// from the run's seeded RNG, and every class assignment is a
// strategy.Strategy — the same definitions internal/sim consumes.
func (s *swarmRun) buildWorld() error {
	switch s.cfg.Scenario {
	case FlashCrowd:
		s.buildFlashCrowd(strategy.Sharing(), 0)
	case Cheater, Medfail, Reshard:
		// Medfail and reshard are the cheater world run over the mediated
		// block path; spawn wires each node to the mediator tier.
		s.buildFlashCrowd(strategy.Corrupt(), s.cfg.CorruptFrac)
	case Mixed, Churn:
		s.buildMixed()
	case Freerider:
		s.buildFreerider()
	case Adversary:
		s.buildAdversary()
	case Wave:
		if err := s.buildWave(); err != nil {
			return err
		}
	}
	for _, p := range s.peers {
		if err := s.spawn(p); err != nil {
			return err
		}
	}
	return nil
}

// buildFlashCrowd: one object, a handful of seed holders, everyone else
// downloads it simultaneously. badFrac of the seeds get badStrat (the
// cheater scenario corrupts them; flashcrowd passes zero). Downloaders'
// provider sets hold every seed plus a few fellow downloaders, so completed
// sharers spread the object epidemically.
func (s *swarmRun) buildFlashCrowd(badStrat strategy.Strategy, badFrac float64) {
	const obj = catalog.ObjectID(1)
	seeds := max(2, s.cfg.Nodes/30)
	bad := 0
	if badFrac > 0 {
		// At least one corrupt seed so the scenario means something, and at
		// least one honest seed so downloads can complete at all.
		bad = min(max(1, int(float64(seeds)*badFrac)), seeds-1)
	}
	for i := 0; i < s.cfg.Nodes; i++ {
		p := &peerState{id: core.PeerID(i + 1), strat: strategy.Sharing()}
		if i < seeds {
			if i < bad {
				p.strat = badStrat
			}
			p.holds = []catalog.ObjectID{obj}
		}
		s.peers = append(s.peers, p)
	}
	seedIDs := make([]core.PeerID, seeds)
	for i := range seedIDs {
		seedIDs[i] = s.peers[i].id
	}
	for _, p := range s.peers[seeds:] {
		providers := append([]core.PeerID(nil), seedIDs...)
		// A few fellow downloaders: they hold nothing yet, but the retry
		// path finds them once they complete.
		for _, j := range s.rng.Perm(s.cfg.Nodes - seeds)[:min(s.cfg.ProvidersPerWant, s.cfg.Nodes-seeds)] {
			other := s.peers[seeds+j]
			if other.id != p.id {
				providers = append(providers, other.id)
			}
		}
		p.wants = []*wantState{{obj: obj, providers: providers}}
	}
}

// buildMixed: every object starts at one sharer (round-robin); every node
// wants WantsPerNode objects it does not hold, from the holder plus a few
// random peers.
func (s *swarmRun) buildMixed() {
	holder := make(map[catalog.ObjectID]core.PeerID, s.cfg.Objects)
	for i := 0; i < s.cfg.Nodes; i++ {
		p := &peerState{id: core.PeerID(i + 1), strat: strategy.Sharing()}
		if s.cfg.FreeriderFrac > 0 && s.rng.Float64() < s.cfg.FreeriderFrac {
			p.strat = strategy.NonSharing()
		}
		s.peers = append(s.peers, p)
	}
	sharers := make([]*peerState, 0, len(s.peers))
	for _, p := range s.peers {
		if p.strat.Share {
			sharers = append(sharers, p)
		}
	}
	if len(sharers) == 0 {
		// A high FreeriderFrac can randomly leave nobody to hold content;
		// the world needs at least one holder to mean anything.
		s.peers[0].strat = strategy.Sharing()
		sharers = append(sharers, s.peers[0])
	}
	for o := 1; o <= s.cfg.Objects; o++ {
		obj := catalog.ObjectID(o)
		p := sharers[(o-1)%len(sharers)]
		p.holds = append(p.holds, obj)
		holder[obj] = p.id
	}
	for _, p := range s.peers {
		held := make(map[catalog.ObjectID]bool, len(p.holds))
		for _, o := range p.holds {
			held[o] = true
		}
		for _, oi := range s.rng.Perm(s.cfg.Objects) {
			if len(p.wants) >= s.cfg.WantsPerNode {
				break
			}
			obj := catalog.ObjectID(oi + 1)
			if held[obj] {
				continue
			}
			providers := []core.PeerID{holder[obj]}
			for _, j := range s.rng.Perm(s.cfg.Nodes)[:min(s.cfg.ProvidersPerWant, s.cfg.Nodes)] {
				other := s.peers[j]
				if other.id != p.id && other.id != holder[obj] {
					providers = append(providers, other.id)
				}
			}
			p.wants = append(p.wants, &wantState{obj: obj, providers: providers})
		}
	}
}

// pairBlock appends one block of peers running strat: each holds its own
// object and wants its partner's (peer 2k and 2k+1 exchange), the live
// network's pairwise exchange substrate. Objects are numbered from
// firstObj; ids from firstID. It returns the next free id/object numbers.
func (s *swarmRun) pairBlock(strat strategy.Strategy, count, firstID, firstObj int) (nextID, nextObj int) {
	start := len(s.peers)
	for i := 0; i < count; i++ {
		obj := catalog.ObjectID(firstObj + i)
		p := &peerState{
			id:    core.PeerID(firstID + i),
			strat: strat,
			holds: []catalog.ObjectID{obj},
		}
		s.peers = append(s.peers, p)
	}
	for i := 0; i < count; i++ {
		partner := i ^ 1 // 0<->1, 2<->3, ...
		s.peers[start+i].wants = []*wantState{{
			obj:       catalog.ObjectID(firstObj + partner),
			providers: []core.PeerID{s.peers[start+partner].id},
		}}
	}
	return firstID + count, firstObj + count
}

// buildFreerider: sharers hold one object each and are paired into mutual
// wants — the live network's pairwise exchange substrate — while
// FreeriderFrac of the population holds nothing and wants random sharer
// objects. With scarce, paced upload slots the sharing class completes
// through exchange priority; the non-sharing class waits for spare
// capacity. This is the live qualitative check of the simulator's Fig. 12.
func (s *swarmRun) buildFreerider() {
	riders := int(float64(s.cfg.Nodes) * s.cfg.FreeriderFrac)
	sharers := s.cfg.Nodes - riders
	if sharers%2 == 1 { // pairing needs an even sharer count
		sharers--
		riders++
	}
	if sharers < 2 {
		// A high fraction at a small population can round the sharing class
		// away entirely; the scenario needs at least one exchange pair or
		// the run measures nothing.
		sharers = 2
		riders = s.cfg.Nodes - 2
	}
	// One object per sharer; sharer 2k and 2k+1 want each other's object.
	s.cfg.Objects = sharers
	nextID, _ := s.pairBlock(strategy.Sharing(), sharers, 1, 1)
	for i := 0; i < riders; i++ {
		p := &peerState{id: core.PeerID(nextID + i), strat: strategy.NonSharing()}
		s.addSharerBlockWants(p, sharers)
		s.peers = append(s.peers, p)
	}
	s.topUpOracle()
}

// addSharerBlockWants gives a content-less leech its wants over the paired
// sharer block (objects 1..sharers held by s.peers[0..sharers-1]). Each
// want lists both the holder and its partner: the partner will hold the
// object too once their exchange completes.
func (s *swarmRun) addSharerBlockWants(p *peerState, sharers int) {
	wants := min(s.cfg.WantsPerNode, sharers)
	for _, oi := range s.rng.Perm(sharers)[:wants] {
		p.wants = append(p.wants, &wantState{
			obj:       catalog.ObjectID(oi + 1),
			providers: []core.PeerID{s.peers[oi].id, s.peers[oi^1].id},
		})
	}
}

// buildAdversary extends the freerider substrate with the strategic classes
// of internal/strategy: sharers, partial sharers, and adaptive free-riders
// each form mutual-want pairs within their class (partial pairs exchange
// through throttled slots; adaptive pairs deadlock until starvation flips
// them to contributing), while whitewashers and static free-riders hold
// nothing and want sharer-held objects. Whitewashers additionally target one
// adaptive-held object when available — a want that cannot complete before
// the adaptive class flips, guaranteeing the identity churn has something to
// launder.
func (s *swarmRun) buildAdversary() {
	counts := strategy.Mix{
		{Strategy: strategy.AdaptiveFreerider(), Frac: s.cfg.AdaptiveFrac},
		{Strategy: strategy.Whitewasher(), Frac: s.cfg.WhitewashFrac},
		{Strategy: strategy.PartialSharer(), Frac: s.cfg.PartialFrac},
		{Strategy: strategy.NonSharing(), Frac: s.cfg.FreeriderFrac},
		{Strategy: strategy.Sharing(), Frac: 1 - s.cfg.AdaptiveFrac - s.cfg.WhitewashFrac - s.cfg.PartialFrac - s.cfg.FreeriderFrac},
	}.Counts(s.cfg.Nodes)
	adaptive, whitewashers, partials, riders, sharers := counts[0], counts[1], counts[2], counts[3], counts[4]
	// Paired classes need even counts; remainders become plain riders.
	for _, c := range []*int{&adaptive, &partials, &sharers} {
		if *c%2 == 1 {
			*c--
			riders++
		}
	}
	if sharers < 2 {
		// Keep at least one true exchange pair so the scenario's sharer
		// baseline (and the whitewashers' provider set) exists. The two
		// converted peers must come out of the other classes — the
		// population stays at exactly cfg.Nodes, or initial ids would
		// collide with the fresh identities whitewashers respawn under.
		switch {
		case riders+whitewashers >= 2:
			for i := 0; i < 2; i++ {
				if riders > 0 {
					riders--
				} else {
					whitewashers--
				}
			}
		case adaptive >= 2:
			adaptive -= 2
		default:
			partials -= 2 // Nodes >= 4 guarantees some class has a pair
		}
		sharers = 2
	}

	nextID, nextObj := 1, 1
	nextID, nextObj = s.pairBlock(strategy.Sharing(), sharers, nextID, nextObj)
	nextID, nextObj = s.pairBlock(strategy.PartialSharer(), partials, nextID, nextObj)
	firstAdaptiveObj := nextObj
	nextID, nextObj = s.pairBlock(strategy.AdaptiveFreerider(), adaptive, nextID, nextObj)
	s.cfg.Objects = nextObj - 1

	// Whitewashers and riders: no content, wants over the sharer block (and
	// for whitewashers, one adaptive-held object first when there is one).
	addLeech := func(strat strategy.Strategy) {
		p := &peerState{id: core.PeerID(nextID), strat: strat}
		nextID++
		if strat.Whitewash && adaptive > 0 {
			oi := s.rng.Intn(adaptive)
			obj := catalog.ObjectID(firstAdaptiveObj + oi)
			holderIdx := sharers + partials + oi
			p.wants = append(p.wants, &wantState{
				obj:       obj,
				providers: []core.PeerID{s.peers[holderIdx].id},
			})
		}
		s.addSharerBlockWants(p, sharers)
		s.peers = append(s.peers, p)
	}
	for i := 0; i < whitewashers; i++ {
		addLeech(strategy.Whitewasher())
	}
	for i := 0; i < riders; i++ {
		addLeech(strategy.NonSharing())
	}
	s.topUpOracle()
}

// buildWave: a few seed holders carry the catalog round-robin, and every
// other peer's wants come from the workload spec compiled over WaveWindow —
// the live counterpart of sim.Config.Workload. Each downloader's arrival
// times and object draws use its private schedule stream, so the same
// (spec, window, population, objects, seed) tuple always yields the same
// want structure; only wall-clock service times vary run to run. Repeated
// draws of an object a peer already wants collapse into the one want (a live
// node downloads an object once), and cohort members get their session
// edges: wants only inside the window, plus a departure the monitors enforce
// by closing the node.
func (s *swarmRun) buildWave() error {
	spec := s.cfg.Workload
	if spec == nil {
		// The default live wave: the flash-crowd builtin, re-anchored so one
		// downloader expects about WantsPerNode requests over the window
		// (the builtins' anchor suits hours-long simulations, not a
		// seconds-long swarm).
		spec, _ = workload.Builtin("flash")
		spec.RequestsPerPeer = float64(s.cfg.WantsPerNode)
	}
	seeds := max(2, s.cfg.Nodes/20)
	downloaders := s.cfg.Nodes - seeds
	window := s.cfg.WaveWindow.Seconds()
	sched, err := spec.Compile(window, downloaders, s.cfg.Objects, s.cfg.Seed)
	if err != nil {
		return fmt.Errorf("swarm: wave workload: %w", err)
	}
	for i := 0; i < seeds; i++ {
		p := &peerState{id: core.PeerID(i + 1), strat: strategy.Sharing()}
		for o := i + 1; o <= s.cfg.Objects; o += seeds {
			p.holds = append(p.holds, catalog.ObjectID(o))
		}
		s.peers = append(s.peers, p)
	}
	for d := 0; d < downloaders; d++ {
		p := &peerState{id: core.PeerID(seeds + d + 1), strat: strategy.Sharing()}
		arrive, depart := sched.Session(d)
		st := sched.PeerStream(d)
		seen := make(map[catalog.ObjectID]bool)
		for t := sched.NextArrival(arrive, st); t < depart; t = sched.NextArrival(t, st) {
			// Schedule objects are 0-based; swarm objects are 1-based.
			obj := catalog.ObjectID(sched.SampleObject(t, st) + 1)
			if seen[obj] {
				continue
			}
			seen[obj] = true
			// The owning seed always provides; a few fellow downloaders join
			// the set so completed sharers spread the object epidemically.
			providers := []core.PeerID{s.peers[(int(obj)-1)%seeds].id}
			for _, j := range s.rng.Perm(downloaders)[:min(s.cfg.ProvidersPerWant, downloaders)] {
				if other := core.PeerID(seeds + j + 1); other != p.id {
					providers = append(providers, other)
				}
			}
			p.wants = append(p.wants, &wantState{
				obj:       obj,
				providers: providers,
				startAt:   time.Duration(t * float64(time.Second)),
			})
		}
		if arrive > 0 && s.rec != nil {
			// The cohort's session start is part of the recorded demand shape
			// even though the live node simply idles until its first want.
			s.rec.Arrive(arrive, int(p.id))
		}
		if depart < window {
			p.departAt = time.Duration(depart * float64(time.Second))
		}
		s.peers = append(s.peers, p)
	}
	return nil
}

// topUpOracle makes sure every object in play has digests: scenario builders
// finalize cfg.Objects after the initial oracle sizing.
func (s *swarmRun) topUpOracle() {
	for o := 1; o <= s.cfg.Objects; o++ {
		obj := catalog.ObjectID(o)
		if _, ok := s.oracle[obj]; !ok {
			s.oracle[obj] = blockDigests(objData(obj, s.cfg.ObjectSize), s.cfg.BlockSize)
		}
	}
}

// describe names the world for progress logs.
func (s *swarmRun) describe() string {
	classes := make(map[string]int)
	for _, p := range s.peers {
		classes[p.class()]++
	}
	return fmt.Sprintf("%s: %d nodes %v, %d objects", s.cfg.Scenario, len(s.peers), classes, s.cfg.Objects)
}
