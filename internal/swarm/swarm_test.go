package swarm

import (
	"strings"
	"testing"
	"time"

	"barter/internal/testutil"
)

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(Config{Scenario: "bogus", Nodes: 10}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Run(Config{Scenario: FlashCrowd, Nodes: 2}); err == nil {
		t.Fatal("tiny swarm accepted")
	}
	if _, err := Run(Config{Scenario: Freerider, Nodes: 10, FreeriderFrac: 0.95}); err == nil {
		t.Fatal("out-of-range freerider fraction accepted")
	}
}

func TestScenariosListed(t *testing.T) {
	if len(Scenarios()) != 9 {
		t.Fatalf("Scenarios() = %v", Scenarios())
	}
}

// TestFlashCrowd is the acceptance scenario: hundreds of live peers fetch
// one object from a few seeds over the in-memory transport, everyone
// completes, and no goroutine outlives the run.
func TestFlashCrowd(t *testing.T) {
	nodes := 300
	if testing.Short() {
		nodes = 120 // the race detector multiplies costs; stay second-scale
	}
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{Scenario: FlashCrowd, Nodes: nodes, Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("flashcrowd: %d of %d downloads failed\n%s", res.Failed, res.Wanted, res.PeersTSV())
	}
	if res.Completed != res.Wanted || res.Wanted == 0 {
		t.Fatalf("flashcrowd: completed %d of %d", res.Completed, res.Wanted)
	}
	if mean, n := res.ClassMean(ClassSharing); n == 0 || mean <= 0 {
		t.Fatalf("no sharing-class completions recorded (n=%d mean=%v)", n, mean)
	}
	tsv := res.TSV()
	if !strings.Contains(tsv, "live/sharing") || !strings.Contains(tsv, "completed=") {
		t.Fatalf("TSV missing expected content:\n%s", tsv)
	}
}

// TestMixedWorkload drives the steady scenario and checks the aggregate
// accounting adds up.
func TestMixedWorkload(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{Scenario: Mixed, Nodes: 60, Quick: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Wanted {
		t.Fatalf("mixed: completed %d failed %d of %d\n%s", res.Completed, res.Failed, res.Wanted, res.PeersTSV())
	}
	wanted, completed, failed := 0, 0, 0
	for _, p := range res.Peers {
		wanted += p.Wanted
		completed += p.Completed
		failed += p.Failed
	}
	if wanted != res.Wanted || completed != res.Completed || failed != res.Failed {
		t.Fatal("aggregate counters disagree with per-peer rows")
	}
}

// TestFreeriderGap is the live qualitative check of the simulator's
// Figure 12: with scarce, paced upload slots, the sharing class — served
// with exchange priority — completes its downloads faster than the
// non-sharing class, which launched its requests first and still waits.
func TestFreeriderGap(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{Scenario: Freerider, Nodes: 40, Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sharing, ns := res.ClassMean(ClassSharing)
	rider, nr := res.ClassMean(ClassNonSharing)
	if ns == 0 || nr == 0 {
		t.Fatalf("missing class completions (sharing n=%d, non-sharing n=%d)\n%s", ns, nr, res.PeersTSV())
	}
	if sharing >= rider {
		t.Fatalf("no incentive gap: sharing mean %v >= non-sharing mean %v\n%s", sharing, rider, res.PeersTSV())
	}
	// Exchange machinery, not just scheduling luck, must have carried
	// sharers: rings formed and exchange blocks flowed.
	rings, exch := 0, 0
	for _, p := range res.Peers {
		rings += p.Stats.RingsJoined
		exch += p.Stats.ExchangeBlocksSent
	}
	if rings == 0 || exch == 0 {
		t.Fatalf("no live exchanges in freerider run (rings=%d exchange blocks=%d)", rings, exch)
	}
	if !strings.Contains(res.TSV(), "live/non-sharing") {
		t.Fatalf("TSV missing non-sharing series:\n%s", res.TSV())
	}
}

// TestCheaterAudited: corrupt seeds serve junk; every downloader still
// completes from honest seeds (per-block validation), and the mediator's
// audit flags every cheater.
func TestCheaterAudited(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{Scenario: Cheater, Nodes: 60, Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("cheater scenario: %d failures\n%s", res.Failed, res.PeersTSV())
	}
	corrupt := 0
	for _, p := range res.Peers {
		if p.Class == ClassCorrupt {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatal("world built no corrupt peers")
	}
	if res.Flagged != corrupt {
		t.Fatalf("mediator flagged %d of %d cheaters", res.Flagged, corrupt)
	}
	rejected := 0
	for _, p := range res.Peers {
		rejected += p.Stats.BlocksRejected
	}
	if rejected == 0 {
		t.Fatal("no junk blocks were rejected — cheaters never probed anyone")
	}
}

// TestCheaterAuditedShardedTier reruns the cheater acceptance check with a
// 4-shard mediator tier: audits route by consistent hashing and the
// detection result must match the single-mediator run — every cheater
// flagged.
func TestCheaterAuditedShardedTier(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{Scenario: Cheater, Nodes: 60, Quick: true, Seed: 5, Mediators: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("cheater w/ shards: %d failures\n%s", res.Failed, res.PeersTSV())
	}
	corrupt := 0
	for _, p := range res.Peers {
		if p.Class == ClassCorrupt {
			corrupt++
		}
	}
	if corrupt == 0 || res.Flagged != corrupt {
		t.Fatalf("sharded tier flagged %d of %d cheaters", res.Flagged, corrupt)
	}
	if res.Mediators != 4 {
		t.Fatalf("result reports %d mediators, want 4", res.Mediators)
	}
	if !strings.Contains(res.TSV(), "shards=4") {
		t.Fatalf("TSV missing shard count:\n%s", res.TSV())
	}
}

// TestMedfailScenario is the mediator-tier acceptance run: nodes speak the
// mediated block path natively while shards are killed and restarted
// mid-run. Every download must still complete, every cheater must end up
// flagged, and the audit machinery must show real node-side traffic.
func TestMedfailScenario(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{
		Scenario:        Medfail,
		Nodes:           48,
		Quick:           true,
		Seed:            5,
		MedKills:        4,
		MedKillInterval: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Wanted {
		t.Fatalf("medfail: completed %d failed %d of %d\n%s",
			res.Completed, res.Failed, res.Wanted, res.PeersTSV())
	}
	corrupt := 0
	audits, rejects := 0, 0
	for _, p := range res.Peers {
		if p.Class == ClassCorrupt {
			corrupt++
		}
		audits += p.Stats.MedVerifies
		rejects += p.Stats.MedRejects
	}
	if corrupt == 0 {
		t.Fatal("world built no corrupt peers")
	}
	if res.Flagged != corrupt {
		t.Fatalf("tier flagged %d of %d cheaters despite failover\n%s", res.Flagged, corrupt, res.PeersTSV())
	}
	if audits == 0 {
		t.Fatal("no node-side audits ran — the mediated block path never engaged")
	}
	if res.ShardKills == 0 {
		t.Fatal("no mediator shard was ever killed")
	}
	tsv := res.TSV()
	if !strings.Contains(tsv, "shard_kills=") {
		t.Fatalf("TSV missing shard-kill counter:\n%s", tsv)
	}
	_ = rejects // junk transfers may or may not have occurred organically
}

// TestReshardScenario is the durable-elastic-tier acceptance run: the
// medfail cheater mix while the resharder composes shard restarts with live
// AddShard/RemoveShard reshapes, each backed by a write-ahead log. Every
// download completes, every cheater ends up flagged, at least one reshape
// actually ran, and — the tentpole criterion — zero detection-history flags
// were lost across any reshape or the final full-tier restart.
func TestReshardScenario(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{
		Scenario: Reshard,
		Nodes:    48,
		Quick:    true,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Wanted {
		t.Fatalf("reshard: completed %d failed %d of %d\n%s",
			res.Completed, res.Failed, res.Wanted, res.PeersTSV())
	}
	corrupt := 0
	for _, p := range res.Peers {
		if p.Class == ClassCorrupt {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatal("world built no corrupt peers")
	}
	if res.Flagged != corrupt {
		t.Fatalf("tier flagged %d of %d cheaters across reshapes\n%s", res.Flagged, corrupt, res.PeersTSV())
	}
	if res.Reshards == 0 {
		t.Fatal("no tier reshape ever completed")
	}
	if res.FlagsLost != 0 {
		t.Fatalf("reshapes lost %d detection-history flags", res.FlagsLost)
	}
	tsv := res.TSV()
	if !strings.Contains(tsv, "reshapes=") || !strings.Contains(tsv, "flags_lost=0") {
		t.Fatalf("TSV missing reshard counters:\n%s", tsv)
	}
}

// TestChurn is the acceptance scenario for shutdown robustness: nodes are
// closed and restarted dozens of times mid-run (under -race in CI's short
// suite), every download still completes, and nothing leaks or hangs.
func TestChurn(t *testing.T) {
	restarts := 80
	nodes := 100
	if testing.Short() {
		restarts = 50 // the acceptance floor, affordable under -race
	}
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{
		Scenario: Churn,
		Nodes:    nodes,
		Quick:    true,
		Seed:     13,
		Restarts: restarts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < restarts {
		t.Fatalf("churned only %d times, want >= %d", res.Restarts, restarts)
	}
	if res.Failed != 0 || res.Completed != res.Wanted {
		t.Fatalf("churn: completed %d failed %d of %d (restarts=%d)\n%s",
			res.Completed, res.Failed, res.Wanted, res.Restarts, res.PeersTSV())
	}
}

// TestAdversaryScenario drives the full strategic-class population live:
// adaptive free-riders must be starved into contributing (flips), the
// whitewashers must churn identities at least once (their first want targets
// an adaptive-held object, unavailable for at least the patience window,
// which exceeds the whitewash interval), and every class must still complete
// all its downloads before the deadline.
func TestAdversaryScenario(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{
		Scenario:          Adversary,
		Nodes:             32,
		Quick:             true,
		Seed:              17,
		AdaptivePatience:  500 * time.Millisecond,
		WhitewashInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Wanted {
		t.Fatalf("adversary: completed %d failed %d of %d\n%s",
			res.Completed, res.Failed, res.Wanted, res.PeersTSV())
	}
	classes := make(map[string]int)
	for _, p := range res.Peers {
		classes[p.Class]++
	}
	for _, want := range []string{ClassSharing, ClassAdaptive, ClassWhitewasher, ClassPartial} {
		if classes[want] == 0 {
			t.Fatalf("world built no %s peers: %v", want, classes)
		}
	}
	if res.Flips == 0 {
		t.Fatalf("adaptive free-riders were never starved into contributing\n%s", res.PeersTSV())
	}
	if res.Whitewashes == 0 {
		t.Fatalf("whitewashers never churned identity\n%s", res.PeersTSV())
	}
	tsv := res.TSV()
	for _, want := range []string{"live/" + ClassAdaptive, "live/" + ClassWhitewasher, "live/" + ClassPartial, "# adversary: flips="} {
		if !strings.Contains(tsv, want) {
			t.Fatalf("TSV missing %q:\n%s", want, tsv)
		}
	}
	// Whitewashed peers report identities beyond the initial range.
	fresh := false
	for _, p := range res.Peers {
		if p.Whitewashes > 0 && int(p.ID) > 32 {
			fresh = true
		}
	}
	if !fresh {
		t.Fatalf("no whitewasher ended under a fresh identity\n%s", res.PeersTSV())
	}
}

// TestAdversaryWorldStaysAtNodes is the regression test for the sharer
// top-up overflowing the population: with fractions that round the sharing
// class away entirely at a tiny population, buildAdversary must still
// produce exactly Nodes peers with ids inside [1, Nodes] — otherwise a
// whitewasher's fresh identity could collide with a live initial peer.
func TestAdversaryWorldStaysAtNodes(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{
		Scenario:          Adversary,
		Nodes:             8,
		Quick:             true,
		Seed:              1,
		AdaptiveFrac:      0.3,
		WhitewashFrac:     0.3,
		PartialFrac:       0.3,
		AdaptivePatience:  200 * time.Millisecond,
		WhitewashInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 8 {
		t.Fatalf("world built %d peers, want 8\n%s", res.Nodes, res.PeersTSV())
	}
	seen := make(map[int]bool)
	for _, p := range res.Peers {
		id := int(p.ID)
		if p.Whitewashes == 0 && (id < 1 || id > 8) {
			t.Fatalf("initial peer id %d outside [1, 8]\n%s", id, res.PeersTSV())
		}
		if p.Whitewashes > 0 && id >= 1 && id <= 8 {
			t.Fatalf("whitewashed peer kept an initial-range id %d\n%s", id, res.PeersTSV())
		}
		if seen[id] {
			t.Fatalf("duplicate final id %d\n%s", id, res.PeersTSV())
		}
		seen[id] = true
	}
	if res.Failed != 0 {
		t.Fatalf("%d downloads failed\n%s", res.Failed, res.PeersTSV())
	}
}

// TestSwarmOverTCP runs a small flash crowd over real loopback sockets with
// read/write deadlines armed.
func TestSwarmOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP swarm skipped in -short (port churn under race)")
	}
	testutil.CheckGoroutineLeaks(t, 5)
	res, err := Run(Config{Scenario: FlashCrowd, Nodes: 40, Quick: true, Seed: 9, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Completed != res.Wanted {
		t.Fatalf("tcp flashcrowd: completed %d failed %d of %d", res.Completed, res.Failed, res.Wanted)
	}
}

func TestResultTSVShape(t *testing.T) {
	res := &Result{
		Scenario:      Freerider,
		Nodes:         4,
		FreeriderFrac: 0.5,
		Peers: []PeerResult{
			{ID: 1, Class: ClassSharing, Wanted: 1, Completed: 1, MeanCompletion: 2 * time.Second},
			{ID: 2, Class: ClassNonSharing, Wanted: 1, Completed: 1, MeanCompletion: 4 * time.Second},
		},
	}
	tsv := res.Table().TSV()
	if !strings.Contains(tsv, "fraction of non-sharing peers\tlive/sharing\tlive/non-sharing") {
		t.Fatalf("header shape:\n%s", tsv)
	}
	if !strings.Contains(tsv, "0.5\t2\t4") {
		t.Fatalf("row shape:\n%s", tsv)
	}
	if got, n := res.ClassMean(ClassNonSharing); n != 1 || got != 4*time.Second {
		t.Fatalf("ClassMean = %v, %d", got, n)
	}
	peers := res.PeersTSV()
	if !strings.HasPrefix(peers, "peer\tclass\t") || !strings.Contains(peers, "non-sharing") {
		t.Fatalf("peer rows:\n%s", peers)
	}
}
