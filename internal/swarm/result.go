package swarm

import (
	"fmt"
	"strings"
	"time"

	"barter/internal/core"
	"barter/internal/metrics"
	"barter/internal/node"
	"barter/internal/strategy"
)

// PeerResult is one node's outcome: its workload bookkeeping plus the live
// node's own protocol counters.
type PeerResult struct {
	// ID is the peer's current identity (a whitewasher's final one).
	ID core.PeerID
	// Class is the peer's strategy-class label (see internal/strategy).
	Class     string
	Restarts  int
	Wanted    int
	Completed int
	Failed    int
	// Attempts counts Download issuances across retries: above Wanted it
	// measures how often churn or source exhaustion forced a re-issue.
	Attempts int
	// Flips counts adaptive starvation-into-contribution transitions;
	// Whitewashes counts identity churns.
	Flips       int
	Whitewashes int
	// MeanCompletion averages this peer's completed download times
	// (zero with no completions).
	MeanCompletion time.Duration
	Stats          node.Stats
}

// Result aggregates one swarm run.
type Result struct {
	Scenario      Scenario
	Nodes         int
	Objects       int
	FreeriderFrac float64
	Elapsed       time.Duration
	Peers         []PeerResult
	// Wanted/Completed/Failed total the per-peer counts; Restarts totals
	// churn cycles; Flagged counts cheaters the mediator tier caught;
	// Flips and Whitewashes total the adversary scenario's adaptive
	// transitions and identity churns.
	Wanted      int
	Completed   int
	Failed      int
	Restarts    int
	Flagged     int
	Flips       int
	Whitewashes int
	// Mediators is the mediator tier size; ShardKills counts the shard
	// kill/restart cycles the medfail scenario performed.
	Mediators  int
	ShardKills int
	// Reshards counts completed elastic tier reshapes (restart/add/remove
	// cycles) and FlagsLost the detection-history entries any reshape — or
	// the final full-tier restart — forgot; the reshard scenario asserts
	// FlagsLost stays zero.
	Reshards  int
	FlagsLost int
	// TraceEvents counts the events recorded into Config.Record (zero when
	// the run was not recorded).
	TraceEvents int
}

// ClassMean returns the mean completion time over every finished download
// of the given class, and how many downloads that covers.
func (r *Result) ClassMean(class string) (time.Duration, int) {
	var sum time.Duration
	n := 0
	for i := range r.Peers {
		p := &r.Peers[i]
		if p.Class != class || p.Completed == 0 {
			continue
		}
		sum += p.MeanCompletion * time.Duration(p.Completed)
		n += p.Completed
	}
	if n == 0 {
		return 0, 0
	}
	return sum / time.Duration(n), n
}

// Table renders the run as the figure-shaped aggregate the simulator emits:
// mean completion time per peer class, keyed by the free-rider fraction —
// the live counterpart of Figure 12's x-axis. Scenarios without a
// non-sharing class still emit their classes at x = 0.
func (r *Result) Table() *metrics.Table {
	t := &metrics.Table{
		Title:  fmt.Sprintf("swarm %s: %d live nodes", r.Scenario, r.Nodes),
		XLabel: "fraction of non-sharing peers",
		YLabel: "mean download time (seconds)",
	}
	// Classes come from the shared strategy registry, in its canonical
	// order, so live series names line up with the simulator's and columns
	// stay stable across scenarios.
	for _, class := range strategy.CanonicalLabels() {
		if mean, n := r.ClassMean(class); n > 0 {
			t.Append("live/"+class, r.FreeriderFrac, mean.Seconds())
		}
	}
	return t
}

// TSV renders the figure table plus a comment block of run-level counters
// (the same comment-prefixed style exchsim reports carry).
func (r *Result) TSV() string {
	var b strings.Builder
	b.WriteString(r.Table().TSV())
	fmt.Fprintf(&b, "# scenario=%s nodes=%d objects=%d elapsed=%s\n",
		r.Scenario, r.Nodes, r.Objects, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "# downloads: wanted=%d completed=%d failed=%d\n", r.Wanted, r.Completed, r.Failed)
	if r.Restarts > 0 {
		fmt.Fprintf(&b, "# churn: restarts=%d\n", r.Restarts)
	}
	if r.Flagged > 0 || r.ShardKills > 0 {
		fmt.Fprintf(&b, "# mediator: shards=%d flagged=%d cheaters shard_kills=%d\n",
			r.Mediators, r.Flagged, r.ShardKills)
	}
	if r.Reshards > 0 || r.FlagsLost > 0 {
		fmt.Fprintf(&b, "# reshard: reshapes=%d flags_lost=%d\n", r.Reshards, r.FlagsLost)
	}
	if r.Flips > 0 || r.Whitewashes > 0 {
		fmt.Fprintf(&b, "# adversary: flips=%d whitewashes=%d\n", r.Flips, r.Whitewashes)
	}
	if r.TraceEvents > 0 {
		fmt.Fprintf(&b, "# trace: events=%d recorded\n", r.TraceEvents)
	}
	return b.String()
}

// PeersTSV renders one row per peer: workload outcome and protocol
// counters, for digging into a run beyond the aggregate.
func (r *Result) PeersTSV() string {
	var b strings.Builder
	b.WriteString("peer\tclass\twanted\tcompleted\tfailed\tattempts\tmean_s\trestarts\tflips\twhitewash\tblocks_sent\tblocks_recv\tblocks_rej\texch_blocks\trings\tpreempt\tserved\toverflows\taudits\taudit_rej\tstripes\tstripe_reassign\n")
	for i := range r.Peers {
		p := &r.Peers[i]
		fmt.Fprintf(&b, "%d\t%s\t%d\t%d\t%d\t%d\t%.3f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p.ID, p.Class, p.Wanted, p.Completed, p.Failed, p.Attempts, p.MeanCompletion.Seconds(),
			p.Restarts, p.Flips, p.Whitewashes,
			p.Stats.BlocksSent, p.Stats.BlocksReceived, p.Stats.BlocksRejected,
			p.Stats.ExchangeBlocksSent, p.Stats.RingsJoined, p.Stats.Preemptions,
			p.Stats.RequestsServed, p.Stats.SendOverflows,
			p.Stats.MedVerifies, p.Stats.MedRejects,
			p.Stats.StripesGranted, p.Stats.StripesReassigned)
	}
	return b.String()
}

// collect snapshots every peer into a Result. Called after all waiters have
// settled and before teardown, so node Stats are still reachable.
func (s *swarmRun) collect(elapsed time.Duration, flagged int) *Result {
	frac := s.cfg.FreeriderFrac
	if s.cfg.Scenario == Adversary {
		// The adversary scenario's x key is the total fraction of peers not
		// contributing faithfully (free-riders plus every adversary class):
		// without folding those in, a sweep over -adaptive/-whitewash/
		// -partial would emit every row at the same x and concatenated TSVs
		// would be indistinguishable by key.
		frac += s.cfg.AdaptiveFrac + s.cfg.WhitewashFrac + s.cfg.PartialFrac
	}
	res := &Result{
		Scenario:      s.cfg.Scenario,
		Nodes:         len(s.peers),
		Objects:       s.cfg.Objects,
		FreeriderFrac: frac,
		Elapsed:       elapsed,
		Flagged:       flagged,
		Mediators:     s.cfg.Mediators,
		ShardKills:    s.kills,
		Reshards:      s.reshards,
		FlagsLost:     s.flagsLost,
	}
	for _, p := range s.peers {
		pr := PeerResult{Class: p.class()}
		p.mu.Lock()
		pr.ID = p.id
		pr.Restarts = p.restarts
		pr.Flips = p.flips
		pr.Whitewashes = p.whitewashes
		nd := p.node
		p.mu.Unlock()
		var sum time.Duration
		for _, w := range p.wants {
			w.mu.Lock()
			pr.Wanted++
			pr.Attempts += w.attempts
			if w.done {
				pr.Completed++
				sum += w.elapsed
			} else if w.failed {
				pr.Failed++
			}
			w.mu.Unlock()
		}
		if pr.Completed > 0 {
			pr.MeanCompletion = sum / time.Duration(pr.Completed)
		}
		if nd != nil {
			pr.Stats = nd.Stats()
		}
		res.Peers = append(res.Peers, pr)
		res.Wanted += pr.Wanted
		res.Completed += pr.Completed
		res.Failed += pr.Failed
		res.Restarts += pr.Restarts
		res.Flips += pr.Flips
		res.Whitewashes += pr.Whitewashes
	}
	return res
}
