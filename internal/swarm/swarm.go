// Package swarm is the live-network counterpart of the simulator's
// experiment harness: it launches hundreds of real peers (internal/node)
// plus a trusted mediator over the in-memory transport — or TCP loopback —
// drives a declarative scenario against them, and aggregates every node's
// Stats into the same figure-shaped TSV the simulator emits, so live results
// are directly comparable with exchsim output.
//
// Scenarios:
//
//   - flashcrowd: one object, a few seed holders, everyone else downloads it
//     at once; completed sharers join the provider set (epidemic spread).
//   - mixed: a steady workload — many objects spread across the population,
//     every node wants a few it lacks.
//   - freerider: sharers hold content and form mutual-want pairs (live
//     exchange rings); a configurable fraction of peers contributes nothing.
//     The output mirrors Figure 12: mean completion time for the "sharing"
//     vs "non-sharing" class.
//   - cheater: a fraction of the seeds serve junk; receivers validate every
//     block and complete from honest holders, and the mediator audits each
//     cheater's output, flagging them all.
//   - churn: the mixed workload while nodes are closed and restarted
//     mid-run, hundreds of times; every shutdown path in node, transport,
//     and mediator is exercised under load.
//
// The orchestrator owns a shared address directory (the lookup service the
// paper treats as external) and a digest oracle covering the whole catalog.
package swarm

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/mediator"
	"barter/internal/node"
	"barter/internal/protocol"
	"barter/internal/rng"
	"barter/internal/transport"
)

// Scenario names a declarative swarm workload.
type Scenario string

// The built-in scenarios.
const (
	FlashCrowd Scenario = "flashcrowd"
	Mixed      Scenario = "mixed"
	Freerider  Scenario = "freerider"
	Cheater    Scenario = "cheater"
	Churn      Scenario = "churn"
)

// Scenarios lists every built-in scenario in presentation order.
func Scenarios() []Scenario {
	return []Scenario{FlashCrowd, Mixed, Freerider, Cheater, Churn}
}

// Peer classes, named to line up with the simulator's Figure 12 series.
const (
	ClassSharing    = "sharing"
	ClassNonSharing = "non-sharing"
	ClassCorrupt    = "corrupt"
)

// Config parameterizes one swarm run. The zero value is not runnable; at
// minimum set Scenario and Nodes, then fillDefaults sizes the rest per
// scenario (Quick shrinks objects so a run takes seconds).
type Config struct {
	// Scenario selects the workload; Nodes is the population size.
	Scenario Scenario
	Nodes    int
	// Quick shrinks object sizes and pacing for second-scale runs.
	Quick bool
	// Seed drives every structural random choice (placement, wants, churn
	// victims). Wall-clock timing still varies run to run.
	Seed uint64
	// Transport overrides the wire; nil uses a fresh in-memory network.
	// TCP selects loopback TCP (with read/write deadlines) instead.
	Transport transport.Transport
	TCP       bool

	// Objects is the catalog size; ObjectSize and BlockSize shape each
	// transfer; BlockDelay paces upload slots in wall-clock time.
	Objects    int
	ObjectSize int
	BlockSize  int
	BlockDelay time.Duration
	// UploadSlots bounds each sharer's concurrent uploads; scarcity is what
	// makes exchange priority visible.
	UploadSlots int
	// WantsPerNode is how many objects each downloader requests (scenarios
	// with structured wants ignore it). ProvidersPerWant caps the provider
	// fan-out handed to each Download.
	WantsPerNode     int
	ProvidersPerWant int
	// FreeriderFrac is the fraction of peers that share nothing;
	// CorruptFrac is the fraction of flashcrowd seeds that serve junk.
	FreeriderFrac float64
	CorruptFrac   float64
	// Restarts is how many node close/restart cycles the churn scenario
	// performs; ChurnInterval is the pause between them.
	Restarts      int
	ChurnInterval time.Duration
	// Timeout bounds the whole run; wants still pending when it expires
	// are recorded as failed.
	Timeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	switch c.Scenario {
	case FlashCrowd, Mixed, Freerider, Cheater, Churn:
	case "":
		return errors.New("swarm: Scenario is required")
	default:
		return fmt.Errorf("swarm: unknown scenario %q", c.Scenario)
	}
	if c.Nodes < 4 {
		return fmt.Errorf("swarm: need at least 4 nodes, got %d", c.Nodes)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Objects <= 0 {
		switch c.Scenario {
		case FlashCrowd, Cheater:
			c.Objects = 1
		default:
			c.Objects = max(4, c.Nodes/8)
		}
	}
	if c.ObjectSize <= 0 {
		if c.Quick {
			c.ObjectSize = 32 << 10
		} else {
			c.ObjectSize = 256 << 10
		}
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4 << 10
	}
	if c.UploadSlots <= 0 {
		if c.Scenario == Freerider {
			c.UploadSlots = 1 // scarcity: exchange priority must matter
		} else {
			c.UploadSlots = 4
		}
	}
	if c.BlockDelay <= 0 && c.Scenario == Freerider {
		// Paced slots give ring negotiation time to preempt, as in the
		// paper's fixed-rate transfer model.
		c.BlockDelay = time.Millisecond
	}
	if c.WantsPerNode <= 0 {
		c.WantsPerNode = 2
	}
	if c.ProvidersPerWant <= 0 {
		c.ProvidersPerWant = 6
	}
	if c.FreeriderFrac == 0 && c.Scenario == Freerider {
		c.FreeriderFrac = 0.3
	}
	if c.FreeriderFrac < 0 || c.FreeriderFrac > 0.9 {
		return fmt.Errorf("swarm: FreeriderFrac %g out of range [0, 0.9]", c.FreeriderFrac)
	}
	if c.CorruptFrac == 0 && c.Scenario == Cheater {
		c.CorruptFrac = 0.3
	}
	if c.CorruptFrac < 0 || c.CorruptFrac > 0.9 {
		return fmt.Errorf("swarm: CorruptFrac %g out of range [0, 0.9]", c.CorruptFrac)
	}
	if c.Restarts <= 0 && c.Scenario == Churn {
		if c.Quick {
			c.Restarts = 60
		} else {
			c.Restarts = 200
		}
	}
	if c.ChurnInterval <= 0 {
		c.ChurnInterval = 5 * time.Millisecond
	}
	if c.Timeout <= 0 {
		if c.Quick {
			c.Timeout = 60 * time.Second
		} else {
			c.Timeout = 5 * time.Minute
		}
	}
	return nil
}

// directory is the shared peer-id -> address lookup service; restarts
// re-register under fresh addresses.
type directory struct {
	mu    sync.Mutex
	addrs map[core.PeerID]string
}

func (d *directory) set(id core.PeerID, addr string) {
	d.mu.Lock()
	d.addrs[id] = addr
	d.mu.Unlock()
}

func (d *directory) lookup(id core.PeerID) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.addrs[id]
	return a, ok
}

// wantState tracks one (node, object) download across retries and restarts.
type wantState struct {
	obj       catalog.ObjectID
	providers []core.PeerID

	mu       sync.Mutex
	done     bool
	failed   bool
	attempts int
	elapsed  time.Duration
}

// peerState wraps one live node with everything needed to restart it.
type peerState struct {
	id    core.PeerID
	class string

	mu       sync.Mutex
	node     *node.Node
	restarts int

	holds []catalog.ObjectID // objects held from the start
	wants []*wantState
}

// current returns the peer's live node (it changes across churn restarts).
func (p *peerState) current() *node.Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node
}

// swarmRun is the orchestrator state for one Run.
type swarmRun struct {
	cfg     Config
	tr      transport.Transport
	dir     *directory
	oracle  map[catalog.ObjectID][][32]byte
	peers   []*peerState
	med     *mediator.Mediator
	rng     *rng.RNG
	start   time.Time
	giveUp  chan struct{} // closed when the run deadline expires
	waiters sync.WaitGroup
}

func (s *swarmRun) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// objData derives an object's bytes deterministically from its id, so a
// restarted holder can re-materialize content without snapshotting nodes.
func objData(obj catalog.ObjectID, size int) []byte {
	out := make([]byte, size)
	seed := sha256.Sum256(fmt.Appendf(nil, "swarm-object-%d", obj))
	for i := range out {
		out[i] = seed[i%32] ^ byte(i) ^ byte(i>>8)
	}
	return out
}

// Run executes one swarm scenario and aggregates the outcome.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &swarmRun{
		cfg:    cfg,
		tr:     cfg.Transport,
		dir:    &directory{addrs: make(map[core.PeerID]string)},
		oracle: make(map[catalog.ObjectID][][32]byte),
		rng:    rng.New(cfg.Seed),
		giveUp: make(chan struct{}),
	}
	if s.tr == nil {
		if cfg.TCP {
			s.tr = transport.TCP{ReadTimeout: 30 * time.Second, WriteTimeout: 30 * time.Second}
		} else {
			s.tr = transport.NewMem()
		}
	}
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := catalog.ObjectID(obj)
		s.oracle[id] = blockDigests(objData(id, cfg.ObjectSize), cfg.BlockSize)
	}

	if err := s.buildWorld(); err != nil {
		s.teardown()
		return nil, err
	}
	s.logf("world: %s", s.describe())

	med, err := mediator.New(s.tr, s.mediatorAddr(), func(o catalog.ObjectID) ([][32]byte, bool) {
		d, ok := s.oracle[o]
		return d, ok
	})
	if err != nil {
		s.teardown()
		return nil, fmt.Errorf("swarm: mediator: %w", err)
	}
	s.med = med

	s.start = time.Now()
	deadline := time.AfterFunc(cfg.Timeout, func() { close(s.giveUp) })
	defer deadline.Stop()

	s.launchWants()
	if cfg.Scenario == Churn {
		s.churn()
	}
	s.waiters.Wait()

	flagged := 0
	if cfg.Scenario == Cheater {
		flagged = s.auditCheaters()
	}
	elapsed := time.Since(s.start)

	res := s.collect(elapsed, flagged)
	s.teardown()
	med.Close()
	return res, nil
}

func (s *swarmRun) mediatorAddr() string {
	if s.cfg.TCP {
		return "127.0.0.1:0"
	}
	return "mem://swarm-mediator"
}

func (s *swarmRun) nodeAddr() string {
	if s.cfg.TCP {
		return "127.0.0.1:0"
	}
	return "" // in-memory auto-assign
}

func blockDigests(data []byte, blockSize int) [][32]byte {
	n := (len(data) + blockSize - 1) / blockSize
	out := make([][32]byte, 0, n)
	for off := 0; off < len(data); off += blockSize {
		end := min(off+blockSize, len(data))
		out = append(out, sha256.Sum256(data[off:end]))
	}
	return out
}

// spawn starts (or restarts) the live node for p and registers its address.
func (s *swarmRun) spawn(p *peerState) error {
	cfg := node.Config{
		ID:           p.id,
		Addr:         s.nodeAddr(),
		Transport:    s.tr,
		Lookup:       s.dir.lookup,
		Share:        p.class != ClassNonSharing,
		Corrupt:      p.class == ClassCorrupt,
		UploadSlots:  s.cfg.UploadSlots,
		BlockSize:    s.cfg.BlockSize,
		BlockDelay:   s.cfg.BlockDelay,
		TickInterval: 5 * time.Millisecond,
		StallTicks:   10,
		MaxRetries:   1 << 20, // the harness owns giving up, via Timeout
	}
	if s.cfg.Scenario == Cheater {
		cfg.TrustedDigests = func(o catalog.ObjectID) ([][32]byte, bool) {
			d, ok := s.oracle[o]
			return d, ok
		}
	}
	n, err := node.New(cfg)
	if err != nil {
		return fmt.Errorf("swarm: spawn %d: %w", p.id, err)
	}
	for _, obj := range p.holds {
		n.AddObject(obj, objData(obj, s.cfg.ObjectSize))
	}
	// Wants completed before a restart stay available to the network.
	for _, w := range p.wants {
		w.mu.Lock()
		completed := w.done
		w.mu.Unlock()
		if completed {
			n.AddObject(w.obj, objData(w.obj, s.cfg.ObjectSize))
		}
	}
	p.mu.Lock()
	p.node = n
	p.mu.Unlock()
	s.dir.set(p.id, n.Addr())
	return nil
}

// launchWants starts one waiter goroutine per (peer, want): it issues the
// download, retries on failure (a churned provider, a restarted self), and
// records completion or gives up at the run deadline. Non-sharing peers
// launch first so their requests occupy upload slots before sharers ask —
// the strongest-case ordering for observing exchange priority, mirroring
// how free-riders race ahead in the paper's scenarios.
func (s *swarmRun) launchWants() {
	for _, phase := range []string{ClassNonSharing, ClassCorrupt, ClassSharing} {
		for _, p := range s.peers {
			if p.class != phase {
				continue
			}
			for _, w := range p.wants {
				s.waiters.Add(1)
				go s.await(p, w)
			}
		}
	}
}

// await drives one want to completion or the run deadline.
func (s *swarmRun) await(p *peerState, w *wantState) {
	defer s.waiters.Done()
	backoff := 2 * time.Millisecond
	for {
		nd := p.current()
		providers := make(map[core.PeerID]string, len(w.providers))
		for _, pid := range w.providers {
			if addr, ok := s.dir.lookup(pid); ok {
				providers[pid] = addr
			}
		}
		w.mu.Lock()
		w.attempts++
		w.mu.Unlock()
		ch := nd.Download(w.obj, providers)
		select {
		case err := <-ch:
			if err == nil {
				w.mu.Lock()
				w.done = true
				w.elapsed = time.Since(s.start)
				w.mu.Unlock()
				return
			}
			// Closed mid-churn, or sources exhausted: back off and retry
			// against the current node until the run deadline.
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-s.giveUp:
				t.Stop()
				s.fail(w)
				return
			}
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		case <-s.giveUp:
			s.fail(w)
			return
		}
	}
}

func (s *swarmRun) fail(w *wantState) {
	w.mu.Lock()
	w.failed = true
	w.mu.Unlock()
}

// churn repeatedly closes a random peer and restarts it under the same
// identity with a fresh address: in-flight transfers die, waiters re-issue,
// and every shutdown path runs hundreds of times per scenario.
func (s *swarmRun) churn() {
	for i := 0; i < s.cfg.Restarts; i++ {
		select {
		case <-s.giveUp:
			s.logf("churn: deadline hit after %d restarts", i)
			return
		default:
		}
		p := s.peers[s.rng.Intn(len(s.peers))]
		old := p.current()
		old.Close()
		if err := s.spawn(p); err != nil {
			// Transport refused (e.g. exhausted ports); count and move on —
			// the waiters keep retrying against the last known address.
			s.logf("churn: restart %d failed: %v", p.id, err)
			continue
		}
		p.mu.Lock()
		p.restarts++
		p.mu.Unlock()
		t := time.NewTimer(s.cfg.ChurnInterval)
		select {
		case <-t.C:
		case <-s.giveUp:
			t.Stop()
			s.logf("churn: deadline hit after %d restarts", i+1)
			return
		}
	}
}

// auditCheaters plays the receiving peer's role of the Section III-B
// protocol against every corrupt node: seal the junk it serves under its
// escrowed key, deposit, and submit samples for audit. The mediator must
// reject every one and flag the cheater. (Nodes do not yet speak the
// mediated encryption natively on the block path; the swarm audits
// out-of-band, which still exercises the mediator under full concurrency.)
func (s *swarmRun) auditCheaters() int {
	var wg sync.WaitGroup
	flagged := make([]bool, len(s.peers))
	for i, p := range s.peers {
		if p.class != ClassCorrupt {
			continue
		}
		wg.Add(1)
		go func(i int, p *peerState) {
			defer wg.Done()
			cl, err := mediator.Dial(s.tr, s.med.Addr())
			if err != nil {
				s.logf("audit %d: dial: %v", p.id, err)
				return
			}
			defer cl.Close()
			obj := catalog.ObjectID(1)
			exchange := uint64(p.id)
			var key [16]byte
			copy(key[:], fmt.Sprintf("cheater-%08d-key", p.id))
			if err := cl.Deposit(exchange, p.id, obj, key); err != nil {
				s.logf("audit %d: deposit: %v", p.id, err)
				return
			}
			// What a corrupt node actually serves: junk bytes in place of
			// the real block (the same pattern node.Config.Corrupt emits).
			junk := make([]byte, min(s.cfg.BlockSize, s.cfg.ObjectSize))
			for j := range junk {
				junk[j] = byte(j) ^ 0xAA
			}
			victim := p.id + 1
			sealed, err := mediator.Seal(key, p.id, victim, obj, 0, junk)
			if err != nil {
				s.logf("audit %d: seal: %v", p.id, err)
				return
			}
			samples := []protocol.Block{{Object: obj, Index: 0, Origin: p.id, Recipient: victim, Encrypted: true, Payload: sealed}}
			_, err = cl.Verify(exchange, victim, p.id, obj, samples)
			if errors.Is(err, mediator.ErrRejected) {
				flagged[i] = true
			} else {
				s.logf("audit %d: junk passed the audit: %v", p.id, err)
			}
		}(i, p)
	}
	wg.Wait()
	n := 0
	for _, f := range flagged {
		if f {
			n++
		}
	}
	return n
}

// teardown closes every live node.
func (s *swarmRun) teardown() {
	var wg sync.WaitGroup
	for _, p := range s.peers {
		if nd := p.current(); nd != nil {
			wg.Add(1)
			go func(nd *node.Node) {
				defer wg.Done()
				nd.Close()
			}(nd)
		}
	}
	wg.Wait()
}
