// Package swarm is the live-network counterpart of the simulator's
// experiment harness: it launches hundreds of real peers (internal/node)
// plus a trusted mediator over the in-memory transport — or TCP loopback —
// drives a declarative scenario against them, and aggregates every node's
// Stats into the same figure-shaped TSV the simulator emits, so live results
// are directly comparable with exchsim output.
//
// Scenarios:
//
//   - flashcrowd: one object, a few seed holders, everyone else downloads it
//     at once; completed sharers join the provider set (epidemic spread).
//   - mixed: a steady workload — many objects spread across the population,
//     every node wants a few it lacks.
//   - freerider: sharers hold content and form mutual-want pairs (live
//     exchange rings); a configurable fraction of peers contributes nothing.
//     The output mirrors Figure 12: mean completion time for the "sharing"
//     vs "non-sharing" class.
//   - cheater: a fraction of the seeds serve junk; receivers validate every
//     block and complete from honest holders, and the mediator audits each
//     cheater's output, flagging them all.
//   - churn: the mixed workload while nodes are closed and restarted
//     mid-run, hundreds of times; every shutdown path in node, transport,
//     and mediator is exercised under load.
//   - adversary: the freerider pairing substrate plus the richer strategic
//     classes of internal/strategy — adaptive free-riders that start
//     contributing once starved, whitewashers that periodically rejoin
//     under fresh identities, and partial sharers with throttled upload
//     slots — each reported as its own live/<class> series.
//   - medfail: the cheater world with every node speaking the mediated
//     block path natively (sealed blocks, escrowed keys, end-of-transfer
//     audits via internal/medclient) while mediator shards are killed and
//     restarted mid-run; cheater detection must still converge.
//   - reshard: medfail plus a durable, elastic tier — every shard keeps a
//     write-ahead log, and the driver composes kills/restarts with live
//     AddShard/RemoveShard reshapes under the cheater mix, asserting after
//     every reshape (and a final full-tier restart) that no detection
//     history was lost.
//   - wave: the temporal workload scenario — a few seeds hold the catalog
//     while everyone else's demand is scheduled by a workload.Spec (see
//     internal/workload) compiled over Config.WaveWindow: request times
//     follow the spec's demand curve, objects its popularity model, and
//     cohort peers arrive late or depart early as live session churn. With
//     Config.Record set, any scenario emits a replayable JSON-lines trace
//     (docs/WORKLOADS.md) the simulator re-runs via sim.Config.Trace.
//
// Peer behavior classes come from internal/strategy — the same declarative
// definitions the simulator consumes — so exchswarm TSV and exchsim figures
// report identical class labels from one source of truth.
//
// The orchestrator owns a shared address directory (the lookup service the
// paper treats as external), a digest oracle covering the whole catalog,
// and the mediator tier: Config.Mediators shards partitioned by consistent
// hashing over object id (every scenario runs against it; 1 shard
// reproduces the historical single mediator).
package swarm

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/node"
	"barter/internal/protocol"
	"barter/internal/rng"
	"barter/internal/strategy"
	"barter/internal/transport"
	"barter/internal/workload"
)

// Scenario names a declarative swarm workload.
type Scenario string

// The built-in scenarios.
const (
	FlashCrowd Scenario = "flashcrowd"
	Mixed      Scenario = "mixed"
	Freerider  Scenario = "freerider"
	Cheater    Scenario = "cheater"
	Churn      Scenario = "churn"
	Adversary  Scenario = "adversary"
	// Medfail is the mediator-tier torture test: the cheater world with
	// nodes speaking the mediated block path natively (sealed blocks,
	// escrowed keys, end-of-transfer audits through the shard-aware
	// client), while mediator shards are killed and restarted mid-run.
	// Cheater detection must still converge.
	Medfail Scenario = "medfail"
	// Reshard is medfail over a durable, elastic tier: every shard keeps a
	// write-ahead log, and the driver interleaves shard restarts with live
	// AddShard/RemoveShard reshapes, checking after every operation — and
	// after a final restart of the whole tier — that no flagged cheater
	// was forgotten. The zero-lost-flags criterion is the tentpole promise
	// of the durability layer.
	Reshard Scenario = "reshard"
	// Wave is the temporal workload scenario: downloader demand is scheduled
	// by a workload.Spec compiled over Config.WaveWindow — flash-crowd and
	// diurnal curves, Zipf popularity, cohort session churn — instead of the
	// other scenarios' static want lists. The same spec drives
	// sim.Config.Workload, so live and simulated runs share one demand
	// definition.
	Wave Scenario = "wave"
)

// Scenarios lists every built-in scenario in presentation order.
func Scenarios() []Scenario {
	return []Scenario{FlashCrowd, Mixed, Freerider, Cheater, Churn, Adversary, Medfail, Reshard, Wave}
}

// Peer class labels, shared with the simulator through internal/strategy so
// live series and figure series carry identical names.
const (
	ClassSharing     = strategy.LabelSharing
	ClassNonSharing  = strategy.LabelNonSharing
	ClassCorrupt     = strategy.LabelCorrupt
	ClassAdaptive    = strategy.LabelAdaptive
	ClassWhitewasher = strategy.LabelWhitewasher
	ClassPartial     = strategy.LabelPartial
)

// Config parameterizes one swarm run. The zero value is not runnable; at
// minimum set Scenario and Nodes, then fillDefaults sizes the rest per
// scenario (Quick shrinks objects so a run takes seconds).
type Config struct {
	// Scenario selects the workload; Nodes is the population size.
	Scenario Scenario
	Nodes    int
	// Quick shrinks object sizes and pacing for second-scale runs.
	Quick bool
	// Seed drives every structural random choice (placement, wants, churn
	// victims). Wall-clock timing still varies run to run.
	Seed uint64
	// Transport overrides the wire; nil uses a fresh in-memory network.
	// TCP selects loopback TCP (with read/write deadlines) instead.
	Transport transport.Transport
	TCP       bool

	// Objects is the catalog size; ObjectSize and BlockSize shape each
	// transfer; BlockDelay paces upload slots in wall-clock time.
	Objects    int
	ObjectSize int
	BlockSize  int
	BlockDelay time.Duration
	// UploadSlots bounds each sharer's concurrent uploads; scarcity is what
	// makes exchange priority visible.
	UploadSlots int
	// WantsPerNode is how many objects each downloader requests (scenarios
	// with structured wants ignore it). ProvidersPerWant caps the provider
	// fan-out handed to each Download.
	WantsPerNode     int
	ProvidersPerWant int
	// FreeriderFrac is the fraction of peers that share nothing;
	// CorruptFrac is the fraction of flashcrowd seeds that serve junk.
	FreeriderFrac float64
	CorruptFrac   float64
	// AdaptiveFrac, WhitewashFrac, and PartialFrac size the adversary
	// scenario's strategic classes (see internal/strategy): adaptive
	// free-riders, identity-churning whitewashers, and throttled partial
	// sharers. Zero on the adversary scenario means 0.15 each.
	AdaptiveFrac  float64
	WhitewashFrac float64
	PartialFrac   float64
	// AdaptivePatience is how long an adaptive free-rider tolerates stalled
	// downloads before it starts contributing; WhitewashInterval is the
	// wall-clock period between a whitewasher's identity churns.
	AdaptivePatience  time.Duration
	WhitewashInterval time.Duration
	// Restarts is how many node close/restart cycles the churn scenario
	// performs; ChurnInterval is the pause between them.
	Restarts      int
	ChurnInterval time.Duration
	// Mediators sizes the mediator tier: N shards partitioned by
	// consistent hashing over object id, each owning its slice of escrow
	// and flagged-peer state. 0 means a single shard — the historical
	// one-process mediator.
	Mediators int
	// MedKills is how many shard kill/restart cycles the medfail scenario
	// performs (round-robin over the tier); MedKillInterval is the pause
	// between them.
	MedKills        int
	MedKillInterval time.Duration
	// Reshards is how many tier reshapes the reshard scenario performs
	// (cycling restart, grow, shrink); ReshardInterval is the pause
	// between them.
	Reshards        int
	ReshardInterval time.Duration
	// MedDataDir roots the mediator shards' write-ahead logs. Empty means
	// in-memory shards — except on the reshard scenario, which needs
	// durability and creates (and removes) a temporary directory.
	MedDataDir string
	// Stripe caps how many origins each mediated download stripes across
	// (node.Config.Stripe). Values above 1 switch the whole scenario onto
	// the mediated block path — sealed blocks, per-origin escrow and
	// audits — since striping is a property of mediated transfers. On the
	// cheater scenario this means every corrupt origin is flagged
	// organically by the stripe audits of its own victims. <= 1 keeps
	// single-sender transfers.
	Stripe int
	// Workload is the wave scenario's demand spec; nil means the "flash"
	// builtin anchored at WantsPerNode requests per downloader. Rejected on
	// other scenarios (their wants are structural, not temporal).
	Workload *workload.Spec
	// WaveWindow is the wall-clock horizon the wave scenario compiles its
	// spec over: all of the spec's normalized times map onto this window.
	// Zero means 2s under Quick, 6s otherwise.
	WaveWindow time.Duration
	// Record, when set, receives the run as a replayable JSON-lines trace
	// (workload.Trace): initial holds, every demand arrival, and wave
	// session edges, written after the run settles. Any scenario records.
	Record io.Writer
	// Timeout bounds the whole run; wants still pending when it expires
	// are recorded as failed.
	Timeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	switch c.Scenario {
	case FlashCrowd, Mixed, Freerider, Cheater, Churn, Adversary, Medfail, Reshard, Wave:
	case "":
		return errors.New("swarm: Scenario is required")
	default:
		return fmt.Errorf("swarm: unknown scenario %q", c.Scenario)
	}
	if c.Workload != nil {
		if c.Scenario != Wave {
			return fmt.Errorf("swarm: a Workload spec only drives the wave scenario, not %q", c.Scenario)
		}
		if err := c.Workload.Validate(); err != nil {
			return fmt.Errorf("swarm: %w", err)
		}
	}
	if c.Scenario == Wave && c.WaveWindow <= 0 {
		if c.Quick {
			c.WaveWindow = 2 * time.Second
		} else {
			c.WaveWindow = 6 * time.Second
		}
	}
	if c.Nodes < 4 {
		return fmt.Errorf("swarm: need at least 4 nodes, got %d", c.Nodes)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mediators <= 0 {
		switch c.Scenario {
		case Medfail:
			c.Mediators = 4 // killing shards needs a tier to fail over within
		case Reshard:
			c.Mediators = 3 // reshapes need room to shrink without hitting one
		default:
			c.Mediators = 1
		}
	}
	if c.Mediators > 64 {
		return fmt.Errorf("swarm: %d mediator shards is beyond any sane tier", c.Mediators)
	}
	if c.Stripe < 0 || c.Stripe > 16 {
		return fmt.Errorf("swarm: Stripe %d out of range [0, 16]", c.Stripe)
	}
	if c.Scenario == Medfail {
		if c.MedKills <= 0 {
			c.MedKills = 6
		}
		if c.MedKillInterval <= 0 {
			c.MedKillInterval = 150 * time.Millisecond
		}
	}
	if c.Scenario == Reshard {
		if c.Reshards <= 0 {
			c.Reshards = 6
		}
		if c.ReshardInterval <= 0 {
			c.ReshardInterval = 150 * time.Millisecond
		}
	}
	if c.Objects <= 0 {
		switch c.Scenario {
		case FlashCrowd, Cheater, Medfail, Reshard:
			c.Objects = 1
		default:
			c.Objects = max(4, c.Nodes/8)
		}
	}
	if c.ObjectSize <= 0 {
		if c.Quick {
			c.ObjectSize = 32 << 10
		} else {
			c.ObjectSize = 256 << 10
		}
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4 << 10
	}
	if c.UploadSlots <= 0 {
		switch c.Scenario {
		case Freerider:
			c.UploadSlots = 1 // scarcity: exchange priority must matter
		case Adversary:
			c.UploadSlots = 2 // scarce, but with headroom for partial throttling
		default:
			c.UploadSlots = 4
		}
	}
	if c.BlockDelay <= 0 && (c.Scenario == Freerider || c.Scenario == Adversary || c.Scenario == Medfail || c.Scenario == Reshard) {
		// Paced slots give ring negotiation time to preempt, as in the
		// paper's fixed-rate transfer model — and stretch medfail
		// transfers so shard kills land while blocks are in flight.
		c.BlockDelay = time.Millisecond
	}
	if c.WantsPerNode <= 0 {
		c.WantsPerNode = 2
	}
	if c.ProvidersPerWant <= 0 {
		c.ProvidersPerWant = 6
	}
	if c.FreeriderFrac == 0 && c.Scenario == Freerider {
		c.FreeriderFrac = 0.3
	}
	if c.FreeriderFrac < 0 || c.FreeriderFrac > 0.9 {
		return fmt.Errorf("swarm: FreeriderFrac %g out of range [0, 0.9]", c.FreeriderFrac)
	}
	if c.CorruptFrac == 0 && (c.Scenario == Cheater || c.Scenario == Medfail || c.Scenario == Reshard) {
		c.CorruptFrac = 0.3
	}
	if c.CorruptFrac < 0 || c.CorruptFrac > 0.9 {
		return fmt.Errorf("swarm: CorruptFrac %g out of range [0, 0.9]", c.CorruptFrac)
	}
	if c.Scenario == Adversary && c.AdaptiveFrac == 0 && c.WhitewashFrac == 0 && c.PartialFrac == 0 {
		// Default adversary classes, shrunk to whatever room an already-set
		// FreeriderFrac leaves under the 0.9 cap: a command naming only
		// -frac must not be rejected over fractions it never specified.
		d := min(0.15, max(0, (0.9-c.FreeriderFrac)/3))
		c.AdaptiveFrac, c.WhitewashFrac, c.PartialFrac = d, d, d
	}
	for _, f := range []float64{c.AdaptiveFrac, c.WhitewashFrac, c.PartialFrac} {
		if f < 0 || f > 0.9 {
			return fmt.Errorf("swarm: adversary fraction %g out of range [0, 0.9]", f)
		}
	}
	if sum := c.AdaptiveFrac + c.WhitewashFrac + c.PartialFrac + c.FreeriderFrac; sum > 0.9 {
		return fmt.Errorf("swarm: adversary fractions sum to %g, want <= 0.9 (sharers must remain)", sum)
	}
	if c.AdaptivePatience <= 0 {
		c.AdaptivePatience = 500 * time.Millisecond
		if c.Quick {
			c.AdaptivePatience = 200 * time.Millisecond
		}
	}
	if c.WhitewashInterval <= 0 {
		c.WhitewashInterval = 200 * time.Millisecond
		if c.Quick {
			c.WhitewashInterval = 80 * time.Millisecond
		}
	}
	if c.Restarts <= 0 && c.Scenario == Churn {
		if c.Quick {
			c.Restarts = 60
		} else {
			c.Restarts = 200
		}
	}
	if c.ChurnInterval <= 0 {
		c.ChurnInterval = 5 * time.Millisecond
	}
	if c.Timeout <= 0 {
		if c.Quick {
			c.Timeout = 60 * time.Second
		} else {
			c.Timeout = 5 * time.Minute
		}
	}
	return nil
}

// directory is the shared peer-id -> address lookup service; restarts
// re-register under fresh addresses.
type directory struct {
	mu    sync.Mutex
	addrs map[core.PeerID]string
}

func (d *directory) set(id core.PeerID, addr string) {
	d.mu.Lock()
	d.addrs[id] = addr
	d.mu.Unlock()
}

func (d *directory) lookup(id core.PeerID) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.addrs[id]
	return a, ok
}

// wantState tracks one (node, object) download across retries and restarts.
type wantState struct {
	obj       catalog.ObjectID
	providers []core.PeerID
	// startAt delays the want's first issue past run start — the wave
	// scenario's scheduled demand arrival. Zero means issue immediately.
	startAt time.Duration

	mu       sync.Mutex
	done     bool
	failed   bool
	attempts int
	elapsed  time.Duration
}

// peerState wraps one live node with everything needed to restart it. Its
// behavior class is a strategy.Strategy — the same declarative definitions
// the simulator consumes.
type peerState struct {
	strat strategy.Strategy
	// medc is the peer's shard-aware mediator client (mediated scenarios
	// only); it survives node restarts and is closed at teardown.
	medc *medclient.Client

	mu       sync.Mutex
	id       core.PeerID // changes when a whitewasher sheds its identity
	node     *node.Node
	restarts int
	// forcedShare marks an adaptive free-rider that was starved into
	// contributing; flips counts those transitions, whitewashes the identity
	// churns executed.
	forcedShare bool
	flips       int
	whitewashes int

	holds []catalog.ObjectID // objects held from the start
	wants []*wantState
	// departAt schedules the wave scenario's session end: once it passes and
	// the peer's own wants have settled, a monitor closes the node for good.
	// Zero means the peer stays to the end.
	departAt time.Duration
}

// current returns the peer's live node (it changes across churn restarts).
func (p *peerState) current() *node.Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node
}

// class returns the peer's strategy-class label.
func (p *peerState) class() string { return p.strat.Name }

// shareNow reports whether the peer's next node should serve others:
// its strategy's standing policy, or an adaptive flip.
func (p *peerState) shareNow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.strat.Share || p.forcedShare
}

// currentID returns the peer's current identity.
func (p *peerState) currentID() core.PeerID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.id
}

// swarmRun is the orchestrator state for one Run.
type swarmRun struct {
	cfg     Config
	tr      transport.Transport
	dir     *directory
	oracle  map[catalog.ObjectID][][32]byte
	peers   []*peerState
	cluster *mediator.Cluster
	kills   int // shard kill/restart cycles performed (medfail, reshard)
	// reshards counts elastic reshapes performed; flagsLost counts flagged
	// cheaters a reshape or the final durability check forgot — the reshard
	// scenario's acceptance criterion is that this stays zero. Both are
	// written by the single resharder goroutine (joined via monitors) and
	// the post-run durability check, so collect reads them race-free.
	reshards  int
	flagsLost int
	// medAddrSeq names fresh mediator listen addresses for AddShard; only
	// the resharder goroutine touches it.
	medAddrSeq int
	rng        *rng.RNG
	// rec accumulates the run's replayable trace when cfg.Record is set; nil
	// otherwise. Safe for the waiter goroutines' concurrent use.
	rec     *workload.Recorder
	start   time.Time
	giveUp  chan struct{} // closed when the run deadline expires
	waiters sync.WaitGroup
	// monitors tracks the adversary supervision goroutines (adaptive flips,
	// whitewash churns); they exit once their peer's wants settle, and Run
	// joins them before collecting so no respawn races teardown.
	monitors sync.WaitGroup
	// idMu guards idSeq, the allocator for fresh whitewash identities.
	idMu  sync.Mutex
	idSeq int
}

// freshID allocates an identity no initial peer ever held, for a
// whitewasher rejoining under a new name. idSeq is seeded past the highest
// id buildWorld assigned (see seedIDAllocator), so fresh identities can
// never collide with a live peer.
func (s *swarmRun) freshID() core.PeerID {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	s.idSeq++
	return core.PeerID(s.idSeq)
}

// seedIDAllocator starts the fresh-identity sequence past every initial id.
func (s *swarmRun) seedIDAllocator() {
	maxID := s.cfg.Nodes
	for _, p := range s.peers {
		if int(p.id) > maxID {
			maxID = int(p.id)
		}
	}
	s.idMu.Lock()
	s.idSeq = maxID
	s.idMu.Unlock()
}

func (s *swarmRun) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// objData derives an object's bytes deterministically from its id, so a
// restarted holder can re-materialize content without snapshotting nodes.
func objData(obj catalog.ObjectID, size int) []byte {
	out := make([]byte, size)
	seed := sha256.Sum256(fmt.Appendf(nil, "swarm-object-%d", obj))
	for i := range out {
		out[i] = seed[i%32] ^ byte(i) ^ byte(i>>8)
	}
	return out
}

// Run executes one swarm scenario and aggregates the outcome.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &swarmRun{
		cfg:    cfg,
		tr:     cfg.Transport,
		dir:    &directory{addrs: make(map[core.PeerID]string)},
		oracle: make(map[catalog.ObjectID][][32]byte),
		rng:    rng.New(cfg.Seed),
		giveUp: make(chan struct{}),
	}
	if cfg.Record != nil {
		s.rec = workload.NewRecorder()
	}
	if s.tr == nil {
		if cfg.TCP {
			s.tr = transport.TCP{ReadTimeout: 30 * time.Second, WriteTimeout: 30 * time.Second}
		} else {
			s.tr = transport.NewMem()
		}
	}
	for obj := 1; obj <= cfg.Objects; obj++ {
		id := catalog.ObjectID(obj)
		s.oracle[id] = blockDigests(objData(id, cfg.ObjectSize), cfg.BlockSize)
	}

	// The reshard scenario needs durable shards; without a caller-supplied
	// data dir it runs over a temporary one. Removal is deferred before the
	// cluster's own deferred Close so the logs outlive every shard.
	dataDir := cfg.MedDataDir
	if cfg.Scenario == Reshard && dataDir == "" {
		tmp, err := os.MkdirTemp("", "swarm-med-")
		if err != nil {
			return nil, fmt.Errorf("swarm: mediator data dir: %w", err)
		}
		dataDir = tmp
		defer os.RemoveAll(tmp) //nolint:errcheck // teardown
	}

	// The mediator tier comes up before the world: mediated nodes need
	// bootstrap seeds at spawn time.
	cluster, err := mediator.NewClusterOpts(s.tr, s.mediatorAddrs(), func(o catalog.ObjectID) ([][32]byte, bool) {
		d, ok := s.oracle[o]
		return d, ok
	}, mediator.ClusterOpts{DataDir: dataDir})
	if err != nil {
		return nil, fmt.Errorf("swarm: mediator tier: %w", err)
	}
	s.cluster = cluster
	defer cluster.Close()

	if err := s.buildWorld(); err != nil {
		s.teardown()
		return nil, err
	}
	s.seedIDAllocator()
	s.logf("world: %s", s.describe())
	if s.rec != nil {
		// Initial holdings are t=0 facts; demand and session edges are
		// recorded as they happen by the waiters and departure monitors.
		for _, p := range s.peers {
			for _, o := range p.holds {
				s.rec.Hold(int(p.currentID()), int(o))
			}
		}
	}

	s.start = time.Now()
	deadline := time.AfterFunc(cfg.Timeout, func() { close(s.giveUp) })
	defer deadline.Stop()

	s.launchWants()
	s.launchDepartures()
	s.superviseAdversaries()
	killerDone := make(chan struct{})
	if cfg.Scenario == Medfail {
		s.monitors.Add(1)
		go s.shardKiller(killerDone)
	}
	if cfg.Scenario == Reshard {
		s.monitors.Add(1)
		go s.resharder(killerDone)
	}
	if cfg.Scenario == Churn {
		s.churn()
	}
	s.waiters.Wait()
	// Stop the shard killer before auditing, then join the adversary
	// monitors before touching nodes: a mid-respawn whitewasher must not
	// race teardown.
	close(killerDone)
	s.monitors.Wait()

	flagged := 0
	switch cfg.Scenario {
	case Cheater:
		if s.mediated() {
			// Striped cheater runs flag organically: every corrupt origin's
			// stripe audits reject at the tier. Converge instead of running
			// the orchestrator's synthetic audits, so the count proves the
			// live detection path worked.
			flagged = s.convergeCheaterFlags()
		} else {
			flagged = s.auditCheaters()
		}
	case Medfail:
		flagged = s.convergeCheaterFlags()
	case Reshard:
		flagged = s.convergeCheaterFlags()
		// The final durability check: restart the whole tier and demand
		// every flag come back from the logs alone.
		s.verifyFlagDurability()
	}
	elapsed := time.Since(s.start)

	res := s.collect(elapsed, flagged)
	if s.rec != nil {
		res.TraceEvents = s.rec.Len()
		trace := s.rec.Trace(workload.Header{
			Scenario:    string(s.cfg.Scenario),
			Nodes:       s.cfg.Nodes,
			Objects:     s.cfg.Objects,
			ObjectKbits: float64(s.cfg.ObjectSize) * 8 / 1000,
			BlockKbits:  float64(s.cfg.BlockSize) * 8 / 1000,
			Horizon:     elapsed.Seconds(),
			Seed:        s.cfg.Seed,
		})
		if _, err := trace.WriteTo(cfg.Record); err != nil {
			s.teardown()
			return nil, fmt.Errorf("swarm: write trace: %w", err)
		}
	}
	s.teardown()
	return res, nil
}

// mediatorAddrs names the tier's listen addresses.
func (s *swarmRun) mediatorAddrs() []string {
	addrs := make([]string, s.cfg.Mediators)
	for i := range addrs {
		if s.cfg.TCP {
			addrs[i] = "127.0.0.1:0"
		} else {
			addrs[i] = fmt.Sprintf("mem://swarm-mediator-%d", i)
		}
	}
	return addrs
}

// mediated reports whether nodes in this scenario speak the mediated block
// path natively: the mediator-tier torture scenarios always do, and any
// scenario does once downloads stripe across origins (striping is a
// property of mediated transfers — the tier is up in every run anyway).
func (s *swarmRun) mediated() bool {
	return s.cfg.Scenario == Medfail || s.cfg.Scenario == Reshard || s.cfg.Stripe > 1
}

// shardKiller kills and restarts mediator shards round-robin until its
// budget is spent, the run deadline hits, or the workload settles. The
// first kill lands immediately — a quick world can finish inside one kill
// interval, and a medfail run that never lost a shard proves nothing.
func (s *swarmRun) shardKiller(done <-chan struct{}) {
	defer s.monitors.Done()
	for i := 0; i < s.cfg.MedKills; i++ {
		if i > 0 {
			t := time.NewTimer(s.cfg.MedKillInterval)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return
			case <-s.giveUp:
				t.Stop()
				return
			}
		}
		shard := i % s.cluster.Shards()
		s.logf("killing mediator shard %d (cycle %d/%d)", shard, i+1, s.cfg.MedKills)
		if err := s.cluster.RestartShard(shard); err != nil {
			s.logf("restart of mediator shard %d failed: %v", shard, err)
			continue
		}
		s.kills++
	}
}

// nextMediatorAddr names a fresh listen address for a shard joining via
// AddShard; resharder-goroutine only.
func (s *swarmRun) nextMediatorAddr() string {
	if s.cfg.TCP {
		return "127.0.0.1:0"
	}
	s.medAddrSeq++
	return fmt.Sprintf("mem://swarm-mediator-grow-%d", s.medAddrSeq)
}

// flaggedCheaters snapshots every corrupt peer the tier currently has
// flagged — the detection history a reshape must not lose.
func (s *swarmRun) flaggedCheaters() []core.PeerID {
	var out []core.PeerID
	for _, p := range s.peers {
		if !p.strat.Corrupt {
			continue
		}
		if id := p.currentID(); s.cluster.Flagged(id) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// checkFlagsKept verifies every peer in before is still flagged after a
// reshape, counting (and logging) any the tier forgot.
func (s *swarmRun) checkFlagsKept(op string, before []core.PeerID) {
	for _, id := range before {
		if s.cluster.Flagged(id) == 0 {
			s.flagsLost++
			s.logf("reshape %q lost the flag for peer %d", op, id)
		}
	}
}

// resharder drives the reshard scenario's tier churn: it cycles shard
// restarts, live grows, and live shrinks until its budget is spent or the
// run settles, snapshotting the flagged-cheater set before each operation
// and asserting it intact after — the zero-lost-flags criterion. Like the
// shard killer, the first operation lands immediately.
func (s *swarmRun) resharder(done <-chan struct{}) {
	defer s.monitors.Done()
	for i := 0; i < s.cfg.Reshards; i++ {
		if i > 0 {
			t := time.NewTimer(s.cfg.ReshardInterval)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
				return
			case <-s.giveUp:
				t.Stop()
				return
			}
		}
		before := s.flaggedCheaters()
		var err error
		op := ""
		switch i % 3 {
		case 0:
			shard := (i / 3) % s.cluster.Shards()
			op = fmt.Sprintf("restart shard %d", shard)
			if err = s.cluster.RestartShard(shard); err == nil {
				s.kills++
			}
		case 1:
			op = "add shard"
			err = s.cluster.AddShard(s.nextMediatorAddr())
		case 2:
			op = "remove shard"
			if s.cluster.Shards() <= 2 {
				// Keep a tier to fail over within; restart instead.
				op = "restart shard 0"
				if err = s.cluster.RestartShard(0); err == nil {
					s.kills++
				}
			} else {
				err = s.cluster.RemoveShard()
			}
		}
		if err != nil {
			s.logf("reshape %q failed: %v", op, err)
			continue
		}
		s.reshards++
		s.logf("reshape %q done (cycle %d/%d, %d shards)", op, i+1, s.cfg.Reshards, s.cluster.Shards())
		s.checkFlagsKept(op, before)
	}
}

// verifyFlagDurability restarts every shard after detection has converged:
// with the in-memory state wiped tier-wide, any flag that does not come back
// from the write-ahead logs counts as lost history.
func (s *swarmRun) verifyFlagDurability() {
	before := s.flaggedCheaters()
	for i := 0; i < s.cluster.Shards(); i++ {
		if err := s.cluster.RestartShard(i); err != nil {
			s.logf("durability restart of shard %d failed: %v", i, err)
		} else {
			s.kills++
		}
	}
	s.checkFlagsKept("final full-tier restart", before)
}

func (s *swarmRun) nodeAddr() string {
	if s.cfg.TCP {
		return "127.0.0.1:0"
	}
	return "" // in-memory auto-assign
}

func blockDigests(data []byte, blockSize int) [][32]byte {
	n := (len(data) + blockSize - 1) / blockSize
	out := make([][32]byte, 0, n)
	for off := 0; off < len(data); off += blockSize {
		end := min(off+blockSize, len(data))
		out = append(out, sha256.Sum256(data[off:end]))
	}
	return out
}

// spawn starts (or restarts) the live node for p and registers its address.
// The node's behavior — whether it serves, how many upload slots it grants,
// whether it corrupts payloads — derives from the peer's strategy.
func (s *swarmRun) spawn(p *peerState) error {
	id := p.currentID()
	cfg := node.Config{
		ID:           id,
		Addr:         s.nodeAddr(),
		Transport:    s.tr,
		Lookup:       s.dir.lookup,
		Share:        p.shareNow(),
		Corrupt:      p.strat.Corrupt,
		UploadSlots:  p.strat.SlotCap(s.cfg.UploadSlots),
		BlockSize:    s.cfg.BlockSize,
		BlockDelay:   s.cfg.BlockDelay,
		TickInterval: 5 * time.Millisecond,
		StallTicks:   10,
		MaxRetries:   1 << 20, // the harness owns giving up, via Timeout
	}
	if s.cfg.Scenario == Cheater {
		cfg.TrustedDigests = func(o catalog.ObjectID) ([][32]byte, bool) {
			d, ok := s.oracle[o]
			return d, ok
		}
	}
	if s.mediated() {
		cfg.Stripe = s.cfg.Stripe
		if p.medc == nil {
			mc, err := medclient.New(medclient.Config{
				Transport: s.tr,
				Seeds:     s.cluster.Addrs(),
				Backoff:   10 * time.Millisecond,
			})
			if err != nil {
				return fmt.Errorf("swarm: medclient for %d: %w", id, err)
			}
			p.medc = mc
		}
		cfg.Mediator = p.medc
	}
	n, err := node.New(cfg)
	if err != nil {
		return fmt.Errorf("swarm: spawn %d: %w", id, err)
	}
	for _, obj := range p.holds {
		n.AddObject(obj, objData(obj, s.cfg.ObjectSize))
	}
	// Wants completed before a restart stay available to the network.
	for _, w := range p.wants {
		w.mu.Lock()
		completed := w.done
		w.mu.Unlock()
		if completed {
			n.AddObject(w.obj, objData(w.obj, s.cfg.ObjectSize))
		}
	}
	p.mu.Lock()
	p.node = n
	p.mu.Unlock()
	s.dir.set(id, n.Addr())
	return nil
}

// launchWants starts one waiter goroutine per (peer, want): it issues the
// download, retries on failure (a churned provider, a restarted self), and
// records completion or gives up at the run deadline. Non-contributing
// classes launch first so their requests occupy upload slots before sharers
// ask — the strongest-case ordering for observing exchange priority,
// mirroring how free-riders race ahead in the paper's scenarios.
func (s *swarmRun) launchWants() {
	phase := func(p *peerState) int {
		switch {
		case !p.strat.Share: // static, adaptive, and whitewashing free-riders
			return 0
		case p.strat.Corrupt:
			return 1
		default: // sharing and partial
			return 2
		}
	}
	for ph := 0; ph <= 2; ph++ {
		for _, p := range s.peers {
			if phase(p) != ph {
				continue
			}
			for _, w := range p.wants {
				s.waiters.Add(1)
				go s.await(p, w)
			}
		}
	}
}

// await drives one want to completion or the run deadline. Wave wants wait
// out their scheduled arrival first; a deadline expiring before then fails
// the want like any other unfinished download.
func (s *swarmRun) await(p *peerState, w *wantState) {
	defer s.waiters.Done()
	if w.startAt > 0 {
		t := time.NewTimer(w.startAt)
		select {
		case <-t.C:
		case <-s.giveUp:
			t.Stop()
			s.fail(w)
			return
		}
	}
	if s.rec != nil {
		s.rec.Request(time.Since(s.start).Seconds(), int(p.currentID()), int(w.obj))
	}
	backoff := 2 * time.Millisecond
	for {
		nd := p.current()
		providers := make(map[core.PeerID]string, len(w.providers))
		for _, pid := range w.providers {
			if addr, ok := s.dir.lookup(pid); ok {
				providers[pid] = addr
			}
		}
		w.mu.Lock()
		w.attempts++
		w.mu.Unlock()
		ch := nd.Download(w.obj, providers)
		select {
		case err := <-ch:
			if err == nil {
				w.mu.Lock()
				w.done = true
				w.elapsed = time.Since(s.start)
				w.mu.Unlock()
				return
			}
			// Closed mid-churn, or sources exhausted: back off and retry
			// against the current node until the run deadline.
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-s.giveUp:
				t.Stop()
				s.fail(w)
				return
			}
			if backoff < 50*time.Millisecond {
				backoff *= 2
			}
		case <-s.giveUp:
			s.fail(w)
			return
		}
	}
}

func (s *swarmRun) fail(w *wantState) {
	w.mu.Lock()
	w.failed = true
	w.mu.Unlock()
}

// allSettled reports whether every want in ws has finished, either way.
func allSettled(ws []*wantState) bool {
	for _, w := range ws {
		w.mu.Lock()
		settled := w.done || w.failed
		w.mu.Unlock()
		if !settled {
			return false
		}
	}
	return true
}

// launchDepartures arms one monitor per peer with a scheduled session end
// (wave cohorts). Monitors join via s.monitors, like the adversary ones.
func (s *swarmRun) launchDepartures() {
	for _, p := range s.peers {
		if p.departAt <= 0 {
			continue
		}
		s.monitors.Add(1)
		go s.waveDeparture(p)
	}
}

// waveDeparture takes a cohort peer offline for good: once its scheduled
// session end passes and its own wants have settled, the node closes and the
// departure is recorded. Waiting for the wants matters twice over — a run
// with failed wants is a failed run (exchswarm exits nonzero), and the
// recorded trace must not demand downloads the recorded session never left
// room for.
func (s *swarmRun) waveDeparture(p *peerState) {
	defer s.monitors.Done()
	t := time.NewTimer(p.departAt)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.giveUp:
		return
	}
	for !allSettled(p.wants) {
		poll := time.NewTimer(10 * time.Millisecond)
		select {
		case <-poll.C:
		case <-s.giveUp:
			poll.Stop()
			return
		}
	}
	p.current().Close()
	if s.rec != nil {
		s.rec.Depart(time.Since(s.start).Seconds(), int(p.currentID()))
	}
}

// churn repeatedly closes a random peer and restarts it under the same
// identity with a fresh address: in-flight transfers die, waiters re-issue,
// and every shutdown path runs hundreds of times per scenario.
func (s *swarmRun) churn() {
	for i := 0; i < s.cfg.Restarts; i++ {
		select {
		case <-s.giveUp:
			s.logf("churn: deadline hit after %d restarts", i)
			return
		default:
		}
		p := s.peers[s.rng.Intn(len(s.peers))]
		old := p.current()
		old.Close()
		if err := s.spawn(p); err != nil {
			// Transport refused (e.g. exhausted ports); count and move on —
			// the waiters keep retrying against the last known address.
			s.logf("churn: restart %d failed: %v", p.currentID(), err)
			continue
		}
		p.mu.Lock()
		p.restarts++
		p.mu.Unlock()
		t := time.NewTimer(s.cfg.ChurnInterval)
		select {
		case <-t.C:
		case <-s.giveUp:
			t.Stop()
			s.logf("churn: deadline hit after %d restarts", i+1)
			return
		}
	}
}

// superviseAdversaries arms one monitor per adaptive and whitewashing peer.
// Monitors exit once their peer's wants settle (or the run deadline hits),
// so Run can join them before teardown.
func (s *swarmRun) superviseAdversaries() {
	var deps map[*peerState][]*wantState
	for _, p := range s.peers {
		switch {
		case p.strat.Adaptive:
			if deps == nil {
				deps = s.dependentWants()
			}
			s.monitors.Add(1)
			go s.adaptiveMonitor(p, deps[p])
		case p.strat.Whitewash:
			s.monitors.Add(1)
			go s.whitewashMonitor(p)
		}
	}
}

// dependentWants maps each peer to the wants (across the whole swarm) that
// target an object it holds — the demand an adaptive peer is refusing.
func (s *swarmRun) dependentWants() map[*peerState][]*wantState {
	holder := make(map[catalog.ObjectID]*peerState)
	for _, p := range s.peers {
		for _, o := range p.holds {
			holder[o] = p
		}
	}
	deps := make(map[*peerState][]*wantState)
	for _, p := range s.peers {
		for _, w := range p.wants {
			if h := holder[w.obj]; h != nil {
				deps[h] = append(deps[h], w)
			}
		}
	}
	return deps
}

// allDone reports whether every want in ws has completed.
func allDone(ws []*wantState) bool {
	for _, w := range ws {
		w.mu.Lock()
		done := w.done
		w.mu.Unlock()
		if !done {
			return false
		}
	}
	return true
}

// respawnUntil retries spawning p until it succeeds or the run deadline
// hits. A transient transport refusal (the port exhaustion churn() also
// anticipates) must not strand a closed adversary node: its held objects
// may be the only source for other peers' wants.
func (s *swarmRun) respawnUntil(p *peerState, retry time.Duration) bool {
	for {
		err := s.spawn(p)
		if err == nil {
			return true
		}
		s.logf("respawn %d failed (retrying): %v", p.currentID(), err)
		t := time.NewTimer(retry)
		select {
		case <-t.C:
		case <-s.giveUp:
			t.Stop()
			return false
		}
	}
}

// adaptiveMonitor implements "contributes only while refused" live: after
// the patience window the peer restarts its node with sharing enabled
// unless, within its patience, its own downloads were served and nobody is
// still waiting on an object it holds. Checking the dependents matters:
// whoever flips first can serve its partner before the partner's own
// monitor fires, and a pure self-check would then strand the early server.
// Once coerced it keeps serving — withdrawing service mid-transfer would
// strand the peer it is exchanging with.
func (s *swarmRun) adaptiveMonitor(p *peerState, dependents []*wantState) {
	defer s.monitors.Done()
	t := time.NewTimer(s.cfg.AdaptivePatience)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.giveUp:
		return
	}
	if allDone(p.wants) && allDone(dependents) {
		return // served, and nothing demands it: it never contributes
	}
	p.current().Close()
	p.mu.Lock()
	p.forcedShare = true
	p.flips++
	p.restarts++
	p.mu.Unlock()
	s.respawnUntil(p, s.cfg.AdaptivePatience)
}

// whitewashMonitor periodically sheds the peer's identity: it closes the
// node and respawns it under a fresh PeerID, dropping its queue positions
// and download progress — exactly the state a whitewasher launders away.
// The churn period doubles after every churn so a loaded swarm always
// leaves the peer a window wide enough to finish its downloads (without the
// back-off a slow run could reset the same transfer forever), while
// completion is still polled at the base interval so the monitor — and with
// it Run's teardown — exits promptly once the wants settle.
func (s *swarmRun) whitewashMonitor(p *peerState) {
	defer s.monitors.Done()
	poll := s.cfg.WhitewashInterval
	churnEvery := s.cfg.WhitewashInterval
	nextChurn := time.Now().Add(churnEvery)
	t := time.NewTimer(poll)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-s.giveUp:
			return
		}
		if allDone(p.wants) {
			return
		}
		if time.Now().Before(nextChurn) {
			t.Reset(poll)
			continue
		}
		p.current().Close()
		p.mu.Lock()
		p.id = s.freshID()
		p.whitewashes++
		p.restarts++
		p.mu.Unlock()
		if !s.respawnUntil(p, poll) {
			return // run deadline hit while the transport kept refusing
		}
		churnEvery *= 2
		nextChurn = time.Now().Add(churnEvery)
		t.Reset(poll)
	}
}

// auditClient builds a shard-aware client for the orchestrator's own
// audits, bootstrapped at the tier's current addresses.
func (s *swarmRun) auditClient() (*medclient.Client, error) {
	return medclient.New(medclient.Config{
		Transport: s.tr,
		Seeds:     s.cluster.Addrs(),
		Backoff:   10 * time.Millisecond,
		Logf:      s.cfg.Logf,
	})
}

// auditOne plays the receiving peer's role of the Section III-B protocol
// against one corrupt node: seal the junk it serves under its escrowed
// key, deposit, and submit a sample for audit. It reports whether the
// tier rejected the exchange (and so flagged the cheater).
func (s *swarmRun) auditOne(cl *medclient.Client, id core.PeerID) bool {
	obj := catalog.ObjectID(1)
	// Distinct from the organic exchange ids the mediated block path
	// derives, so orchestrator audits never collide with node escrow.
	exchange := uint64(id) | 1<<63
	var key [16]byte
	copy(key[:], fmt.Sprintf("cheater-%08d-key", id))
	if err := cl.Deposit(exchange, id, obj, key); err != nil {
		s.logf("audit %d: deposit: %v", id, err)
		return false
	}
	// What a corrupt node actually serves: junk bytes in place of the real
	// block (the same pattern node.Config.Corrupt emits).
	junk := make([]byte, min(s.cfg.BlockSize, s.cfg.ObjectSize))
	for j := range junk {
		junk[j] = byte(j) ^ 0xAA
	}
	victim := id + 1
	sealed, err := mediator.Seal(key, id, victim, obj, 0, junk)
	if err != nil {
		s.logf("audit %d: seal: %v", id, err)
		return false
	}
	samples := []protocol.Block{{Object: obj, Index: 0, Origin: id, Recipient: victim, Encrypted: true, Payload: sealed}}
	_, err = cl.Verify(exchange, victim, id, obj, samples)
	if errors.Is(err, medclient.ErrRejected) {
		return true
	}
	s.logf("audit %d: junk passed the audit: %v", id, err)
	return false
}

// auditCheaters audits every corrupt node concurrently through the
// shard-aware client; each audit routes to whichever shard owns the
// object's partition.
func (s *swarmRun) auditCheaters() int {
	cl, err := s.auditClient()
	if err != nil {
		s.logf("audit client: %v", err)
		return 0
	}
	defer cl.Close()
	var wg sync.WaitGroup
	flagged := make([]bool, len(s.peers))
	for i, p := range s.peers {
		if p.strat.Corrupt {
			wg.Add(1)
			go func(i int, id core.PeerID) {
				defer wg.Done()
				flagged[i] = s.auditOne(cl, id)
			}(i, p.currentID())
		}
	}
	wg.Wait()
	n := 0
	for _, f := range flagged {
		if f {
			n++
		}
	}
	return n
}

// convergeCheaterFlags drives medfail's acceptance criterion: after the
// shard killer stops, every corrupt seed must end up flagged on the
// (surviving) tier. Organic flags from the mediated block path count; any
// cheater still unflagged — it never won a manifest race, or its flag died
// with a killed shard — is re-audited until the tier-wide count converges
// or the run deadline hits.
func (s *swarmRun) convergeCheaterFlags() int {
	corrupt := make([]core.PeerID, 0)
	for _, p := range s.peers {
		if p.strat.Corrupt {
			corrupt = append(corrupt, p.currentID())
		}
	}
	if len(corrupt) == 0 {
		return 0
	}
	cl, err := s.auditClient()
	if err != nil {
		s.logf("audit client: %v", err)
		return 0
	}
	defer cl.Close()
	for {
		missing := 0
		for _, id := range corrupt {
			if s.cluster.Flagged(id) > 0 {
				continue
			}
			if !s.auditOne(cl, id) {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		s.logf("cheater flags not yet converged: %d missing", missing)
		t := time.NewTimer(20 * time.Millisecond)
		select {
		case <-t.C:
		case <-s.giveUp:
			t.Stop()
			s.logf("deadline hit with %d cheater flags missing", missing)
			flaggedNow := 0
			for _, id := range corrupt {
				if s.cluster.Flagged(id) > 0 {
					flaggedNow++
				}
			}
			return flaggedNow
		}
	}
	return len(corrupt)
}

// teardown closes every live node, then the mediator clients they used
// (nodes first: their in-flight audit goroutines hold the clients).
func (s *swarmRun) teardown() {
	var wg sync.WaitGroup
	for _, p := range s.peers {
		if nd := p.current(); nd != nil {
			wg.Add(1)
			go func(nd *node.Node) {
				defer wg.Done()
				nd.Close()
			}(nd)
		}
	}
	wg.Wait()
	for _, p := range s.peers {
		if p.medc != nil {
			p.medc.Close()
		}
	}
}
