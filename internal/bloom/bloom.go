// Package bloom implements the Section V extension: compact request-tree
// representation with Bloom filters. A peer summarizes the set of peers at
// each level of its request tree in one Bloom filter per level, and attaches
// those filters (instead of the full tree) to outgoing requests. A searching
// peer can then determine that a ring probably exists — and at which depth —
// without learning the tree's structure; the ring is then resolved by
// next-hop lookups at each node instead of source-routing, with a non-zero
// false-positive probability that a resolution attempt simply fails.
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"

	"barter/internal/core"
)

// Filter is a fixed-size Bloom filter over peer ids.
type Filter struct {
	bits  []uint64
	k     int
	nbits uint64
}

// NewFilter sizes a filter for n expected entries at the given target false
// positive rate (standard optimal sizing: m = -n ln p / ln2^2, k = m/n ln2).
func NewFilter(n int, fpr float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpr <= 0 || fpr >= 1 {
		fpr = 0.01
	}
	m := math.Ceil(-float64(n) * math.Log(fpr) / (math.Ln2 * math.Ln2))
	k := int(math.Round(m / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	nbits := uint64(m)
	if nbits < 64 {
		nbits = 64
	}
	return &Filter{bits: make([]uint64, (nbits+63)/64), k: k, nbits: nbits}
}

// hashPair derives two independent hash values for double hashing.
func hashPair(p core.PeerID) (uint64, uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(uint32(p)))
	// FNV-1a 64-bit, then a splitmix64 round for the second value.
	h1 := uint64(1469598103934665603)
	for _, b := range buf {
		h1 ^= uint64(b)
		h1 *= 1099511628211
	}
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	if h2%2 == 0 { // ensure odd stride so all k probes are distinct mod m
		h2++
	}
	return h1, h2
}

// Add inserts a peer id.
func (f *Filter) Add(p core.PeerID) {
	h1, h2 := hashPair(p)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// Contains reports whether p may have been added (false positives possible,
// false negatives impossible).
func (f *Filter) Contains(p core.PeerID) bool {
	h1, h2 := hashPair(p)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// SizeBytes returns the filter's wire size.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// Union merges other into f; both must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.nbits != other.nbits || f.k != other.k {
		return fmt.Errorf("bloom: incompatible filters (%d/%d bits, k %d/%d)",
			f.nbits, other.nbits, f.k, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	return nil
}

// Leveled summarizes a request tree: Levels[d] holds the peers at depth d+2
// (depth 2 is the first level below the root, mirroring the paper's "we
// require a different Bloom filter for each level in the request tree so
// that peers can trim the tree by one level when they initiate a request").
type Leveled struct {
	Root   core.PeerID
	Levels []*Filter
}

// Summarize builds the per-level filters of a tree, sized for expected
// peers-per-level n at the target false-positive rate.
func Summarize(t *core.Tree, maxDepth, perLevel int, fpr float64) *Leveled {
	if maxDepth < 2 {
		return &Leveled{Root: t.Root}
	}
	levels := make([]*Filter, maxDepth-1)
	counts := make([]int, maxDepth-1)
	for i := range levels {
		levels[i] = NewFilter(perLevel, fpr)
	}
	var walk func(nodes []*core.TreeNode, depth int)
	walk = func(nodes []*core.TreeNode, depth int) {
		if depth > maxDepth {
			return
		}
		for _, n := range nodes {
			levels[depth-2].Add(n.Peer)
			counts[depth-2]++
			walk(n.Children, depth+1)
		}
	}
	walk(t.Children, 2)
	return &Leveled{Root: t.Root, Levels: levels}
}

// Trim returns the summary a peer attaches when forwarding: every level
// shifts one deeper (the receiver's root is one hop above), dropping the
// deepest level to respect the depth bound.
func (l *Leveled) Trim() *Leveled {
	if len(l.Levels) == 0 {
		return &Leveled{Root: l.Root}
	}
	return &Leveled{Root: l.Root, Levels: l.Levels[:len(l.Levels)-1]}
}

// MinDepth returns the shallowest level at which provider may appear (depth
// counted like core.FindRing: 2 = direct requester), and whether it appears
// at all. A true result may be a false positive; a false result is
// definitive.
func (l *Leveled) MinDepth(provider core.PeerID) (int, bool) {
	for i, f := range l.Levels {
		if f.Contains(provider) {
			return i + 2, true
		}
	}
	return 0, false
}

// SizeBytes returns the total wire size of all levels.
func (l *Leveled) SizeBytes() int {
	total := 0
	for _, f := range l.Levels {
		total += f.SizeBytes()
	}
	return total
}

// HintRing checks, for each want, whether any known provider appears in the
// summarized tree within the policy's ring limit, returning the best (per
// policy) candidate depth. It is the filter-based analogue of
// core.FindRing: it cannot name the ring members (the initiator "can only
// determine that a cycle exists"), so resolution proceeds by next-hop
// lookups, and false positives surface as failed resolutions.
func HintRing(l *Leveled, wants []core.Want, pol core.Policy) (wantIdx, depth int, ok bool) {
	if !pol.SearchesExchanges() {
		return 0, 0, false
	}
	limit := pol.Limit()
	best := -1
	bestWant := 0
	better := func(d, cur int) bool {
		if cur == -1 {
			return true
		}
		if pol.Kind == core.LongFirst {
			return d > cur
		}
		return d < cur
	}
	for wi, w := range wants {
		for p := range w.Providers {
			d, found := l.MinDepth(p)
			if !found || d > limit {
				continue
			}
			if better(d, best) {
				best, bestWant = d, wi
			}
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return bestWant, best, true
}
