package bloom

import (
	"testing"
	"testing/quick"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(ids []int32) bool {
		filter := NewFilter(len(ids)+1, 0.01)
		for _, id := range ids {
			filter.Add(core.PeerID(id))
		}
		for _, id := range ids {
			if !filter.Contains(core.PeerID(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n, probes = 500, 20000
	filter := NewFilter(n, 0.01)
	for i := 0; i < n; i++ {
		filter.Add(core.PeerID(i))
	}
	fp := 0
	for i := n; i < n+probes; i++ {
		if filter.Contains(core.PeerID(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want near 0.01", rate)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	filter := NewFilter(100, 0.01)
	for i := 0; i < 1000; i++ {
		if filter.Contains(core.PeerID(i)) {
			t.Fatalf("empty filter claims to contain %d", i)
		}
	}
}

func TestUnion(t *testing.T) {
	a := NewFilter(100, 0.01)
	b := NewFilter(100, 0.01)
	a.Add(1)
	b.Add(2)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains(1) || !a.Contains(2) {
		t.Fatal("union lost elements")
	}
	c := NewFilter(10, 0.2)
	if err := a.Union(c); err == nil {
		t.Fatal("union of incompatible filters accepted")
	}
}

// chainTree builds a linear request chain rooted at 0 (same shape as the
// core package's test helper).
func chainTree(n int) *core.Tree {
	var child *core.TreeNode
	for p := n - 1; p >= 1; p-- {
		node := &core.TreeNode{Peer: core.PeerID(p), Object: catalog.ObjectID(p)}
		if child != nil {
			node.Children = []*core.TreeNode{child}
		}
		child = node
	}
	t := &core.Tree{Root: 0}
	if child != nil {
		t.Children = []*core.TreeNode{child}
	}
	return t
}

func TestSummarizeLevels(t *testing.T) {
	tree := chainTree(5) // peers 1..4 at depths 2..5
	sum := Summarize(tree, 5, 16, 0.01)
	if len(sum.Levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(sum.Levels))
	}
	for i := 1; i <= 4; i++ {
		d, ok := sum.MinDepth(core.PeerID(i))
		if !ok || d != i+1 {
			t.Fatalf("peer %d at depth %d (ok=%v), want %d", i, d, ok, i+1)
		}
	}
	if _, ok := sum.MinDepth(99); ok {
		t.Fatal("absent peer found in summary")
	}
}

func TestTrimDropsDeepestLevel(t *testing.T) {
	tree := chainTree(5)
	sum := Summarize(tree, 5, 16, 0.01)
	trimmed := sum.Trim()
	if len(trimmed.Levels) != 3 {
		t.Fatalf("trimmed levels = %d, want 3", len(trimmed.Levels))
	}
	if _, ok := trimmed.MinDepth(4); ok {
		t.Fatal("deepest peer survived the trim")
	}
	if _, ok := trimmed.MinDepth(3); !ok {
		t.Fatal("mid-level peer lost in the trim")
	}
	empty := (&Leveled{Root: 1}).Trim()
	if len(empty.Levels) != 0 {
		t.Fatal("trim of empty summary misbehaved")
	}
}

func TestHintRingMatchesTreeSearch(t *testing.T) {
	// On the same worlds, the filter hint must agree with the exact tree
	// search about ring existence and depth, modulo false positives (which
	// can only widen the hint, never miss a real ring).
	r := rng.New(31)
	for iter := 0; iter < 300; iter++ {
		n := 2 + r.Intn(6)
		tree := chainTree(n)
		sum := Summarize(tree, 5, 32, 0.001)
		provider := core.PeerID(r.Intn(8))
		wants := []core.Want{{
			Object:    999,
			Providers: map[core.PeerID]bool{provider: true},
		}}
		for _, pol := range []core.Policy{core.PolicyPairwise, core.Policy2N, core.PolicyN2} {
			ring, _, _, exactOK := core.FindRing(tree, wants, pol)
			_, depth, hintOK := HintRing(sum, wants, pol)
			if exactOK && !hintOK {
				t.Fatalf("iter %d %v: hint missed a real ring (no false negatives allowed)", iter, pol)
			}
			if exactOK && hintOK && depth != ring.Size() {
				t.Fatalf("iter %d %v: hint depth %d, exact ring size %d", iter, pol, depth, ring.Size())
			}
		}
	}
}

func TestHintRingNoExchangePolicy(t *testing.T) {
	sum := Summarize(chainTree(4), 5, 16, 0.01)
	wants := []core.Want{{Object: 9, Providers: map[core.PeerID]bool{2: true}}}
	if _, _, ok := HintRing(sum, wants, core.PolicyNoExchange); ok {
		t.Fatal("no-exchange policy produced a hint")
	}
}

func TestHintRingRespectsLimit(t *testing.T) {
	sum := Summarize(chainTree(7), 7, 16, 0.001)
	wants := []core.Want{{Object: 9, Providers: map[core.PeerID]bool{6: true}}} // depth 7
	if _, _, ok := HintRing(sum, wants, core.Policy2N); ok {
		t.Fatal("hint exceeded the 5-way limit")
	}
	if _, d, ok := HintRing(sum, wants, core.Policy{Kind: core.ShortFirst, MaxRing: 7}); !ok || d != 7 {
		t.Fatalf("hint at limit 7: d=%d ok=%v", d, ok)
	}
}

// TestCompressionVersusFullTree quantifies the paper's stated motivation:
// the filters are much smaller than a wide request tree.
func TestCompressionVersusFullTree(t *testing.T) {
	// A wide tree: 64 requesters each with 32 children.
	tree := &core.Tree{Root: 0}
	id := core.PeerID(1)
	for i := 0; i < 64; i++ {
		child := &core.TreeNode{Peer: id, Object: catalog.ObjectID(id)}
		id++
		for j := 0; j < 32; j++ {
			child.Children = append(child.Children, &core.TreeNode{Peer: id, Object: catalog.ObjectID(id)})
			id++
		}
		tree.Children = append(tree.Children, child)
	}
	sum := Summarize(tree, 5, 2048, 0.01)
	// Full tree wire size: 12 bytes per node (peer, object, parent).
	fullBytes := tree.Size() * 12
	if sum.SizeBytes() >= fullBytes {
		t.Fatalf("summary (%d B) not smaller than full tree (%d B)", sum.SizeBytes(), fullBytes)
	}
	// And it still answers membership for every summarized peer.
	if _, ok := sum.MinDepth(1); !ok {
		t.Fatal("summary lost a requester")
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f := NewFilter(1000, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(core.PeerID(i))
	}
}

func BenchmarkHintRing(b *testing.B) {
	sum := Summarize(chainTree(6), 5, 64, 0.01)
	wants := []core.Want{{Object: 9, Providers: map[core.PeerID]bool{4: true}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HintRing(sum, wants, core.Policy2N)
	}
}
