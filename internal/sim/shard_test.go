package sim

import (
	"reflect"
	"testing"

	"barter/internal/workload"
)

// shardConfig is testConfig partitioned across four domains.
func shardConfig() Config {
	cfg := testConfig()
	cfg.Shards = 4
	return cfg
}

func runEngine(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestNewEngineSelectsByShards(t *testing.T) {
	for _, shards := range []int{0, 1} {
		cfg := testConfig()
		cfg.Shards = shards
		if _, ok := mustEngine(t, cfg).(*Sim); !ok {
			t.Fatalf("Shards=%d: want *Sim", shards)
		}
	}
	if _, ok := mustEngine(t, shardConfig()).(*Sharded); !ok {
		t.Fatal("Shards=4: want *Sharded")
	}
}

func mustEngine(t *testing.T, cfg Config) Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestShardedConfigValidation(t *testing.T) {
	// Genuinely invalid input errors through NewEngine too.
	for name, mutate := range map[string]func(*Config){
		"negative shards": func(c *Config) { c.Shards = -1 },
		"negative window": func(c *Config) { c.ShardWindowSec = -1 },
	} {
		cfg := shardConfig()
		mutate(&cfg)
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	// NewSharded is strict: configs the partitioned engine cannot run are
	// errors when it is constructed directly.
	for name, mutate := range map[string]func(*Config){
		"too few peers": func(c *Config) { c.NumPeers = 2*c.Shards - 1 },
		"trace replay":  func(c *Config) { c.Trace = &workload.Trace{} },
		"ranker":        func(c *Config) { c.Ranker = &resetRecorder{} },
	} {
		cfg := shardConfig()
		mutate(&cfg)
		if _, err := NewSharded(cfg); err == nil {
			t.Errorf("%s: NewSharded accepted an unpartitionable config", name)
		}
	}
	// NewEngine falls back to the single-threaded engine for the same
	// configs (a blanket -shards flag must work across a whole experiment
	// registry, credit rankers included).
	for name, mutate := range map[string]func(*Config){
		"too few peers": func(c *Config) { c.NumPeers = 2*c.Shards - 1 },
		"ranker":        func(c *Config) { c.Ranker = &resetRecorder{} },
	} {
		cfg := shardConfig()
		mutate(&cfg)
		e, err := NewEngine(cfg)
		if err != nil {
			t.Errorf("%s: NewEngine did not fall back: %v", name, err)
			continue
		}
		if _, ok := e.(*Sim); !ok {
			t.Errorf("%s: NewEngine returned %T, want single-threaded *Sim", name, e)
		}
	}
	// New itself must refuse sharded configs: callers pick via NewEngine.
	if _, err := New(shardConfig()); err == nil {
		t.Fatal("New accepted Shards > 1")
	}
	if _, err := NewSharded(testConfig()); err == nil {
		t.Fatal("NewSharded accepted Shards <= 1")
	}
}

// TestShardedDeterminism pins the tentpole contract: for a fixed shard
// count, the result is a pure function of (config, seed) — identical across
// repeated runs and across worker-pool widths, including single-threaded
// inline execution.
func TestShardedDeterminism(t *testing.T) {
	base := runEngine(t, shardConfig())
	for name, mutate := range map[string]func(*Config){
		"rerun":     func(c *Config) {},
		"workers=1": func(c *Config) { c.ShardWorkers = 1 },
		"workers=4": func(c *Config) { c.ShardWorkers = 4 },
	} {
		cfg := shardConfig()
		mutate(&cfg)
		if got := runEngine(t, cfg); !reflect.DeepEqual(base, got) {
			t.Errorf("%s: sharded result diverged\nbase: %s\ngot:  %s",
				name, base.Summary(), got.Summary())
		}
	}
}

// TestShardedSeedsDiverge guards against the domains accidentally sharing
// one RNG position: different seeds must still produce different runs.
func TestShardedSeedsDiverge(t *testing.T) {
	a := runEngine(t, shardConfig())
	cfg := shardConfig()
	cfg.Seed = 2
	if b := runEngine(t, cfg); reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical sharded results")
	}
}

// TestShardedCrossTraffic checks that the partition boundary actually
// carries work: remote fetches start, cross-domain blocks flow, and
// downloads complete in every domain's population.
func TestShardedCrossTraffic(t *testing.T) {
	res := runEngine(t, shardConfig())
	if res.RemoteFetches == 0 {
		t.Error("no remote fetches started")
	}
	if res.RemoteBlocks == 0 {
		t.Error("no cross-partition blocks delivered")
	}
	if res.CompletedSharing+res.CompletedNonSharing == 0 {
		t.Error("sharded run completed no downloads")
	}
	if res.Events == 0 {
		t.Error("sharded run executed no events")
	}
}

// TestShardedPreservesIncentiveShape: the paper's headline effect — sharing
// peers download faster than non-sharing ones under an exchange policy —
// must survive partitioning.
func TestShardedPreservesIncentiveShape(t *testing.T) {
	cfg := shardConfig()
	cfg.FreeriderFrac = 0.5
	res := runEngine(t, cfg)
	sharing, non := res.MeanDownloadMin(true), res.MeanDownloadMin(false)
	if sharing <= 0 || non <= 0 {
		t.Fatalf("missing download samples: sharing=%v non=%v", sharing, non)
	}
	if sharing >= non {
		t.Errorf("sharing peers not faster under shards: sharing=%.2f non=%.2f", sharing, non)
	}
}

// TestShardedWorkloadDeterminism: the open-loop workload layer compiles
// against the global population, so sharded workload runs must also be
// reproducible and must exercise the remote-fetch fallback path.
func TestShardedWorkloadDeterminism(t *testing.T) {
	cfg := quickWorkloadConfig()
	cfg.Shards = 4
	cfg.Workload, _ = workload.Builtin("flash")
	a := runEngine(t, cfg)
	b := runEngine(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sharded workload runs diverged:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
	if a.CompletedSharing+a.CompletedNonSharing == 0 {
		t.Fatal("sharded workload run completed no downloads")
	}
}

func TestShardedRunTwiceRejected(t *testing.T) {
	s, err := NewSharded(shardConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestShardedWindowOverride: a custom conservative window changes the
// epoch schedule (and thus the trajectory) but must stay deterministic.
func TestShardedWindowOverride(t *testing.T) {
	cfg := shardConfig()
	cfg.ShardWindowSec = 10
	a := runEngine(t, cfg)
	if b := runEngine(t, cfg); !reflect.DeepEqual(a, b) {
		t.Fatal("runs with a custom window diverged")
	}
}
