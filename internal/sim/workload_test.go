package sim

import (
	"testing"

	"barter/internal/workload"
)

// quickWorkloadConfig is a small, fast config for workload-mode tests.
func quickWorkloadConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 40
	cfg.Catalog.Categories = 40
	cfg.Catalog.ObjectsPerCategoryMax = 20
	cfg.ObjectKbits = 4000
	cfg.BlockKbits = 250
	cfg.Duration = 20_000
	cfg.WarmupFrac = 0
	cfg.FreeriderFrac = 0.3
	return cfg
}

func runOnce(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkloadRunCompletesDownloads(t *testing.T) {
	cfg := quickWorkloadConfig()
	cfg.Workload, _ = workload.Builtin("flash")
	res := runOnce(t, cfg)
	if res.CompletedSharing+res.CompletedNonSharing == 0 {
		t.Fatal("workload run completed no downloads")
	}
}

// TestWorkloadDeterminism pins the engine contract in workload mode: equal
// Configs (including Seed) produce byte-identical summaries.
func TestWorkloadDeterminism(t *testing.T) {
	cfg := quickWorkloadConfig()
	cfg.Workload, _ = workload.Builtin("waves")
	a := runOnce(t, cfg).Summary()
	b := runOnce(t, cfg).Summary()
	if a != b {
		t.Errorf("workload runs diverged:\n%s\nvs\n%s", a, b)
	}
	cfg.Seed = 2
	if c := runOnce(t, cfg).Summary(); c == a {
		t.Error("different seeds produced identical runs")
	}
}

// TestWorkloadCohortsChurn checks that a cohorted spec actually takes peers
// offline and brings them back: the run completes downloads despite the
// sessions, and a spec whose cohorts never overlap the measurement start
// still works.
func TestWorkloadCohortsChurn(t *testing.T) {
	cfg := quickWorkloadConfig()
	spec, _ := workload.Builtin("constant")
	spec.Cohorts = []workload.Cohort{
		{Name: "late", Frac: 0.5, Arrive: 0.5},
	}
	cfg.Workload = spec
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Before any events fire, the late half of the population is offline.
	offline := 0
	for i := 0; i < cfg.NumPeers; i++ {
		if !s.peers[i].online {
			offline++
		}
	}
	if offline != cfg.NumPeers/2 {
		t.Fatalf("%d peers offline at start, want %d", offline, cfg.NumPeers/2)
	}
	s.RunUntil(cfg.Duration * 0.9)
	for i := 0; i < cfg.NumPeers; i++ {
		if !s.peers[i].online {
			t.Fatalf("peer %d still offline at 90%% of the horizon", i)
		}
	}
}

// TestWorkloadDisablesClosedLoop checks the open-loop contract: with a
// workload set, completing a download must not top the peer back up via
// issueRequests, so total demand is bounded by the spec's arrivals.
func TestWorkloadDisablesClosedLoop(t *testing.T) {
	cfg := quickWorkloadConfig()
	spec, _ := workload.Builtin("constant")
	spec.RequestsPerPeer = 2 // tiny demand: closed-loop leakage would dwarf it
	cfg.Workload = spec
	res := runOnce(t, cfg)
	maxDemand := 2 * cfg.NumPeers
	if got := res.CompletedSharing + res.CompletedNonSharing; got > maxDemand {
		t.Errorf("completed %d downloads, more than the spec's total demand %d", got, maxDemand)
	}
}

func TestWorkloadAndTraceMutuallyExclusive(t *testing.T) {
	cfg := quickWorkloadConfig()
	cfg.Workload, _ = workload.Builtin("flash")
	cfg.Trace = &workload.Trace{Header: workload.Header{Version: workload.TraceVersion, Nodes: 2, Horizon: 1}}
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted Workload and Trace together")
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted Workload and Trace together")
	}
}

// syntheticTrace is a hand-built trace: peer 0 holds two objects from the
// start, peer 1 requests both, peer 2 arrives mid-run and requests one.
func syntheticTrace() *workload.Trace {
	rec := workload.NewRecorder()
	rec.Hold(0, 1)
	rec.Hold(0, 2)
	rec.Request(1, 1, 1)
	rec.Request(2, 1, 2)
	rec.Arrive(50, 2)
	rec.Request(60, 2, 1)
	rec.Depart(4000, 2)
	return rec.Trace(workload.Header{
		Scenario:    "synthetic",
		Nodes:       3,
		Objects:     2,
		ObjectKbits: 100,
		BlockKbits:  10,
		Horizon:     100,
	})
}

func TestTraceReplayCompletesRecordedDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = syntheticTrace()
	cfg.WarmupFrac = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPeers() != 3 {
		t.Fatalf("replay population %d, want 3 from the trace header", s.NumPeers())
	}
	if s.peers[2].online {
		t.Error("peer with an arrive event started online")
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All three recorded requests must complete: the objects are tiny and
	// the horizon was extended far past the recorded one.
	if got := res.CompletedSharing + res.CompletedNonSharing; got != 3 {
		t.Errorf("replay completed %d downloads, want 3", got)
	}
	if !s.peers[1].store[1] || !s.peers[1].store[2] || !s.peers[2].store[1] {
		t.Error("replayed peers missing recorded objects")
	}
	if s.peers[2].online {
		t.Error("departed peer still online at end")
	}
}

func TestTraceReplayDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = syntheticTrace()
	cfg.WarmupFrac = 0
	a := runOnce(t, cfg).Summary()
	b := runOnce(t, cfg).Summary()
	if a != b {
		t.Errorf("replays diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestTraceReplayRetriesUntilHolderArrives pins the persistent-demand rule:
// a request recorded before its provider's arrival retries until the
// provider shows up, instead of being dropped.
func TestTraceReplayRetriesUntilHolderArrives(t *testing.T) {
	rec := workload.NewRecorder()
	rec.Arrive(500, 0) // the only holder arrives late
	rec.Hold(0, 1)
	rec.Request(1, 1, 1) // demanded long before the holder exists
	tr := rec.Trace(workload.Header{
		Nodes: 2, Objects: 1, ObjectKbits: 100, BlockKbits: 10, Horizon: 600,
	})
	cfg := DefaultConfig()
	cfg.Trace = tr
	cfg.WarmupFrac = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CompletedSharing + res.CompletedNonSharing; got != 1 {
		t.Errorf("replay completed %d downloads, want 1 after retrying past the arrival", got)
	}
	if res.LookupFailures == 0 {
		t.Error("expected lookup failures while the holder was absent")
	}
}

// TestTraceConfigCapsBlockSize pins the geometry override: a trace recorded
// with swarm-scale objects must not fail Validate against the sim's default
// 500-kbit block.
func TestTraceConfigCapsBlockSize(t *testing.T) {
	rec := workload.NewRecorder()
	rec.Hold(0, 1)
	rec.Request(1, 1, 1)
	tr := rec.Trace(workload.Header{
		Nodes: 2, Objects: 1, ObjectKbits: 262.144, Horizon: 10, // quick-swarm 32 KiB objects
	})
	cfg := DefaultConfig()
	cfg.Trace = tr
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.BlockKbits > s.cfg.ObjectKbits {
		t.Errorf("BlockKbits %v exceeds ObjectKbits %v after override", s.cfg.BlockKbits, s.cfg.ObjectKbits)
	}
}

// TestLegacyUnaffectedByNewFields re-pins the byte-identity guarantee: a
// config without Workload or Trace behaves exactly as before this layer
// existed (the full-identity tests elsewhere cover figures; this is the
// cheap canary).
func TestLegacyUnaffectedByNewFields(t *testing.T) {
	cfg := quickWorkloadConfig()
	a := runOnce(t, cfg).Summary()
	b := runOnce(t, cfg).Summary()
	if a != b {
		t.Error("legacy run no longer deterministic")
	}
}
