package sim

import (
	"math"
	"testing"

	"barter/internal/catalog"
	"barter/internal/core"
)

// testConfig is a scaled-down world that runs in well under a second: 30
// peers, 0.5 MB objects, a few simulated hours. Shapes, not absolute
// numbers, carry over from the paper-scale configuration.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 30
	cfg.Catalog = catalog.Config{
		Categories:            10,
		ObjectsPerCategoryMin: 4,
		ObjectsPerCategoryMax: 20,
		CategoryFactor:        0.2,
		ObjectFactor:          0.2,
		CategoriesPerPeerMin:  2,
		CategoriesPerPeerMax:  6,
	}
	cfg.ObjectKbits = 4000
	cfg.BlockKbits = 250
	cfg.StorageMinObjects = 8
	cfg.StorageMaxObjects = 20
	cfg.MaxPending = 6
	cfg.Duration = 30_000
	cfg.EvictionInterval = 600
	cfg.RetryInterval = 120
	return cfg
}

func runOne(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestNewValidatesConfig(t *testing.T) {
	cfg := testConfig()
	cfg.NumPeers = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestConfigValidateCases(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero slot":         func(c *Config) { c.SlotKbps = 0 },
		"upload below slot": func(c *Config) { c.UploadKbps = 5 },
		"block > object":    func(c *Config) { c.BlockKbits = c.ObjectKbits + 1 },
		"bad storage":       func(c *Config) { c.StorageMinObjects = 0 },
		"bad irq":           func(c *Config) { c.IRQCapacity = 0 },
		"bad pending":       func(c *Config) { c.MaxPending = 0 },
		"bad freerider":     func(c *Config) { c.FreeriderFrac = 1.5 },
		"bad lookup":        func(c *Config) { c.LookupMax = 0 },
		"bad duration":      func(c *Config) { c.Duration = 0 },
		"bad warmup":        func(c *Config) { c.WarmupFrac = 1 },
		"bad eviction":      func(c *Config) { c.EvictionInterval = 0 },
		"bad policy":        func(c *Config) { c.Policy = core.Policy{Kind: core.ShortFirst, MaxRing: 1} },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestSlotCounts(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.UploadSlots() != 8 || cfg.DownloadSlots() != 80 {
		t.Fatalf("slots = %d/%d, want 8/80", cfg.UploadSlots(), cfg.DownloadSlots())
	}
}

// shortConfig halves the simulated horizon in -short mode: determinism,
// divergence, and completion-count properties hold at any horizon, so the
// quick equivalent loses no coverage, only load.
func shortConfig() Config {
	cfg := testConfig()
	if testing.Short() {
		cfg.Duration = 12_000
	}
	return cfg
}

func TestDeterminism(t *testing.T) {
	cfg := shortConfig()
	a := runOne(t, cfg)
	b := runOne(t, cfg)
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	if a.CompletedSharing != b.CompletedSharing || a.CompletedNonSharing != b.CompletedNonSharing {
		t.Fatalf("completions differ: %d/%d vs %d/%d",
			a.CompletedSharing, a.CompletedNonSharing, b.CompletedSharing, b.CompletedNonSharing)
	}
	if a.ExchangeFraction != b.ExchangeFraction {
		t.Fatalf("exchange fractions differ: %v vs %v", a.ExchangeFraction, b.ExchangeFraction)
	}
	am, bm := a.MeanDownloadMin(true), b.MeanDownloadMin(true)
	if am != bm && !(math.IsNaN(am) && math.IsNaN(bm)) {
		t.Fatalf("sharing means differ: %v vs %v", am, bm)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	cfg := shortConfig()
	a := runOne(t, cfg)
	cfg.Seed = 2
	b := runOne(t, cfg)
	if a.Events == b.Events && a.CompletedSharing == b.CompletedSharing &&
		a.ExchangeFraction == b.ExchangeFraction {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestRunCompletesDownloads(t *testing.T) {
	res := runOne(t, shortConfig())
	if res.CompletedSharing == 0 {
		t.Fatal("no sharing downloads completed")
	}
	if res.CompletedNonSharing == 0 {
		t.Fatal("no non-sharing downloads completed")
	}
	if res.ExchangeFraction <= 0 {
		t.Fatal("no exchange sessions at all under 2-5-way policy")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run did not error")
	}
}

func TestInvariantsThroughoutRun(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 10_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for s.Step() {
		steps++
		if steps%500 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d events (t=%.0fs): %v", steps, s.Now(), err)
			}
		}
		if s.Now() > cfg.Duration {
			break
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("final state: %v", err)
	}
	if steps == 0 {
		t.Fatal("simulation fired no events")
	}
}

// TestSharingBeatsFreeriding is the paper's headline claim at test scale:
// under an exchange policy with tight upload capacity, sharing users see
// clearly faster downloads than free-riders.
func TestSharingBeatsFreeriding(t *testing.T) {
	cfg := testConfig()
	cfg.UploadKbps = 40
	cfg.Policy = core.Policy2N
	res := runOne(t, cfg)
	sh, non := res.MeanDownloadMin(true), res.MeanDownloadMin(false)
	if math.IsNaN(sh) || math.IsNaN(non) {
		t.Fatalf("missing samples: sharing=%v non=%v (completed %d/%d)",
			sh, non, res.CompletedSharing, res.CompletedNonSharing)
	}
	if sh >= non {
		t.Fatalf("sharing mean %.1f min not better than non-sharing %.1f min", sh, non)
	}
}

// TestNoExchangeIsNeutral verifies the baseline: without exchanges, sharing
// confers no advantage (both classes within a modest band).
func TestNoExchangeIsNeutral(t *testing.T) {
	cfg := testConfig()
	cfg.UploadKbps = 40
	cfg.Policy = core.PolicyNoExchange
	res := runOne(t, cfg)
	if res.ExchangeFraction != 0 {
		t.Fatalf("no-exchange run reported exchange fraction %v", res.ExchangeFraction)
	}
	sh, non := res.MeanDownloadMin(true), res.MeanDownloadMin(false)
	ratio := non / sh
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("no-exchange ratio %.2f outside neutral band (sharing %.1f, non %.1f)",
			ratio, sh, non)
	}
}

// TestExchangeAdvantageExceedsBaseline: the exchange policy must
// differentiate the classes more than the no-exchange baseline does.
func TestExchangeAdvantageExceedsBaseline(t *testing.T) {
	cfg := testConfig()
	cfg.UploadKbps = 40
	cfg.Policy = core.PolicyNoExchange
	base := runOne(t, cfg)
	cfg.Policy = core.Policy2N
	exch := runOne(t, cfg)
	if exch.SpeedupSharingVsNonSharing() <= base.SpeedupSharingVsNonSharing() {
		t.Fatalf("exchange speedup %.2f not above baseline %.2f",
			exch.SpeedupSharingVsNonSharing(), base.SpeedupSharingVsNonSharing())
	}
}

func TestRingSizesWithinPolicyLimit(t *testing.T) {
	cfg := shortConfig()
	cfg.UploadKbps = 40
	for _, pol := range []core.Policy{core.PolicyPairwise, core.Policy2N, core.PolicyN2} {
		cfg.Policy = pol
		res := runOne(t, cfg)
		for size := range res.RingsStarted {
			if size < 2 || size > pol.Limit() {
				t.Fatalf("%v: ring of size %d started", pol, size)
			}
		}
	}
}

func TestPairwisePolicyStartsOnlyPairs(t *testing.T) {
	cfg := shortConfig()
	cfg.Policy = core.PolicyPairwise
	res := runOne(t, cfg)
	for label := range res.SessionCount {
		if label != TypeNonExchange && label != TypePairwise {
			t.Fatalf("pairwise run produced %q sessions", label)
		}
	}
}

func TestDisablePreemption(t *testing.T) {
	cfg := testConfig()
	cfg.UploadKbps = 40
	cfg.DisablePreemption = true
	res := runOne(t, cfg)
	if res.Preemptions != 0 {
		t.Fatalf("preemption disabled but %d preemptions recorded", res.Preemptions)
	}
}

func TestPreemptionHappensUnderLoad(t *testing.T) {
	cfg := testConfig()
	cfg.UploadKbps = 20 // 2 slots: exchanges must reclaim capacity
	res := runOne(t, cfg)
	if res.Preemptions == 0 {
		t.Fatal("no preemptions under tight capacity (exchange priority never bit)")
	}
}

func TestAllFreeridersDegenerates(t *testing.T) {
	cfg := testConfig()
	cfg.FreeriderFrac = 1
	cfg.Duration = 5_000
	res := runOne(t, cfg)
	if res.CompletedSharing != 0 || res.CompletedNonSharing != 0 {
		t.Fatalf("downloads completed with zero sharers: %d/%d",
			res.CompletedSharing, res.CompletedNonSharing)
	}
}

func TestAllSharers(t *testing.T) {
	cfg := shortConfig()
	cfg.FreeriderFrac = 0
	res := runOne(t, cfg)
	if res.CompletedNonSharing != 0 {
		t.Fatal("non-sharing completions with zero free-riders")
	}
	if res.CompletedSharing == 0 {
		t.Fatal("no completions in an all-sharing system")
	}
}

func TestDisconnectPeerMidRun(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(5_000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("pre-disconnect: %v", err)
	}
	// Disconnect the busiest sharing peers to maximize teardown coverage.
	var disconnected int
	for id := 0; id < s.NumPeers() && disconnected < 5; id++ {
		if s.PeerIsSharing(core.PeerID(id)) {
			s.DisconnectPeer(core.PeerID(id))
			disconnected++
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("post-disconnect: %v", err)
	}
	s.RunUntil(8_000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after continued run: %v", err)
	}
}

func TestRejoinPeer(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(3_000)
	var victim core.PeerID = -1
	for id := 0; id < s.NumPeers(); id++ {
		if s.PeerIsSharing(core.PeerID(id)) {
			victim = core.PeerID(id)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no sharing peer found")
	}
	s.DisconnectPeer(victim)
	s.DisconnectPeer(victim) // idempotent
	s.RunUntil(4_000)
	s.RejoinPeer(victim)
	s.RejoinPeer(victim) // idempotent
	s.RunUntil(6_000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTypeLabel(t *testing.T) {
	cases := map[int]string{1: "non-exchange", 2: "pairwise", 3: "3-way", 5: "5-way"}
	for size, want := range cases {
		if got := TypeLabel(size); got != want {
			t.Fatalf("TypeLabel(%d) = %q, want %q", size, got, want)
		}
	}
}

func TestResultSummary(t *testing.T) {
	res := runOne(t, shortConfig())
	if res.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestWaitingTimesNonNegative(t *testing.T) {
	res := runOne(t, shortConfig())
	for _, key := range res.WaitingTimeMin.Keys() {
		sample := res.WaitingTimeMin.Get(key)
		if sample.Quantile(0) < 0 {
			t.Fatalf("negative waiting time in class %q", key)
		}
	}
}

func TestSessionVolumesWithinObjectSize(t *testing.T) {
	cfg := shortConfig()
	res := runOne(t, cfg)
	maxKB := cfg.ObjectKbits / 8
	for _, key := range res.SessionVolumeKB.Keys() {
		sample := res.SessionVolumeKB.Get(key)
		if sample.Quantile(1) > maxKB+cfg.BlockKbits/8 {
			t.Fatalf("session in class %q moved %v kB, object is only %v kB",
				key, sample.Quantile(1), maxKB)
		}
	}
}

func BenchmarkSimSmall(b *testing.B) {
	cfg := testConfig()
	cfg.Duration = 5_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
