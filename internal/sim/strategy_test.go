package sim

import (
	"math"
	"testing"

	"barter/internal/core"
	"barter/internal/strategy"
)

// TestExplicitLegacyMixIsIdentical pins the refactor contract: a config with
// an explicit strategy.LegacyMix must reproduce the FreeriderFrac run byte
// for byte (events, completions, means).
func TestExplicitLegacyMixIsIdentical(t *testing.T) {
	cfg := shortConfig()
	a := runOne(t, cfg)
	cfg.Mix = strategy.LegacyMix(cfg.FreeriderFrac)
	b := runOne(t, cfg)
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	if a.CompletedSharing != b.CompletedSharing || a.CompletedNonSharing != b.CompletedNonSharing {
		t.Fatalf("completions differ: %d/%d vs %d/%d",
			a.CompletedSharing, a.CompletedNonSharing, b.CompletedSharing, b.CompletedNonSharing)
	}
	if am, bm := a.MeanDownloadMin(true), b.MeanDownloadMin(true); am != bm && !(math.IsNaN(am) && math.IsNaN(bm)) {
		t.Fatalf("sharing means differ: %v vs %v", am, bm)
	}
	if a.VolumePerSharingPeerMB != b.VolumePerSharingPeerMB {
		t.Fatalf("volumes differ: %v vs %v", a.VolumePerSharingPeerMB, b.VolumePerSharingPeerMB)
	}
}

// TestLegacyClassResults: the two legacy classes appear as per-class results
// that agree with the legacy aggregates.
func TestLegacyClassResults(t *testing.T) {
	res := runOne(t, shortConfig())
	if len(res.Classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(res.Classes))
	}
	non, sh := res.Class(strategy.LabelNonSharing), res.Class(strategy.LabelSharing)
	if non == nil || sh == nil {
		t.Fatalf("missing legacy classes: %+v", res.Classes)
	}
	if sh.Completed != res.CompletedSharing || non.Completed != res.CompletedNonSharing {
		t.Fatalf("class completions %d/%d disagree with legacy %d/%d",
			sh.Completed, non.Completed, res.CompletedSharing, res.CompletedNonSharing)
	}
	if m := res.ClassMeanDownloadMin(strategy.LabelSharing); m != res.MeanDownloadMin(true) {
		t.Fatalf("class mean %v != legacy mean %v", m, res.MeanDownloadMin(true))
	}
	if sh.VolumePerPeerMB != res.VolumePerSharingPeerMB {
		t.Fatalf("class volume %v != legacy volume %v", sh.VolumePerPeerMB, res.VolumePerSharingPeerMB)
	}
	if res.Class("no-such-class") != nil || !math.IsNaN(res.ClassMeanDownloadMin("no-such-class")) {
		t.Fatal("absent class did not report nil/NaN")
	}
}

func adversaryConfig(adv strategy.Strategy, frac float64) Config {
	cfg := testConfig()
	cfg.UploadKbps = 40
	cfg.Policy = core.Policy2N
	cfg.Mix = strategy.Mix{
		{Strategy: adv, Frac: frac},
		{Strategy: strategy.NonSharing(), Frac: frac},
		{Strategy: strategy.Sharing(), Frac: 1 - 2*frac},
	}
	return cfg
}

func TestMixValidationInConfig(t *testing.T) {
	cfg := testConfig()
	cfg.Mix = strategy.Mix{{Strategy: strategy.Sharing(), Frac: 0.5}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("under-full mix accepted")
	}
	cfg.Mix = strategy.Mix{
		{Strategy: strategy.Corrupt(), Frac: 0.5},
		{Strategy: strategy.Sharing(), Frac: 0.5},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("corrupt strategy accepted by the simulator")
	}
}

// TestPartialSharerThrottled: partial sharers run with reduced upload slots,
// still complete downloads, and never exceed their cap (CheckInvariants
// enforces the cap per event below).
func TestPartialSharerThrottled(t *testing.T) {
	cfg := adversaryConfig(strategy.PartialSharer(), 0.25)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capped := 0
	for _, p := range s.peers {
		if p.strat.Name == strategy.LabelPartial {
			if want := p.strat.SlotCap(cfg.UploadSlots()); p.ulSlots != want {
				t.Fatalf("partial peer %d has %d slots, want %d", p.id, p.ulSlots, want)
			}
			if p.ulSlots >= cfg.UploadSlots() {
				t.Fatalf("partial peer %d not throttled (%d of %d slots)", p.id, p.ulSlots, cfg.UploadSlots())
			}
			capped++
		}
	}
	if capped == 0 {
		t.Fatal("mix assigned no partial sharers")
	}
	s.RunUntil(10_000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res, err := s.colResultForTest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Class(strategy.LabelPartial).Completed == 0 {
		t.Fatal("partial sharers completed nothing")
	}
}

// TestAdaptiveFreeriderFlips: under exchange priority with tight capacity,
// adaptive free-riders get starved, start contributing, and complete
// downloads; the flip counter records the toggles.
func TestAdaptiveFreeriderFlips(t *testing.T) {
	cfg := adversaryConfig(strategy.AdaptiveFreerider(), 0.25)
	cfg.AdaptivePatience = 300
	res := runOne(t, cfg)
	adaptive := res.Class(strategy.LabelAdaptive)
	if adaptive == nil {
		t.Fatal("no adaptive class in results")
	}
	if adaptive.Flips == 0 {
		t.Fatal("adaptive free-riders never started contributing (no flips)")
	}
	if adaptive.Completed == 0 {
		t.Fatal("adaptive free-riders completed nothing")
	}
}

// TestAdaptiveInvariantsThroughFlips interleaves invariant checks with a run
// containing adaptive peers: the contribute/defect transitions must never
// corrupt holder indexes or session bookkeeping.
func TestAdaptiveInvariantsThroughFlips(t *testing.T) {
	cfg := adversaryConfig(strategy.AdaptiveFreerider(), 0.3)
	cfg.AdaptivePatience = 200
	cfg.Duration = 10_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for s.Step() {
		steps++
		if steps%500 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d events (t=%.0fs): %v", steps, s.Now(), err)
			}
		}
		if s.Now() > cfg.Duration {
			break
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("final state: %v", err)
	}
}

// TestWhitewasherChurnsIdentity: whitewashing peers periodically drop their
// state and rejoin; the run stays consistent and counts the churns.
func TestWhitewasherChurnsIdentity(t *testing.T) {
	cfg := adversaryConfig(strategy.Whitewasher(), 0.25)
	cfg.WhitewashInterval = 2_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for s.Step() {
		steps++
		if steps%1000 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("after %d events (t=%.0fs): %v", steps, s.Now(), err)
			}
		}
		if s.Now() > cfg.Duration {
			break
		}
	}
	res, err := s.colResultForTest()
	if err != nil {
		t.Fatal(err)
	}
	ww := res.Class(strategy.LabelWhitewasher)
	if ww == nil || ww.Whitewashes == 0 {
		t.Fatalf("no whitewashes recorded: %+v", ww)
	}
}

// resetRecorder records WhitewashResetter calls.
type resetRecorder struct {
	resets map[core.PeerID]int
}

func (r *resetRecorder) Score(_, _ core.PeerID, waited float64) float64 { return waited }
func (r *resetRecorder) OnTransfer(_, _ core.PeerID, _ float64)         {}
func (r *resetRecorder) OnWhitewash(p core.PeerID) {
	if r.resets == nil {
		r.resets = make(map[core.PeerID]int)
	}
	r.resets[p]++
}

// TestWhitewashResetsRanker: every identity churn must wipe the ranker's
// books for exactly the whitewashing peer.
func TestWhitewashResetsRanker(t *testing.T) {
	cfg := adversaryConfig(strategy.Whitewasher(), 0.25)
	cfg.Policy = core.PolicyNoExchange
	cfg.WhitewashInterval = 2_000
	cfg.Duration = 10_000
	rec := &resetRecorder{}
	cfg.Ranker = rec
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.resets) == 0 {
		t.Fatal("ranker never saw a whitewash")
	}
	for id := range rec.resets {
		if s.PeerClassLabel(id) != strategy.LabelWhitewasher {
			t.Fatalf("peer %d (%s) reset the ranker but is not a whitewasher", id, s.PeerClassLabel(id))
		}
	}
}

// TestPeerClassesMatchesRun: the out-of-band class derivation must agree
// with the constructed simulation for a rich mix too.
func TestPeerClassesMatchesRun(t *testing.T) {
	cfg := adversaryConfig(strategy.PartialSharer(), 0.2)
	classes := PeerClasses(cfg)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < s.NumPeers(); id++ {
		pid := core.PeerID(id)
		if classes[pid] != s.peers[pid].strat.Share {
			t.Fatalf("peer %d: PeerClasses says share=%v, run says %v",
				id, classes[pid], s.peers[pid].strat.Share)
		}
	}
}

// colResultForTest finalizes the collector mid-run the way Run does, for
// tests that drive the engine manually.
func (s *Sim) colResultForTest() (*Result, error) {
	for _, p := range s.peers {
		for _, up := range p.uploads {
			if !up.closed {
				s.col.sessionDone(s.q.Now(), up)
				up.closed = true
			}
		}
	}
	return s.col.result(s.cfg.Policy.String(), s.q.Now(), s.q.Fired(), s.classCounts), nil
}
