package sim

import (
	"testing"
)

// The engine removes elements from session/request/pending slices with the
// append(x[:i], x[i+1:]...) idiom, which shifts the tail in place: any alias
// of the same backing array observes the shift. The teardown paths
// (completeDownload, dissolveRing, evictFrom, DisconnectPeer) therefore
// iterate over snapshots — or over slices proven immutable during the walk,
// like a dissolving ring's session list. The tests in this file pin those
// proofs: the audit for this PR found no live mutation-during-iteration bug,
// and these regressions keep it that way.

// TestRemoveSessionShiftsAliases documents the aliasing hazard itself: after
// removeSession, a previously taken alias of the same backing array sees
// shifted contents, which is exactly why teardown paths snapshot first.
func TestRemoveSessionShiftsAliases(t *testing.T) {
	a, b, c := &session{}, &session{}, &session{}
	list := []*session{a, b, c}
	alias := list // same backing array, not a copy
	list = removeSession(list, a)
	if len(list) != 2 || list[0] != b || list[1] != c {
		t.Fatalf("removeSession result wrong: %v", list)
	}
	// The alias now sees the shifted tail — iterating it while removing
	// would skip elements. A snapshot (append to fresh/scratch storage)
	// does not.
	if alias[0] != b {
		t.Fatal("expected the alias to observe the in-place shift")
	}
	snap := append([]*session(nil), list...)
	list = removeSession(list, b)
	if snap[0] != b || snap[1] != c {
		t.Fatal("snapshot must be immune to later removals")
	}
	if len(list) != 1 || list[0] != c {
		t.Fatalf("second removal wrong: %v", list)
	}
}

// TestDissolveRingSliceIsNeverMutated pins the proof that lets dissolveRing
// iterate rs.sessions without a snapshot: terminateSession unlinks a session
// from its peers and its download, but must never touch the ring's own
// session list.
func TestDissolveRingSliceIsNeverMutated(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 21
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Step until some exchange ring exists, then tear one down by hand.
	var rs *ringState
	for steps := 0; steps < 2_000_000 && rs == nil; steps++ {
		if !s.Step() {
			break
		}
		for _, p := range s.peers {
			for _, up := range p.uploads {
				if up.ringSize > 1 && up.ring != nil && !up.ring.dissolved {
					rs = up.ring
					break
				}
			}
			if rs != nil {
				break
			}
		}
	}
	if rs == nil {
		t.Fatal("no exchange ring formed; config no longer exercises the path")
	}
	members := append([]*session(nil), rs.sessions...)
	s.dissolveRing(rs, true)
	if len(rs.sessions) != len(members) {
		t.Fatalf("dissolveRing mutated rs.sessions: %d -> %d entries", len(members), len(rs.sessions))
	}
	for i, sess := range rs.sessions {
		if sess != members[i] {
			t.Fatalf("rs.sessions[%d] changed identity during dissolution", i)
		}
		if !sess.closed {
			t.Fatalf("ring member %d not closed after dissolution", i)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after manual dissolution: %v", err)
	}
}

// TestMultiSessionDownloadTeardown drives a run until a download is fed by
// at least two concurrent sessions — the scenario where completeDownload's
// iteration races its own removals if it ever drops the snapshot — and then
// verifies the run continues consistently through that download's teardown.
func TestMultiSessionDownloadTeardown(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 22
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed := false
	for steps := 0; steps < 4_000_000; steps++ {
		if !s.Step() {
			break
		}
		if !observed {
			for _, p := range s.peers {
				for _, dl := range p.pending {
					if len(dl.sessions) >= 2 {
						observed = true
					}
				}
			}
			if observed {
				// Tight net around the teardown window that follows.
				for i := 0; i < 5_000 && s.Step(); i++ {
					if i%50 == 0 {
						if err := s.CheckInvariants(); err != nil {
							t.Fatalf("teardown window: %v", err)
						}
					}
				}
				break
			}
		}
	}
	if !observed {
		t.Fatal("no multi-session download occurred; config no longer exercises the path")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionWithActiveUploads squeezes storage so eviction sweeps
// constantly terminate live uploads (the evictFrom snapshot path) and
// verifies invariants hold across every sweep.
func TestEvictionWithActiveUploads(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 23
	cfg.StorageMinObjects = 3
	cfg.StorageMaxObjects = 6
	cfg.EvictionInterval = 120
	cfg.Duration = 10_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for s.Step() {
		steps++
		if steps%256 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d (t=%.0f): %v", steps, s.Now(), err)
			}
		}
		if s.Now() >= cfg.Duration {
			break
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAnnounceAppendsAreInvisibleToIteration pins the range semantics
// announceNewHolding relies on since dropping its defensive copies: appends
// during iteration land beyond the captured length and are not visited,
// while the visited prefix keeps its identity.
func TestAnnounceAppendsAreInvisibleToIteration(t *testing.T) {
	base := []int{1, 2, 3}
	seen := 0
	for range base {
		seen++
		base = append(base, 99) // may reallocate; iteration is unaffected
	}
	if seen != 3 {
		t.Fatalf("range visited %d elements, want the captured 3", seen)
	}
}
