package sim

// Open-loop demand: the temporal workload layer (Config.Workload) and trace
// replay (Config.Trace). Both replace the engine's closed-loop demand model
// — issueRequests topping every peer up to MaxPending — with externally
// driven request arrivals, while reusing the entire downstream machinery
// (lookup, ring search, sessions, eviction, churn) unchanged. Determinism
// is inherited: workload draws come from per-peer streams derived via
// rng.DeriveSeed, and replay events are scheduled from the trace's
// canonical order, so equal Configs still produce byte-identical results.

import (
	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/rng"
	"barter/internal/workload"
)

// openLoop reports whether the run's demand is externally driven (workload
// or trace); the closed-loop issueRequests model is disabled then.
func (s *Sim) openLoop() bool { return s.sched != nil || s.replay }

// traceConfig derives the replay world from the trace header: the recorded
// population, object geometry, and a horizon long enough to finish
// transfers started near the recorded end. Replay forces the all-sharing
// legacy mix — the trace records demand, not strategy.
func traceConfig(cfg Config) Config {
	tr := cfg.Trace
	if n := tr.PeerCount(); n > 1 {
		cfg.NumPeers = n
	}
	if tr.Header.ObjectKbits > 0 {
		cfg.ObjectKbits = tr.Header.ObjectKbits
	}
	if tr.Header.BlockKbits > 0 {
		cfg.BlockKbits = tr.Header.BlockKbits
	}
	if cfg.BlockKbits > cfg.ObjectKbits {
		// A sim-scale block against swarm-scale objects would fail Validate.
		cfg.BlockKbits = cfg.ObjectKbits
	}
	cfg.FreeriderFrac = 0
	cfg.Mix = nil
	// Extend the horizon past the recorded one so transfers started by the
	// last recorded arrivals can complete: one object takes
	// ObjectKbits/SlotKbps seconds on a single slot.
	if minDur := tr.Header.Horizon + 20*cfg.ObjectKbits/cfg.SlotKbps; cfg.Duration < minDur {
		cfg.Duration = minDur
	}
	return cfg
}

// setupWorkload compiles the spec against this run and schedules the
// open-loop machinery: per-peer arrival chains and cohort session edges.
func (s *Sim) setupWorkload() error {
	// A sharded domain compiles the spec against the GLOBAL population and
	// addresses per-peer streams and session edges by global peer id: every
	// domain then sees exactly the slice of the one global workload that its
	// peers would have received in the single-threaded engine.
	peers := s.cfg.NumPeers
	if s.sc != nil {
		peers = s.sc.globalPeers
	}
	sched, err := s.cfg.Workload.Compile(s.cfg.Duration, peers, s.cat.NumObjects(), s.cfg.Seed)
	if err != nil {
		return err
	}
	s.sched = sched
	s.wstreams = make([]*rng.RNG, len(s.peers))
	for i, p := range s.peers {
		gid := i
		if s.sc != nil {
			gid = int(s.sc.global(core.PeerID(i)))
		}
		s.wstreams[i] = sched.PeerStream(gid)
		arrive, depart := sched.Session(gid)
		if arrive > 0 {
			s.initialOffline(p)
			id := p.id
			s.after(arrive, func(float64) { s.RejoinPeer(id) })
		}
		if depart < s.cfg.Duration {
			id := p.id
			s.after(depart, func(float64) { s.DisconnectPeer(id) })
		}
		s.scheduleArrival(p, 0)
	}
	return nil
}

// scheduleArrival arms the peer's next demand arrival strictly after `from`
// (the current virtual time at every call site, so the relative delay is
// exact). The chain runs for the whole horizon regardless of session state:
// an offline peer's arrivals are simply not acted on, which keeps each
// peer's draw sequence a pure function of its own stream.
func (s *Sim) scheduleArrival(p *peerState, from float64) {
	next := s.sched.NextArrival(from, s.wstreams[p.id])
	if next >= s.cfg.Duration {
		return
	}
	s.after(next-from, func(now float64) { s.workloadArrival(p, now) })
}

// workloadArrival is one open-loop demand arrival: sample an object from
// the popularity model and start its download if the peer is present and
// has pending capacity; otherwise the demand is lost (counted when the peer
// was present but saturated).
func (s *Sim) workloadArrival(p *peerState, now float64) {
	st := s.wstreams[p.id]
	switch {
	case !p.online:
		// Absent peers generate no demand; skip without drawing an object so
		// the draw count stays tied to acted-on arrivals.
	case len(p.pending) >= s.cfg.MaxPending:
		s.col.wlDropped++
	default:
		if obj, ok := s.sampleWorkloadObject(p, st, now); ok {
			switch cands := s.holderCands(p, obj); {
			case len(cands) > 0:
				s.startDownload(p, obj, cands)
			case s.sc != nil && s.startRemoteDownload(p, obj):
				// Served across the partition boundary.
			default:
				s.col.lookupFails++
			}
		}
	}
	s.scheduleArrival(p, now)
}

// sampleWorkloadObject draws up to a few objects from the popularity model
// until one is neither stored nor already pending at the peer.
func (s *Sim) sampleWorkloadObject(p *peerState, st *rng.RNG, now float64) (catalog.ObjectID, bool) {
	const sampleTries = 8
	for t := 0; t < sampleTries; t++ {
		obj := catalog.ObjectID(s.sched.SampleObject(now, st))
		if !p.store[obj] && p.pending[obj] == nil {
			return obj, true
		}
	}
	return 0, false
}

// setupReplay schedules every trace event. Peers with an arrive event start
// offline; holds seed stores (and the holder index for peers present at
// start) before any request fires.
func (s *Sim) setupReplay() {
	s.replay = true
	tr := s.cfg.Trace
	for _, ev := range tr.Events {
		if ev.Kind == workload.KindArrive {
			s.initialOffline(s.peers[ev.Peer])
		}
	}
	for _, ev := range tr.Events {
		p := s.peers[ev.Peer]
		switch ev.Kind {
		case workload.KindHold:
			obj := catalog.ObjectID(ev.Obj)
			if !p.store[obj] {
				p.store[obj] = true
				if p.sharing && p.online {
					s.addHolder(obj, p.id)
				}
			}
		case workload.KindRequest:
			obj := catalog.ObjectID(ev.Obj)
			s.after(ev.T, func(float64) { s.replayRequest(p, obj) })
		case workload.KindArrive:
			id := p.id
			s.after(ev.T, func(float64) { s.RejoinPeer(id) })
		case workload.KindDepart:
			id := p.id
			s.after(ev.T, func(float64) { s.DisconnectPeer(id) })
		}
	}
}

// replayRequest injects one recorded demand arrival. Recorded demand is
// external and persistent: if no holder is reachable yet (the recorded
// provider arrives later, say), the request retries at RetryInterval
// instead of being dropped, mirroring the live node's own retry loop.
func (s *Sim) replayRequest(p *peerState, obj catalog.ObjectID) {
	if !p.online || p.store[obj] || p.pending[obj] != nil {
		return
	}
	cands := s.holderCands(p, obj)
	if len(cands) == 0 {
		s.col.lookupFails++
		s.after(s.cfg.RetryInterval, func(float64) { s.replayRequest(p, obj) })
		return
	}
	s.startDownload(p, obj, cands)
}

// initialOffline marks a peer absent before the first event fires: it
// leaves the holder index (construction added its initial store) and waits
// for its arrive edge. Only valid during New, before any transfers exist.
func (s *Sim) initialOffline(p *peerState) {
	if !p.online {
		return
	}
	p.online = false
	if p.sharing {
		s.unindexStoredObjects(p)
	}
}

// holderCands fills candScratch with the online holders of obj other than p
// itself — the shared lookup step of the closed-loop, workload, and replay
// request paths. The scratch contract is the caller's: startDownload must
// consume the slice before any re-entrant use.
func (s *Sim) holderCands(p *peerState, obj catalog.ObjectID) []core.PeerID {
	cands := s.candScratch[:0]
	if hs := s.holders.Get(obj); hs != nil {
		cands = hs.AppendTo(cands)
	}
	n := 0
	for _, h := range cands {
		if h != p.id && s.peers[h].online {
			cands[n] = h
			n++
		}
	}
	cands = cands[:n]
	s.candScratch = cands
	return cands
}
