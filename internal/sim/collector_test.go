package sim

import (
	"math"
	"strings"
	"testing"

	"barter/internal/strategy"
)

// testCollector builds a collector over the legacy mix, past warm-up, and
// feeds it the given per-class download times (minutes).
func testCollector(sharingMin, nonSharingMin []float64) *collector {
	mix := strategy.LegacyMix(0.5)
	c := newCollector(0, mix)
	for _, m := range nonSharingMin {
		c.downloadDone(1, 0, m) // class 0 = non-sharing in the legacy mix
	}
	for _, m := range sharingMin {
		c.downloadDone(1, 1, m)
	}
	return c
}

func TestMeanDownloadMinPerClass(t *testing.T) {
	c := testCollector([]float64{10, 20}, []float64{40, 60, 80})
	res := c.result("2-5-way", 1000, 42, []int{3, 2})
	if got := res.MeanDownloadMin(true); got != 15 {
		t.Fatalf("sharing mean = %v, want 15", got)
	}
	if got := res.MeanDownloadMin(false); got != 60 {
		t.Fatalf("non-sharing mean = %v, want 60", got)
	}
	if got := res.MeanDownloadMinAll(); got != (10+20+40+60+80)/5.0 {
		t.Fatalf("combined mean = %v, want 42", got)
	}
	if res.CompletedSharing != 2 || res.CompletedNonSharing != 3 {
		t.Fatalf("completions = %d/%d, want 2/3", res.CompletedSharing, res.CompletedNonSharing)
	}
}

func TestMeanDownloadMinEmptyClasses(t *testing.T) {
	res := testCollector(nil, nil).result("2-5-way", 1000, 0, []int{1, 1})
	if !math.IsNaN(res.MeanDownloadMin(true)) || !math.IsNaN(res.MeanDownloadMin(false)) {
		t.Fatal("empty classes must report NaN means")
	}
	if !math.IsNaN(res.MeanDownloadMinAll()) {
		t.Fatal("empty run must report NaN combined mean")
	}

	// One-sided runs still aggregate correctly.
	oneSided := testCollector([]float64{30}, nil).result("2-5-way", 1000, 0, []int{1, 1})
	if got := oneSided.MeanDownloadMinAll(); got != 30 {
		t.Fatalf("one-sided combined mean = %v, want 30", got)
	}
}

func TestSpeedupSharingVsNonSharing(t *testing.T) {
	res := testCollector([]float64{10}, []float64{25}).result("2-5-way", 1000, 0, []int{1, 1})
	if got := res.SpeedupSharingVsNonSharing(); got != 2.5 {
		t.Fatalf("speedup = %v, want 2.5", got)
	}
	// Undefined when either class is empty...
	if s := testCollector([]float64{10}, nil).result("x", 1, 0, []int{1, 1}); !math.IsNaN(s.SpeedupSharingVsNonSharing()) {
		t.Fatal("speedup with empty non-sharing class must be NaN")
	}
	if s := testCollector(nil, []float64{10}).result("x", 1, 0, []int{1, 1}); !math.IsNaN(s.SpeedupSharingVsNonSharing()) {
		t.Fatal("speedup with empty sharing class must be NaN")
	}
	// ...and when the sharing mean is zero (division guard).
	if s := testCollector([]float64{0}, []float64{10}).result("x", 1, 0, []int{1, 1}); !math.IsNaN(s.SpeedupSharingVsNonSharing()) {
		t.Fatal("speedup with zero sharing mean must be NaN")
	}
}

func TestSummaryContents(t *testing.T) {
	c := testCollector([]float64{10, 20}, []float64{40})
	c.sessionCount[TypePairwise] = 3
	c.sessionCount[TypeNonExchange] = 1
	c.exchSessions, c.allSessions = 3, 4
	res := c.result("2-5-way", 30_000, 12345, []int{1, 1})
	sum := res.Summary()
	for _, want := range []string{
		"policy=2-5-way", "events=12345",
		"sharing 2 (mean 15.0 min)", "non-sharing 1 (mean 40.0 min)",
		"speedup 2.67x", "pairwise=3", "non-exchange=1", "exchange fraction 0.75",
	} {
		if !strings.Contains(sum, want) {
			t.Fatalf("Summary missing %q:\n%s", want, sum)
		}
	}
	// The legacy two-class layout must not grow per-class lines.
	if strings.Contains(sum, "class ") {
		t.Fatalf("legacy summary gained class lines:\n%s", sum)
	}
}

func TestSummaryRichMixAddsClassLines(t *testing.T) {
	mix := strategy.Mix{
		{Strategy: strategy.Whitewasher(), Frac: 0.5},
		{Strategy: strategy.Sharing(), Frac: 0.5},
	}
	c := newCollector(0, mix)
	c.downloadDone(1, 0, 30)
	c.whitewashes[0] = 4
	res := c.result("2-5-way", 1000, 1, []int{2, 2})
	sum := res.Summary()
	if !strings.Contains(sum, "class whitewasher: 2 peers, 1 done") || !strings.Contains(sum, "4 whitewashes") {
		t.Fatalf("rich-mix summary missing class line:\n%s", sum)
	}
}

// TestWarmupWindowExcluded: observations before the warm-up boundary must
// not reach any aggregate.
func TestWarmupWindowExcluded(t *testing.T) {
	c := newCollector(100, strategy.LegacyMix(0.5))
	c.downloadDone(50, 1, 10)     // before warm-up: dropped
	c.blockReceived(50, 1, 8000)  // dropped
	c.downloadDone(150, 1, 30)    // counted
	c.blockReceived(150, 1, 8000) // counted
	res := c.result("x", 1000, 0, []int{1, 1})
	if res.CompletedSharing != 1 || res.MeanDownloadMin(true) != 30 {
		t.Fatalf("warm-up leak: completed=%d mean=%v", res.CompletedSharing, res.MeanDownloadMin(true))
	}
	if res.VolumePerSharingPeerMB != 1 {
		t.Fatalf("volume = %v MB, want 1", res.VolumePerSharingPeerMB)
	}
}
