package sim

// Sharded simulation: one world partitioned across P event-loop domains run
// in parallel under conservative time windows.
//
// Peers are assigned to domains by id modulo Shards. Each domain is a full
// Sim over its local peers — its own eventq heap, its own rng.Stream keyed
// by (seed, domain), its own holders/wanters indexes and collector — built
// against an identically-seeded catalog, so every domain agrees on the
// object universe. Domains advance in lockstep epochs of one conservative
// window W (the minimum cross-partition latency, by default one block
// service time): within an epoch domains share nothing and run freely in
// parallel; at the epoch barrier the coordinator, single-threaded, drains
// the cross-partition mailboxes in (source-domain, sequence) order, then
// republishes each domain's holder directory. Everything a domain reads
// during an epoch is either owned by it or frozen at the last barrier, so
// results are a pure function of (config, seed, shards) — never of worker
// count or goroutine scheduling.
//
// Cross-partition traffic is four message kinds: xreq registers demand at a
// remote holder, xpair forms a cross-domain exchange pair, xblock delivers
// one block to the remote requester, and xcancel releases a remote upload.
// A remote fetch that stops making progress (its server departed, evicted
// the object, or dropped the demand) is abandoned by a requester-side stall
// timeout — no failure-notification protocol is needed. See
// docs/DETERMINISM.md for the tie-breaking rules and docs/ARCHITECTURE.md
// for the domain/coordinator diagram.

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/index"
	"barter/internal/perfstats"
	"barter/internal/rng"
)

// Engine is the common driving surface of the single-threaded (New) and
// sharded (NewSharded) engines; NewEngine picks by cfg.Shards.
type Engine interface {
	Run() (*Result, error)
	NumPeers() int
}

// NewEngine constructs the engine selected by cfg.Shards: the single-
// threaded Sim for Shards <= 1 (byte-identical to every run before sharding
// existed), the partitioned parallel engine otherwise. Configs that are
// fundamentally single-loop — trace replay (one recorded global event
// order), a stateful Ranker (shared mutable state across the whole
// population), or too few peers to populate every domain — fall back to the
// single-threaded engine instead of erroring, so a blanket -shards flag
// works across a whole experiment registry; the fallback is itself
// deterministic (such configs produce the same output at every shard
// count). Call NewSharded directly to make those conditions an error.
func NewEngine(cfg Config) (Engine, error) {
	if cfg.Shards > 1 {
		if shardable(cfg) {
			return NewSharded(cfg)
		}
		cfg.Shards = 0
	}
	return New(cfg)
}

// shardable reports whether cfg can run on the partitioned engine — the
// complement of the conditions Validate rejects for Shards > 1.
func shardable(cfg Config) bool {
	return cfg.NumPeers >= 2*cfg.Shards && cfg.Trace == nil && cfg.Ranker == nil
}

// shardDomainLabel keys every domain's engine stream:
// rng.Stream(seed, shardDomainLabel, domain).
const shardDomainLabel uint64 = 0x73686172 // "shar"

// xkind enumerates the cross-partition message kinds.
type xkind uint8

const (
	// xreq registers remote demand: requester (another domain) asks server
	// to upload object.
	xreq xkind = iota
	// xpair asks the requester's domain to start the reciprocal upload of
	// aux, forming a cross-domain exchange pair.
	xpair
	// xblock delivers one block of kbits from server to requester.
	xblock
	// xcancel tells the server's domain to drop the (requester, object)
	// demand and terminate its remote upload, if any.
	xcancel
)

// xmsg is one cross-partition event. requester is always the downloading
// peer and server the uploading peer, both as global ids, whatever direction
// the message itself travels.
type xmsg struct {
	kind      xkind
	seq       uint64 // per-source-domain emission sequence
	requester core.PeerID
	server    core.PeerID
	object    catalog.ObjectID
	aux       catalog.ObjectID // xpair: the object the requester gives back
	kbits     float64          // xblock payload
}

// xdemand is queued cross-domain demand at a serving peer.
type xdemand struct {
	requester core.PeerID // global id
	object    catalog.ObjectID
	arrival   float64
}

// shardCtx is one domain's view of the sharded run: its coordinates, its
// outboxes, and read-only snapshots of every domain's holder directory.
type shardCtx struct {
	domain      int
	shards      int
	globalPeers int
	window      float64
	stall       float64

	// out[d] is the mailbox of messages this domain emitted toward domain d
	// since the last barrier, in emission (seq) order. Only the owning
	// domain appends during an epoch; only the coordinator touches it at
	// barriers.
	out [][]xmsg
	seq uint64

	// dirs[d] is domain d's directory as of the last barrier (read-only
	// during an epoch); peerDirs is the same slice with the own slot nil, so
	// candidate merges never consult the domain's own stale snapshot.
	dirs     []*index.Directory[core.PeerID]
	peerDirs []*index.Directory[core.PeerID]
}

// global maps a local peer index of this domain to its global id.
func (sc *shardCtx) global(local core.PeerID) core.PeerID {
	return local*core.PeerID(sc.shards) + core.PeerID(sc.domain)
}

// domainOf and localOf invert the modulo partition.
func domainOf(g core.PeerID, shards int) int        { return int(g) % shards }
func localOf(g core.PeerID, shards int) core.PeerID { return g / core.PeerID(shards) }

// emit appends a message to the outbox toward dst, stamping the per-domain
// emission sequence that fixes the barrier drain order.
func (sc *shardCtx) emit(dst int, m xmsg) {
	sc.seq++
	m.seq = sc.seq
	sc.out[dst] = append(sc.out[dst], m)
}

// Sharded is the partitioned parallel engine: P domain Sims plus the
// coordinator state driving their epochs. Build with NewSharded (or
// NewEngine), drive with Run.
type Sharded struct {
	cfg         Config
	domains     []*Sim
	dirs        []*index.Directory[core.PeerID]
	window      float64
	workers     int
	classCounts []int // global class populations, mix order
	ran         bool

	// pending[src][dst] is the drain scratch one barrier swaps outboxes
	// into, recycled every epoch.
	pending [][][]xmsg

	barriers uint64
	msgs     uint64
}

// NewSharded partitions cfg.NumPeers peers across cfg.Shards domains and
// builds one Sim per domain. The global class assignment draws from the
// same stream position New uses, so PeerClasses(cfg) stays truthful for
// sharded runs too.
func NewSharded(cfg Config) (*Sharded, error) {
	if cfg.Shards < 2 {
		return nil, fmt.Errorf("sim: NewSharded requires Shards >= 2 (got %d); use New", cfg.Shards)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Shards
	window := cfg.ShardWindowSec
	if window <= 0 {
		window = cfg.BlockKbits / cfg.SlotKbps
	}
	stall := 2 * cfg.RetryInterval
	if min := 4 * window; stall < min {
		stall = min
	}
	workers := cfg.ShardWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p {
		workers = p
	}

	mix := cfg.effectiveMix()
	classOf := classAssignment(rng.New(cfg.Seed).Split(2), mix, cfg.NumPeers)
	ss := &Sharded{
		cfg:         cfg,
		domains:     make([]*Sim, p),
		dirs:        make([]*index.Directory[core.PeerID], p),
		window:      window,
		workers:     workers,
		classCounts: mix.Counts(cfg.NumPeers),
		pending:     make([][][]xmsg, p),
	}
	for d := 0; d < p; d++ {
		dcfg := cfg
		dcfg.NumPeers = (cfg.NumPeers - d + p - 1) / p // peers with id ≡ d (mod p)
		localClass := make([]int, dcfg.NumPeers)
		for l := range localClass {
			localClass[l] = classOf[l*p+d]
		}
		// Every domain builds the catalog from the same derived stream, so
		// all domains agree on the object universe; the engine stream is
		// keyed by (seed, domain) and independent of every other domain's
		// draw count.
		cat, err := catalog.New(cfg.Catalog, rng.New(cfg.Seed).Split(1))
		if err != nil {
			return nil, fmt.Errorf("sim: build catalog: %w", err)
		}
		sc := &shardCtx{
			domain:      d,
			shards:      p,
			globalPeers: cfg.NumPeers,
			window:      window,
			stall:       stall,
			out:         make([][]xmsg, p),
			dirs:        ss.dirs,
		}
		dom, err := newSim(dcfg, cat, rng.Stream(cfg.Seed, shardDomainLabel, uint64(d)), mix, localClass, sc)
		if err != nil {
			return nil, err
		}
		ss.domains[d] = dom
		ss.pending[d] = make([][]xmsg, p)
	}
	objects := ss.domains[0].cat.NumObjects()
	for d := range ss.dirs {
		ss.dirs[d] = index.NewDirectory[core.PeerID](objects)
	}
	for _, dom := range ss.domains {
		view := make([]*index.Directory[core.PeerID], p)
		copy(view, ss.dirs)
		view[dom.sc.domain] = nil
		dom.sc.peerDirs = view
	}
	return ss, nil
}

// NumPeers returns the global population size.
func (ss *Sharded) NumPeers() int { return ss.cfg.NumPeers }

// Shards returns the domain count.
func (ss *Sharded) Shards() int { return len(ss.domains) }

// Run executes the configured horizon and returns the merged result. It
// must be called at most once.
func (ss *Sharded) Run() (*Result, error) {
	if ss.ran {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	ss.ran = true
	ss.publishDirectories() // initial stores were indexed at construction
	for t := 0.0; t < ss.cfg.Duration; {
		target := t + ss.window
		if target > ss.cfg.Duration {
			target = ss.cfg.Duration
		}
		ss.runEpoch(target)
		ss.barriers++
		applied := ss.drainMailboxes()
		ss.publishDirectories()
		t = target
		// Fast-forward over empty windows: with nothing applied and nothing
		// in flight, no state changed at this barrier, so skipping to the
		// barrier just before the earliest pending event is semantics-
		// preserving — and a pure function of domain state (eventq.NextAt).
		if applied == 0 && ss.pendingMsgs() == 0 {
			next, ok := ss.earliestEvent()
			if !ok {
				break // nothing scheduled anywhere, nothing in flight
			}
			if k := math.Floor((next - t) / ss.window); k >= 1 {
				t += k * ss.window
			}
		}
	}
	// Settle every clock on the horizon (the loop may have ended early or
	// mid-skip) and finalize sessions still open there, exactly as the
	// single-threaded engine does.
	for _, dom := range ss.domains {
		dom.q.RunUntil(ss.cfg.Duration)
		for _, p := range dom.peers {
			for _, up := range p.uploads {
				if !up.closed {
					dom.col.sessionDone(dom.q.Now(), up)
					up.closed = true
				}
			}
		}
	}
	// Merge domain collectors in ascending domain order (see collector.merge
	// for why the order is part of the determinism contract).
	col := ss.domains[0].col
	events := ss.domains[0].q.Fired()
	for _, dom := range ss.domains[1:] {
		col.merge(dom.col)
		events += dom.q.Fired()
	}
	res := col.result(ss.cfg.Policy.String(), ss.cfg.Duration, events, ss.classCounts)
	perfstats.AddRun(perfstats.Snapshot{
		Runs:               1,
		Events:             res.Events,
		RingSearches:       uint64(res.RingSearches),
		SearchNodesVisited: uint64(res.SearchNodesVisited),
		SearchWantsChecked: uint64(res.SearchWantsChecked),
		RingsStarted:       uint64(res.RingAttempts - res.RingValidationFailures),
		Domains:            uint64(len(ss.domains)),
		Barriers:           ss.barriers,
		CrossMsgs:          ss.msgs,
	})
	return res, nil
}

// runEpoch advances every domain to target on the bounded worker pool.
// Domains share nothing mutable during the epoch (each owns its event
// queue, RNG, peers, collector, and outboxes; directories are frozen), so
// any interleaving computes the same states.
func (ss *Sharded) runEpoch(target float64) {
	if ss.workers <= 1 {
		for _, dom := range ss.domains {
			dom.q.RunUntil(target)
		}
		return
	}
	sem := make(chan struct{}, ss.workers)
	var wg sync.WaitGroup
	for _, dom := range ss.domains {
		wg.Add(1)
		go func(dom *Sim) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dom.q.RunUntil(target)
		}(dom)
	}
	wg.Wait()
}

// drainMailboxes applies every cross-partition message emitted during the
// finished epoch, single-threaded, in (destination, source-domain, sequence)
// order — for each destination, sources ascend and each source's messages
// apply in emission order. Outboxes are swapped out first: messages emitted
// while applying (cancels, pair grants) belong to the next barrier. It
// returns the number of messages applied.
func (ss *Sharded) drainMailboxes() int {
	for src, dom := range ss.domains {
		for dst := range dom.sc.out {
			ss.pending[src][dst], dom.sc.out[dst] = dom.sc.out[dst], ss.pending[src][dst][:0]
		}
	}
	applied := 0
	for dst, dom := range ss.domains {
		batch := false
		for src := range ss.domains {
			for i := range ss.pending[src][dst] {
				if !batch {
					// The whole batch behaves like one event at the barrier
					// instant: recycle the previous event's retirements once.
					dom.reap()
					batch = true
				}
				dom.applyRemote(&ss.pending[src][dst][i])
				applied++
			}
		}
	}
	ss.msgs += uint64(applied)
	return applied
}

// pendingMsgs counts messages already emitted toward the next barrier.
func (ss *Sharded) pendingMsgs() int {
	n := 0
	for _, dom := range ss.domains {
		for _, box := range dom.sc.out {
			n += len(box)
		}
	}
	return n
}

// earliestEvent returns the earliest pending event time across all domains.
func (ss *Sharded) earliestEvent() (float64, bool) {
	best, ok := 0.0, false
	for _, dom := range ss.domains {
		if at, has := dom.q.NextAt(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

// publishDirectories refreshes every domain's exported holder directory: per
// object, the lowest-id online sharing local holder, advertised by global
// id. The multimap's key order is unspecified, but each key writes only its
// own directory entry, so the published snapshot is a pure function of
// domain state.
func (ss *Sharded) publishDirectories() {
	for d, dom := range ss.domains {
		dir := ss.dirs[d]
		dir.Clear()
		sc := dom.sc
		dom.holders.ForEachKey(func(obj catalog.ObjectID, set *index.Set[core.PeerID]) bool {
			set.ForEach(func(id core.PeerID) bool {
				// First element = lowest local id = lowest global id of this
				// domain (global = local*P + d is monotone in local).
				dir.Set(int(obj), sc.global(id))
				return false
			})
			return true
		})
	}
}

// --- requester-side cross-domain machinery ---------------------------------

// startRemoteDownload starts a download fed exclusively from across the
// partition boundary: it consults the other domains' directories (ascending
// global peer id), registers the pending download, and emits xreq to up to
// RequestFanout exporters. It reports whether any exporter was found. No RNG
// draw happens on this path: remote candidates are taken in directory order,
// so the domain's stream stays aligned with its purely-local decisions.
func (s *Sim) startRemoteDownload(p *peerState, obj catalog.ObjectID) bool {
	cands := index.MergeCandidates(s.candScratch[:0], int(obj), s.sc.peerDirs)
	s.candScratch = cands
	if len(cands) == 0 {
		return false
	}
	now := s.q.Now()
	dl := &download{
		object:      obj,
		requestedAt: now,
		providers:   make(map[core.PeerID]bool),
	}
	p.addPending(dl)
	s.wanters.Add(obj, p.id)
	if p.strat.Adaptive {
		adl := dl
		s.after(s.cfg.adaptivePatience(), func(float64) { s.adaptiveCheck(p, adl) })
	}
	n := s.cfg.RequestFanout
	if n > len(cands) {
		n = len(cands)
	}
	for _, srv := range cands[:n] {
		dl.remoteSrcs = append(dl.remoteSrcs, srv)
		s.sc.emit(domainOf(srv, s.sc.shards), xmsg{
			kind: xreq, requester: s.sc.global(p.id), server: srv, object: obj,
		})
	}
	s.col.remoteFetches++
	s.armRemoteStall(p, dl)
	return true
}

// armRemoteStall schedules the next stall check for a remotely-fed download.
func (s *Sim) armRemoteStall(p *peerState, dl *download) {
	dl.remoteProgress = dl.receivedKbits
	adl := dl
	s.after(s.sc.stall, func(float64) { s.remoteStallCheck(p, adl) })
}

// remoteStallCheck abandons a remote fetch that made no progress for a full
// stall window: cancels are emitted to every exporter, the demand is
// withdrawn, and (in the closed loop) the peer samples fresh demand. A
// download that progressed — or picked up a local feed through an exchange
// ring — keeps its watch.
func (s *Sim) remoteStallCheck(p *peerState, dl *download) {
	if p.pending[dl.object] != dl {
		return // completed or abandoned in the meantime
	}
	if dl.receivedKbits > dl.remoteProgress || len(dl.sessions) > 0 {
		s.armRemoteStall(p, dl)
		return
	}
	s.cancelRemoteFeeds(p, dl)
	p.removePending(dl.object)
	s.wanters.Remove(dl.object, p.id)
	s.col.remoteAborts++
	s.issueRequests(p)
}

// cancelRemoteFeeds emits xcancel to every exporter this download requested
// from and clears the list. No-op for purely local downloads.
func (s *Sim) cancelRemoteFeeds(p *peerState, dl *download) {
	for _, srv := range dl.remoteSrcs {
		s.sc.emit(domainOf(srv, s.sc.shards), xmsg{
			kind: xcancel, requester: s.sc.global(p.id), server: srv, object: dl.object,
		})
	}
	dl.remoteSrcs = dl.remoteSrcs[:0]
}

// --- server-side cross-domain machinery ------------------------------------

// serveRemoteQueue grants remaining free upload slots to queued cross-domain
// demand, FIFO. Entries whose object has since been evicted are dropped (the
// far-side requester recovers via its stall timeout).
func (s *Sim) serveRemoteQueue(p *peerState) {
	for p.hasFreeUploadSlot() {
		served := false
		for len(p.remoteQ) > 0 {
			d := p.remoteQ[0]
			if !p.store[d.object] {
				p.remoteQ = p.remoteQ[1:]
				continue
			}
			if !s.startRemoteSession(p, d.requester, d.object, false, d.arrival) {
				return
			}
			p.remoteQ = p.remoteQ[1:]
			served = true
			break
		}
		if !served {
			return
		}
	}
}

// startRemoteSession starts an upload whose receiver lives in another
// domain. Pair sessions carry exchange priority (ringSize 2): they may
// reclaim a non-exchange slot by preemption, exactly like ring members.
func (s *Sim) startRemoteSession(src *peerState, rdst core.PeerID, obj catalog.ObjectID, pair bool, arrival float64) bool {
	if !src.hasFreeUploadSlot() {
		if !pair || s.cfg.DisablePreemption {
			return false
		}
		victim := src.preemptibleUpload()
		if victim == nil {
			return false
		}
		s.col.preemptions++
		s.terminateSession(victim, false)
	}
	sess := s.newSession()
	sess.sim = s
	sess.src = src.id
	sess.dst = -1
	sess.remote = true
	sess.rdst = rdst
	sess.rdom = domainOf(rdst, s.sc.shards)
	sess.rArrival = arrival
	sess.object = obj
	sess.ringSize = 1
	if pair {
		sess.ringSize = 2
	}
	sess.startAt = s.q.Now()
	src.uploads = append(src.uploads, sess)
	s.scheduleBlock(sess)
	return true
}

// exportBlock emits one delivered block toward the remote requester.
func (s *Sim) exportBlock(sess *session) {
	s.col.remoteBlocks++
	s.sc.emit(sess.rdom, xmsg{
		kind:      xblock,
		requester: sess.rdst,
		server:    s.sc.global(sess.src),
		object:    sess.object,
		kbits:     s.cfg.BlockKbits,
	})
}

// --- barrier message application -------------------------------------------

// applyRemote dispatches one drained mailbox message. It runs on the
// coordinator's thread between epochs; the domain's clock sits exactly on
// the barrier instant.
func (s *Sim) applyRemote(m *xmsg) {
	switch m.kind {
	case xreq:
		s.applyRemoteRequest(m)
	case xpair:
		s.applyRemotePair(m)
	case xblock:
		s.applyRemoteBlock(m)
	case xcancel:
		s.applyRemoteCancel(m)
	}
}

// applyRemoteRequest registers cross-domain demand at the server. If the
// requester is itself advertised as an exporter of something the server
// wants, a cross-domain exchange pair forms instead: the server starts an
// exchange-priority upload at once and asks the requester's domain for the
// reciprocal. Otherwise the demand queues behind the local IRQ. A request
// the server can no longer satisfy is dropped silently — the requester's
// stall timeout recovers.
func (s *Sim) applyRemoteRequest(m *xmsg) {
	q := s.peers[localOf(m.server, s.sc.shards)]
	if !q.online || !q.sharing || !q.store[m.object] {
		return
	}
	if s.cfg.Policy.SearchesExchanges() {
		if aux, ok := s.remotePairObject(q, m.requester); ok &&
			s.startRemoteSession(q, m.requester, m.object, true, s.q.Now()) {
			s.col.remotePairs++
			s.sc.emit(domainOf(m.requester, s.sc.shards), xmsg{
				kind: xpair, requester: m.requester, server: m.server,
				object: m.object, aux: aux,
			})
			return
		}
	}
	q.remoteQ = append(q.remoteQ, xdemand{requester: m.requester, object: m.object, arrival: s.q.Now()})
	s.tryServe(q)
}

// remotePairObject returns the first pending object of q (in deterministic
// pending order) that the requester's domain advertises the requester as
// exporting — the cross-domain analogue of finding a pairwise ring, limited
// to what the directory digest proves the requester holds.
func (s *Sim) remotePairObject(q *peerState, requester core.PeerID) (catalog.ObjectID, bool) {
	rdir := s.sc.dirs[domainOf(requester, s.sc.shards)]
	for _, o := range q.pendingOrder {
		if exp, ok := rdir.Get(int(o)); ok && exp == requester {
			return o, true
		}
	}
	return 0, false
}

// applyRemotePair starts the reciprocal upload of a cross-domain exchange
// pair. If the requester can no longer reciprocate — offline, stopped
// sharing, evicted the object, no reclaimable slot — the server's exchange
// upload is released with xcancel, the token-validation failure of the
// cross-domain case.
func (s *Sim) applyRemotePair(m *xmsg) {
	p := s.peers[localOf(m.requester, s.sc.shards)]
	if p.online && p.sharing && p.store[m.aux] &&
		s.startRemoteSession(p, m.server, m.aux, true, s.q.Now()) {
		return
	}
	s.sc.emit(domainOf(m.server, s.sc.shards), xmsg{
		kind: xcancel, requester: m.requester, server: m.server, object: m.object,
	})
}

// applyRemoteBlock credits one cross-partition block to the requester's
// pending download. Blocks for a download that no longer exists (completed
// via another source, abandoned, departed) bounce back as xcancel.
func (s *Sim) applyRemoteBlock(m *xmsg) {
	p := s.peers[localOf(m.requester, s.sc.shards)]
	dl := p.pending[m.object]
	if dl == nil {
		s.sc.emit(domainOf(m.server, s.sc.shards), xmsg{
			kind: xcancel, requester: m.requester, server: m.server, object: m.object,
		})
		return
	}
	now := s.q.Now()
	dl.receivedKbits += m.kbits
	s.col.blockReceived(now, p.class, m.kbits)
	if dl.receivedKbits >= s.cfg.ObjectKbits {
		s.completeDownload(p, dl)
	}
}

// applyRemoteCancel withdraws a requester's demand at the server: queued
// demand is dropped and the matching remote upload, if running, terminates
// (freeing its slot for local service).
func (s *Sim) applyRemoteCancel(m *xmsg) {
	q := s.peers[localOf(m.server, s.sc.shards)]
	for i, d := range q.remoteQ {
		if d.requester == m.requester && d.object == m.object {
			q.remoteQ = append(q.remoteQ[:i], q.remoteQ[i+1:]...)
			break
		}
	}
	for _, up := range q.uploads {
		if up.remote && up.rdst == m.requester && up.object == m.object {
			s.terminateSession(up, true)
			break
		}
	}
}
