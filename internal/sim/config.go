// Package sim implements the paper's simulation environment (Section IV-A):
// a file-sharing system of peers with fixed asymmetric upload/download
// capacity split into fixed-rate transfer slots, an overprovisioned core
// network, category/object popularity workloads, incoming request queues,
// multi-source partial downloads, and the exchange-priority scheduler that
// is the subject of the study.
package sim

import (
	"fmt"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/strategy"
	"barter/internal/workload"
)

// Ranker orders non-exchange service. The default (nil) is
// first-come-first-served by arrival time. The credit-mechanism baselines
// (eMule queue rank, KaZaA participation level) plug in here.
type Ranker interface {
	// Score returns the service priority of requester's request at server;
	// the waiting request with the highest score is served first. waited is
	// how long the request has been queued, in seconds.
	Score(server, requester core.PeerID, waited float64) float64
	// OnTransfer records kbits flowing from server src to requester dst so
	// the mechanism can update its books.
	OnTransfer(src, dst core.PeerID, kbits float64)
}

// WhitewashResetter is implemented by Rankers whose books can be wiped for a
// single peer. When a whitewashing peer rejoins under a fresh identity the
// engine calls OnWhitewash so any mechanism keyed by identity (credit
// histories, participation levels) forgets it — exactly the state the attack
// sheds in a real network.
type WhitewashResetter interface {
	OnWhitewash(peer core.PeerID)
}

// Config holds every parameter of one simulation run. DefaultConfig returns
// the paper's Table II values.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// NumPeers is the system size (Table II: 200).
	NumPeers int
	// DownloadKbps and UploadKbps are per-peer access capacities
	// (Table II: 800 down / 80 up).
	DownloadKbps float64
	UploadKbps   float64
	// SlotKbps is the fixed transfer-slot rate (Table II: 10); a peer has
	// UploadKbps/SlotKbps upload slots and DownloadKbps/SlotKbps download
	// slots, and every transfer runs at exactly one slot's rate.
	SlotKbps float64

	// Catalog is the workload model (categories, popularity factors).
	Catalog catalog.Config

	// ObjectKbits is the size of every object (Table II: 20 MB for all
	// objects = 160,000 kbit with decimal MB).
	ObjectKbits float64
	// BlockKbits is the fixed exchange/transfer block size; sessions
	// deliver one block per event.
	BlockKbits float64

	// StorageMinObjects/Max bound the uniform draw of per-peer storage
	// capacity in objects (Table II: uniform(5, 40)).
	StorageMinObjects int
	StorageMaxObjects int

	// IRQCapacity caps the incoming request queue (Table II: 1000).
	IRQCapacity int
	// MaxPending caps concurrently outstanding object downloads per peer
	// (Table II: 6).
	MaxPending int

	// FreeriderFrac is the fraction of peers that share nothing
	// (Table II: 50%). It is shorthand for the two-class legacy mix; when
	// Mix is set it is ignored.
	FreeriderFrac float64

	// Mix declares the population's strategy classes (see internal/strategy):
	// an ordered list of weighted peer behaviors — sharers, static
	// free-riders, adaptive free-riders, whitewashers, partial sharers. Nil
	// means strategy.LegacyMix(FreeriderFrac), which reproduces the paper's
	// two-class population byte for byte.
	Mix strategy.Mix

	// AdaptivePatience is how long (simulated seconds) an adaptive
	// free-rider lets one of its downloads starve before it starts
	// contributing, and how stale a pending download must be to keep it
	// contributing (default 600).
	AdaptivePatience float64
	// WhitewashInterval is the period (simulated seconds) between identity
	// churns of whitewashing peers (default 7200). Each churn drops the
	// peer's queue positions and pending downloads and resets any
	// WhitewashResetter ranker state for it.
	WhitewashInterval float64

	// Policy selects the exchange mechanism under test.
	Policy core.Policy

	// LookupMax is how many current holders a lookup discovers (the paper
	// locates "up to a certain fraction of peers that currently have the
	// object"; lookup details are out of scope there and here).
	LookupMax int
	// RequestFanout is to how many discovered holders a request is actually
	// transmitted ("it actually issues requests to only a subset").
	RequestFanout int

	// SearchBudget and SearchFanout bound each ring search (see
	// core.Graph); peers bound their search effort in any real deployment.
	SearchBudget int
	SearchFanout int

	// Duration is the simulated horizon in seconds; WarmupFrac is the
	// leading fraction of the run excluded from all metrics.
	Duration   float64
	WarmupFrac float64

	// EvictionInterval is how often peers prune storage back to capacity
	// (seconds); RetryInterval is the back-off before a peer retries when
	// it cannot find any obtainable object.
	EvictionInterval float64
	RetryInterval    float64

	// Workload, when set, replaces the closed-loop demand model (peers
	// topping up to MaxPending) with the spec's open-loop temporal demand:
	// request arrivals follow the spec's demand curve, objects follow its
	// popularity model, and cohort peers hold their arrive/depart sessions.
	// Arrivals at a peer already at MaxPending are dropped and counted in
	// Result.WorkloadDropped. Mutually exclusive with Trace.
	Workload *workload.Spec

	// Trace, when set, replays a recorded run (typically a swarm run recorded
	// with exchswarm -record): initial holdings, request arrivals, and
	// session events come from the trace instead of any demand model, and
	// New overrides NumPeers, object geometry, and Duration from the trace
	// header so the replayed world matches the recorded one. All replayed
	// peers share (strategy questions belong to Workload runs). Mutually
	// exclusive with Workload.
	Trace *workload.Trace

	// Ranker orders non-exchange service; nil means FIFO.
	Ranker Ranker

	// DisablePreemption turns off reclaiming non-exchange slots for newly
	// feasible exchanges (ablation; the paper's mechanism preempts).
	DisablePreemption bool

	// Shards partitions the peer population across that many event-loop
	// domains (peer id modulo Shards) run in parallel under conservative
	// epoch barriers; see NewSharded and docs/ARCHITECTURE.md. 0 or 1 runs
	// the single-threaded engine. Results are a pure function of (Config,
	// Seed, Shards); Shards > 1 requires NumPeers >= 2*Shards and is
	// incompatible with Trace replay and stateful Rankers.
	Shards int
	// ShardWindowSec overrides the epoch barrier window (the conservative
	// cross-partition latency) in simulated seconds; 0 means one block
	// service time (BlockKbits/SlotKbps). Only meaningful with Shards > 1.
	ShardWindowSec float64
	// ShardWorkers bounds the worker pool driving the domains; 0 means
	// min(Shards, GOMAXPROCS). Output never depends on it.
	ShardWorkers int
}

// DefaultConfig returns the paper's Table II parameters with engine knobs at
// their standard values.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		NumPeers:     200,
		DownloadKbps: 800,
		UploadKbps:   80,
		SlotKbps:     10,
		Catalog: catalog.Config{
			Categories:            300,
			ObjectsPerCategoryMin: 1,
			ObjectsPerCategoryMax: 300,
			CategoryFactor:        0.2,
			ObjectFactor:          0.2,
			CategoriesPerPeerMin:  1,
			CategoriesPerPeerMax:  8,
		},
		ObjectKbits:       160_000, // 20 MB
		BlockKbits:        500,
		StorageMinObjects: 5,
		StorageMaxObjects: 40,
		IRQCapacity:       1000,
		MaxPending:        6,
		FreeriderFrac:     0.5,
		AdaptivePatience:  600,
		WhitewashInterval: 7200,
		Policy:            core.Policy2N,
		LookupMax:         10,
		RequestFanout:     4,
		SearchBudget:      core.DefaultSearchBudget,
		SearchFanout:      32,
		Duration:          200_000,
		WarmupFrac:        0.25,
		EvictionInterval:  1_800,
		RetryInterval:     300,
	}
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumPeers < 2:
		return fmt.Errorf("sim: NumPeers = %d, want >= 2", c.NumPeers)
	case c.SlotKbps <= 0:
		return fmt.Errorf("sim: SlotKbps = %v, want > 0", c.SlotKbps)
	case c.UploadKbps < c.SlotKbps:
		return fmt.Errorf("sim: UploadKbps %v below one slot (%v)", c.UploadKbps, c.SlotKbps)
	case c.DownloadKbps < c.SlotKbps:
		return fmt.Errorf("sim: DownloadKbps %v below one slot (%v)", c.DownloadKbps, c.SlotKbps)
	case c.ObjectKbits <= 0 || c.BlockKbits <= 0:
		return fmt.Errorf("sim: ObjectKbits/BlockKbits must be positive")
	case c.BlockKbits > c.ObjectKbits:
		return fmt.Errorf("sim: BlockKbits %v exceeds ObjectKbits %v", c.BlockKbits, c.ObjectKbits)
	case c.StorageMinObjects <= 0 || c.StorageMaxObjects < c.StorageMinObjects:
		return fmt.Errorf("sim: storage range [%d, %d] invalid", c.StorageMinObjects, c.StorageMaxObjects)
	case c.IRQCapacity <= 0:
		return fmt.Errorf("sim: IRQCapacity = %d, want > 0", c.IRQCapacity)
	case c.MaxPending <= 0:
		return fmt.Errorf("sim: MaxPending = %d, want > 0", c.MaxPending)
	case c.FreeriderFrac < 0 || c.FreeriderFrac > 1:
		return fmt.Errorf("sim: FreeriderFrac = %v, want [0, 1]", c.FreeriderFrac)
	case c.LookupMax <= 0 || c.RequestFanout <= 0:
		return fmt.Errorf("sim: LookupMax and RequestFanout must be positive")
	case c.Duration <= 0:
		return fmt.Errorf("sim: Duration = %v, want > 0", c.Duration)
	case c.WarmupFrac < 0 || c.WarmupFrac >= 1:
		return fmt.Errorf("sim: WarmupFrac = %v, want [0, 1)", c.WarmupFrac)
	case c.EvictionInterval <= 0 || c.RetryInterval <= 0:
		return fmt.Errorf("sim: EvictionInterval and RetryInterval must be positive")
	case c.AdaptivePatience < 0 || c.WhitewashInterval < 0:
		return fmt.Errorf("sim: AdaptivePatience and WhitewashInterval must be non-negative")
	}
	if c.Mix != nil {
		if err := c.Mix.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		for _, cl := range c.Mix {
			if cl.Corrupt {
				return fmt.Errorf("sim: strategy %q: corrupt peers are only meaningful in the live swarm (block validation is not simulated)", cl.Name)
			}
		}
	}
	if c.Workload != nil && c.Trace != nil {
		return fmt.Errorf("sim: Workload and Trace are mutually exclusive")
	}
	if c.Workload != nil {
		if err := c.Workload.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.Trace != nil {
		if err := c.Trace.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.Shards < 0 || c.ShardWindowSec < 0 || c.ShardWorkers < 0 {
		return fmt.Errorf("sim: Shards, ShardWindowSec, and ShardWorkers must be non-negative")
	}
	if c.Shards > 1 {
		switch {
		case c.NumPeers < 2*c.Shards:
			return fmt.Errorf("sim: Shards = %d needs NumPeers >= %d (got %d): every domain must hold at least two peers", c.Shards, 2*c.Shards, c.NumPeers)
		case c.Trace != nil:
			return fmt.Errorf("sim: Trace replay requires Shards <= 1 (a recorded trace is a single global event order)")
		case c.Ranker != nil:
			return fmt.Errorf("sim: Ranker requires Shards <= 1 (rankers are shared mutable state across the whole population)")
		}
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	return c.Catalog.Validate()
}

// effectiveMix returns the population mix the run uses: the explicit Mix, or
// the paper's two-class legacy mix derived from FreeriderFrac.
func (c Config) effectiveMix() strategy.Mix {
	if c.Mix != nil {
		return c.Mix
	}
	return strategy.LegacyMix(c.FreeriderFrac)
}

// adaptivePatience and whitewashInterval fall back to the documented
// defaults when a caller builds a Config by hand and leaves them zero, so
// adaptive and whitewashing classes always have a working clock.
func (c Config) adaptivePatience() float64 {
	if c.AdaptivePatience > 0 {
		return c.AdaptivePatience
	}
	return 600
}

func (c Config) whitewashInterval() float64 {
	if c.WhitewashInterval > 0 {
		return c.WhitewashInterval
	}
	return 7200
}

// UploadSlots returns the per-peer number of upload slots.
func (c Config) UploadSlots() int { return int(c.UploadKbps / c.SlotKbps) }

// DownloadSlots returns the per-peer number of download slots.
func (c Config) DownloadSlots() int { return int(c.DownloadKbps / c.SlotKbps) }
