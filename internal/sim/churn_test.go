package sim

import (
	"testing"

	"barter/internal/core"
)

// The tests in this file exercise the incremental holders/wanters indexes
// and the engine's slice-snapshot discipline under churn: repeated
// disconnect/rejoin cycles injected into a loaded run, with the full
// invariant suite (including both index directions) checked after every
// injection and periodically between events.

// TestChurnCyclesKeepIndexesConsistent drives repeated disconnect/rejoin
// waves through a loaded simulation and verifies after each wave that the
// holders and wanters indexes agree exactly with per-peer state.
func TestChurnCyclesKeepIndexesConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 11
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Load the system first so churn hits peers with live transfers, queued
	// requests, and pending downloads.
	s.RunUntil(4_000)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("pre-churn: %v", err)
	}

	n := core.PeerID(int32(s.NumPeers()))
	for cycle := 0; cycle < 8; cycle++ {
		// Take down a rotating third of the population...
		for id := core.PeerID(0); id < n; id++ {
			if int(id)%3 == cycle%3 {
				s.DisconnectPeer(id)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d after disconnects: %v", cycle, err)
		}
		// ...run with the hole in the population...
		s.RunUntil(s.Now() + 500)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d mid-outage: %v", cycle, err)
		}
		// ...and bring everyone back.
		for id := core.PeerID(0); id < n; id++ {
			s.RejoinPeer(id)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d after rejoins: %v", cycle, err)
		}
		s.RunUntil(s.Now() + 500)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("post-churn: %v", err)
	}
}

// TestRepeatedDisconnectRejoinSamePeer hammers one peer with
// disconnect/rejoin flapping while the rest of the system keeps running;
// each flap must leave the indexes consistent, and double disconnects or
// rejoins must be no-ops.
func TestRepeatedDisconnectRejoinSamePeer(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 12
	if testing.Short() {
		cfg.Duration = 12_000
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(3_000)
	victim := core.PeerID(0)
	for i := 0; !s.PeerIsSharing(victim); i++ {
		victim = core.PeerID(int32(i))
	}
	for flap := 0; flap < 30; flap++ {
		s.DisconnectPeer(victim)
		s.DisconnectPeer(victim) // must be a no-op
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("flap %d offline: %v", flap, err)
		}
		s.RunUntil(s.Now() + 97)
		s.RejoinPeer(victim)
		s.RejoinPeer(victim) // must be a no-op
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("flap %d online: %v", flap, err)
		}
		s.RunUntil(s.Now() + 61)
	}
}

// TestChurnPreservesDeterminism pins the determinism contract under churn:
// the same seed with the same injection schedule yields identical results.
func TestChurnPreservesDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := testConfig()
		cfg.Seed = 13
		cfg.Duration = 15_000
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, at := range []float64{2_000, 5_000, 8_000} {
			s.RunUntil(at)
			s.DisconnectPeer(core.PeerID(int(at/1000) % s.NumPeers()))
			s.RunUntil(at + 700)
			s.DisconnectPeer(core.PeerID(int(at/500) % s.NumPeers()))
			s.RejoinPeer(core.PeerID(int(at/1000) % s.NumPeers()))
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Events != b.Events {
		t.Fatalf("event counts diverged under churn: %d vs %d", a.Events, b.Events)
	}
	if a.CompletedSharing != b.CompletedSharing || a.CompletedNonSharing != b.CompletedNonSharing {
		t.Fatalf("completion counts diverged under churn: %+v vs %+v", a, b)
	}
	if a.RingSearches != b.RingSearches || a.SearchNodesVisited != b.SearchNodesVisited {
		t.Fatalf("search effort diverged under churn: %d/%d vs %d/%d",
			a.RingSearches, a.SearchNodesVisited, b.RingSearches, b.SearchNodesVisited)
	}
}

// TestInvariantsWithChurnThroughoutRun steps a churn-heavy run event by
// event, checking the full invariant suite at a fixed cadence — the tightest
// net for mutation-during-iteration bugs in the teardown paths
// (dissolveRing, completeDownload, DisconnectPeer, evictFrom), which fire
// most densely right after an injection.
func TestInvariantsWithChurnThroughoutRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stepwise invariant sweep is slow; covered by the wave tests in -short")
	}
	cfg := testConfig()
	cfg.Seed = 14
	cfg.Duration = 9_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	nextChurn := 1_000.0
	churned := core.PeerID(0)
	for s.Step() {
		steps++
		if steps%64 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d (t=%.0f): %v", steps, s.Now(), err)
			}
		}
		if s.Now() >= nextChurn {
			s.RejoinPeer(churned)
			churned = core.PeerID(steps % s.NumPeers())
			s.DisconnectPeer(churned)
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("churn at t=%.0f: %v", s.Now(), err)
			}
			nextChurn += 750
		}
		if s.Now() >= cfg.Duration {
			break
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("final: %v", err)
	}
}
