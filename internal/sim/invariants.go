package sim

import (
	"fmt"
	"sort"
)

// CheckInvariants verifies the internal consistency of the whole simulation
// state. It exists for tests: property and integration tests interleave it
// with Step to catch bookkeeping corruption as soon as it happens.
func (s *Sim) CheckInvariants() error {
	for _, p := range s.peers {
		if err := s.checkPeer(p); err != nil {
			return fmt.Errorf("peer %d: %w", p.id, err)
		}
	}
	return s.checkHolders()
}

func (s *Sim) checkPeer(p *peerState) error {
	if len(p.uploads) > s.ulSlots {
		return fmt.Errorf("%d uploads exceed %d slots", len(p.uploads), s.ulSlots)
	}
	if len(p.downloads) > s.dlSlots {
		return fmt.Errorf("%d downloads exceed %d slots", len(p.downloads), s.dlSlots)
	}
	if len(p.pending) > s.cfg.MaxPending {
		return fmt.Errorf("%d pending downloads exceed max %d", len(p.pending), s.cfg.MaxPending)
	}
	if len(p.pending) != len(p.pendingOrder) {
		return fmt.Errorf("pending map (%d) and order (%d) diverged", len(p.pending), len(p.pendingOrder))
	}
	for _, obj := range p.pendingOrder {
		dl := p.pending[obj]
		if dl == nil {
			return fmt.Errorf("pendingOrder lists %d but map lacks it", obj)
		}
		if dl.receivedKbits >= s.cfg.ObjectKbits {
			return fmt.Errorf("download %d complete (%v kbits) but still pending", obj, dl.receivedKbits)
		}
		for _, sess := range dl.sessions {
			if sess.closed {
				return fmt.Errorf("download %d lists closed session", obj)
			}
			if sess.dst != p.id || sess.object != obj {
				return fmt.Errorf("download %d lists foreign session %d->%d obj %d",
					obj, sess.src, sess.dst, sess.object)
			}
		}
	}
	for _, sess := range p.uploads {
		if sess.closed {
			return fmt.Errorf("closed session in uploads")
		}
		if sess.src != p.id {
			return fmt.Errorf("upload session src %d != peer", sess.src)
		}
		if !p.store[sess.object] {
			return fmt.Errorf("uploading object %d not in store", sess.object)
		}
		if !p.sharing {
			return fmt.Errorf("non-sharing peer is uploading")
		}
		if sess.entry == nil || sess.entry.session != sess {
			return fmt.Errorf("upload session not linked to its IRQ entry")
		}
		if sess.ringSize > 1 && (sess.ring == nil || sess.ring.dissolved) {
			return fmt.Errorf("exchange session without live ring")
		}
	}
	for _, sess := range p.downloads {
		if sess.closed {
			return fmt.Errorf("closed session in downloads")
		}
		if sess.dst != p.id {
			return fmt.Errorf("download session dst %d != peer", sess.dst)
		}
		if p.pending[sess.object] == nil {
			return fmt.Errorf("download session for non-pending object %d", sess.object)
		}
	}
	if len(p.irqIndex) != len(p.irq) {
		return fmt.Errorf("irq (%d) and index (%d) diverged", len(p.irq), len(p.irqIndex))
	}
	for _, e := range p.irq {
		got := p.irqIndex[irqKey{requester: e.requester, object: e.object}]
		if got != e {
			return fmt.Errorf("irq entry (%d, %d) not indexed", e.requester, e.object)
		}
		if e.session != nil && e.session.closed {
			return fmt.Errorf("irq entry linked to closed session")
		}
	}
	// Implicit ring entries may exceed queue capacity by at most the number
	// of upload slots.
	if len(p.irq) > s.cfg.IRQCapacity+s.ulSlots {
		return fmt.Errorf("irq length %d exceeds capacity %d plus slots", len(p.irq), s.cfg.IRQCapacity)
	}
	return nil
}

func (s *Sim) checkHolders() error {
	for obj, hs := range s.holders {
		if !sort.SliceIsSorted(hs, func(i, j int) bool { return hs[i] < hs[j] }) {
			return fmt.Errorf("holders of %d not sorted", obj)
		}
		for _, id := range hs {
			p := s.peers[id]
			if !p.sharing {
				return fmt.Errorf("non-sharing peer %d indexed as holder of %d", id, obj)
			}
			if !p.online {
				return fmt.Errorf("offline peer %d indexed as holder of %d", id, obj)
			}
			if !p.store[obj] {
				return fmt.Errorf("peer %d indexed as holder of %d it does not store", id, obj)
			}
		}
	}
	for _, p := range s.peers {
		if !p.sharing || !p.online {
			continue
		}
		for obj := range p.store {
			hs := s.holders[obj]
			i := sort.Search(len(hs), func(i int) bool { return hs[i] >= p.id })
			if i >= len(hs) || hs[i] != p.id {
				return fmt.Errorf("sharing peer %d stores %d but is not indexed", p.id, obj)
			}
		}
	}
	return nil
}
