package sim

import (
	"fmt"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/index"
)

// CheckInvariants verifies the internal consistency of the whole simulation
// state. It exists for tests: property and integration tests interleave it
// with Step (and with churn injection) to catch bookkeeping corruption as
// soon as it happens.
func (s *Sim) CheckInvariants() error {
	for _, p := range s.peers {
		if err := s.checkPeer(p); err != nil {
			return fmt.Errorf("peer %d: %w", p.id, err)
		}
	}
	if err := s.checkHolders(); err != nil {
		return err
	}
	return s.checkWanters()
}

func (s *Sim) checkPeer(p *peerState) error {
	if p.ulSlots < 1 || p.ulSlots > s.ulSlots {
		return fmt.Errorf("upload slot cap %d outside [1, %d]", p.ulSlots, s.ulSlots)
	}
	if len(p.uploads) > p.ulSlots {
		return fmt.Errorf("%d uploads exceed %d slots", len(p.uploads), p.ulSlots)
	}
	if len(p.downloads) > s.dlSlots {
		return fmt.Errorf("%d downloads exceed %d slots", len(p.downloads), s.dlSlots)
	}
	if len(p.pending) > s.cfg.MaxPending {
		return fmt.Errorf("%d pending downloads exceed max %d", len(p.pending), s.cfg.MaxPending)
	}
	if len(p.pending) != len(p.pendingOrder) {
		return fmt.Errorf("pending map (%d) and order (%d) diverged", len(p.pending), len(p.pendingOrder))
	}
	if !p.online && (len(p.pending) != 0 || len(p.irq) != 0 || len(p.uploads) != 0 || len(p.downloads) != 0) {
		return fmt.Errorf("offline peer retains transfer state")
	}
	for _, obj := range p.pendingOrder {
		dl := p.pending[obj]
		if dl == nil {
			return fmt.Errorf("pendingOrder lists %d but map lacks it", obj)
		}
		if dl.receivedKbits >= s.cfg.ObjectKbits {
			return fmt.Errorf("download %d complete (%v kbits) but still pending", obj, dl.receivedKbits)
		}
		for _, sess := range dl.sessions {
			if sess.closed {
				return fmt.Errorf("download %d lists closed session", obj)
			}
			if sess.dst != p.id || sess.object != obj {
				return fmt.Errorf("download %d lists foreign session %d->%d obj %d",
					obj, sess.src, sess.dst, sess.object)
			}
		}
	}
	for _, sess := range p.uploads {
		if sess.closed {
			return fmt.Errorf("closed session in uploads")
		}
		if sess.src != p.id {
			return fmt.Errorf("upload session src %d != peer", sess.src)
		}
		if !p.store[sess.object] {
			return fmt.Errorf("uploading object %d not in store", sess.object)
		}
		if !p.sharing {
			return fmt.Errorf("non-sharing peer is uploading")
		}
		if sess.entry == nil || sess.entry.session != sess {
			return fmt.Errorf("upload session not linked to its IRQ entry")
		}
		if sess.ringSize > 1 && (sess.ring == nil || sess.ring.dissolved) {
			return fmt.Errorf("exchange session without live ring")
		}
	}
	for _, sess := range p.downloads {
		if sess.closed {
			return fmt.Errorf("closed session in downloads")
		}
		if sess.dst != p.id {
			return fmt.Errorf("download session dst %d != peer", sess.dst)
		}
		if p.pending[sess.object] == nil {
			return fmt.Errorf("download session for non-pending object %d", sess.object)
		}
	}
	if len(p.irqIndex) != len(p.irq) {
		return fmt.Errorf("irq (%d) and index (%d) diverged", len(p.irq), len(p.irqIndex))
	}
	for _, e := range p.irq {
		got := p.irqIndex[irqKey{requester: e.requester, object: e.object}]
		if got != e {
			return fmt.Errorf("irq entry (%d, %d) not indexed", e.requester, e.object)
		}
		if e.session != nil && e.session.closed {
			return fmt.Errorf("irq entry linked to closed session")
		}
	}
	// Implicit ring entries may exceed queue capacity by at most the number
	// of upload slots.
	if len(p.irq) > s.cfg.IRQCapacity+s.ulSlots {
		return fmt.Errorf("irq length %d exceeds capacity %d plus slots", len(p.irq), s.cfg.IRQCapacity)
	}
	return nil
}

// checkHolders verifies both directions of the holders index: every indexed
// (object, peer) entry is an online sharing peer storing the object, and
// every online sharing peer's stored object is indexed. Ascending iteration
// order is structural in the bitset index, so unlike the sorted-slice
// predecessor there is no order to re-verify.
func (s *Sim) checkHolders() error {
	var err error
	s.holders.ForEachKey(func(obj catalog.ObjectID, hs *index.Set[core.PeerID]) bool {
		hs.ForEach(func(id core.PeerID) bool {
			p := s.peers[id]
			switch {
			case !p.sharing:
				err = fmt.Errorf("non-sharing peer %d indexed as holder of %d", id, obj)
			case !p.online:
				err = fmt.Errorf("offline peer %d indexed as holder of %d", id, obj)
			case !p.store[obj]:
				err = fmt.Errorf("peer %d indexed as holder of %d it does not store", id, obj)
			}
			return err == nil
		})
		return err == nil
	})
	if err != nil {
		return err
	}
	for _, p := range s.peers {
		if !p.sharing || !p.online {
			continue
		}
		//barter:allow maprange validation sweep: visits every entry, mutates nothing; order only picks which of several violations reports first
		for obj := range p.store {
			if !s.holders.Contains(obj, p.id) {
				return fmt.Errorf("sharing peer %d stores %d but is not indexed", p.id, obj)
			}
		}
	}
	return nil
}

// checkWanters verifies both directions of the wanters index: every indexed
// (object, peer) entry corresponds to a live pending download, and every
// pending download is indexed.
func (s *Sim) checkWanters() error {
	var err error
	s.wanters.ForEachKey(func(obj catalog.ObjectID, ws *index.Set[core.PeerID]) bool {
		ws.ForEach(func(id core.PeerID) bool {
			if s.peers[id].pending[obj] == nil {
				err = fmt.Errorf("peer %d indexed as wanter of %d without a pending download", id, obj)
			}
			return err == nil
		})
		return err == nil
	})
	if err != nil {
		return err
	}
	for _, p := range s.peers {
		for _, obj := range p.pendingOrder {
			if !s.wanters.Contains(obj, p.id) {
				return fmt.Errorf("peer %d pending download of %d not in wanters index", p.id, obj)
			}
		}
	}
	return nil
}
