package sim

import (
	"fmt"
	"slices"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/eventq"
	"barter/internal/index"
	"barter/internal/perfstats"
	"barter/internal/rng"
	"barter/internal/strategy"
	"barter/internal/workload"
)

// Sim is one simulation run: a deterministic, single-threaded discrete-event
// simulation of the exchange-based file-sharing system. Build it with New,
// drive it with Run (or Step/RunUntil for fine-grained control in tests).
//
// Exchange priority is enforced the way the paper describes an
// implementation would: peers search for rings at the paper's trigger points
// (before transmitting a request, on receipt of a request, and when learning
// that a neighbor acquired a wanted object), and any newly feasible exchange
// reclaims a non-exchange upload slot by preemption.
//
// # Determinism contract
//
// Equal Configs (including Seed) produce byte-identical results. Everything
// below serves that contract: the event queue breaks timestamp ties by
// schedule order, every index iterates in ascending peer-id order (candidate
// order feeds the RNG draws), and no behavior ever depends on map iteration
// order, pointer values, or wall-clock time. Performance work must preserve
// all three properties; see the package tests that pin them.
type Sim struct {
	cfg   Config
	q     *eventq.Queue
	r     *rng.RNG
	cat   *catalog.Catalog
	peers []*peerState
	// holders indexes object -> online sharing peers storing it; wanters
	// indexes object -> peers with a pending download for it, so evictions
	// can scrub stale provider sets. Both iterate in ascending peer-id order,
	// exactly like the sorted slices they replaced.
	holders *index.Multimap[catalog.ObjectID, core.PeerID]
	wanters *index.Multimap[catalog.ObjectID, core.PeerID]
	graph   core.Graph
	col     *collector

	ulSlots, dlSlots int
	// mix is the run's population mix (peers hold pointers into it) and
	// classCounts the per-class population sizes in mix order.
	mix         strategy.Mix
	classCounts []int
	ran         bool

	// Open-loop demand state (see workload.go): sched and the per-peer
	// arrival streams drive Config.Workload runs; replay marks a
	// Config.Trace run. Both disable the closed-loop issueRequests model.
	sched    *workload.Schedule
	wstreams []*rng.RNG
	replay   bool

	// Scratch buffers, reused across events so the hot path stays
	// allocation-free at steady state. Each is used only within a single
	// engine call frame that cannot re-enter itself (documented per use).
	candScratch []core.PeerID
	objScratch  []catalog.ObjectID
	sessScratch []*session

	// Free lists for the per-transfer bookkeeping objects. Retired objects
	// park on the dead lists until reap, which runs at the start of the next
	// event: within one event, any snapshot of sessions or requests taken
	// before a termination stays readable.
	freeSess []*session
	freeReq  []*request
	deadSess []*session
	deadReq  []*request

	// sc is non-nil when this Sim is one domain of a sharded run (see
	// shard.go). Every cross-partition hook in the engine is guarded by it,
	// so a nil sc leaves the single-threaded engine's behavior — including
	// its RNG draw sequence — untouched.
	sc *shardCtx
}

// New constructs a run, places initial content, and schedules the initial
// request burst. The same Config (including Seed) always produces the same
// run. New builds the single-threaded engine only; configs with Shards > 1
// must go through NewEngine (or NewSharded directly).
func New(cfg Config) (*Sim, error) {
	if cfg.Shards > 1 {
		return nil, fmt.Errorf("sim: New builds the single-threaded engine; use NewEngine for Shards = %d", cfg.Shards)
	}
	if cfg.Trace != nil {
		if cfg.Workload != nil {
			return nil, fmt.Errorf("sim: Workload and Trace are mutually exclusive")
		}
		if err := cfg.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		// The replayed world's shape comes from the trace header, so the
		// overrides must land before Validate sees the config.
		cfg = traceConfig(cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	catRNG := root.Split(1)
	engRNG := root.Split(2)

	cat, err := catalog.New(cfg.Catalog, catRNG)
	if err != nil {
		return nil, fmt.Errorf("sim: build catalog: %w", err)
	}
	// Population: class counts apportioned over the mix, assigned by random
	// permutation so peer ids carry no class information. This draw must stay
	// the first consumer of the engine stream so PeerClasses stays aligned
	// with New; for a legacy mix it consumes exactly the permutation the
	// historical free-rider draw did.
	mix := cfg.effectiveMix()
	classOf := classAssignment(engRNG, mix, cfg.NumPeers)
	return newSim(cfg, cat, engRNG, mix, classOf, nil)
}

// newSim is the shared constructor body of the single-threaded engine and of
// each domain of a sharded run. cfg is already validated (and, for a domain,
// already cut down to the domain's local population); classOf maps each
// local peer index to its class in mix; engRNG is the engine stream (for a
// domain, a rng.Stream keyed by the domain index). The construction draw
// order — interest, initial store, storage capacity per peer, then the burst
// stagger and whitewash jitter — is exactly the order New has always used.
func newSim(cfg Config, cat *catalog.Catalog, engRNG *rng.RNG, mix strategy.Mix, classOf []int, sc *shardCtx) (*Sim, error) {
	s := &Sim{
		cfg:     cfg,
		q:       eventq.New(),
		r:       engRNG,
		cat:     cat,
		holders: index.NewMultimap[catalog.ObjectID, core.PeerID](),
		wanters: index.NewMultimap[catalog.ObjectID, core.PeerID](),
		col:     newCollector(cfg.Duration*cfg.WarmupFrac, mix),
		ulSlots: cfg.UploadSlots(),
		dlSlots: cfg.DownloadSlots(),
		mix:     mix,
		sc:      sc,
	}
	s.graph = core.Graph{
		Adj:     s.adjacency,
		Budget:  cfg.SearchBudget,
		Fanout:  cfg.SearchFanout,
		Scratch: core.NewSearchScratch(cfg.NumPeers),
	}

	// classCounts tallies classOf rather than re-deriving mix.Counts: for
	// the single-threaded engine the two are identical (Assign apportions by
	// Counts), and for a sharded domain only the tally reflects how the
	// global assignment happened to land on this domain's peers.
	s.classCounts = make([]int, len(mix))
	for _, c := range classOf {
		s.classCounts[c]++
	}
	s.peers = make([]*peerState, cfg.NumPeers)
	for i := range s.peers {
		st := &s.mix[classOf[i]].Strategy
		p := &peerState{
			id:       core.PeerID(i),
			class:    classOf[i],
			strat:    st,
			sharing:  st.Share,
			online:   true,
			ulSlots:  st.SlotCap(s.ulSlots),
			interest: cat.NewInterest(engRNG),
			store:    make(map[catalog.ObjectID]bool),
			pending:  make(map[catalog.ObjectID]*download),
			irqIndex: make(map[irqKey]*request),
			storeCap: engRNG.IntRange(cfg.StorageMinObjects, cfg.StorageMaxObjects),
		}
		// Replay seeds stores exclusively from the trace's hold events.
		if cfg.Trace == nil {
			for _, o := range cat.InitialStore(p.interest, p.storeCap, engRNG) {
				p.store[o] = true
				if p.sharing {
					s.addHolder(o, p.id)
				}
			}
		}
		s.peers[i] = p
	}

	// Demand model: recorded trace, open-loop temporal workload, or the
	// legacy closed-loop initial burst staggered over the first minute.
	switch {
	case cfg.Trace != nil:
		s.setupReplay()
	case cfg.Workload != nil:
		if err := s.setupWorkload(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	default:
		for i := range s.peers {
			id := core.PeerID(i)
			s.after(engRNG.Float64()*60, func(float64) { s.issueRequests(s.peers[id]) })
		}
	}
	s.after(cfg.EvictionInterval, s.evictionSweep)
	// Whitewash clocks, jittered so a cohort does not churn in lockstep.
	// Scheduling these after the burst loop keeps the RNG stream prefix of
	// legacy mixes (which have no whitewashers) untouched.
	for _, p := range s.peers {
		if p.strat.Whitewash {
			s.after(cfg.whitewashInterval()*(0.5+engRNG.Float64()), func(float64) { s.whitewash(p) })
		}
	}
	return s, nil
}

// classAssignment draws the per-peer class indexes for the mix. It must be
// the first consumer of the engine stream so PeerClasses stays aligned with
// New.
func classAssignment(r *rng.RNG, mix strategy.Mix, n int) []int {
	return mix.Assign(r.Perm(n))
}

// PeerClasses returns, per peer id, whether New(cfg) will make that peer a
// contributor from the start, without constructing the simulation. External
// mechanisms that key behavior on class (e.g. the KaZaA cheat model, where
// exactly the free-riders misreport) use this to stay aligned with the run.
func PeerClasses(cfg Config) map[core.PeerID]bool {
	mix := cfg.effectiveMix()
	classOf := classAssignment(rng.New(cfg.Seed).Split(2), mix, cfg.NumPeers)
	classes := make(map[core.PeerID]bool, cfg.NumPeers)
	for i, c := range classOf {
		classes[core.PeerID(i)] = mix[c].Share
	}
	return classes
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.q.Now() }

// Step fires one event; it reports whether anything remained to fire.
func (s *Sim) Step() bool { return s.q.Step() }

// RunUntil advances virtual time to horizon.
func (s *Sim) RunUntil(horizon float64) { s.q.RunUntil(horizon) }

// Run executes the configured horizon and returns the collected result. It
// must be called at most once.
func (s *Sim) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	s.ran = true
	s.q.RunUntil(s.cfg.Duration)
	// Finalize sessions still open at the horizon so long-lived transfers
	// are represented in the session statistics.
	for _, p := range s.peers {
		for _, up := range p.uploads {
			if !up.closed {
				s.col.sessionDone(s.q.Now(), up)
				up.closed = true
			}
		}
	}
	res := s.col.result(s.cfg.Policy.String(), s.q.Now(), s.q.Fired(), s.classCounts)
	perfstats.AddRun(perfstats.Snapshot{
		Runs:               1,
		Events:             res.Events,
		RingSearches:       uint64(res.RingSearches),
		SearchNodesVisited: uint64(res.SearchNodesVisited),
		SearchWantsChecked: uint64(res.SearchWantsChecked),
		RingsStarted:       uint64(res.RingAttempts - res.RingValidationFailures),
	})
	return res, nil
}

// reap recycles the sessions and requests retired during the previous event.
// It runs at the start of every event (and nowhere else), so within one
// event any snapshot of live objects taken before a termination remains
// readable, and a recycled object can never be observed through a stale
// pointer held by in-flight iteration.
func (s *Sim) reap() {
	for i, sess := range s.deadSess {
		*sess = session{}
		s.freeSess = append(s.freeSess, sess)
		s.deadSess[i] = nil
	}
	s.deadSess = s.deadSess[:0]
	for i, req := range s.deadReq {
		*req = request{}
		s.freeReq = append(s.freeReq, req)
		s.deadReq[i] = nil
	}
	s.deadReq = s.deadReq[:0]
}

func (s *Sim) newSession() *session {
	if n := len(s.freeSess); n > 0 {
		sess := s.freeSess[n-1]
		s.freeSess[n-1] = nil
		s.freeSess = s.freeSess[:n-1]
		return sess
	}
	return &session{}
}

func (s *Sim) newRequest(requester core.PeerID, obj catalog.ObjectID, arrival float64) *request {
	var req *request
	if n := len(s.freeReq); n > 0 {
		req = s.freeReq[n-1]
		s.freeReq[n-1] = nil
		s.freeReq = s.freeReq[:n-1]
	} else {
		req = &request{}
	}
	req.requester, req.object, req.arrival, req.session = requester, obj, arrival, nil
	return req
}

// retireRequest parks a dequeued request for recycling at the next event.
func (s *Sim) retireRequest(req *request) { s.deadReq = append(s.deadReq, req) }

// after schedules fn; scheduling with non-negative delay cannot fail, so a
// failure is a programming error worth crashing on. Every event entry point
// reaps the previous event's retirements first.
func (s *Sim) after(delay float64, fn func(now float64)) {
	if _, err := s.q.After(delay, eventq.Func(func(now float64) {
		s.reap()
		fn(now)
	})); err != nil {
		panic(fmt.Sprintf("sim: internal scheduling error: %v", err))
	}
}

// adjacency returns the live, unserved in-edges of a peer for ring searches.
func (s *Sim) adjacency(pid core.PeerID) []core.Edge {
	p := s.peers[pid]
	es := p.adjScratch[:0]
	for _, e := range p.irq {
		if e.session != nil {
			continue
		}
		if !p.store[e.object] {
			continue // evicted since registration; cannot anchor a ring
		}
		q := s.peers[e.requester]
		if !q.online || q.pending[e.object] == nil {
			continue
		}
		es = append(es, core.Edge{Peer: e.requester, Object: e.object})
	}
	p.adjScratch = es
	return es
}

// --- holder index -----------------------------------------------------

func (s *Sim) addHolder(o catalog.ObjectID, id core.PeerID)    { s.holders.Add(o, id) }
func (s *Sim) removeHolder(o catalog.ObjectID, id core.PeerID) { s.holders.Remove(o, id) }

// --- request issue ------------------------------------------------------

// issueRequests tops the peer up to MaxPending outstanding downloads. It is
// the closed-loop demand model only: under a workload or trace (openLoop),
// demand arrives from workload.go and this is a no-op — the call sites in
// completeDownload and RejoinPeer must not synthesize extra requests there.
func (s *Sim) issueRequests(p *peerState) {
	if !p.online || s.openLoop() {
		return
	}
	for len(p.pending) < s.cfg.MaxPending {
		if !s.attemptRequest(p) {
			s.scheduleRetry(p)
			return
		}
	}
}

// attemptRequest samples one obtainable object (a cache miss with at least
// one online sharing holder) and starts its download. It reports success.
func (s *Sim) attemptRequest(p *peerState) bool {
	const sampleTries = 8
	excluded := func(o catalog.ObjectID) bool {
		return p.store[o] || p.pending[o] != nil
	}
	for t := 0; t < sampleTries; t++ {
		obj, ok := s.cat.SampleMiss(p.interest, s.r, excluded, 64)
		if !ok {
			return false
		}
		// candScratch is safe here: startDownload consumes it before this
		// frame can recurse into another attemptRequest (downloads only
		// complete from block events, never synchronously).
		cands := s.holderCands(p, obj)
		if len(cands) == 0 {
			// No local holder; in a sharded run, fall back to the
			// cross-domain directories before declaring a lookup miss.
			if s.sc != nil && s.startRemoteDownload(p, obj) {
				return true
			}
			s.col.lookupFails++
			continue
		}
		s.startDownload(p, obj, cands)
		return true
	}
	return false
}

// scheduleRetry arms a single back-off retry for a peer that currently
// cannot find anything obtainable.
func (s *Sim) scheduleRetry(p *peerState) {
	if p.retryEv.Valid() {
		s.q.Cancel(p.retryEv)
	}
	h, err := s.q.After(s.cfg.RetryInterval, eventq.Func(func(float64) {
		s.reap()
		p.retryEv = eventq.Handle{}
		s.issueRequests(p)
	}))
	if err != nil {
		panic(fmt.Sprintf("sim: internal scheduling error: %v", err))
	}
	p.retryEv = h
}

// startDownload creates the download, performs the lookup-bounded provider
// discovery, runs the paper's before-transmission ring search, and registers
// requests with a subset of providers.
func (s *Sim) startDownload(p *peerState, obj catalog.ObjectID, cands []core.PeerID) {
	now := s.q.Now()
	discovered := s.sampleSubset(cands, s.cfg.LookupMax)
	dl := &download{
		object:      obj,
		requestedAt: now,
		providers:   make(map[core.PeerID]bool, len(discovered)),
	}
	for _, h := range discovered {
		dl.providers[h] = true
	}
	// Pairwise opportunities with peers already queued here: a requester in
	// p's IRQ that holds obj qualifies even if the lookup missed it.
	for _, e := range p.irq {
		q := s.peers[e.requester]
		if q.sharing && q.online && q.store[obj] {
			dl.providers[e.requester] = true
		}
	}
	p.addPending(dl)
	s.wanters.Add(obj, p.id)
	if p.strat.Adaptive {
		// Adaptive free-riders contribute only while refused: arm a starvation
		// check that flips the peer to contributing if this download is still
		// pending after the patience window.
		adl := dl
		s.after(s.cfg.adaptivePatience(), func(float64) { s.adaptiveCheck(p, adl) })
	}

	// "Prior to transmission of a request for object o, the peer inspects
	// the entire Request Tree to see if any peer provides o."
	s.tryExchange(p, p.wantFor(dl), nil)

	n := s.cfg.RequestFanout
	if n > len(discovered) {
		n = len(discovered)
	}
	for _, h := range discovered[:n] {
		s.sendRequest(p, s.peers[h], dl)
	}
}

// sampleSubset selects up to k elements drawn without replacement, in
// deterministic order derived from the engine RNG. The selection permutes
// list in place (callers pass scratch) and draws the same RNG sequence as
// the historical copy-then-shuffle implementation.
func (s *Sim) sampleSubset(list []core.PeerID, k int) []core.PeerID {
	if len(list) <= k {
		return list
	}
	for i := 0; i < k; i++ {
		j := i + s.r.Intn(len(list)-i)
		list[i], list[j] = list[j], list[i]
	}
	return list[:k]
}

// sendRequest registers p's request at server and runs the receipt-time
// incremental ring search over the new edge.
func (s *Sim) sendRequest(p, server *peerState, dl *download) {
	if !server.online {
		return
	}
	if server.lookupIRQ(p.id, dl.object) != nil {
		return // one registered request per (peer, object)
	}
	req := s.newRequest(p.id, dl.object, s.q.Now())
	if server.addIRQ(req, s.cfg.IRQCapacity) == nil {
		s.freeReq = append(s.freeReq, req) // never enqueued; recycle at once
		s.col.irqRejected++
		return
	}
	dl.requestedFrom = append(dl.requestedFrom, server.id)
	// The new requester may directly hold objects the server wants.
	if p.sharing {
		for _, obj := range server.pendingOrder {
			if p.store[obj] {
				server.pending[obj].providers[p.id] = true
			}
		}
	}
	// "On receipt of each request, the peer need only inspect the incoming
	// Request Tree associated with it."
	s.tryExchange(server, server.wants(), &core.Edge{Peer: p.id, Object: dl.object})
	s.tryServe(server)
}

// --- exchange machinery ---------------------------------------------------

// tryExchange searches for a ring rooted at root and starts it if the
// validation token succeeds. via restricts the search to one new edge (the
// receipt-time incremental search). It reports whether a ring started.
func (s *Sim) tryExchange(root *peerState, wants []core.Want, via *core.Edge) bool {
	if !s.cfg.Policy.SearchesExchanges() || !root.sharing || !root.online {
		return false
	}
	if len(wants) == 0 || len(root.irq) == 0 {
		return false
	}
	var (
		ring *core.Ring
		st   core.SearchStats
		ok   bool
	)
	if via != nil {
		ring, _, st, ok = s.graph.FindRingVia(root.id, *via, wants, s.cfg.Policy)
	} else {
		ring, _, st, ok = s.graph.FindRing(root.id, wants, s.cfg.Policy)
	}
	s.col.ringSearches++
	s.col.searchNodes += st.NodesVisited
	s.col.searchWants += st.WantsChecked
	if !ok {
		return false
	}
	s.col.ringAttempts++
	if reason := s.validateRing(ring); reason != "" {
		s.col.ringFailures++
		s.col.failReasons[reason]++
		return false
	}
	s.startRing(ring)
	return true
}

// findSession returns the open session src->dst carrying object, if any.
func (s *Sim) findSession(src, dst *peerState, object catalog.ObjectID) *session {
	for _, up := range src.uploads {
		if up.dst == dst.id && up.object == object {
			return up
		}
	}
	return nil
}

// validateRing is the simulation analogue of circulating the ring-initiation
// token: every member must still be online, sharing, hold the object it
// gives, find its successor still wanting that object, and have upload and
// download capacity (or a preemptible non-exchange upload). It returns ""
// when the ring is viable, otherwise the name of the first failed check.
func (s *Sim) validateRing(ring *core.Ring) string {
	n := ring.Size()
	for i, m := range ring.Members {
		pm := s.peers[m.Peer]
		np := s.peers[ring.Members[(i+1)%n].Peer]
		switch {
		case !pm.online:
			return "member-offline"
		case !pm.sharing:
			return "member-not-sharing"
		case !pm.store[m.Gives]:
			return "object-gone"
		case np.pending[m.Gives] == nil:
			return "successor-lost-interest"
		}
		if !pm.hasFreeUploadSlot() {
			if s.cfg.DisablePreemption || pm.preemptibleUpload() == nil {
				return "no-upload-capacity"
			}
		}
		dup := s.findSession(pm, np, m.Gives)
		if dup != nil && dup.ringSize > 1 {
			return "link-already-in-ring"
		}
		if !np.hasFreeDownloadSlot(s.dlSlots) && dup == nil {
			return "no-download-capacity"
		}
	}
	return ""
}

// startRing replaces any duplicate non-exchange transfers on the ring's
// links, reclaims upload slots by preemption where needed, and starts the
// ring's sessions. Validation has already succeeded.
func (s *Sim) startRing(ring *core.Ring) {
	now := s.q.Now()
	n := ring.Size()
	rs := &ringState{}

	// Replace duplicate non-exchange transfers on ring links ("normal
	// transfer sessions tend to be canceled and replaced by exchanges").
	for i, m := range ring.Members {
		np := s.peers[ring.Members[(i+1)%n].Peer]
		if dup := s.findSession(s.peers[m.Peer], np, m.Gives); dup != nil && dup.ringSize == 1 {
			s.terminateSession(dup, false)
		}
	}
	// Reclaim upload slots.
	for _, m := range ring.Members {
		pm := s.peers[m.Peer]
		if !pm.hasFreeUploadSlot() {
			victim := pm.preemptibleUpload()
			if victim == nil {
				// A replacement above raced away the preemptible session;
				// abandon the ring attempt (token failure).
				s.abortRing(rs)
				s.col.ringFailures++
				return
			}
			s.col.preemptions++
			s.terminateSession(victim, false)
		}
	}
	// Create the ring's sessions.
	for i, m := range ring.Members {
		src := s.peers[m.Peer]
		dst := s.peers[ring.Members[(i+1)%n].Peer]
		entry := src.lookupIRQ(dst.id, m.Gives)
		if entry == nil {
			// The ring closes through a provider the root never transmitted
			// a request to; register the implicit request now (it is served
			// immediately, bypassing queue capacity).
			entry = s.newRequest(dst.id, m.Gives, now)
			src.irq = append(src.irq, entry)
			src.irqIndex[irqKey{requester: dst.id, object: m.Gives}] = entry
			dst.pending[m.Gives].requestedFrom = append(dst.pending[m.Gives].requestedFrom, src.id)
		}
		sess := s.startSession(src, dst, m.Gives, n, rs, entry)
		rs.sessions = append(rs.sessions, sess)
	}
	s.col.ringStarted(now, n)
	// Serve whoever got displaced capacity back.
	for _, m := range ring.Members {
		s.tryServe(s.peers[m.Peer])
	}
}

// abortRing terminates any sessions already created for a ring that failed
// mid-construction.
func (s *Sim) abortRing(rs *ringState) {
	rs.dissolved = true
	for _, sess := range rs.sessions {
		s.terminateSession(sess, false)
	}
}

// --- sessions ------------------------------------------------------------

func (s *Sim) startSession(src, dst *peerState, obj catalog.ObjectID, ringSize int, rs *ringState, entry *request) *session {
	sess := s.newSession()
	sess.sim = s
	sess.src = src.id
	sess.dst = dst.id
	sess.object = obj
	sess.ringSize = ringSize
	sess.ring = rs
	sess.entry = entry
	sess.dl = dst.pending[obj]
	sess.startAt = s.q.Now()
	entry.session = sess
	sess.dl.sessions = append(sess.dl.sessions, sess)
	src.uploads = append(src.uploads, sess)
	dst.downloads = append(dst.downloads, sess)
	s.scheduleBlock(sess)
	return sess
}

// scheduleBlock arms the session's next block-arrival event. The session is
// its own eventq.Event, so the per-block hot path allocates nothing.
func (s *Sim) scheduleBlock(sess *session) {
	h, err := s.q.After(s.cfg.BlockKbits/s.cfg.SlotKbps, sess)
	if err != nil {
		panic(fmt.Sprintf("sim: internal scheduling error: %v", err))
	}
	sess.blockEv = h
}

func (s *Sim) onBlock(sess *session) {
	if sess.closed {
		return
	}
	now := s.q.Now()
	sess.sent += s.cfg.BlockKbits
	if sess.remote {
		// The receiving peer lives in another domain: export the block as a
		// mailbox message (applied at the next barrier) and keep pumping
		// until the whole object has been shipped.
		s.exportBlock(sess)
		if sess.sent >= s.cfg.ObjectKbits {
			s.terminateSession(sess, true)
			return
		}
		s.scheduleBlock(sess)
		return
	}
	dst := s.peers[sess.dst]
	dl := sess.dl
	dl.receivedKbits += s.cfg.BlockKbits
	s.col.blockReceived(now, dst.class, s.cfg.BlockKbits)
	if s.cfg.Ranker != nil {
		s.cfg.Ranker.OnTransfer(sess.src, sess.dst, s.cfg.BlockKbits)
	}
	if dl.receivedKbits >= s.cfg.ObjectKbits {
		s.completeDownload(dst, dl)
		return
	}
	s.scheduleBlock(sess)
}

// terminateSession closes one transfer; if it belongs to a ring the whole
// ring dissolves (a ring lives only while every member keeps transferring).
// reschedule triggers non-exchange service on the freed slot; it is false
// while a ring is being assembled or torn down en bloc.
func (s *Sim) terminateSession(sess *session, reschedule bool) {
	if sess.closed {
		return
	}
	sess.closed = true
	s.q.Cancel(sess.blockEv)
	src := s.peers[sess.src]
	src.uploads = removeSession(src.uploads, sess)
	if !sess.remote {
		dst := s.peers[sess.dst]
		dst.downloads = removeSession(dst.downloads, sess)
		sess.dl.sessions = removeSession(sess.dl.sessions, sess)
		if sess.entry != nil && sess.entry.session == sess {
			sess.entry.session = nil
		}
	}
	s.col.sessionDone(s.q.Now(), sess)
	s.deadSess = append(s.deadSess, sess)
	if sess.ring != nil && !sess.ring.dissolved {
		s.dissolveRing(sess.ring, reschedule)
	}
	if reschedule {
		s.tryServe(src)
	}
}

func (s *Sim) dissolveRing(rs *ringState, reschedule bool) {
	if rs.dissolved {
		return
	}
	rs.dissolved = true
	// Iterating rs.sessions directly is safe: terminateSession unlinks a
	// session from its peers and download but never mutates the ring's own
	// slice, and retired sessions stay readable until the next event's reap.
	for _, sess := range rs.sessions {
		s.terminateSession(sess, false)
	}
	if reschedule {
		for _, sess := range rs.sessions {
			s.tryServe(s.peers[sess.src])
		}
	}
}

// --- download completion ---------------------------------------------------

func (s *Sim) completeDownload(p *peerState, dl *download) {
	now := s.q.Now()
	s.col.downloadDone(now, p.class, (now-dl.requestedAt)/60)

	// Ordering matters: clear the pending state and register the new
	// holding first, so any scheduling triggered by the teardown below sees
	// a consistent world in which this download is finished.
	p.removePending(dl.object)
	s.wanters.Remove(dl.object, p.id)
	p.store[dl.object] = true
	if p.sharing {
		s.addHolder(dl.object, p.id)
	}
	for _, srv := range dl.requestedFrom {
		if req := s.peers[srv].dropIRQ(p.id, dl.object); req != nil {
			s.retireRequest(req)
		}
	}
	if s.sc != nil {
		s.cancelRemoteFeeds(p, dl)
	}
	// Snapshot the feeding sessions before termination mutates dl.sessions
	// underneath us. sessScratch is free here: its other users (evictFrom,
	// DisconnectPeer) are never on the stack when a download completes.
	feeds := append(s.sessScratch[:0], dl.sessions...)
	s.sessScratch = feeds
	for _, sess := range feeds {
		s.terminateSession(sess, true)
	}
	if p.sharing {
		s.announceNewHolding(p, dl.object)
	}
	s.issueRequests(p)
	// An adaptive peer that is no longer starved stops contributing. The
	// check runs after issueRequests: freshly issued downloads have
	// requestedAt == now and cannot count as starved.
	if p.strat.Adaptive && p.sharing && !s.anyStarvedPending(p, now) {
		s.stopContributing(p)
	}
}

// announceNewHolding lets servers that p still has live requests with learn
// that p now holds obj, enabling fresh pairwise exchanges ("each peer
// regularly examines its incoming request queue" in the paper; here the
// examination is event-driven).
//
// Iterating pendingOrder and requestedFrom directly is safe: the exchange
// attempts below can append to requestedFrom (ring-implicit requests) but
// nothing on their call path removes a pending download or an entry of
// requestedFrom, and range evaluates each slice once — appends land beyond
// the captured length, exactly as with the defensive copies this replaced.
func (s *Sim) announceNewHolding(p *peerState, obj catalog.ObjectID) {
	for _, po := range p.pendingOrder {
		dl := p.pending[po]
		if dl == nil {
			continue
		}
		for _, srvID := range dl.requestedFrom {
			srv := s.peers[srvID]
			if !srv.online {
				continue
			}
			srvDl := srv.pending[obj]
			if srvDl == nil {
				continue
			}
			srvDl.providers[p.id] = true
			s.tryExchange(srv, srv.wantFor(srvDl), &core.Edge{Peer: p.id, Object: po})
		}
	}
}

// --- non-exchange service ---------------------------------------------------

// tryServe grants free upload slots to waiting requests, enforcing the
// paper's service rule: a non-exchange transfer starts only when no feasible
// exchange exists ("no other request in the IRQ is both an exchange transfer
// and satisfies the capacity condition"). Non-exchange order is by the
// configured ranker, or longest-waiting-first by default.
func (s *Sim) tryServe(p *peerState) {
	if !p.online || !p.sharing {
		return
	}
	// Exchanges claim free capacity first.
	for p.hasFreeUploadSlot() {
		if !s.tryExchange(p, p.wants(), nil) {
			break
		}
	}
	for p.hasFreeUploadSlot() {
		e := s.pickWaiting(p)
		if e == nil {
			break
		}
		s.startSession(p, s.peers[e.requester], e.object, 1, nil, e)
	}
	// Cross-domain demand is served strictly after local demand: the local
	// IRQ has full visibility (rankers, exchanges), the remote queue only
	// FIFO fairness.
	if s.sc != nil {
		s.serveRemoteQueue(p)
	}
}

func (s *Sim) pickWaiting(p *peerState) *request {
	now := s.q.Now()
	var best *request
	var bestScore float64
	for _, e := range p.irq {
		if e.session != nil {
			continue
		}
		dst := s.peers[e.requester]
		if !dst.online || dst.pending[e.object] == nil {
			continue
		}
		if !p.store[e.object] {
			continue // evicted since registration
		}
		if !dst.hasFreeDownloadSlot(s.dlSlots) {
			continue
		}
		var score float64
		if s.cfg.Ranker != nil {
			score = s.cfg.Ranker.Score(p.id, e.requester, now-e.arrival)
		} else {
			score = now - e.arrival
		}
		if best == nil || score > bestScore {
			best, bestScore = e, score
		}
	}
	return best
}

// --- storage management -----------------------------------------------------

// evictionSweep implements the paper's periodic storage pruning: peers over
// capacity remove random objects, postponing any object used in an ongoing
// exchange; deleting an object terminates its non-exchange uploads.
func (s *Sim) evictionSweep(float64) {
	for _, p := range s.peers {
		if !p.online || len(p.store) <= p.storeCap {
			continue
		}
		s.evictFrom(p, len(p.store)-p.storeCap)
	}
	s.after(s.cfg.EvictionInterval, s.evictionSweep)
}

func (s *Sim) evictFrom(p *peerState, excess int) {
	// Candidates are every stored object not currently given away in an
	// exchange; the uploads slice is bounded by the slot count, so scanning
	// it per object beats building a lookup set.
	cands := s.objScratch[:0]
	for o := range p.store {
		if !p.uploadsInExchange(o) {
			cands = append(cands, o)
		}
	}
	s.objScratch = cands
	// Map iteration order is nondeterministic; sorting before the shuffle
	// restores the deterministic candidate order the RNG draw depends on.
	slices.Sort(cands)
	s.r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if excess > len(cands) {
		excess = len(cands)
	}
	for _, o := range cands[:excess] {
		// Re-check exchange use at eviction time, not only at candidate
		// selection: terminating an upload below reschedules service, which
		// can start a new exchange ring that gives away an object later in
		// this candidate list. Evicting it anyway would leave an exchange
		// session uploading an object the peer no longer stores (a
		// mutation-during-iteration bug inherited from the seed engine; see
		// TestEvictionWithActiveUploads). The paper postpones "any object
		// used in an ongoing exchange", so postpone it here too.
		if p.uploadsInExchange(o) {
			continue
		}
		delete(p.store, o)
		if p.sharing {
			s.removeHolder(o, p.id)
			// Scrub stale provider knowledge so ring searches stop closing
			// through a holder that no longer exists.
			if ws := s.wanters.Get(o); ws != nil {
				ws.ForEach(func(w core.PeerID) bool {
					if dl := s.peers[w].pending[o]; dl != nil {
						delete(dl.providers, p.id)
					}
					return true
				})
			}
		}
		// Snapshot uploads: terminations mutate p.uploads underneath us.
		ups := append(s.sessScratch[:0], p.uploads...)
		s.sessScratch = ups
		for _, up := range ups {
			if up.object == o && up.ringSize == 1 {
				s.terminateSession(up, true)
			}
		}
	}
}

// --- churn / failure injection ----------------------------------------------

// DisconnectPeer takes a peer offline: every transfer it participates in
// terminates (dissolving its rings), its queued requests are dropped, and
// its holdings leave the lookup index. Used by failure-injection tests and
// the departure scenarios of Section III-A ("some peers may have gone
// offline, or crashed").
func (s *Sim) DisconnectPeer(id core.PeerID) {
	p := s.peers[id]
	if !p.online {
		return
	}
	p.online = false
	// Snapshot both transfer lists: terminations mutate them underneath us,
	// and a ring dissolution can terminate several of p's sessions at once.
	ups := append(s.sessScratch[:0], p.uploads...)
	s.sessScratch = ups
	for _, sess := range ups {
		s.terminateSession(sess, true)
	}
	downs := append(s.sessScratch[:0], p.downloads...)
	s.sessScratch = downs
	for _, sess := range downs {
		s.terminateSession(sess, true)
	}
	// Withdraw our registered requests from other peers' queues. The
	// snapshot is required: removePending mutates pendingOrder in place.
	objs := append(s.objScratch[:0], p.pendingOrder...)
	s.objScratch = objs
	for _, obj := range objs {
		dl := p.pending[obj]
		for _, srv := range dl.requestedFrom {
			if req := s.peers[srv].dropIRQ(p.id, obj); req != nil {
				s.retireRequest(req)
			}
		}
		if s.sc != nil {
			s.cancelRemoteFeeds(p, dl)
		}
		p.removePending(obj)
		s.wanters.Remove(obj, p.id)
	}
	// Queued cross-domain demand dies with the peer; the far-side requesters
	// recover via their stall timeout.
	p.remoteQ = p.remoteQ[:0]
	// Drop our queue; requesters will be served elsewhere or retry. Every
	// entry is unserved by now (the upload terminations above released them).
	for i, e := range p.irq {
		s.retireRequest(e)
		p.irq[i] = nil
	}
	p.irq = p.irq[:0]
	clear(p.irqIndex)
	if p.sharing {
		s.unindexStoredObjects(p)
	}
	if p.retryEv.Valid() {
		s.q.Cancel(p.retryEv)
		p.retryEv = eventq.Handle{}
	}
}

// RejoinPeer brings a disconnected peer back online with its stored content.
func (s *Sim) RejoinPeer(id core.PeerID) {
	p := s.peers[id]
	if p.online {
		return
	}
	p.online = true
	if p.sharing {
		s.indexStoredObjects(p)
	}
	s.issueRequests(p)
}

// indexStoredObjects enters every object in p's store into the holder
// index, and unindexStoredObjects removes them — the shared step of going
// online/offline and of flipping between contributing and free-riding.
// Bitset add/remove is commutative and the loop body draws nothing from the
// RNG, so the map's randomized visit order cannot leak into behavior.
func (s *Sim) indexStoredObjects(p *peerState) {
	//barter:allow maprange holder-bitset adds are commutative; no RNG draw or output sees the visit order
	for o := range p.store {
		s.addHolder(o, p.id)
	}
}

func (s *Sim) unindexStoredObjects(p *peerState) {
	//barter:allow maprange holder-bitset removes are commutative; no RNG draw or output sees the visit order
	for o := range p.store {
		s.removeHolder(o, p.id)
	}
}

// --- strategy machinery ------------------------------------------------------

// adaptiveCheck fires one patience window after an adaptive peer issued a
// download: if that same download is still pending, the peer is being
// starved and starts contributing.
func (s *Sim) adaptiveCheck(p *peerState, dl *download) {
	if !p.online || p.sharing {
		return
	}
	if p.pending[dl.object] != dl {
		return // completed or abandoned in the meantime
	}
	s.startContributing(p)
}

// anyStarvedPending reports whether any of the peer's pending downloads has
// been waiting longer than the patience window.
func (s *Sim) anyStarvedPending(p *peerState, now float64) bool {
	patience := s.cfg.adaptivePatience()
	for _, obj := range p.pendingOrder {
		if now-p.pending[obj].requestedAt >= patience {
			return true
		}
	}
	return false
}

// startContributing turns a non-sharing peer into a contributor: its
// holdings enter the lookup index, so requesters (and ring searches) can
// find it from now on.
func (s *Sim) startContributing(p *peerState) {
	if p.sharing {
		return
	}
	p.sharing = true
	s.col.classFlips[p.class]++
	s.indexStoredObjects(p)
}

// stopContributing reverts a peer to free-riding: its holdings leave the
// lookup index, its running uploads terminate (dissolving any rings they
// anchor), and its queued requests are dropped — requesters retry elsewhere.
func (s *Sim) stopContributing(p *peerState) {
	if !p.sharing {
		return
	}
	p.sharing = false
	s.col.classFlips[p.class]++
	s.unindexStoredObjects(p)
	// Snapshot uploads: terminations mutate p.uploads underneath us. The
	// scratch is free here: completeDownload's own snapshot use has finished
	// by the time it calls this, and no other user is on the stack.
	ups := append(s.sessScratch[:0], p.uploads...)
	s.sessScratch = ups
	for _, up := range ups {
		s.terminateSession(up, true)
	}
	for i, e := range p.irq {
		s.retireRequest(e)
		p.irq[i] = nil
	}
	p.irq = p.irq[:0]
	clear(p.irqIndex)
	// A free-rider serves no one, cross-domain requesters included.
	p.remoteQ = p.remoteQ[:0]
}

// whitewash executes one identity churn for a whitewashing peer: it departs
// (dropping queue positions, transfers, and pending downloads), any
// identity-keyed ranker state is wiped, and it rejoins fresh — then the next
// churn is armed. The paper's history-free exchange mechanism is indifferent
// to this; history-based rankers forget everything they knew about the peer.
func (s *Sim) whitewash(p *peerState) {
	if p.online {
		s.DisconnectPeer(p.id)
		if rs, ok := s.cfg.Ranker.(WhitewashResetter); ok {
			rs.OnWhitewash(p.id)
		}
		s.col.whitewashes[p.class]++
		s.RejoinPeer(p.id)
	}
	s.after(s.cfg.whitewashInterval(), func(float64) { s.whitewash(p) })
}

// PeerIsSharing reports whether a peer is currently contributing (exported
// for tests/examples; adaptive peers toggle this at runtime).
func (s *Sim) PeerIsSharing(id core.PeerID) bool { return s.peers[id].sharing }

// PeerClassLabel reports the strategy-class label of a peer.
func (s *Sim) PeerClassLabel(id core.PeerID) string { return s.peers[id].strat.Name }

// SearchOnce runs one ring search rooted at the given peer under an
// arbitrary policy without mutating any state. It reports whether a
// candidate ring was found. Exposed for search-cost benchmarks.
func (s *Sim) SearchOnce(id core.PeerID, pol core.Policy) bool {
	p := s.peers[id]
	if len(p.irq) == 0 || len(p.pending) == 0 {
		return false
	}
	_, _, _, ok := s.graph.FindRing(id, p.wants(), pol)
	return ok
}

// NumPeers returns the population size.
func (s *Sim) NumPeers() int { return len(s.peers) }
