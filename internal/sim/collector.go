package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"barter/internal/metrics"
	"barter/internal/strategy"
)

// TypeNonExchange and friends label session classes in results, matching the
// paper's figure legends.
const (
	TypeNonExchange = "non-exchange"
	TypePairwise    = "pairwise"
)

// TypeLabel names a session class from its ring size (1 = non-exchange).
func TypeLabel(ringSize int) string {
	switch ringSize {
	case 1:
		return TypeNonExchange
	case 2:
		return TypePairwise
	default:
		return fmt.Sprintf("%d-way", ringSize)
	}
}

// ClassResult aggregates one strategy class of the population: its label,
// size, and measurement-window download statistics.
type ClassResult struct {
	// Label is the strategy-class name (e.g. "sharing", "adaptive").
	Label string
	// Share reports whether the class contributes from the start; it decides
	// which legacy aggregate (sharing vs non-sharing) the class feeds.
	Share bool
	// Peers is the class population size.
	Peers int
	// Completed counts the class's completed downloads in the window.
	Completed int
	// DownloadTime holds the class's download-time samples (minutes).
	DownloadTime *metrics.Sample
	// VolumePerPeerMB is the mean megabytes received per class peer during
	// the measurement window.
	VolumePerPeerMB float64
	// Whitewashes counts identity churns executed by the class; Flips counts
	// adaptive contribution toggles (both zero for static classes).
	Whitewashes int
	Flips       int
}

// Result aggregates everything one run measures. All times are minutes of
// virtual time, all volumes kilobytes or megabytes as labeled.
type Result struct {
	// Policy is the exchange policy label of the run.
	Policy string
	// SimulatedSeconds is the virtual horizon; Events the events executed.
	SimulatedSeconds float64
	Events           uint64

	// Classes holds the per-strategy-class results in population-mix order.
	// For the legacy two-class population this is exactly [non-sharing,
	// sharing]; richer mixes add one entry per class.
	Classes []ClassResult

	// CompletedSharing/NonSharing count completed downloads per class in
	// the measurement window.
	CompletedSharing    int
	CompletedNonSharing int

	// DownloadTimeMin holds per-class download-time samples (minutes).
	DownloadTimeSharing    *metrics.Sample
	DownloadTimeNonSharing *metrics.Sample

	// SessionVolumeKB samples kilobytes delivered per session, keyed by
	// session class (Figure 7).
	SessionVolumeKB *metrics.Grouped
	// WaitingTimeMin samples request-to-transfer-start waits in minutes,
	// keyed by session class (Figure 8).
	WaitingTimeMin *metrics.Grouped

	// SessionCount counts finished sessions per class; ExchangeFraction is
	// the fraction of them that were exchanges (Figure 5).
	SessionCount     map[string]int
	ExchangeFraction float64

	// VolumePerSharingPeerMB / NonSharing are mean megabytes received per
	// peer of each class during the measurement window (Figure 10).
	VolumePerSharingPeerMB    float64
	VolumePerNonSharingPeerMB float64

	// RingsStarted counts exchange rings by size; RingAttempts and
	// RingValidationFailures expose search/validation dynamics, with
	// RingFailReasons breaking failures down by the first failed check.
	RingsStarted           map[int]int
	RingAttempts           int
	RingValidationFailures int
	RingFailReasons        map[string]int

	// Preemptions counts non-exchange uploads reclaimed for exchanges.
	Preemptions int
	// IRQRejected counts requests dropped at full queues.
	IRQRejected int
	// LookupFailures counts request attempts that found no holder.
	LookupFailures int
	// WorkloadDropped counts open-loop demand arrivals lost because the
	// peer was already at MaxPending (always zero for closed-loop runs).
	WorkloadDropped int

	// RingSearches counts ring searches executed; SearchNodesVisited and
	// SearchWantsChecked aggregate their traversal cost (Section V's search
	// effort concern, surfaced through exchsim -perf).
	RingSearches       int
	SearchNodesVisited int
	SearchWantsChecked int

	// Cross-partition activity of a sharded run (all zero at Shards <= 1):
	// RemoteFetches counts downloads started against another domain's
	// directory, RemoteAborts those abandoned by the stall timeout,
	// RemotePairs cross-domain exchange pairs formed, and RemoteBlocks the
	// blocks shipped across a partition boundary.
	RemoteFetches int
	RemoteAborts  int
	RemotePairs   int
	RemoteBlocks  int
}

// Class returns the result entry for the given strategy-class label, or nil
// if the run's population had no such class.
func (r *Result) Class(label string) *ClassResult {
	for i := range r.Classes {
		if r.Classes[i].Label == label {
			return &r.Classes[i]
		}
	}
	return nil
}

// ClassMeanDownloadMin returns the mean download time in minutes for the
// given strategy class, or NaN if the class is absent or completed nothing.
func (r *Result) ClassMeanDownloadMin(label string) float64 {
	c := r.Class(label)
	if c == nil {
		return math.NaN()
	}
	return c.DownloadTime.Mean()
}

// MeanDownloadMin returns the mean download time in minutes for the class,
// or NaN if the class completed nothing.
func (r *Result) MeanDownloadMin(sharing bool) float64 {
	if sharing {
		return r.DownloadTimeSharing.Mean()
	}
	return r.DownloadTimeNonSharing.Mean()
}

// MeanDownloadMinAll returns the mean download time in minutes over both
// classes combined (the paper's single "no exchange" line), or NaN if the
// run completed nothing.
func (r *Result) MeanDownloadMinAll() float64 {
	n := r.DownloadTimeSharing.N() + r.DownloadTimeNonSharing.N()
	if n == 0 {
		return math.NaN()
	}
	sum := 0.0
	if r.DownloadTimeSharing.N() > 0 {
		sum += r.DownloadTimeSharing.Mean() * float64(r.DownloadTimeSharing.N())
	}
	if r.DownloadTimeNonSharing.N() > 0 {
		sum += r.DownloadTimeNonSharing.Mean() * float64(r.DownloadTimeNonSharing.N())
	}
	return sum / float64(n)
}

// SpeedupSharingVsNonSharing returns the ratio of non-sharing to sharing
// mean download time (>1 means sharers are faster), or NaN when undefined.
func (r *Result) SpeedupSharingVsNonSharing() float64 {
	s, n := r.MeanDownloadMin(true), r.MeanDownloadMin(false)
	if math.IsNaN(s) || math.IsNaN(n) || s == 0 {
		return math.NaN()
	}
	return n / s
}

// Summary renders a human-readable digest of the run.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s horizon=%.0fs events=%d\n", r.Policy, r.SimulatedSeconds, r.Events)
	fmt.Fprintf(&b, "downloads: sharing %d (mean %.1f min), non-sharing %d (mean %.1f min), speedup %.2fx\n",
		r.CompletedSharing, r.MeanDownloadMin(true),
		r.CompletedNonSharing, r.MeanDownloadMin(false),
		r.SpeedupSharingVsNonSharing())
	fmt.Fprintf(&b, "sessions:")
	keys := make([]string, 0, len(r.SessionCount))
	for k := range r.SessionCount {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, r.SessionCount[k])
	}
	fmt.Fprintf(&b, " (exchange fraction %.2f)\n", r.ExchangeFraction)
	fmt.Fprintf(&b, "volume/peer: sharing %.0f MB, non-sharing %.0f MB\n",
		r.VolumePerSharingPeerMB, r.VolumePerNonSharingPeerMB)
	if r.hasRichMix() {
		for _, c := range r.Classes {
			fmt.Fprintf(&b, "class %s: %d peers, %d done (mean %.1f min)",
				c.Label, c.Peers, c.Completed, c.DownloadTime.Mean())
			if c.Whitewashes > 0 {
				fmt.Fprintf(&b, ", %d whitewashes", c.Whitewashes)
			}
			if c.Flips > 0 {
				fmt.Fprintf(&b, ", %d flips", c.Flips)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// hasRichMix reports whether the run used anything beyond the legacy
// two-class population (whose Summary layout predates per-class results).
func (r *Result) hasRichMix() bool {
	if len(r.Classes) != 2 {
		return len(r.Classes) > 0
	}
	return r.Classes[0].Label != strategy.LabelNonSharing || r.Classes[1].Label != strategy.LabelSharing
}

// classStats accumulates one strategy class's window metrics.
type classStats struct {
	dt        metrics.Sample
	recvKbits float64
}

// collector accumulates run metrics, honoring the warm-up window. Per-class
// metrics are kept alongside (not instead of) the legacy sharing/non-sharing
// aggregates: the legacy accumulators are fed in event order so a legacy
// two-class run reproduces its historical output byte for byte, float
// summation order included.
type collector struct {
	warmupAt float64
	mix      strategy.Mix

	classes     []classStats
	whitewashes []int // per class, counted over the whole run
	classFlips  []int // adaptive contribution toggles, per class

	dtSharing metrics.Sample
	dtNon     metrics.Sample
	volume    *metrics.Grouped
	waiting   *metrics.Grouped

	sessionCount map[string]int
	exchSessions int
	allSessions  int

	recvSharingKbits float64
	recvNonKbits     float64

	ringsStarted map[int]int
	ringAttempts int
	ringFailures int
	failReasons  map[string]int
	preemptions  int
	irqRejected  int
	lookupFails  int
	wlDropped    int

	ringSearches int
	searchNodes  int
	searchWants  int

	remoteFetches int
	remoteAborts  int
	remotePairs   int
	remoteBlocks  int
}

func newCollector(warmupAt float64, mix strategy.Mix) *collector {
	return &collector{
		warmupAt:     warmupAt,
		mix:          mix,
		classes:      make([]classStats, len(mix)),
		whitewashes:  make([]int, len(mix)),
		classFlips:   make([]int, len(mix)),
		volume:       metrics.NewGrouped(),
		waiting:      metrics.NewGrouped(),
		sessionCount: make(map[string]int),
		ringsStarted: make(map[int]int),
		failReasons:  make(map[string]int),
	}
}

func (c *collector) inWindow(now float64) bool { return now >= c.warmupAt }

func (c *collector) downloadDone(now float64, class int, minutes float64) {
	if !c.inWindow(now) {
		return
	}
	c.classes[class].dt.Add(minutes)
	if c.mix[class].Share {
		c.dtSharing.Add(minutes)
	} else {
		c.dtNon.Add(minutes)
	}
}

func (c *collector) blockReceived(now float64, class int, kbits float64) {
	if !c.inWindow(now) {
		return
	}
	c.classes[class].recvKbits += kbits
	if c.mix[class].Share {
		c.recvSharingKbits += kbits
	} else {
		c.recvNonKbits += kbits
	}
}

// sessionDone records a finished (or finalized-at-horizon) session.
func (c *collector) sessionDone(now float64, s *session) {
	if !c.inWindow(now) {
		return
	}
	label := TypeLabel(s.ringSize)
	c.sessionCount[label]++
	c.allSessions++
	if s.ringSize > 1 {
		c.exchSessions++
	}
	c.volume.Add(label, s.sent/8) // kbits -> kB
	// A remote upload has no local download; the remote demand's arrival at
	// this domain stands in for the request time.
	reqAt := s.rArrival
	if !s.remote {
		reqAt = s.dl.requestedAt
	}
	c.waiting.Add(label, (s.startAt-reqAt)/60)
}

func (c *collector) ringStarted(now float64, size int) {
	if !c.inWindow(now) {
		return
	}
	c.ringsStarted[size]++
}

// merge folds src into c. The sharded coordinator merges its domains in
// ascending domain order, so every float accumulation and every sample
// concatenation happens in one fixed sequence — the merged result is a pure
// function of (config, seed, shards). Map-valued counters are folded over
// sorted keys: the sums are order-independent anyway, but the deterministic
// packages ban raw map ranging outright (docs/DETERMINISM.md).
func (c *collector) merge(src *collector) {
	for i := range src.classes {
		c.classes[i].dt.Merge(&src.classes[i].dt)
		c.classes[i].recvKbits += src.classes[i].recvKbits
		c.whitewashes[i] += src.whitewashes[i]
		c.classFlips[i] += src.classFlips[i]
	}
	c.dtSharing.Merge(&src.dtSharing)
	c.dtNon.Merge(&src.dtNon)
	c.volume.Merge(src.volume)
	c.waiting.Merge(src.waiting)
	for _, k := range sortedKeys(src.sessionCount) {
		c.sessionCount[k] += src.sessionCount[k]
	}
	c.exchSessions += src.exchSessions
	c.allSessions += src.allSessions
	c.recvSharingKbits += src.recvSharingKbits
	c.recvNonKbits += src.recvNonKbits
	for _, k := range sortedKeys(src.ringsStarted) {
		c.ringsStarted[k] += src.ringsStarted[k]
	}
	c.ringAttempts += src.ringAttempts
	c.ringFailures += src.ringFailures
	for _, k := range sortedKeys(src.failReasons) {
		c.failReasons[k] += src.failReasons[k]
	}
	c.preemptions += src.preemptions
	c.irqRejected += src.irqRejected
	c.lookupFails += src.lookupFails
	c.wlDropped += src.wlDropped
	c.ringSearches += src.ringSearches
	c.searchNodes += src.searchNodes
	c.searchWants += src.searchWants
	c.remoteFetches += src.remoteFetches
	c.remoteAborts += src.remoteAborts
	c.remotePairs += src.remotePairs
	c.remoteBlocks += src.remoteBlocks
}

// sortedKeys canonicalizes a counter map's key order for merge.
func sortedKeys[K int | string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func (c *collector) result(policy string, horizon float64, events uint64, classCounts []int) *Result {
	sharingPeers, nonSharingPeers := 0, 0
	for i, cl := range c.mix {
		if cl.Share {
			sharingPeers += classCounts[i]
		} else {
			nonSharingPeers += classCounts[i]
		}
	}
	res := &Result{
		Policy:                 policy,
		SimulatedSeconds:       horizon,
		Events:                 events,
		CompletedSharing:       int(c.dtSharing.N()),
		CompletedNonSharing:    int(c.dtNon.N()),
		DownloadTimeSharing:    &c.dtSharing,
		DownloadTimeNonSharing: &c.dtNon,
		SessionVolumeKB:        c.volume,
		WaitingTimeMin:         c.waiting,
		SessionCount:           c.sessionCount,
		RingsStarted:           c.ringsStarted,
		RingAttempts:           c.ringAttempts,
		RingValidationFailures: c.ringFailures,
		RingFailReasons:        c.failReasons,
		Preemptions:            c.preemptions,
		IRQRejected:            c.irqRejected,
		LookupFailures:         c.lookupFails,
		WorkloadDropped:        c.wlDropped,
		RingSearches:           c.ringSearches,
		SearchNodesVisited:     c.searchNodes,
		SearchWantsChecked:     c.searchWants,
		RemoteFetches:          c.remoteFetches,
		RemoteAborts:           c.remoteAborts,
		RemotePairs:            c.remotePairs,
		RemoteBlocks:           c.remoteBlocks,
	}
	if c.allSessions > 0 {
		res.ExchangeFraction = float64(c.exchSessions) / float64(c.allSessions)
	}
	if sharingPeers > 0 {
		res.VolumePerSharingPeerMB = c.recvSharingKbits / float64(sharingPeers) / 8000
	}
	if nonSharingPeers > 0 {
		res.VolumePerNonSharingPeerMB = c.recvNonKbits / float64(nonSharingPeers) / 8000
	}
	res.Classes = make([]ClassResult, len(c.mix))
	for i, cl := range c.mix {
		cr := ClassResult{
			Label:        cl.Name,
			Share:        cl.Share,
			Peers:        classCounts[i],
			Completed:    c.classes[i].dt.N(),
			DownloadTime: &c.classes[i].dt,
			Whitewashes:  c.whitewashes[i],
			Flips:        c.classFlips[i],
		}
		if classCounts[i] > 0 {
			cr.VolumePerPeerMB = c.classes[i].recvKbits / float64(classCounts[i]) / 8000
		}
		res.Classes[i] = cr
	}
	return res
}
