package sim

import (
	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/eventq"
	"barter/internal/strategy"
)

// download tracks one outstanding object download at a requesting peer. It
// may be fed by several concurrent sessions from different sources (the
// system supports partial, multi-source transfers).
type download struct {
	object        catalog.ObjectID
	requestedAt   float64
	receivedKbits float64
	// providers is the lookup result plus any later-learned holders; it is
	// the set a ring search may close through.
	providers map[core.PeerID]bool
	// requestedFrom lists the servers holding a registered request for this
	// download, in registration order.
	requestedFrom []core.PeerID
	// sessions currently feeding this download.
	sessions []*session

	// remoteSrcs lists the cross-domain exporters this download requested
	// from (global peer ids; sharded runs only). remoteProgress snapshots
	// receivedKbits at the last stall check: a remote fetch that makes no
	// progress for a full stall window is abandoned, which is how the
	// requester recovers from a server that departed, evicted the object, or
	// dropped the queued demand on the far side of the partition boundary.
	remoteSrcs     []core.PeerID
	remoteProgress float64
}

// request is one incoming-request-queue entry at a serving peer.
type request struct {
	requester core.PeerID
	object    catalog.ObjectID
	arrival   float64
	// session is non-nil while this entry is being served by the queue's
	// owner.
	session *session
}

// irqKey identifies an IRQ entry; a peer holds at most one registered
// request per (requester, object) pair, as in the paper.
type irqKey struct {
	requester core.PeerID
	object    catalog.ObjectID
}

// session is one active transfer: src uploads object to dst at exactly one
// slot's rate, one block per event. ringSize 1 marks a non-exchange
// transfer; ringSize >= 2 marks membership in an exchange ring of that size.
//
// Sessions come from (and return to) the engine's free list, and a session
// is its own block-arrival event: the per-block hot path — the single most
// frequent event in any run — schedules without allocating a closure.
type session struct {
	sim      *Sim
	src, dst core.PeerID
	object   catalog.ObjectID
	ringSize int
	ring     *ringState
	entry    *request  // IRQ entry at src
	dl       *download // download at dst
	startAt  float64
	sent     float64 // kbits delivered so far
	blockEv  eventq.Handle
	closed   bool

	// remote marks a cross-domain upload (sharded runs only): dst is -1 and
	// unused, entry/dl/ring are nil, and each block is exported as an xblock
	// mailbox message to domain rdom for global peer rdst instead of being
	// delivered locally. rArrival is when the remote demand reached this
	// domain (it stands in for dl.requestedAt in waiting-time stats).
	remote   bool
	rdst     core.PeerID
	rdom     int
	rArrival float64
}

// Fire implements eventq.Event: one block of the transfer arrives.
func (sess *session) Fire(float64) {
	sim := sess.sim
	sim.reap()
	sim.onBlock(sess)
}

// ringState ties the sessions of one exchange ring together: when any
// member stops (completes its download, departs, or loses the object), the
// whole ring dissolves and the surviving members reschedule.
type ringState struct {
	sessions  []*session
	dissolved bool
}

// peerState is the full simulator state of one peer.
type peerState struct {
	id core.PeerID
	// class indexes the run's population mix; strat points at the class's
	// strategy definition (stable for the run).
	class int
	strat *strategy.Strategy
	// sharing is the peer's current contribution state. For most classes it
	// is fixed at strat.Share; adaptive free-riders toggle it at runtime.
	sharing bool
	online  bool
	// ulSlots is this peer's upload-slot capacity: the configured slots,
	// throttled by the strategy for partial sharers.
	ulSlots int

	interest *catalog.Interest
	store    map[catalog.ObjectID]bool
	storeCap int

	// pending downloads; pendingOrder keeps deterministic want ordering.
	pending      map[catalog.ObjectID]*download
	pendingOrder []catalog.ObjectID

	irq      []*request
	irqIndex map[irqKey]*request

	uploads   []*session
	downloads []*session

	// remoteQ is queued cross-domain demand at a serving peer (sharded runs
	// only), in barrier-application order; tryServe drains it after the
	// local IRQ.
	remoteQ []xdemand

	// retryEv is the pending lookup-retry event, if any.
	retryEv eventq.Handle
	// adjacency scratch reused across ring searches.
	adjScratch []core.Edge
	// wantScratch and want1 back wants()/wantFor(); see those methods for
	// why reuse is safe.
	wantScratch []core.Want
	want1       [1]core.Want
}

func (p *peerState) hasFreeUploadSlot() bool            { return len(p.uploads) < p.ulSlots }
func (p *peerState) hasFreeDownloadSlot(slots int) bool { return len(p.downloads) < slots }

// uploadsInExchange reports whether any of the peer's exchange uploads
// carries obj. The uploads slice is bounded by the slot count, so the scan
// is cheaper than materializing a set.
func (p *peerState) uploadsInExchange(obj catalog.ObjectID) bool {
	for _, up := range p.uploads {
		if up.ringSize > 1 && up.object == obj {
			return true
		}
	}
	return false
}

// preemptibleUpload returns the most recently started non-exchange upload,
// or nil. The paper reclaims non-exchange slots "as soon as another exchange
// becomes possible"; preempting the youngest session sacrifices the least
// accumulated work.
func (p *peerState) preemptibleUpload() *session {
	for i := len(p.uploads) - 1; i >= 0; i-- {
		if s := p.uploads[i]; s.ringSize == 1 {
			return s
		}
	}
	return nil
}

// removeSession deletes s from a session slice, preserving order (slices are
// short: bounded by slot counts).
func removeSession(ss []*session, s *session) []*session {
	for i, v := range ss {
		if v == s {
			return append(ss[:i], ss[i+1:]...)
		}
	}
	return ss
}

// addPending registers a new download.
func (p *peerState) addPending(dl *download) {
	p.pending[dl.object] = dl
	p.pendingOrder = append(p.pendingOrder, dl.object)
}

// removePending unregisters a download (completed or abandoned).
func (p *peerState) removePending(obj catalog.ObjectID) {
	delete(p.pending, obj)
	for i, o := range p.pendingOrder {
		if o == obj {
			p.pendingOrder = append(p.pendingOrder[:i], p.pendingOrder[i+1:]...)
			return
		}
	}
}

// wants materializes the peer's current wants for a ring search, in
// deterministic pending order. The returned slice is the peer's reusable
// scratch: ring searches never retain it (rings copy the object they
// close on), and no call path builds a second wants slice for the same
// peer while one is in use.
func (p *peerState) wants() []core.Want {
	out := p.wantScratch[:0]
	for _, obj := range p.pendingOrder {
		dl := p.pending[obj]
		out = append(out, core.Want{Object: obj, Providers: dl.providers})
	}
	p.wantScratch = out
	return out
}

// wantFor materializes a single-want slice for the targeted
// before-transmission search, backed by its own one-element scratch so it
// cannot collide with a wants() slice live on the same stack.
func (p *peerState) wantFor(dl *download) []core.Want {
	p.want1[0] = core.Want{Object: dl.object, Providers: dl.providers}
	return p.want1[:]
}

// addIRQ appends an entry if capacity allows and no duplicate exists; it
// returns the entry, or nil if rejected.
func (p *peerState) addIRQ(req *request, capacity int) *request {
	k := irqKey{requester: req.requester, object: req.object}
	if _, dup := p.irqIndex[k]; dup {
		return nil
	}
	if len(p.irq) >= capacity {
		return nil
	}
	p.irq = append(p.irq, req)
	p.irqIndex[k] = req
	return req
}

// dropIRQ removes the entry for (requester, object), if present.
func (p *peerState) dropIRQ(requester core.PeerID, object catalog.ObjectID) *request {
	k := irqKey{requester: requester, object: object}
	req, ok := p.irqIndex[k]
	if !ok {
		return nil
	}
	delete(p.irqIndex, k)
	for i, e := range p.irq {
		if e == req {
			p.irq = append(p.irq[:i], p.irq[i+1:]...)
			break
		}
	}
	return req
}

// lookupIRQ returns the entry for (requester, object), or nil.
func (p *peerState) lookupIRQ(requester core.PeerID, object catalog.ObjectID) *request {
	return p.irqIndex[irqKey{requester: requester, object: object}]
}
