package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(99)
	s1 := root.Split(1)
	s2 := root.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams with different labels produced identical first draw")
	}
	// Splitting must not consume from the parent stream.
	rootCopy := New(99)
	rootCopy.Split(1)
	rootCopy.Split(2)
	orig := New(99)
	if orig.Uint64() != rootCopy.Uint64() {
		t.Fatal("Split consumed parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.IntRange(5, 40)
		if v < 5 || v > 40 {
			t.Fatalf("IntRange(5,40) = %d", v)
		}
	}
	if got := r.IntRange(3, 3); got != 3 {
		t.Fatalf("IntRange(3,3) = %d, want 3", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(6)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const mean, draws = 42.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean) > mean*0.02 {
		t.Fatalf("Exp sample mean %v, want ~%v", got, mean)
	}
}

func TestPowerLawUniformWhenFZero(t *testing.T) {
	p := NewPowerLaw(10, 0)
	for i := 1; i <= 10; i++ {
		if math.Abs(p.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("f=0 rank %d prob %v, want 0.1", i, p.Prob(i))
		}
	}
}

func TestPowerLawZipfWhenFOne(t *testing.T) {
	p := NewPowerLaw(5, 1)
	// With f=1, p(i) proportional to 1/i: normalizer = 1+1/2+1/3+1/4+1/5.
	h := 1.0 + 0.5 + 1.0/3 + 0.25 + 0.2
	for i := 1; i <= 5; i++ {
		want := (1.0 / float64(i)) / h
		if math.Abs(p.Prob(i)-want) > 1e-12 {
			t.Fatalf("f=1 rank %d prob %v, want %v", i, p.Prob(i), want)
		}
	}
}

func TestPowerLawProbsSumToOne(t *testing.T) {
	for _, f := range []float64{0, 0.2, 0.5, 1} {
		p := NewPowerLaw(300, f)
		sum := 0.0
		for i := 1; i <= 300; i++ {
			sum += p.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("f=%v probs sum to %v", f, sum)
		}
	}
}

func TestPowerLawRankInBounds(t *testing.T) {
	r := New(9)
	p := NewPowerLaw(37, 0.7)
	for i := 0; i < 100000; i++ {
		rank := p.Rank(r)
		if rank < 1 || rank > 37 {
			t.Fatalf("rank %d out of [1,37]", rank)
		}
	}
}

func TestPowerLawEmpiricalMatchesAnalytic(t *testing.T) {
	r := New(10)
	p := NewPowerLaw(20, 0.8)
	const draws = 300000
	counts := make([]int, 21)
	for i := 0; i < draws; i++ {
		counts[p.Rank(r)]++
	}
	for i := 1; i <= 20; i++ {
		want := p.Prob(i) * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want)+1 {
			t.Fatalf("rank %d: observed %d, expected %v", i, counts[i], want)
		}
	}
}

func TestPowerLawMoreSkewedWithLargerF(t *testing.T) {
	flat := NewPowerLaw(100, 0.1)
	steep := NewPowerLaw(100, 1)
	if steep.Prob(1) <= flat.Prob(1) {
		t.Fatal("larger f did not increase top-rank probability")
	}
	if steep.Prob(100) >= flat.Prob(100) {
		t.Fatal("larger f did not decrease bottom-rank probability")
	}
}

func TestWeightedRespectsWeights(t *testing.T) {
	r := New(13)
	w := NewWeighted([]float64{1, 0, 3})
	const draws = 100000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[w.Index(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	cases := []struct {
		name string
		w    []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -1}},
		{"zero-sum", []float64{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewWeighted(%v) did not panic", tc.w)
				}
			}()
			NewWeighted(tc.w)
		})
	}
}

func TestDeriveSeedPureAndDistinct(t *testing.T) {
	if a, b := DeriveSeed(7, 3, 1), DeriveSeed(7, 3, 1); a != b {
		t.Fatalf("DeriveSeed not pure: %d vs %d", a, b)
	}
	// Adjacent labels, adjacent bases, and different label depths must all
	// land on distinct seeds.
	seen := map[uint64]bool{}
	for base := uint64(0); base < 4; base++ {
		for job := uint64(0); job < 8; job++ {
			for rep := uint64(0); rep < 4; rep++ {
				s := DeriveSeed(base, job, rep)
				if seen[s] {
					t.Fatalf("collision at base=%d job=%d rep=%d", base, job, rep)
				}
				seen[s] = true
			}
		}
	}
	if DeriveSeed(1) == DeriveSeed(1, 0) {
		t.Fatal("label depth did not change the derived seed")
	}
}

func TestDeriveSeedMatchesSplitChain(t *testing.T) {
	// DeriveSeed is defined as chained Split, so the streams must agree.
	want := New(9).Split(4).Split(2)
	got := New(DeriveSeed(9, 4, 2))
	for i := 0; i < 10; i++ {
		if want.Uint64() != got.Uint64() {
			t.Fatalf("stream diverged at draw %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPowerLawRank(b *testing.B) {
	r := New(1)
	p := NewPowerLaw(300, 0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Rank(r)
	}
}

func TestStreamMatchesDeriveSeed(t *testing.T) {
	a := Stream(42, 7, 3)
	b := New(DeriveSeed(42, 7, 3))
	for i := 0; i < 16; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: Stream %d != New(DeriveSeed) %d", i, x, y)
		}
	}
	// Distinct labels must give statistically independent streams; at
	// minimum they may not collide on the first draws.
	if Stream(42, 7, 3).Uint64() == Stream(42, 7, 4).Uint64() {
		t.Fatal("adjacent labels collide on the first draw")
	}
}
