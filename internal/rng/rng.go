// Package rng provides the deterministic pseudo-random number generator and
// the sampling distributions used by the simulation study.
//
// The simulator does not use math/rand: reproducibility across Go versions is
// a requirement (math/rand's algorithms and helper implementations are not
// covered by the compatibility promise), and a dedicated splitmix64 stream
// keeps every run byte-for-byte reproducible from its seed.
package rng

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New to make seeding explicit.
//
// RNG is not safe for concurrent use. The simulator is single-threaded by
// design; concurrent consumers must each own a stream (see Split).
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent stream from r, keyed by label. Using distinct
// labels for distinct subsystems keeps their random sequences decoupled, so
// adding a draw in one subsystem does not perturb another.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the label through one splitmix64 round so adjacent labels produce
	// unrelated states.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// DeriveSeed maps a base seed and a list of labels (for example job index
// and replica number) to a new seed, mixing each label through one
// splitmix64 round. The derivation is pure: it depends only on its inputs,
// never on goroutine scheduling or draw order, which is what lets a parallel
// experiment runner hand every job the same seed it would have received
// sequentially. Adjacent labels produce unrelated seeds.
func DeriveSeed(base uint64, labels ...uint64) uint64 {
	r := RNG{state: base}
	for _, l := range labels {
		r = *r.Split(l)
	}
	return r.state
}

// Stream returns a generator seeded with DeriveSeed(base, labels...). It is
// the constructor the sharded engine uses to hand every partition its own
// stream: Stream(seed, labelDomain, d) for domain d depends only on the run
// seed and the domain index, never on how many draws other domains made, so
// a world partitioned P ways draws the same per-domain sequences no matter
// which worker executes which domain.
func Stream(base uint64, labels ...uint64) *RNG {
	return New(DeriveSeed(base, labels...))
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0, matching
// math/rand's contract.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for an unbiased bounded draw.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// IntRange returns a pseudo-random int in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// PowerLaw samples ranks 1..n with probability proportional to rank^-f.
//
// This is the popularity model of the paper (after Schlosser, Condie &
// Kamvar, "Simulating a P2P file-sharing network"): the popularity of the
// item of rank i is p(i) = i^-f / sum_j j^-f. With f = 0 the distribution is
// uniform; with f = 1 it is zipf-like.
type PowerLaw struct {
	cdf []float64 // cdf[i] = P(rank <= i+1)
	n   int
	f   float64
}

// NewPowerLaw builds a sampler over ranks 1..n with exponent f. It panics if
// n <= 0 or f < 0 (the model only uses f in [0, 1], larger values are legal).
func NewPowerLaw(n int, f float64) *PowerLaw {
	if n <= 0 {
		panic("rng: PowerLaw with non-positive n")
	}
	if f < 0 {
		panic("rng: PowerLaw with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -f)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &PowerLaw{cdf: cdf, n: n, f: f}
}

// N returns the number of ranks.
func (p *PowerLaw) N() int { return p.n }

// F returns the exponent.
func (p *PowerLaw) F() float64 { return p.f }

// Prob returns the probability of rank i (1-based).
func (p *PowerLaw) Prob(i int) float64 {
	if i < 1 || i > p.n {
		return 0
	}
	if i == 1 {
		return p.cdf[0]
	}
	return p.cdf[i-1] - p.cdf[i-2]
}

// Rank draws a rank in [1, n] using r.
func (p *PowerLaw) Rank(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, p.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Weighted samples indices 0..len(weights)-1 with probability proportional
// to the (non-negative) weights. It is used for each peer's local category
// preference distribution, which the paper assigns uniformly random weights
// independent of global popularity.
type Weighted struct {
	cdf []float64
}

// NewWeighted builds a sampler from weights. It panics if weights is empty,
// contains a negative value, or sums to zero.
func NewWeighted(weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("rng: Weighted with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: Weighted with negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("rng: Weighted with zero total weight")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[len(cdf)-1] = 1
	return &Weighted{cdf: cdf}
}

// Index draws an index using r.
func (w *Weighted) Index(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
