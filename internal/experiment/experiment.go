// Package experiment defines one runnable specification per table and figure
// of the paper's evaluation (Section IV), plus the ablations called out in
// DESIGN.md. Each experiment reproduces the corresponding figure's series;
// absolute values depend on the simulated substrate, but orderings, ratios,
// and crossovers are expected to match the paper (see EXPERIMENTS.md).
//
// Every experiment enumerates its parameter grid declaratively as a slice of
// points and hands the slice to internal/runner, which fans the independent
// simulation runs out over a worker pool (Options.Parallel) and optionally
// replicates each point over several derived seeds (Options.Replicas).
// Results are recorded in submission order, so the emitted tables are
// byte-identical at any parallelism; with replication on, swept figures gain
// mean +/- 95% CI columns.
package experiment

import (
	"fmt"
	"sort"
	"strings"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/metrics"
	"barter/internal/runner"
	"barter/internal/sim"
)

// Options tunes one experiment invocation.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Quick runs the scaled-down world (30 peers, 0.5 MB objects): seconds
	// instead of minutes of wall time, same shapes. Benchmarks use it.
	Quick bool
	// Parallel bounds the worker pool running grid points; <= 0 means one
	// worker per CPU. The emitted tables are identical at any setting.
	Parallel int
	// Replicas runs every grid point this many times under distinct derived
	// seeds (<= 0 means 1) and aggregates swept series to mean +/- 95% CI.
	// Distributional figures (7, 8) ignore it and run their single point
	// once: a CDF has no cross-seed mean.
	Replicas int
	// Progress, when non-nil, receives one line per completed run (emitted
	// as runs finish, so ordering varies with Parallel) and one deterministic
	// per-point summary line once the grid completes.
	Progress func(msg string)
	// Shards partitions every run's peers across this many parallel event-loop
	// domains (<= 1 means the single-threaded engine). Output depends on the
	// shard count but, for a fixed count, on nothing else: the same tables at
	// any Parallel or worker schedule.
	Shards int
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Report is the output of one experiment: the figure's data tables and an
// optional free-text section.
type Report struct {
	Tables []*metrics.Table
	Text   string
}

// TSV renders the whole report as tab-separated text.
func (r *Report) TSV() string {
	var b strings.Builder
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	for i, t := range r.Tables {
		if i > 0 || r.Text != "" {
			b.WriteByte('\n')
		}
		b.WriteString(t.TSV())
	}
	return b.String()
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the artifact key ("fig4" ... "fig12", "table2", "ablation-*").
	ID string
	// Title matches the paper's caption.
	Title string
	// Description says what is swept and what is reported.
	Description string
	// Run executes the experiment.
	Run func(opts Options) (*Report, error)
}

// FullBase returns the paper-scale configuration: Table II parameters with
// the documented availability calibration (50 categories of up to 100
// objects instead of 300 categories of up to 300). With the literal Table II
// catalog, 200 peers place ~4,400 object copies across ~45,000 objects; our
// conservative lookup and no-partial-serving assumptions then starve the
// system of exchange opportunities that the paper's simulator evidently had.
// The calibrated catalog restores the paper's operating regime (exchange
// fractions 0.3-0.6 and sharing speedups near 2x under load) without
// touching any mechanism parameter. See DESIGN.md and EXPERIMENTS.md.
func FullBase() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Catalog.Categories = 50
	cfg.Catalog.ObjectsPerCategoryMax = 100
	return cfg
}

// QuickBase returns the scaled-down world used by tests and benchmarks: 30
// peers, 0.5 MB objects, a few simulated hours.
func QuickBase() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 30
	cfg.Catalog = catalog.Config{
		Categories:            10,
		ObjectsPerCategoryMin: 4,
		ObjectsPerCategoryMax: 20,
		CategoryFactor:        0.2,
		ObjectFactor:          0.2,
		CategoriesPerPeerMin:  2,
		CategoriesPerPeerMax:  6,
	}
	cfg.ObjectKbits = 4000
	cfg.BlockKbits = 250
	cfg.StorageMinObjects = 8
	cfg.StorageMaxObjects = 20
	cfg.MaxPending = 6
	cfg.Duration = 30_000
	cfg.EvictionInterval = 600
	cfg.RetryInterval = 120
	return cfg
}

func base(opts Options) sim.Config {
	var cfg sim.Config
	if opts.Quick {
		cfg = QuickBase()
	} else {
		cfg = FullBase()
	}
	cfg.Seed = opts.seed()
	cfg.Shards = opts.Shards
	return cfg
}

// uploadSweep returns the swept upload capacities, highest first as in the
// paper's reversed x-axis.
func uploadSweep(quick bool) []float64 {
	if quick {
		return []float64{80, 60, 40, 20}
	}
	return []float64{140, 120, 100, 80, 60, 40}
}

func popularitySweep(quick bool) []float64 {
	if quick {
		return []float64{0, 0.5, 1}
	}
	return []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
}

// figurePolicies are the four configurations of Figures 4, 5, 9, 10, 12.
func figurePolicies() []core.Policy {
	return []core.Policy{
		core.PolicyPairwise,
		core.PolicyN2, // 5-2-way
		core.Policy2N, // 2-5-way
		core.PolicyNoExchange,
	}
}

// point is one declarative grid entry: a labelled configuration plus the
// callback that records its replicated results into the figure's table.
type point struct {
	label    string
	cfg      sim.Config
	finalize func(sim.Config) sim.Config
	emit     func(rs []*sim.Result)
}

// runGrid executes the points through the parallel runner and then invokes
// every emit callback in submission order, so tables and the per-point
// progress lines are reproduced deterministically at any parallelism.
func runGrid(opts Options, points []point) error {
	jobs := make([]runner.Job, len(points))
	for i, p := range points {
		jobs[i] = runner.Job{Config: p.cfg, Label: p.label, Finalize: p.finalize}
	}
	results, err := runner.Run(jobs, runner.Options{
		Parallel: opts.Parallel,
		Replicas: opts.Replicas,
		Progress: opts.Progress,
	})
	if err != nil {
		return err
	}
	for i, p := range points {
		p.emit(results[i].Replicas)
	}
	return nil
}

// Per-replica value extractors for the swept figures.
func sharingMin(r *sim.Result) float64    { return r.MeanDownloadMin(true) }
func nonSharingMin(r *sim.Result) float64 { return r.MeanDownloadMin(false) }
func allMin(r *sim.Result) float64        { return r.MeanDownloadMinAll() }
func exchFraction(r *sim.Result) float64  { return r.ExchangeFraction }
func speedup(r *sim.Result) float64       { return r.SpeedupSharingVsNonSharing() }

// vals extracts f over every replica.
func vals(rs []*sim.Result, f func(*sim.Result) float64) []float64 {
	ys := make([]float64, len(rs))
	for i, r := range rs {
		ys[i] = f(r)
	}
	return ys
}

// mean returns the replica mean of f (the plain value with one replica).
func mean(rs []*sim.Result, f func(*sim.Result) float64) float64 {
	m, _ := metrics.MeanCI95(vals(rs, f))
	return m
}

// appendAgg appends the replica mean of f under name. With replication on it
// also appends a "name ±95%" series carrying the confidence half-width; with
// a single replica the emitted table is exactly the unreplicated one.
func appendAgg(t *metrics.Table, name string, x float64, rs []*sim.Result, f func(*sim.Result) float64) {
	ys := vals(rs, f)
	if len(ys) == 1 {
		t.Append(name, x, ys[0])
		return
	}
	m, half := metrics.MeanCI95(ys)
	t.Append(name, x, m)
	t.Append(name+" ±95%", x, half)
}

// appendClassSeries adds the "<policy>/sharing" and "<policy>/non-sharing"
// points for one grid point, or the single "no exchange" point for the
// baseline.
func appendClassSeries(t *metrics.Table, pol core.Policy, x float64, rs []*sim.Result) {
	if pol.Kind == core.NoExchange {
		appendAgg(t, "no exchange", x, rs, allMin)
		return
	}
	appendAgg(t, pol.String()+"/sharing", x, rs, sharingMin)
	appendAgg(t, pol.String()+"/non-sharing", x, rs, nonSharingMin)
}

// All returns every experiment in paper order.
func All() []*Experiment {
	return []*Experiment{
		Table2(),
		Fig4(),
		Fig5(),
		Fig6(),
		Fig7(),
		Fig8(),
		Fig9(),
		Fig10(),
		Fig11(),
		Fig12(),
		FigW(),
		FigT(),
		AblationPreemption(),
		AblationCredit(),
		AblationSearch(),
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (*Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// Table2 echoes the simulation parameters in the layout of the paper's
// Table II, annotating the calibrated entries.
func Table2() *Experiment {
	return &Experiment{
		ID:          "table2",
		Title:       "Basic simulation parameters (Table II)",
		Description: "Echoes the run configuration; calibrated entries are marked.",
		Run: func(opts Options) (*Report, error) {
			cfg := base(opts)
			var b strings.Builder
			rows := []struct{ k, v string }{
				{"number of peers", fmt.Sprintf("%d", cfg.NumPeers)},
				{"download capacity", fmt.Sprintf("%g kbit/s", cfg.DownloadKbps)},
				{"upload capacity", fmt.Sprintf("%g kbit/s", cfg.UploadKbps)},
				{"ul/dl slot size", fmt.Sprintf("%g kbit/s", cfg.SlotKbps)},
				{"content categories", fmt.Sprintf("%d (paper: 300; availability calibration)", cfg.Catalog.Categories)},
				{"objects per category", fmt.Sprintf("uniform(%d,%d) (paper: uniform(1,300); availability calibration)",
					cfg.Catalog.ObjectsPerCategoryMin, cfg.Catalog.ObjectsPerCategoryMax)},
				{"categories/peer", fmt.Sprintf("uniform(%d,%d)", cfg.Catalog.CategoriesPerPeerMin, cfg.Catalog.CategoriesPerPeerMax)},
				{"category popularity", fmt.Sprintf("f=%g", cfg.Catalog.CategoryFactor)},
				{"object popularity", fmt.Sprintf("f=%g", cfg.Catalog.ObjectFactor)},
				{"object size", fmt.Sprintf("%g MB (all objects)", cfg.ObjectKbits/8000)},
				{"storage capacity per peer", fmt.Sprintf("uniform(%d,%d) objects", cfg.StorageMinObjects, cfg.StorageMaxObjects)},
				{"queue for incoming requests", fmt.Sprintf("%d", cfg.IRQCapacity)},
				{"max pending objects", fmt.Sprintf("%d", cfg.MaxPending)},
				{"fraction of freeloaders", fmt.Sprintf("%g%%", cfg.FreeriderFrac*100)},
			}
			b.WriteString("# Table II: basic simulation parameters\n")
			for _, r := range rows {
				fmt.Fprintf(&b, "%s\t%s\n", r.k, r.v)
			}
			return &Report{Text: b.String()}, nil
		},
	}
}

// Fig4 reproduces "Mean download time vs. upload capacity".
func Fig4() *Experiment {
	return &Experiment{
		ID:          "fig4",
		Title:       "Mean download time vs. upload capacity (Figure 4)",
		Description: "Sweeps upload capacity under four policies; reports per-class mean download minutes.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Figure 4", XLabel: "upload capacity (kb/s)", YLabel: "mean download time (minutes)"}
			var pts []point
			for _, ul := range uploadSweep(opts.Quick) {
				for _, pol := range figurePolicies() {
					cfg := base(opts)
					cfg.UploadKbps = ul
					cfg.Policy = pol
					pts = append(pts, point{
						label: fmt.Sprintf("fig4 ul=%g %s", ul, pol),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							appendClassSeries(t, pol, ul, rs)
							opts.progress("fig4 ul=%g %s: sharing %.1f non %.1f",
								ul, pol, mean(rs, sharingMin), mean(rs, nonSharingMin))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// Fig5 reproduces "Fraction of exchange transfers vs. upload capacity".
func Fig5() *Experiment {
	return &Experiment{
		ID:          "fig5",
		Title:       "Fraction of exchange transfers vs. upload capacity (Figure 5)",
		Description: "Sweeps upload capacity under the three exchange policies; reports the exchange share of sessions.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Figure 5", XLabel: "upload capacity (kb/s)", YLabel: "fraction of sessions"}
			pols := []core.Policy{core.PolicyPairwise, core.PolicyN2, core.Policy2N}
			var pts []point
			for _, ul := range uploadSweep(opts.Quick) {
				for _, pol := range pols {
					cfg := base(opts)
					cfg.UploadKbps = ul
					cfg.Policy = pol
					pts = append(pts, point{
						label: fmt.Sprintf("fig5 ul=%g %s", ul, pol),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							appendAgg(t, pol.String(), ul, rs, exchFraction)
							opts.progress("fig5 ul=%g %s: fraction %.3f", ul, pol, mean(rs, exchFraction))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// Fig6 reproduces "Mean download times vs. maximum exchange ring size N".
func Fig6() *Experiment {
	return &Experiment{
		ID:          "fig6",
		Title:       "Mean download time vs. maximum exchange ring size (Figure 6)",
		Description: "Sweeps the ring-size cap N for N-2-way and 2-N-way search orders.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Figure 6", XLabel: "maximum exchange ring size N", YLabel: "mean download time (minutes)"}
			maxN := 7
			if opts.Quick {
				maxN = 5
			}
			var pts []point
			for n := 1; n <= maxN; n++ {
				pols := []core.Policy{}
				switch n {
				case 1:
					pols = append(pols, core.PolicyNoExchange)
				case 2:
					pols = append(pols, core.PolicyPairwise)
				default:
					pols = append(pols,
						core.Policy{Kind: core.LongFirst, MaxRing: n},
						core.Policy{Kind: core.ShortFirst, MaxRing: n})
				}
				for _, pol := range pols {
					cfg := base(opts)
					cfg.UploadKbps = 40 // the loaded regime, where ring size matters
					cfg.Policy = pol
					pts = append(pts, point{
						label: fmt.Sprintf("fig6 N=%d %s", n, pol),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							// The paper plots both search orders as N-2-way and
							// 2-N-way series; N=1 and N=2 are shared endpoints.
							names := [][2]string{{"N-2-way/sharing", "N-2-way/non-sharing"}, {"2-N-way/sharing", "2-N-way/non-sharing"}}
							var which [][2]string
							switch pol.Kind {
							case core.NoExchange, core.PairwiseOnly:
								which = names
							case core.LongFirst:
								which = names[:1]
							case core.ShortFirst:
								which = names[1:]
							}
							for _, pair := range which {
								appendAgg(t, pair[0], float64(n), rs, sharingMin)
								appendAgg(t, pair[1], float64(n), rs, nonSharingMin)
							}
							opts.progress("fig6 N=%d %s: sharing %.1f non %.1f",
								n, pol, mean(rs, sharingMin), mean(rs, nonSharingMin))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// cdfTable builds the per-class CDF table for Figures 7 and 8.
func cdfTable(title, xlabel string, g *metrics.Grouped, points int) *metrics.Table {
	t := &metrics.Table{Title: title, XLabel: xlabel, YLabel: "fraction of sessions"}
	keys := g.Keys()
	sort.Strings(keys)
	for _, key := range keys {
		s := g.Get(key)
		for _, pt := range s.CDF(points) {
			t.Append(key, pt.V, pt.F)
		}
	}
	return t
}

// Fig7 reproduces "CDF for transfer bytes per traffic type".
func Fig7() *Experiment {
	return &Experiment{
		ID:          "fig7",
		Title:       "CDF of data transferred per session, by traffic type (Figure 7)",
		Description: "One loaded run under 2-5-way; per-class session volume CDFs.",
		Run: func(opts Options) (*Report, error) {
			opts.Replicas = 1 // distributional figure: one run, no aggregation
			var t *metrics.Table
			cfg := base(opts)
			cfg.UploadKbps = 40
			cfg.Policy = core.Policy2N
			pts := []point{{
				label: "fig7",
				cfg:   cfg,
				emit: func(rs []*sim.Result) {
					t = cdfTable("Figure 7", "amount of data transferred per session (kB)", rs[0].SessionVolumeKB, 25)
					opts.progress("fig7: %d session classes", len(t.Series))
				},
			}}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// Fig8 reproduces "CDF for transfer starting times per traffic type".
func Fig8() *Experiment {
	return &Experiment{
		ID:          "fig8",
		Title:       "CDF of transfer waiting times, by traffic type (Figure 8)",
		Description: "One loaded run under 2-5-way; per-class request-to-start waiting-time CDFs.",
		Run: func(opts Options) (*Report, error) {
			opts.Replicas = 1 // distributional figure: one run, no aggregation
			var t *metrics.Table
			cfg := base(opts)
			cfg.UploadKbps = 40
			cfg.Policy = core.Policy2N
			pts := []point{{
				label: "fig8",
				cfg:   cfg,
				emit: func(rs []*sim.Result) {
					t = cdfTable("Figure 8", "waiting time (minutes)", rs[0].WaitingTimeMin, 25)
					opts.progress("fig8: %d session classes", len(t.Series))
				},
			}}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// Fig9 reproduces "Mean download time vs. object popularity factor".
func Fig9() *Experiment {
	return &Experiment{
		ID:          "fig9",
		Title:       "Mean download time vs. object popularity factor (Figure 9)",
		Description: "Sweeps the popularity factor f (categories and objects) under four policies.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Figure 9", XLabel: "object popularity factor f", YLabel: "mean download time (minutes)"}
			var pts []point
			for _, f := range popularitySweep(opts.Quick) {
				for _, pol := range figurePolicies() {
					cfg := base(opts)
					cfg.UploadKbps = 40
					cfg.Catalog.CategoryFactor = f
					cfg.Catalog.ObjectFactor = f
					cfg.Policy = pol
					pts = append(pts, point{
						label: fmt.Sprintf("fig9 f=%g %s", f, pol),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							appendClassSeries(t, pol, f, rs)
							opts.progress("fig9 f=%g %s: sharing %.1f non %.1f",
								f, pol, mean(rs, sharingMin), mean(rs, nonSharingMin))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// Fig10 reproduces "Transfer volume vs. object popularity factor".
func Fig10() *Experiment {
	return &Experiment{
		ID:          "fig10",
		Title:       "Transfer volume (MB) vs. object popularity factor (Figure 10)",
		Description: "Same sweep as Figure 9; reports mean megabytes received per peer of each class.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Figure 10", XLabel: "object popularity factor f", YLabel: "transfer volume (MB)"}
			sharingMB := func(r *sim.Result) float64 { return r.VolumePerSharingPeerMB }
			nonSharingMB := func(r *sim.Result) float64 { return r.VolumePerNonSharingPeerMB }
			allMB := func(r *sim.Result) float64 {
				return (r.VolumePerSharingPeerMB + r.VolumePerNonSharingPeerMB) / 2
			}
			var pts []point
			for _, f := range popularitySweep(opts.Quick) {
				for _, pol := range figurePolicies() {
					cfg := base(opts)
					cfg.UploadKbps = 40
					cfg.Catalog.CategoryFactor = f
					cfg.Catalog.ObjectFactor = f
					cfg.Policy = pol
					pts = append(pts, point{
						label: fmt.Sprintf("fig10 f=%g %s", f, pol),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							if pol.Kind == core.NoExchange {
								appendAgg(t, "no exchange", f, rs, allMB)
							} else {
								appendAgg(t, pol.String()+"/sharing", f, rs, sharingMB)
								appendAgg(t, pol.String()+"/non-sharing", f, rs, nonSharingMB)
							}
							opts.progress("fig10 f=%g %s: sharing %.0f MB non %.0f MB",
								f, pol, mean(rs, sharingMB), mean(rs, nonSharingMB))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// Fig11 reproduces "Ratio of mean download times for different maximum
// pending request sizes and number of categories per peer".
func Fig11() *Experiment {
	return &Experiment{
		ID:          "fig11",
		Title:       "Sharing vs. non-sharing speedup vs. max outstanding requests (Figure 11)",
		Description: "Sweeps MaxPending x categories-per-peer under 2-5-way; reports the download-time ratio.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Figure 11", XLabel: "max. outstanding requests per peer", YLabel: "speedup: mean download time, sharing vs. non-sharing"}
			pendings := []int{2, 4, 6, 8, 10}
			if opts.Quick {
				pendings = []int{2, 6, 10}
			}
			var pts []point
			for _, pending := range pendings {
				for _, cats := range []int{2, 4, 8} {
					cfg := base(opts)
					cfg.UploadKbps = 40
					cfg.MaxPending = pending
					cfg.Catalog.CategoriesPerPeerMin = cats
					cfg.Catalog.CategoriesPerPeerMax = cats
					cfg.Policy = core.Policy2N
					pts = append(pts, point{
						label: fmt.Sprintf("fig11 pending=%d cats=%d", pending, cats),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							appendAgg(t, fmt.Sprintf("cat/peer=%d", cats), float64(pending), rs, speedup)
							opts.progress("fig11 pending=%d cats=%d: speedup %.2f",
								pending, cats, mean(rs, speedup))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// Fig12 reproduces "Mean download times vs. fraction of non-sharing peers".
func Fig12() *Experiment {
	return &Experiment{
		ID:          "fig12",
		Title:       "Mean download time vs. fraction of non-sharing peers (Figure 12)",
		Description: "Sweeps the free-rider fraction under four policies.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Figure 12", XLabel: "fraction of non-sharing peers", YLabel: "mean download time (minutes)"}
			fracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
			if opts.Quick {
				fracs = []float64{0.2, 0.5, 0.8}
			}
			var pts []point
			for _, frac := range fracs {
				for _, pol := range figurePolicies() {
					cfg := base(opts)
					cfg.UploadKbps = 40
					cfg.FreeriderFrac = frac
					cfg.Policy = pol
					pts = append(pts, point{
						label: fmt.Sprintf("fig12 frac=%g %s", frac, pol),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							appendClassSeries(t, pol, frac, rs)
							opts.progress("fig12 frac=%g %s: sharing %.1f non %.1f",
								frac, pol, mean(rs, sharingMin), mean(rs, nonSharingMin))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// AblationPreemption quantifies the contribution of reclaiming non-exchange
// slots, a design choice the paper's mechanism mandates.
func AblationPreemption() *Experiment {
	return &Experiment{
		ID:          "ablation-preemption",
		Title:       "Ablation: preempting non-exchange transfers for new exchanges",
		Description: "Compares sharing speedup with and without slot reclamation.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Ablation: preemption", XLabel: "upload capacity (kb/s)", YLabel: "speedup sharing vs non-sharing"}
			uls := []float64{80, 40}
			if opts.Quick {
				uls = []float64{40, 20}
			}
			var pts []point
			for _, ul := range uls {
				for _, disable := range []bool{false, true} {
					cfg := base(opts)
					cfg.UploadKbps = ul
					cfg.Policy = core.Policy2N
					cfg.DisablePreemption = disable
					name := "with preemption"
					if disable {
						name = "without preemption"
					}
					pts = append(pts, point{
						label: fmt.Sprintf("ablation-preemption ul=%g %s", ul, name),
						cfg:   cfg,
						emit: func(rs []*sim.Result) {
							appendAgg(t, name, ul, rs, speedup)
							preemptions := 0
							for _, r := range rs {
								preemptions += r.Preemptions
							}
							opts.progress("ablation-preemption ul=%g %s: speedup %.2f preemptions %d",
								ul, name, mean(rs, speedup), preemptions/len(rs))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}
