package experiment

import (
	"fmt"

	"barter/internal/core"
	"barter/internal/credit"
	"barter/internal/metrics"
	"barter/internal/sim"
	"barter/internal/strategy"
)

// classMin extracts a strategy class's mean download minutes from a result.
func classMin(label string) func(*sim.Result) float64 {
	return func(r *sim.Result) float64 { return r.ClassMeanDownloadMin(label) }
}

// FigW goes beyond the paper's static free-rider (Figure 12) to the richer
// adversary space the survey literature considers canonical: adaptive
// free-riders (contribute only while refused), whitewashers (rejoin under a
// fresh identity to shed reputation state), and partial sharers (throttled
// upload slots). Each adversary class is swept against a population of
// sharers plus an equal-sized static free-rider control, under two
// mechanisms: exchange priority (2-5-way) and a credit ranking (the
// KaZaA-style participation level, honestly reported, which decays for
// leeches and is exactly what whitewashing launders).
func FigW() *Experiment {
	return &Experiment{
		ID:          "figw",
		Title:       "Mean download time vs. adversary fraction: exchange vs. credit ranking (Figure W)",
		Description: "Sweeps adaptive free-riders, whitewashers, and partial sharers (with a static free-rider control) under exchange priority and a credit ranking.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{
				Title:  "Figure W",
				XLabel: "fraction of adversarial peers",
				YLabel: "mean download time (minutes)",
			}
			fracs := []float64{0.1, 0.2, 0.3}
			if opts.Quick {
				fracs = []float64{0.15, 0.3}
			}
			adversaries := []strategy.Strategy{
				strategy.AdaptiveFreerider(),
				strategy.Whitewasher(),
				strategy.PartialSharer(),
			}
			type mech struct {
				name   string
				policy core.Policy
				ranker func() sim.Ranker
			}
			mechs := []mech{
				{name: "exchange", policy: core.Policy2N, ranker: func() sim.Ranker { return nil }},
				{name: "credit", policy: core.PolicyNoExchange, ranker: func() sim.Ranker { return credit.NewKaZaA(nil) }},
			}
			var pts []point
			for _, frac := range fracs {
				for _, adv := range adversaries {
					for _, m := range mechs {
						cfg := base(opts)
						cfg.UploadKbps = 40 // the loaded regime, where incentives bite
						cfg.Policy = m.policy
						cfg.Mix = strategy.Mix{
							{Strategy: adv, Frac: frac},
							{Strategy: strategy.NonSharing(), Frac: frac},
							{Strategy: strategy.Sharing(), Frac: 1 - 2*frac},
						}
						pts = append(pts, point{
							label: fmt.Sprintf("figw frac=%g %s %s", frac, m.name, adv.Name),
							cfg:   cfg,
							// Rankers are stateful: build one per replica (see
							// runner.Job.Finalize).
							finalize: func(c sim.Config) sim.Config {
								c.Ranker = m.ranker()
								return c
							},
							emit: func(rs []*sim.Result) {
								prefix := m.name + ":" + adv.Name
								appendAgg(t, prefix+"/"+strategy.LabelSharing, frac, rs, classMin(strategy.LabelSharing))
								appendAgg(t, prefix+"/"+strategy.LabelNonSharing, frac, rs, classMin(strategy.LabelNonSharing))
								appendAgg(t, prefix+"/"+adv.Name, frac, rs, classMin(adv.Name))
								extra := ""
								if c := rs[0].Class(adv.Name); c != nil && (c.Whitewashes > 0 || c.Flips > 0) {
									extra = fmt.Sprintf(" (whitewashes %d, flips %d)", c.Whitewashes, c.Flips)
								}
								opts.progress("figw frac=%g %s vs %s: sharing %.1f control %.1f adversary %.1f%s",
									frac, m.name, adv.Name,
									mean(rs, classMin(strategy.LabelSharing)),
									mean(rs, classMin(strategy.LabelNonSharing)),
									mean(rs, classMin(adv.Name)), extra)
							},
						})
					}
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}
