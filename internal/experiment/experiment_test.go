package experiment

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"testing"

	"barter/internal/metrics"
	"barter/internal/sim"
)

func quickOpts() Options { return Options{Seed: 1, Quick: true} }

// skipShort gates the quick-world figure reproductions out of `go test
// -short`: each one runs a full sweep grid (seconds apiece, more under
// -race). Short mode keeps the registry, TSV, grid-machinery, and
// distributional tests, which exercise the same code paths on one run or
// none; the full suite and CI's long job run everything.
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("figure sweep skipped in -short; covered by the full suite")
	}
}

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	rep, err := e.Run(quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "figw", "figt",
		"ablation-preemption", "ablation-credit", "ablation-search",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("registry[%d] = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Description == "" || all[i].Run == nil {
			t.Fatalf("experiment %q incomplete", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID found a nonexistent experiment")
	}
}

func seriesY(t *testing.T, tab *metrics.Table, name string) []float64 {
	t.Helper()
	s := tab.Get(name)
	if s == nil {
		t.Fatalf("series %q missing; have %v", name, seriesNames(tab))
	}
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

func seriesNames(tab *metrics.Table) []string {
	var names []string
	for _, s := range tab.Series {
		names = append(names, s.Name)
	}
	return names
}

func TestTable2MentionsPaperParameters(t *testing.T) {
	rep := runExp(t, "table2")
	for _, want := range []string{"number of peers", "upload capacity", "freeloaders", "max pending"} {
		if !strings.Contains(rep.Text, want) {
			t.Fatalf("table2 missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "fig4")
	tab := rep.Tables[0]
	for _, name := range []string{
		"pairwise/sharing", "pairwise/non-sharing",
		"5-2-way/sharing", "5-2-way/non-sharing",
		"2-5-way/sharing", "2-5-way/non-sharing",
		"no exchange",
	} {
		if tab.Get(name) == nil {
			t.Fatalf("fig4 missing series %q; have %v", name, seriesNames(tab))
		}
	}
	// Paper shape: at the tightest capacity (last sweep point), sharing
	// users beat non-sharing users under every exchange policy.
	for _, pol := range []string{"pairwise", "5-2-way", "2-5-way"} {
		sh := seriesY(t, tab, pol+"/sharing")
		non := seriesY(t, tab, pol+"/non-sharing")
		last := len(sh) - 1
		if sh[last] >= non[last] {
			t.Errorf("fig4 %s: sharing %.1f not below non-sharing %.1f at tightest capacity",
				pol, sh[last], non[last])
		}
	}
}

func TestFig5FractionRisesWithLoad(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "fig5")
	tab := rep.Tables[0]
	for _, pol := range []string{"pairwise", "5-2-way", "2-5-way"} {
		ys := seriesY(t, tab, pol)
		for _, y := range ys {
			if y < 0 || y > 1 {
				t.Fatalf("fig5 %s: fraction %v out of [0,1]", pol, y)
			}
		}
		// x runs from high capacity to low; the fraction at the loaded end
		// must exceed the unloaded end (paper: grows almost linearly).
		if ys[len(ys)-1] <= ys[0] {
			t.Errorf("fig5 %s: fraction did not grow with load (%v)", pol, ys)
		}
	}
}

func TestFig6RingBenefitShape(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "fig6")
	tab := rep.Tables[0]
	// Paper shape: allowing rings (N=2) differentiates the classes relative
	// to N=1 (no exchange).
	sh := seriesY(t, tab, "2-N-way/sharing")
	non := seriesY(t, tab, "2-N-way/non-sharing")
	if len(sh) < 3 {
		t.Fatalf("fig6 too few points: %d", len(sh))
	}
	gapN1 := non[0] / sh[0]
	gapN2 := non[1] / sh[1]
	if gapN2 <= gapN1*0.98 {
		t.Errorf("fig6: pairwise (N=2) gap %.2f not above no-exchange gap %.2f", gapN2, gapN1)
	}
}

func TestFig7CDFsWellFormed(t *testing.T) {
	rep := runExp(t, "fig7")
	tab := rep.Tables[0]
	if tab.Get("non-exchange") == nil || tab.Get("pairwise") == nil {
		t.Fatalf("fig7 missing base classes; have %v", seriesNames(tab))
	}
	for _, s := range tab.Series {
		prev := -1.0
		for _, p := range s.Points {
			if p.Y < prev || p.Y < 0 || p.Y > 1 {
				t.Fatalf("fig7 %s: CDF not monotone in [0,1]", s.Name)
			}
			prev = p.Y
		}
	}
}

func TestFig8WaitingWorseForNonExchange(t *testing.T) {
	rep := runExp(t, "fig8")
	tab := rep.Tables[0]
	nx := tab.Get("non-exchange")
	pw := tab.Get("pairwise")
	if nx == nil || pw == nil {
		t.Fatalf("fig8 missing classes; have %v", seriesNames(tab))
	}
	// Paper shape: exchange transfers start much sooner; compare medians
	// (x value where the CDF crosses 0.5).
	med := func(s *metrics.Series) float64 {
		for _, p := range s.Points {
			if p.Y >= 0.5 {
				return p.X
			}
		}
		return math.Inf(1)
	}
	if med(pw) > med(nx) {
		t.Errorf("fig8: pairwise median wait %.1f above non-exchange %.1f", med(pw), med(nx))
	}
}

func TestFig9PopularitySweep(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "fig9")
	tab := rep.Tables[0]
	sh := seriesY(t, tab, "2-5-way/sharing")
	non := seriesY(t, tab, "2-5-way/non-sharing")
	// Differentiation exists at the zipf-like end (last point).
	last := len(sh) - 1
	if sh[last] >= non[last] {
		t.Errorf("fig9: no differentiation at f=1 (sharing %.1f, non %.1f)", sh[last], non[last])
	}
}

func TestFig10VolumesPositive(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "fig10")
	tab := rep.Tables[0]
	sh := seriesY(t, tab, "2-5-way/sharing")
	non := seriesY(t, tab, "2-5-way/non-sharing")
	for i := range sh {
		if sh[i] <= 0 {
			t.Fatalf("fig10: non-positive sharing volume %v", sh[i])
		}
		// Paper shape: sharers move more data than free-riders.
		if sh[i] <= non[i] {
			t.Errorf("fig10: sharing volume %.0f MB not above non-sharing %.0f MB", sh[i], non[i])
		}
	}
}

func TestFig11SpeedupsPresent(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "fig11")
	tab := rep.Tables[0]
	for _, name := range []string{"cat/peer=2", "cat/peer=4", "cat/peer=8"} {
		ys := seriesY(t, tab, name)
		for _, y := range ys {
			if math.IsNaN(y) || y <= 0 {
				t.Fatalf("fig11 %s: bad speedup %v", name, y)
			}
		}
	}
}

func TestFig12GapPersistsAcrossFreeriderFractions(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "fig12")
	tab := rep.Tables[0]
	sh := seriesY(t, tab, "2-5-way/sharing")
	non := seriesY(t, tab, "2-5-way/non-sharing")
	// Paper: the gap persists regardless of the non-sharing fraction.
	better := 0
	for i := range sh {
		if sh[i] < non[i] {
			better++
		}
	}
	if better < len(sh)-1 {
		t.Errorf("fig12: sharing beat non-sharing at only %d of %d fractions", better, len(sh))
	}
}

func TestFigWAdversaries(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "figw")
	tab := rep.Tables[0]
	// Every mechanism x adversary x class series must exist with finite,
	// positive download times at every swept fraction.
	for _, mech := range []string{"exchange", "credit"} {
		for _, adv := range []string{"adaptive", "whitewasher", "partial"} {
			for _, class := range []string{"sharing", "non-sharing", adv} {
				for _, y := range seriesY(t, tab, fmt.Sprintf("%s:%s/%s", mech, adv, class)) {
					if math.IsNaN(y) || y <= 0 {
						t.Fatalf("%s:%s/%s has bad value %v", mech, adv, class, y)
					}
				}
			}
		}
	}
	// The canonical whitewashing result: under the credit ranking the
	// whitewasher launders its history and clearly beats the static
	// free-rider control at the lowest adversary fraction, where the
	// control's participation level has decayed the most.
	wwCredit := seriesY(t, tab, "credit:whitewasher/whitewasher")
	ctlCredit := seriesY(t, tab, "credit:whitewasher/non-sharing")
	if wwCredit[0] >= ctlCredit[0] {
		t.Errorf("credit ranking: whitewasher %.1f min not faster than control %.1f min",
			wwCredit[0], ctlCredit[0])
	}
	// Under exchange, whitewashing buys nothing: the whitewasher stays in
	// free-rider territory, far from the sharing class.
	wwExch := seriesY(t, tab, "exchange:whitewasher/whitewasher")
	shExch := seriesY(t, tab, "exchange:whitewasher/sharing")
	if wwExch[0] <= shExch[0] {
		t.Errorf("exchange: whitewasher %.1f min faster than sharers %.1f min (whitewashing should not pay)",
			wwExch[0], shExch[0])
	}
	// Exchange coerces the adaptive free-rider into contributing: it lands
	// near the sharing class, well ahead of the static control.
	adExch := seriesY(t, tab, "exchange:adaptive/adaptive")
	adCtl := seriesY(t, tab, "exchange:adaptive/non-sharing")
	for i := range adExch {
		if adExch[i] >= adCtl[i] {
			t.Errorf("exchange: adaptive %.1f min not faster than static control %.1f min at point %d",
				adExch[i], adCtl[i], i)
		}
	}
}

func TestAblationPreemption(t *testing.T) {
	rep := runExp(t, "ablation-preemption")
	tab := rep.Tables[0]
	with := seriesY(t, tab, "with preemption")
	without := seriesY(t, tab, "without preemption")
	if len(with) != len(without) {
		t.Fatalf("series lengths differ")
	}
	for _, y := range append(append([]float64{}, with...), without...) {
		if math.IsNaN(y) || y <= 0 {
			t.Fatalf("bad speedup value %v", y)
		}
	}
}

func TestAblationCreditOrdering(t *testing.T) {
	rep := runExp(t, "ablation-credit")
	tab := rep.Tables[0]
	exch := seriesY(t, tab, "exchange (2-5-way)")
	fifo := seriesY(t, tab, "fifo (no incentive)")
	kazaa := seriesY(t, tab, "kazaa level (cheated)")
	// The paper's core claim: exchanges discriminate, cheated self-reports
	// do not. Compare at the most loaded sweep point.
	last := len(exch) - 1
	if exch[last] <= fifo[last] {
		t.Errorf("exchange speedup %.2f not above fifo %.2f", exch[last], fifo[last])
	}
	if kazaa[last] >= exch[last] {
		t.Errorf("cheated kazaa speedup %.2f not below exchange %.2f", kazaa[last], exch[last])
	}
}

func TestAblationSearchBudget(t *testing.T) {
	rep := runExp(t, "ablation-search")
	tab := rep.Tables[0]
	frac := seriesY(t, tab, "exchange fraction")
	if len(frac) < 2 {
		t.Fatal("too few budget points")
	}
	// A tiny budget must not beat a large one by much; mostly this checks
	// the sweep runs and produces sane fractions.
	for _, f := range frac {
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v out of range", f)
		}
	}
}

func TestReportTSV(t *testing.T) {
	tab := &metrics.Table{Title: "Figure X", XLabel: "x", YLabel: "y"}
	tab.Append("pairwise", 1, 2)
	tab.Append("pairwise", 2, 3)
	rep := &Report{Text: "preamble", Tables: []*metrics.Table{tab}}
	out := rep.TSV()
	for _, want := range []string{"preamble\n", "# Figure X", "pairwise"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Fatalf("default seed = %d, want 1", o.seed())
	}
	o.progress("no sink, must not panic")
}

// tinyOpts shrink the quick world further so grid-machinery tests stay fast
// enough for -short -race.
func tinyCfg(opts Options) sim.Config {
	cfg := base(opts)
	cfg.NumPeers = 12
	cfg.Duration = 5_000
	cfg.StorageMinObjects = 4
	cfg.StorageMaxObjects = 8
	return cfg
}

// TestGridDeterministicAcrossParallelism is the runner integration contract
// at the experiment layer: the same grid emits identical tables at any
// worker count. It runs in short mode as the quick equivalent of the full
// figure sweeps.
func TestGridDeterministicAcrossParallelism(t *testing.T) {
	build := func(parallel int) (string, []string) {
		tab := &metrics.Table{Title: "grid", XLabel: "ul", YLabel: "frac"}
		var progress []string
		opts := Options{Seed: 1, Quick: true, Parallel: parallel}
		var pts []point
		for _, ul := range []float64{40, 30, 20} {
			cfg := tinyCfg(opts)
			cfg.UploadKbps = ul
			pts = append(pts, point{
				label: "grid",
				cfg:   cfg,
				emit: func(rs []*sim.Result) {
					appendAgg(tab, "frac", ul, rs, exchFraction)
					progress = append(progress, fmt.Sprintf("ul=%g frac=%.4f", ul, mean(rs, exchFraction)))
				},
			})
		}
		if err := runGrid(opts, pts); err != nil {
			t.Fatal(err)
		}
		return tab.TSV(), progress
	}
	seqTSV, seqProg := build(1)
	parTSV, parProg := build(8)
	if seqTSV != parTSV {
		t.Fatalf("tables diverge across parallelism:\n%s\nvs\n%s", seqTSV, parTSV)
	}
	if !slices.Equal(seqProg, parProg) {
		t.Fatalf("per-point summaries diverge:\n%v\nvs\n%v", seqProg, parProg)
	}
}

// TestGridReplication checks the mean ± 95% CI opt-in: replicated points
// emit the CI series, the mean lies inside the replica range, and a single
// replica reproduces the unreplicated table byte for byte.
func TestGridReplication(t *testing.T) {
	run := func(replicas int) *metrics.Table {
		tab := &metrics.Table{Title: "grid", XLabel: "ul", YLabel: "frac"}
		opts := Options{Seed: 1, Quick: true, Parallel: 4, Replicas: replicas}
		cfg := tinyCfg(opts)
		cfg.UploadKbps = 30
		pts := []point{{
			label: "grid",
			cfg:   cfg,
			emit: func(rs []*sim.Result) {
				if len(rs) != max(replicas, 1) {
					t.Fatalf("emit got %d replicas, want %d", len(rs), max(replicas, 1))
				}
				appendAgg(tab, "frac", 30, rs, exchFraction)
			},
		}}
		if err := runGrid(opts, pts); err != nil {
			t.Fatal(err)
		}
		return tab
	}

	plain := run(0)
	if plain.Get("frac ±95%") != nil {
		t.Fatal("unreplicated grid emitted a CI series")
	}
	rep := run(4)
	ci := rep.Get("frac ±95%")
	if ci == nil {
		t.Fatalf("replicated grid missing CI series; have %v", seriesNames(rep))
	}
	if ci.Points[0].Y < 0 {
		t.Fatalf("negative CI half-width %v", ci.Points[0].Y)
	}
	m := rep.Get("frac").Points[0].Y
	if math.IsNaN(m) || m < 0 || m > 1 {
		t.Fatalf("replica mean %v out of range", m)
	}
}

// TestShardsOneMatchesLegacyEngine pins the sharded engine's compatibility
// contract at the figure level: Shards=1 selects the single-threaded engine,
// so its TSV must be byte-identical to the default path on the figures the
// paper's headline claims rest on.
func TestShardsOneMatchesLegacyEngine(t *testing.T) {
	skipShort(t)
	for _, id := range []string{"fig4", "fig12"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		legacy, err := e.Run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		opts := quickOpts()
		opts.Shards = 1
		sharded, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if legacy.TSV() != sharded.TSV() {
			t.Errorf("%s: Shards=1 TSV differs from the legacy engine:\n%s\nvs\n%s",
				id, legacy.TSV(), sharded.TSV())
		}
	}
}

// TestShardedFigureDeterministicAcrossParallelism: a sharded figure emits
// identical TSV at any grid worker count and across repeated runs.
func TestShardedFigureDeterministicAcrossParallelism(t *testing.T) {
	skipShort(t)
	e, ok := ByID("fig4")
	if !ok {
		t.Fatal("fig4 not registered")
	}
	run := func(parallel int) string {
		opts := quickOpts()
		opts.Shards = 4
		opts.Parallel = parallel
		rep, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TSV()
	}
	seq := run(1)
	if par := run(8); seq != par {
		t.Fatalf("sharded fig4 TSV diverges across parallelism:\n%s\nvs\n%s", seq, par)
	}
}
