package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"barter/internal/swarm"
	"barter/internal/workload"
)

// mustBuiltin returns a fresh copy of a named builtin spec.
func mustBuiltin(t *testing.T, name string) *workload.Spec {
	t.Helper()
	spec, ok := workload.Builtin(name)
	if !ok {
		t.Fatalf("builtin workload %q missing", name)
	}
	return spec
}

// TestWorkloadRunParallelInvariant pins the runner contract for open-loop
// workload runs: the emitted TSV is byte-identical whether the replicas run
// on one worker or eight. This is the flash-crowd scheduling half of the
// trace acceptance criterion.
func TestWorkloadRunParallelInvariant(t *testing.T) {
	spec := mustBuiltin(t, "flash")
	var tsv []string
	for _, par := range []int{1, 8} {
		rep, err := WorkloadRun(spec, Options{Seed: 11, Quick: true, Parallel: par, Replicas: 2})
		if err != nil {
			t.Fatalf("WorkloadRun(parallel=%d): %v", par, err)
		}
		tsv = append(tsv, rep.TSV())
	}
	if tsv[0] != tsv[1] {
		t.Fatalf("workload TSV differs across -parallel:\n-- parallel 1 --\n%s\n-- parallel 8 --\n%s", tsv[0], tsv[1])
	}
	if !strings.Contains(tsv[0], "completed downloads") {
		t.Fatalf("workload TSV missing completed-downloads series:\n%s", tsv[0])
	}
}

// TestWorkloadRunCompletesDemand checks an open-loop run actually moves
// data: a constant-demand quick world completes a healthy share of its
// scheduled requests.
func TestWorkloadRunCompletesDemand(t *testing.T) {
	spec := mustBuiltin(t, "constant")
	rep, err := WorkloadRun(spec, Options{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tab := rep.Tables[0]
	completed := seriesY(t, tab, "completed downloads")
	if completed[0] <= 0 {
		t.Fatalf("open-loop constant workload completed %v downloads", completed[0])
	}
	meanMin := seriesY(t, tab, "mean download time (min)")
	if math.IsNaN(meanMin[0]) || meanMin[0] <= 0 {
		t.Fatalf("bad mean download time %v", meanMin[0])
	}
}

// TestTraceRoundTripParallelInvariant is the PR's acceptance criterion end
// to end: record a live wave swarm, read the trace back, and replay it in
// the simulator at -parallel 1 and -parallel 8 — the replay TSV must be
// byte-identical, because the runner derives every replica's seed from
// (job, replica) alone and the replay engine never mutates the shared
// trace.
func TestTraceRoundTripParallelInvariant(t *testing.T) {
	var buf bytes.Buffer
	res, err := swarm.Run(swarm.Config{
		Scenario: swarm.Wave,
		Nodes:    30,
		Quick:    true,
		Seed:     21,
		Record:   &buf,
	})
	if err != nil {
		t.Fatalf("wave swarm: %v", err)
	}
	if res.TraceEvents == 0 {
		t.Fatal("recorded run reported zero trace events")
	}
	tr, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read recorded trace: %v", err)
	}
	var tsv []string
	for _, par := range []int{1, 8} {
		rep, err := ReplayTrace(tr, Options{Seed: 7, Quick: true, Parallel: par, Replicas: 2})
		if err != nil {
			t.Fatalf("ReplayTrace(parallel=%d): %v", par, err)
		}
		tsv = append(tsv, rep.TSV())
	}
	if tsv[0] != tsv[1] {
		t.Fatalf("replay TSV differs across -parallel:\n-- parallel 1 --\n%s\n-- parallel 8 --\n%s", tsv[0], tsv[1])
	}
	tab := func() string { return tsv[0] }()
	if !strings.Contains(tab, "completed downloads") {
		t.Fatalf("replay TSV missing completed-downloads series:\n%s", tab)
	}
}

// TestReplayTraceRejectsInvalid ensures a malformed trace is refused before
// any simulation runs.
func TestReplayTraceRejectsInvalid(t *testing.T) {
	tr := &workload.Trace{
		Header: workload.Header{Kind: "header", Version: workload.TraceVersion},
	}
	if _, err := ReplayTrace(tr, quickOpts()); err == nil {
		t.Fatal("ReplayTrace accepted a trace with no nodes")
	}
}

// TestFigTTemporalShapes runs the temporal-workload figure in the quick
// world: every mechanism series must exist with finite positive speedups at
// all three demand shapes, and exchange must keep a speedup advantage over
// fifo under the flash shape — the incentive question the figure asks.
func TestFigTTemporalShapes(t *testing.T) {
	skipShort(t)
	rep := runExp(t, "figt")
	tab := rep.Tables[0]
	exch := seriesY(t, tab, "exchange (2-5-way)")
	fifo := seriesY(t, tab, "fifo (no incentive)")
	emule := seriesY(t, tab, "emule credit")
	for _, ys := range [][]float64{exch, fifo, emule} {
		if len(ys) != 3 {
			t.Fatalf("series has %d points, want 3 (one per demand shape)", len(ys))
		}
		for _, y := range ys {
			if math.IsNaN(y) || y <= 0 {
				t.Fatalf("bad speedup value %v", y)
			}
		}
	}
	// Flash crowd is the last sweep point.
	if exch[2] <= fifo[2] {
		t.Errorf("flash crowd: exchange speedup %.2f not above fifo %.2f", exch[2], fifo[2])
	}
}
