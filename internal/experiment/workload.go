package experiment

// Temporal-workload artifacts: the figt experiment sweeping demand shapes
// against incentive mechanisms, plus the two entry points the CLIs expose
// for the shared workload layer — open-loop spec runs (exchsim -workload)
// and trace replay (exchsim -trace). All three run through the same
// parallel grid runner as the figures, so their TSV is byte-identical at
// any -parallel setting.

import (
	"fmt"

	"barter/internal/core"
	"barter/internal/credit"
	"barter/internal/metrics"
	"barter/internal/sim"
	"barter/internal/workload"
)

// Per-replica extractors for workload runs.
func completedAll(r *sim.Result) float64 {
	return float64(r.CompletedSharing + r.CompletedNonSharing)
}
func workloadDropped(r *sim.Result) float64 { return float64(r.WorkloadDropped) }
func lookupFails(r *sim.Result) float64     { return float64(r.LookupFailures) }

// FigT is the temporal-workload figure: the builtin demand shapes crossed
// with the exchange mechanism and the credit-ranking baselines. It asks the
// incentive question under time-varying demand instead of the paper's
// steady closed loop: does exchange priority keep its sharing-class
// advantage through a flash crowd or a diurnal cycle?
func FigT() *Experiment {
	return &Experiment{
		ID:          "figt",
		Title:       "Sharing-class speedup under temporal demand shapes (workload layer)",
		Description: "Crosses the builtin workload specs (constant, diurnal, flash) with exchange and credit-ranking mechanisms; reports sharing vs. non-sharing speedup.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{
				Title:  "Figure T: temporal workloads",
				XLabel: "demand shape (0=constant, 1=diurnal, 2=flash)",
				YLabel: "speedup: mean download time, sharing vs. non-sharing",
			}
			type mech struct {
				name   string
				policy core.Policy
				ranker func() sim.Ranker
			}
			mechs := []mech{
				{name: "exchange (2-5-way)", policy: core.Policy2N, ranker: func() sim.Ranker { return nil }},
				{name: "fifo (no incentive)", policy: core.PolicyNoExchange, ranker: func() sim.Ranker { return nil }},
				{name: "emule credit", policy: core.PolicyNoExchange, ranker: func() sim.Ranker { return credit.NewEMule() }},
			}
			var pts []point
			for xi, shape := range []string{"constant", "diurnal", "flash"} {
				spec, ok := workload.Builtin(shape)
				if !ok {
					return nil, fmt.Errorf("experiment: unknown builtin workload %q", shape)
				}
				for _, m := range mechs {
					x := float64(xi)
					cfg := base(opts)
					cfg.UploadKbps = 40 // the loaded regime, as in the other incentive figures
					cfg.Policy = m.policy
					cfg.Workload = spec
					m := m
					pts = append(pts, point{
						label: fmt.Sprintf("figt shape=%s %s", shape, m.name),
						cfg:   cfg,
						// Stateful rankers are per-replica state: build them in
						// Finalize, never on the shared Config.
						finalize: func(c sim.Config) sim.Config {
							c.Ranker = m.ranker()
							return c
						},
						emit: func(rs []*sim.Result) {
							appendAgg(t, m.name, x, rs, speedup)
							opts.progress("figt shape=%s %s: speedup %.2f dropped %.0f",
								shape, m.name, mean(rs, speedup), mean(rs, workloadDropped))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// WorkloadRun executes one open-loop workload spec in the simulator through
// the parallel grid runner: Options.Replicas replicates it under derived
// seeds and Options.Parallel fans the replicas out, with byte-identical TSV
// at any worker count. This is exchsim -workload.
func WorkloadRun(spec *workload.Spec, opts Options) (*Report, error) {
	t := &metrics.Table{
		Title:  fmt.Sprintf("workload %s", specName(spec)),
		XLabel: "metric",
		YLabel: "value",
	}
	cfg := base(opts)
	cfg.Workload = spec
	pts := []point{{
		label: "workload " + specName(spec),
		cfg:   cfg,
		emit: func(rs []*sim.Result) {
			appendAgg(t, "completed downloads", 0, rs, completedAll)
			appendAgg(t, "mean download time (min)", 0, rs, allMin)
			appendAgg(t, "demand dropped at MaxPending", 0, rs, workloadDropped)
			appendAgg(t, "lookup failures", 0, rs, lookupFails)
			opts.progress("workload %s: completed %.0f mean %.1f min dropped %.0f",
				specName(spec), mean(rs, completedAll), mean(rs, allMin), mean(rs, workloadDropped))
		},
	}}
	if err := runGrid(opts, pts); err != nil {
		return nil, err
	}
	return &Report{Tables: []*metrics.Table{t}}, nil
}

// ReplayTrace re-runs a recorded trace (typically an exchswarm -record
// capture) in the simulator. The replayed world's shape comes from the
// trace header; the replay seed comes from Options, derived per replica by
// the runner — so the emitted TSV is byte-identical at any Options.Parallel
// for the same trace and options. This is exchsim -trace.
func ReplayTrace(tr *workload.Trace, opts Options) (*Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	label := tr.Header.Scenario
	if label == "" {
		label = "trace"
	}
	t := &metrics.Table{
		Title:  fmt.Sprintf("replay %s (%d events over %.1fs)", label, len(tr.Events), tr.Header.Horizon),
		XLabel: "metric",
		YLabel: "value",
	}
	cfg := base(opts)
	// The recorded horizon is wall-clock seconds; warmup exclusion belongs
	// to the steady-state figures, not to a replayed transient.
	cfg.WarmupFrac = 0
	cfg.Trace = tr
	pts := []point{{
		label: "replay " + label,
		cfg:   cfg,
		emit: func(rs []*sim.Result) {
			appendAgg(t, "completed downloads", 0, rs, completedAll)
			appendAgg(t, "mean download time (min)", 0, rs, allMin)
			appendAgg(t, "lookup failures", 0, rs, lookupFails)
			opts.progress("replay %s: completed %.0f mean %.1f min",
				label, mean(rs, completedAll), mean(rs, allMin))
		},
	}}
	if err := runGrid(opts, pts); err != nil {
		return nil, err
	}
	return &Report{Tables: []*metrics.Table{t}}, nil
}

// specName labels a spec in tables and progress lines.
func specName(s *workload.Spec) string {
	if s.Name != "" {
		return s.Name
	}
	return "custom"
}
