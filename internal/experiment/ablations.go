package experiment

import (
	"fmt"

	"barter/internal/core"
	"barter/internal/credit"
	"barter/internal/metrics"
	"barter/internal/sim"
)

// AblationCredit compares the exchange mechanism against the related-work
// incentive baselines of Section II: FIFO (no incentive), the eMule pairwise
// credit queue rank, and the KaZaA self-reported participation level with
// free-riders running the well-known level hack. The paper argues credits
// provide weak incentives and self-reports provide none; this experiment
// quantifies both claims in the same workload.
func AblationCredit() *Experiment {
	return &Experiment{
		ID:          "ablation-credit",
		Title:       "Ablation: exchange priority vs. credit-based baselines",
		Description: "Sharing speedup under exchange, FIFO, eMule credit, and (cheated) KaZaA levels.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Ablation: incentive mechanisms", XLabel: "upload capacity (kb/s)", YLabel: "speedup sharing vs non-sharing"}
			uls := []float64{80, 40}
			if opts.Quick {
				uls = []float64{40, 20}
			}
			type mech struct {
				name   string
				policy core.Policy
				ranker func(cfg *sim.Config) sim.Ranker
			}
			mechs := []mech{
				{name: "exchange (2-5-way)", policy: core.Policy2N, ranker: func(*sim.Config) sim.Ranker { return nil }},
				{name: "fifo (no incentive)", policy: core.PolicyNoExchange, ranker: func(*sim.Config) sim.Ranker { return nil }},
				{name: "emule credit", policy: core.PolicyNoExchange, ranker: func(*sim.Config) sim.Ranker { return credit.NewEMule() }},
				{name: "kazaa level (cheated)", policy: core.PolicyNoExchange, ranker: func(cfg *sim.Config) sim.Ranker {
					// Free-riders run the participation-level hack. Class
					// membership is derived the same way the simulator
					// assigns it, so the cheater set matches the
					// free-rider set exactly.
					classes := sim.PeerClasses(*cfg)
					return credit.NewKaZaA(func(p core.PeerID) bool { return !classes[p] })
				}},
			}
			var pts []point
			for _, ul := range uls {
				for _, m := range mechs {
					cfg := base(opts)
					cfg.UploadKbps = ul
					cfg.Policy = m.policy
					pts = append(pts, point{
						label: fmt.Sprintf("ablation-credit ul=%g %s", ul, m.name),
						cfg:   cfg,
						// The ranker is rebuilt per replica after seed
						// derivation: the KaZaA cheater set must track each
						// replica's own free-rider assignment.
						finalize: func(c sim.Config) sim.Config {
							c.Ranker = m.ranker(&c)
							return c
						},
						emit: func(rs []*sim.Result) {
							appendAgg(t, m.name, ul, rs, speedup)
							opts.progress("ablation-credit ul=%g %s: speedup %.2f",
								ul, m.name, mean(rs, speedup))
						},
					})
				}
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}

// AblationSearch quantifies the ring-search cost/benefit trade-off the
// paper's Section V raises: how much exchange density survives when peers
// bound their search effort aggressively.
func AblationSearch() *Experiment {
	return &Experiment{
		ID:          "ablation-search",
		Title:       "Ablation: bounded ring-search effort",
		Description: "Exchange fraction and speedup as the per-search node budget shrinks.",
		Run: func(opts Options) (*Report, error) {
			t := &metrics.Table{Title: "Ablation: search budget", XLabel: "search budget (nodes)", YLabel: "value"}
			budgets := []int{16, 64, 512, 4096}
			if opts.Quick {
				budgets = []int{16, 512}
			}
			var pts []point
			for _, budget := range budgets {
				cfg := base(opts)
				cfg.UploadKbps = 40
				cfg.Policy = core.Policy2N
				cfg.SearchBudget = budget
				pts = append(pts, point{
					label: fmt.Sprintf("ablation-search budget=%d", budget),
					cfg:   cfg,
					emit: func(rs []*sim.Result) {
						appendAgg(t, "exchange fraction", float64(budget), rs, exchFraction)
						appendAgg(t, "speedup", float64(budget), rs, speedup)
						opts.progress("ablation-search budget=%d: fraction %.3f speedup %.2f",
							budget, mean(rs, exchFraction), mean(rs, speedup))
					},
				})
			}
			if err := runGrid(opts, pts); err != nil {
				return nil, err
			}
			return &Report{Tables: []*metrics.Table{t}}, nil
		},
	}
}
