package core

import (
	"strings"
	"testing"

	"barter/internal/catalog"
	"barter/internal/rng"
)

func wantOf(obj catalog.ObjectID, providers ...PeerID) Want {
	m := make(map[PeerID]bool, len(providers))
	for _, p := range providers {
		m[p] = true
	}
	return Want{Object: obj, Providers: m}
}

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		pol Policy
		ok  bool
	}{
		{PolicyNoExchange, true},
		{PolicyPairwise, true},
		{Policy2N, true},
		{PolicyN2, true},
		{Policy{Kind: ShortFirst, MaxRing: 1}, false},
		{Policy{Kind: PolicyKind(99)}, false},
	}
	for _, tc := range cases {
		err := tc.pol.Validate()
		if tc.ok && err != nil {
			t.Errorf("%v: unexpected error %v", tc.pol, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%v: expected error", tc.pol)
		}
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[string]Policy{
		"no-exchange": PolicyNoExchange,
		"pairwise":    PolicyPairwise,
		"2-5-way":     Policy2N,
		"5-2-way":     PolicyN2,
		"2-7-way":     {Kind: ShortFirst, MaxRing: 7},
		"7-2-way":     {Kind: LongFirst, MaxRing: 7},
	}
	for want, pol := range cases {
		if got := pol.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestPolicyLimit(t *testing.T) {
	if PolicyNoExchange.Limit() != 0 {
		t.Error("NoExchange limit not 0")
	}
	if PolicyPairwise.Limit() != 2 {
		t.Error("Pairwise limit not 2")
	}
	if Policy2N.Limit() != 5 || PolicyN2.Limit() != 5 {
		t.Error("default N policies limit not 5")
	}
}

func TestBuildTreeEmptyIRQ(t *testing.T) {
	tree := BuildTree(1, nil, 5)
	if tree.Root != 1 || len(tree.Children) != 0 {
		t.Fatalf("empty IRQ tree = %+v", tree)
	}
	if tree.Depth() != 1 || tree.Size() != 1 {
		t.Fatalf("Depth/Size = %d/%d, want 1/1", tree.Depth(), tree.Size())
	}
}

func TestBuildTreeIncorporatesAttached(t *testing.T) {
	// C requested o3 from B (C had no requesters), B requested o2 from A.
	cTree := BuildTree(3, nil, 5)
	bTree := BuildTree(2, []IRQEntry{{Requester: 3, Object: 3, Attached: cTree}}, 5)
	aTree := BuildTree(1, []IRQEntry{{Requester: 2, Object: 2, Attached: bTree}}, 5)

	if aTree.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", aTree.Depth())
	}
	if len(aTree.Children) != 1 || aTree.Children[0].Peer != 2 || aTree.Children[0].Object != 2 {
		t.Fatalf("depth-2 child wrong: %+v", aTree.Children[0])
	}
	grand := aTree.Children[0].Children
	if len(grand) != 1 || grand[0].Peer != 3 || grand[0].Object != 3 {
		t.Fatalf("depth-3 child wrong: %+v", grand)
	}
}

// chain builds a linear request chain of n peers: peer i+1 requested object
// (i+1) from peer i, rooted at peer 0, pruned to maxDepth.
func chain(n, maxDepth int) *Tree {
	var attached *Tree
	for p := n - 1; p >= 1; p-- {
		var irq []IRQEntry
		if attached != nil {
			irq = []IRQEntry{{
				Requester: attached.Root,
				Object:    catalog.ObjectID(attached.Root),
				Attached:  attached,
			}}
		}
		attached = BuildTree(PeerID(p), irq, maxDepth)
	}
	var irq []IRQEntry
	if attached != nil {
		irq = []IRQEntry{{
			Requester: attached.Root,
			Object:    catalog.ObjectID(attached.Root),
			Attached:  attached,
		}}
	}
	return BuildTree(0, irq, maxDepth)
}

func TestBuildTreePrunesToMaxDepth(t *testing.T) {
	tree := chain(10, 5)
	if d := tree.Depth(); d != 5 {
		t.Fatalf("Depth = %d, want pruned to 5", d)
	}
}

func TestPruneDeepCopy(t *testing.T) {
	tree := chain(5, 5)
	pruned := tree.Prune(3)
	if pruned.Depth() != 3 {
		t.Fatalf("pruned depth = %d, want 3", pruned.Depth())
	}
	// Mutating the copy must not affect the original.
	pruned.Children[0].Peer = 99
	if tree.Children[0].Peer == 99 {
		t.Fatal("Prune shares nodes with the original")
	}
	if tree.Depth() != 5 {
		t.Fatalf("original depth changed to %d", tree.Depth())
	}
}

func TestPruneToRootOnly(t *testing.T) {
	tree := chain(5, 5)
	pruned := tree.Prune(1)
	if pruned.Depth() != 1 || len(pruned.Children) != 0 {
		t.Fatal("Prune(1) did not strip all children")
	}
}

func TestTreeString(t *testing.T) {
	tree := chain(3, 5)
	s := tree.String()
	for _, want := range []string{"P0", "P1 (wants o1)", "P2 (wants o2)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestFindRingPairwise(t *testing.T) {
	// B requested o10 from A; B provides o20 which A wants.
	tree := BuildTree(1, []IRQEntry{{Requester: 2, Object: 10}}, 5)
	wants := []Want{wantOf(20, 2)}
	ring, wi, stats, ok := FindRing(tree, wants, PolicyPairwise)
	if !ok {
		t.Fatal("pairwise ring not found")
	}
	if wi != 0 {
		t.Fatalf("want index = %d", wi)
	}
	if ring.Size() != 2 {
		t.Fatalf("ring size = %d, want 2", ring.Size())
	}
	if ring.Members[0] != (Member{Peer: 1, Gives: 10}) {
		t.Fatalf("member 0 = %+v", ring.Members[0])
	}
	if ring.Members[1] != (Member{Peer: 2, Gives: 20}) {
		t.Fatalf("member 1 = %+v", ring.Members[1])
	}
	if err := ring.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.NodesVisited == 0 {
		t.Fatal("stats not collected")
	}
}

// figure2Tree builds the shape of the paper's Figure 2: A's request tree
// with requesters P1, P2, P3 at depth 2; P2's subtree contains P9 at depth 3
// which owns an object A wants, so A can initiate a 3-way exchange
// A -> P2 -> P9 -> A.
func figure2Tree() *Tree {
	p9 := BuildTree(9, nil, 5)
	p2 := BuildTree(2, []IRQEntry{
		{Requester: 7, Object: 7},
		{Requester: 9, Object: 9, Attached: p9},
	}, 5)
	return BuildTree(1, []IRQEntry{
		{Requester: 11, Object: 11},
		{Requester: 2, Object: 2, Attached: p2},
		{Requester: 3, Object: 3},
	}, 5)
}

func TestFindRingThreeWayFigure2(t *testing.T) {
	tree := figure2Tree()
	wants := []Want{wantOf(100, 9)} // P9 owns o100 which A wants
	ring, _, _, ok := FindRing(tree, wants, Policy2N)
	if !ok {
		t.Fatal("3-way ring not found")
	}
	if ring.Size() != 3 {
		t.Fatalf("ring size = %d, want 3", ring.Size())
	}
	want := []Member{{Peer: 1, Gives: 2}, {Peer: 2, Gives: 9}, {Peer: 9, Gives: 100}}
	for i, m := range ring.Members {
		if m != want[i] {
			t.Fatalf("member %d = %+v, want %+v", i, m, want[i])
		}
	}
}

func TestFindRingNoExchangePolicy(t *testing.T) {
	tree := figure2Tree()
	wants := []Want{wantOf(100, 9)}
	if _, _, _, ok := FindRing(tree, wants, PolicyNoExchange); ok {
		t.Fatal("NoExchange policy found a ring")
	}
}

func TestFindRingPairwiseIgnoresDeeperProviders(t *testing.T) {
	tree := figure2Tree()
	wants := []Want{wantOf(100, 9)} // provider only at depth 3
	if _, _, _, ok := FindRing(tree, wants, PolicyPairwise); ok {
		t.Fatal("pairwise policy built a 3-way ring")
	}
}

func TestShortFirstPrefersShallow(t *testing.T) {
	tree := figure2Tree()
	// Both P3 (depth 2) and P9 (depth 3) provide a wanted object.
	wants := []Want{wantOf(100, 9), wantOf(200, 3)}
	ring, wi, _, ok := FindRing(tree, wants, Policy2N)
	if !ok {
		t.Fatal("no ring found")
	}
	if ring.Size() != 2 || ring.Members[1].Peer != 3 {
		t.Fatalf("ShortFirst chose %v, want pairwise with P3", ring)
	}
	if wi != 1 {
		t.Fatalf("want index = %d, want 1", wi)
	}
}

func TestLongFirstPrefersDeep(t *testing.T) {
	tree := figure2Tree()
	wants := []Want{wantOf(100, 9), wantOf(200, 3)}
	ring, wi, _, ok := FindRing(tree, wants, PolicyN2)
	if !ok {
		t.Fatal("no ring found")
	}
	if ring.Size() != 3 || ring.Members[2].Peer != 9 {
		t.Fatalf("LongFirst chose %v, want 3-way through P9", ring)
	}
	if wi != 0 {
		t.Fatalf("want index = %d, want 0", wi)
	}
}

func TestFindRingRespectsMaxRing(t *testing.T) {
	tree := chain(6, 6) // providers only reachable at depth 6
	wants := []Want{wantOf(100, 5)}
	if _, _, _, ok := FindRing(tree, wants, Policy{Kind: ShortFirst, MaxRing: 5}); ok {
		t.Fatal("ring exceeded MaxRing")
	}
	ring, _, _, ok := FindRing(tree, wants, Policy{Kind: ShortFirst, MaxRing: 6})
	if !ok || ring.Size() != 6 {
		t.Fatalf("6-way ring not found with MaxRing=6 (ok=%v)", ok)
	}
}

func TestFindRingSkipsRepeatedPeers(t *testing.T) {
	// The root itself appears at depth 3 (A requested from B, B from A):
	// a "ring" closing through the root would be degenerate.
	aAsRequester := BuildTree(1, nil, 5)
	b := BuildTree(2, []IRQEntry{{Requester: 1, Object: 50, Attached: aAsRequester}}, 5)
	tree := BuildTree(1, []IRQEntry{{Requester: 2, Object: 60, Attached: b}}, 5)
	wants := []Want{wantOf(70, 1)} // only "provider" is the root itself
	if _, _, _, ok := FindRing(tree, wants, Policy2N); ok {
		t.Fatal("ring contains the root twice")
	}
}

func TestFindRingFirstWantWins(t *testing.T) {
	tree := BuildTree(1, []IRQEntry{{Requester: 2, Object: 10}}, 5)
	wants := []Want{wantOf(20, 2), wantOf(30, 2)}
	_, wi, _, ok := FindRing(tree, wants, Policy2N)
	if !ok || wi != 0 {
		t.Fatalf("want index = %d (ok=%v), want 0", wi, ok)
	}
}

func TestFindRingNoProviders(t *testing.T) {
	tree := figure2Tree()
	wants := []Want{wantOf(100, 77)} // P77 not in the tree
	if _, _, _, ok := FindRing(tree, wants, Policy2N); ok {
		t.Fatal("found a ring with no in-tree provider")
	}
}

func TestFindRingEmptyWants(t *testing.T) {
	tree := figure2Tree()
	if _, _, _, ok := FindRing(tree, nil, Policy2N); ok {
		t.Fatal("found a ring with no wants")
	}
}

func TestRingGetsAndReceiver(t *testing.T) {
	ring := &Ring{Members: []Member{{Peer: 1, Gives: 10}, {Peer: 2, Gives: 20}, {Peer: 3, Gives: 30}}}
	if ring.Gets(0) != 30 || ring.Gets(1) != 10 || ring.Gets(2) != 20 {
		t.Fatal("Gets wrong")
	}
	if ring.Receiver(0) != 1 || ring.Receiver(2) != 0 {
		t.Fatal("Receiver wrong")
	}
	if !strings.Contains(ring.String(), "P1 -o10-> P2") {
		t.Fatalf("String = %q", ring.String())
	}
}

func TestRingValidate(t *testing.T) {
	bad := &Ring{Members: []Member{{Peer: 1}}}
	if bad.Validate() == nil {
		t.Fatal("size-1 ring validated")
	}
	dup := &Ring{Members: []Member{{Peer: 1}, {Peer: 1}}}
	if dup.Validate() == nil {
		t.Fatal("duplicate-peer ring validated")
	}
}

// randomTree builds a random request tree with distinct peers and records the
// parent edges so the property test can verify returned rings against the
// true request graph.
func randomTree(r *rng.RNG, maxDepth int) (*Tree, map[PeerID]PeerID, map[PeerID]catalog.ObjectID) {
	parent := make(map[PeerID]PeerID)
	edgeObj := make(map[PeerID]catalog.ObjectID)
	next := PeerID(1)
	tree := &Tree{Root: 0}
	type frame struct {
		nodes *[]*TreeNode
		peer  PeerID
		depth int
	}
	stack := []frame{{nodes: &tree.Children, peer: 0, depth: 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.depth >= maxDepth {
			continue
		}
		kids := r.Intn(3)
		for i := 0; i < kids && next < 60; i++ {
			obj := catalog.ObjectID(r.Intn(500))
			n := &TreeNode{Peer: next, Object: obj}
			parent[next] = f.peer
			edgeObj[next] = obj
			*f.nodes = append(*f.nodes, n)
			stack = append(stack, frame{nodes: &n.Children, peer: next, depth: f.depth + 1})
			next++
		}
	}
	return tree, parent, edgeObj
}

// TestPropertyRingsAreTrueCycles checks, over many random trees and provider
// sets, that any ring FindRing returns (a) starts at the root, (b) has
// distinct peers, (c) respects the size limit, and (d) follows real request
// edges, closing with a provider of the matched want.
func TestPropertyRingsAreTrueCycles(t *testing.T) {
	r := rng.New(2024)
	for iter := 0; iter < 500; iter++ {
		tree, parent, edgeObj := randomTree(r, 6)
		// Random providers: a handful of peers that exist in or out of tree.
		wants := make([]Want, 1+r.Intn(3))
		for i := range wants {
			prov := make(map[PeerID]bool)
			for j := 0; j < r.Intn(4); j++ {
				prov[PeerID(r.Intn(70))] = true
			}
			wants[i] = Want{Object: catalog.ObjectID(1000 + i), Providers: prov}
		}
		for _, pol := range []Policy{PolicyPairwise, Policy2N, PolicyN2, {Kind: LongFirst, MaxRing: 3}} {
			ring, wi, _, ok := FindRing(tree, wants, pol)
			if !ok {
				continue
			}
			if err := ring.Validate(); err != nil {
				t.Fatalf("iter %d %v: %v", iter, pol, err)
			}
			if ring.Members[0].Peer != tree.Root {
				t.Fatalf("iter %d: ring does not start at root", iter)
			}
			if ring.Size() > pol.Limit() || ring.Size() < 2 {
				t.Fatalf("iter %d %v: ring size %d outside [2, %d]", iter, pol, ring.Size(), pol.Limit())
			}
			// Each non-root member must be a tree child of the previous
			// member, receiving the object it requested on that edge.
			for i := 1; i < ring.Size(); i++ {
				m := ring.Members[i]
				if parent[m.Peer] != ring.Members[i-1].Peer {
					t.Fatalf("iter %d: member %d not a request-graph child", iter, i)
				}
				if edgeObj[m.Peer] != ring.Members[i-1].Gives {
					t.Fatalf("iter %d: member %d gives %d, edge wants %d",
						iter, i-1, ring.Members[i-1].Gives, edgeObj[m.Peer])
				}
			}
			last := ring.Members[ring.Size()-1]
			if !wants[wi].Providers[last.Peer] {
				t.Fatalf("iter %d: closing peer %d is not a provider of want %d", iter, last.Peer, wi)
			}
			if last.Gives != wants[wi].Object {
				t.Fatalf("iter %d: closing peer gives %d, want %d", iter, last.Gives, wants[wi].Object)
			}
		}
	}
}

func TestPropertyPolicyOrdering(t *testing.T) {
	r := rng.New(77)
	for iter := 0; iter < 300; iter++ {
		tree, _, _ := randomTree(r, 6)
		wants := []Want{{Object: 999, Providers: map[PeerID]bool{PeerID(r.Intn(60)): true, PeerID(r.Intn(60)): true}}}
		rs, _, _, okS := FindRing(tree, wants, Policy2N)
		rl, _, _, okL := FindRing(tree, wants, PolicyN2)
		if okS != okL {
			t.Fatalf("iter %d: ShortFirst ok=%v but LongFirst ok=%v", iter, okS, okL)
		}
		if okS && rs.Size() > rl.Size() {
			t.Fatalf("iter %d: ShortFirst ring (%d) larger than LongFirst ring (%d)",
				iter, rs.Size(), rl.Size())
		}
	}
}

func BenchmarkFindRing(b *testing.B) {
	r := rng.New(5)
	tree, _, _ := randomTree(r, 6)
	wants := []Want{
		{Object: 999, Providers: map[PeerID]bool{40: true}},
		{Object: 998, Providers: map[PeerID]bool{55: true}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindRing(tree, wants, Policy2N)
	}
}
