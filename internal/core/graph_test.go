package core

import (
	"testing"

	"barter/internal/catalog"
	"barter/internal/rng"
)

// graphOf adapts an explicit adjacency map to a Graph.
func graphOf(adj map[PeerID][]Edge) Graph {
	return Graph{Adj: func(p PeerID) []Edge { return adj[p] }}
}

func TestGraphPairwise(t *testing.T) {
	g := graphOf(map[PeerID][]Edge{
		1: {{Peer: 2, Object: 10}},
	})
	ring, wi, _, ok := g.FindRing(1, []Want{wantOf(20, 2)}, PolicyPairwise)
	if !ok || ring.Size() != 2 || wi != 0 {
		t.Fatalf("pairwise not found: ok=%v ring=%v", ok, ring)
	}
	if ring.Members[0] != (Member{Peer: 1, Gives: 10}) || ring.Members[1] != (Member{Peer: 2, Gives: 20}) {
		t.Fatalf("ring = %v", ring)
	}
}

func TestGraphThreeWay(t *testing.T) {
	// 2 requested o10 from 1; 3 requested o11 from 2; 3 provides o99.
	g := graphOf(map[PeerID][]Edge{
		1: {{Peer: 2, Object: 10}},
		2: {{Peer: 3, Object: 11}},
	})
	ring, _, _, ok := g.FindRing(1, []Want{wantOf(99, 3)}, Policy2N)
	if !ok || ring.Size() != 3 {
		t.Fatalf("3-way not found: ok=%v ring=%v", ok, ring)
	}
	want := []Member{{Peer: 1, Gives: 10}, {Peer: 2, Gives: 11}, {Peer: 3, Gives: 99}}
	for i, m := range ring.Members {
		if m != want[i] {
			t.Fatalf("member %d = %+v, want %+v", i, m, want[i])
		}
	}
}

func TestGraphShortVsLong(t *testing.T) {
	// Both a pairwise (via 4) and a 3-way (via 2 -> 3) are available.
	g := graphOf(map[PeerID][]Edge{
		1: {{Peer: 2, Object: 10}, {Peer: 4, Object: 12}},
		2: {{Peer: 3, Object: 11}},
	})
	wants := []Want{wantOf(99, 3, 4)}
	short, _, _, ok := g.FindRing(1, wants, Policy2N)
	if !ok || short.Size() != 2 || short.Members[1].Peer != 4 {
		t.Fatalf("ShortFirst = %v", short)
	}
	long, _, _, ok := g.FindRing(1, wants, PolicyN2)
	if !ok || long.Size() != 3 || long.Members[2].Peer != 3 {
		t.Fatalf("LongFirst = %v", long)
	}
}

func TestGraphFindRingVia(t *testing.T) {
	g := graphOf(map[PeerID][]Edge{
		1: {{Peer: 2, Object: 10}, {Peer: 4, Object: 12}},
	})
	wants := []Want{wantOf(99, 2, 4)}
	// Restricting to the edge via 4 must ignore the (earlier) edge via 2.
	ring, _, _, ok := g.FindRingVia(1, Edge{Peer: 4, Object: 12}, wants, Policy2N)
	if !ok || ring.Members[1].Peer != 4 {
		t.Fatalf("FindRingVia = %v", ring)
	}
}

func TestGraphRespectsBudget(t *testing.T) {
	// Wide fanout: provider hidden behind many nodes.
	adj := map[PeerID][]Edge{}
	for i := PeerID(2); i < 100; i++ {
		adj[1] = append(adj[1], Edge{Peer: i, Object: catalog.ObjectID(i)})
	}
	adj[1] = append(adj[1], Edge{Peer: 200, Object: 200})
	g := Graph{Adj: func(p PeerID) []Edge { return adj[p] }, Budget: 10}
	if _, _, stats, ok := g.FindRing(1, []Want{wantOf(99, 200)}, Policy2N); ok {
		t.Fatal("found ring beyond budget")
	} else if stats.NodesVisited > 10 {
		t.Fatalf("visited %d nodes, budget 10", stats.NodesVisited)
	}
}

func TestGraphRespectsFanout(t *testing.T) {
	adj := map[PeerID][]Edge{
		1: {{Peer: 2, Object: 2}, {Peer: 3, Object: 3}, {Peer: 4, Object: 4}},
	}
	g := Graph{Adj: func(p PeerID) []Edge { return adj[p] }, Fanout: 2}
	// Peer 4 is beyond the fanout cap.
	if _, _, _, ok := g.FindRing(1, []Want{wantOf(99, 4)}, Policy2N); ok {
		t.Fatal("fanout cap ignored")
	}
	if _, _, _, ok := g.FindRing(1, []Want{wantOf(99, 3)}, Policy2N); !ok {
		t.Fatal("in-fanout provider missed")
	}
}

func TestGraphCycleInAdjacencyTerminates(t *testing.T) {
	// 2 requested from 1, 1 requested from 2 (a mutual request cycle), and
	// nobody provides anything: search must terminate without a ring.
	g := graphOf(map[PeerID][]Edge{
		1: {{Peer: 2, Object: 10}},
		2: {{Peer: 1, Object: 20}},
	})
	if _, _, _, ok := g.FindRing(1, []Want{wantOf(99, 77)}, Policy2N); ok {
		t.Fatal("found phantom ring")
	}
	if _, _, _, ok := g.FindRing(1, []Want{wantOf(99, 77)}, PolicyN2); ok {
		t.Fatal("found phantom ring (deep-first)")
	}
}

func TestGraphSelfProviderSkipped(t *testing.T) {
	// The only "provider" is the root itself via a request cycle.
	g := graphOf(map[PeerID][]Edge{
		1: {{Peer: 2, Object: 10}},
		2: {{Peer: 1, Object: 20}},
	})
	for _, pol := range []Policy{Policy2N, PolicyN2} {
		if _, _, _, ok := g.FindRing(1, []Want{wantOf(99, 1)}, pol); ok {
			t.Fatalf("%v: ring through the root itself", pol)
		}
	}
}

// irqWorld is a randomly generated request world used to cross-check the
// graph search against the tree search.
type irqWorld struct {
	adj map[PeerID][]Edge
}

func randomWorld(r *rng.RNG, peers int) *irqWorld {
	w := &irqWorld{adj: make(map[PeerID][]Edge)}
	for p := 0; p < peers; p++ {
		for k := 0; k < r.Intn(3); k++ {
			q := PeerID(r.Intn(peers))
			if q == PeerID(p) {
				continue
			}
			w.adj[PeerID(p)] = append(w.adj[PeerID(p)], Edge{Peer: q, Object: catalog.ObjectID(r.Intn(100))})
		}
	}
	return w
}

// tree materializes the unfolded request tree rooted at root (as the live
// protocol would build it from attached request trees), pruned to maxDepth.
func (w *irqWorld) tree(root PeerID, maxDepth int) *Tree {
	var build func(p PeerID, depth int) []*TreeNode
	build = func(p PeerID, depth int) []*TreeNode {
		if depth > maxDepth {
			return nil
		}
		var out []*TreeNode
		for _, e := range w.adj[p] {
			// The unfolding of a cyclic graph repeats peers; FindRing skips
			// repeated-path peers, so the tree may contain them freely.
			n := &TreeNode{Peer: e.Peer, Object: e.Object}
			n.Children = build(e.Peer, depth+1)
			out = append(out, n)
		}
		return out
	}
	return &Tree{Root: root, Children: build(root, 2)}
}

// TestPropertyGraphMatchesTreeSearch cross-checks the two implementations:
// on the same world they must agree on whether a ring exists, and under
// ShortFirst the ring sizes must match (members may differ on ties).
func TestPropertyGraphMatchesTreeSearch(t *testing.T) {
	r := rng.New(99)
	for iter := 0; iter < 400; iter++ {
		w := randomWorld(r, 12)
		g := Graph{Adj: func(p PeerID) []Edge { return w.adj[p] }}
		root := PeerID(r.Intn(12))
		tree := w.tree(root, 5)
		wants := []Want{{
			Object:    500,
			Providers: map[PeerID]bool{PeerID(r.Intn(12)): true, PeerID(r.Intn(12)): true},
		}}
		delete(wants[0].Providers, root) // the root cannot close its own ring
		for _, pol := range []Policy{PolicyPairwise, Policy2N} {
			gr, _, _, gok := g.FindRing(root, wants, pol)
			tr, _, _, tok := FindRing(tree, wants, pol)
			if gok != tok {
				t.Fatalf("iter %d %v: graph ok=%v tree ok=%v\nadj=%v", iter, pol, gok, tok, w.adj)
			}
			if gok && gr.Size() != tr.Size() {
				t.Fatalf("iter %d %v: graph size %d, tree size %d", iter, pol, gr.Size(), tr.Size())
			}
			if gok {
				if err := gr.Validate(); err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
				// The ring must follow real graph edges.
				for i := 1; i < gr.Size(); i++ {
					found := false
					for _, e := range w.adj[gr.Members[i-1].Peer] {
						if e.Peer == gr.Members[i].Peer && e.Object == gr.Members[i-1].Gives {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("iter %d: ring edge %d not in graph", iter, i)
					}
				}
			}
		}
	}
}

func TestPropertyLongFirstAtLeastShortFirst(t *testing.T) {
	r := rng.New(123)
	for iter := 0; iter < 300; iter++ {
		w := randomWorld(r, 10)
		g := Graph{Adj: func(p PeerID) []Edge { return w.adj[p] }}
		root := PeerID(r.Intn(10))
		wants := []Want{{
			Object:    500,
			Providers: map[PeerID]bool{PeerID(r.Intn(10)): true},
		}}
		delete(wants[0].Providers, root)
		rs, _, _, okS := g.FindRing(root, wants, Policy2N)
		rl, _, _, okL := g.FindRing(root, wants, PolicyN2)
		// DFS and BFS can disagree on reachability only via budget; with the
		// default budget on tiny worlds both see everything.
		if okS != okL {
			t.Fatalf("iter %d: short ok=%v long ok=%v", iter, okS, okL)
		}
		if okS && rl.Size() < rs.Size() {
			t.Fatalf("iter %d: LongFirst ring %d smaller than ShortFirst %d", iter, rl.Size(), rs.Size())
		}
	}
}

func BenchmarkGraphFindRing(b *testing.B) {
	r := rng.New(5)
	w := randomWorld(r, 100)
	g := Graph{Adj: func(p PeerID) []Edge { return w.adj[p] }}
	wants := []Want{wantOf(500, 42), wantOf(501, 77)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindRing(PeerID(i%100), wants, Policy2N)
	}
}
