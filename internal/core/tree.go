package core

import (
	"fmt"
	"strings"

	"barter/internal/catalog"
)

// TreeNode is one node of a request tree. The node's peer requested Object
// from the node's parent (in request-graph terms: an edge from Peer to the
// parent labeled Object).
type TreeNode struct {
	Peer     PeerID
	Object   catalog.ObjectID
	Children []*TreeNode
}

// Tree is a peer's request tree: an implicit root (the peer itself) whose
// children are the entries of its incoming request queue, each carrying the
// request tree that accompanied the request.
type Tree struct {
	Root     PeerID
	Children []*TreeNode
}

// IRQEntry is the request-tree-relevant part of one incoming request: who
// asked, for what, and the (already pruned) tree attached to the request.
// Attached may be nil when the requester had no incoming requests itself.
type IRQEntry struct {
	Requester PeerID
	Object    catalog.ObjectID
	Attached  *Tree
}

// BuildTree assembles a peer's request tree from its incoming request queue,
// pruned so that no node lies deeper than maxDepth (the root is at depth 1;
// the paper prunes to depth 5). Attached trees are incorporated by reference
// into fresh nodes; the input trees are not modified.
func BuildTree(root PeerID, irq []IRQEntry, maxDepth int) *Tree {
	t := &Tree{Root: root}
	if maxDepth < 2 {
		return t
	}
	for _, e := range irq {
		child := &TreeNode{Peer: e.Requester, Object: e.Object}
		if e.Attached != nil {
			child.Children = pruneNodes(e.Attached.Children, 3, maxDepth)
		}
		t.Children = append(t.Children, child)
	}
	return t
}

// pruneNodes deep-copies nodes whose depth does not exceed maxDepth. depth is
// the depth the copied nodes will occupy in the destination tree.
func pruneNodes(nodes []*TreeNode, depth, maxDepth int) []*TreeNode {
	if depth > maxDepth || len(nodes) == 0 {
		return nil
	}
	out := make([]*TreeNode, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, &TreeNode{
			Peer:     n.Peer,
			Object:   n.Object,
			Children: pruneNodes(n.Children, depth+1, maxDepth),
		})
	}
	return out
}

// Prune returns a deep copy of t with no node deeper than maxDepth (root at
// depth 1). This is what a peer attaches to an outgoing request.
func (t *Tree) Prune(maxDepth int) *Tree {
	return &Tree{Root: t.Root, Children: pruneNodes(t.Children, 2, maxDepth)}
}

// Depth returns the depth of the deepest node, counting the root as 1.
func (t *Tree) Depth() int {
	d := 1
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		if depth > d {
			d = depth
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, c := range t.Children {
		walk(c, 2)
	}
	return d
}

// Size returns the number of nodes including the root.
func (t *Tree) Size() int {
	n := 1
	var walk func(node *TreeNode)
	walk = func(node *TreeNode) {
		n++
		for _, c := range node.Children {
			walk(c)
		}
	}
	for _, c := range t.Children {
		walk(c)
	}
	return n
}

// String renders the tree one node per line, indented by depth, for
// debugging and the ringsearch example.
func (t *Tree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P%d\n", t.Root)
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		fmt.Fprintf(&b, "%sP%d (wants o%d)\n", strings.Repeat("  ", depth-1), n.Peer, n.Object)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, c := range t.Children {
		walk(c, 2)
	}
	return b.String()
}

// FindRing searches t for the best feasible exchange ring per the policy.
//
// A node at depth k (root at depth 1) closes a ring of k peers when the
// node's peer is a known provider of one of the searching peer's wants and
// no peer repeats along the root-to-node path. The ring serves every peer on
// the path: the root uploads to its depth-2 child the object that child
// requested, each path peer uploads to its path child likewise, and the
// closing peer uploads the matched want back to the root.
//
// ShortFirst prefers the shallowest candidate, LongFirst the deepest;
// ties break in deterministic depth-first traversal order. Wants are matched
// in slice order. The returned index identifies the satisfied want.
func FindRing(t *Tree, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	var stats SearchStats
	if !pol.SearchesExchanges() || len(wants) == 0 {
		return nil, 0, stats, false
	}
	limit := pol.Limit()

	type candidate struct {
		path  []*TreeNode // root-to-node path (excluding the root)
		want  int
		order int
	}
	var best *candidate
	better := func(c, b *candidate) bool {
		if b == nil {
			return true
		}
		cd, bd := len(c.path), len(b.path)
		if cd != bd {
			if pol.Kind == LongFirst {
				return cd > bd
			}
			return cd < bd
		}
		return c.order < b.order
	}

	// onPath tracks peers along the current DFS path (including the root) so
	// rings never contain a repeated peer.
	onPath := map[PeerID]bool{t.Root: true}
	path := make([]*TreeNode, 0, limit)
	order := 0

	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		if depth > limit || onPath[n.Peer] {
			return
		}
		stats.NodesVisited++
		order++
		path = append(path, n)
		onPath[n.Peer] = true
		for wi, w := range wants {
			stats.WantsChecked++
			if w.Providers[n.Peer] {
				stats.Candidates++
				c := &candidate{path: append([]*TreeNode(nil), path...), want: wi, order: order}
				if better(c, best) {
					best = c
				}
				break
			}
		}
		// Early exit: a pairwise ring found under ShortFirst/PairwiseOnly
		// cannot be beaten, and tie-breaking favors earlier traversal.
		if best != nil && len(best.path) == 1 && pol.Kind != LongFirst {
			onPath[n.Peer] = false
			path = path[:len(path)-1]
			return
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
		onPath[n.Peer] = false
		path = path[:len(path)-1]
	}
	for _, c := range t.Children {
		walk(c, 2)
		if best != nil && len(best.path) == 1 && pol.Kind != LongFirst {
			break
		}
	}

	if best == nil {
		return nil, 0, stats, false
	}
	ring := &Ring{Members: make([]Member, 0, len(best.path)+1)}
	// The root uploads to the depth-2 node the object that node requested;
	// each path node uploads to its child likewise; the closing node uploads
	// the matched want back to the root.
	ring.Members = append(ring.Members, Member{Peer: t.Root, Gives: best.path[0].Object})
	for i := 0; i < len(best.path)-1; i++ {
		ring.Members = append(ring.Members, Member{Peer: best.path[i].Peer, Gives: best.path[i+1].Object})
	}
	last := best.path[len(best.path)-1]
	ring.Members = append(ring.Members, Member{Peer: last.Peer, Gives: wants[best.want].Object})
	return ring, best.want, stats, true
}

// FindPairwise is FindRing restricted to 2-way exchanges, regardless of the
// policy's ring limit. The paper's peers check for pairwise exchanges on
// every IRQ scan.
func FindPairwise(t *Tree, wants []Want) (*Ring, int, bool) {
	ring, want, _, ok := FindRing(t, wants, PolicyPairwise)
	return ring, want, ok
}
