// Package core implements the paper's primary contribution: the exchange
// mechanism of Section III. It provides request trees (the per-peer partial
// view of the global request graph), the n-way exchange-ring search over
// those trees, and the search-order policies evaluated in Section IV
// (pairwise only, short-rings-first "2-N-way", long-rings-first "N-2-way").
//
// The request graph G is the directed graph whose vertices are peers and
// whose labeled edges represent requests: an edge from P1 to P2 with label o
// means P1 requested object o from P2. Any cycle of length n in G is a
// feasible n-way exchange. A peer's request tree is its partial local view
// of G: the root is the peer itself, its children are the peers with entries
// in its incoming request queue, and each child carries the (pruned) request
// tree that accompanied its request.
package core

import (
	"fmt"

	"barter/internal/catalog"
)

// PeerID identifies a peer in the request graph.
type PeerID int32

// DefaultMaxRing is the paper's ring-size cap: searches deeper than 5 do not
// substantially improve the likelihood of successful exchanges (Section IV,
// Figure 6).
const DefaultMaxRing = 5

// PolicyKind enumerates the exchange-search strategies compared in the
// evaluation.
type PolicyKind int

const (
	// NoExchange never searches for exchanges; every transfer is served
	// first-come-first-served from spare capacity. This is the paper's
	// baseline ("no exchange" in the figures).
	NoExchange PolicyKind = iota + 1
	// PairwiseOnly detects only 2-way exchanges.
	PairwiseOnly
	// ShortFirst searches ring sizes 2, 3, ..., MaxRing and takes the first
	// feasible ring ("2-N-way" in the figures).
	ShortFirst
	// LongFirst searches ring sizes MaxRing, ..., 3, 2 and takes the first
	// feasible ring ("N-2-way" in the figures).
	LongFirst
)

// Policy is a complete exchange-search configuration.
type Policy struct {
	Kind    PolicyKind
	MaxRing int // largest ring size considered; ignored for NoExchange and PairwiseOnly
}

// Common policies used throughout the experiments.
var (
	PolicyNoExchange = Policy{Kind: NoExchange}
	PolicyPairwise   = Policy{Kind: PairwiseOnly, MaxRing: 2}
	Policy2N         = Policy{Kind: ShortFirst, MaxRing: DefaultMaxRing}
	PolicyN2         = Policy{Kind: LongFirst, MaxRing: DefaultMaxRing}
)

// Validate reports the first configuration error, if any.
func (p Policy) Validate() error {
	switch p.Kind {
	case NoExchange, PairwiseOnly:
		return nil
	case ShortFirst, LongFirst:
		if p.MaxRing < 2 {
			return fmt.Errorf("core: MaxRing = %d, want >= 2", p.MaxRing)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown policy kind %d", int(p.Kind))
	}
}

// SearchesExchanges reports whether the policy looks for exchanges at all.
func (p Policy) SearchesExchanges() bool { return p.Kind != NoExchange }

// Limit returns the largest ring size the policy will build.
func (p Policy) Limit() int {
	switch p.Kind {
	case NoExchange:
		return 0
	case PairwiseOnly:
		return 2
	default:
		return p.MaxRing
	}
}

// String renders the policy with the paper's labels.
func (p Policy) String() string {
	switch p.Kind {
	case NoExchange:
		return "no-exchange"
	case PairwiseOnly:
		return "pairwise"
	case ShortFirst:
		return fmt.Sprintf("2-%d-way", p.MaxRing)
	case LongFirst:
		return fmt.Sprintf("%d-2-way", p.MaxRing)
	default:
		return fmt.Sprintf("policy(%d)", int(p.Kind))
	}
}

// Want is one object a searching peer currently wants, together with the
// providers it discovered at lookup time. The paper notes the searcher "can
// use the original provider list to compute a cycle containing a peer P even
// if it did not originally transmit a request to P".
type Want struct {
	Object    catalog.ObjectID
	Providers map[PeerID]bool
}

// Member is one position in an exchange ring: Peer uploads Gives to the next
// member (and downloads the previous member's Gives).
type Member struct {
	Peer  PeerID
	Gives catalog.ObjectID
}

// Ring is a feasible n-way exchange: Members[i] serves Members[(i+1) % n].
// A 2-member ring is a pairwise exchange.
type Ring struct {
	Members []Member
}

// Size returns the number of peers in the ring.
func (r *Ring) Size() int { return len(r.Members) }

// Gets returns the object member i receives (from its predecessor).
func (r *Ring) Gets(i int) catalog.ObjectID {
	n := len(r.Members)
	return r.Members[(i-1+n)%n].Gives
}

// Receiver returns the index of the member that receives member i's upload.
func (r *Ring) Receiver(i int) int { return (i + 1) % len(r.Members) }

// String renders the ring as "P0 -o0-> P1 -o1-> ... -> P0".
func (r *Ring) String() string {
	if len(r.Members) == 0 {
		return "ring{}"
	}
	s := ""
	for i, m := range r.Members {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("P%d -o%d->", m.Peer, m.Gives)
	}
	return s + fmt.Sprintf(" P%d", r.Members[0].Peer)
}

// Validate checks the structural invariants of a ring: at least two members,
// all peers distinct, and every member giving some object.
func (r *Ring) Validate() error {
	if len(r.Members) < 2 {
		return fmt.Errorf("core: ring of size %d, want >= 2", len(r.Members))
	}
	seen := make(map[PeerID]bool, len(r.Members))
	for _, m := range r.Members {
		if seen[m.Peer] {
			return fmt.Errorf("core: peer %d appears twice in ring", m.Peer)
		}
		seen[m.Peer] = true
	}
	return nil
}

// SearchStats reports the cost of one ring search; the Bloom-filter ablation
// compares these numbers against the compact-tree variant.
type SearchStats struct {
	NodesVisited int // tree nodes inspected
	WantsChecked int // (node, want) membership probes
	Candidates   int // ring-closing nodes found before policy selection
}
