package core

import "barter/internal/catalog"

// Edge is one in-edge of the request graph as seen from a serving peer: Peer
// requested Object from the peer whose adjacency list contains this edge.
type Edge struct {
	Peer   PeerID
	Object catalog.ObjectID
}

// DefaultSearchBudget bounds how many request-graph nodes one ring search may
// visit. The paper's Section V discusses exactly this cost concern (full
// request trees "may be prohibitive for peers with a large number of incoming
// requests"); real peers bound their search effort, and so do we.
const DefaultSearchBudget = 4096

// SearchScratch holds the reusable working memory of ring searches: the
// visited set as an epoch-stamped dense array (cleared in O(1) by bumping the
// generation), the BFS node pool, and the DFS path buffers. One scratch
// serves any number of sequential searches; it is not safe for concurrent
// use. A nil scratch on Graph falls back to a fresh allocation per search.
type SearchScratch struct {
	visited []uint32 // epoch stamps indexed by PeerID
	gen     uint32
	nodes   []bfsNode
	path    []Edge
	best    []Edge
	first1  [1]Edge
}

// NewSearchScratch returns a scratch pre-sized for peer ids below numPeers;
// it grows transparently if larger ids appear.
func NewSearchScratch(numPeers int) *SearchScratch {
	return &SearchScratch{visited: make([]uint32, numPeers)}
}

// begin starts a new search epoch, invalidating all marks in O(1).
func (sc *SearchScratch) begin() {
	sc.gen++
	if sc.gen == 0 { // wrapped: stale stamps could alias; hard-reset once
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.gen = 1
	}
}

func (sc *SearchScratch) marked(p PeerID) bool {
	return int(p) < len(sc.visited) && sc.visited[p] == sc.gen
}

func (sc *SearchScratch) mark(p PeerID) {
	if int(p) >= len(sc.visited) {
		nv := make([]uint32, int(p)+1, 2*(int(p)+1))
		copy(nv, sc.visited)
		sc.visited = nv
	}
	sc.visited[p] = sc.gen
}

func (sc *SearchScratch) unmark(p PeerID) {
	if int(p) < len(sc.visited) {
		sc.visited[p] = 0
	}
}

// bfsNode is one visited node of the breadth-first ring search.
type bfsNode struct {
	edge   Edge
	parent int // index into the node pool, -1 for depth-2 nodes
	depth  int
}

// Graph searches the live request graph for exchange rings. It is the
// simulator's counterpart of the tree-based FindRing: the simulator has the
// current request graph available (per-peer incoming request queues), which
// is equivalent to searching perfectly fresh request trees; staleness and
// token validation are then handled by the caller at ring-start time.
type Graph struct {
	// Adj returns the in-edges of a peer: who has a live (unserved) request
	// registered with it, and for which object. The order must be
	// deterministic; it defines traversal tie-breaking.
	Adj func(PeerID) []Edge
	// Budget caps visited nodes per search (0 means DefaultSearchBudget).
	Budget int
	// Fanout caps how many in-edges are explored per node (0 = unlimited).
	Fanout int
	// Scratch, when set, keeps searches allocation-free by reusing working
	// memory across calls. Searches behave identically with or without it.
	Scratch *SearchScratch
}

func (g Graph) budget() int {
	if g.Budget <= 0 {
		return DefaultSearchBudget
	}
	return g.Budget
}

func (g Graph) edges(p PeerID) []Edge {
	es := g.Adj(p)
	if g.Fanout > 0 && len(es) > g.Fanout {
		es = es[:g.Fanout]
	}
	return es
}

// FindRing searches for the best ring rooted at root per the policy, exactly
// like the tree-based FindRing but over live adjacency.
func (g Graph) FindRing(root PeerID, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	return g.search(root, nil, wants, pol)
}

// FindRingVia restricts the depth-2 frontier to the single edge first: it is
// the cheap incremental search a peer runs when one new request arrives
// ("on receipt of each request, it need only inspect the incoming request
// tree associated with that request").
func (g Graph) FindRingVia(root PeerID, first Edge, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	return g.search(root, &first, wants, pol)
}

func (g Graph) search(root PeerID, first *Edge, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	var stats SearchStats
	if !pol.SearchesExchanges() || len(wants) == 0 {
		return nil, 0, stats, false
	}
	sc := g.Scratch
	if sc == nil {
		sc = NewSearchScratch(0)
	}
	sc.begin()
	if pol.Kind == LongFirst {
		return g.searchDeepFirst(sc, root, first, wants, pol, &stats)
	}
	return g.searchShallowFirst(sc, root, first, wants, pol, &stats)
}

// match returns the index of the first want provided by p, or -1.
func match(p PeerID, wants []Want, stats *SearchStats) int {
	for i, w := range wants {
		stats.WantsChecked++
		if w.Providers[p] {
			return i
		}
	}
	return -1
}

// frontier returns the depth-2 seed edges: the single via edge, or the
// root's full in-edge list.
func (g Graph) frontier(sc *SearchScratch, root PeerID, first *Edge) []Edge {
	if first != nil {
		sc.first1[0] = *first
		return sc.first1[:]
	}
	return g.edges(root)
}

// searchShallowFirst runs a breadth-first traversal, so the first candidate
// found closes the smallest possible ring (ShortFirst and PairwiseOnly both
// want the shallowest match, earliest within a level).
func (g Graph) searchShallowFirst(sc *SearchScratch, root PeerID, first *Edge, wants []Want, pol Policy, stats *SearchStats) (*Ring, int, SearchStats, bool) {
	limit := pol.Limit()
	budget := g.budget()

	nodes := sc.nodes[:0]
	defer func() { sc.nodes = nodes }()
	sc.mark(root)

	build := func(idx, want int) (*Ring, int, SearchStats, bool) {
		stats.Candidates++
		rev := sc.path[:0]
		for i := idx; i >= 0; i = nodes[i].parent {
			rev = append(rev, nodes[i].edge)
		}
		sc.path = rev
		ring := &Ring{Members: make([]Member, 0, len(rev)+1)}
		ring.Members = append(ring.Members, Member{Peer: root, Gives: rev[len(rev)-1].Object})
		for i := len(rev) - 1; i > 0; i-- {
			ring.Members = append(ring.Members, Member{Peer: rev[i].Peer, Gives: rev[i-1].Object})
		}
		ring.Members = append(ring.Members, Member{Peer: rev[0].Peer, Gives: wants[want].Object})
		return ring, want, *stats, true
	}

	push := func(e Edge, parent, depth int) (int, bool) {
		if sc.marked(e.Peer) || stats.NodesVisited >= budget {
			return -1, false
		}
		sc.mark(e.Peer)
		stats.NodesVisited++
		nodes = append(nodes, bfsNode{edge: e, parent: parent, depth: depth})
		return len(nodes) - 1, true
	}

	// Seed the depth-2 frontier.
	for _, e := range g.frontier(sc, root, first) {
		idx, ok := push(e, -1, 2)
		if !ok {
			continue
		}
		if w := match(e.Peer, wants, stats); w >= 0 {
			return build(idx, w)
		}
	}
	// Expand level by level; checking at push time preserves level order
	// because every depth-d node is pushed before any depth-(d+1) node.
	for head := 0; head < len(nodes); head++ {
		n := nodes[head]
		if n.depth >= limit {
			continue
		}
		for _, e := range g.edges(n.edge.Peer) {
			idx, ok := push(e, head, n.depth+1)
			if !ok {
				continue
			}
			if w := match(e.Peer, wants, stats); w >= 0 {
				return build(idx, w)
			}
		}
	}
	return nil, 0, *stats, false
}

// searchDeepFirst runs a depth-first traversal tracking the deepest
// candidate, returning immediately when a candidate at the ring-size limit
// is found. Unlike BFS it may revisit a peer over different paths, so the
// on-path marks guard against repeated peers inside one ring (mark on
// descent, unmark on backtrack).
func (g Graph) searchDeepFirst(sc *SearchScratch, root PeerID, first *Edge, wants []Want, pol Policy, stats *SearchStats) (*Ring, int, SearchStats, bool) {
	limit := pol.Limit()
	budget := g.budget()

	bestWant := -1
	best := sc.best[:0]
	path := sc.path[:0]
	defer func() { sc.best, sc.path = best, path }()
	sc.mark(root)

	var walk func(e Edge, depth int) bool // returns true to abort (limit hit)
	walk = func(e Edge, depth int) bool {
		if depth > limit || sc.marked(e.Peer) || stats.NodesVisited >= budget {
			return false
		}
		stats.NodesVisited++
		path = append(path, e)
		sc.mark(e.Peer)
		defer func() {
			sc.unmark(e.Peer)
			path = path[:len(path)-1]
		}()
		if w := match(e.Peer, wants, stats); w >= 0 {
			stats.Candidates++
			if bestWant < 0 || len(path) > len(best) {
				best = append(best[:0], path...)
				bestWant = w
			}
			if depth == limit {
				return true
			}
		}
		for _, c := range g.edges(e.Peer) {
			if walk(c, depth+1) {
				return true
			}
		}
		return false
	}

	for _, e := range g.frontier(sc, root, first) {
		if walk(e, 2) {
			break
		}
	}
	if bestWant < 0 {
		return nil, 0, *stats, false
	}
	ring := &Ring{Members: make([]Member, 0, len(best)+1)}
	ring.Members = append(ring.Members, Member{Peer: root, Gives: best[0].Object})
	for i := 0; i < len(best)-1; i++ {
		ring.Members = append(ring.Members, Member{Peer: best[i].Peer, Gives: best[i+1].Object})
	}
	last := best[len(best)-1]
	ring.Members = append(ring.Members, Member{Peer: last.Peer, Gives: wants[bestWant].Object})
	return ring, bestWant, *stats, true
}
