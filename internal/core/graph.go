package core

import "barter/internal/catalog"

// Edge is one in-edge of the request graph as seen from a serving peer: Peer
// requested Object from the peer whose adjacency list contains this edge.
type Edge struct {
	Peer   PeerID
	Object catalog.ObjectID
}

// DefaultSearchBudget bounds how many request-graph nodes one ring search may
// visit. The paper's Section V discusses exactly this cost concern (full
// request trees "may be prohibitive for peers with a large number of incoming
// requests"); real peers bound their search effort, and so do we.
const DefaultSearchBudget = 4096

// Graph searches the live request graph for exchange rings. It is the
// simulator's counterpart of the tree-based FindRing: the simulator has the
// current request graph available (per-peer incoming request queues), which
// is equivalent to searching perfectly fresh request trees; staleness and
// token validation are then handled by the caller at ring-start time.
type Graph struct {
	// Adj returns the in-edges of a peer: who has a live (unserved) request
	// registered with it, and for which object. The order must be
	// deterministic; it defines traversal tie-breaking.
	Adj func(PeerID) []Edge
	// Budget caps visited nodes per search (0 means DefaultSearchBudget).
	Budget int
	// Fanout caps how many in-edges are explored per node (0 = unlimited).
	Fanout int
}

func (g Graph) budget() int {
	if g.Budget <= 0 {
		return DefaultSearchBudget
	}
	return g.Budget
}

func (g Graph) edges(p PeerID) []Edge {
	es := g.Adj(p)
	if g.Fanout > 0 && len(es) > g.Fanout {
		es = es[:g.Fanout]
	}
	return es
}

// FindRing searches for the best ring rooted at root per the policy, exactly
// like the tree-based FindRing but over live adjacency.
func (g Graph) FindRing(root PeerID, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	return g.search(root, nil, wants, pol)
}

// FindRingVia restricts the depth-2 frontier to the single edge first: it is
// the cheap incremental search a peer runs when one new request arrives
// ("on receipt of each request, it need only inspect the incoming request
// tree associated with that request").
func (g Graph) FindRingVia(root PeerID, first Edge, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	return g.search(root, &first, wants, pol)
}

func (g Graph) search(root PeerID, first *Edge, wants []Want, pol Policy) (*Ring, int, SearchStats, bool) {
	var stats SearchStats
	if !pol.SearchesExchanges() || len(wants) == 0 {
		return nil, 0, stats, false
	}
	if pol.Kind == LongFirst {
		return g.searchDeepFirst(root, first, wants, pol, &stats)
	}
	return g.searchShallowFirst(root, first, wants, pol, &stats)
}

// match returns the index of the first want provided by p, or -1.
func match(p PeerID, wants []Want, stats *SearchStats) int {
	for i, w := range wants {
		stats.WantsChecked++
		if w.Providers[p] {
			return i
		}
	}
	return -1
}

// searchShallowFirst runs a breadth-first traversal, so the first candidate
// found closes the smallest possible ring (ShortFirst and PairwiseOnly both
// want the shallowest match, earliest within a level).
func (g Graph) searchShallowFirst(root PeerID, first *Edge, wants []Want, pol Policy, stats *SearchStats) (*Ring, int, SearchStats, bool) {
	limit := pol.Limit()
	budget := g.budget()

	type bfsNode struct {
		edge   Edge
		parent int // index into nodes, -1 for depth-2 nodes
		depth  int
	}
	var nodes []bfsNode
	visited := map[PeerID]bool{root: true}

	build := func(idx, want int) (*Ring, int, SearchStats, bool) {
		stats.Candidates++
		var rev []Edge
		for i := idx; i >= 0; i = nodes[i].parent {
			rev = append(rev, nodes[i].edge)
		}
		ring := &Ring{Members: make([]Member, 0, len(rev)+1)}
		ring.Members = append(ring.Members, Member{Peer: root, Gives: rev[len(rev)-1].Object})
		for i := len(rev) - 1; i > 0; i-- {
			ring.Members = append(ring.Members, Member{Peer: rev[i].Peer, Gives: rev[i-1].Object})
		}
		ring.Members = append(ring.Members, Member{Peer: rev[0].Peer, Gives: wants[want].Object})
		return ring, want, *stats, true
	}

	push := func(e Edge, parent, depth int) (int, bool) {
		if visited[e.Peer] || stats.NodesVisited >= budget {
			return -1, false
		}
		visited[e.Peer] = true
		stats.NodesVisited++
		nodes = append(nodes, bfsNode{edge: e, parent: parent, depth: depth})
		return len(nodes) - 1, true
	}

	// Seed the depth-2 frontier.
	var frontier []Edge
	if first != nil {
		frontier = []Edge{*first}
	} else {
		frontier = g.edges(root)
	}
	for _, e := range frontier {
		idx, ok := push(e, -1, 2)
		if !ok {
			continue
		}
		if w := match(e.Peer, wants, stats); w >= 0 {
			return build(idx, w)
		}
	}
	// Expand level by level; checking at push time preserves level order
	// because every depth-d node is pushed before any depth-(d+1) node.
	for head := 0; head < len(nodes); head++ {
		n := nodes[head]
		if n.depth >= limit {
			continue
		}
		for _, e := range g.edges(n.edge.Peer) {
			idx, ok := push(e, head, n.depth+1)
			if !ok {
				continue
			}
			if w := match(e.Peer, wants, stats); w >= 0 {
				return build(idx, w)
			}
		}
	}
	return nil, 0, *stats, false
}

// searchDeepFirst runs a depth-first traversal tracking the deepest
// candidate, returning immediately when a candidate at the ring-size limit
// is found. Unlike BFS it may revisit a peer over different paths, so the
// on-path set guards against repeated peers inside one ring.
func (g Graph) searchDeepFirst(root PeerID, first *Edge, wants []Want, pol Policy, stats *SearchStats) (*Ring, int, SearchStats, bool) {
	limit := pol.Limit()
	budget := g.budget()

	type candidate struct {
		path []Edge
		want int
	}
	var best *candidate
	onPath := map[PeerID]bool{root: true}
	path := make([]Edge, 0, limit)

	var walk func(e Edge, depth int) bool // returns true to abort (limit hit)
	walk = func(e Edge, depth int) bool {
		if depth > limit || onPath[e.Peer] || stats.NodesVisited >= budget {
			return false
		}
		stats.NodesVisited++
		path = append(path, e)
		onPath[e.Peer] = true
		defer func() {
			onPath[e.Peer] = false
			path = path[:len(path)-1]
		}()
		if w := match(e.Peer, wants, stats); w >= 0 {
			stats.Candidates++
			if best == nil || len(path) > len(best.path) {
				best = &candidate{path: append([]Edge(nil), path...), want: w}
			}
			if depth == limit {
				return true
			}
		}
		for _, c := range g.edges(e.Peer) {
			if walk(c, depth+1) {
				return true
			}
		}
		return false
	}

	var frontier []Edge
	if first != nil {
		frontier = []Edge{*first}
	} else {
		frontier = g.edges(root)
	}
	for _, e := range frontier {
		if walk(e, 2) {
			break
		}
	}
	if best == nil {
		return nil, 0, *stats, false
	}
	ring := &Ring{Members: make([]Member, 0, len(best.path)+1)}
	ring.Members = append(ring.Members, Member{Peer: root, Gives: best.path[0].Object})
	for i := 0; i < len(best.path)-1; i++ {
		ring.Members = append(ring.Members, Member{Peer: best.path[i].Peer, Gives: best.path[i+1].Object})
	}
	last := best.path[len(best.path)-1]
	ring.Members = append(ring.Members, Member{Peer: last.Peer, Gives: wants[best.want].Object})
	return ring, best.want, *stats, true
}
