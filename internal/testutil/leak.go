// Package testutil carries helpers shared by the test suites — currently
// the goroutine-leak assertion used by the swarm and mediator close-path
// tests. It is imported only from _test.go files; nothing here runs in
// production binaries, so wall-clock waits are fine (the package is
// deliberately outside the bartervet deterministic allowlist).
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// leakGrace bounds how long a cleanup waits for asynchronous teardown
// (listeners unwinding accept loops, connections draining) before declaring
// a leak. Package variable so the helper's own tests can shorten it.
var leakGrace = 10 * time.Second

// CheckGoroutineLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if, once the test body finishes, more than slack
// goroutines above the snapshot are still running. Teardown is asynchronous
// almost everywhere, so the cleanup polls (GC between probes, so finished
// goroutines are reaped) before failing; on failure it dumps every
// goroutine stack — the count alone never says who leaked.
//
// Call it first thing in a test, before the resources under test exist:
//
//	func TestClosePath(t *testing.T) {
//		testutil.CheckGoroutineLeaks(t, 0)
//		...
//	}
//
// slack 0 is the right default for unit-scale fixtures; the hundreds-of-node
// swarm scenarios allow a small residue (runtime-internal and transport
// bookkeeping goroutines whose lifetime the test cannot see).
func CheckGoroutineLeaks(t testing.TB, slack int) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		var after int
		for {
			runtime.GC()
			after = runtime.NumGoroutine()
			if after <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before the test, %d still running %v after it (slack %d)\n\n%s",
			before, after, leakGrace, slack, buf[:n])
	})
}
