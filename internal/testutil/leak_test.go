package testutil

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// recorder captures what CheckGoroutineLeaks reports without failing the
// real test.
type recorder struct {
	testing.TB
	cleanups []func()
	errors   []string
}

func (r *recorder) Helper()          {}
func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, format)
	r.errors = append(r.errors, stringify(args))
}

func stringify(args []any) string {
	var b strings.Builder
	for _, a := range args {
		switch v := a.(type) {
		case string:
			b.WriteString(v)
		case []byte:
			b.Write(v)
		}
	}
	return b.String()
}

func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestNoLeakPasses(t *testing.T) {
	r := &recorder{TB: t}
	CheckGoroutineLeaks(r, 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
	r.runCleanups()
	if len(r.errors) != 0 {
		t.Fatalf("clean test reported a leak: %v", r.errors)
	}
}

func TestSlowTeardownWithinGracePasses(t *testing.T) {
	r := &recorder{TB: t}
	CheckGoroutineLeaks(r, 0)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Cleanup starts while the goroutine is still running; the grace poll
	// must absorb it.
	r.runCleanups()
	<-done
	if len(r.errors) != 0 {
		t.Fatalf("teardown inside the grace period reported a leak: %v", r.errors)
	}
}

func TestSlackAbsorbsResidue(t *testing.T) {
	old := leakGrace
	leakGrace = 100 * time.Millisecond
	defer func() { leakGrace = old }()

	r := &recorder{TB: t}
	CheckGoroutineLeaks(r, 1)
	stop := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		<-stop // one parked goroutine: inside the slack budget
		close(done)
	}()
	<-started
	r.runCleanups()
	// Unpark and wait it out, so the next test's snapshot starts clean.
	close(stop)
	<-done
	if len(r.errors) != 0 {
		t.Fatalf("residue within slack reported as a leak: %v", r.errors)
	}
}

func TestLeakIsReportedWithStacks(t *testing.T) {
	old := leakGrace
	leakGrace = 200 * time.Millisecond
	defer func() { leakGrace = old }()

	r := &recorder{TB: t}
	CheckGoroutineLeaks(r, 0)
	stop := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		<-stop // parked for the whole grace period: a leak by construction
		close(done)
	}()
	<-started
	r.runCleanups()
	close(stop)
	<-done
	if len(r.errors) == 0 {
		t.Fatal("parked goroutine was not reported")
	}
	report := strings.Join(r.errors, "\n")
	if !strings.Contains(report, "TestLeakIsReportedWithStacks") {
		t.Fatalf("report does not carry the leaking stack:\n%s", report)
	}
}
