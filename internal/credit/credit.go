// Package credit implements the related-work incentive baselines the paper
// compares against conceptually (Section II): the eMule pairwise credit
// system and the KaZaA-style self-reported participation level. Both plug
// into the simulator's non-exchange service order (sim.Ranker), so the
// ablation experiments can quantify how much weaker their incentives are
// than exchange priority.
package credit

import (
	"math"

	"barter/internal/core"
)

type pair struct {
	src, dst core.PeerID
}

// EMule reproduces the eMule upload-queue rank: a request's score is its
// waiting time multiplied by a credit modifier derived from the pairwise
// transfer history between the two peers. Following the eMule credit rules,
// the modifier is min(2*uploaded/downloaded, sqrt(uploadedMB+2)), clamped to
// [1, 10], where "uploaded" is what the requester previously uploaded to the
// serving peer. With no download history the modifier is 10 when the
// requester has uploaded anything, else 1.
type EMule struct {
	kbits map[pair]float64
}

// NewEMule returns an empty credit book.
func NewEMule() *EMule {
	return &EMule{kbits: make(map[pair]float64)}
}

// Score implements sim.Ranker.
func (e *EMule) Score(server, requester core.PeerID, waited float64) float64 {
	up := e.kbits[pair{src: requester, dst: server}]   // requester -> server
	down := e.kbits[pair{src: server, dst: requester}] // server -> requester
	modifier := 1.0
	switch {
	case up == 0:
		modifier = 1
	case down == 0:
		modifier = 10
	default:
		r1 := 2 * up / down
		r2 := math.Sqrt(up/8000 + 2) // kbits -> MB
		modifier = math.Min(r1, r2)
		if modifier < 1 {
			modifier = 1
		}
		if modifier > 10 {
			modifier = 10
		}
	}
	return waited * modifier
}

// OnTransfer implements sim.Ranker.
func (e *EMule) OnTransfer(src, dst core.PeerID, kbits float64) {
	e.kbits[pair{src: src, dst: dst}] += kbits
}

// Credit returns the kbits src has uploaded to dst (exported for tests and
// the creditcompare example).
func (e *EMule) Credit(src, dst core.PeerID) float64 {
	return e.kbits[pair{src: src, dst: dst}]
}

// OnWhitewash implements sim.WhitewashResetter: a peer that rejoined under a
// fresh identity carries no pairwise history in either direction.
func (e *EMule) OnWhitewash(p core.PeerID) {
	//barter:allow maprange deletes every matching entry; set subtraction is order-insensitive and no draw or output sees the sweep
	for k := range e.kbits {
		if k.src == p || k.dst == p {
			delete(e.kbits, k)
		}
	}
}

// KaZaA reproduces the self-reported "participation level" mechanism: each
// peer announces a level computed from its claimed upload/download volumes,
// and servers prioritize higher levels. Because the level is self-reported,
// a trivially modified client can claim the maximum; Cheater marks peers
// that do so (the paper cites exactly this hack as the reason the scheme
// fails).
type KaZaA struct {
	uploaded   map[core.PeerID]float64
	downloaded map[core.PeerID]float64
	cheater    func(core.PeerID) bool
}

// MaxLevel is the cap of the participation level scale (KaZaA used 0-1000).
const MaxLevel = 1000.0

// NewKaZaA builds the mechanism. cheater reports whether a peer misreports
// its level as MaxLevel; nil means everyone is honest.
func NewKaZaA(cheater func(core.PeerID) bool) *KaZaA {
	if cheater == nil {
		cheater = func(core.PeerID) bool { return false }
	}
	return &KaZaA{
		uploaded:   make(map[core.PeerID]float64),
		downloaded: make(map[core.PeerID]float64),
		cheater:    cheater,
	}
}

// Level returns the participation level a peer announces: honest peers
// report 100 * uploaded/downloaded (clamped to MaxLevel, 100 with no
// history, the KaZaA formula); cheaters always report MaxLevel.
func (k *KaZaA) Level(p core.PeerID) float64 {
	if k.cheater(p) {
		return MaxLevel
	}
	up, down := k.uploaded[p], k.downloaded[p]
	if down == 0 {
		if up > 0 {
			return MaxLevel
		}
		return 100
	}
	level := 100 * up / down
	if level > MaxLevel {
		level = MaxLevel
	}
	return level
}

// Score implements sim.Ranker: participation level dominates, with waiting
// time only breaking ties.
func (k *KaZaA) Score(_, requester core.PeerID, waited float64) float64 {
	return k.Level(requester)*1e6 + waited
}

// OnTransfer implements sim.Ranker.
func (k *KaZaA) OnTransfer(src, dst core.PeerID, kbits float64) {
	k.uploaded[src] += kbits
	k.downloaded[dst] += kbits
}

// OnWhitewash implements sim.WhitewashResetter: a whitewashed peer's
// participation history vanishes, restoring the newcomer's default level —
// exactly the escape hatch self-reported schemes cannot close.
func (k *KaZaA) OnWhitewash(p core.PeerID) {
	delete(k.uploaded, p)
	delete(k.downloaded, p)
}
