package credit

import (
	"testing"

	"barter/internal/core"
)

func TestEMuleNoHistoryScoresByWaiting(t *testing.T) {
	e := NewEMule()
	if got := e.Score(1, 2, 100); got != 100 {
		t.Fatalf("Score with no history = %v, want 100 (waiting only)", got)
	}
}

func TestEMuleUploaderOutranksStranger(t *testing.T) {
	e := NewEMule()
	e.OnTransfer(2, 1, 80_000) // peer 2 uploaded 10 MB to peer 1
	uploader := e.Score(1, 2, 100)
	stranger := e.Score(1, 3, 100)
	if uploader <= stranger {
		t.Fatalf("uploader score %v not above stranger %v", uploader, stranger)
	}
}

func TestEMuleModifierClamped(t *testing.T) {
	e := NewEMule()
	// Massive one-way upload history: modifier must cap at 10.
	e.OnTransfer(2, 1, 8_000_000)
	e.OnTransfer(1, 2, 1)
	if got, want := e.Score(1, 2, 1), 10.0; got > want {
		t.Fatalf("modifier exceeded clamp: score %v with waited=1", got)
	}
	// Heavy downloader with no uploads: modifier must floor at 1.
	f := NewEMule()
	f.OnTransfer(1, 2, 8_000_000)
	if got := f.Score(1, 2, 50); got != 50 {
		t.Fatalf("freeloader score %v, want waiting-only 50", got)
	}
}

func TestEMuleBalancedHistory(t *testing.T) {
	e := NewEMule()
	e.OnTransfer(2, 1, 16_000) // 2 MB up
	e.OnTransfer(1, 2, 16_000) // 2 MB down
	// ratio1 = 2, ratio2 = sqrt(4) = 2 -> modifier 2.
	if got := e.Score(1, 2, 10); got != 20 {
		t.Fatalf("balanced score = %v, want 20", got)
	}
}

func TestEMuleCreditAccessor(t *testing.T) {
	e := NewEMule()
	e.OnTransfer(4, 5, 123)
	if e.Credit(4, 5) != 123 {
		t.Fatal("Credit accessor wrong")
	}
	if e.Credit(5, 4) != 0 {
		t.Fatal("Credit direction confused")
	}
}

func TestKaZaAHonestLevels(t *testing.T) {
	k := NewKaZaA(nil)
	if k.Level(1) != 100 {
		t.Fatalf("fresh peer level = %v, want 100", k.Level(1))
	}
	k.OnTransfer(1, 9, 1000) // peer 1 uploads
	k.OnTransfer(9, 1, 500)  // peer 1 downloads half as much
	if got := k.Level(1); got != 200 {
		t.Fatalf("2:1 ratio level = %v, want 200", got)
	}
}

func TestKaZaALevelClamped(t *testing.T) {
	k := NewKaZaA(nil)
	k.OnTransfer(1, 9, 1e9)
	k.OnTransfer(9, 1, 1)
	if got := k.Level(1); got != MaxLevel {
		t.Fatalf("level = %v, want clamp %v", got, MaxLevel)
	}
}

func TestKaZaACheaterAlwaysMax(t *testing.T) {
	k := NewKaZaA(func(p core.PeerID) bool { return p == 7 })
	k.OnTransfer(9, 7, 1e9) // peer 7 is a pure leech
	if k.Level(7) != MaxLevel {
		t.Fatalf("cheater level = %v, want %v", k.Level(7), MaxLevel)
	}
	// The cheat defeats the mechanism: the leech outranks an honest
	// contributor with a merely good ratio.
	k.OnTransfer(3, 9, 2000)
	k.OnTransfer(9, 3, 1000)
	if k.Score(9, 7, 0) <= k.Score(9, 3, 1e5) {
		t.Fatal("cheating leech did not outrank honest contributor")
	}
}

func TestKaZaAUploaderWithNoDownloads(t *testing.T) {
	k := NewKaZaA(nil)
	k.OnTransfer(2, 9, 10)
	if k.Level(2) != MaxLevel {
		t.Fatalf("pure uploader level = %v, want %v", k.Level(2), MaxLevel)
	}
}
