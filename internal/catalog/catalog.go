// Package catalog implements the content and workload model of the paper's
// simulation study (Section IV-A), which follows the popularity model of
// Schlosser, Condie & Kamvar ("Simulating a P2P file-sharing network").
//
// Objects are organized in categories. The popularity of the category of
// rank i is proportional to i^-f, and within each category the popularity of
// the object of rank i is likewise proportional to i^-f. Each peer is
// interested in a small set of categories chosen at initialization time and
// weights them with a local preference distribution of uniformly random
// weights, independent of global popularity. A request first draws a
// category from the peer's local preferences and then an object from that
// category's object-popularity distribution.
package catalog

import (
	"fmt"

	"barter/internal/rng"
)

// ObjectID identifies an object (a file) in the catalog. IDs are dense in
// [0, NumObjects).
type ObjectID int32

// CategoryID identifies a content category. IDs are dense in
// [0, NumCategories).
type CategoryID int32

// Config holds the workload-model parameters of Table II.
type Config struct {
	// Categories is the number of content categories (Table II: 300).
	Categories int
	// ObjectsPerCategoryMin/Max bound the uniform draw of each category's
	// size (Table II: uniform(1, 300)).
	ObjectsPerCategoryMin int
	ObjectsPerCategoryMax int
	// CategoryFactor is the exponent f of the category popularity
	// distribution (Table II: 0.2).
	CategoryFactor float64
	// ObjectFactor is the exponent f of the per-category object popularity
	// distribution (Table II: 0.2).
	ObjectFactor float64
	// CategoriesPerPeerMin/Max bound the uniform draw of how many categories
	// a peer is interested in (Table II: uniform(1, 8)).
	CategoriesPerPeerMin int
	CategoriesPerPeerMax int
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Categories <= 0:
		return fmt.Errorf("catalog: Categories = %d, want > 0", c.Categories)
	case c.ObjectsPerCategoryMin <= 0 || c.ObjectsPerCategoryMax < c.ObjectsPerCategoryMin:
		return fmt.Errorf("catalog: ObjectsPerCategory range [%d, %d] invalid",
			c.ObjectsPerCategoryMin, c.ObjectsPerCategoryMax)
	case c.CategoryFactor < 0 || c.ObjectFactor < 0:
		return fmt.Errorf("catalog: negative popularity factor")
	case c.CategoriesPerPeerMin <= 0 || c.CategoriesPerPeerMax < c.CategoriesPerPeerMin:
		return fmt.Errorf("catalog: CategoriesPerPeer range [%d, %d] invalid",
			c.CategoriesPerPeerMin, c.CategoriesPerPeerMax)
	case c.CategoriesPerPeerMax > c.Categories:
		return fmt.Errorf("catalog: CategoriesPerPeerMax %d exceeds Categories %d",
			c.CategoriesPerPeerMax, c.Categories)
	}
	return nil
}

// Catalog is the immutable global content universe of one simulation run.
type Catalog struct {
	cfg        Config
	objects    [][]ObjectID // objects[c] lists category c's objects by rank (rank 1 first)
	categoryOf []CategoryID // indexed by ObjectID
	catPop     *rng.PowerLaw
	objPop     map[int]*rng.PowerLaw // keyed by category size
	catRank    []CategoryID          // catRank[i] = category with popularity rank i+1
}

// New builds a catalog: category sizes are drawn from cfg's uniform range,
// and the popularity rank order of categories is a random permutation
// (category IDs carry no meaning; ranks do).
func New(cfg Config, r *rng.RNG) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Catalog{
		cfg:     cfg,
		objects: make([][]ObjectID, cfg.Categories),
		catPop:  rng.NewPowerLaw(cfg.Categories, cfg.CategoryFactor),
		objPop:  make(map[int]*rng.PowerLaw),
		catRank: make([]CategoryID, cfg.Categories),
	}
	for i, p := range r.Perm(cfg.Categories) {
		c.catRank[i] = CategoryID(p)
	}
	var next ObjectID
	for cat := 0; cat < cfg.Categories; cat++ {
		n := r.IntRange(cfg.ObjectsPerCategoryMin, cfg.ObjectsPerCategoryMax)
		objs := make([]ObjectID, n)
		for i := range objs {
			objs[i] = next
			c.categoryOf = append(c.categoryOf, CategoryID(cat))
			next++
		}
		c.objects[cat] = objs
		if _, ok := c.objPop[n]; !ok {
			c.objPop[n] = rng.NewPowerLaw(n, cfg.ObjectFactor)
		}
	}
	return c, nil
}

// NumObjects returns the total number of objects.
func (c *Catalog) NumObjects() int { return len(c.categoryOf) }

// NumCategories returns the number of categories.
func (c *Catalog) NumCategories() int { return len(c.objects) }

// Category returns the category of object o.
func (c *Catalog) Category(o ObjectID) CategoryID { return c.categoryOf[o] }

// CategorySize returns the number of objects in category cat.
func (c *Catalog) CategorySize(cat CategoryID) int { return len(c.objects[cat]) }

// Objects returns category cat's objects in rank order. The returned slice
// must not be modified.
func (c *Catalog) Objects(cat CategoryID) []ObjectID { return c.objects[cat] }

// Interest is one peer's content taste: the categories it is interested in
// and its local preference weights over them.
type Interest struct {
	categories []CategoryID
	pref       *rng.Weighted
}

// Categories returns the peer's categories. The returned slice must not be
// modified.
func (in *Interest) Categories() []CategoryID { return in.categories }

// NewInterest draws a peer interest profile: the number of categories is
// uniform in the configured range, the categories themselves are drawn
// without replacement from the global category popularity distribution (so
// popular categories attract more peers), and the local preference weights
// are uniform random, independent of global popularity, exactly as in the
// paper.
func (c *Catalog) NewInterest(r *rng.RNG) *Interest {
	k := r.IntRange(c.cfg.CategoriesPerPeerMin, c.cfg.CategoriesPerPeerMax)
	return c.NewInterestK(k, r)
}

// NewInterestK is NewInterest with an explicit category count, used by the
// Figure 11 sweep over categories per peer.
func (c *Catalog) NewInterestK(k int, r *rng.RNG) *Interest {
	if k > c.cfg.Categories {
		k = c.cfg.Categories
	}
	seen := make(map[CategoryID]bool, k)
	cats := make([]CategoryID, 0, k)
	for len(cats) < k {
		cat := c.catRank[c.catPop.Rank(r)-1]
		if seen[cat] {
			continue
		}
		seen[cat] = true
		cats = append(cats, cat)
	}
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = r.Float64()
		if weights[i] == 0 {
			weights[i] = 0.5
		}
	}
	return &Interest{categories: cats, pref: rng.NewWeighted(weights)}
}

// SampleObject draws one object request for a peer with interest in:
// category by local preference, object by within-category popularity rank.
func (c *Catalog) SampleObject(in *Interest, r *rng.RNG) ObjectID {
	cat := in.categories[in.pref.Index(r)]
	objs := c.objects[cat]
	rank := c.objPop[len(objs)].Rank(r)
	return objs[rank-1]
}

// SampleMiss draws requests until one is not excluded (not already stored or
// pending), mirroring the paper's "ignore hits and continue to generate
// candidate requests until a miss is found". It gives up after maxTries to
// stay robust when a peer owns nearly everything it is interested in; the
// second return value reports success.
func (c *Catalog) SampleMiss(in *Interest, r *rng.RNG, excluded func(ObjectID) bool, maxTries int) (ObjectID, bool) {
	for i := 0; i < maxTries; i++ {
		o := c.SampleObject(in, r)
		if !excluded(o) {
			return o, true
		}
	}
	return 0, false
}

// InitialStore draws up to capacity distinct objects from the peer's
// interest profile, modelling the paper's initial placement "based on the
// peer's category preferences". Fewer than capacity objects are returned
// when the peer's categories are small.
func (c *Catalog) InitialStore(in *Interest, capacity int, r *rng.RNG) []ObjectID {
	total := 0
	for _, cat := range in.categories {
		total += len(c.objects[cat])
	}
	if capacity > total {
		capacity = total
	}
	have := make(map[ObjectID]bool, capacity)
	out := make([]ObjectID, 0, capacity)
	// Draws follow the request distribution; cap the attempts so tiny
	// categories cannot stall initialization.
	for tries := 0; len(out) < capacity && tries < 50*capacity+1000; tries++ {
		o := c.SampleObject(in, r)
		if have[o] {
			continue
		}
		have[o] = true
		out = append(out, o)
	}
	return out
}
