package catalog

import (
	"testing"
	"testing/quick"

	"barter/internal/rng"
)

func testConfig() Config {
	return Config{
		Categories:            30,
		ObjectsPerCategoryMin: 1,
		ObjectsPerCategoryMax: 50,
		CategoryFactor:        0.2,
		ObjectFactor:          0.2,
		CategoriesPerPeerMin:  1,
		CategoriesPerPeerMax:  8,
	}
}

func mustNew(t *testing.T, cfg Config, seed uint64) *Catalog {
	t.Helper()
	c, err := New(cfg, rng.New(seed))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"no categories", func(c *Config) { c.Categories = 0 }, false},
		{"bad object range", func(c *Config) { c.ObjectsPerCategoryMax = 0 }, false},
		{"inverted object range", func(c *Config) { c.ObjectsPerCategoryMin = 10; c.ObjectsPerCategoryMax = 5 }, false},
		{"negative factor", func(c *Config) { c.CategoryFactor = -1 }, false},
		{"bad peer categories", func(c *Config) { c.CategoriesPerPeerMin = 0 }, false},
		{"peer categories exceed catalog", func(c *Config) { c.CategoriesPerPeerMax = 99 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestCatalogShape(t *testing.T) {
	cfg := testConfig()
	c := mustNew(t, cfg, 1)
	if c.NumCategories() != cfg.Categories {
		t.Fatalf("NumCategories = %d, want %d", c.NumCategories(), cfg.Categories)
	}
	total := 0
	for cat := CategoryID(0); int(cat) < c.NumCategories(); cat++ {
		n := c.CategorySize(cat)
		if n < cfg.ObjectsPerCategoryMin || n > cfg.ObjectsPerCategoryMax {
			t.Fatalf("category %d size %d out of range", cat, n)
		}
		total += n
	}
	if c.NumObjects() != total {
		t.Fatalf("NumObjects = %d, want %d", c.NumObjects(), total)
	}
}

func TestObjectCategoryConsistency(t *testing.T) {
	c := mustNew(t, testConfig(), 2)
	for cat := CategoryID(0); int(cat) < c.NumCategories(); cat++ {
		for _, o := range c.Objects(cat) {
			if c.Category(o) != cat {
				t.Fatalf("object %d reports category %d, listed under %d", o, c.Category(o), cat)
			}
		}
	}
}

func TestObjectIDsDense(t *testing.T) {
	c := mustNew(t, testConfig(), 3)
	seen := make([]bool, c.NumObjects())
	for cat := CategoryID(0); int(cat) < c.NumCategories(); cat++ {
		for _, o := range c.Objects(cat) {
			if int(o) < 0 || int(o) >= len(seen) || seen[o] {
				t.Fatalf("object id %d out of range or duplicated", o)
			}
			seen[o] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("object id %d never assigned", id)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := mustNew(t, testConfig(), 42)
	b := mustNew(t, testConfig(), 42)
	if a.NumObjects() != b.NumObjects() {
		t.Fatalf("object counts differ: %d vs %d", a.NumObjects(), b.NumObjects())
	}
	for o := ObjectID(0); int(o) < a.NumObjects(); o++ {
		if a.Category(o) != b.Category(o) {
			t.Fatalf("category of %d differs", o)
		}
	}
}

func TestInterestCategoryCount(t *testing.T) {
	cfg := testConfig()
	c := mustNew(t, cfg, 4)
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		in := c.NewInterest(r)
		k := len(in.Categories())
		if k < cfg.CategoriesPerPeerMin || k > cfg.CategoriesPerPeerMax {
			t.Fatalf("interest has %d categories, want [%d, %d]",
				k, cfg.CategoriesPerPeerMin, cfg.CategoriesPerPeerMax)
		}
		seen := make(map[CategoryID]bool)
		for _, cat := range in.Categories() {
			if seen[cat] {
				t.Fatal("duplicate category in interest")
			}
			seen[cat] = true
		}
	}
}

func TestNewInterestKClampsToCatalog(t *testing.T) {
	cfg := testConfig()
	cfg.Categories = 3
	cfg.CategoriesPerPeerMax = 3
	c := mustNew(t, cfg, 6)
	in := c.NewInterestK(10, rng.New(7))
	if len(in.Categories()) != 3 {
		t.Fatalf("clamped interest has %d categories, want 3", len(in.Categories()))
	}
}

func TestSampleObjectStaysInInterest(t *testing.T) {
	c := mustNew(t, testConfig(), 8)
	r := rng.New(9)
	in := c.NewInterest(r)
	allowed := make(map[CategoryID]bool)
	for _, cat := range in.Categories() {
		allowed[cat] = true
	}
	for i := 0; i < 5000; i++ {
		o := c.SampleObject(in, r)
		if !allowed[c.Category(o)] {
			t.Fatalf("sampled object %d from category %d outside interest", o, c.Category(o))
		}
	}
}

func TestSampleObjectPrefersPopularRanks(t *testing.T) {
	cfg := testConfig()
	cfg.Categories = 1
	cfg.CategoriesPerPeerMin, cfg.CategoriesPerPeerMax = 1, 1
	cfg.ObjectsPerCategoryMin, cfg.ObjectsPerCategoryMax = 100, 100
	cfg.ObjectFactor = 1
	c := mustNew(t, cfg, 10)
	r := rng.New(11)
	in := c.NewInterest(r)
	counts := make(map[ObjectID]int)
	for i := 0; i < 100000; i++ {
		counts[c.SampleObject(in, r)]++
	}
	objs := c.Objects(0)
	if counts[objs[0]] <= counts[objs[99]] {
		t.Fatalf("rank-1 count %d not above rank-100 count %d",
			counts[objs[0]], counts[objs[99]])
	}
}

func TestSampleMissSkipsExcluded(t *testing.T) {
	c := mustNew(t, testConfig(), 12)
	r := rng.New(13)
	in := c.NewInterest(r)
	banned := c.SampleObject(in, r)
	for i := 0; i < 1000; i++ {
		o, ok := c.SampleMiss(in, r, func(o ObjectID) bool { return o == banned }, 100)
		if !ok {
			t.Fatal("SampleMiss gave up with a single exclusion")
		}
		if o == banned {
			t.Fatal("SampleMiss returned an excluded object")
		}
	}
}

func TestSampleMissGivesUpWhenAllExcluded(t *testing.T) {
	c := mustNew(t, testConfig(), 14)
	r := rng.New(15)
	in := c.NewInterest(r)
	if _, ok := c.SampleMiss(in, r, func(ObjectID) bool { return true }, 50); ok {
		t.Fatal("SampleMiss succeeded although everything was excluded")
	}
}

func TestInitialStoreDistinctAndInInterest(t *testing.T) {
	c := mustNew(t, testConfig(), 16)
	r := rng.New(17)
	f := func(capRaw uint8, seed uint16) bool {
		capacity := int(capRaw%40) + 1
		in := c.NewInterest(rng.New(uint64(seed)))
		store := c.InitialStore(in, capacity, r)
		if len(store) > capacity {
			return false
		}
		allowed := make(map[CategoryID]bool)
		for _, cat := range in.Categories() {
			allowed[cat] = true
		}
		seen := make(map[ObjectID]bool)
		for _, o := range store {
			if seen[o] || !allowed[c.Category(o)] {
				return false
			}
			seen[o] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialStoreCapacityExceedsUniverse(t *testing.T) {
	cfg := testConfig()
	cfg.Categories = 2
	cfg.ObjectsPerCategoryMin, cfg.ObjectsPerCategoryMax = 2, 2
	cfg.CategoriesPerPeerMin, cfg.CategoriesPerPeerMax = 1, 2
	c := mustNew(t, cfg, 18)
	r := rng.New(19)
	in := c.NewInterestK(2, r)
	store := c.InitialStore(in, 100, r)
	if len(store) != 4 {
		t.Fatalf("store has %d objects, want the whole 4-object universe", len(store))
	}
}

func BenchmarkSampleObject(b *testing.B) {
	cfg := Config{
		Categories:            300,
		ObjectsPerCategoryMin: 1,
		ObjectsPerCategoryMax: 300,
		CategoryFactor:        0.2,
		ObjectFactor:          0.2,
		CategoriesPerPeerMin:  1,
		CategoriesPerPeerMax:  8,
	}
	r := rng.New(1)
	c, err := New(cfg, r)
	if err != nil {
		b.Fatal(err)
	}
	in := c.NewInterest(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.SampleObject(in, r)
	}
}
