// Package eventq implements the future event list of a discrete-event
// simulation: a 4-ary min-heap of timestamped events plus a virtual clock.
//
// Determinism is a design requirement for the reproduction study: two runs
// with the same seed must execute the same event sequence. Events scheduled
// for the same instant are therefore ordered by a monotonically increasing
// sequence number, so the (timestamp, sequence) order is a strict total
// order and heap ordering never depends on map iteration or pointer values.
//
// The queue is also the simulator's hottest data structure (one heap push and
// pop per simulated event), so it is built to stay off the garbage
// collector's books: heap items are recycled through an internal free list,
// cancellation is lazy (an item is marked and skipped when popped), and a
// Handle carries the item pointer plus its scheduling sequence so Cancel
// needs no lookup map. The 4-ary layout halves sift-down depth relative to a
// binary heap, which is where a pop-heavy workload spends its time.
package eventq

import (
	"errors"
	"fmt"
)

// Event is a unit of scheduled work. Fire is invoked by Queue.Run when the
// virtual clock reaches the event's timestamp.
type Event interface {
	// Fire executes the event at virtual time now.
	Fire(now float64)
}

// Func adapts a plain function to the Event interface.
type Func func(now float64)

// Fire implements Event.
func (f Func) Fire(now float64) { f(now) }

var _ Event = Func(nil)

// ErrPast is returned when an event is scheduled before the current clock.
var ErrPast = errors.New("eventq: schedule in the past")

// Handle identifies a scheduled event so it can be cancelled. The zero Handle
// is invalid. A Handle is only meaningful against the Queue that issued it.
type Handle struct {
	it *item
	// seq is the scheduling instance the handle refers to. Items are
	// recycled, but sequence numbers never are: a stale handle to a fired or
	// cancelled event holds a sequence its item no longer carries, so Cancel
	// recognizes it as dead instead of corrupting the item's next life.
	seq uint64
}

// Valid reports whether h refers to an event that was actually scheduled.
func (h Handle) Valid() bool { return h.it != nil }

type item struct {
	at        float64
	seq       uint64 // 0 while the item rests on the free list
	ev        Event
	cancelled bool
}

// Queue is a future event list with a virtual clock. The zero value is not
// usable; call New.
//
// Queue is not safe for concurrent use: discrete-event simulation is
// inherently sequential, and single-threaded execution is what guarantees
// reproducibility.
type Queue struct {
	heap    []*item
	free    []*item
	clock   float64
	nextSeq uint64
	fired   uint64
	pending int // scheduled and not yet fired or cancelled
}

// New returns an empty queue with the clock at zero.
func New() *Queue {
	return &Queue{}
}

// Now returns the current virtual time.
func (q *Queue) Now() float64 { return q.clock }

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int { return q.pending }

// Fired returns the total number of events executed so far.
func (q *Queue) Fired() uint64 { return q.fired }

// At schedules ev to fire at absolute virtual time at. It returns a Handle
// that can be passed to Cancel. Scheduling at the current instant is allowed;
// scheduling in the past returns ErrPast.
func (q *Queue) At(at float64, ev Event) (Handle, error) {
	if at < q.clock {
		return Handle{}, fmt.Errorf("%w: at=%v now=%v", ErrPast, at, q.clock)
	}
	q.nextSeq++
	var it *item
	if n := len(q.free); n > 0 {
		it = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		it = &item{}
	}
	it.at, it.seq, it.ev, it.cancelled = at, q.nextSeq, ev, false
	q.push(it)
	q.pending++
	return Handle{it: it, seq: it.seq}, nil
}

// After schedules ev to fire delay time units after the current clock.
// Negative delays are rejected with ErrPast.
func (q *Queue) After(delay float64, ev Event) (Handle, error) {
	return q.At(q.clock+delay, ev)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired, was already cancelled, or the handle is
// invalid). Cancellation is lazy — O(1) — and safe against stale handles: a
// handle to an event that fired keeps a sequence number its (recycled) item
// will never carry again.
func (q *Queue) Cancel(h Handle) bool {
	it := h.it
	if it == nil || it.seq != h.seq || it.cancelled {
		return false
	}
	it.cancelled = true
	q.pending--
	return true
}

// recycle returns a popped item to the free list. Clearing seq makes every
// outstanding handle to the item's previous life fail Cancel's sequence
// check, and dropping ev releases the event for collection.
func (q *Queue) recycle(it *item) {
	it.ev = nil
	it.seq = 0
	it.cancelled = false
	q.free = append(q.free, it)
}

// Step pops and fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired (false when the queue is
// empty). The popped item is recycled before Fire runs: the event may freely
// schedule new work, and any handle to the fired event is already dead.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		it := q.pop()
		if it.cancelled {
			q.recycle(it)
			continue
		}
		at, ev := it.at, it.ev
		q.recycle(it)
		q.pending--
		q.clock = at
		q.fired++
		ev.Fire(q.clock)
		return true
	}
	return false
}

// RunUntil fires events in timestamp order until the queue is empty or the
// next event is strictly after horizon. The clock is finally advanced to
// horizon, so Now() == horizon afterwards. It returns the number of events
// fired.
func (q *Queue) RunUntil(horizon float64) uint64 {
	var n uint64
	for {
		it := q.peek()
		if it == nil || it.at > horizon {
			break
		}
		if q.Step() {
			n++
		}
	}
	if horizon > q.clock {
		q.clock = horizon
	}
	return n
}

// NextAt returns the timestamp of the earliest pending event and true, or
// (0, false) when the queue is empty. It does not advance the clock. The
// sharded coordinator uses it to fast-forward over epoch windows in which no
// domain has work: the jump is a pure function of queue state, so skipping
// empty windows cannot perturb the event sequence.
func (q *Queue) NextAt() (float64, bool) {
	it := q.peek()
	if it == nil {
		return 0, false
	}
	return it.at, true
}

// peek returns the earliest pending item without removing it, skipping over
// lazily cancelled entries.
func (q *Queue) peek() *item {
	for len(q.heap) > 0 {
		it := q.heap[0]
		if !it.cancelled {
			return it
		}
		q.recycle(q.pop())
	}
	return nil
}

// less orders items by timestamp, breaking ties by schedule order so that the
// event sequence is fully deterministic. Because seq is unique the order is
// strict, and any heap shape pops the same sequence of events.
func less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The heap is 4-ary: children of i are 4i+1 .. 4i+4. Sift operations move a
// hole instead of swapping, halving the writes of the classic exchange loop.

func (q *Queue) push(it *item) {
	q.heap = append(q.heap, it)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(it, q.heap[parent]) {
			break
		}
		q.heap[i] = q.heap[parent]
		i = parent
	}
	q.heap[i] = it
}

func (q *Queue) pop() *item {
	n := len(q.heap)
	it := q.heap[0]
	last := q.heap[n-1]
	q.heap[n-1] = nil
	q.heap = q.heap[:n-1]
	if n > 1 {
		q.down(last)
	}
	return it
}

// down sifts it from the root to its position, moving the hole ahead of it.
func (q *Queue) down(it *item) {
	n := len(q.heap)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(q.heap[c], q.heap[smallest]) {
				smallest = c
			}
		}
		if !less(q.heap[smallest], it) {
			break
		}
		q.heap[i] = q.heap[smallest]
		i = smallest
	}
	q.heap[i] = it
}
