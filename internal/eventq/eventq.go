// Package eventq implements the future event list of a discrete-event
// simulation: a binary min-heap of timestamped events plus a virtual clock.
//
// Determinism is a design requirement for the reproduction study: two runs
// with the same seed must execute the same event sequence. Events scheduled
// for the same instant are therefore ordered by a monotonically increasing
// sequence number, so heap ordering never depends on map iteration or pointer
// values.
package eventq

import (
	"errors"
	"fmt"
)

// Event is a unit of scheduled work. Fire is invoked by Queue.Run when the
// virtual clock reaches the event's timestamp.
type Event interface {
	// Fire executes the event at virtual time now.
	Fire(now float64)
}

// Func adapts a plain function to the Event interface.
type Func func(now float64)

// Fire implements Event.
func (f Func) Fire(now float64) { f(now) }

var _ Event = Func(nil)

// ErrPast is returned when an event is scheduled before the current clock.
var ErrPast = errors.New("eventq: schedule in the past")

// Handle identifies a scheduled event so it can be cancelled. The zero Handle
// is invalid.
type Handle struct {
	seq uint64
}

// Valid reports whether h refers to an event that was actually scheduled.
func (h Handle) Valid() bool { return h.seq != 0 }

type item struct {
	at        float64
	seq       uint64
	ev        Event
	cancelled bool
	index     int // position in heap, -1 once popped
}

// Queue is a future event list with a virtual clock. The zero value is not
// usable; call New.
//
// Queue is not safe for concurrent use: discrete-event simulation is
// inherently sequential, and single-threaded execution is what guarantees
// reproducibility.
type Queue struct {
	heap    []*item
	byseq   map[uint64]*item
	clock   float64
	nextSeq uint64
	fired   uint64
}

// New returns an empty queue with the clock at zero.
func New() *Queue {
	return &Queue{byseq: make(map[uint64]*item)}
}

// Now returns the current virtual time.
func (q *Queue) Now() float64 { return q.clock }

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int { return len(q.byseq) }

// Fired returns the total number of events executed so far.
func (q *Queue) Fired() uint64 { return q.fired }

// At schedules ev to fire at absolute virtual time at. It returns a Handle
// that can be passed to Cancel. Scheduling at the current instant is allowed;
// scheduling in the past returns ErrPast.
func (q *Queue) At(at float64, ev Event) (Handle, error) {
	if at < q.clock {
		return Handle{}, fmt.Errorf("%w: at=%v now=%v", ErrPast, at, q.clock)
	}
	q.nextSeq++
	it := &item{at: at, seq: q.nextSeq, ev: ev}
	q.byseq[it.seq] = it
	q.push(it)
	return Handle{seq: it.seq}, nil
}

// After schedules ev to fire delay time units after the current clock.
// Negative delays are rejected with ErrPast.
func (q *Queue) After(delay float64, ev Event) (Handle, error) {
	return q.At(q.clock+delay, ev)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired, was already cancelled, or the handle is
// invalid).
func (q *Queue) Cancel(h Handle) bool {
	it, ok := q.byseq[h.seq]
	if !ok || it.cancelled {
		return false
	}
	// Lazy deletion: mark and drop the map entry; the heap entry is skipped
	// when popped. This keeps Cancel O(1) and is safe because cancelled items
	// never fire.
	it.cancelled = true
	delete(q.byseq, h.seq)
	return true
}

// Step pops and fires the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was fired (false when the queue is
// empty).
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		it := q.pop()
		if it.cancelled {
			continue
		}
		delete(q.byseq, it.seq)
		q.clock = it.at
		q.fired++
		it.ev.Fire(q.clock)
		return true
	}
	return false
}

// RunUntil fires events in timestamp order until the queue is empty or the
// next event is strictly after horizon. The clock is finally advanced to
// horizon, so Now() == horizon afterwards. It returns the number of events
// fired.
func (q *Queue) RunUntil(horizon float64) uint64 {
	var n uint64
	for {
		it := q.peek()
		if it == nil || it.at > horizon {
			break
		}
		if q.Step() {
			n++
		}
	}
	if horizon > q.clock {
		q.clock = horizon
	}
	return n
}

// peek returns the earliest pending item without removing it, skipping over
// lazily cancelled entries.
func (q *Queue) peek() *item {
	for len(q.heap) > 0 {
		it := q.heap[0]
		if !it.cancelled {
			return it
		}
		q.pop()
	}
	return nil
}

// less orders items by timestamp, breaking ties by schedule order so that the
// event sequence is fully deterministic.
func less(a, b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) push(it *item) {
	it.index = len(q.heap)
	q.heap = append(q.heap, it)
	q.up(it.index)
}

func (q *Queue) pop() *item {
	n := len(q.heap)
	it := q.heap[0]
	q.swap(0, n-1)
	q.heap[n-1] = nil
	q.heap = q.heap[:n-1]
	if len(q.heap) > 0 {
		q.down(0)
	}
	it.index = -1
	return it
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(q.heap[i], q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && less(q.heap[left], q.heap[smallest]) {
			smallest = left
		}
		if right < n && less(q.heap[right], q.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
