package eventq

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Now() != 0 {
		t.Fatalf("new queue clock = %v, want 0", q.Now())
	}
	if q.Len() != 0 {
		t.Fatalf("new queue len = %d, want 0", q.Len())
	}
	if q.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestFiresInTimestampOrder(t *testing.T) {
	q := New()
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		if _, err := q.At(at, Func(func(now float64) { got = append(got, now) })); err != nil {
			t.Fatalf("At(%v): %v", at, err)
		}
	}
	q.RunUntil(10)
	want := []float64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		if _, err := q.At(7, Func(func(float64) { got = append(got, i) })); err != nil {
			t.Fatal(err)
		}
	}
	q.RunUntil(7)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order at index %d = %d, want %d", i, v, i)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	q := New()
	if _, err := q.At(5, Func(func(float64) {})); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(5)
	if _, err := q.At(4, Func(func(float64) {})); !errors.Is(err, ErrPast) {
		t.Fatalf("At in the past: err = %v, want ErrPast", err)
	}
	if _, err := q.After(-1, Func(func(float64) {})); !errors.Is(err, ErrPast) {
		t.Fatalf("After negative: err = %v, want ErrPast", err)
	}
}

func TestScheduleAtCurrentInstant(t *testing.T) {
	q := New()
	fired := false
	if _, err := q.At(0, Func(func(float64) { fired = true })); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(0)
	if !fired {
		t.Fatal("event at the current instant did not fire")
	}
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	h, err := q.At(1, Func(func(float64) { fired = true }))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel(h) {
		t.Fatal("Cancel of pending event returned false")
	}
	if q.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	if q.Len() != 0 {
		t.Fatalf("Len after cancel = %d, want 0", q.Len())
	}
	q.RunUntil(2)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelInvalidHandle(t *testing.T) {
	q := New()
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle returned true")
	}
	var h Handle
	if h.Valid() {
		t.Fatal("zero handle reports valid")
	}
}

func TestCancelAfterFire(t *testing.T) {
	q := New()
	h, err := q.At(1, Func(func(float64) {}))
	if err != nil {
		t.Fatal(err)
	}
	q.RunUntil(1)
	if q.Cancel(h) {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	q := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		if _, err := q.At(at, Func(func(now float64) { fired = append(fired, now) })); err != nil {
			t.Fatal(err)
		}
	}
	n := q.RunUntil(3)
	if n != 3 {
		t.Fatalf("RunUntil(3) fired %d, want 3", n)
	}
	if q.Now() != 3 {
		t.Fatalf("clock = %v, want 3", q.Now())
	}
	if q.Len() != 2 {
		t.Fatalf("pending = %d, want 2", q.Len())
	}
	// Clock advances to horizon even with no event exactly there.
	q.RunUntil(4.5)
	if q.Now() != 4.5 {
		t.Fatalf("clock = %v, want 4.5", q.Now())
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	q := New()
	var order []string
	if _, err := q.At(1, Func(func(float64) {
		order = append(order, "first")
		if _, err := q.After(1, Func(func(float64) { order = append(order, "second") })); err != nil {
			t.Errorf("nested After: %v", err)
		}
	})); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(10)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
	if q.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", q.Fired())
	}
}

func TestEventCancelsPeer(t *testing.T) {
	q := New()
	fired := false
	var victim Handle
	var err error
	victim, err = q.At(2, Func(func(float64) { fired = true }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.At(1, Func(func(float64) { q.Cancel(victim) })); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(3)
	if fired {
		t.Fatal("event cancelled by an earlier event still fired")
	}
}

// TestPropertyHeapOrdersArbitraryTimestamps verifies, for random schedules,
// that events fire in nondecreasing timestamp order and every non-cancelled
// event fires exactly once.
func TestPropertyHeapOrdersArbitraryTimestamps(t *testing.T) {
	f := func(raw []uint16, cancelMask []bool) bool {
		q := New()
		var fireTimes []float64
		handles := make([]Handle, len(raw))
		expected := 0
		for i, r := range raw {
			at := float64(r % 1000)
			h, err := q.At(at, Func(func(now float64) { fireTimes = append(fireTimes, now) }))
			if err != nil {
				return false
			}
			handles[i] = h
		}
		cancelled := make(map[int]bool)
		for i := range handles {
			if i < len(cancelMask) && cancelMask[i] {
				q.Cancel(handles[i])
				cancelled[i] = true
			}
		}
		for i := range handles {
			if !cancelled[i] {
				expected++
			}
		}
		q.RunUntil(1e9)
		if len(fireTimes) != expected {
			return false
		}
		return sort.Float64sAreSorted(fireTimes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomWorkload(t *testing.T) {
	q := New()
	r := rand.New(rand.NewSource(42))
	const n = 20000
	var fired int
	last := -1.0
	for i := 0; i < n; i++ {
		at := r.Float64() * 1000
		if _, err := q.At(at, Func(func(now float64) {
			if now < last {
				t.Errorf("time went backwards: %v after %v", now, last)
			}
			last = now
			fired++
		})); err != nil {
			t.Fatal(err)
		}
	}
	q.RunUntil(1001)
	if fired != n {
		t.Fatalf("fired %d of %d events", fired, n)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	q := New()
	r := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := q.Now() + r.Float64()
		if _, err := q.At(at, Func(func(float64) {})); err != nil {
			b.Fatal(err)
		}
		if i%4 == 3 {
			q.Step()
		}
	}
}
