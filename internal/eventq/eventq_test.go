package eventq

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Now() != 0 {
		t.Fatalf("new queue clock = %v, want 0", q.Now())
	}
	if q.Len() != 0 {
		t.Fatalf("new queue len = %d, want 0", q.Len())
	}
	if q.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestFiresInTimestampOrder(t *testing.T) {
	q := New()
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		if _, err := q.At(at, Func(func(now float64) { got = append(got, now) })); err != nil {
			t.Fatalf("At(%v): %v", at, err)
		}
	}
	q.RunUntil(10)
	want := []float64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		if _, err := q.At(7, Func(func(float64) { got = append(got, i) })); err != nil {
			t.Fatal(err)
		}
	}
	q.RunUntil(7)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order at index %d = %d, want %d", i, v, i)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	q := New()
	if _, err := q.At(5, Func(func(float64) {})); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(5)
	if _, err := q.At(4, Func(func(float64) {})); !errors.Is(err, ErrPast) {
		t.Fatalf("At in the past: err = %v, want ErrPast", err)
	}
	if _, err := q.After(-1, Func(func(float64) {})); !errors.Is(err, ErrPast) {
		t.Fatalf("After negative: err = %v, want ErrPast", err)
	}
}

func TestScheduleAtCurrentInstant(t *testing.T) {
	q := New()
	fired := false
	if _, err := q.At(0, Func(func(float64) { fired = true })); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(0)
	if !fired {
		t.Fatal("event at the current instant did not fire")
	}
}

func TestCancel(t *testing.T) {
	q := New()
	fired := false
	h, err := q.At(1, Func(func(float64) { fired = true }))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cancel(h) {
		t.Fatal("Cancel of pending event returned false")
	}
	if q.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	if q.Len() != 0 {
		t.Fatalf("Len after cancel = %d, want 0", q.Len())
	}
	q.RunUntil(2)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelInvalidHandle(t *testing.T) {
	q := New()
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle returned true")
	}
	var h Handle
	if h.Valid() {
		t.Fatal("zero handle reports valid")
	}
}

func TestCancelAfterFire(t *testing.T) {
	q := New()
	h, err := q.At(1, Func(func(float64) {}))
	if err != nil {
		t.Fatal(err)
	}
	q.RunUntil(1)
	if q.Cancel(h) {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	q := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		if _, err := q.At(at, Func(func(now float64) { fired = append(fired, now) })); err != nil {
			t.Fatal(err)
		}
	}
	n := q.RunUntil(3)
	if n != 3 {
		t.Fatalf("RunUntil(3) fired %d, want 3", n)
	}
	if q.Now() != 3 {
		t.Fatalf("clock = %v, want 3", q.Now())
	}
	if q.Len() != 2 {
		t.Fatalf("pending = %d, want 2", q.Len())
	}
	// Clock advances to horizon even with no event exactly there.
	q.RunUntil(4.5)
	if q.Now() != 4.5 {
		t.Fatalf("clock = %v, want 4.5", q.Now())
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	q := New()
	var order []string
	if _, err := q.At(1, Func(func(float64) {
		order = append(order, "first")
		if _, err := q.After(1, Func(func(float64) { order = append(order, "second") })); err != nil {
			t.Errorf("nested After: %v", err)
		}
	})); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(10)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
	if q.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", q.Fired())
	}
}

func TestEventCancelsPeer(t *testing.T) {
	q := New()
	fired := false
	var victim Handle
	var err error
	victim, err = q.At(2, Func(func(float64) { fired = true }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.At(1, Func(func(float64) { q.Cancel(victim) })); err != nil {
		t.Fatal(err)
	}
	q.RunUntil(3)
	if fired {
		t.Fatal("event cancelled by an earlier event still fired")
	}
}

// TestPropertyHeapOrdersArbitraryTimestamps verifies, for random schedules,
// that events fire in nondecreasing timestamp order and every non-cancelled
// event fires exactly once.
func TestPropertyHeapOrdersArbitraryTimestamps(t *testing.T) {
	f := func(raw []uint16, cancelMask []bool) bool {
		q := New()
		var fireTimes []float64
		handles := make([]Handle, len(raw))
		expected := 0
		for i, r := range raw {
			at := float64(r % 1000)
			h, err := q.At(at, Func(func(now float64) { fireTimes = append(fireTimes, now) }))
			if err != nil {
				return false
			}
			handles[i] = h
		}
		cancelled := make(map[int]bool)
		for i := range handles {
			if i < len(cancelMask) && cancelMask[i] {
				q.Cancel(handles[i])
				cancelled[i] = true
			}
		}
		for i := range handles {
			if !cancelled[i] {
				expected++
			}
		}
		q.RunUntil(1e9)
		if len(fireTimes) != expected {
			return false
		}
		return sort.Float64sAreSorted(fireTimes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomWorkload(t *testing.T) {
	q := New()
	r := rand.New(rand.NewSource(42))
	const n = 20000
	var fired int
	last := -1.0
	for i := 0; i < n; i++ {
		at := r.Float64() * 1000
		if _, err := q.At(at, Func(func(now float64) {
			if now < last {
				t.Errorf("time went backwards: %v after %v", now, last)
			}
			last = now
			fired++
		})); err != nil {
			t.Fatal(err)
		}
	}
	q.RunUntil(1001)
	if fired != n {
		t.Fatalf("fired %d of %d events", fired, n)
	}
}

// TestStaleHandleAfterItemReuse exercises the free list: an item recycled
// after firing (or after a cancelled pop) is reused for a new event, and the
// old handle must not be able to cancel the item's new occupant.
func TestStaleHandleAfterItemReuse(t *testing.T) {
	q := New()
	h1, err := q.At(1, Func(func(float64) {}))
	if err != nil {
		t.Fatal(err)
	}
	q.RunUntil(1) // fires and recycles h1's item
	fired := false
	h2, err := q.At(2, Func(func(float64) { fired = true }))
	if err != nil {
		t.Fatal(err)
	}
	if q.Cancel(h1) {
		t.Fatal("stale handle cancelled a reused item")
	}
	q.RunUntil(2)
	if !fired {
		t.Fatal("event on reused item did not fire")
	}
	if q.Cancel(h2) {
		t.Fatal("Cancel after fire returned true on reused item")
	}
}

// TestCancelledItemsAreReused verifies cancelled entries drain through the
// free list instead of accumulating in the heap forever.
func TestCancelledItemsAreReused(t *testing.T) {
	q := New()
	for round := 0; round < 100; round++ {
		h, err := q.After(1, Func(func(float64) { t.Error("cancelled event fired") }))
		if err != nil {
			t.Fatal(err)
		}
		q.Cancel(h)
		q.RunUntil(q.Now() + 2)
	}
	if len(q.heap) != 0 {
		t.Fatalf("heap retains %d entries after all cancels drained", len(q.heap))
	}
	if got := len(q.free); got == 0 || got > 2 {
		t.Fatalf("free list holds %d items, want 1 or 2", got)
	}
}

// TestLenTracksCancelledAndFired pins Len across interleaved schedule,
// cancel, and fire operations.
func TestLenTracksCancelledAndFired(t *testing.T) {
	q := New()
	var hs []Handle
	for i := 0; i < 10; i++ {
		h, err := q.At(float64(i+1), Func(func(float64) {}))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	q.Cancel(hs[3])
	q.Cancel(hs[7])
	if q.Len() != 8 {
		t.Fatalf("Len after 2 cancels = %d, want 8", q.Len())
	}
	q.RunUntil(5) // fires events at 1,2,3,5 (4 was cancelled)
	if q.Len() != 4 {
		t.Fatalf("Len after RunUntil(5) = %d, want 4", q.Len())
	}
	q.RunUntil(100)
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", q.Len())
	}
	if q.Fired() != 8 {
		t.Fatalf("Fired = %d, want 8", q.Fired())
	}
}

// TestQuaternaryHeapRandomOpsWithCancels mixes scheduling, firing, and
// cancelling at random and checks the pop order stays nondecreasing with
// schedule-order tie-breaking.
func TestQuaternaryHeapRandomOpsWithCancels(t *testing.T) {
	q := New()
	r := rand.New(rand.NewSource(99))
	type rec struct{ at float64 }
	var fired []rec
	live := make(map[int]Handle)
	next := 0
	for i := 0; i < 50000; i++ {
		switch op := r.Intn(10); {
		case op < 6:
			at := q.Now() + r.Float64()*100
			h, err := q.At(at, Func(func(now float64) { fired = append(fired, rec{at: now}) }))
			if err != nil {
				t.Fatal(err)
			}
			live[next] = h
			next++
		case op < 8:
			for k, h := range live { // cancel one arbitrary live handle
				q.Cancel(h)
				delete(live, k)
				break
			}
		default:
			q.Step()
		}
	}
	q.RunUntil(1e12)
	for i := 1; i < len(fired); i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("fire order regressed at %d: %v after %v", i, fired[i].at, fired[i-1].at)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", q.Len())
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	q := New()
	r := rand.New(rand.NewSource(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := q.Now() + r.Float64()
		if _, err := q.At(at, Func(func(float64) {})); err != nil {
			b.Fatal(err)
		}
		if i%4 == 3 {
			q.Step()
		}
	}
}

func TestNextAt(t *testing.T) {
	q := New()
	if _, ok := q.NextAt(); ok {
		t.Fatal("empty queue reported a pending event")
	}
	if _, err := q.At(7, Func(func(float64) {})); err != nil {
		t.Fatal(err)
	}
	h, err := q.At(3, Func(func(float64) {}))
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := q.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt = %v, %v; want 3, true", at, ok)
	}
	// NextAt must see through lazily-cancelled heap heads.
	q.Cancel(h)
	if at, ok := q.NextAt(); !ok || at != 7 {
		t.Fatalf("NextAt after cancel = %v, %v; want 7, true", at, ok)
	}
	q.RunUntil(10)
	if _, ok := q.NextAt(); ok {
		t.Fatal("drained queue reported a pending event")
	}
}
