package runner

import (
	"strings"
	"sync"
	"testing"

	"barter/internal/catalog"
	"barter/internal/sim"
)

// tinyConfig is a miniature world that runs in tens of milliseconds, small
// enough that runner tests can afford grids of them even under -race.
func tinyConfig(seed uint64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 12
	cfg.Catalog = catalog.Config{
		Categories:            4,
		ObjectsPerCategoryMin: 2,
		ObjectsPerCategoryMax: 6,
		CategoryFactor:        0.2,
		ObjectFactor:          0.2,
		CategoriesPerPeerMin:  1,
		CategoriesPerPeerMax:  3,
	}
	cfg.ObjectKbits = 2000
	cfg.BlockKbits = 250
	cfg.StorageMinObjects = 4
	cfg.StorageMaxObjects = 8
	cfg.MaxPending = 4
	cfg.Duration = 5_000
	cfg.EvictionInterval = 600
	cfg.RetryInterval = 120
	cfg.Seed = seed
	return cfg
}

func grid(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := tinyConfig(uint64(i + 1))
		cfg.UploadKbps = 20 + 10*float64(i%4)
		jobs[i] = Job{Config: cfg, Label: "tiny"}
	}
	return jobs
}

// fingerprint reduces a sim result to comparable scalars.
func fingerprint(r *sim.Result) [3]float64 {
	return [3]float64{float64(r.Events), float64(r.CompletedSharing), r.ExchangeFraction}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	jobs := grid(6)
	results, err := Run(jobs, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Index != i {
			t.Fatalf("results[%d].Index = %d", i, res.Index)
		}
		if res.Job.Config.Seed != jobs[i].Config.Seed {
			t.Fatalf("results[%d] carries job seed %d, want %d", i, res.Job.Config.Seed, jobs[i].Config.Seed)
		}
		if res.Primary() == nil {
			t.Fatalf("results[%d] has no primary result", i)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	jobs := grid(6)
	seq, err := Run(jobs, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(jobs, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if fingerprint(seq[i].Primary()) != fingerprint(par[i].Primary()) {
			t.Fatalf("job %d diverged between parallel levels: %v vs %v",
				i, fingerprint(seq[i].Primary()), fingerprint(par[i].Primary()))
		}
	}
}

func TestReplicaZeroKeepsConfiguredSeed(t *testing.T) {
	jobs := grid(3)
	direct, err := Run(jobs, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	replicated, err := Run(jobs, Options{Parallel: 4, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if len(replicated[i].Replicas) != 3 {
			t.Fatalf("job %d: %d replicas, want 3", i, len(replicated[i].Replicas))
		}
		if fingerprint(direct[i].Primary()) != fingerprint(replicated[i].Primary()) {
			t.Fatalf("job %d: replica 0 diverged from the single-replica run", i)
		}
	}
}

func TestReplicasDiverge(t *testing.T) {
	results, err := Run(grid(1), Options{Parallel: 2, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	rs := results[0].Replicas
	if fingerprint(rs[0]) == fingerprint(rs[1]) && fingerprint(rs[1]) == fingerprint(rs[2]) {
		t.Fatal("all three replicas produced identical runs (derived seeds not applied)")
	}
}

func TestJobSeedContract(t *testing.T) {
	if got := JobSeed(7, 3, 0); got != 7 {
		t.Fatalf("replica 0 seed = %d, want the configured 7", got)
	}
	seen := map[uint64]bool{}
	for job := 0; job < 4; job++ {
		for rep := 1; rep < 4; rep++ {
			s := JobSeed(7, job, rep)
			if seen[s] {
				t.Fatalf("derived seed %d repeated at job %d replica %d", s, job, rep)
			}
			seen[s] = true
			if s2 := JobSeed(7, job, rep); s2 != s {
				t.Fatalf("JobSeed not pure: %d then %d", s, s2)
			}
		}
	}
}

func TestFinalizeRunsPerReplica(t *testing.T) {
	var (
		mu    sync.Mutex
		seeds []uint64
	)
	jobs := grid(2)
	for i := range jobs {
		jobs[i].Finalize = func(c sim.Config) sim.Config {
			mu.Lock()
			seeds = append(seeds, c.Seed)
			mu.Unlock()
			return c
		}
	}
	if _, err := Run(jobs, Options{Parallel: 2, Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 4 {
		t.Fatalf("finalize ran %d times, want 4", len(seeds))
	}
	distinct := map[uint64]bool{}
	for _, s := range seeds {
		distinct[s] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("finalize saw %d distinct seeds, want 4 (one per job x replica)", len(distinct))
	}
}

func TestErrorPropagates(t *testing.T) {
	jobs := grid(3)
	jobs[1].Config.NumPeers = 1 // fails validation
	jobs[1].Label = "badjob"
	_, err := Run(jobs, Options{Parallel: 2})
	if err == nil {
		t.Fatal("invalid job config did not surface an error")
	}
	if !strings.Contains(err.Error(), "badjob") {
		t.Fatalf("error %q does not name the failing job", err)
	}
}

func TestProgressReportsEveryRun(t *testing.T) {
	var (
		mu    sync.Mutex
		lines []string
	)
	_, err := Run(grid(3), Options{Parallel: 4, Replicas: 2, Progress: func(msg string) {
		mu.Lock()
		lines = append(lines, msg)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 6 {
		t.Fatalf("progress fired %d times, want 6 (3 jobs x 2 replicas)", len(lines))
	}
}

func TestDefaultsApplied(t *testing.T) {
	// Parallel and Replicas at zero mean NumCPU workers and one replica.
	results, err := Run(grid(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if len(res.Replicas) != 1 {
			t.Fatalf("job %d: %d replicas by default, want 1", i, len(res.Replicas))
		}
	}
}
