// Package runner executes grids of independent simulation runs in parallel.
//
// The paper's evaluation (Section IV) is a grid of independent points —
// policies x upload-capacity sweeps x popularity sweeps — optionally
// replicated over several seeds. Every point is an isolated sim.Sim, so the
// grid is embarrassingly parallel; the runner fans the jobs out over a
// bounded worker pool and reassembles the results in submission order.
//
// Determinism contract: a job's effective seed depends only on
// (job.Config.Seed, job index, replica index) via rng.DeriveSeed — never on
// worker count or goroutine scheduling. Replica 0 runs the configured seed
// unchanged, so a single-replica grid produces byte-for-byte the output a
// sequential loop over the same configs would, at any parallelism.
package runner

import (
	"fmt"
	"runtime"
	"sync"

	"barter/internal/rng"
	"barter/internal/sim"
)

// Job is one grid point: a complete simulation configuration plus an
// optional label used in progress messages.
//
// Config is copied by value per replica, so pointer-typed fields holding
// per-run mutable state — above all a stateful Ranker such as the eMule
// credit tracker — must NOT be set on Config directly: the one instance
// would be shared by concurrently-running replicas (a data race) and would
// leak credit history across runs (scheduling-dependent output). Construct
// such state in Finalize instead, which runs once per replica.
type Job struct {
	Config sim.Config
	Label  string
	// Finalize, when non-nil, maps the seed-derived config to the config
	// actually run, once per replica. Use it to build any per-run mutable
	// state (see the Config note above) and any mechanism keyed to the
	// run's random draws — e.g. the KaZaA cheat model, whose misreporting
	// set must equal the replica's own free-rider set.
	Finalize func(sim.Config) sim.Config
}

// Options tunes one Run invocation.
type Options struct {
	// Parallel bounds the worker pool; <= 0 means runtime.NumCPU().
	Parallel int
	// Replicas runs every job this many times with distinct derived seeds;
	// <= 0 means 1. Replica 0 keeps the job's configured seed, replica r > 0
	// runs rng.DeriveSeed(seed, jobIndex, r).
	Replicas int
	// Progress, when non-nil, receives one line per completed run. Lines are
	// emitted as runs finish, so their order varies with scheduling; use it
	// for liveness, not for output. Calls are serialized: the callback never
	// runs concurrently with itself, so plain writers are safe.
	Progress func(msg string)
}

func (o Options) parallel() int {
	if o.Parallel <= 0 {
		return runtime.NumCPU()
	}
	return o.Parallel
}

func (o Options) replicas() int {
	if o.Replicas <= 0 {
		return 1
	}
	return o.Replicas
}

// Result is the outcome of one job: the per-replica simulation results in
// replica order, or the first error any replica hit.
type Result struct {
	Job      Job
	Index    int
	Replicas []*sim.Result
	Err      error
}

// Primary returns the replica-0 result (the one using the job's own seed).
func (r *Result) Primary() *sim.Result {
	if len(r.Replicas) == 0 {
		return nil
	}
	return r.Replicas[0]
}

// JobSeed returns the effective seed of (seed, job, replica) under the
// determinism contract: replica 0 is the identity, replica r > 0 derives a
// fresh stream keyed by job and replica.
func JobSeed(seed uint64, job, replica int) uint64 {
	if replica == 0 {
		return seed
	}
	return rng.DeriveSeed(seed, uint64(job), uint64(replica))
}

// unit is one work item: a single replica of a single job.
type unit struct {
	job     int
	replica int
	cfg     sim.Config
}

// Run executes every job, fanning replicas out over the worker pool, and
// returns one Result per job in submission order. It returns the first
// error encountered (by submission order) alongside the full result slice,
// so callers can still inspect completed runs.
func Run(jobs []Job, opts Options) ([]Result, error) {
	results := make([]Result, len(jobs))
	reps := opts.replicas()
	units := make([]unit, 0, len(jobs)*reps)
	for i, j := range jobs {
		results[i] = Result{Job: j, Index: i, Replicas: make([]*sim.Result, reps)}
		for r := 0; r < reps; r++ {
			cfg := j.Config
			cfg.Seed = JobSeed(j.Config.Seed, i, r)
			if j.Finalize != nil {
				cfg = j.Finalize(cfg)
			}
			units = append(units, unit{job: i, replica: r, cfg: cfg})
		}
	}

	workers := opts.parallel()
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu     sync.Mutex
		next   int
		failed bool
		wg     sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if next >= len(units) || failed {
				mu.Unlock()
				return
			}
			u := units[next]
			next++
			mu.Unlock()

			res, err := runOne(u.cfg)
			mu.Lock()
			if err != nil {
				failed = true
				if results[u.job].Err == nil {
					results[u.job].Err = fmt.Errorf("job %d (%s) replica %d: %w",
						u.job, label(results[u.job].Job), u.replica, err)
				}
			} else {
				results[u.job].Replicas[u.replica] = res
			}
			if opts.Progress != nil {
				// Under mu so unsynchronized callbacks (plain writers) are
				// safe; the callback is expected to be quick logging.
				opts.Progress(fmt.Sprintf("done %s replica %d/%d", label(results[u.job].Job), u.replica+1, reps))
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, results[i].Err
		}
	}
	return results, nil
}

func label(j Job) string {
	if j.Label != "" {
		return j.Label
	}
	return "job"
}

func runOne(cfg sim.Config) (*sim.Result, error) {
	s, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
