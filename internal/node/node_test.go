package node

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/transport"
)

const testTimeout = 30 * time.Second

// testNet wires nodes together over an in-memory transport with a shared
// address directory (the lookup service the paper treats as external).
type testNet struct {
	t     *testing.T
	tr    transport.Transport
	mu    sync.Mutex
	addrs map[core.PeerID]string
	nodes []*Node
}

func newTestNet(t *testing.T) *testNet {
	t.Helper()
	return &testNet{t: t, tr: transport.NewMem(), addrs: make(map[core.PeerID]string)}
}

func (tn *testNet) lookup(p core.PeerID) (string, bool) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	a, ok := tn.addrs[p]
	return a, ok
}

func (tn *testNet) spawn(id core.PeerID, mutate func(*Config)) *Node {
	tn.t.Helper()
	cfg := Config{
		ID:           id,
		Transport:    tn.tr,
		Lookup:       tn.lookup,
		Share:        true,
		UploadSlots:  4,
		BlockSize:    1024,
		TickInterval: 5 * time.Millisecond,
		StallTicks:   20,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		tn.t.Fatalf("spawn %d: %v", id, err)
	}
	tn.mu.Lock()
	tn.addrs[id] = n.Addr()
	tn.nodes = append(tn.nodes, n)
	tn.mu.Unlock()
	tn.t.Cleanup(n.Close)
	return n
}

func (tn *testNet) addrOf(id core.PeerID) string {
	a, ok := tn.lookup(id)
	if !ok {
		tn.t.Fatalf("no address for %d", id)
	}
	return a
}

func payload(obj catalog.ObjectID, size int) []byte {
	out := make([]byte, size)
	seed := sha256.Sum256([]byte(fmt.Sprintf("object-%d", obj)))
	for i := range out {
		out[i] = seed[i%32] ^ byte(i)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil transport accepted")
	}
	if _, err := New(Config{
		Transport: transport.NewMem(),
		Policy:    core.Policy{Kind: core.ShortFirst, MaxRing: 1},
	}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestAddAndQueryObject(t *testing.T) {
	tn := newTestNet(t)
	n := tn.spawn(1, nil)
	data := payload(10, 5000)
	n.AddObject(10, data)
	if !n.Has(10) {
		t.Fatal("Has(10) false after AddObject")
	}
	if n.Has(11) {
		t.Fatal("Has(11) true for missing object")
	}
	if !bytes.Equal(n.Object(10), data) {
		t.Fatal("Object(10) corrupted")
	}
	if n.Object(11) != nil {
		t.Fatal("Object(11) non-nil")
	}
}

func TestPlainDownload(t *testing.T) {
	tn := newTestNet(t)
	server := tn.spawn(1, nil)
	client := tn.spawn(2, nil)
	data := payload(10, 10_000)
	server.AddObject(10, data)

	ch := client.Download(10, map[core.PeerID]string{1: tn.addrOf(1)})
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatalf("download: %v", err)
	}
	if !bytes.Equal(client.Object(10), data) {
		t.Fatal("downloaded bytes differ")
	}
	if st := server.Stats(); st.BlocksSent == 0 || st.RequestsServed != 1 {
		t.Fatalf("server stats %+v", st)
	}
}

func TestDownloadAlreadyHeld(t *testing.T) {
	tn := newTestNet(t)
	n := tn.spawn(1, nil)
	n.AddObject(10, payload(10, 100))
	if err := WaitFor(n.Download(10, nil), testTimeout); err != nil {
		t.Fatalf("download of held object: %v", err)
	}
}

func TestFreeriderServesNobody(t *testing.T) {
	tn := newTestNet(t)
	rider := tn.spawn(1, func(c *Config) { c.Share = false })
	client := tn.spawn(2, func(c *Config) { c.StallTicks = 10 })
	rider.AddObject(10, payload(10, 2000))

	ch := client.Download(10, map[core.PeerID]string{1: tn.addrOf(1)})
	select {
	case err := <-ch:
		if err == nil {
			t.Fatal("free-rider served a request")
		}
	case <-time.After(testTimeout):
		t.Fatal("download neither failed nor was declared sourceless")
	}
}

// TestPairwiseExchange is the protocol's core scenario: two sharers with
// mutual wants form a 2-ring and serve each other with exchange priority.
func TestPairwiseExchange(t *testing.T) {
	tn := newTestNet(t)
	a := tn.spawn(1, nil)
	b := tn.spawn(2, nil)
	oa, ob := catalog.ObjectID(100), catalog.ObjectID(200)
	dataA, dataB := payload(oa, 20_000), payload(ob, 20_000)
	a.AddObject(oa, dataA)
	b.AddObject(ob, dataB)

	chA := a.Download(ob, map[core.PeerID]string{2: tn.addrOf(2)})
	chB := b.Download(oa, map[core.PeerID]string{1: tn.addrOf(1)})
	if err := WaitFor(chA, testTimeout); err != nil {
		t.Fatalf("A's download: %v", err)
	}
	if err := WaitFor(chB, testTimeout); err != nil {
		t.Fatalf("B's download: %v", err)
	}
	if !bytes.Equal(a.Object(ob), dataB) || !bytes.Equal(b.Object(oa), dataA) {
		t.Fatal("exchanged objects corrupted")
	}
	ringsSeen := a.Stats().RingsJoined + b.Stats().RingsJoined
	if ringsSeen == 0 {
		t.Fatalf("no ring formed: A=%+v B=%+v", a.Stats(), b.Stats())
	}
	if a.Stats().ExchangeBlocksSent+b.Stats().ExchangeBlocksSent == 0 {
		t.Fatal("no exchange blocks flowed")
	}
}

// TestThreeWayRing drives the Figure 2 scenario live: C requested from A, A
// requested from B, and B wants an object only C holds, closing a 3-ring.
// Each sharer has a single upload slot occupied by a long transfer to a
// sink, so the plain non-exchange path is congested and only the ring (which
// preempts) can serve the chain promptly — exactly the paper's mechanism.
func TestThreeWayRing(t *testing.T) {
	if testing.Short() {
		// The 3-ring needs sink transfers big enough to pace real time;
		// TestPairwiseExchange keeps exchange coverage in -short.
		t.Skip("multi-second live 3-ring skipped in -short")
	}
	tn := newTestNet(t)
	single := func(c *Config) { c.UploadSlots = 1; c.BlockDelay = time.Millisecond; c.MaxRetries = 100 }
	a := tn.spawn(1, single)
	b := tn.spawn(2, single)
	c := tn.spawn(3, single)
	sink := tn.spawn(4, func(c *Config) { c.Share = false; c.StallTicks = 1000 })
	oa, ob, oc := catalog.ObjectID(100), catalog.ObjectID(200), catalog.ObjectID(300)
	big := 600_000 // sink transfers hog the single slots for a while
	dataA, dataB, dataC := payload(oa, 15_000), payload(ob, 15_000), payload(oc, 15_000)
	a.AddObject(oa, dataA) // C wants this
	b.AddObject(ob, dataB) // A wants this
	c.AddObject(oc, dataC) // B wants this
	for i, holder := range []*Node{a, b, c} {
		blob := catalog.ObjectID(900 + i)
		holder.AddObject(blob, payload(blob, big))
		sink.Download(blob, map[core.PeerID]string{holder.ID(): tn.addrOf(holder.ID())})
	}
	time.Sleep(50 * time.Millisecond) // sink transfers under way

	// Register requests so the request chain C -> A -> B exists, then B's
	// own want (o_c, provided by C) closes the ring B -> A -> C -> B.
	chC := c.Download(oa, map[core.PeerID]string{1: tn.addrOf(1)})
	time.Sleep(50 * time.Millisecond) // let C's request register at A
	chA := a.Download(ob, map[core.PeerID]string{2: tn.addrOf(2)})
	time.Sleep(50 * time.Millisecond) // let A's request (with C's subtree) register at B
	chB := b.Download(oc, map[core.PeerID]string{3: tn.addrOf(3)})

	for name, ch := range map[string]<-chan error{"A": chA, "B": chB, "C": chC} {
		if err := WaitFor(ch, testTimeout); err != nil {
			t.Fatalf("%s's download: %v", name, err)
		}
	}
	if !bytes.Equal(a.Object(ob), dataB) || !bytes.Equal(b.Object(oc), dataC) || !bytes.Equal(c.Object(oa), dataA) {
		t.Fatal("3-way exchanged objects corrupted")
	}
	joined := a.Stats().RingsJoined + b.Stats().RingsJoined + c.Stats().RingsJoined
	if joined < 3 {
		t.Fatalf("expected a committed 3-ring at all members, stats: A=%+v B=%+v C=%+v",
			a.Stats(), b.Stats(), c.Stats())
	}
	exch := a.Stats().ExchangeBlocksSent + b.Stats().ExchangeBlocksSent + c.Stats().ExchangeBlocksSent
	if exch == 0 {
		t.Fatal("no blocks flowed through the ring")
	}
}

// TestExchangePreemptsFreerider: with a single upload slot, a sharer serving
// a free-rider reclaims the slot the moment a pairwise exchange appears.
func TestExchangePreemptsFreerider(t *testing.T) {
	tn := newTestNet(t)
	a := tn.spawn(1, func(c *Config) { c.UploadSlots = 1; c.BlockDelay = time.Millisecond })
	b := tn.spawn(2, func(c *Config) { c.BlockDelay = time.Millisecond })
	rider := tn.spawn(3, func(c *Config) { c.Share = false; c.StallTicks = 1000 })
	oa, ob := catalog.ObjectID(100), catalog.ObjectID(200)
	a.AddObject(oa, payload(oa, 100_000)) // paced transfer: plenty of time to preempt
	b.AddObject(ob, payload(ob, 100_000))

	// The free-rider grabs A's only slot first.
	chRider := rider.Download(oa, map[core.PeerID]string{1: tn.addrOf(1)})
	time.Sleep(50 * time.Millisecond)
	// Mutual wants between A and B create an exchange that must preempt.
	chA := a.Download(ob, map[core.PeerID]string{2: tn.addrOf(2)})
	chB := b.Download(oa, map[core.PeerID]string{1: tn.addrOf(1)})

	if err := WaitFor(chA, testTimeout); err != nil {
		t.Fatalf("A's download: %v", err)
	}
	if err := WaitFor(chB, testTimeout); err != nil {
		t.Fatalf("B's download: %v", err)
	}
	if a.Stats().Preemptions == 0 {
		t.Fatalf("no preemption recorded at A: %+v", a.Stats())
	}
	// The free-rider eventually completes too, from spare capacity.
	if err := WaitFor(chRider, testTimeout); err != nil {
		t.Fatalf("rider's download: %v", err)
	}
}

// TestCheaterBlocksRejected: a corrupt peer serves junk; the receiver
// validates digests block-by-block, rejects, and completes from an honest
// source instead.
func TestCheaterBlocksRejected(t *testing.T) {
	tn := newTestNet(t)
	obj := catalog.ObjectID(10)
	data := payload(obj, 10_000)
	digs := trueDigests(data, 1024)

	cheater := tn.spawn(1, func(c *Config) { c.Corrupt = true })
	// The honest source is paced so the cheater's junk is guaranteed to
	// arrive while the download is still in progress.
	honest := tn.spawn(2, func(c *Config) { c.BlockDelay = 2 * time.Millisecond })
	client := tn.spawn(3, func(c *Config) {
		c.TrustedDigests = func(o catalog.ObjectID) ([][32]byte, bool) {
			if o == obj {
				return digs, true
			}
			return nil, false
		}
	})
	cheater.AddObject(obj, data) // serves junk regardless
	honest.AddObject(obj, data)

	ch := client.Download(obj, map[core.PeerID]string{
		1: tn.addrOf(1),
		2: tn.addrOf(2),
	})
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatalf("download despite cheater: %v", err)
	}
	if !bytes.Equal(client.Object(obj), data) {
		t.Fatal("received corrupted object")
	}
	if client.Stats().BlocksRejected == 0 {
		t.Fatal("no junk blocks were rejected (cheater never probed?)")
	}
}

func trueDigests(data []byte, blockSize int) [][32]byte {
	blocks := splitBlocks(data, blockSize)
	out := make([][32]byte, len(blocks))
	for i, b := range blocks {
		out[i] = sha256.Sum256(b)
	}
	return out
}

// TestNodeOverTCP runs the pairwise exchange over real sockets.
func TestNodeOverTCP(t *testing.T) {
	tn := &testNet{t: t, tr: transport.TCP{}, addrs: make(map[core.PeerID]string)}
	spawn := func(id core.PeerID) *Node {
		cfg := Config{
			ID:           id,
			Addr:         "127.0.0.1:0",
			Transport:    tn.tr,
			Lookup:       tn.lookup,
			Share:        true,
			UploadSlots:  4,
			BlockSize:    4096,
			TickInterval: 5 * time.Millisecond,
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("spawn %d: %v", id, err)
		}
		tn.mu.Lock()
		tn.addrs[id] = n.Addr()
		tn.mu.Unlock()
		t.Cleanup(n.Close)
		return n
	}
	a := spawn(1)
	b := spawn(2)
	oa, ob := catalog.ObjectID(1), catalog.ObjectID(2)
	dataA, dataB := payload(oa, 50_000), payload(ob, 50_000)
	a.AddObject(oa, dataA)
	b.AddObject(ob, dataB)

	chA := a.Download(ob, map[core.PeerID]string{2: tn.addrOf(2)})
	chB := b.Download(oa, map[core.PeerID]string{1: tn.addrOf(1)})
	if err := WaitFor(chA, testTimeout); err != nil {
		t.Fatalf("A over TCP: %v", err)
	}
	if err := WaitFor(chB, testTimeout); err != nil {
		t.Fatalf("B over TCP: %v", err)
	}
	if !bytes.Equal(a.Object(ob), dataB) || !bytes.Equal(b.Object(oa), dataA) {
		t.Fatal("TCP exchange corrupted data")
	}
}

func TestPeerDepartureMidTransfer(t *testing.T) {
	tn := newTestNet(t)
	server := tn.spawn(1, nil)
	client := tn.spawn(2, func(c *Config) { c.StallTicks = 10; c.MaxRetries = 3 })
	obj := catalog.ObjectID(10)
	server.AddObject(obj, payload(obj, 500_000))

	ch := client.Download(obj, map[core.PeerID]string{1: tn.addrOf(1)})
	server.Close() // depart immediately; whatever blocks flowed, the rest never will
	select {
	case err := <-ch:
		if err == nil {
			t.Fatal("download completed although the only source departed")
		}
	case <-time.After(testTimeout):
		t.Fatal("client never gave up on departed source")
	}
}

func TestCloseIdempotent(t *testing.T) {
	tn := newTestNet(t)
	n := tn.spawn(1, nil)
	n.Close()
	n.Close() // must not panic or hang
}

// TestCloseWithIdleInboundConn: a dialer that connects but never sends a
// Hello used to park a reader goroutine the node could not unblock — the
// connection was only tracked once its Hello registered it. Close must
// return regardless.
func TestCloseWithIdleInboundConn(t *testing.T) {
	tn := newTestNet(t)
	n := tn.spawn(1, nil)
	conn, err := tn.tr.Dial(n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()                //nolint:errcheck // test cleanup
	time.Sleep(20 * time.Millisecond) // let the acceptor pick it up

	done := make(chan struct{})
	go func() {
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Node.Close hung on an idle inbound connection")
	}
}

// TestCloseFailsPendingDownloads: waiters of an in-flight download observe
// ErrNodeClosed promptly instead of waiting out their timeout.
func TestCloseFailsPendingDownloads(t *testing.T) {
	tn := newTestNet(t)
	server := tn.spawn(1, func(c *Config) { c.BlockDelay = 5 * time.Millisecond })
	client := tn.spawn(2, nil)
	obj := catalog.ObjectID(10)
	server.AddObject(obj, payload(obj, 500_000))

	ch := client.Download(obj, map[core.PeerID]string{1: tn.addrOf(1)})
	time.Sleep(20 * time.Millisecond) // transfer under way
	client.Close()
	select {
	case err := <-ch:
		if !errors.Is(err, ErrNodeClosed) {
			t.Fatalf("waiter got %v, want ErrNodeClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never notified after Close")
	}

	// And a Download issued after Close fails immediately.
	if err := <-client.Download(obj, nil); !errors.Is(err, ErrNodeClosed) {
		t.Fatalf("post-Close Download got %v, want ErrNodeClosed", err)
	}
}

func TestSplitBlocks(t *testing.T) {
	cases := []struct {
		size, block, want int
	}{
		{0, 10, 0},
		{5, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{100, 10, 10},
	}
	for _, tc := range cases {
		got := splitBlocks(make([]byte, tc.size), tc.block)
		if len(got) != tc.want {
			t.Fatalf("splitBlocks(%d, %d) = %d blocks, want %d", tc.size, tc.block, len(got), tc.want)
		}
		total := 0
		for _, b := range got {
			total += len(b)
		}
		if total != tc.size {
			t.Fatalf("splitBlocks lost bytes: %d != %d", total, tc.size)
		}
	}
}
