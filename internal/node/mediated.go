package node

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/perfstats"
	"barter/internal/protocol"
)

// The mediated exchange of Section III-B, run natively on the block path
// when Config.Mediator is set. Everything here runs on the node's event
// loop except the escrow and audit RPCs, which block on the mediator tier
// and therefore run on their own goroutines, posting their results back.
//
// Sender side: every upload session draws a fresh random key and session
// id, escrows the key with the owning mediator shard before the first
// block, and seals each block — payload plus the origin/recipient control
// header — under it. The first block waits for both the escrow ack and
// the receiver's StripeGrant, which places the session in the receiver's
// interleave (indices congruent to the stripe number modulo the stripe
// count).
//
// Receiver side: a mediated download stripes across up to Config.Stripe
// origins. Each origin that answers the manifest race is granted one
// stripe — an interleaved residue class of block indices — and is
// escrowed, audited, and decrypted independently, because the audit is
// per-origin and each origin's exchange id (sender, recipient, object) is
// distinct. Sealed blocks are acknowledged positionally, strictly scoped
// to the granted origin's lane and current session (blocks of a dead
// session were sealed under a key the audit will never release). When a
// stripe fills, the receiver submits randomly chosen sample blocks from
// that stripe for audit; a released key decrypts the stripe and the
// plaintext is digest-checked block by block. An audit rejection proves
// that origin cheated — the tier has flagged it — and costs only its own
// stripe: the junk is discarded and the freed stripe is offered to the
// remaining providers. The download completes when every stripe has
// verified and decrypted clean.

// medAuditSamples is how many sealed blocks a receiver submits per audit.
const medAuditSamples = 3

func (n *Node) mediated() bool { return n.cfg.Mediator != nil }

// stripeState tracks one stripe of a mediated download: the origin it is
// granted to, that origin's live session, and the stripe's own progress,
// stall, and audit state.
type stripeState struct {
	origin    core.PeerID // 0 while the stripe waits for an origin
	session   uint64
	have      int // sealed blocks held in this stripe
	lastHave  int
	stalled   int
	verifying bool
	verified  bool
}

// stripeSpan is how many block indices of total fall in stripe idx of k.
func stripeSpan(total, k, idx int) int {
	return (total - idx + k - 1) / k
}

// stripeOf returns origin's active stripe — the one it is still filling or
// auditing — or (-1, nil). Verified stripes don't count: an origin that
// finished its lane may claim a freed one with a later session (an origin
// runs at most one upload session per object at a time, so it never fills
// two stripes concurrently).
func (dl *download) stripeOf(origin core.PeerID) (int, *stripeState) {
	for i, s := range dl.stripes {
		if s.origin == origin && !s.verified {
			return i, s
		}
	}
	return -1, nil
}

// stripeForSession returns the stripe carrying origin's given session, or
// (-1, nil). Sessions are unique per upload, so this is unambiguous even
// when one origin has filled several stripes over the download's lifetime.
func (dl *download) stripeForSession(origin core.PeerID, session uint64) (int, *stripeState) {
	for i, s := range dl.stripes {
		if s.origin == origin && s.session == session {
			return i, s
		}
	}
	return -1, nil
}

// freeStripe returns the lowest unassigned stripe, or (-1, nil).
func (dl *download) freeStripe() (int, *stripeState) {
	for i, s := range dl.stripes {
		if s.origin == 0 {
			return i, s
		}
	}
	return -1, nil
}

// auditing reports whether any stripe has an audit in flight.
func (dl *download) auditing() bool {
	for _, s := range dl.stripes {
		if s.verifying {
			return true
		}
	}
	return false
}

// medExchangeID derives the escrow identifier both sides of a transfer
// agree on without negotiation: a hash of (sender, recipient, object).
// Scoping it to the recipient keeps concurrent uploads of one object to
// different peers on distinct escrow entries, so each session can use its
// own key.
func medExchangeID(sender, recipient core.PeerID, obj catalog.ObjectID) uint64 {
	h := uint64(uint32(sender))
	h = (h ^ uint64(uint32(recipient))*0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	h = (h ^ uint64(uint32(obj))*0x94d049bb133111eb) ^ h>>29
	return h
}

// medSealKey draws a fresh random key and session id for one upload
// session. The key is secret to the sender until the mediator releases it:
// receivers earn it by passing the audit, never by computing it. (A
// derivable key would let any peer decrypt without auditing — and forge
// evidence against others.) The session id travels in the clear on every
// manifest, block, and ack, so neither side ever mixes traffic from a
// sender's dead session into a live one.
func medSealKey() (key [16]byte, session uint64, ok bool) {
	var buf [24]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return key, 0, false
	}
	copy(key[:], buf[:16])
	session = binary.BigEndian.Uint64(buf[16:])
	if session == 0 {
		session = 1 // zero marks unmediated traffic
	}
	return key, session, true
}

// startEscrow runs the sender's deposit off-loop and releases the first
// block once the mediator acknowledged the escrow. Until then the upload
// exists but sends nothing; a failed deposit drops the session (the
// requester's entry stays queued, so a later schedule retries).
func (n *Node) startEscrow(u *upload) {
	key := upKey{to: u.to, object: u.object}
	exchange := medExchangeID(n.cfg.ID, u.to, u.object)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		err := n.cfg.Mediator.Deposit(exchange, n.cfg.ID, u.object, u.sealKey)
		n.post(func() {
			cur, ok := n.uploads[key]
			if !ok || cur != u {
				return // session ended while the deposit was in flight
			}
			if err != nil {
				n.logf("escrow for object %d failed: %v", u.object, err)
				delete(n.uploads, key)
				n.trySchedule()
				return
			}
			u.escrowed = true
			n.maybeStartMediatedSend(u)
		})
	}()
}

// maybeStartMediatedSend releases a mediated upload's first block once both
// gates are open — the escrow deposit is acknowledged and the receiver has
// granted a stripe. The two acks race; whichever lands second triggers the
// send.
func (n *Node) maybeStartMediatedSend(u *upload) {
	if !u.escrowed || !u.granted || u.inFlight {
		return
	}
	if u.next >= u.total {
		// An empty stripe (more stripes than blocks); nothing to send.
		delete(n.uploads, upKey{to: u.to, object: u.object})
		n.trySchedule()
		return
	}
	if pc, ok := n.conns[u.to]; ok {
		n.sendNextBlock(u, pc)
	}
}

// onStripeGrant places a mediated upload in the receiver's interleave:
// the session serves block indices congruent to Stripe modulo Stripes,
// starting at Stripe.
func (n *Node) onStripeGrant(from core.PeerID, g *protocol.StripeGrant) {
	u, ok := n.uploads[upKey{to: from, object: g.Object}]
	if !ok || !u.mediated || g.Session != u.session {
		return // no such session (or a stale grant for a dead one)
	}
	if g.Stripes == 0 || g.Stripe >= g.Stripes || u.granted {
		return
	}
	u.granted = true
	u.stripe, u.stripes = g.Stripe, g.Stripes
	u.next = g.Stripe
	n.maybeStartMediatedSend(u)
}

// sealPayload wraps one outgoing block for a mediated upload.
func (n *Node) sealPayload(u *upload, payload []byte) ([]byte, bool) {
	sealed, err := mediator.Seal(u.sealKey, n.cfg.ID, u.to, u.object, u.next, payload)
	if err != nil {
		n.logf("seal block %d of %d: %v", u.next, u.object, err)
		return nil, false
	}
	return sealed, true
}

// grantStripe assigns stripe idx of dl to origin under the session its
// manifest announced and tells the origin so (the grant releases the
// origin's first block, together with its escrow ack).
func (n *Node) grantStripe(dl *download, idx int, origin core.PeerID, session uint64) {
	s := dl.stripes[idx]
	s.origin = origin
	s.session = session
	n.stats.StripesGranted++
	perfstats.AddStripeGranted()
	if pc, ok := n.conns[origin]; ok {
		pc.send(&protocol.StripeGrant{
			Object:  dl.object,
			Session: session,
			Stripe:  uint32(idx),
			Stripes: uint32(len(dl.stripes)),
		})
	}
}

// clearStripe discards a stripe's sealed blocks and progress so the same
// or another origin can fill it again. Verified stripes are never cleared
// here — their blocks are already plaintext — only by a full reset.
func (n *Node) clearStripe(dl *download, idx int) {
	s := dl.stripes[idx]
	for i := idx; i < dl.total; i += len(dl.stripes) {
		if dl.blocks[i] != nil {
			dl.blocks[i] = nil
			dl.have--
		}
	}
	s.have, s.lastHave, s.stalled = 0, 0, 0
	s.verifying, s.verified = false, false
}

// reassignStripe takes a stripe back from its origin (stalled, departed,
// or proven cheating) and frees it for the next manifest to claim. The
// origin gets a Cancel: if its session half-survived, the cancel tears it
// down so a re-request starts a fresh session instead of wedging against
// the stale one.
func (n *Node) reassignStripe(dl *download, idx int) {
	s := dl.stripes[idx]
	if s.origin != 0 {
		if pc, ok := n.conns[s.origin]; ok {
			pc.send(&protocol.Cancel{Object: dl.object})
		}
	}
	n.clearStripe(dl, idx)
	s.origin = 0
	s.session = 0
	n.stats.StripesReassigned++
	perfstats.AddStripeReassigned()
}

// tickStripes runs per-stripe stall recovery on the maintenance timer: a
// stripe whose origin went quiet (departed mid-transfer, or withdrew) is
// taken back and re-offered, without disturbing the stripes that are
// progressing. Unclaimed stripes periodically re-issue the download's
// requests so a freed lane gets claimed — by a fresh provider, or by an
// origin that has finished its own lane and re-manifests with a new
// session. Runs once per tick per mediated download.
func (n *Node) tickStripes(dl *download) {
	for idx, s := range dl.stripes {
		if s.verified || s.verifying {
			continue
		}
		if s.origin == 0 {
			s.stalled++
			if s.stalled >= n.cfg.StallTicks {
				s.stalled = 0
				n.sendRequests(dl)
			}
			continue
		}
		if s.have != s.lastHave {
			s.lastHave = s.have
			s.stalled = 0
			continue
		}
		s.stalled++
		if s.stalled < n.cfg.StallTicks {
			continue
		}
		n.logf("stripe %d of object %d stalled at origin %d; reassigning", idx, dl.object, s.origin)
		n.reassignStripe(dl, idx)
		n.sendRequests(dl)
	}
}

// onSealedBlock stores one encrypted block of a mediated transfer; content
// cannot be validated until the audit releases the key, so acceptance is
// positional only — but strictly scoped to the sending origin's granted
// stripe and current session, because blocks of a dead session were sealed
// under a key the audit will never release.
func (n *Node) onSealedBlock(dl *download, from core.PeerID, b *protocol.Block) {
	pc := n.conns[from]
	nack := func() {
		n.stats.BlocksRejected++
		if pc != nil {
			pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, Session: b.Session, OK: false})
		}
	}
	if !n.mediated() || dl.stripes == nil {
		nack()
		return
	}
	idx, s := dl.stripeForSession(from, b.Session)
	if s == nil || s.verifying || s.verified {
		nack()
		return
	}
	if int(b.Index)%len(dl.stripes) != idx {
		nack() // out of the granted lane
		return
	}
	if dl.blocks[b.Index] == nil {
		dl.blocks[b.Index] = append([]byte(nil), b.Payload...)
		dl.have++
		s.have++
		n.stats.BlocksReceived++
	}
	dl.senders[from] = true
	if pc != nil {
		pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, Session: b.Session, OK: true})
	}
	if s.have == stripeSpan(dl.total, len(dl.stripes), idx) {
		n.startStripeVerify(dl, idx)
	}
}

// startStripeVerify submits one filled stripe's sample blocks for audit
// off-loop. The audit is per-origin: samples come only from the stripe's
// own indices, and the released key opens only that origin's session.
func (n *Node) startStripeVerify(dl *download, idx int) {
	s := dl.stripes[idx]
	if s.verifying || s.verified {
		return
	}
	s.verifying = true
	n.stats.MedVerifies++
	sender, session, obj := s.origin, s.session, dl.object
	k := len(dl.stripes)
	span := stripeSpan(dl.total, k, idx)
	// Sample positions must be unpredictable: a cheater who can guess
	// them serves honest bytes exactly there and junk everywhere else,
	// passing every audit. (The post-decrypt digest check still covers
	// all blocks, but its digests come from the sender's manifest unless
	// TrustedDigests is set — the random audit is the tier-level defense.)
	count := min(medAuditSamples, span, mediator.MaxVerifySamples)
	samples := make([]protocol.Block, 0, count)
	budget := mediator.MaxVerifyBytes
	for _, off := range randomSampleIndices(span, count) {
		bi := idx + off*k // offset within the stripe -> absolute block index
		if len(samples) > 0 && budget < len(dl.blocks[bi]) {
			break // stay under the mediator's audit limits
		}
		budget -= len(dl.blocks[bi])
		samples = append(samples, protocol.Block{
			Object:    obj,
			Index:     uint32(bi),
			Origin:    sender,
			Recipient: n.cfg.ID,
			Encrypted: true,
			Payload:   dl.blocks[bi],
		})
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		key, err := n.cfg.Mediator.Verify(medExchangeID(sender, n.cfg.ID, obj), n.cfg.ID, sender, obj, samples)
		n.post(func() { n.finishStripeVerify(dl, idx, sender, session, key, err) })
	}()
}

// randomSampleIndices draws count distinct indices in [0, total) from the
// system entropy source; on the (practically impossible) failure of that
// source it falls back to the first count indices rather than not auditing
// at all.
func randomSampleIndices(total, count int) []int {
	out := make([]int, 0, count)
	seen := make(map[int]bool, count)
	var buf [8]byte
	for len(out) < count {
		if _, err := rand.Read(buf[:]); err != nil {
			for i := 0; len(out) < count; i++ {
				if !seen[i] {
					out = append(out, i)
				}
			}
			return out
		}
		idx := int(binary.BigEndian.Uint64(buf[:]) % uint64(total))
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// finishStripeVerify applies one stripe's audit verdict back on the event
// loop. Verdicts are matched against the stripe's current origin and
// session: anything stale (the stripe was reassigned or reset while the
// RPC was in flight) is discarded.
func (n *Node) finishStripeVerify(dl *download, idx int, sender core.PeerID, session uint64, key [16]byte, err error) {
	if cur, ok := n.downloads[dl.object]; !ok || cur != dl || dl.completed {
		return
	}
	if idx >= len(dl.stripes) {
		return // the geometry was reset underneath the audit
	}
	s := dl.stripes[idx]
	if s.origin != sender || s.session != session || !s.verifying {
		return // stale verdict; the stripe has moved on
	}
	s.verifying = false
	if err != nil {
		switch {
		case errors.Is(err, medclient.ErrRejected):
			// The tier proved this origin cheated and flagged it; drop the
			// junk and the provider, free its stripe for whoever is left.
			n.logf("audit of %d for object %d stripe %d rejected: %v", sender, dl.object, idx, err)
			n.stats.MedRejects++
			delete(dl.providers, sender)
			delete(dl.senders, sender)
		case errors.Is(err, medclient.ErrBadRequest):
			// The mediator will never judge this audit — the object is
			// outside its registry, or the request exceeds limits no retry
			// changes. Re-transferring would livelock; fail the download.
			n.logf("audit for object %d unjudgeable: %v", dl.object, err)
			for _, ch := range dl.waiters {
				ch <- fmt.Errorf("%w: object %d: mediated audit refused: %v", ErrNoSource, dl.object, err)
			}
			dl.waiters = nil
			n.resetMediatedDownload(dl)
			delete(n.downloads, dl.object)
			return
		default:
			// Transient: the escrow is missing (shard restarted) or the
			// tier was unreachable. Keep the provider — a fresh session
			// deposits a fresh escrow and can reclaim the stripe.
			n.logf("audit for object %d stripe %d inconclusive: %v", dl.object, idx, err)
		}
		n.reassignStripe(dl, idx)
		n.sendRequests(dl)
		return
	}
	k := len(dl.stripes)
	for i := idx; i < dl.total; i += k {
		origin, recipient, plain, oerr := mediator.Open(key, dl.object, uint32(i), dl.blocks[i])
		if oerr != nil || origin != sender || recipient != n.cfg.ID || sha256.Sum256(plain) != dl.digests[i] {
			// The sampled audit passed but the stripe does not decrypt
			// clean: treat the origin as a cheater locally.
			n.logf("post-audit validation of block %d from %d failed", i, sender)
			n.stats.MedRejects++
			delete(dl.providers, sender)
			delete(dl.senders, sender)
			n.reassignStripe(dl, idx)
			n.sendRequests(dl)
			return
		}
		dl.blocks[i] = plain
	}
	s.verified = true
	done := true
	unclaimed := false
	for _, st := range dl.stripes {
		if !st.verified {
			done = false
		}
		if st.origin == 0 {
			unclaimed = true
		}
	}
	if done {
		n.finishDownload(dl)
		return
	}
	if unclaimed {
		// A freed lane is waiting and this origin just became available
		// for it: re-issue the requests so it (or anyone else) can
		// re-manifest and claim the stripe now, not a stall timeout later.
		n.sendRequests(dl)
	}
}

// resetMediatedDownload discards a mediated transfer's sealed state — all
// stripes at once — so the download can start over, re-fixing its geometry
// from the next manifest race. Every assigned origin gets a Cancel: if its
// session half-survived (a block in flight we will never ack), the cancel
// tears it down so a re-request starts a fresh session instead of wedging
// against the stale one.
func (n *Node) resetMediatedDownload(dl *download) {
	for _, s := range dl.stripes {
		if s.origin == 0 {
			continue
		}
		if pc, ok := n.conns[s.origin]; ok {
			pc.send(&protocol.Cancel{Object: dl.object})
		}
	}
	dl.blocks = nil
	dl.digests = nil
	dl.have = 0
	dl.total = 0
	dl.lastHave = 0
	dl.stalled = 0
	dl.stripes = nil
}
