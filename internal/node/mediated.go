package node

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/protocol"
)

// The mediated exchange of Section III-B, run natively on the block path
// when Config.Mediator is set. Everything here runs on the node's event
// loop except the escrow and audit RPCs, which block on the mediator tier
// and therefore run on their own goroutines, posting their results back.
//
// Sender side: every upload session draws a fresh random key and session
// id, escrows the key with the owning mediator shard before the first
// block, and seals each block — payload plus the origin/recipient control
// header — under it. Receiver side: a mediated download sticks to the one
// sender that won the manifest race (the audit is per-sender) and to that
// sender's current session (blocks of a dead session were sealed under a
// key the audit will never release), acknowledges sealed blocks it cannot
// yet validate, and on completion submits randomly chosen sample blocks
// for audit. A released key decrypts everything and the plaintext is
// digest-checked block by block; an audit rejection proves the sender
// cheated — the tier has flagged it — and the receiver discards the junk
// and re-requests from its remaining providers.

// medAuditSamples is how many sealed blocks a receiver submits per audit.
const medAuditSamples = 3

func (n *Node) mediated() bool { return n.cfg.Mediator != nil }

// medExchangeID derives the escrow identifier both sides of a transfer
// agree on without negotiation: a hash of (sender, recipient, object).
// Scoping it to the recipient keeps concurrent uploads of one object to
// different peers on distinct escrow entries, so each session can use its
// own key.
func medExchangeID(sender, recipient core.PeerID, obj catalog.ObjectID) uint64 {
	h := uint64(uint32(sender))
	h = (h ^ uint64(uint32(recipient))*0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	h = (h ^ uint64(uint32(obj))*0x94d049bb133111eb) ^ h>>29
	return h
}

// medSealKey draws a fresh random key and session id for one upload
// session. The key is secret to the sender until the mediator releases it:
// receivers earn it by passing the audit, never by computing it. (A
// derivable key would let any peer decrypt without auditing — and forge
// evidence against others.) The session id travels in the clear on every
// manifest, block, and ack, so neither side ever mixes traffic from a
// sender's dead session into a live one.
func medSealKey() (key [16]byte, session uint64, ok bool) {
	var buf [24]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return key, 0, false
	}
	copy(key[:], buf[:16])
	session = binary.BigEndian.Uint64(buf[16:])
	if session == 0 {
		session = 1 // zero marks unmediated traffic
	}
	return key, session, true
}

// startEscrow runs the sender's deposit off-loop and releases the first
// block once the mediator acknowledged the escrow. Until then the upload
// exists but sends nothing; a failed deposit drops the session (the
// requester's entry stays queued, so a later schedule retries).
func (n *Node) startEscrow(u *upload) {
	key := upKey{to: u.to, object: u.object}
	exchange := medExchangeID(n.cfg.ID, u.to, u.object)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		err := n.cfg.Mediator.Deposit(exchange, n.cfg.ID, u.object, u.sealKey)
		n.post(func() {
			cur, ok := n.uploads[key]
			if !ok || cur != u {
				return // session ended while the deposit was in flight
			}
			if err != nil {
				n.logf("escrow for object %d failed: %v", u.object, err)
				delete(n.uploads, key)
				n.trySchedule()
				return
			}
			if u.inFlight || u.next != 0 {
				return // a block is already on the wire somehow; never double-send
			}
			if pc, ok := n.conns[u.to]; ok {
				n.sendNextBlock(u, pc)
			}
		})
	}()
}

// sealPayload wraps one outgoing block for a mediated upload.
func (n *Node) sealPayload(u *upload, payload []byte) ([]byte, bool) {
	sealed, err := mediator.Seal(u.sealKey, n.cfg.ID, u.to, u.object, u.next, payload)
	if err != nil {
		n.logf("seal block %d of %d: %v", u.next, u.object, err)
		return nil, false
	}
	return sealed, true
}

// lockMediatedSender pins a download to the sender whose manifest arrived
// first and withdraws the request from everyone else. It reports whether
// the manifest should be processed further.
func (n *Node) lockMediatedSender(dl *download, from core.PeerID, obj catalog.ObjectID) bool {
	if dl.lockedSender == from {
		return true
	}
	if dl.lockedSender != 0 {
		return false // someone else already carries this transfer
	}
	dl.lockedSender = from
	for p := range dl.providers {
		if p == from {
			continue
		}
		if pc, ok := n.conns[p]; ok {
			pc.send(&protocol.Cancel{Object: obj})
		}
	}
	return true
}

// onSealedBlock stores one encrypted block of a mediated transfer; content
// cannot be validated until the audit releases the key, so acceptance is
// positional only — but strictly scoped to the locked sender's current
// session, because blocks of a dead session were sealed under a key the
// audit will never release.
func (n *Node) onSealedBlock(dl *download, from core.PeerID, b *protocol.Block) {
	pc := n.conns[from]
	if !n.mediated() || from != dl.lockedSender || b.Session != dl.session {
		n.stats.BlocksRejected++
		if pc != nil {
			pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, Session: b.Session, OK: false})
		}
		return
	}
	if dl.blocks[b.Index] == nil {
		dl.blocks[b.Index] = append([]byte(nil), b.Payload...)
		dl.have++
		n.stats.BlocksReceived++
	}
	dl.senders[from] = true
	if pc != nil {
		pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, Session: b.Session, OK: true})
	}
	if dl.have == dl.total {
		n.startMediatedVerify(dl)
	}
}

// startMediatedVerify submits sample blocks for audit off-loop.
func (n *Node) startMediatedVerify(dl *download) {
	if dl.verifying {
		return
	}
	dl.verifying = true
	n.stats.MedVerifies++
	sender, obj := dl.lockedSender, dl.object
	// Sample positions must be unpredictable: a cheater who can guess
	// them serves honest bytes exactly there and junk everywhere else,
	// passing every audit. (The post-decrypt digest check still covers
	// all blocks, but its digests come from the sender's manifest unless
	// TrustedDigests is set — the random audit is the tier-level defense.)
	count := min(medAuditSamples, dl.total, mediator.MaxVerifySamples)
	samples := make([]protocol.Block, 0, count)
	budget := mediator.MaxVerifyBytes
	for _, idx := range randomSampleIndices(dl.total, count) {
		if len(samples) > 0 && budget < len(dl.blocks[idx]) {
			break // stay under the mediator's audit limits
		}
		budget -= len(dl.blocks[idx])
		samples = append(samples, protocol.Block{
			Object:    obj,
			Index:     uint32(idx),
			Origin:    sender,
			Recipient: n.cfg.ID,
			Encrypted: true,
			Payload:   dl.blocks[idx],
		})
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		key, err := n.cfg.Mediator.Verify(medExchangeID(sender, n.cfg.ID, obj), n.cfg.ID, sender, obj, samples)
		n.post(func() { n.finishMediatedVerify(dl, sender, key, err) })
	}()
}

// randomSampleIndices draws count distinct indices in [0, total) from the
// system entropy source; on the (practically impossible) failure of that
// source it falls back to the first count indices rather than not auditing
// at all.
func randomSampleIndices(total, count int) []int {
	out := make([]int, 0, count)
	seen := make(map[int]bool, count)
	var buf [8]byte
	for len(out) < count {
		if _, err := rand.Read(buf[:]); err != nil {
			for i := 0; len(out) < count; i++ {
				if !seen[i] {
					out = append(out, i)
				}
			}
			return out
		}
		idx := int(binary.BigEndian.Uint64(buf[:]) % uint64(total))
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	return out
}

// finishMediatedVerify applies the audit verdict back on the event loop.
func (n *Node) finishMediatedVerify(dl *download, sender core.PeerID, key [16]byte, err error) {
	if cur, ok := n.downloads[dl.object]; !ok || cur != dl || dl.completed {
		return
	}
	dl.verifying = false
	if err != nil {
		switch {
		case errors.Is(err, medclient.ErrRejected):
			// The tier proved the sender cheated and flagged it; drop the
			// junk and the provider, then re-request from whoever is left.
			n.logf("audit of %d for object %d rejected: %v", sender, dl.object, err)
			n.stats.MedRejects++
			delete(dl.providers, sender)
			delete(dl.senders, sender)
		case errors.Is(err, medclient.ErrBadRequest):
			// The mediator will never judge this audit — the object is
			// outside its registry, or the request exceeds limits no retry
			// changes. Re-transferring would livelock; fail the download.
			n.logf("audit for object %d unjudgeable: %v", dl.object, err)
			for _, ch := range dl.waiters {
				ch <- fmt.Errorf("%w: object %d: mediated audit refused: %v", ErrNoSource, dl.object, err)
			}
			dl.waiters = nil
			n.resetMediatedDownload(dl)
			delete(n.downloads, dl.object)
			return
		default:
			// Transient: the escrow is missing (shard restarted) or the
			// tier was unreachable. Keep the provider — a fresh session
			// deposits a fresh escrow.
			n.logf("audit for object %d inconclusive: %v", dl.object, err)
		}
		n.resetMediatedDownload(dl)
		n.sendRequests(dl)
		return
	}
	for i := range dl.blocks {
		origin, recipient, plain, oerr := mediator.Open(key, dl.object, uint32(i), dl.blocks[i])
		if oerr != nil || origin != sender || recipient != n.cfg.ID || sha256.Sum256(plain) != dl.digests[i] {
			// The sampled audit passed but the full transfer does not
			// decrypt clean: treat the sender as a cheater locally.
			n.logf("post-audit validation of block %d from %d failed", i, sender)
			n.stats.MedRejects++
			delete(dl.providers, sender)
			delete(dl.senders, sender)
			n.resetMediatedDownload(dl)
			n.sendRequests(dl)
			return
		}
		dl.blocks[i] = plain
	}
	n.finishDownload(dl)
}

// resetMediatedDownload discards a mediated transfer's sealed state so the
// download can start over with another (or the same) sender. The locked
// sender gets a Cancel: if its session half-survived (a block in flight we
// will never ack), the cancel tears it down so a re-request starts a fresh
// session instead of wedging against the stale one.
func (n *Node) resetMediatedDownload(dl *download) {
	if dl.lockedSender != 0 {
		if pc, ok := n.conns[dl.lockedSender]; ok {
			pc.send(&protocol.Cancel{Object: dl.object})
		}
	}
	dl.blocks = nil
	dl.digests = nil
	dl.have = 0
	dl.total = 0
	dl.lastHave = 0
	dl.stalled = 0
	dl.lockedSender = 0
	dl.session = 0
	dl.verifying = false
}
