package node

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
)

// medNet extends testNet with a mediator tier: every spawned node gets its
// own shard-aware client, as live deployments would.
type medNet struct {
	*testNet
	cluster *mediator.Cluster
	clients []*medclient.Client
}

// newMedNet builds a testNet plus an n-shard mediator cluster whose oracle
// digests the canonical payload() content for objects 1..32 at the test
// block size.
func newMedNet(t *testing.T, shards, objSize int) *medNet {
	t.Helper()
	tn := newTestNet(t)
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) {
		if o < 1 || o > 32 {
			return nil, false
		}
		data := payload(o, objSize)
		var digs [][32]byte
		for off := 0; off < len(data); off += 1024 {
			end := min(off+1024, len(data))
			digs = append(digs, sha256.Sum256(data[off:end]))
		}
		return digs, true
	}
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = "mem://med-" + string(rune('0'+i))
	}
	cluster, err := mediator.NewCluster(tn.tr, addrs, oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return &medNet{testNet: tn, cluster: cluster}
}

// spawnMediated starts a node wired to the mediator tier.
func (mn *medNet) spawnMediated(id core.PeerID, mutate func(*Config)) *Node {
	mn.t.Helper()
	mc, err := medclient.New(medclient.Config{
		Transport: mn.tr,
		Seeds:     mn.cluster.Addrs(),
		Backoff:   5 * time.Millisecond,
	})
	if err != nil {
		mn.t.Fatal(err)
	}
	n := mn.spawn(id, func(cfg *Config) {
		cfg.Mediator = mc
		if mutate != nil {
			mutate(cfg)
		}
	})
	// The node must be closed before its client; testNet's cleanup closes
	// the node, and cleanups run LIFO, so register the client after.
	mn.t.Cleanup(mc.Close)
	mn.clients = append(mn.clients, mc)
	return n
}

// TestMediatedTransferCompletes is the happy path: blocks travel sealed,
// the receiver audits, decrypts, and lands the exact bytes.
func TestMediatedTransferCompletes(t *testing.T) {
	const size = 8 * 1024
	mn := newMedNet(t, 1, size)
	server := mn.spawnMediated(1, nil)
	clientN := mn.spawnMediated(2, nil)
	obj := catalog.ObjectID(5)
	data := payload(obj, size)
	server.AddObject(obj, data)

	ch := clientN.Download(obj, map[core.PeerID]string{1: server.Addr()})
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatal(err)
	}
	if got := clientN.Object(obj); !bytes.Equal(got, data) {
		t.Fatalf("downloaded %d bytes, content mismatch", len(got))
	}
	st := clientN.Stats()
	if st.MedVerifies == 0 {
		t.Fatal("no audit was submitted for a mediated transfer")
	}
	if st.MedRejects != 0 {
		t.Fatalf("honest transfer produced %d rejects", st.MedRejects)
	}
}

// TestMediatedCheaterFlagged: with only a corrupt provider, the transfer
// completes in sealed form, the audit rejects it, the tier flags the
// cheater, and the download fails for want of honest sources.
func TestMediatedCheaterFlagged(t *testing.T) {
	const size = 4 * 1024
	mn := newMedNet(t, 2, size)
	cheater := mn.spawnMediated(1, func(cfg *Config) { cfg.Corrupt = true })
	victim := mn.spawnMediated(2, func(cfg *Config) {
		cfg.StallTicks = 5
		cfg.MaxRetries = 2
	})
	obj := catalog.ObjectID(3)
	cheater.AddObject(obj, payload(obj, size))

	ch := victim.Download(obj, map[core.PeerID]string{1: cheater.Addr()})
	err := WaitFor(ch, testTimeout)
	if !errors.Is(err, ErrNoSource) {
		t.Fatalf("download from a lone cheater: %v, want ErrNoSource", err)
	}
	if mn.cluster.Flagged(1) == 0 {
		t.Fatal("mediator tier never flagged the cheater")
	}
	st := victim.Stats()
	if st.MedRejects == 0 {
		t.Fatal("victim recorded no audit rejection")
	}
	if victim.Has(obj) {
		t.Fatal("junk object landed in the store")
	}
}

// TestMediatedRecoversFromCheater: a corrupt and an honest provider; even
// if the cheater wins the manifest race, the audit rejection re-requests
// and the honest source completes the download.
func TestMediatedRecoversFromCheater(t *testing.T) {
	const size = 4 * 1024
	mn := newMedNet(t, 2, size)
	cheater := mn.spawnMediated(1, func(cfg *Config) { cfg.Corrupt = true })
	honest := mn.spawnMediated(2, nil)
	victim := mn.spawnMediated(3, func(cfg *Config) { cfg.StallTicks = 5 })
	obj := catalog.ObjectID(7)
	data := payload(obj, size)
	cheater.AddObject(obj, data)
	honest.AddObject(obj, data)

	ch := victim.Download(obj, map[core.PeerID]string{
		1: cheater.Addr(),
		2: honest.Addr(),
	})
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatal(err)
	}
	if got := victim.Object(obj); !bytes.Equal(got, data) {
		t.Fatal("content mismatch after recovering from the cheater")
	}
}

// TestStripedDownloadAcrossOrigins: three honest origins each carry one
// stripe of the same object; the receiver escrows and audits each stripe
// against its own origin and lands the exact bytes.
func TestStripedDownloadAcrossOrigins(t *testing.T) {
	const size = 12 * 1024 // 12 blocks at the 1 KiB test block size
	mn := newMedNet(t, 2, size)
	obj := catalog.ObjectID(4)
	data := payload(obj, size)
	providers := make(map[core.PeerID]string)
	for id := core.PeerID(1); id <= 3; id++ {
		srv := mn.spawnMediated(id, nil)
		srv.AddObject(obj, data)
		providers[id] = srv.Addr()
	}
	receiver := mn.spawnMediated(9, func(cfg *Config) { cfg.Stripe = 3 })

	ch := receiver.Download(obj, providers)
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatal(err)
	}
	if got := receiver.Object(obj); !bytes.Equal(got, data) {
		t.Fatalf("downloaded %d bytes, content mismatch", len(got))
	}
	st := receiver.Stats()
	if st.StripesGranted < 3 {
		t.Fatalf("granted %d stripes, want >= 3", st.StripesGranted)
	}
	if st.MedVerifies < 3 {
		t.Fatalf("submitted %d audits, want one per stripe (>= 3)", st.MedVerifies)
	}
	if st.MedRejects != 0 {
		t.Fatalf("honest striped transfer produced %d rejects", st.MedRejects)
	}
}

// TestStripedCheaterReassigned: one corrupt origin among three; its
// stripe's audit rejects, the tier flags it, only its stripe is taken
// back, and an honest origin that finished its own lane re-manifests to
// fill the freed one — the download still lands the exact bytes.
func TestStripedCheaterReassigned(t *testing.T) {
	const size = 12 * 1024
	mn := newMedNet(t, 2, size)
	obj := catalog.ObjectID(6)
	data := payload(obj, size)
	cheater := mn.spawnMediated(1, func(cfg *Config) { cfg.Corrupt = true })
	cheater.AddObject(obj, data)
	providers := map[core.PeerID]string{1: cheater.Addr()}
	for id := core.PeerID(2); id <= 3; id++ {
		srv := mn.spawnMediated(id, nil)
		srv.AddObject(obj, data)
		providers[id] = srv.Addr()
	}
	receiver := mn.spawnMediated(9, func(cfg *Config) {
		cfg.Stripe = 3
		cfg.StallTicks = 5
	})

	ch := receiver.Download(obj, providers)
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatal(err)
	}
	if got := receiver.Object(obj); !bytes.Equal(got, data) {
		t.Fatal("content mismatch after recovering from the striped cheater")
	}
	if mn.cluster.Flagged(1) == 0 {
		t.Fatal("mediator tier never flagged the corrupt origin")
	}
	st := receiver.Stats()
	if st.MedRejects == 0 {
		t.Fatal("receiver recorded no audit rejection")
	}
	if st.StripesReassigned == 0 {
		t.Fatal("the cheater's stripe was never reassigned")
	}
}

// TestStripedStallRecovery: an origin departs mid-stripe. The receiver's
// per-stripe stall timer takes the dead lane back within the stall timeout
// and the surviving origin re-escrows and completes it, without the
// surviving stripe being disturbed.
func TestStripedStallRecovery(t *testing.T) {
	const size = 16 * 1024
	mn := newMedNet(t, 2, size)
	obj := catalog.ObjectID(8)
	data := payload(obj, size)
	casualty := mn.spawnMediated(1, func(cfg *Config) {
		cfg.BlockDelay = 5 * time.Millisecond // stretch the stripe so the departure lands mid-transfer
	})
	casualty.AddObject(obj, data)
	survivor := mn.spawnMediated(2, nil)
	survivor.AddObject(obj, data)
	receiver := mn.spawnMediated(9, func(cfg *Config) {
		cfg.Stripe = 2
		cfg.StallTicks = 5
	})

	ch := receiver.Download(obj, map[core.PeerID]string{1: casualty.Addr(), 2: survivor.Addr()})
	time.Sleep(10 * time.Millisecond) // let the stripes get going
	casualty.Close()
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatalf("download did not recover from the mid-stripe departure: %v", err)
	}
	if got := receiver.Object(obj); !bytes.Equal(got, data) {
		t.Fatal("content mismatch after stall recovery")
	}
	if st := receiver.Stats(); st.StripesReassigned == 0 {
		t.Fatal("the departed origin's stripe was never reassigned")
	}
}

// TestMediatedRidesThroughShardRestart restarts every mediator shard while
// transfers are in flight: escrows are lost, audits come back keyless, and
// the node-side client plus session retry must still converge on a clean
// download without anyone being flagged.
func TestMediatedRidesThroughShardRestart(t *testing.T) {
	const size = 16 * 1024
	mn := newMedNet(t, 2, size)
	server := mn.spawnMediated(1, func(cfg *Config) {
		cfg.BlockDelay = 2 * time.Millisecond // stretch the transfer window
	})
	clientN := mn.spawnMediated(2, func(cfg *Config) { cfg.StallTicks = 8 })
	obj := catalog.ObjectID(9)
	data := payload(obj, size)
	server.AddObject(obj, data)

	ch := clientN.Download(obj, map[core.PeerID]string{1: server.Addr()})
	time.Sleep(10 * time.Millisecond) // let the transfer get going
	for i := 0; i < mn.cluster.Shards(); i++ {
		if err := mn.cluster.RestartShard(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := WaitFor(ch, testTimeout); err != nil {
		t.Fatalf("download did not survive the shard restarts: %v", err)
	}
	if got := clientN.Object(obj); !bytes.Equal(got, data) {
		t.Fatal("content mismatch after shard restarts")
	}
	if mn.cluster.Flagged(1) != 0 {
		t.Fatal("honest sender was flagged after escrow loss")
	}
}
