package node

import (
	"crypto/sha256"
	"fmt"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/protocol"
	"barter/internal/transport"
)

// Everything in this file runs on the node's event loop.

// ringPendingTTL ages out stuck ring negotiations, in ticks.
const ringPendingTTL = 20

// --- connections ------------------------------------------------------------

func (n *Node) registerConn(hello protocol.Hello, conn transport.Conn) {
	if old, ok := n.conns[hello.Peer]; ok {
		if old.conn == conn {
			old.sharing = hello.Sharing
			return
		}
		// Simultaneous dials produce two connections. Both sides must
		// agree which one carries outbound traffic, or they would close
		// each other's transfers mid-flight: the connection dialed by the
		// lower peer id wins. The loser stays open for receiving (its
		// reader keeps feeding the loop) but is never mapped for sending.
		if n.cfg.ID < hello.Peer {
			return // our outbound connection wins; leave the map alone
		}
	}
	pc := &peerConn{
		n:       n,
		id:      hello.Peer,
		conn:    conn,
		sendQ:   make(chan protocol.Message, n.cfg.SendQueue),
		sharing: hello.Sharing,
	}
	n.conns[hello.Peer] = pc
	n.wg.Add(1)
	go n.writeLoop(pc)
}

func (n *Node) dropConnIf(peer core.PeerID, conn transport.Conn) {
	pc, ok := n.conns[peer]
	if !ok || pc.conn != conn {
		return
	}
	delete(n.conns, peer)
	// Uploads to the departed peer cannot proceed.
	for k, u := range n.uploads {
		if u.to == peer {
			delete(n.uploads, k)
		}
	}
	// Its queued requests are void.
	n.removeIRQ(func(e *irqEntry) bool { return e.peer == peer })
	// Rings containing the peer dissolve ("transfers are terminated if one
	// of the two communicating peers disconnects").
	for id, ring := range n.rings {
		for _, m := range ring.members {
			if m.Peer == peer {
				n.quitRing(id, "member disconnected")
				break
			}
		}
	}
	n.trySchedule()
}

// getConn returns a live connection to peer, dialing if needed. addrHint, if
// non-empty, bypasses the lookup service.
func (n *Node) getConn(peer core.PeerID, addrHint string) *peerConn {
	if pc, ok := n.conns[peer]; ok {
		return pc
	}
	addr := addrHint
	if addr == "" {
		addr, _ = n.cfg.Lookup(peer)
	}
	if addr == "" {
		return nil
	}
	conn, err := n.cfg.Transport.Dial(addr)
	if err != nil {
		n.logf("dial %d at %s: %v", peer, addr, err)
		return nil
	}
	if !n.track(conn) {
		_ = conn.Close() // node is shutting down
		return nil
	}
	pc := &peerConn{n: n, id: peer, conn: conn, sendQ: make(chan protocol.Message, n.cfg.SendQueue)}
	n.conns[peer] = pc
	n.wg.Add(2)
	go n.readLoop(conn, peer)
	go n.writeLoop(pc)
	pc.send(&protocol.Hello{Peer: n.cfg.ID, Sharing: n.cfg.Share})
	return pc
}

// send enqueues without blocking the event loop. The queue is bounded
// (Config.SendQueue); the writer goroutine drains it against the transport's
// own backpressure, so an overflow means the peer has stopped consuming and
// the connection is treated as dead rather than buffered without limit.
func (pc *peerConn) send(msg protocol.Message) {
	select {
	case pc.sendQ <- msg:
	default:
		pc.n.stats.SendOverflows++
		_ = pc.conn.Close()
	}
}

// --- dispatch ---------------------------------------------------------------

func (n *Node) handle(from core.PeerID, msg protocol.Message) {
	switch m := msg.(type) {
	case *protocol.Request:
		n.onRequest(from, m)
	case *protocol.Cancel:
		n.onCancel(from, m)
	case *protocol.Manifest:
		n.onManifest(from, m)
	case *protocol.Block:
		n.onBlock(from, m)
	case *protocol.BlockAck:
		n.onBlockAck(from, m)
	case *protocol.StripeGrant:
		n.onStripeGrant(from, m)
	case *protocol.RingProbe:
		n.onRingProbe(from, m)
	case *protocol.RingAccept:
		n.onRingAccept(from, m)
	case *protocol.RingCommit:
		n.onRingCommit(from, m)
	case *protocol.RingAbort:
		delete(n.rings, m.RingID)
	case *protocol.RingQuit:
		n.onRingQuit(m.RingID)
	default:
		n.logf("unhandled %T from %d", msg, from)
	}
}

// --- downloads ---------------------------------------------------------------

func (n *Node) startDownload(obj catalog.ObjectID, providers map[core.PeerID]string, ch chan error) {
	if _, have := n.store[obj]; have {
		ch <- nil
		return
	}
	dl, ok := n.downloads[obj]
	if !ok {
		dl = &download{
			object:    obj,
			providers: make(map[core.PeerID]string, len(providers)),
			senders:   make(map[core.PeerID]bool),
		}
		n.downloads[obj] = dl
	}
	dl.waiters = append(dl.waiters, ch)
	for p, addr := range providers {
		if p != n.cfg.ID {
			dl.providers[p] = addr
		}
	}
	// "Prior to transmission of a request, the peer inspects the entire
	// request tree" — a ring may satisfy this want without any new request.
	n.tryExchange()
	n.sendRequests(dl)
}

func (n *Node) sendRequests(dl *download) {
	tree := protocol.FromCoreTree(n.myTree().Prune(n.cfg.TreeDepth))
	for p, addr := range dl.providers {
		if pc := n.getConn(p, addr); pc != nil {
			pc.send(&protocol.Request{Object: dl.object, Tree: tree})
		}
	}
}

func (n *Node) onManifest(from core.PeerID, m *protocol.Manifest) {
	dl := n.downloads[m.Object]
	if dl == nil || dl.completed {
		return
	}
	// Validate the manifest before any state changes: a garbage manifest
	// must not win the mediated sender lock (cancelling every honest
	// provider) or register its sender.
	if m.Blocks == 0 || int(m.Blocks) != len(m.Digests) {
		return // malformed
	}
	digs := m.Digests
	if n.cfg.TrustedDigests != nil {
		if trusted, ok := n.cfg.TrustedDigests(m.Object); ok {
			if len(trusted) != int(m.Blocks) {
				n.logf("manifest for %d contradicts trusted digests", m.Object)
				return
			}
			digs = trusted
		}
	}
	if n.mediated() {
		if _, ok := dl.providers[from]; !ok {
			return // not a provider we asked, or one we already flagged
		}
		if dl.blocks == nil {
			// The first valid manifest fixes the geometry: block count,
			// digests, and the stripe interleave. Later manifests must
			// agree on the count; their digests are ignored (first writer
			// wins — the audit plus the post-decrypt checks, or
			// TrustedDigests, catch liars).
			k := n.cfg.Stripe
			if k > len(dl.providers) {
				k = len(dl.providers)
			}
			if k > int(m.Blocks) {
				k = int(m.Blocks)
			}
			if k < 1 {
				k = 1
			}
			dl.blocks = make([][]byte, m.Blocks)
			dl.digests = digs
			dl.total = int(m.Blocks)
			dl.stripes = make([]*stripeState, k)
			for i := range dl.stripes {
				dl.stripes[i] = &stripeState{}
			}
		} else if int(m.Blocks) != dl.total {
			return // contradicts the fixed geometry
		}
		dl.senders[from] = true
		idx, s := dl.stripeOf(from)
		if s == nil {
			idx, s = dl.freeStripe()
			if s == nil {
				// Every stripe is carried; withdraw the request so the
				// surplus provider does not hold an upload slot for us.
				if pc, ok := n.conns[from]; ok {
					pc.send(&protocol.Cancel{Object: m.Object})
				}
				return
			}
		} else {
			if s.verifying || s.verified {
				return // nothing may move underneath an audit or a done stripe
			}
			if m.Session == s.session {
				return // duplicate manifest for the live session
			}
			// The origin opened a new session: its old one is dead (a
			// sender only restarts after the previous session ended) and
			// blocks sealed under the dead session's key can never be
			// verified. Start this stripe over on the new session.
			n.clearStripe(dl, idx)
			s.origin = 0
		}
		n.grantStripe(dl, idx, from, m.Session)
		return
	}
	dl.senders[from] = true
	if dl.blocks != nil {
		return // already allocated
	}
	dl.blocks = make([][]byte, m.Blocks)
	dl.digests = digs
	dl.total = int(m.Blocks)
}

func (n *Node) onBlock(from core.PeerID, b *protocol.Block) {
	dl := n.downloads[b.Object]
	if dl == nil || dl.completed || dl.blocks == nil {
		return
	}
	if int(b.Index) >= dl.total {
		return
	}
	pc := n.conns[from]
	if b.Encrypted || n.mediated() {
		// Sealed blocks are positionally accepted and validated after the
		// audit; plaintext blocks inside a mediated deployment (or sealed
		// ones outside it) are a protocol mismatch and are refused.
		if b.Encrypted && n.mediated() {
			n.onSealedBlock(dl, from, b)
			return
		}
		n.stats.BlocksRejected++
		if pc != nil {
			pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, Session: b.Session, OK: false})
		}
		return
	}
	if sha256.Sum256(b.Payload) != dl.digests[b.Index] {
		// Junk block (even a duplicate): reject it and stop trusting the
		// sender (local blacklisting, Section III-B).
		n.stats.BlocksRejected++
		delete(dl.providers, from)
		delete(dl.senders, from)
		if pc != nil {
			pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, OK: false})
		}
		return
	}
	if dl.blocks[b.Index] != nil {
		if pc != nil { // duplicate from a second source: ack so it moves on
			pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, OK: true})
		}
		return
	}
	dl.blocks[b.Index] = append([]byte(nil), b.Payload...)
	dl.have++
	dl.senders[from] = true
	n.stats.BlocksReceived++
	if pc != nil {
		pc.send(&protocol.BlockAck{Object: b.Object, Index: b.Index, OK: true})
	}
	if dl.have == dl.total {
		n.finishDownload(dl)
	}
}

func (n *Node) finishDownload(dl *download) {
	dl.completed = true
	data := make([]byte, 0)
	for _, blk := range dl.blocks {
		data = append(data, blk...)
	}
	n.store[dl.object] = data
	digs := make([][32]byte, len(dl.blocks))
	for i, blk := range dl.blocks {
		digs[i] = sha256.Sum256(blk)
	}
	n.digests[dl.object] = digs
	n.stats.ObjectsCompleted++
	delete(n.downloads, dl.object)
	for _, ch := range dl.waiters {
		ch <- nil
	}
	// Withdraw outstanding requests.
	for p := range dl.providers {
		if pc, ok := n.conns[p]; ok {
			pc.send(&protocol.Cancel{Object: dl.object})
		}
	}
	// Rings feeding this download dissolve (the paper's common case: "one
	// side terminates first, when it completes its own download").
	for id, ring := range n.rings {
		if ring.committed && ring.gets() == dl.object {
			n.quitRing(id, "download complete")
		}
	}
	n.tryExchange()
	n.trySchedule()
}

// --- serving ------------------------------------------------------------------

func (n *Node) onRequest(from core.PeerID, m *protocol.Request) {
	if !n.cfg.Share {
		return // free-riders serve nobody
	}
	if _, ok := n.store[m.Object]; !ok {
		return
	}
	for _, e := range n.irq {
		if e.peer == from && e.object == m.Object {
			return // one registered request per (peer, object)
		}
	}
	tree, err := m.Tree.ToCoreTree()
	if err != nil {
		tree = &core.Tree{Root: from}
	}
	n.irq = append(n.irq, &irqEntry{peer: from, object: m.Object, tree: tree})
	// "On receipt of each request [the peer inspects] the incoming request
	// tree associated with it."
	n.tryExchange()
	n.trySchedule()
}

func (n *Node) onCancel(from core.PeerID, m *protocol.Cancel) {
	n.removeIRQ(func(e *irqEntry) bool { return e.peer == from && e.object == m.Object })
	delete(n.uploads, upKey{to: from, object: m.Object})
	n.trySchedule()
}

func (n *Node) removeIRQ(drop func(*irqEntry) bool) {
	kept := n.irq[:0]
	for _, e := range n.irq {
		if !drop(e) {
			kept = append(kept, e)
		}
	}
	n.irq = kept
}

// myTree builds this node's request tree from its IRQ.
func (n *Node) myTree() *core.Tree {
	entries := make([]core.IRQEntry, 0, len(n.irq))
	for _, e := range n.irq {
		entries = append(entries, core.IRQEntry{Requester: e.peer, Object: e.object, Attached: e.tree})
	}
	return core.BuildTree(n.cfg.ID, entries, n.cfg.TreeDepth)
}

// searchTree is myTree restricted to requests not already committed to an
// exchange; requests being served as plain transfers stay searchable so a
// newly feasible ring can replace ("upgrade") the plain session, exactly as
// the paper's exchanges displace normal transfers.
func (n *Node) searchTree() *core.Tree {
	entries := make([]core.IRQEntry, 0, len(n.irq))
	for _, e := range n.irq {
		if u, busy := n.uploads[upKey{to: e.peer, object: e.object}]; busy && u.ringID != 0 {
			continue
		}
		entries = append(entries, core.IRQEntry{Requester: e.peer, Object: e.object, Attached: e.tree})
	}
	return core.BuildTree(n.cfg.ID, entries, n.cfg.TreeDepth)
}

// ringFed reports whether a committed ring is already delivering obj to us.
func (n *Node) ringFed(obj catalog.ObjectID) bool {
	for _, r := range n.rings {
		if r.committed && r.gets() == obj {
			return true
		}
	}
	return false
}

// trySchedule grants spare upload capacity to waiting non-exchange requests,
// oldest first (exchange uploads are created by ring commits and preempt).
func (n *Node) trySchedule() {
	if !n.cfg.Share {
		return
	}
	for len(n.uploads) < n.cfg.UploadSlots {
		var pick *irqEntry
		for _, e := range n.irq {
			if _, busy := n.uploads[upKey{to: e.peer, object: e.object}]; busy {
				continue
			}
			if _, have := n.store[e.object]; !have {
				continue
			}
			pick = e
			break
		}
		if pick == nil {
			return
		}
		if !n.startUpload(pick.peer, pick.object, 0, "") {
			// Cannot reach the requester; drop the entry so the queue
			// does not wedge.
			n.removeIRQ(func(e *irqEntry) bool { return e == pick })
		}
	}
}

// startUpload begins a transfer session and pushes the manifest plus the
// first block. ringID 0 marks non-exchange.
func (n *Node) startUpload(to core.PeerID, obj catalog.ObjectID, ringID uint64, addrHint string) bool {
	if existing, ok := n.uploads[upKey{to: to, object: obj}]; ok {
		// A session for this link already runs; adopt it into the ring
		// rather than restarting the transfer ("normal transfer sessions
		// tend to be canceled and replaced by exchanges" — here replacement
		// keeps the progress).
		if ringID != 0 && existing.ringID == 0 {
			existing.ringID = ringID
		}
		return true
	}
	pc := n.getConn(to, addrHint)
	if pc == nil {
		return false
	}
	data := n.store[obj]
	digs := n.digests[obj]
	total := uint32(len(digs))
	if total == 0 {
		return false
	}
	u := &upload{to: to, object: obj, ringID: ringID, total: total, stripes: 1}
	if n.mediated() {
		// Escrow a fresh session key first; blocks follow once the
		// mediator acknowledges the deposit.
		sealKey, session, ok := medSealKey()
		if !ok {
			return false
		}
		u.mediated = true
		u.sealKey = sealKey
		u.session = session
	}
	n.uploads[upKey{to: to, object: obj}] = u
	pc.send(&protocol.Manifest{Object: obj, Size: uint64(len(data)), Blocks: total, Session: u.session, Digests: digs})
	if u.mediated {
		n.startEscrow(u)
	} else {
		n.sendNextBlock(u, pc)
	}
	if ringID == 0 {
		n.stats.RequestsServed++
	}
	return true
}

func (n *Node) sendNextBlock(u *upload, pc *peerConn) {
	data := n.store[u.object]
	start := int(u.next) * n.cfg.BlockSize
	end := start + n.cfg.BlockSize
	if end > len(data) {
		end = len(data)
	}
	payload := data[start:end]
	if n.cfg.Corrupt {
		junk := make([]byte, len(payload))
		for i := range junk {
			junk[i] = byte(i) ^ 0xAA
		}
		payload = junk
	}
	encrypted := false
	if u.mediated {
		sealed, ok := n.sealPayload(u, payload)
		if !ok {
			delete(n.uploads, upKey{to: u.to, object: u.object})
			n.trySchedule()
			return
		}
		payload, encrypted = sealed, true
	}
	pc.send(&protocol.Block{
		Object:    u.object,
		Index:     u.next,
		RingID:    u.ringID,
		Session:   u.session,
		Origin:    n.cfg.ID,
		Recipient: u.to,
		Encrypted: encrypted,
		Payload:   payload,
	})
	u.inFlight = true
	n.stats.BlocksSent++
	if u.ringID != 0 {
		n.stats.ExchangeBlocksSent++
	}
}

func (n *Node) onBlockAck(from core.PeerID, a *protocol.BlockAck) {
	key := upKey{to: from, object: a.Object}
	u, ok := n.uploads[key]
	if !ok || a.Index != u.next {
		return
	}
	if u.mediated && a.Session != u.session {
		return // addressed to a dead session of ours; never advance on it
	}
	u.inFlight = false
	if !a.OK {
		// The receiver rejected our block (it thinks we cheat, or its
		// digest source disagrees); stop the session.
		delete(n.uploads, key)
		n.trySchedule()
		return
	}
	u.next += u.stripes // interleave stride; 1 unless a stripe was granted
	if u.next >= u.total {
		delete(n.uploads, key)
		n.removeIRQ(func(e *irqEntry) bool { return e.peer == from && e.object == a.Object })
		n.trySchedule()
		return
	}
	if n.cfg.BlockDelay <= 0 {
		if pc, ok := n.conns[from]; ok {
			n.sendNextBlock(u, pc)
		}
		return
	}
	// Paced slot: release the next block after the configured delay,
	// re-checking that the session still exists when the timer fires.
	time.AfterFunc(n.cfg.BlockDelay, func() {
		n.post(func() {
			cur, ok := n.uploads[key]
			if !ok || cur != u || u.inFlight {
				return
			}
			if pc, ok := n.conns[from]; ok {
				n.sendNextBlock(u, pc)
			}
		})
	})
}

// --- exchange rings ------------------------------------------------------------

// pendingInitiations reports whether a probe round is already in flight; a
// new search waits for it to settle.
func (n *Node) pendingInitiations() bool {
	for _, r := range n.rings {
		if r.initiator && !r.committed {
			return true
		}
	}
	return false
}

// tryExchange searches this node's request tree for a ring and initiates
// the probe round if one is found.
func (n *Node) tryExchange() {
	if !n.cfg.Share || !n.cfg.Policy.SearchesExchanges() {
		return
	}
	if len(n.irq) == 0 || len(n.downloads) == 0 || n.pendingInitiations() {
		return
	}
	wants := make([]core.Want, 0, len(n.downloads))
	for obj, dl := range n.downloads {
		if n.ringFed(obj) {
			continue // an exchange is already feeding this want
		}
		prov := make(map[core.PeerID]bool, len(dl.providers))
		for p := range dl.providers {
			prov[p] = true
		}
		wants = append(wants, core.Want{Object: obj, Providers: prov})
	}
	if len(wants) == 0 {
		return
	}
	// Map iteration order is irrelevant here: any found ring is validated
	// by the probe round before anything commits.
	ring, _, _, ok := core.FindRing(n.searchTree(), wants, n.cfg.Policy)
	if !ok {
		return
	}
	if _, have := n.store[ring.Members[0].Gives]; !have {
		return
	}
	n.initiateRing(ring)
}

func (n *Node) initiateRing(r *core.Ring) {
	members := make([]protocol.RingMember, len(r.Members))
	for i, m := range r.Members {
		addr := ""
		if m.Peer == n.cfg.ID {
			addr = n.Addr()
		} else if a, ok := n.cfg.Lookup(m.Peer); ok {
			addr = a
		} else {
			return // cannot address every member; abandon
		}
		members[i] = protocol.RingMember{Peer: m.Peer, Gives: m.Gives, Addr: addr}
	}
	n.ringSeq++
	id := n.ringSeq<<16 | uint64(n.cfg.ID)&0xffff
	info := &ringInfo{id: id, members: members, myIdx: 0, initiator: true, accepts: make(map[core.PeerID]bool)}
	n.rings[id] = info
	n.stats.RingsInitiated++
	for _, m := range members[1:] {
		pc := n.getConn(m.Peer, m.Addr)
		if pc == nil {
			delete(n.rings, id)
			return
		}
		pc.send(&protocol.RingProbe{RingID: id, Members: members})
	}
	n.logf("probing ring %d: %v", id, members)
}

// gets returns the object this member receives in the ring.
func (r *ringInfo) gets() catalog.ObjectID {
	prev := (r.myIdx - 1 + len(r.members)) % len(r.members)
	return r.members[prev].Gives
}

func (n *Node) onRingProbe(from core.PeerID, m *protocol.RingProbe) {
	reply := func(ok bool, reason string) {
		if pc := n.conns[from]; pc != nil {
			pc.send(&protocol.RingAccept{RingID: m.RingID, OK: ok, Reason: reason})
		}
	}
	myIdx := -1
	for i, member := range m.Members {
		if member.Peer == n.cfg.ID {
			myIdx = i
		}
	}
	if myIdx < 0 || len(m.Members) < 2 {
		reply(false, "not a member")
		return
	}
	info := &ringInfo{id: m.RingID, members: m.Members, myIdx: myIdx}
	if !n.cfg.Share {
		reply(false, "not sharing")
		return
	}
	if _, have := n.store[m.Members[myIdx].Gives]; !have {
		reply(false, "object gone")
		return
	}
	dl := n.downloads[info.gets()]
	if dl == nil || dl.completed {
		reply(false, "no longer wanted")
		return
	}
	if n.ringFed(info.gets()) {
		reply(false, "already exchanging for this object")
		return
	}
	n.rings[m.RingID] = info
	reply(true, "")
}

func (n *Node) onRingAccept(from core.PeerID, m *protocol.RingAccept) {
	ring, ok := n.rings[m.RingID]
	if !ok || !ring.initiator || ring.committed {
		return
	}
	if !m.OK {
		n.logf("ring %d rejected by %d: %s", m.RingID, from, m.Reason)
		n.abortRing(ring)
		return
	}
	ring.accepts[from] = true
	if len(ring.accepts) == len(ring.members)-1 {
		for _, member := range ring.members[1:] {
			if pc := n.getConn(member.Peer, member.Addr); pc != nil {
				pc.send(&protocol.RingCommit{RingID: m.RingID})
			}
		}
		n.commitRing(ring)
	}
}

func (n *Node) onRingCommit(_ core.PeerID, m *protocol.RingCommit) {
	ring, ok := n.rings[m.RingID]
	if !ok || ring.committed {
		return
	}
	n.commitRing(ring)
}

// commitRing starts this member's upload to its ring successor, preempting a
// non-exchange upload if the slots are full ("these slots will be reclaimed
// as soon as another exchange becomes possible").
func (n *Node) commitRing(ring *ringInfo) {
	ring.committed = true
	ring.age = 0
	n.stats.RingsJoined++
	if len(n.uploads) >= n.cfg.UploadSlots {
		for k, u := range n.uploads {
			if u.ringID == 0 {
				delete(n.uploads, k)
				n.stats.Preemptions++
				break
			}
		}
	}
	succ := ring.members[(ring.myIdx+1)%len(ring.members)]
	me := ring.members[ring.myIdx]
	if !n.startUpload(succ.Peer, me.Gives, ring.id, succ.Addr) {
		n.quitRing(ring.id, "successor unreachable")
	}
}

func (n *Node) abortRing(ring *ringInfo) {
	for _, m := range ring.members[1:] {
		if pc := n.conns[m.Peer]; pc != nil {
			pc.send(&protocol.RingAbort{RingID: ring.id})
		}
	}
	delete(n.rings, ring.id)
}

// quitRing dissolves a ring: notify every other member and stop our ring
// upload.
func (n *Node) quitRing(id uint64, reason string) {
	ring, ok := n.rings[id]
	if !ok {
		return
	}
	n.logf("quitting ring %d: %s", id, reason)
	delete(n.rings, id)
	n.stats.RingsDissolved++
	for i, m := range ring.members {
		if i == ring.myIdx {
			continue
		}
		if pc := n.getConn(m.Peer, m.Addr); pc != nil {
			pc.send(&protocol.RingQuit{RingID: id})
		}
	}
	for k, u := range n.uploads {
		if u.ringID == id {
			delete(n.uploads, k)
		}
	}
	n.trySchedule()
}

func (n *Node) onRingQuit(id uint64) {
	if _, ok := n.rings[id]; !ok {
		return
	}
	delete(n.rings, id)
	n.stats.RingsDissolved++
	for k, u := range n.uploads {
		if u.ringID == id {
			delete(n.uploads, k)
		}
	}
	n.trySchedule()
}

// --- maintenance ---------------------------------------------------------------

func (n *Node) onTick() {
	// Age out stuck ring negotiations.
	for id, ring := range n.rings {
		if ring.committed {
			continue
		}
		ring.age++
		if ring.age > ringPendingTTL {
			if ring.initiator {
				n.abortRing(ring)
			} else {
				delete(n.rings, id)
			}
		}
	}
	// Stalled downloads re-issue their requests (sources may have
	// preempted us for an exchange, or vanished); after MaxRetries rounds
	// with zero progress the download fails.
	for _, dl := range n.downloads {
		if dl.completed {
			continue
		}
		if n.mediated() && dl.stripes != nil {
			n.tickStripes(dl)
		}
		if dl.auditing() {
			// An in-flight audit is progress; its own bounded retries and
			// failover decide the outcome, not the stall counter.
			continue
		}
		if dl.have == dl.lastHave {
			dl.stalled++
		} else {
			dl.stalled = 0
			dl.retries = 0
			dl.lastHave = dl.have
		}
		if dl.stalled >= n.cfg.StallTicks {
			dl.stalled = 0
			dl.retries++
			if len(dl.providers) == 0 || dl.retries > n.cfg.MaxRetries {
				for _, ch := range dl.waiters {
					ch <- fmt.Errorf("%w: object %d", ErrNoSource, dl.object)
				}
				dl.waiters = nil
				delete(n.downloads, dl.object)
				continue
			}
			if n.mediated() && dl.stripes != nil {
				// Every stripe went quiet at once (or none was ever
				// granted); partial sealed blocks are unverifiable without
				// their origins, so start over and let the manifest race
				// re-fix the geometry with whoever is still alive.
				n.resetMediatedDownload(dl)
			}
			n.sendRequests(dl)
		}
	}
	n.tryExchange()
	n.trySchedule()
}
