// Package node implements the live, concurrent peer: the exchange protocol
// of Section III over a real transport. Each node runs a single-threaded
// event loop (an actor) fed by one reader goroutine per connection, so all
// protocol state is race-free by construction while transfers proceed
// concurrently across the network.
//
// Transfers are synchronous block-for-block with per-block validation, as
// Section III-B prescribes: the receiver checks each block's digest against
// the manifest (or a trusted digest oracle) and acknowledges it before the
// sender releases the next one. Exchange rings are negotiated with a
// probe/accept/commit token and dissolve on the first RingQuit.
package node

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/protocol"
	"barter/internal/transport"
)

// ErrNoSource is surfaced to Download waiters when every provider has been
// exhausted without progress.
var ErrNoSource = errors.New("node: no provider could serve the object")

// ErrNodeClosed is surfaced to Download waiters whose node shut down before
// the transfer completed (a churned peer, or an orderly exit mid-download).
var ErrNodeClosed = errors.New("node: closed")

// Config configures a live peer.
type Config struct {
	// ID is the peer's identity. Addr is the listen address (transport
	// specific; empty auto-assigns on the in-memory transport, ":0" on
	// TCP).
	ID   core.PeerID
	Addr string
	// Transport carries the protocol; required.
	Transport transport.Transport
	// Lookup resolves a peer id to a dialable address. Required for
	// exchange rings (the initiator must contact members it has no
	// connection to). The paper treats lookup as an external service and
	// so do we.
	Lookup func(core.PeerID) (string, bool)
	// Policy is the exchange search policy (default 2-5-way).
	Policy core.Policy
	// Share marks the peer as a contributor; a free-rider (Share false)
	// never serves anyone.
	Share bool
	// UploadSlots bounds concurrent uploads (default 4).
	UploadSlots int
	// BlockSize is the transfer block size in bytes (default 64 KiB).
	BlockSize int
	// TreeDepth prunes attached request trees (default core.DefaultMaxRing).
	TreeDepth int
	// TickInterval paces the maintenance timer (default 20ms).
	TickInterval time.Duration
	// StallTicks is how many ticks without progress a download waits
	// before re-issuing its requests (default 25).
	StallTicks int
	// MaxRetries bounds consecutive no-progress retry rounds before a
	// download fails with ErrNoSource (default 4).
	MaxRetries int
	// BlockDelay paces uploads: the gap between acknowledging one block
	// and sending the next. Zero sends immediately. It models the paper's
	// fixed-rate transfer slots in wall-clock time.
	BlockDelay time.Duration
	// SendQueue bounds each connection's outbound message queue (default
	// 1024). The writer goroutine drains it against the transport's own
	// backpressure; overflowing it counts as a dead connection and is
	// recorded in Stats.SendOverflows.
	SendQueue int
	// TrustedDigests, when set, overrides manifest digests as the block
	// validation source ("a trustworthy source of information for the
	// actual valid checksums", Section III-B).
	TrustedDigests func(catalog.ObjectID) ([][32]byte, bool)
	// Mediator, when set, runs Section III-B's mediated exchange natively
	// on the block path: uploads are sealed under a per-exchange key the
	// sender escrows with the mediator tier (through the shard-aware
	// client), and a receiver completes a transfer by submitting sample
	// blocks for audit, obtaining the key, and decrypting — so a cheater
	// is flagged by the tier, not just locally blacklisted. The client is
	// shared infrastructure owned by the caller; Close it after the node.
	Mediator *medclient.Client
	// Stripe caps how many origins a mediated download stripes across
	// (receiver side). Each origin is granted an interleaved residue class
	// of block indices and escrowed, audited, and decrypted independently,
	// so a slow or cheating origin costs only its own stripe. Values <= 1
	// keep the historical single-sender transfer. Ignored without Mediator.
	Stripe int
	// Corrupt makes this node a cheater that serves junk payloads. Used by
	// tests and the middleman example to exercise the defenses.
	Corrupt bool
	// Logf, when set, receives debug lines.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if c.Transport == nil {
		return errors.New("node: Transport is required")
	}
	if c.Policy == (core.Policy{}) {
		c.Policy = core.Policy2N
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.UploadSlots <= 0 {
		c.UploadSlots = 4
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 64 << 10
	}
	if c.TreeDepth <= 0 {
		c.TreeDepth = core.DefaultMaxRing
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 20 * time.Millisecond
	}
	if c.StallTicks <= 0 {
		c.StallTicks = 25
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.SendQueue <= 0 {
		c.SendQueue = 1024
	}
	if c.Stripe <= 0 {
		c.Stripe = 1
	}
	if c.Lookup == nil {
		c.Lookup = func(core.PeerID) (string, bool) { return "", false }
	}
	return nil
}

// Stats is a snapshot of a node's counters.
type Stats struct {
	BlocksSent         int
	BlocksReceived     int
	BlocksRejected     int
	ExchangeBlocksSent int
	RingsJoined        int
	RingsInitiated     int
	RingsDissolved     int
	Preemptions        int
	ObjectsCompleted   int
	RequestsServed     int
	SendOverflows      int
	// MedVerifies counts audits this node submitted to the mediator tier;
	// MedRejects counts those that came back as cheating verdicts.
	MedVerifies int
	MedRejects  int
	// StripesGranted counts stripe assignments this node handed to
	// mediated-download origins; StripesReassigned counts stripes taken
	// back from a stalled, departed, or cheating origin.
	StripesGranted    int
	StripesReassigned int
}

// Node is a live peer. Create with New, stop with Close.
type Node struct {
	cfg Config
	ln  transport.Listener

	events chan func()
	stop   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	// postMu seals the events channel during Close: enqueues hold the read
	// side, Close takes the write side after the loop exits, so every event
	// that post accepted is either run by the loop or by Close's drain —
	// never silently dropped with a waiter attached.
	postMu  sync.RWMutex
	stopped bool

	// connMu guards the tracked-connection set. Every connection — inbound
	// ones the moment they are accepted (before any Hello identifies the
	// peer) and outbound ones the moment they are dialed — is registered
	// here so Close can unblock every reader and writer. Tracking through
	// the event loop instead would leave a window where an accepted
	// connection's reader blocks in Recv with nobody able to close it.
	connMu  sync.Mutex
	tracked map[transport.Conn]struct{}
	closing bool

	// Everything below is owned by the event loop.
	store     map[catalog.ObjectID][]byte
	digests   map[catalog.ObjectID][][32]byte
	downloads map[catalog.ObjectID]*download
	irq       []*irqEntry
	uploads   map[upKey]*upload
	conns     map[core.PeerID]*peerConn
	rings     map[uint64]*ringInfo
	ringSeq   uint64
	stats     Stats
}

type upKey struct {
	to     core.PeerID
	object catalog.ObjectID
}

type irqEntry struct {
	peer    core.PeerID
	object  catalog.ObjectID
	tree    *core.Tree
	serving bool
}

type download struct {
	object    catalog.ObjectID
	blocks    [][]byte
	digests   [][32]byte
	have      int
	total     int
	providers map[core.PeerID]string
	waiters   []chan error
	stalled   int
	lastHave  int
	retries   int
	completed bool
	senders   map[core.PeerID]bool
	// Mediated transfers stripe across up to Config.Stripe origins. Stripe
	// s of k covers the block indices congruent to s modulo k; each stripe
	// sticks to one origin and that origin's current session (the audit is
	// per-origin, and blocks from a dead session were sealed under a key
	// the audit will never release). nil until the first manifest fixes
	// the geometry; nil forever for non-mediated downloads.
	stripes []*stripeState
}

type upload struct {
	to       core.PeerID
	object   catalog.ObjectID
	ringID   uint64
	next     uint32
	total    uint32
	inFlight bool
	// Mediated uploads seal every block under sealKey and tag traffic with
	// the session id. The first block waits for two acknowledgements in
	// either order: the escrow deposit (escrowed) and the receiver's
	// StripeGrant (granted), which places the session in the receiver's
	// interleave — next starts at stripe and advances by stripes.
	mediated bool
	sealKey  [16]byte
	session  uint64
	stripe   uint32
	stripes  uint32
	granted  bool
	escrowed bool
}

type ringInfo struct {
	id        uint64
	members   []protocol.RingMember
	myIdx     int
	initiator bool
	accepts   map[core.PeerID]bool
	committed bool
	age       int
}

type peerConn struct {
	n       *Node
	id      core.PeerID
	conn    transport.Conn
	sendQ   chan protocol.Message
	sharing bool
}

// New starts a node: it listens, spawns the acceptor and the event loop.
func New(cfg Config) (*Node, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ln, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("node %d: listen: %w", cfg.ID, err)
	}
	n := &Node{
		cfg:       cfg,
		ln:        ln,
		events:    make(chan func(), 256),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		tracked:   make(map[transport.Conn]struct{}),
		store:     make(map[catalog.ObjectID][]byte),
		digests:   make(map[catalog.ObjectID][][32]byte),
		downloads: make(map[catalog.ObjectID]*download),
		uploads:   make(map[upKey]*upload),
		conns:     make(map[core.PeerID]*peerConn),
		rings:     make(map[uint64]*ringInfo),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	go n.loop()
	return n, nil
}

// Addr returns the dialable listen address.
func (n *Node) Addr() string { return n.ln.Addr() }

// ID returns the peer id.
func (n *Node) ID() core.PeerID { return n.cfg.ID }

// Close stops the node and waits for its goroutines: it stops accepting,
// closes every tracked connection (unblocking readers and writers), lets the
// event loop fail pending download waiters, and joins everything.
func (n *Node) Close() {
	select {
	case <-n.stop:
		return
	default:
	}
	close(n.stop)
	_ = n.ln.Close()
	n.connMu.Lock()
	n.closing = true
	open := make([]transport.Conn, 0, len(n.tracked))
	for c := range n.tracked {
		open = append(open, c)
	}
	n.connMu.Unlock()
	for _, c := range open {
		_ = c.Close()
	}
	<-n.done
	// The loop has exited; seal the queue so no further post can enqueue,
	// then run whatever it accepted before the seal (a racing Download may
	// have registered a waiter), and fail every pending download. State is
	// exclusively ours now: the loop is gone and readers only post.
	n.postMu.Lock()
	n.stopped = true
	n.postMu.Unlock()
	for {
		select {
		case fn := <-n.events:
			fn()
			continue
		default:
		}
		break
	}
	for _, dl := range n.downloads {
		for _, ch := range dl.waiters {
			ch <- fmt.Errorf("%w: object %d incomplete", ErrNodeClosed, dl.object)
		}
		dl.waiters = nil
	}
	n.wg.Wait()
}

// Done is closed when the node has fully shut down; select on it alongside
// Download channels to avoid waiting out a timeout on a closed peer.
func (n *Node) Done() <-chan struct{} { return n.done }

// track registers a connection for teardown; it refuses once Close has
// begun, so no connection can slip past the close sweep.
func (n *Node) track(c transport.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.closing {
		return false
	}
	n.tracked[c] = struct{}{}
	return true
}

func (n *Node) untrack(c transport.Conn) {
	n.connMu.Lock()
	delete(n.tracked, c)
	n.connMu.Unlock()
}

// post schedules fn on the event loop and reports whether it was enqueued;
// once Close has sealed the queue it drops the event and returns false.
// Accepted events are guaranteed to run: by the loop normally, or by Close's
// drain during teardown.
func (n *Node) post(fn func()) bool {
	n.postMu.RLock()
	defer n.postMu.RUnlock()
	if n.stopped {
		return false
	}
	// With stop closed this select cannot block even on a full queue, so
	// holding the read lock here never stalls Close's write lock.
	select {
	case n.events <- fn:
		return true
	case <-n.stop:
		return false
	}
}

// call runs fn on the loop and waits for it (for synchronous accessors).
func (n *Node) call(fn func()) bool {
	doneCh := make(chan struct{})
	n.post(func() {
		fn()
		close(doneCh)
	})
	select {
	case <-doneCh:
		return true
	case <-n.stop:
		return false
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf("peer %d: "+format, append([]any{n.cfg.ID}, args...)...)
	}
}

// AddObject stores a fully available object (with its block digests).
func (n *Node) AddObject(obj catalog.ObjectID, data []byte) {
	blocks := splitBlocks(data, n.cfg.BlockSize)
	digs := make([][32]byte, len(blocks))
	for i, b := range blocks {
		digs[i] = sha256.Sum256(b)
	}
	n.call(func() {
		n.store[obj] = append([]byte(nil), data...)
		n.digests[obj] = digs
	})
}

// Has reports whether the node holds the complete object.
func (n *Node) Has(obj catalog.ObjectID) bool {
	var ok bool
	n.call(func() { _, ok = n.store[obj] })
	return ok
}

// Object returns a copy of a completed object's bytes, or nil.
func (n *Node) Object(obj catalog.ObjectID) []byte {
	var out []byte
	n.call(func() {
		if d, ok := n.store[obj]; ok {
			out = append([]byte(nil), d...)
		}
	})
	return out
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	var s Stats
	n.call(func() { s = n.stats })
	return s
}

// Download requests an object from the given providers (peer id -> address)
// and returns a channel that receives nil on completion or an error. The
// download proceeds in the background; exchanges may accelerate it.
func (n *Node) Download(obj catalog.ObjectID, providers map[core.PeerID]string) <-chan error {
	ch := make(chan error, 1)
	if !n.post(func() { n.startDownload(obj, providers, ch) }) {
		ch <- ErrNodeClosed
	}
	return ch
}

// WaitFor blocks until the download channel yields or the timeout expires.
// The timer is stopped on the fast path: time.After would leak one running
// timer per call until it fires, which at swarm scale is thousands of stale
// timers.
func WaitFor(ch <-chan error, timeout time.Duration) error {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-ch:
		return err
	case <-t.C:
		return errors.New("node: download timed out")
	}
}

func splitBlocks(data []byte, size int) [][]byte {
	if len(data) == 0 {
		return nil
	}
	blocks := make([][]byte, 0, (len(data)+size-1)/size)
	for off := 0; off < len(data); off += size {
		end := off + size
		if end > len(data) {
			end = len(data)
		}
		blocks = append(blocks, data[off:end])
	}
	return blocks
}

// --- goroutines -------------------------------------------------------------

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return
		}
		if !n.track(conn) {
			_ = conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoopUnknown(conn)
	}
}

// readLoopUnknown serves an inbound connection whose peer is unknown until
// its Hello arrives.
func (n *Node) readLoopUnknown(conn transport.Conn) {
	n.serveConn(conn, 0, false)
}

// readLoop serves an outbound connection to a known peer.
func (n *Node) readLoop(conn transport.Conn, expected core.PeerID) {
	n.serveConn(conn, expected, true)
}

// serveConn pumps one connection into the event loop.
func (n *Node) serveConn(conn transport.Conn, peer core.PeerID, known bool) {
	defer n.wg.Done()
	defer n.untrack(conn)
	defer conn.Close() //nolint:errcheck // teardown
	for {
		msg, err := conn.Recv()
		if err != nil {
			if known {
				p := peer
				n.post(func() { n.dropConnIf(p, conn) })
			}
			return
		}
		if hello, ok := msg.(*protocol.Hello); ok {
			peer, known = hello.Peer, true
			h := *hello
			n.post(func() { n.registerConn(h, conn) })
			continue
		}
		if !known {
			return // protocol violation: first message must be Hello
		}
		p, m := peer, msg
		n.post(func() { n.handle(p, m) })
	}
}

// writeLoop drains a connection's send queue.
func (n *Node) writeLoop(pc *peerConn) {
	defer n.wg.Done()
	for {
		select {
		case msg := <-pc.sendQ:
			if err := pc.conn.Send(msg); err != nil {
				return
			}
		case <-n.stop:
			return
		}
	}
}

func (n *Node) loop() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case fn := <-n.events:
			fn()
		case <-ticker.C:
			n.onTick()
		case <-n.stop:
			// Close finishes the teardown: it drains remaining events and
			// fails pending download waiters once the queue is sealed.
			return
		}
	}
}
