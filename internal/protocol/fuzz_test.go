package protocol

import (
	"bytes"
	"encoding/binary"
	"testing"

	"barter/internal/core"
)

// corpusMessages returns one representative of every wire message type, with
// every field populated, so the fuzzer starts from frames that exercise each
// per-message codec.
func corpusMessages() []Message {
	tree := Tree{
		Root: 1,
		Nodes: []TreeNode{
			{Peer: 2, Object: 10, Parent: -1},
			{Peer: 3, Object: 11, Parent: 0},
		},
	}
	return []Message{
		&Hello{Peer: 7, Sharing: true},
		&Request{Object: 42, Tree: tree},
		&Cancel{Object: 42},
		&RingProbe{RingID: 9, Members: []RingMember{
			{Peer: 1, Gives: 5, Addr: "mem://a"},
			{Peer: 2, Gives: 6, Addr: "mem://b"},
		}},
		&RingAccept{RingID: 9, OK: false, Reason: "no capacity"},
		&RingCommit{RingID: 9},
		&RingAbort{RingID: 9},
		&RingQuit{RingID: 9},
		&Manifest{Object: 5, Size: 96, Blocks: 3, Session: 11, Digests: [][32]byte{{1}, {2}, {3}}},
		&Block{Object: 5, Index: 2, RingID: 9, Session: 11, Origin: 1, Recipient: 2, Encrypted: true, Payload: []byte("payload")},
		&BlockAck{Object: 5, Index: 2, Session: 11, OK: true},
		&MedDeposit{ExchangeID: 3, Sender: 1, Object: 5, Key: [16]byte{9}},
		&MedVerify{ExchangeID: 3, Requester: 2, Sender: 1, Object: 5, Samples: []Block{
			{Object: 5, Index: 0, Origin: 1, Recipient: 2, Encrypted: true, Payload: []byte("x")},
		}},
		&MedKey{ExchangeID: 3, Key: [16]byte{9}},
		&MedReject{ExchangeID: 3, Code: MedRejectNoKey, Reason: "digest mismatch"},
		&MedShardMapReq{Epoch: 4},
		&MedShardMap{Version: ShardMapVersion, Epoch: 4, Shards: []MedShardEntry{
			{Index: 0, Addr: "mem://med-0"},
			{Index: 1, Addr: "mem://med-1"},
		}},
		&MedRedirect{Object: 5, Shard: 1, Addr: "mem://med-1", Epoch: 4},
		&MedHandoff{From: 1, Epoch: 5, Deposits: []MedDepositRecord{
			{ExchangeID: 3, Sender: 1, Object: 5, Key: [16]byte{9}},
			{ExchangeID: 4, Sender: 2, Object: 6, Key: [16]byte{8, 7}},
		}, Flags: []MedFlagRecord{
			{Peer: 2, Count: 3},
		}},
		&MedHandoffAck{Deposits: 2, Flags: 1},
		&Envelope{ReqID: 6, Msg: &MedVerify{ExchangeID: 3, Requester: 2, Sender: 1, Object: 5, Samples: []Block{
			{Object: 5, Index: 0, Origin: 1, Recipient: 2, Encrypted: true, Payload: []byte("x")},
		}}},
		&Envelope{ReqID: 7, Msg: &MedKey{ExchangeID: 3, Key: [16]byte{9}}},
		&StripeGrant{Object: 5, Session: 11, Stripe: 2, Stripes: 3},
	}
}

// FuzzDecode feeds arbitrary frames to Decode. The invariants: Decode never
// panics; a frame that decodes re-encodes into a frame that decodes to the
// same bytes (a stable round-trip); and a tree that decodes converts to a
// core tree without panicking.
func FuzzDecode(f *testing.F) {
	for _, m := range corpusMessages() {
		frame, err := Encode(m)
		if err != nil {
			f.Fatalf("encode corpus %T: %v", m, err)
		}
		f.Add(frame)
	}
	// Adversarial seeds: truncated header, unknown type, oversize length
	// prefix, and an element count far beyond the payload.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 1, 0xff})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	huge := []byte{0, 0, 0, 9, byte(TypeRequest), 0, 0, 0, 1}
	huge = binary.BigEndian.AppendUint32(huge, 1<<20) // tree claims 2^20 nodes
	f.Add(huge)
	// Envelope edges: a header that dies inside the ReqID, and a nested
	// envelope (the decoder must reject envelopes wrapping envelopes).
	f.Add([]byte{0, 0, 0, 4, byte(TypeEnvelope), 0, 0, 9})
	nested := binary.BigEndian.AppendUint64([]byte(nil), 5)
	nested = append(nested, byte(TypeEnvelope))
	nested = binary.BigEndian.AppendUint64(nested, 6)
	nested = append(nested, byte(TypeCancel))
	nested = binary.BigEndian.AppendUint32(nested, 1)
	f.Add(frameFor(TypeEnvelope, nested))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, never panic
		}
		if req, ok := msg.(*Request); ok {
			_, _ = req.Tree.ToCoreTree() // must not panic on decoded trees
		}
		frame, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		msg2, err := Decode(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		frame2, err := Encode(msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatalf("round-trip not stable:\n%x\n%x", frame, frame2)
		}
	})
}

// TestDecodeRoundTripsCorpus runs the fuzz corpus as a plain unit test, so
// every message type's round-trip is exercised on every `go test` run, not
// only under -fuzz.
func TestDecodeRoundTripsCorpus(t *testing.T) {
	for _, m := range corpusMessages() {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := Decode(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		frame2, err := Encode(got)
		if err != nil {
			t.Fatalf("re-encode %T: %v", m, err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatalf("%T round-trip differs:\n%x\n%x", m, frame, frame2)
		}
	}
}

// TestDecodeRejectsCountAmplification pins the fuzz-found hardening: a tiny
// frame claiming a huge element count must be rejected as truncated before
// any allocation sized by the claim.
func TestDecodeRejectsCountAmplification(t *testing.T) {
	cases := map[string][]byte{
		"tree nodes": func() []byte {
			payload := binary.BigEndian.AppendUint32(nil, 1) // request object
			payload = binary.BigEndian.AppendUint32(payload, 2)
			payload = binary.BigEndian.AppendUint32(payload, 1<<20) // node count
			return frameFor(TypeRequest, payload)
		}(),
		"manifest digests": func() []byte {
			payload := binary.BigEndian.AppendUint32(nil, 1)
			payload = binary.BigEndian.AppendUint64(payload, 32)
			payload = binary.BigEndian.AppendUint32(payload, 1)
			payload = binary.BigEndian.AppendUint32(payload, 400_000) // digest count
			return frameFor(TypeManifest, payload)
		}(),
		"verify samples": func() []byte {
			payload := binary.BigEndian.AppendUint64(nil, 1)
			payload = binary.BigEndian.AppendUint32(payload, 2)
			payload = binary.BigEndian.AppendUint32(payload, 1)
			payload = binary.BigEndian.AppendUint32(payload, 5)
			payload = binary.BigEndian.AppendUint32(payload, 4096) // sample count
			return frameFor(TypeMedVerify, payload)
		}(),
		"shard map entries": func() []byte {
			payload := []byte{ShardMapVersion}
			payload = binary.BigEndian.AppendUint64(payload, 1)
			payload = binary.BigEndian.AppendUint32(payload, 1<<20) // shard count
			return frameFor(TypeMedShardMap, payload)
		}(),
	}
	for name, frame := range cases {
		if _, err := Decode(bytes.NewReader(frame)); err == nil {
			t.Fatalf("%s: amplified count accepted", name)
		}
	}
}

func frameFor(typ Type, payload []byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(payload)+1))
	out = append(out, byte(typ))
	return append(out, payload...)
}

// TestTreeRoundTripThroughCore checks the Tree <-> core.Tree conversion both
// ways on a branching tree.
func TestTreeRoundTripThroughCore(t *testing.T) {
	wire := Tree{
		Root: 1,
		Nodes: []TreeNode{
			{Peer: 2, Object: 10, Parent: -1},
			{Peer: 3, Object: 11, Parent: 0},
			{Peer: 4, Object: 12, Parent: 0},
			{Peer: 5, Object: 13, Parent: -1},
		},
	}
	ct, err := wire.ToCoreTree()
	if err != nil {
		t.Fatal(err)
	}
	if ct.Root != core.PeerID(1) || len(ct.Children) != 2 || len(ct.Children[0].Children) != 2 {
		t.Fatalf("core tree shape wrong: %+v", ct)
	}
	back := FromCoreTree(ct)
	if len(back.Nodes) != len(wire.Nodes) {
		t.Fatalf("round-trip node count %d, want %d", len(back.Nodes), len(wire.Nodes))
	}
}
