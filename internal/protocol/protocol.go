// Package protocol defines the wire format of the live peer implementation:
// length-prefixed binary frames carrying the request, exchange-ring, block
// transfer, and mediator messages of Section III.
//
// Frame layout: 4-byte big-endian payload length, 1-byte message type, then
// the payload. All integers are big-endian. Strings and byte slices are
// 2-byte/4-byte length-prefixed respectively.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"barter/internal/catalog"
	"barter/internal/core"
)

// MaxFrame bounds a frame's payload; larger frames are rejected as corrupt.
const MaxFrame = 16 << 20

// Type identifies a message on the wire.
type Type uint8

// Wire message types.
const (
	TypeHello Type = iota + 1
	TypeRequest
	TypeCancel
	TypeRingProbe
	TypeRingAccept
	TypeRingCommit
	TypeRingAbort
	TypeRingQuit
	TypeManifest
	TypeBlock
	TypeBlockAck
	TypeMedDeposit
	TypeMedVerify
	TypeMedKey
	TypeMedReject
	TypeMedShardMapReq
	TypeMedShardMap
	TypeMedRedirect
	TypeMedHandoff
	TypeMedHandoffAck
	TypeEnvelope
	TypeStripeGrant
)

// Message is one decodable wire message.
type Message interface {
	// Type returns the wire type tag.
	Type() Type
	encode(w *writer)
	decode(r *reader) error
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("protocol: frame exceeds maximum size")
	ErrUnknownType   = errors.New("protocol: unknown message type")
	ErrTruncated     = errors.New("protocol: truncated payload")
)

// Hello introduces a peer after connecting.
type Hello struct {
	Peer    core.PeerID
	Sharing bool
}

// Request registers interest in an object and carries the requester's
// request tree pruned to the protocol depth.
type Request struct {
	Object catalog.ObjectID
	Tree   Tree
}

// Cancel withdraws a pending request.
type Cancel struct {
	Object catalog.ObjectID
}

// RingMember mirrors core.Member on the wire.
type RingMember struct {
	Peer  core.PeerID
	Gives catalog.ObjectID
	Addr  string
}

// RingProbe is the validation token: the initiator asks a prospective
// member whether it is still willing and able to take its position.
type RingProbe struct {
	RingID  uint64
	Members []RingMember
}

// RingAccept answers a probe.
type RingAccept struct {
	RingID uint64
	OK     bool
	Reason string
}

// RingCommit starts the ring at every member.
type RingCommit struct {
	RingID uint64
}

// RingAbort cancels a probed-but-uncommitted ring.
type RingAbort struct {
	RingID uint64
}

// RingQuit dissolves a running ring (a member completed or is leaving).
type RingQuit struct {
	RingID uint64
}

// Manifest announces an object's block layout and digests so the receiver
// can validate each block before requesting the next one (Section III-B).
// Session identifies the transfer session that is sending (mediated
// transfers seal blocks under a per-session key, so the receiver must
// never mix blocks across a sender's sessions); zero for unmediated
// transfers.
type Manifest struct {
	Object  catalog.ObjectID
	Size    uint64
	Blocks  uint32
	Session uint64
	Digests [][32]byte
}

// Block carries one fixed-size block. RingID 0 marks a non-exchange
// transfer. Origin and Recipient form the control header of the mediated
// scheme; they travel encrypted when Encrypted is set, in which case
// Session names the upload session whose key sealed the payload.
type Block struct {
	Object    catalog.ObjectID
	Index     uint32
	RingID    uint64
	Session   uint64
	Origin    core.PeerID
	Recipient core.PeerID
	Encrypted bool
	Payload   []byte
}

// BlockAck acknowledges a validated block and grants the sender credit to
// continue (the synchronous block-for-block window of Section III-B).
// Session echoes the block's session so a sender never advances a live
// session on an ack addressed to a dead one.
type BlockAck struct {
	Object  catalog.ObjectID
	Index   uint32
	Session uint64
	OK      bool
}

// MedDeposit escrows a sender's block-encryption key with the mediator.
type MedDeposit struct {
	ExchangeID uint64
	Sender     core.PeerID
	Object     catalog.ObjectID
	Key        [16]byte
}

// MedVerify asks the mediator to audit sample blocks received from Sender
// and, if they check out, release the sender's key to the requester.
type MedVerify struct {
	ExchangeID uint64
	Requester  core.PeerID
	Sender     core.PeerID
	Object     catalog.ObjectID
	Samples    []Block
}

// MedKey releases an escrowed key.
type MedKey struct {
	ExchangeID uint64
	Key        [16]byte
}

// MedReject reason codes. The distinction matters to clients: an audit
// failure proves the claimed sender cheated, while a missing key is
// transient (the deposit has not arrived yet, or the owning shard restarted
// and lost its escrow) and must not be held against anyone.
const (
	MedRejectAudit      uint8 = 0 // samples contradict the claim: the sender cheated
	MedRejectNoKey      uint8 = 1 // no escrowed key for the claimed sender (transient)
	MedRejectOversize   uint8 = 2 // request exceeded the mediator's audit limits
	MedRejectBadRequest uint8 = 3 // request malformed (requester's fault; nobody is flagged)
)

// MedReject reports a refused verification; Code says whether the audit
// actually failed or the request could not be judged.
type MedReject struct {
	ExchangeID uint64
	Code       uint8
	Reason     string
}

// ShardMapVersion is the current wire version of the shard-map scheme;
// bump on incompatible changes to partitioning or the map layout.
const ShardMapVersion uint8 = 1

// MedShardMapReq asks any mediator shard for the current cluster topology.
// Epoch carries the requester's cached topology version (0 for none); the
// mediator always replies with its full current map.
type MedShardMapReq struct {
	Epoch uint64
}

// MedShardEntry names one shard of the mediator tier.
type MedShardEntry struct {
	Index uint32
	Addr  string
}

// MedShardMap announces the mediator tier topology: Version is the wire
// version of the partitioning scheme, Epoch increases whenever the topology
// changes (a shard restarting under a new address), and Shards lists every
// member in index order.
type MedShardMap struct {
	Version uint8
	Epoch   uint64
	Shards  []MedShardEntry
}

// MedRedirect tells a client its request for Object was misrouted: the
// shard at Addr owns the object's partition. Epoch lets the client notice
// its cached map is stale and refetch.
type MedRedirect struct {
	Object catalog.ObjectID
	Shard  uint32
	Addr   string
	Epoch  uint64
}

// MedDepositRecord is one escrow entry inside a MedHandoff: the same fields
// a MedDeposit carries, batched for shard-to-shard state transfer.
type MedDepositRecord struct {
	ExchangeID uint64
	Sender     core.PeerID
	Object     catalog.ObjectID
	Key        [16]byte
}

// MedFlagRecord is one flagged-peer entry inside a MedHandoff.
type MedFlagRecord struct {
	Peer  core.PeerID
	Count uint32
}

// MedHandoff transfers mediator state between shards: escrowed deposits and
// flagged-peer counts. It is sent when the tier reshards (the arcs adjacent
// to an added or removed shard migrate to their new owners) and when a shard
// replicates a fresh flag to the object's other owner. From names the
// sending shard; Epoch is the topology version the transfer belongs to.
// Receivers merge: deposits insert if absent, flag counts add.
type MedHandoff struct {
	From     uint32
	Epoch    uint64
	Deposits []MedDepositRecord
	Flags    []MedFlagRecord
}

// MedHandoffAck confirms a MedHandoff, echoing how many records of each kind
// the receiver merged (already-present deposits count as merged).
type MedHandoffAck struct {
	Deposits uint32
	Flags    uint32
}

// Envelope wraps an RPC-shaped message with a request identifier so many
// requests can share one connection concurrently: the responder echoes the
// ReqID on its reply and the requester's demultiplexing read loop routes it
// back to the in-flight call. Envelopes never nest, and a legacy
// (unenveloped) frame still decodes as before, so mixed-version tiers
// interoperate — an old client simply never sends envelopes and an old
// mediator never sees one. Msg must be non-nil when encoding.
type Envelope struct {
	ReqID uint64
	Msg   Message
}

// StripeGrant assigns a mediated sender its stripe of a striped download:
// the receiver grants the upload session leave to send block indices
// congruent to Stripe modulo Stripes. Stripes is 1 for an unstriped
// mediated transfer; the sender must not send sealed blocks before the
// grant arrives.
type StripeGrant struct {
	Object  catalog.ObjectID
	Session uint64
	Stripe  uint32
	Stripes uint32
}

// Tree is the wire form of a request tree (core.Tree flattened).
type Tree struct {
	Root  core.PeerID
	Nodes []TreeNode
}

// TreeNode is one wire tree node; Parent indexes Nodes, -1 for children of
// the root.
type TreeNode struct {
	Peer   core.PeerID
	Object catalog.ObjectID
	Parent int32
}

// FromCoreTree flattens a core.Tree for the wire.
func FromCoreTree(t *core.Tree) Tree {
	out := Tree{Root: t.Root}
	var walk func(n *core.TreeNode, parent int32)
	walk = func(n *core.TreeNode, parent int32) {
		out.Nodes = append(out.Nodes, TreeNode{Peer: n.Peer, Object: n.Object, Parent: parent})
		idx := int32(len(out.Nodes) - 1)
		for _, c := range n.Children {
			walk(c, idx)
		}
	}
	for _, c := range t.Children {
		walk(c, -1)
	}
	return out
}

// ToCoreTree rebuilds the core.Tree. Malformed parent references yield an
// error rather than a panic.
func (t Tree) ToCoreTree() (*core.Tree, error) {
	out := &core.Tree{Root: t.Root}
	nodes := make([]*core.TreeNode, len(t.Nodes))
	for i, n := range t.Nodes {
		nodes[i] = &core.TreeNode{Peer: n.Peer, Object: n.Object}
	}
	for i, n := range t.Nodes {
		switch {
		case n.Parent == -1:
			out.Children = append(out.Children, nodes[i])
		case n.Parent >= 0 && int(n.Parent) < i:
			nodes[n.Parent].Children = append(nodes[n.Parent].Children, nodes[i])
		default:
			return nil, fmt.Errorf("protocol: tree node %d has invalid parent %d", i, n.Parent)
		}
	}
	return out, nil
}

// Compile-time interface checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Request)(nil)
	_ Message = (*Cancel)(nil)
	_ Message = (*RingProbe)(nil)
	_ Message = (*RingAccept)(nil)
	_ Message = (*RingCommit)(nil)
	_ Message = (*RingAbort)(nil)
	_ Message = (*RingQuit)(nil)
	_ Message = (*Manifest)(nil)
	_ Message = (*Block)(nil)
	_ Message = (*BlockAck)(nil)
	_ Message = (*MedDeposit)(nil)
	_ Message = (*MedVerify)(nil)
	_ Message = (*MedKey)(nil)
	_ Message = (*MedReject)(nil)
	_ Message = (*MedShardMapReq)(nil)
	_ Message = (*MedShardMap)(nil)
	_ Message = (*MedRedirect)(nil)
	_ Message = (*MedHandoff)(nil)
	_ Message = (*MedHandoffAck)(nil)
	_ Message = (*Envelope)(nil)
	_ Message = (*StripeGrant)(nil)
)

// Type implementations.
func (*Hello) Type() Type          { return TypeHello }
func (*Request) Type() Type        { return TypeRequest }
func (*Cancel) Type() Type         { return TypeCancel }
func (*RingProbe) Type() Type      { return TypeRingProbe }
func (*RingAccept) Type() Type     { return TypeRingAccept }
func (*RingCommit) Type() Type     { return TypeRingCommit }
func (*RingAbort) Type() Type      { return TypeRingAbort }
func (*RingQuit) Type() Type       { return TypeRingQuit }
func (*Manifest) Type() Type       { return TypeManifest }
func (*Block) Type() Type          { return TypeBlock }
func (*BlockAck) Type() Type       { return TypeBlockAck }
func (*MedDeposit) Type() Type     { return TypeMedDeposit }
func (*MedVerify) Type() Type      { return TypeMedVerify }
func (*MedKey) Type() Type         { return TypeMedKey }
func (*MedReject) Type() Type      { return TypeMedReject }
func (*MedShardMapReq) Type() Type { return TypeMedShardMapReq }
func (*MedShardMap) Type() Type    { return TypeMedShardMap }
func (*MedRedirect) Type() Type    { return TypeMedRedirect }
func (*MedHandoff) Type() Type     { return TypeMedHandoff }
func (*MedHandoffAck) Type() Type  { return TypeMedHandoffAck }
func (*Envelope) Type() Type       { return TypeEnvelope }
func (*StripeGrant) Type() Type    { return TypeStripeGrant }

// New returns a zero message of the given wire type.
func New(t Type) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeRequest:
		return &Request{}, nil
	case TypeCancel:
		return &Cancel{}, nil
	case TypeRingProbe:
		return &RingProbe{}, nil
	case TypeRingAccept:
		return &RingAccept{}, nil
	case TypeRingCommit:
		return &RingCommit{}, nil
	case TypeRingAbort:
		return &RingAbort{}, nil
	case TypeRingQuit:
		return &RingQuit{}, nil
	case TypeManifest:
		return &Manifest{}, nil
	case TypeBlock:
		return &Block{}, nil
	case TypeBlockAck:
		return &BlockAck{}, nil
	case TypeMedDeposit:
		return &MedDeposit{}, nil
	case TypeMedVerify:
		return &MedVerify{}, nil
	case TypeMedKey:
		return &MedKey{}, nil
	case TypeMedReject:
		return &MedReject{}, nil
	case TypeMedShardMapReq:
		return &MedShardMapReq{}, nil
	case TypeMedShardMap:
		return &MedShardMap{}, nil
	case TypeMedRedirect:
		return &MedRedirect{}, nil
	case TypeMedHandoff:
		return &MedHandoff{}, nil
	case TypeMedHandoffAck:
		return &MedHandoffAck{}, nil
	case TypeEnvelope:
		return &Envelope{}, nil
	case TypeStripeGrant:
		return &StripeGrant{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

// Encode serializes msg into a self-delimiting frame.
func Encode(msg Message) ([]byte, error) {
	return AppendEncode(nil, msg)
}

// AppendEncode serializes msg into a self-delimiting frame appended to dst
// and returns the extended slice. Senders on a hot path pass a retained
// scratch buffer (dst[:0]) so steady-state encoding allocates nothing; the
// returned slice must not be retained past the next AppendEncode into the
// same scratch.
func AppendEncode(dst []byte, msg Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0) // header hole, patched below
	w := writer{buf: dst}
	msg.encode(&w)
	dst = w.buf
	payload := len(dst) - start - 5
	if payload+1 > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(payload+1))
	dst[start+4] = byte(msg.Type())
	return dst, nil
}

// Decode parses one frame from r (blocking until a full frame arrives).
func Decode(r io.Reader) (Message, error) {
	msg, _, err := DecodeBuf(r, nil)
	return msg, err
}

// DecodeBuf parses one frame from r like Decode but reads the payload into
// scratch (grown as needed) instead of allocating per frame, and returns the
// possibly-grown scratch for reuse. Receivers on a hot path keep a retained
// per-connection scratch — the AppendEncode mirror for the decode side.
// Decoded messages never alias the scratch (variable-length fields copy out),
// so the same buffer is safe to reuse for the next frame immediately.
func DecodeBuf(r io.Reader, scratch []byte) (Message, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, scratch, err
	}
	size := binary.BigEndian.Uint32(hdr[:4])
	if size == 0 || size > MaxFrame {
		return nil, scratch, ErrFrameTooLarge
	}
	msg, err := New(Type(hdr[4]))
	if err != nil {
		return nil, scratch, err
	}
	n := int(size - 1)
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	payload := scratch[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, scratch, err
	}
	rd := &reader{buf: payload}
	if err := msg.decode(rd); err != nil {
		return nil, scratch, err
	}
	return msg, scratch, nil
}

// --- primitive codec -------------------------------------------------------

// writer appends directly to the caller's frame buffer, so one encode is at
// most one allocation (the append growth) and zero at steady state.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bytes(p []byte) { w.u32(uint32(len(p))); w.buf = append(w.buf, p...) }
func (w *writer) raw(p []byte)   { w.buf = append(w.buf, p...) }

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

// count validates a decoded element count against both a hard cap and the
// bytes actually remaining (each element needs at least minBytes). Bounding
// by the remainder matters: pre-allocating from an attacker-claimed count
// alone would let a few-byte frame demand a multi-megabyte allocation
// (found by FuzzDecode).
func (r *reader) count(n, limit, minBytes int) int {
	if r.err != nil {
		return 0
	}
	if n < 0 || n > limit || n*minBytes > len(r.buf)-r.off {
		r.err = ErrTruncated
		return 0
	}
	return n
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) boolean() bool {
	return r.u8() == 1
}
func (r *reader) str() string {
	b := r.take(2)
	if b == nil {
		return ""
	}
	n := int(binary.BigEndian.Uint16(b))
	return string(r.take(n))
}
func (r *reader) byteSlice() []byte {
	n := int(r.u32())
	if r.err != nil || n > MaxFrame {
		r.err = ErrTruncated
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// --- per-message codecs -----------------------------------------------------

func (m *Hello) encode(w *writer) {
	w.i32(int32(m.Peer))
	w.boolean(m.Sharing)
}
func (m *Hello) decode(r *reader) error {
	m.Peer = core.PeerID(r.i32())
	m.Sharing = r.boolean()
	return r.err
}

func (m *Request) encode(w *writer) {
	w.i32(int32(m.Object))
	encodeTree(w, m.Tree)
}
func (m *Request) decode(r *reader) error {
	m.Object = catalog.ObjectID(r.i32())
	m.Tree = decodeTree(r)
	return r.err
}

func (m *Cancel) encode(w *writer) { w.i32(int32(m.Object)) }
func (m *Cancel) decode(r *reader) error {
	m.Object = catalog.ObjectID(r.i32())
	return r.err
}

func encodeTree(w *writer, t Tree) {
	w.i32(int32(t.Root))
	w.u32(uint32(len(t.Nodes)))
	for _, n := range t.Nodes {
		w.i32(int32(n.Peer))
		w.i32(int32(n.Object))
		w.i32(n.Parent)
	}
}
func decodeTree(r *reader) Tree {
	t := Tree{Root: core.PeerID(r.i32())}
	n := r.count(int(r.u32()), MaxFrame/12, 12) // 12 bytes per encoded node
	if r.err != nil {
		return t
	}
	t.Nodes = make([]TreeNode, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		t.Nodes = append(t.Nodes, TreeNode{
			Peer:   core.PeerID(r.i32()),
			Object: catalog.ObjectID(r.i32()),
			Parent: r.i32(),
		})
	}
	return t
}

func encodeMembers(w *writer, ms []RingMember) {
	w.u32(uint32(len(ms)))
	for _, m := range ms {
		w.i32(int32(m.Peer))
		w.i32(int32(m.Gives))
		w.str(m.Addr)
	}
}
func decodeMembers(r *reader) []RingMember {
	n := r.count(int(r.u32()), 1024, 10) // 4+4+2 bytes minimum per member
	if r.err != nil {
		return nil
	}
	out := make([]RingMember, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, RingMember{
			Peer:  core.PeerID(r.i32()),
			Gives: catalog.ObjectID(r.i32()),
			Addr:  r.str(),
		})
	}
	return out
}

func (m *RingProbe) encode(w *writer) {
	w.u64(m.RingID)
	encodeMembers(w, m.Members)
}
func (m *RingProbe) decode(r *reader) error {
	m.RingID = r.u64()
	m.Members = decodeMembers(r)
	return r.err
}

func (m *RingAccept) encode(w *writer) {
	w.u64(m.RingID)
	w.boolean(m.OK)
	w.str(m.Reason)
}
func (m *RingAccept) decode(r *reader) error {
	m.RingID = r.u64()
	m.OK = r.boolean()
	m.Reason = r.str()
	return r.err
}

func (m *RingCommit) encode(w *writer) { w.u64(m.RingID) }
func (m *RingCommit) decode(r *reader) error {
	m.RingID = r.u64()
	return r.err
}

func (m *RingAbort) encode(w *writer) { w.u64(m.RingID) }
func (m *RingAbort) decode(r *reader) error {
	m.RingID = r.u64()
	return r.err
}

func (m *RingQuit) encode(w *writer) { w.u64(m.RingID) }
func (m *RingQuit) decode(r *reader) error {
	m.RingID = r.u64()
	return r.err
}

func (m *Manifest) encode(w *writer) {
	w.i32(int32(m.Object))
	w.u64(m.Size)
	w.u32(m.Blocks)
	w.u64(m.Session)
	w.u32(uint32(len(m.Digests)))
	for _, d := range m.Digests {
		w.raw(d[:])
	}
}
func (m *Manifest) decode(r *reader) error {
	m.Object = catalog.ObjectID(r.i32())
	m.Size = r.u64()
	m.Blocks = r.u32()
	m.Session = r.u64()
	n := r.count(int(r.u32()), MaxFrame/32, 32)
	if r.err != nil {
		return r.err
	}
	m.Digests = make([][32]byte, 0, n)
	for i := 0; i < n; i++ {
		b := r.take(32)
		if b == nil {
			return r.err
		}
		var d [32]byte
		copy(d[:], b)
		m.Digests = append(m.Digests, d)
	}
	return r.err
}

func (m *Block) encode(w *writer) {
	w.i32(int32(m.Object))
	w.u32(m.Index)
	w.u64(m.RingID)
	w.u64(m.Session)
	w.i32(int32(m.Origin))
	w.i32(int32(m.Recipient))
	w.boolean(m.Encrypted)
	w.bytes(m.Payload)
}
func (m *Block) decode(r *reader) error {
	m.Object = catalog.ObjectID(r.i32())
	m.Index = r.u32()
	m.RingID = r.u64()
	m.Session = r.u64()
	m.Origin = core.PeerID(r.i32())
	m.Recipient = core.PeerID(r.i32())
	m.Encrypted = r.boolean()
	m.Payload = r.byteSlice()
	return r.err
}

func (m *BlockAck) encode(w *writer) {
	w.i32(int32(m.Object))
	w.u32(m.Index)
	w.u64(m.Session)
	w.boolean(m.OK)
}
func (m *BlockAck) decode(r *reader) error {
	m.Object = catalog.ObjectID(r.i32())
	m.Index = r.u32()
	m.Session = r.u64()
	m.OK = r.boolean()
	return r.err
}

func (m *MedDeposit) encode(w *writer) {
	w.u64(m.ExchangeID)
	w.i32(int32(m.Sender))
	w.i32(int32(m.Object))
	w.raw(m.Key[:])
}
func (m *MedDeposit) decode(r *reader) error {
	m.ExchangeID = r.u64()
	m.Sender = core.PeerID(r.i32())
	m.Object = catalog.ObjectID(r.i32())
	b := r.take(16)
	if b == nil {
		return r.err
	}
	copy(m.Key[:], b)
	return r.err
}

func (m *MedVerify) encode(w *writer) {
	w.u64(m.ExchangeID)
	w.i32(int32(m.Requester))
	w.i32(int32(m.Sender))
	w.i32(int32(m.Object))
	w.u32(uint32(len(m.Samples)))
	for i := range m.Samples {
		m.Samples[i].encode(w)
	}
}
func (m *MedVerify) decode(r *reader) error {
	m.ExchangeID = r.u64()
	m.Requester = core.PeerID(r.i32())
	m.Sender = core.PeerID(r.i32())
	m.Object = catalog.ObjectID(r.i32())
	n := r.count(int(r.u32()), 4096, 37) // 4+4+8+8+4+4+1+4 header bytes per block
	if r.err != nil {
		return r.err
	}
	m.Samples = make([]Block, n)
	for i := 0; i < n; i++ {
		if err := m.Samples[i].decode(r); err != nil {
			return err
		}
	}
	return r.err
}

func (m *MedKey) encode(w *writer) {
	w.u64(m.ExchangeID)
	w.raw(m.Key[:])
}
func (m *MedKey) decode(r *reader) error {
	m.ExchangeID = r.u64()
	b := r.take(16)
	if b == nil {
		return r.err
	}
	copy(m.Key[:], b)
	return r.err
}

func (m *MedReject) encode(w *writer) {
	w.u64(m.ExchangeID)
	w.u8(m.Code)
	w.str(m.Reason)
}
func (m *MedReject) decode(r *reader) error {
	m.ExchangeID = r.u64()
	m.Code = r.u8()
	m.Reason = r.str()
	return r.err
}

func (m *MedShardMapReq) encode(w *writer) { w.u64(m.Epoch) }
func (m *MedShardMapReq) decode(r *reader) error {
	m.Epoch = r.u64()
	return r.err
}

func (m *MedShardMap) encode(w *writer) {
	w.u8(m.Version)
	w.u64(m.Epoch)
	w.u32(uint32(len(m.Shards)))
	for _, s := range m.Shards {
		w.u32(s.Index)
		w.str(s.Addr)
	}
}
func (m *MedShardMap) decode(r *reader) error {
	m.Version = r.u8()
	m.Epoch = r.u64()
	n := r.count(int(r.u32()), 4096, 6) // 4 index + 2 addr length per entry
	if r.err != nil {
		return r.err
	}
	m.Shards = make([]MedShardEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		m.Shards = append(m.Shards, MedShardEntry{Index: r.u32(), Addr: r.str()})
	}
	return r.err
}

func (m *MedHandoff) encode(w *writer) {
	w.u32(m.From)
	w.u64(m.Epoch)
	w.u32(uint32(len(m.Deposits)))
	for _, d := range m.Deposits {
		w.u64(d.ExchangeID)
		w.i32(int32(d.Sender))
		w.i32(int32(d.Object))
		w.raw(d.Key[:])
	}
	w.u32(uint32(len(m.Flags)))
	for _, f := range m.Flags {
		w.i32(int32(f.Peer))
		w.u32(f.Count)
	}
}
func (m *MedHandoff) decode(r *reader) error {
	m.From = r.u32()
	m.Epoch = r.u64()
	nd := r.count(int(r.u32()), MaxFrame/32, 32) // 8+4+4+16 bytes per deposit
	if r.err != nil {
		return r.err
	}
	m.Deposits = make([]MedDepositRecord, 0, nd)
	for i := 0; i < nd && r.err == nil; i++ {
		d := MedDepositRecord{
			ExchangeID: r.u64(),
			Sender:     core.PeerID(r.i32()),
			Object:     catalog.ObjectID(r.i32()),
		}
		if b := r.take(16); b != nil {
			copy(d.Key[:], b)
		}
		m.Deposits = append(m.Deposits, d)
	}
	if r.err != nil {
		return r.err
	}
	nf := r.count(int(r.u32()), MaxFrame/8, 8) // 4+4 bytes per flag
	if r.err != nil {
		return r.err
	}
	m.Flags = make([]MedFlagRecord, 0, nf)
	for i := 0; i < nf && r.err == nil; i++ {
		m.Flags = append(m.Flags, MedFlagRecord{Peer: core.PeerID(r.i32()), Count: r.u32()})
	}
	return r.err
}

func (m *MedHandoffAck) encode(w *writer) {
	w.u32(m.Deposits)
	w.u32(m.Flags)
}
func (m *MedHandoffAck) decode(r *reader) error {
	m.Deposits = r.u32()
	m.Flags = r.u32()
	return r.err
}

func (m *Envelope) encode(w *writer) {
	w.u64(m.ReqID)
	w.u8(byte(m.Msg.Type()))
	m.Msg.encode(w)
}
func (m *Envelope) decode(r *reader) error {
	m.ReqID = r.u64()
	typ := Type(r.u8())
	if r.err != nil {
		return r.err
	}
	// Nested envelopes are forbidden: a frame of repeated envelope tags
	// would otherwise recurse to stack exhaustion (found by FuzzDecode
	// design review, guarded before it could find it the hard way).
	if typ == TypeEnvelope {
		r.err = fmt.Errorf("%w: nested envelope", ErrUnknownType)
		return r.err
	}
	inner, err := New(typ)
	if err != nil {
		r.err = err
		return r.err
	}
	if err := inner.decode(r); err != nil {
		return err
	}
	m.Msg = inner
	return r.err
}

func (m *StripeGrant) encode(w *writer) {
	w.i32(int32(m.Object))
	w.u64(m.Session)
	w.u32(m.Stripe)
	w.u32(m.Stripes)
}
func (m *StripeGrant) decode(r *reader) error {
	m.Object = catalog.ObjectID(r.i32())
	m.Session = r.u64()
	m.Stripe = r.u32()
	m.Stripes = r.u32()
	return r.err
}

func (m *MedRedirect) encode(w *writer) {
	w.i32(int32(m.Object))
	w.u32(m.Shard)
	w.str(m.Addr)
	w.u64(m.Epoch)
}
func (m *MedRedirect) decode(r *reader) error {
	m.Object = catalog.ObjectID(r.i32())
	m.Shard = r.u32()
	m.Addr = r.str()
	m.Epoch = r.u64()
	return r.err
}
