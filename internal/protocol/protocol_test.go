package protocol

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"barter/internal/catalog"
	"barter/internal/core"
)

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	frame, err := Encode(msg)
	if err != nil {
		t.Fatalf("Encode(%T): %v", msg, err)
	}
	got, err := Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("Decode(%T): %v", msg, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		&Hello{Peer: 7, Sharing: true},
		&Request{Object: 42, Tree: Tree{Root: 7, Nodes: []TreeNode{
			{Peer: 8, Object: 9, Parent: -1},
			{Peer: 10, Object: 11, Parent: 0},
		}}},
		&Cancel{Object: 3},
		&RingProbe{RingID: 99, Members: []RingMember{
			{Peer: 1, Gives: 2, Addr: "mem://a"},
			{Peer: 3, Gives: 4, Addr: "mem://b"},
		}},
		&RingAccept{RingID: 99, OK: true, Reason: ""},
		&RingAccept{RingID: 100, OK: false, Reason: "no capacity"},
		&RingCommit{RingID: 99},
		&RingAbort{RingID: 99},
		&RingQuit{RingID: 99},
		&Manifest{Object: 5, Size: 1 << 20, Blocks: 4, Session: 12, Digests: [][32]byte{{1, 2}, {3, 4}}},
		&Block{Object: 5, Index: 2, RingID: 7, Session: 12, Origin: 1, Recipient: 2, Encrypted: true, Payload: []byte("hello world")},
		&BlockAck{Object: 5, Index: 2, Session: 11, OK: true},
		&MedDeposit{ExchangeID: 8, Sender: 1, Object: 5, Key: [16]byte{9, 9}},
		&MedVerify{ExchangeID: 8, Requester: 2, Sender: 1, Object: 5, Samples: []Block{
			{Object: 5, Index: 0, Payload: []byte("x")},
		}},
		&MedKey{ExchangeID: 8, Key: [16]byte{9, 9}},
		&MedReject{ExchangeID: 8, Code: MedRejectAudit, Reason: "origin mismatch"},
		&MedReject{ExchangeID: 9, Code: MedRejectNoKey, Reason: "no escrowed key"},
		&MedShardMapReq{Epoch: 3},
		&MedShardMapReq{},
		&MedShardMap{Version: ShardMapVersion, Epoch: 5, Shards: []MedShardEntry{
			{Index: 0, Addr: "mem://med-0"},
			{Index: 1, Addr: "127.0.0.1:7101"},
			{Index: 2, Addr: "mem://med-2"},
		}},
		&MedRedirect{Object: 5, Shard: 2, Addr: "mem://med-2", Epoch: 5},
		&MedHandoff{From: 1, Epoch: 6, Deposits: []MedDepositRecord{
			{ExchangeID: 8, Sender: 1, Object: 5, Key: [16]byte{9, 9}},
			{ExchangeID: 9, Sender: 2, Object: 6, Key: [16]byte{1, 2, 3}},
		}, Flags: []MedFlagRecord{
			{Peer: 3, Count: 2},
			{Peer: 4, Count: 1},
		}},
		&MedHandoffAck{Deposits: 2, Flags: 1},
		&Envelope{ReqID: 77, Msg: &MedVerify{ExchangeID: 8, Requester: 2, Sender: 1, Object: 5, Samples: []Block{
			{Object: 5, Index: 0, Payload: []byte("x")},
		}}},
		&Envelope{ReqID: 0, Msg: &MedShardMapReq{Epoch: 3}},
		&StripeGrant{Object: 5, Session: 12, Stripe: 1, Stripes: 3},
	}
	for _, msg := range msgs {
		got := roundTrip(t, msg)
		if !reflect.DeepEqual(msg, got) {
			t.Fatalf("%T round trip:\n sent %+v\n got  %+v", msg, msg, got)
		}
	}
}

func TestRoundTripEmptyPayloads(t *testing.T) {
	got := roundTrip(t, &Block{Payload: []byte{}})
	blk, ok := got.(*Block)
	if !ok || len(blk.Payload) != 0 {
		t.Fatalf("empty block round trip: %+v", got)
	}
	tr := roundTrip(t, &Request{Object: 1, Tree: Tree{Root: 2}})
	if req, ok := tr.(*Request); !ok || len(req.Tree.Nodes) != 0 {
		t.Fatalf("empty tree round trip: %+v", tr)
	}
	ho := roundTrip(t, &MedHandoff{From: 1, Epoch: 7})
	if h, ok := ho.(*MedHandoff); !ok || h.From != 1 || h.Epoch != 7 || len(h.Deposits) != 0 || len(h.Flags) != 0 {
		t.Fatalf("empty handoff round trip: %+v", ho)
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	frame := []byte{0, 0, 0, 1, 0xEE}
	if _, err := Decode(bytes.NewReader(frame)); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

func TestDecodeRejectsOversizedFrame(t *testing.T) {
	var hdr [5]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0xFF
	hdr[4] = byte(TypeHello)
	if _, err := Decode(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	frame, err := Encode(&Block{Object: 1, Payload: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		_, err := Decode(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(frame))
		}
	}
}

func TestDecodeCorruptInnerLength(t *testing.T) {
	// A Block whose inner payload length claims more bytes than the frame
	// holds must fail with ErrTruncated, not panic or over-read.
	msg := &Block{Object: 1, Payload: []byte("abc")}
	frame, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Payload length field is the 4 bytes right before the payload.
	idx := bytes.Index(frame, []byte("abc")) - 4
	frame[idx] = 0xFF
	frame[idx+1] = 0xFF
	if _, err := Decode(bytes.NewReader(frame)); err == nil {
		t.Fatal("corrupt inner length accepted")
	}
}

func TestDecodeEOF(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		frame, err := Encode(&BlockAck{Object: catalog.ObjectID(i), Index: uint32(i), OK: i%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	for i := 0; i < 10; i++ {
		msg, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		ack, ok := msg.(*BlockAck)
		if !ok || ack.Object != catalog.ObjectID(i) {
			t.Fatalf("frame %d decoded to %+v", i, msg)
		}
	}
}

func TestTreeConversionRoundTrip(t *testing.T) {
	ct := &core.Tree{Root: 1}
	b := &core.TreeNode{Peer: 2, Object: 20}
	c := &core.TreeNode{Peer: 3, Object: 30}
	d := &core.TreeNode{Peer: 4, Object: 40}
	b.Children = []*core.TreeNode{c}
	ct.Children = []*core.TreeNode{b, d}

	wire := FromCoreTree(ct)
	back, err := wire.ToCoreTree()
	if err != nil {
		t.Fatal(err)
	}
	if back.Root != 1 || len(back.Children) != 2 {
		t.Fatalf("rebuilt tree wrong: %+v", back)
	}
	if back.Children[0].Peer != 2 || back.Children[0].Children[0].Peer != 3 || back.Children[1].Peer != 4 {
		t.Fatalf("rebuilt structure wrong:\n%s", back)
	}
	if back.Size() != ct.Size() || back.Depth() != ct.Depth() {
		t.Fatal("size/depth changed in conversion")
	}
}

func TestToCoreTreeRejectsBadParent(t *testing.T) {
	bad := Tree{Root: 1, Nodes: []TreeNode{
		{Peer: 2, Object: 20, Parent: 5}, // forward/invalid reference
	}}
	if _, err := bad.ToCoreTree(); err == nil {
		t.Fatal("invalid parent accepted")
	}
	selfRef := Tree{Root: 1, Nodes: []TreeNode{
		{Peer: 2, Object: 20, Parent: 0}, // references itself
	}}
	if _, err := selfRef.ToCoreTree(); err == nil {
		t.Fatal("self-referencing parent accepted")
	}
}

// TestPropertyBlockRoundTrip fuzzes Block payload/field combinations.
func TestPropertyBlockRoundTrip(t *testing.T) {
	f := func(obj int32, idx uint32, ring uint64, origin, rcpt int32, enc bool, payload []byte) bool {
		in := &Block{
			Object:    catalog.ObjectID(obj),
			Index:     idx,
			RingID:    ring,
			Origin:    core.PeerID(origin),
			Recipient: core.PeerID(rcpt),
			Encrypted: enc,
			Payload:   payload,
		}
		frame, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(bytes.NewReader(frame))
		if err != nil {
			return false
		}
		got, ok := out.(*Block)
		if !ok {
			return false
		}
		if len(payload) == 0 {
			return len(got.Payload) == 0
		}
		return reflect.DeepEqual(in, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecodeNeverPanics feeds random bytes to the decoder.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("decode panicked: %v", r)
			}
		}()
		_, _ = Decode(bytes.NewReader(raw)) //nolint:errcheck // errors expected on garbage
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeBlock(b *testing.B) {
	// The live send path (transport.tcpConn.Send) re-encodes into a retained
	// per-connection scratch; measure that path, not the allocate-per-frame
	// convenience wrapper.
	msg := &Block{Object: 1, Index: 2, Payload: make([]byte, 4096)}
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := AppendEncode(scratch[:0], msg)
		if err != nil {
			b.Fatal(err)
		}
		scratch = frame
	}
}

func BenchmarkDecodeBlock(b *testing.B) {
	// The live receive path (transport.tcpConn.Recv) decodes into a retained
	// per-connection scratch; measure that path, not the allocate-per-frame
	// convenience wrapper.
	frame, err := Encode(&Block{Object: 1, Index: 2, Payload: make([]byte, 4096)})
	if err != nil {
		b.Fatal(err)
	}
	var scratch []byte
	rd := bytes.NewReader(frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		msg, buf, err := DecodeBuf(rd, scratch)
		if err != nil {
			b.Fatal(err)
		}
		_ = msg
		scratch = buf
	}
}
