package workload

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func sampleTrace() *Trace {
	rec := NewRecorder()
	rec.Hold(0, 1)
	rec.Hold(0, 2)
	rec.Hold(1, 3)
	rec.Request(0.5, 2, 1)
	rec.Request(0.5, 2, 3)
	rec.Request(0.25, 3, 2)
	rec.Arrive(1.5, 4)
	rec.Request(2.0, 4, 1)
	rec.Depart(3.0, 4)
	return rec.Trace(Header{Scenario: "test", Nodes: 5, Objects: 3, Horizon: 4,
		ObjectKbits: 256, BlockKbits: 32})
}

func TestTraceRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
	// A second encode is byte-identical (canonical order is stable).
	var buf2 bytes.Buffer
	if _, err := got.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoded trace differs")
	}
}

func TestTraceCanonicalOrder(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Events); i++ {
		if less(tr.Events[i], tr.Events[i-1]) {
			t.Fatalf("events %d and %d out of order: %+v then %+v", i-1, i, tr.Events[i-1], tr.Events[i])
		}
	}
	// Holds sort to the front (T=0).
	if tr.Events[0].Kind != KindHold {
		t.Errorf("first event is %q, want hold", tr.Events[0].Kind)
	}
}

func TestRecorderTopsUpNodes(t *testing.T) {
	rec := NewRecorder()
	rec.Request(1, 41, 1) // whitewashed identity beyond the initial population
	tr := rec.Trace(Header{Nodes: 10, Horizon: 2})
	if tr.Header.Nodes != 42 {
		t.Errorf("Nodes = %d, want 42", tr.Header.Nodes)
	}
	if tr.PeerCount() != 42 {
		t.Errorf("PeerCount = %d, want 42", tr.PeerCount())
	}
}

func TestRecorderClampsNegativeTimes(t *testing.T) {
	rec := NewRecorder()
	rec.Request(-0.001, 0, 1)
	tr := rec.Trace(Header{Nodes: 1, Horizon: 1})
	if tr.Events[0].T != 0 {
		t.Errorf("negative time not clamped: %v", tr.Events[0].T)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Request(float64(i), g, i+1)
			}
		}(g)
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Errorf("Len = %d, want 800", rec.Len())
	}
	tr := rec.Trace(Header{Nodes: 8, Horizon: 100})
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadTraceRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not a header", `{"kind":"request","t":1,"peer":0,"obj":1}`},
		{"bad version", `{"kind":"header","version":99,"nodes":2,"horizon":1}`},
		{"bad json", "{"},
		{"unknown kind", "{\"kind\":\"header\",\"version\":1,\"nodes\":2,\"horizon\":1}\n{\"kind\":\"explode\",\"t\":1,\"peer\":0}"},
		{"negative time", "{\"kind\":\"header\",\"version\":1,\"nodes\":2,\"horizon\":1}\n{\"kind\":\"depart\",\"t\":-1,\"peer\":0}"},
		{"zero object", "{\"kind\":\"header\",\"version\":1,\"nodes\":2,\"objects\":4,\"horizon\":1}\n{\"kind\":\"request\",\"t\":1,\"peer\":0}"},
	}
	for _, tc := range cases {
		if _, err := ReadTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: ReadTrace accepted it", tc.name)
		}
	}
}

func TestValidateRejectsUnsorted(t *testing.T) {
	tr := &Trace{
		Header: Header{Version: TraceVersion, Nodes: 2, Horizon: 10},
		Events: []Event{
			{Kind: KindRequest, T: 5, Peer: 0, Obj: 1},
			{Kind: KindRequest, T: 1, Peer: 0, Obj: 1},
		},
	}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace validated")
	}
}
