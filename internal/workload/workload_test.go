package workload

import (
	"math"
	"os"
	"strings"
	"testing"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, name := range BuiltinNames() {
		s, ok := Builtin(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("builtin %q: Name = %q", name, s.Name)
		}
	}
	if _, ok := Builtin("nope"); ok {
		t.Error("unknown builtin resolved")
	}
}

func TestBuiltinReturnsCopy(t *testing.T) {
	a, _ := Builtin("flash")
	a.RequestsPerPeer = 999
	a.Phases[0].Level = 123
	b, _ := Builtin("flash")
	if b.RequestsPerPeer == 999 || b.Phases[0].Level == 123 {
		t.Error("Builtin shares state between calls")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig, _ := Builtin("waves")
	parsed, err := ParseSpec(orig.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != orig.Name || len(parsed.Phases) != len(orig.Phases) ||
		len(parsed.Cohorts) != len(orig.Cohorts) ||
		parsed.Popularity != orig.Popularity {
		t.Errorf("round trip mismatch: %+v vs %+v", parsed, orig)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Spec { s, _ := Builtin("constant"); return s }
	cases := []struct {
		name   string
		break_ func(*Spec)
	}{
		{"no requests", func(s *Spec) { s.RequestsPerPeer = 0 }},
		{"no phases", func(s *Spec) { s.Phases = nil }},
		{"bad shape", func(s *Spec) { s.Phases[0].Shape = "square" }},
		{"negative level", func(s *Spec) { s.Phases[0].Level = -1 }},
		{"base above peak", func(s *Spec) { s.Phases[0].Peak = 1; s.Phases[0].Base = 2 }},
		{"negative zipf", func(s *Spec) { s.Popularity.Zipf = -1 }},
		{"cohort frac", func(s *Spec) { s.Cohorts = []Cohort{{Frac: 1.5, Arrive: 0}} }},
		{"cohort window", func(s *Spec) { s.Cohorts = []Cohort{{Frac: 0.5, Arrive: 0.8, Depart: 0.5}} }},
		{"cohort sum", func(s *Spec) {
			s.Cohorts = []Cohort{{Frac: 0.7, Arrive: 0}, {Frac: 0.7, Arrive: 0.1}}
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.break_(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken spec", tc.name)
		}
	}
}

func TestLoadBuiltinAndFile(t *testing.T) {
	if _, err := Load("flash"); err != nil {
		t.Fatalf("Load builtin: %v", err)
	}
	dir := t.TempDir()
	path := dir + "/spec.json"
	s, _ := Builtin("diurnal")
	if err := os.WriteFile(path, s.JSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load file: %v", err)
	}
	if got.Name != "diurnal" {
		t.Errorf("loaded spec name %q", got.Name)
	}
	if _, err := Load(dir + "/missing.json"); err == nil {
		t.Error("Load of missing file+name succeeded")
	}
}

func TestCompileDeterminism(t *testing.T) {
	spec, _ := Builtin("waves")
	a, err := spec.Compile(1000, 40, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Compile(1000, 40, 64, 7)
	for p := 0; p < 40; p++ {
		ra, rb := a.PeerStream(p), b.PeerStream(p)
		var ta, tb float64
		for i := 0; i < 50; i++ {
			ta, tb = a.NextArrival(ta, ra), b.NextArrival(tb, rb)
			if ta != tb {
				t.Fatalf("peer %d arrival %d: %v vs %v", p, i, ta, tb)
			}
			if ta >= 1000 {
				break
			}
			if oa, ob := a.SampleObject(ta, ra), b.SampleObject(tb, rb); oa != ob {
				t.Fatalf("peer %d object %d: %d vs %d", p, i, oa, ob)
			}
		}
		aa, ad := a.Session(p)
		ba, bd := b.Session(p)
		if aa != ba || ad != bd {
			t.Fatalf("peer %d session mismatch", p)
		}
	}
	// Different peers see different streams.
	r0, r1 := a.PeerStream(0), a.PeerStream(1)
	if a.NextArrival(0, r0) == a.NextArrival(0, r1) {
		t.Error("peer streams 0 and 1 coincide")
	}
}

// TestArrivalVolume checks the RequestsPerPeer anchor: the mean arrival
// count over many peers must land near the spec's target for every builtin
// shape and for very different horizons (the normalized-time property).
func TestArrivalVolume(t *testing.T) {
	for _, name := range BuiltinNames() {
		spec, _ := Builtin(name)
		spec.Cohorts = nil // count raw demand, not session-clipped demand
		for _, horizon := range []float64{60, 30000} {
			sc, err := spec.Compile(horizon, 200, 500, 11)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for p := 0; p < 200; p++ {
				r := sc.PeerStream(p)
				for at := sc.NextArrival(0, r); at < horizon; at = sc.NextArrival(at, r) {
					total++
					sc.SampleObject(at, r)
				}
			}
			mean := float64(total) / 200
			if math.Abs(mean-spec.RequestsPerPeer) > 0.15*spec.RequestsPerPeer {
				t.Errorf("%s @ horizon %v: mean arrivals %.1f, want ~%v", name, horizon, mean, spec.RequestsPerPeer)
			}
		}
	}
}

// TestFlashShape checks that the flash builtin front-loads its spike phase:
// the spike quarter of the horizon must carry several times the demand of
// the cooled-down final quarter.
func TestFlashShape(t *testing.T) {
	spec, _ := Builtin("flash")
	sc, err := spec.Compile(10000, 100, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	var early, late int
	for p := 0; p < 100; p++ {
		r := sc.PeerStream(p)
		for at := sc.NextArrival(0, r); at < 10000; at = sc.NextArrival(at, r) {
			sc.SampleObject(at, r)
			// The builtin's spike phase starts at 1/4 of the horizon.
			switch {
			case at >= 2500 && at < 5000:
				early++
			case at >= 7500:
				late++
			}
		}
	}
	if early < 3*late {
		t.Errorf("flash crowd not front-loaded: spike quarter %d vs final quarter %d", early, late)
	}
}

func TestCohortSessions(t *testing.T) {
	spec, _ := Builtin("waves")
	sc, err := spec.Compile(1000, 100, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for p := 0; p < 100; p++ {
		name := sc.CohortName(p)
		counts[name]++
		arrive, depart := sc.Session(p)
		switch name {
		case "":
			if arrive != 0 || depart != 1000 {
				t.Errorf("resident peer %d has window [%v, %v]", p, arrive, depart)
			}
		case "early":
			if arrive > 0.1*1000 || depart > 0.7*1000 {
				t.Errorf("early peer %d window [%v, %v]", p, arrive, depart)
			}
		case "late":
			if arrive < 0.3*1000 || depart != 1000 {
				t.Errorf("late peer %d window [%v, %v]", p, arrive, depart)
			}
		}
		if depart < arrive {
			t.Errorf("peer %d departs before arriving", p)
		}
	}
	if counts["early"] != 25 || counts["late"] != 25 || counts[""] != 50 {
		t.Errorf("cohort counts %v, want early=25 late=25 resident=50", counts)
	}
}

// TestPopularityDrift checks that with Drift set, the most popular object
// early in the run differs from the most popular object late in the run.
func TestPopularityDrift(t *testing.T) {
	spec, _ := Builtin("constant")
	spec.Popularity = Popularity{Zipf: 1.5, Drift: 1}
	sc, err := spec.Compile(1000, 1, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	top := func(at float64) int {
		r := sc.PeerStream(0)
		counts := map[int]int{}
		for i := 0; i < 4000; i++ {
			counts[sc.SampleObject(at, r)]++
		}
		best, bestN := -1, 0
		for o, n := range counts {
			if n > bestN {
				best, bestN = o, n
			}
		}
		return best
	}
	if a, b := top(10), top(990); a == b {
		t.Errorf("popularity did not drift: top object %d at both ends", a)
	}
}

func TestScheduleRate(t *testing.T) {
	spec, _ := Builtin("constant")
	sc, err := spec.Compile(100, 10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Constant shape: rate is flat and integrates to RequestsPerPeer.
	if r0, r1 := sc.Rate(10), sc.Rate(90); math.Abs(r0-r1) > 1e-12 {
		t.Errorf("constant rate varies: %v vs %v", r0, r1)
	}
	if got := sc.Rate(50) * 100; math.Abs(got-spec.RequestsPerPeer) > 1e-6 {
		t.Errorf("rate integrates to %v, want %v", got, spec.RequestsPerPeer)
	}
	if sc.Horizon() != 100 || sc.Peers() != 10 || sc.Objects() != 10 {
		t.Error("accessor mismatch")
	}
}

func TestCompileRejects(t *testing.T) {
	spec, _ := Builtin("constant")
	if _, err := spec.Compile(0, 10, 10, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := spec.Compile(100, 10, 0, 1); err == nil {
		t.Error("zero objects accepted")
	}
	dead := &Spec{RequestsPerPeer: 1, Phases: []Phase{{Shape: ShapeFlash, Peak: 0.0001, Base: 0}}}
	// A near-zero curve still compiles; a truly broken spec fails Validate first.
	if _, err := dead.Compile(100, 10, 10, 1); err != nil {
		t.Errorf("tiny curve rejected: %v", err)
	}
}

func TestSpecJSONParseErrors(t *testing.T) {
	if _, err := ParseSpec([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ParseSpec([]byte(`{"requests_per_peer": 0}`)); err == nil {
		t.Error("invalid spec accepted")
	}
	if !strings.Contains(string((&Spec{Name: "x", RequestsPerPeer: 1, Phases: []Phase{{Shape: ShapeConstant}}}).JSON()), `"constant"`) {
		t.Error("JSON missing phase shape")
	}
}
