package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceVersion is the wire-format version this build reads and writes.
// Bump it only for incompatible changes to Header or Event; readers reject
// any other version outright rather than guessing (see docs/WORKLOADS.md
// for the versioning rules).
const TraceVersion = 1

// The event kinds a trace records, in canonical tie-break order.
const (
	// KindHold declares that a peer holds an object at run start.
	KindHold = "hold"
	// KindArrive marks a session start: the peer is offline before T.
	KindArrive = "arrive"
	// KindRequest is one demand arrival: the peer wants the object at T.
	KindRequest = "request"
	// KindDepart marks a session end: the peer is offline after T.
	KindDepart = "depart"
)

// Header is the first JSON line of a trace: enough about the recorded world
// that a replaying simulator can rebuild a compatible one (population size,
// object geometry, run horizon) without guessing.
type Header struct {
	// Kind is always "header" on the wire, distinguishing the first line.
	Kind string `json:"kind"`
	// Version is the wire-format version (TraceVersion).
	Version int `json:"version"`
	// Scenario labels where the trace came from (e.g. "wave").
	Scenario string `json:"scenario,omitempty"`
	// Nodes is the peer-id space: every event's Peer is in [0, Nodes).
	Nodes int `json:"nodes"`
	// Objects is the recorded catalog size (0 if unknown).
	Objects int `json:"objects,omitempty"`
	// ObjectKbits and BlockKbits carry the recorded transfer geometry so
	// replay reproduces comparable transfer times (0 = keep replay defaults).
	ObjectKbits float64 `json:"object_kbits,omitempty"`
	BlockKbits  float64 `json:"block_kbits,omitempty"`
	// Horizon is the recorded run length in seconds; every event's T is in
	// [0, Horizon].
	Horizon float64 `json:"horizon"`
	// Seed is the recorded run's seed, for provenance only — replay seeds
	// come from the replaying experiment's options.
	Seed uint64 `json:"seed,omitempty"`
}

// Event is one JSON line after the header.
type Event struct {
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// T is the event time in seconds from run start.
	T float64 `json:"t"`
	// Peer is the acting peer id, in [0, Header.Nodes).
	Peer int `json:"peer"`
	// Obj is the object id for hold/request events (unused for sessions).
	Obj int `json:"obj,omitempty"`
}

// kindRank orders kinds within one (T, Peer, Obj) tie: holds before
// arrivals before requests before departures.
func kindRank(kind string) int {
	switch kind {
	case KindHold:
		return 0
	case KindArrive:
		return 1
	case KindRequest:
		return 2
	case KindDepart:
		return 3
	}
	return 4
}

// Trace is a decoded trace: one header plus events in canonical order
// (ascending T, then Peer, then Obj, then kind rank). Readers and the
// Recorder always produce canonical order; Validate rejects anything else,
// so the replay engine never has to sort — or mutate — a shared trace.
type Trace struct {
	Header Header
	Events []Event
}

// less is the canonical event order.
func less(a, b Event) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	return kindRank(a.Kind) < kindRank(b.Kind)
}

// canonicalize sorts events into canonical order.
func (t *Trace) canonicalize() {
	sort.SliceStable(t.Events, func(i, j int) bool { return less(t.Events[i], t.Events[j]) })
}

// PeerCount returns the effective peer-id space: the header's Nodes topped
// up past the largest peer id any event references (whitewashed identities
// recorded mid-run can exceed the initial population).
func (t *Trace) PeerCount() int {
	n := t.Header.Nodes
	for _, ev := range t.Events {
		if ev.Peer+1 > n {
			n = ev.Peer + 1
		}
	}
	return n
}

// Validate reports the first structural error: wrong version, malformed
// events, or events out of canonical order.
func (t *Trace) Validate() error {
	if t.Header.Version != TraceVersion {
		return fmt.Errorf("workload: unsupported trace version %d (this build reads version %d)",
			t.Header.Version, TraceVersion)
	}
	if t.Header.Nodes < 1 {
		return fmt.Errorf("workload: trace header: Nodes = %d, want >= 1", t.Header.Nodes)
	}
	if t.Header.Horizon <= 0 {
		return fmt.Errorf("workload: trace header: Horizon = %v, want > 0", t.Header.Horizon)
	}
	for i, ev := range t.Events {
		if kindRank(ev.Kind) > 3 {
			return fmt.Errorf("workload: trace event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.T < 0 || ev.Peer < 0 || ev.Obj < 0 {
			return fmt.Errorf("workload: trace event %d: negative field", i)
		}
		if (ev.Kind == KindHold || ev.Kind == KindRequest) && ev.Obj == 0 && t.Header.Objects > 0 {
			// Object ids on the wire are 1-based (0 would be dropped by
			// omitempty); a zero object in a hold/request is a broken trace.
			return fmt.Errorf("workload: trace event %d: %s without object", i, ev.Kind)
		}
		if i > 0 && less(ev, t.Events[i-1]) {
			return fmt.Errorf("workload: trace event %d out of canonical order", i)
		}
	}
	return nil
}

// WriteTo encodes the trace as JSON lines: the header line, then one line
// per event. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	writeLine := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		data = append(data, '\n')
		m, err := bw.Write(data)
		n += int64(m)
		return err
	}
	h := t.Header
	h.Kind = "header"
	h.Version = TraceVersion
	if err := writeLine(h); err != nil {
		return n, err
	}
	for _, ev := range t.Events {
		if err := writeLine(ev); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace decodes a JSON-lines trace, canonicalizes the event order, and
// validates it.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		line++
		if line == 1 {
			if err := json.Unmarshal(raw, &t.Header); err != nil {
				return nil, fmt.Errorf("workload: trace line 1: %w", err)
			}
			if t.Header.Kind != "header" {
				return nil, fmt.Errorf("workload: trace line 1: kind %q, want \"header\"", t.Header.Kind)
			}
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		t.Events = append(t.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if line == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	t.canonicalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Recorder accumulates events from a live run. It is safe for concurrent
// use — swarm nodes record from their own goroutines — and defers all
// ordering and header bookkeeping to Trace().
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Hold records that a peer holds an object at run start.
func (r *Recorder) Hold(peer, obj int) { r.add(Event{Kind: KindHold, Peer: peer, Obj: obj}) }

// Request records one demand arrival at t seconds.
func (r *Recorder) Request(t float64, peer, obj int) {
	r.add(Event{Kind: KindRequest, T: t, Peer: peer, Obj: obj})
}

// Arrive records a session start at t seconds.
func (r *Recorder) Arrive(t float64, peer int) { r.add(Event{Kind: KindArrive, T: t, Peer: peer}) }

// Depart records a session end at t seconds.
func (r *Recorder) Depart(t float64, peer int) { r.add(Event{Kind: KindDepart, T: t, Peer: peer}) }

func (r *Recorder) add(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Len returns how many events have been recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Trace assembles the canonical trace under the given header. The header's
// Nodes is topped up past the largest recorded peer id, and negative event
// times (clock skew around the run-start instant) clamp to zero.
func (r *Recorder) Trace(h Header) *Trace {
	r.mu.Lock()
	events := make([]Event, len(r.events))
	copy(events, r.events)
	r.mu.Unlock()
	for i := range events {
		if events[i].T < 0 {
			events[i].T = 0
		}
	}
	t := &Trace{Header: h, Events: events}
	t.Header.Kind = "header"
	t.Header.Version = TraceVersion
	t.Header.Nodes = t.PeerCount()
	t.canonicalize()
	return t
}
