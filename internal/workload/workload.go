// Package workload is the temporal counterpart of internal/strategy: where
// the strategy layer declares *who* peers are, this package declares *when
// and what* they want. One declarative Spec — multi-period demand curves
// (constant, diurnal, flash-crowd wave with decay), a Zipf object-popularity
// model with optional drift, and peer-session cohorts (arrive/depart
// schedules) — is consumed identically by the simulator (sim.Config.Workload)
// and the live swarm (swarm.Config.Workload, the wave scenario).
//
// All times inside a Spec are normalized fractions of the run horizon, so
// the same spec drives a 200,000-virtual-second simulation and a 6-wall-
// second swarm run with the same shape. Absolute demand volume is anchored
// by RequestsPerPeer: the expected number of requests one peer generates
// over the whole horizon, however long the horizon is.
//
// Compile binds a Spec to a concrete run (horizon, population, catalog
// size, seed) and yields a Schedule. Every random draw a Schedule makes
// comes from per-peer streams derived via rng.DeriveSeed(seed, stream,
// peer), never from shared state, so arrival times are a pure function of
// (spec, horizon, peers, objects, seed, peer index) — the property that
// lets the parallel experiment runner replay a workload byte-identically
// at any worker count.
//
// The package also defines the versioned JSON-lines trace format (Trace,
// Recorder, ReadTrace) through which a recorded swarm run replays
// deterministically in the simulator; see docs/WORKLOADS.md for the spec
// and wire format, field by field.
package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"barter/internal/rng"
)

// The demand-curve shapes a Phase can take.
const (
	// ShapeConstant holds demand flat at Level for the phase.
	ShapeConstant = "constant"
	// ShapeDiurnal oscillates demand between Base and Peak over Cycles
	// sinusoidal day-cycles within the phase, starting at the trough.
	ShapeDiurnal = "diurnal"
	// ShapeFlash spikes demand to Peak at the phase start and decays
	// exponentially toward Base with time constant Decay — the paper's
	// flash-crowd arrival pattern.
	ShapeFlash = "flash"
)

// Spec is one declarative temporal workload: demand phases, an object-
// popularity model, and optional session cohorts. The zero value is not
// runnable; build one by hand, parse JSON with ParseSpec, or take a named
// Builtin. All fields use normalized horizon fractions (see the package
// comment); Validate reports the first inconsistency.
type Spec struct {
	// Name labels the spec in reports and traces.
	Name string `json:"name,omitempty"`
	// RequestsPerPeer is the expected number of requests one peer generates
	// over the whole horizon — the absolute demand anchor every other field
	// shapes. Must be positive.
	RequestsPerPeer float64 `json:"requests_per_peer"`
	// Phases is the demand curve, played in order; at least one is required.
	Phases []Phase `json:"phases"`
	// Popularity selects which objects the demand lands on.
	Popularity Popularity `json:"popularity"`
	// Cohorts partitions part of the population into arrive/depart sessions;
	// peers not claimed by any cohort are present for the whole run.
	Cohorts []Cohort `json:"cohorts,omitempty"`
}

// Phase is one segment of the demand curve. Its Duration is a weight: phase
// lengths are normalized so the phases exactly tile the horizon.
type Phase struct {
	// Shape is one of the Shape* constants.
	Shape string `json:"shape"`
	// Duration is the phase's relative length (default 1; phases tile the
	// horizon proportionally to their durations).
	Duration float64 `json:"duration,omitempty"`
	// Level is the constant shape's demand multiplier (default 1).
	Level float64 `json:"level,omitempty"`
	// Peak and Base bound the diurnal oscillation and the flash spike
	// (defaults: diurnal 1/0.25, flash 8/0.5).
	Peak float64 `json:"peak,omitempty"`
	Base float64 `json:"base,omitempty"`
	// Cycles is how many full diurnal cycles the phase spans (default 1).
	Cycles float64 `json:"cycles,omitempty"`
	// Decay is the flash shape's exponential time constant as a fraction of
	// the phase length (default 0.2).
	Decay float64 `json:"decay,omitempty"`
}

// Popularity is the object-selection model: a Zipf-like power law over the
// catalog, optionally drifting so today's hot objects are not tomorrow's.
type Popularity struct {
	// Zipf is the power-law exponent f (0 = uniform, 1 = zipf-like), the
	// same model as the paper's catalog popularity.
	Zipf float64 `json:"zipf"`
	// Drift is how many full rotations of the rank-to-object mapping occur
	// over the horizon (0 = static popularity).
	Drift float64 `json:"drift,omitempty"`
}

// Cohort is a population slice with a session window: its peers arrive at
// Arrive and depart at Depart (both horizon fractions), individually
// jittered by up to ±Jitter.
type Cohort struct {
	// Name labels the cohort in docs and logs.
	Name string `json:"name,omitempty"`
	// Frac is the fraction of the population in this cohort; cohort
	// fractions must sum to at most 1.
	Frac float64 `json:"frac"`
	// Arrive and Depart bound the session as horizon fractions; Depart 0
	// means "stays to the end".
	Arrive float64 `json:"arrive"`
	Depart float64 `json:"depart,omitempty"`
	// Jitter spreads each peer's arrive and depart independently by a
	// uniform draw in ±Jitter (horizon fraction), so a cohort does not slam
	// the system in lockstep.
	Jitter float64 `json:"jitter,omitempty"`
}

// depart returns the cohort's effective departure fraction (0 = horizon).
func (c Cohort) depart() float64 {
	if c.Depart <= 0 {
		return 1
	}
	return c.Depart
}

// Validate reports the first specification error, if any.
func (s *Spec) Validate() error {
	if s.RequestsPerPeer <= 0 {
		return fmt.Errorf("workload: RequestsPerPeer = %v, want > 0", s.RequestsPerPeer)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: at least one phase is required")
	}
	for i, p := range s.Phases {
		switch p.Shape {
		case ShapeConstant, ShapeDiurnal, ShapeFlash:
		default:
			return fmt.Errorf("workload: phase %d: unknown shape %q", i, p.Shape)
		}
		if p.Duration < 0 {
			return fmt.Errorf("workload: phase %d: negative duration", i)
		}
		if p.Level < 0 || p.Peak < 0 || p.Base < 0 {
			return fmt.Errorf("workload: phase %d: negative demand level", i)
		}
		if p.Peak != 0 && p.Base > p.Peak {
			return fmt.Errorf("workload: phase %d: Base %v above Peak %v", i, p.Base, p.Peak)
		}
		if p.Cycles < 0 || p.Decay < 0 {
			return fmt.Errorf("workload: phase %d: negative Cycles or Decay", i)
		}
	}
	if s.Popularity.Zipf < 0 {
		return fmt.Errorf("workload: negative Zipf exponent")
	}
	if s.Popularity.Drift < 0 {
		return fmt.Errorf("workload: negative popularity Drift")
	}
	total := 0.0
	for i, c := range s.Cohorts {
		if c.Frac <= 0 || c.Frac > 1 {
			return fmt.Errorf("workload: cohort %d: Frac = %v, want (0, 1]", i, c.Frac)
		}
		if c.Arrive < 0 || c.Arrive >= 1 {
			return fmt.Errorf("workload: cohort %d: Arrive = %v, want [0, 1)", i, c.Arrive)
		}
		if d := c.depart(); d <= c.Arrive || d > 1 {
			return fmt.Errorf("workload: cohort %d: Depart = %v, want (Arrive, 1]", i, c.Depart)
		}
		if c.Jitter < 0 || c.Jitter > 0.5 {
			return fmt.Errorf("workload: cohort %d: Jitter = %v, want [0, 0.5]", i, c.Jitter)
		}
		total += c.Frac
	}
	if total > 1+1e-9 {
		return fmt.Errorf("workload: cohort fractions sum to %v, want <= 1", total)
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSON encodes the spec as indented JSON (the format ParseSpec reads).
func (s *Spec) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("workload: encode spec: %v", err)) // no unmarshalable fields exist
	}
	return append(out, '\n')
}

// BuiltinNames lists the named built-in specs in presentation order.
func BuiltinNames() []string { return []string{"constant", "diurnal", "flash", "waves"} }

// Builtin returns a fresh copy of the named built-in spec, or false if the
// name is unknown. The builtins are the canonical demand shapes the figt
// experiment sweeps; callers may mutate their copy freely.
func Builtin(name string) (*Spec, bool) {
	switch name {
	case "constant":
		return &Spec{
			Name:            "constant",
			RequestsPerPeer: 40,
			Phases:          []Phase{{Shape: ShapeConstant}},
			Popularity:      Popularity{Zipf: 0.8},
		}, true
	case "diurnal":
		return &Spec{
			Name:            "diurnal",
			RequestsPerPeer: 40,
			Phases:          []Phase{{Shape: ShapeDiurnal, Cycles: 3}},
			Popularity:      Popularity{Zipf: 0.8, Drift: 0.5},
		}, true
	case "flash":
		return &Spec{
			Name:            "flash",
			RequestsPerPeer: 40,
			Phases: []Phase{
				{Shape: ShapeConstant, Duration: 1, Level: 0.4},
				{Shape: ShapeFlash, Duration: 3},
			},
			Popularity: Popularity{Zipf: 1.2},
		}, true
	case "waves":
		return &Spec{
			Name:            "waves",
			RequestsPerPeer: 40,
			Phases: []Phase{
				{Shape: ShapeFlash, Duration: 1},
				{Shape: ShapeDiurnal, Duration: 2, Cycles: 2},
			},
			Popularity: Popularity{Zipf: 1, Drift: 1},
			Cohorts: []Cohort{
				{Name: "early", Frac: 0.25, Arrive: 0, Depart: 0.6, Jitter: 0.05},
				{Name: "late", Frac: 0.25, Arrive: 0.4, Jitter: 0.05},
			},
		}, true
	}
	return nil, false
}

// Load resolves a workload argument the way the CLIs document it: a path to
// a JSON spec file if one exists there, otherwise a built-in name.
func Load(nameOrPath string) (*Spec, error) {
	if data, err := os.ReadFile(nameOrPath); err == nil {
		return ParseSpec(data)
	}
	if s, ok := Builtin(nameOrPath); ok {
		return s, nil
	}
	return nil, fmt.Errorf("workload: %q is neither a readable spec file nor a builtin (%v)",
		nameOrPath, BuiltinNames())
}

// Stream labels for rng.DeriveSeed, so the workload's draws never collide
// with the engine's own Split(1)/Split(2) catalog and engine streams.
const (
	streamArrivals uint64 = 0x776c6f6164 // "wload"
	streamSessions uint64 = 0x77736573   // "wses"
)

// Schedule is a Spec bound to one concrete run: a horizon in seconds, a
// population, a catalog size, and a seed. It is immutable after Compile and
// safe for concurrent readers, provided each consumer draws from its own
// per-peer stream (PeerStream).
type Schedule struct {
	spec    Spec
	horizon float64
	peers   int
	objects int
	seed    uint64

	phaseStart []float64 // normalized start of each phase
	phaseLen   []float64 // normalized length of each phase
	meanMult   float64   // mean demand multiplier over [0, 1]
	maxMult    float64   // peak demand multiplier (thinning majorant)
	scale      float64   // arrivals/sec/peer at multiplier 1

	pop      *rng.PowerLaw
	cohortOf []int        // per peer: cohort index, or -1 for resident
	sessions [][2]float64 // per peer: arrive/depart in seconds
}

// Compile binds the spec to a run. Horizon is the run length in seconds
// (virtual for the simulator, wall for the swarm); peers is how many peers
// generate demand; objects is the catalog size the popularity model ranges
// over; seed keys every stream derivation.
func (s *Spec) Compile(horizon float64, peers, objects int, seed uint64) (*Schedule, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon = %v, want > 0", horizon)
	}
	if peers < 0 || objects <= 0 {
		return nil, fmt.Errorf("workload: peers = %d objects = %d, want peers >= 0 and objects > 0", peers, objects)
	}
	sc := &Schedule{
		spec:    *s,
		horizon: horizon,
		peers:   peers,
		objects: objects,
		seed:    seed,
		pop:     rng.NewPowerLaw(objects, s.Popularity.Zipf),
	}
	total := 0.0
	for _, p := range s.Phases {
		total += p.duration()
	}
	at := 0.0
	for _, p := range s.Phases {
		l := p.duration() / total
		sc.phaseStart = append(sc.phaseStart, at)
		sc.phaseLen = append(sc.phaseLen, l)
		at += l
		if m := p.peakMult(); m > sc.maxMult {
			sc.maxMult = m
		}
	}
	// The mean multiplier normalizes RequestsPerPeer: a deterministic
	// midpoint integral is exact enough for any of the supported shapes.
	const samples = 4096
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += sc.Mult((float64(i) + 0.5) / samples)
	}
	sc.meanMult = sum / samples
	if sc.meanMult <= 0 {
		return nil, fmt.Errorf("workload: demand curve is zero everywhere")
	}
	sc.scale = s.RequestsPerPeer / (horizon * sc.meanMult)
	sc.assignCohorts()
	return sc, nil
}

// duration returns the phase weight with the documented default.
func (p Phase) duration() float64 {
	if p.Duration > 0 {
		return p.Duration
	}
	return 1
}

// shapeParams returns the phase's effective level parameters with defaults
// applied.
func (p Phase) shapeParams() (level, peak, base, cycles, decay float64) {
	level, peak, base, cycles, decay = p.Level, p.Peak, p.Base, p.Cycles, p.Decay
	if level == 0 {
		level = 1
	}
	if cycles == 0 {
		cycles = 1
	}
	if decay == 0 {
		decay = 0.2
	}
	if peak == 0 {
		switch p.Shape {
		case ShapeDiurnal:
			peak, base = 1, 0.25
		case ShapeFlash:
			peak, base = 8, 0.5
		}
		if p.Base != 0 {
			base = p.Base
		}
	}
	return level, peak, base, cycles, decay
}

// peakMult is the phase's maximum demand multiplier (the thinning majorant).
func (p Phase) peakMult() float64 {
	level, peak, _, _, _ := p.shapeParams()
	if p.Shape == ShapeConstant {
		return level
	}
	return peak
}

// mult evaluates the phase's demand multiplier at local position u in [0, 1).
func (p Phase) mult(u float64) float64 {
	level, peak, base, cycles, decay := p.shapeParams()
	switch p.Shape {
	case ShapeDiurnal:
		return base + (peak-base)*0.5*(1-math.Cos(2*math.Pi*u*cycles))
	case ShapeFlash:
		return base + (peak-base)*math.Exp(-u/decay)
	default:
		return level
	}
}

// Mult evaluates the spec's demand multiplier at normalized time x in
// [0, 1); out-of-range times clamp to the curve's endpoints.
func (sc *Schedule) Mult(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x >= 1 {
		x = math.Nextafter(1, 0)
	}
	for i := len(sc.phaseStart) - 1; i >= 0; i-- {
		if x >= sc.phaseStart[i] {
			return sc.spec.Phases[i].mult((x - sc.phaseStart[i]) / sc.phaseLen[i])
		}
	}
	return sc.spec.Phases[0].mult(0)
}

// Rate is the per-peer arrival rate (requests/second) at absolute time t.
func (sc *Schedule) Rate(t float64) float64 { return sc.scale * sc.Mult(t/sc.horizon) }

// Horizon returns the schedule's run length in seconds.
func (sc *Schedule) Horizon() float64 { return sc.horizon }

// Peers returns the demand-generating population size.
func (sc *Schedule) Peers() int { return sc.peers }

// Objects returns the catalog size the popularity model ranges over.
func (sc *Schedule) Objects() int { return sc.objects }

// PeerStream derives peer i's private random stream. All of a peer's
// arrival and object draws must come from this one stream, in call order;
// distinct peers' streams are independent, which is what keeps the schedule
// deterministic under any interleaving of peers.
func (sc *Schedule) PeerStream(i int) *rng.RNG {
	return rng.New(rng.DeriveSeed(sc.seed, streamArrivals, uint64(i)))
}

// NextArrival returns the peer's next request time strictly after t, drawn
// from r by thinning a homogeneous Poisson process at the curve's peak
// rate. A return at or beyond Horizon means the peer generates no further
// requests this run.
func (sc *Schedule) NextArrival(t float64, r *rng.RNG) float64 {
	lambdaMax := sc.scale * sc.maxMult
	for {
		t += r.Exp(1 / lambdaMax)
		if t >= sc.horizon {
			return sc.horizon
		}
		if r.Float64()*sc.maxMult <= sc.Mult(t/sc.horizon) {
			return t
		}
	}
}

// SampleObject draws the object index ([0, Objects)) of a request issued at
// absolute time t, combining the Zipf rank draw with the drifted
// rank-to-object rotation.
func (sc *Schedule) SampleObject(t float64, r *rng.RNG) int {
	rank := sc.pop.Rank(r) - 1
	if d := sc.spec.Popularity.Drift; d > 0 {
		offset := int(d * (t / sc.horizon) * float64(sc.objects))
		rank = (rank + offset) % sc.objects
	}
	return rank
}

// assignCohorts partitions the population over the cohorts by cumulative
// rounding (the same scheme strategy.Mix.Counts uses, so fractions
// reproduce exactly at any population size) and draws each member's
// jittered session window from its private session stream.
func (sc *Schedule) assignCohorts() {
	sc.cohortOf = make([]int, sc.peers)
	sc.sessions = make([][2]float64, sc.peers)
	for i := range sc.cohortOf {
		sc.cohortOf[i] = -1
		sc.sessions[i] = [2]float64{0, sc.horizon}
	}
	cum, prev := 0.0, 0
	for k, c := range sc.spec.Cohorts {
		cum += c.Frac
		end := int(math.Round(cum * float64(sc.peers)))
		for i := prev; i < end && i < sc.peers; i++ {
			sc.cohortOf[i] = k
			r := rng.New(rng.DeriveSeed(sc.seed, streamSessions, uint64(i)))
			arrive := c.Arrive
			depart := c.depart()
			if c.Jitter > 0 {
				arrive += (2*r.Float64() - 1) * c.Jitter
				if c.Depart > 0 { // "stays to the end" does not jitter its end
					depart += (2*r.Float64() - 1) * c.Jitter
				}
			}
			arrive = math.Max(0, math.Min(arrive, 1))
			depart = math.Max(arrive, math.Min(depart, 1))
			sc.sessions[i] = [2]float64{arrive * sc.horizon, depart * sc.horizon}
		}
		prev = end
	}
}

// Session returns peer i's presence window in absolute seconds. Peers not
// claimed by a cohort are present for the whole run: (0, Horizon).
func (sc *Schedule) Session(i int) (arrive, depart float64) {
	w := sc.sessions[i]
	return w[0], w[1]
}

// CohortName returns the cohort label of peer i, or "" for resident peers.
func (sc *Schedule) CohortName(i int) string {
	k := sc.cohortOf[i]
	if k < 0 {
		return ""
	}
	if n := sc.spec.Cohorts[k].Name; n != "" {
		return n
	}
	return fmt.Sprintf("cohort-%d", k)
}
