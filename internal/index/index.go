// Package index provides the simulator's incremental lookup indexes: dense
// integer-id sets with O(1) add/remove and deterministic ascending-order
// iteration, plus a multimap of such sets keyed by an arbitrary comparable
// key.
//
// The engine previously kept its object -> holders and object -> wanters
// indexes as sorted slices, paying an O(n) memmove on every insertion and
// removal. Peer ids are small dense integers, so a bitset gives the same
// deterministic ascending iteration order — which the determinism contract
// depends on, because candidate order feeds the engine's RNG draws — with
// constant-time updates and no per-update allocation.
package index

import "math/bits"

// ID is any integer type used as a dense, non-negative identifier.
type ID interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64
}

// Set is a bitset of dense non-negative ids. The zero value is an empty set
// ready for use. Iteration order is always ascending id order.
type Set[T ID] struct {
	words []uint64
	n     int
}

// Len returns the number of ids in the set.
func (s *Set[T]) Len() int { return s.n }

// Add inserts id and reports whether it was absent.
func (s *Set[T]) Add(id T) bool {
	w, b := int(id)>>6, uint(id)&63
	if w >= len(s.words) {
		s.grow(w + 1)
	}
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.n++
	return true
}

// Remove deletes id and reports whether it was present.
func (s *Set[T]) Remove(id T) bool {
	w, b := int(id)>>6, uint(id)&63
	if w >= len(s.words) || s.words[w]&(1<<b) == 0 {
		return false
	}
	s.words[w] &^= 1 << b
	s.n--
	return true
}

// Contains reports whether id is in the set.
func (s *Set[T]) Contains(id T) bool {
	w, b := int(id)>>6, uint(id)&63
	return w < len(s.words) && s.words[w]&(1<<b) != 0
}

// Clear empties the set, retaining capacity.
func (s *Set[T]) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.n = 0
}

// ForEach calls fn for every id in ascending order until fn returns false.
func (s *Set[T]) ForEach(fn func(id T) bool) {
	for w, word := range s.words {
		base := T(w << 6)
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !fn(base + T(b)) {
				return
			}
			word &= word - 1
		}
	}
}

// AppendTo appends the set's ids to dst in ascending order and returns the
// extended slice. Callers reuse dst as a scratch buffer to keep iteration
// allocation-free.
func (s *Set[T]) AppendTo(dst []T) []T {
	for w, word := range s.words {
		base := T(w << 6)
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, base+T(b))
			word &= word - 1
		}
	}
	return dst
}

func (s *Set[T]) grow(words int) {
	if cap(s.words) >= words {
		s.words = s.words[:words]
		return
	}
	nw := make([]uint64, words, 2*words)
	copy(nw, s.words)
	s.words = nw
}

// Multimap maps a comparable key to a Set of ids. Sets that empty out are
// returned to an internal free list so a workload that cycles keys (objects
// gaining and losing their last holder) stays allocation-free at steady
// state. The zero value is not usable; call NewMultimap.
type Multimap[K comparable, V ID] struct {
	m    map[K]*Set[V]
	free []*Set[V]
}

// NewMultimap returns an empty multimap.
func NewMultimap[K comparable, V ID]() *Multimap[K, V] {
	return &Multimap[K, V]{m: make(map[K]*Set[V])}
}

// Add inserts id under key and reports whether it was absent.
func (m *Multimap[K, V]) Add(key K, id V) bool {
	s := m.m[key]
	if s == nil {
		if n := len(m.free); n > 0 {
			s = m.free[n-1]
			m.free[n-1] = nil
			m.free = m.free[:n-1]
		} else {
			s = &Set[V]{}
		}
		m.m[key] = s
	}
	return s.Add(id)
}

// Remove deletes id under key and reports whether it was present. A set that
// empties out is detached from the key and recycled.
func (m *Multimap[K, V]) Remove(key K, id V) bool {
	s := m.m[key]
	if s == nil || !s.Remove(id) {
		return false
	}
	if s.n == 0 {
		delete(m.m, key)
		m.free = append(m.free, s)
	}
	return true
}

// Get returns the set under key, or nil when the key has no ids. The returned
// set must not be retained across Remove calls that could empty it: emptied
// sets are recycled for other keys.
func (m *Multimap[K, V]) Get(key K) *Set[V] { return m.m[key] }

// Contains reports whether id is present under key.
func (m *Multimap[K, V]) Contains(key K, id V) bool {
	s := m.m[key]
	return s != nil && s.Contains(id)
}

// Len returns the number of ids under key.
func (m *Multimap[K, V]) Len(key K) int {
	s := m.m[key]
	if s == nil {
		return 0
	}
	return s.Len()
}

// Keys returns the number of keys that currently hold at least one id.
func (m *Multimap[K, V]) Keys() int { return len(m.m) }

// Directory is a dense object -> exporter table: for every object a shard
// domain exports, the single peer it advertises as that object's
// cross-domain source (by convention the lowest-id online sharing holder, so
// the advertisement is a pure function of domain state). Each domain
// publishes one Directory at every epoch barrier; other domains read it —
// never write it — during the following epoch, which is what makes the
// snapshot safe to share across the worker pool without locks.
//
// The zero value is not usable; call NewDirectory.
type Directory[T ID] struct {
	exporter []int64 // widened so any T fits; -1 marks "no exporter"
}

// NewDirectory returns a directory over objects [0, objects) with every
// entry empty.
func NewDirectory[T ID](objects int) *Directory[T] {
	d := &Directory[T]{exporter: make([]int64, objects)}
	d.Clear()
	return d
}

// Clear empties every entry, retaining capacity.
func (d *Directory[T]) Clear() {
	for i := range d.exporter {
		d.exporter[i] = -1
	}
}

// Set advertises id as the exporter of obj.
func (d *Directory[T]) Set(obj int, id T) { d.exporter[obj] = int64(id) }

// Get returns the exporter of obj and whether one is advertised.
func (d *Directory[T]) Get(obj int) (T, bool) {
	e := d.exporter[obj]
	if e < 0 {
		return 0, false
	}
	return T(e), true
}

// MergeCandidates appends to dst the exporters advertised for obj across
// dirs, in ascending id order, and returns the extended slice. Nil
// directories are skipped. Ascending global peer-id order is the
// cross-domain extension of Set's iteration contract: candidate order feeds
// the engine's RNG draws, so it must be a pure function of state, not of
// domain numbering or map iteration.
func MergeCandidates[T ID](dst []T, obj int, dirs []*Directory[T]) []T {
	start := len(dst)
	for _, d := range dirs {
		if d == nil {
			continue
		}
		if id, ok := d.Get(obj); ok {
			// Insertion sort into the tail: one candidate per directory, so
			// the tail is at most len(dirs) long and almost always tiny.
			i := len(dst)
			dst = append(dst, id)
			for i > start && dst[i-1] > id {
				dst[i] = dst[i-1]
				i--
			}
			dst[i] = id
		}
	}
	return dst
}

// ForEachKey calls fn for every key with at least one id, in unspecified
// order. Callers needing determinism must sort or otherwise canonicalize.
func (m *Multimap[K, V]) ForEachKey(fn func(key K, s *Set[V]) bool) {
	//barter:allow maprange unspecified order is this iterator's documented contract; deterministic callers must canonicalize (only the sim invariant sweeps use it)
	for k, s := range m.m {
		if !fn(k, s) {
			return
		}
	}
}
