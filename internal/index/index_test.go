package index

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSetBasics(t *testing.T) {
	var s Set[int32]
	if s.Len() != 0 || s.Contains(0) {
		t.Fatal("zero set not empty")
	}
	if !s.Add(5) || s.Add(5) {
		t.Fatal("Add reported wrong presence")
	}
	if !s.Contains(5) || s.Contains(4) {
		t.Fatal("Contains wrong after Add")
	}
	if !s.Remove(5) || s.Remove(5) {
		t.Fatal("Remove reported wrong presence")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after removing everything", s.Len())
	}
	if s.Remove(1 << 20) {
		t.Fatal("Remove of never-grown id reported present")
	}
}

func TestSetAscendingIteration(t *testing.T) {
	var s Set[int32]
	ids := []int32{700, 0, 63, 64, 65, 128, 1, 699}
	for _, id := range ids {
		s.Add(id)
	}
	want := append([]int32(nil), ids...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	var got []int32
	s.ForEach(func(id int32) bool { got = append(got, id); return true })
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	got2 := s.AppendTo(nil)
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("AppendTo order %v, want %v", got2, want)
		}
	}
}

func TestSetForEachEarlyStop(t *testing.T) {
	var s Set[int]
	for i := 0; i < 10; i++ {
		s.Add(i * 7)
	}
	var got []int
	s.ForEach(func(id int) bool {
		got = append(got, id)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 0 || got[1] != 7 || got[2] != 14 {
		t.Fatalf("early stop yielded %v", got)
	}
}

// TestSetAgainstReference drives random add/remove traffic and cross-checks
// membership, size, and iteration order against a plain map reference.
func TestSetAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var s Set[int32]
	ref := make(map[int32]bool)
	for op := 0; op < 100000; op++ {
		id := int32(r.Intn(2000))
		if r.Intn(2) == 0 {
			if s.Add(id) == ref[id] {
				t.Fatalf("op %d: Add(%d) presence mismatch", op, id)
			}
			ref[id] = true
		} else {
			if s.Remove(id) != ref[id] {
				t.Fatalf("op %d: Remove(%d) presence mismatch", op, id)
			}
			delete(ref, id)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, reference has %d", s.Len(), len(ref))
	}
	want := make([]int32, 0, len(ref))
	for id := range ref {
		want = append(want, id)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := s.AppendTo(make([]int32, 0, len(ref)))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration diverges from sorted reference at %d", i)
		}
	}
}

func TestSetClear(t *testing.T) {
	var s Set[int]
	for i := 0; i < 500; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Clear", s.Len())
	}
	s.ForEach(func(int) bool { t.Fatal("ForEach yielded id after Clear"); return false })
}

func TestMultimapBasics(t *testing.T) {
	m := NewMultimap[uint32, int32]()
	if m.Len(7) != 0 || m.Get(7) != nil || m.Contains(7, 1) {
		t.Fatal("empty multimap reports contents")
	}
	if !m.Add(7, 3) || m.Add(7, 3) {
		t.Fatal("Add presence wrong")
	}
	m.Add(7, 1)
	m.Add(9, 3)
	if m.Keys() != 2 || m.Len(7) != 2 || m.Len(9) != 1 {
		t.Fatalf("Keys/Len wrong: keys=%d len7=%d len9=%d", m.Keys(), m.Len(7), m.Len(9))
	}
	got := m.Get(7).AppendTo(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Get(7) order = %v, want [1 3]", got)
	}
	if !m.Remove(7, 1) || m.Remove(7, 1) {
		t.Fatal("Remove presence wrong")
	}
	if m.Remove(8, 1) {
		t.Fatal("Remove on absent key reported present")
	}
}

// TestMultimapRecyclesEmptySets pins the free-list behavior: a key whose set
// empties out releases the set for reuse, and the key disappears.
func TestMultimapRecyclesEmptySets(t *testing.T) {
	m := NewMultimap[int, int32]()
	m.Add(1, 42)
	s := m.Get(1)
	m.Remove(1, 42)
	if m.Get(1) != nil || m.Keys() != 0 {
		t.Fatal("emptied key still present")
	}
	m.Add(2, 7)
	if m.Get(2) != s {
		t.Fatal("emptied set was not recycled for the next key")
	}
	if got := m.Get(2).AppendTo(nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("recycled set contents = %v, want [7]", got)
	}
}

// TestMultimapAgainstReference drives random traffic over many keys against
// a map-of-maps reference.
func TestMultimapAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := NewMultimap[int, int32]()
	ref := make(map[int]map[int32]bool)
	for op := 0; op < 100000; op++ {
		k := r.Intn(50)
		id := int32(r.Intn(300))
		if r.Intn(2) == 0 {
			if ref[k] == nil {
				ref[k] = make(map[int32]bool)
			}
			if m.Add(k, id) == ref[k][id] {
				t.Fatalf("op %d: Add(%d,%d) mismatch", op, k, id)
			}
			ref[k][id] = true
		} else {
			if m.Remove(k, id) != ref[k][id] {
				t.Fatalf("op %d: Remove(%d,%d) mismatch", op, k, id)
			}
			delete(ref[k], id)
			if len(ref[k]) == 0 {
				delete(ref, k)
			}
		}
	}
	if m.Keys() != len(ref) {
		t.Fatalf("Keys = %d, reference has %d", m.Keys(), len(ref))
	}
	for k, ids := range ref {
		want := make([]int32, 0, len(ids))
		for id := range ids {
			want = append(want, id)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := m.Get(k).AppendTo(nil)
		if len(got) != len(want) {
			t.Fatalf("key %d: %d ids, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %d: iteration diverges from sorted reference", k)
			}
		}
	}
}

func BenchmarkSetAddRemove(b *testing.B) {
	var s Set[int32]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := int32(i % 4096)
		s.Add(id)
		s.Remove(id)
	}
}

func BenchmarkSetAppendTo(b *testing.B) {
	var s Set[int32]
	for i := 0; i < 4096; i += 3 {
		s.Add(int32(i))
	}
	buf := make([]int32, 0, s.Len())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.AppendTo(buf[:0])
	}
	_ = buf
}

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory[int32](4)
	if _, ok := d.Get(2); ok {
		t.Fatal("fresh directory has an exporter")
	}
	d.Set(2, 9)
	if id, ok := d.Get(2); !ok || id != 9 {
		t.Fatalf("Get(2) = %v, %v; want 9, true", id, ok)
	}
	d.Set(2, 4) // republish overwrites
	if id, _ := d.Get(2); id != 4 {
		t.Fatalf("Get(2) after overwrite = %v; want 4", id)
	}
	d.Clear()
	if _, ok := d.Get(2); ok {
		t.Fatal("Clear left an exporter")
	}
}

func TestMergeCandidatesAscending(t *testing.T) {
	mk := func(obj int, id int32) *Directory[int32] {
		d := NewDirectory[int32](4)
		d.Set(obj, id)
		return d
	}
	dirs := []*Directory[int32]{mk(1, 7), nil, mk(1, 2), mk(3, 5), mk(1, 4)}
	got := MergeCandidates(nil, 1, dirs)
	want := []int32{2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("MergeCandidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MergeCandidates = %v, want %v (ascending peer id)", got, want)
		}
	}
	// Appending to a non-empty dst must leave the prefix untouched and sort
	// only the appended region.
	pre := MergeCandidates([]int32{99}, 1, dirs)
	if pre[0] != 99 || pre[1] != 2 || pre[3] != 7 {
		t.Fatalf("MergeCandidates with prefix = %v", pre)
	}
	if out := MergeCandidates(nil, 2, dirs); len(out) != 0 {
		t.Fatalf("object with no exporters yielded %v", out)
	}
}
