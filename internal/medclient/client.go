// Package medclient is the node-side client layer of the mediator tier.
// Peers used to dial a single mediator and speak the escrow protocol
// inline; this package replaces that with a proper client: it bootstraps
// from any shard address, fetches and caches the tier's shard map, pools
// one connection per shard, routes every escrow and audit to the owning
// shard by the same consistent hashing the shards use (redirects correct a
// stale map), retries with exponential backoff, and fails over to the
// replica shard when a mediator dies mid-verify. Deposits are written
// through to the replica as well, so a verify that fails over after the
// primary crashes still finds the escrowed key.
//
// RPCs are pipelined: every request travels in a protocol.Envelope carrying
// a client-unique ReqID, each pooled connection runs a demultiplexing read
// loop that routes enveloped replies back to their in-flight caller, and so
// deposits, verifies, and map refetches from many goroutines share one
// connection concurrently instead of queueing on a per-connection lock. A
// connection failure fails exactly the RPCs in flight on it — each one's
// own retry loop re-issues it through failover, so one caller's crash
// recovery never replays another caller's request.
package medclient

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/mediator"
	"barter/internal/perfstats"
	"barter/internal/protocol"
	"barter/internal/transport"
)

// Errors surfaced to callers. ErrRejected and ErrNoKey are verdicts — the
// owning shard answered — and are never retried; ErrUnavailable means every
// attempt failed to get a verdict at all.
var (
	// ErrClosed is returned once Close has been called.
	ErrClosed = errors.New("medclient: closed")
	// ErrRejected is the mediator's audit verdict: the samples prove the
	// claimed sender cheated.
	ErrRejected = mediator.ErrRejected
	// ErrNoKey means the owning shard holds no escrowed key for the claimed
	// sender — transient: the deposit has not arrived yet, or the shard
	// restarted and lost its escrow. Not evidence of cheating.
	ErrNoKey = errors.New("medclient: no escrowed key for exchange")
	// ErrBadRequest means the mediator refused to judge the audit — the
	// request was malformed or exceeded its limits. The requester's own
	// fault; never a verdict against the sender.
	ErrBadRequest = errors.New("medclient: mediator refused the audit request")
	// ErrUnavailable means the whole tier was unreachable through every
	// retry and failover attempt.
	ErrUnavailable = errors.New("medclient: mediator tier unavailable")
)

// Config parameterizes a client. Transport and at least one seed address
// are required.
type Config struct {
	// Transport carries the protocol; required.
	Transport transport.Transport
	// Seeds are bootstrap mediator addresses — any live subset of the
	// tier. The real topology is fetched from whichever seed answers.
	Seeds []string
	// Attempts bounds how many times one operation is tried before
	// ErrUnavailable; attempts alternate between the owning shard and its
	// replica (default 5).
	Attempts int
	// Backoff is the delay before the second attempt, doubling per attempt
	// (default 8ms).
	Backoff time.Duration
	// Logf, when set, receives debug lines.
	Logf func(format string, args ...any)
}

// Client is a shard-aware mediator client, safe for concurrent use.
// Operations to distinct shards proceed in parallel, and operations on one
// shard's connection are pipelined: each request carries a unique envelope
// ReqID and the connection's read loop hands every reply to the caller that
// sent it.
type Client struct {
	cfg Config

	mu       sync.Mutex
	epoch    uint64
	shards   []string // addr by shard index; nil until the first map fetch
	mapStale bool
	conns    map[string]*shardConn
	closed   bool

	nextReq atomic.Uint64 // envelope ReqID source, unique across connections
	wg      sync.WaitGroup
	stop    chan struct{}
}

// shardConn is one pooled connection plus its demultiplexing state: the
// in-flight table maps each outstanding envelope ReqID to the channel its
// caller waits on. A read loop owns the receive side; once it exits, err
// holds the terminal transport error and every later register fails fast
// with it.
type shardConn struct {
	conn transport.Conn

	mu       sync.Mutex
	inflight map[uint64]chan rpcResult
	err      error
}

// rpcResult is one reply (or the connection's terminal error) delivered to
// a waiting caller; each in-flight RPC receives exactly one.
type rpcResult struct {
	msg protocol.Message
	err error
}

// register enters an in-flight RPC in the demux table, refusing if the
// connection already died so the caller retries elsewhere immediately.
func (sc *shardConn) register(id uint64, ch chan rpcResult) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.err != nil {
		return sc.err
	}
	sc.inflight[id] = ch
	return nil
}

// unregister abandons an in-flight RPC (send failure or client shutdown).
func (sc *shardConn) unregister(id uint64) {
	sc.mu.Lock()
	delete(sc.inflight, id)
	sc.mu.Unlock()
}

// readLoop demultiplexes replies until the connection dies, then fails every
// RPC still in flight with the transport error. Each entry leaves the table
// exactly once — either claimed by its reply here or drained by fail — so
// no RPC is ever answered twice and none is left waiting forever.
func (sc *shardConn) readLoop() {
	for {
		msg, err := sc.conn.Recv()
		if err != nil {
			sc.fail(err)
			return
		}
		env, ok := msg.(*protocol.Envelope)
		if !ok {
			// This client only issues enveloped RPCs; stray unenveloped
			// traffic has no caller to route to.
			continue
		}
		sc.mu.Lock()
		ch, ok := sc.inflight[env.ReqID]
		delete(sc.inflight, env.ReqID)
		sc.mu.Unlock()
		if ok {
			ch <- rpcResult{msg: env.Msg}
		}
	}
}

// fail marks the connection dead and delivers err to every in-flight RPC.
func (sc *shardConn) fail(err error) {
	sc.mu.Lock()
	sc.err = err
	pending := make([]chan rpcResult, 0, len(sc.inflight))
	for id, ch := range sc.inflight {
		delete(sc.inflight, id)
		pending = append(pending, ch)
	}
	sc.mu.Unlock()
	for _, ch := range pending {
		ch <- rpcResult{err: err}
	}
}

// New builds a client. No connection is made until the first operation.
func New(cfg Config) (*Client, error) {
	if cfg.Transport == nil {
		return nil, errors.New("medclient: Transport is required")
	}
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("medclient: at least one seed address is required")
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 8 * time.Millisecond
	}
	return &Client{
		cfg:   cfg,
		conns: make(map[string]*shardConn),
		stop:  make(chan struct{}),
	}, nil
}

// Close releases every pooled connection and aborts in-flight retries.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	open := make([]*shardConn, 0, len(c.conns))
	for _, sc := range c.conns {
		open = append(open, sc)
	}
	c.conns = make(map[string]*shardConn)
	c.mu.Unlock()
	close(c.stop)
	for _, sc := range open {
		_ = sc.conn.Close()
	}
	// Wait for every read loop so Close leaves no goroutine behind.
	c.wg.Wait()
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf("medclient: "+format, args...)
	}
}

// sleep waits d unless the client closes first.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.stop:
		return false
	}
}

// getConn returns the pooled connection for addr, dialing on first use.
func (c *Client) getConn(addr string) (*shardConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if sc, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return sc, nil
	}
	c.mu.Unlock()
	conn, err := c.cfg.Transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		_ = conn.Close()
		return nil, ErrClosed
	}
	if sc, ok := c.conns[addr]; ok {
		// A concurrent caller won the dial race; keep theirs.
		_ = conn.Close()
		return sc, nil
	}
	sc := &shardConn{conn: conn, inflight: make(map[uint64]chan rpcResult)}
	c.conns[addr] = sc
	// The read loop starts only for the connection that won the race, and
	// exits when the conn closes (dropConn, applyMap pruning, or Close).
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		sc.readLoop()
	}()
	return sc, nil
}

// dropConn evicts a connection after a transport error and marks the shard
// map stale, so the next attempt refetches topology (the shard may have
// restarted under a new address).
func (c *Client) dropConn(addr string, sc *shardConn) {
	c.mu.Lock()
	if cur, ok := c.conns[addr]; ok && cur == sc {
		delete(c.conns, addr)
	}
	c.mapStale = true
	c.mu.Unlock()
	_ = sc.conn.Close()
}

// applyMap installs a fetched shard map unless a newer epoch is cached, and
// prunes pooled connections to addresses that left the tier — an elastic
// shrink retires shards for good, and a pooled conn to one would otherwise
// linger until its next (failing) use.
func (c *Client) applyMap(epoch uint64, addrs []string) {
	c.mu.Lock()
	if epoch < c.epoch && c.shards != nil {
		c.mu.Unlock()
		return
	}
	c.epoch = epoch
	c.shards = append([]string(nil), addrs...)
	c.mapStale = false
	current := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		current[a] = true
	}
	var evicted []*shardConn
	for a, sc := range c.conns {
		if !current[a] {
			delete(c.conns, a)
			evicted = append(evicted, sc)
		}
	}
	c.mu.Unlock()
	// Close outside the lock: a Close can block on an in-flight RPC.
	for _, sc := range evicted {
		_ = sc.conn.Close()
	}
}

// Epoch returns the topology epoch of the cached shard map — zero before
// the first fetch. Swarm drivers compare it against the cluster's epoch to
// confirm a client noticed a reshape.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Map returns the cached shard map, fetching it first if needed.
func (c *Client) Map() (uint64, []string, error) {
	if _, err := c.shardMap(); err != nil {
		return 0, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch, append([]string(nil), c.shards...), nil
}

// shardMap returns the cached topology, refreshing from any reachable shard
// or seed when the cache is empty or stale.
func (c *Client) shardMap() ([]string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.shards != nil && !c.mapStale {
		out := append([]string(nil), c.shards...)
		c.mu.Unlock()
		return out, nil
	}
	candidates := append(append([]string(nil), c.shards...), c.cfg.Seeds...)
	epoch := c.epoch
	c.mu.Unlock()

	var lastErr error = ErrUnavailable
	for _, addr := range candidates {
		if addr == "" {
			continue
		}
		sc, err := c.getConn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		reply, err := c.fetchMap(sc, epoch)
		if err != nil {
			c.dropConn(addr, sc)
			lastErr = err
			continue
		}
		if len(reply.Shards) == 0 {
			lastErr = fmt.Errorf("medclient: %s advertised an empty shard map", addr)
			continue
		}
		addrs := make([]string, len(reply.Shards))
		for _, s := range reply.Shards {
			if int(s.Index) < len(addrs) {
				addrs[s.Index] = s.Addr
			}
		}
		c.applyMap(reply.Epoch, addrs)
		return addrs, nil
	}
	return nil, fmt.Errorf("medclient: shard map fetch failed: %w", lastErr)
}

func (c *Client) fetchMap(sc *shardConn, epoch uint64) (*protocol.MedShardMap, error) {
	reply, err := c.rpc(sc, &protocol.MedShardMapReq{Epoch: epoch})
	if err != nil {
		return nil, err
	}
	m, ok := reply.(*protocol.MedShardMap)
	if !ok {
		return nil, fmt.Errorf("medclient: unexpected map reply %T", reply)
	}
	return m, nil
}

// rpc issues one enveloped, pipelined request on sc and waits for its
// single reply. Many callers share the connection concurrently; a transport
// failure delivers the error to exactly the RPCs in flight on it.
func (c *Client) rpc(sc *shardConn, req protocol.Message) (protocol.Message, error) {
	id := c.nextReq.Add(1)
	ch := make(chan rpcResult, 1)
	if err := sc.register(id, ch); err != nil {
		return nil, err
	}
	perfstats.MedRPCStart()
	defer perfstats.MedRPCDone()
	if err := sc.conn.Send(&protocol.Envelope{ReqID: id, Msg: req}); err != nil {
		sc.unregister(id)
		return nil, err
	}
	select {
	case res := <-ch:
		return res.msg, res.err
	case <-c.stop:
		sc.unregister(id)
		return nil, ErrClosed
	}
}

// op runs one request-reply exchange against the shard owning obj, retrying
// with backoff and alternating primary/replica on failure. handle inspects
// each reply: it returns done once the terminal reply arrived, along with
// the operation's verdict. Redirects update routing mid-operation (followed
// immediately, no backoff), and a no-key verdict from the primary is given
// one shot at the replica — the write-through deposit copy may have
// survived a primary restart.
func (c *Client) op(obj catalog.ObjectID, req protocol.Message, handle func(protocol.Message) (bool, error)) error {
	var lastErr error = ErrUnavailable
	redirectTo := ""
	skipBackoff := false
	forceIdx := -1
	var noKeyFrom [2]bool // primary, replica answered "no escrow"
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 && !skipBackoff {
			if !c.sleep(backoffFor(c.cfg.Backoff, attempt)) {
				return ErrClosed
			}
		}
		skipBackoff = false
		shards, err := c.shardMap()
		if err != nil {
			lastErr = err
			continue
		}
		primary, replica := mediator.ShardFor(obj, len(shards))
		idx := primary
		if attempt%2 == 1 {
			idx = replica
		}
		if forceIdx >= 0 && forceIdx < len(shards) {
			idx, forceIdx = forceIdx, -1
		}
		addr := shards[idx]
		if redirectTo != "" {
			addr, redirectTo = redirectTo, ""
		}
		if addr == "" {
			lastErr = fmt.Errorf("medclient: no address for shard %d", idx)
			continue
		}
		sc, err := c.getConn(addr)
		if err != nil {
			c.markMapStale()
			lastErr = err
			continue
		}
		done, redirect, opErr := c.roundTrip(sc, req, handle)
		switch {
		case done:
			// Attribute a no-key verdict to the shard actually dialed — a
			// followed redirect can differ from the parity-derived idx —
			// so the write-through copy on the other owner is always
			// consulted before the verdict stands.
			side := -1
			switch addr {
			case shards[primary]:
				side = 0
			case shards[replica]:
				side = 1
			}
			if errors.Is(opErr, ErrNoKey) && replica != primary && side >= 0 {
				// This shard holds no escrow — it may have restarted and
				// lost it. Deposits are written through to both owners, so
				// consult the other one before giving the verdict back.
				noKeyFrom[side] = true
				if !noKeyFrom[1-side] {
					if side == 0 {
						forceIdx = replica
					} else {
						forceIdx = primary
					}
					skipBackoff = true
					lastErr = opErr
					continue
				}
			}
			return opErr
		case redirect != nil:
			// Misrouted: follow the owner's coordinates immediately, and if
			// the shard advertises a topology epoch we have not seen, mark
			// the cached map stale so the next attempt refetches it instead
			// of bouncing off the same stale entry forever.
			redirectTo = redirect.Addr
			skipBackoff = true
			c.mu.Lock()
			if redirect.Epoch != c.epoch {
				c.mapStale = true
			}
			c.mu.Unlock()
			c.logf("redirected for object %d to shard %d (%s)", obj, redirect.Shard, redirect.Addr)
			lastErr = fmt.Errorf("medclient: redirected to shard %d", redirect.Shard)
		default:
			c.dropConn(addr, sc)
			lastErr = opErr
			c.logf("attempt %d for object %d via %s failed: %v", attempt, obj, addr, opErr)
		}
	}
	if errors.Is(lastErr, ErrClosed) {
		return lastErr
	}
	if errors.Is(lastErr, ErrNoKey) {
		// Both primary and replica answered: the escrow is genuinely gone.
		return lastErr
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
}

// maxBackoff caps the exponential schedule; past it every retry waits the
// same bounded interval (an unclamped shift would overflow time.Duration at
// high attempt counts and collapse the backoff to zero).
const maxBackoff = 2 * time.Second

func backoffFor(base time.Duration, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if d <= 0 || d > maxBackoff {
		return maxBackoff
	}
	return d
}

func (c *Client) markMapStale() {
	c.mu.Lock()
	c.mapStale = true
	c.mu.Unlock()
}

// roundTrip performs one pipelined RPC on sc. It returns done when handle
// accepted the reply (err is then the verdict), a redirect if the shard
// refused ownership, or neither on a transport error. ReqID matching makes
// the reply unambiguous, so a reply handle cannot claim is a protocol
// violation surfaced like a transport error — the op loop drops the
// connection and retries.
func (c *Client) roundTrip(sc *shardConn, req protocol.Message, handle func(protocol.Message) (bool, error)) (done bool, redirect *protocol.MedRedirect, err error) {
	reply, err := c.rpc(sc, req)
	if err != nil {
		return false, nil, err
	}
	if r, ok := reply.(*protocol.MedRedirect); ok {
		return false, r, nil
	}
	ok, verdict := handle(reply)
	if !ok {
		return false, nil, fmt.Errorf("medclient: unexpected reply %T", reply)
	}
	return true, nil, verdict
}

// Deposit escrows a sender's key for one exchange with the owning shard,
// waiting for the acknowledgement so a subsequent audit is guaranteed to
// see it, then writes the key through to the replica shard (best effort) so
// an audit that fails over after a primary crash still finds it.
func (c *Client) Deposit(exchangeID uint64, sender core.PeerID, obj catalog.ObjectID, key [16]byte) error {
	req := &protocol.MedDeposit{ExchangeID: exchangeID, Sender: sender, Object: obj, Key: key}
	err := c.op(obj, req, func(msg protocol.Message) (bool, error) {
		if ack, ok := msg.(*protocol.MedKey); ok && ack.ExchangeID == exchangeID && ack.Key == key {
			return true, nil
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	c.replicate(obj, req)
	return nil
}

// replicate writes a deposit to the replica shard, one attempt, errors
// tolerated: the replica copy only matters if the primary later dies, and
// the sender re-deposits on every new transfer session anyway.
func (c *Client) replicate(obj catalog.ObjectID, req *protocol.MedDeposit) {
	shards, err := c.shardMap()
	if err != nil {
		return
	}
	primary, replica := mediator.ShardFor(obj, len(shards))
	if replica == primary || replica >= len(shards) || shards[replica] == "" {
		return
	}
	sc, err := c.getConn(shards[replica])
	if err != nil {
		return
	}
	done, _, err := c.roundTrip(sc, req, func(msg protocol.Message) (bool, error) {
		if ack, ok := msg.(*protocol.MedKey); ok && ack.ExchangeID == req.ExchangeID {
			return true, nil
		}
		return false, nil
	})
	if !done || err != nil {
		c.dropConn(shards[replica], sc)
		c.logf("replica deposit for object %d failed: %v", obj, err)
	}
}

// Verify submits received sample blocks for audit and returns the sender's
// escrowed key on success. ErrRejected means the audit proved cheating;
// ErrNoKey means the shard held no escrow (transient); ErrUnavailable means
// no shard could be reached through every retry and failover.
func (c *Client) Verify(exchangeID uint64, requester, sender core.PeerID, obj catalog.ObjectID, samples []protocol.Block) ([16]byte, error) {
	req := &protocol.MedVerify{
		ExchangeID: exchangeID,
		Requester:  requester,
		Sender:     sender,
		Object:     obj,
		Samples:    samples,
	}
	var key [16]byte
	err := c.op(obj, req, func(msg protocol.Message) (bool, error) {
		switch v := msg.(type) {
		case *protocol.MedKey:
			if v.ExchangeID == exchangeID {
				key = v.Key
				return true, nil
			}
		case *protocol.MedReject:
			if v.ExchangeID == exchangeID {
				switch v.Code {
				case protocol.MedRejectNoKey:
					return true, fmt.Errorf("%w: %s", ErrNoKey, v.Reason)
				case protocol.MedRejectAudit:
					return true, fmt.Errorf("%w: %s", ErrRejected, v.Reason)
				default:
					// Oversize, malformed, or a code this client does not
					// know: the mediator refused to judge — never a
					// cheating verdict against the sender.
					return true, fmt.Errorf("%w: %s", ErrBadRequest, v.Reason)
				}
			}
		}
		return false, nil
	})
	return key, err
}
