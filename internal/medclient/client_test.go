package medclient

import (
	"crypto/sha256"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/mediator"
	"barter/internal/protocol"
	"barter/internal/testutil"
	"barter/internal/transport"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("config without transport accepted")
	}
	if _, err := New(Config{Transport: transport.NewMem()}); err == nil {
		t.Fatal("config without seeds accepted")
	}
}

func oracleFor(obj catalog.ObjectID, content []byte) mediator.DigestOracle {
	digest := sha256.Sum256(content)
	return func(o catalog.ObjectID) ([][32]byte, bool) {
		if o == obj {
			return [][32]byte{digest}, true
		}
		return nil, false
	}
}

func TestUnavailableAfterRetries(t *testing.T) {
	tr := transport.NewMem()
	c, err := New(Config{
		Transport: tr,
		Seeds:     []string{"mem://nobody-home"},
		Attempts:  3,
		Backoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Deposit(1, 1, 1, [16]byte{1})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("deposit against an empty network: %v", err)
	}
}

// TestRetryRidesThroughRestart kills a standalone mediator and restarts it
// at the same address while an operation is mid-retry: the backoff loop
// must pick up the fresh instance without caller involvement.
func TestRetryRidesThroughRestart(t *testing.T) {
	tr := transport.NewMem()
	obj := catalog.ObjectID(7)
	oracle := oracleFor(obj, []byte("content"))
	med, err := mediator.New(tr, "mem://solo", oracle)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Transport: tr, Seeds: []string{"mem://solo"}, Attempts: 8, Backoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Prime the map and the pooled connection, then kill the mediator.
	if err := c.Deposit(1, 1, obj, [16]byte{1}); err != nil {
		t.Fatal(err)
	}
	med.Close()

	done := make(chan error, 1)
	go func() { done <- c.Deposit(2, 1, obj, [16]byte{2}) }()
	time.Sleep(20 * time.Millisecond)
	med2, err := mediator.New(tr, "mem://solo", oracle)
	if err != nil {
		t.Fatal(err)
	}
	defer med2.Close()
	if err := <-done; err != nil {
		t.Fatalf("deposit did not ride through the restart: %v", err)
	}
}

// redirectStub is a fake shard that advertises itself as the whole tier and
// redirects every deposit/verify to a real mediator, for pinning the
// client's redirect-following behavior.
type redirectStub struct {
	ln     transport.Listener
	target string
	wg     sync.WaitGroup
	served chan struct{} // closed after the first redirect is sent
	once   sync.Once
}

func newRedirectStub(t *testing.T, tr transport.Transport, addr, target string) *redirectStub {
	t.Helper()
	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &redirectStub{ln: ln, target: target, served: make(chan struct{})}
	s.wg.Add(1)
	go s.accept()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *redirectStub) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			for {
				msg, err := conn.Recv()
				if err != nil {
					return
				}
				// Mirror the mediator's envelope contract: an enveloped
				// request gets its reply wrapped under the same ReqID.
				send := conn.Send
				if env, ok := msg.(*protocol.Envelope); ok {
					reqID := env.ReqID
					msg = env.Msg
					send = func(reply protocol.Message) error {
						return conn.Send(&protocol.Envelope{ReqID: reqID, Msg: reply})
					}
				}
				switch m := msg.(type) {
				case *protocol.MedShardMapReq:
					_ = send(&protocol.MedShardMap{
						Version: protocol.ShardMapVersion,
						Epoch:   1,
						Shards:  []protocol.MedShardEntry{{Index: 0, Addr: s.ln.Addr()}},
					})
				case *protocol.MedDeposit:
					_ = send(&protocol.MedRedirect{Object: m.Object, Shard: 0, Addr: s.target, Epoch: 2})
					s.once.Do(func() { close(s.served) })
				case *protocol.MedVerify:
					_ = send(&protocol.MedRedirect{Object: m.Object, Shard: 0, Addr: s.target, Epoch: 2})
					s.once.Do(func() { close(s.served) })
				}
			}
		}()
	}
}

// TestRedirectFollowed: a client whose map points at the wrong shard must
// follow the MedRedirect to the owner and complete the operation there.
func TestRedirectFollowed(t *testing.T) {
	tr := transport.NewMem()
	obj := catalog.ObjectID(3)
	oracle := oracleFor(obj, []byte("real-content"))
	real, err := mediator.New(tr, "mem://real-owner", oracle)
	if err != nil {
		t.Fatal(err)
	}
	defer real.Close()
	stub := newRedirectStub(t, tr, "mem://stub-shard", "mem://real-owner")

	c, err := New(Config{Transport: tr, Seeds: []string{"mem://stub-shard"}, Attempts: 4, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Deposit(5, 9, obj, [16]byte{5}); err != nil {
		t.Fatalf("deposit through redirect: %v", err)
	}
	select {
	case <-stub.served:
	default:
		t.Fatal("stub never saw the misrouted deposit")
	}
	// The deposit must actually live on the real mediator: verify against
	// it directly.
	sealed, err := mediator.Seal([16]byte{5}, 9, 10, obj, 0, []byte("real-content"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := c.Verify(5, 10, 9, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
	if err != nil {
		t.Fatalf("verify after redirect: %v", err)
	}
	if key != [16]byte{5} {
		t.Fatal("wrong key released")
	}
}

// TestCloseAbortsRetries: Close while an operation is backing off must
// surface ErrClosed promptly instead of sleeping out the whole schedule.
func TestCloseAbortsRetries(t *testing.T) {
	tr := transport.NewMem()
	c, err := New(Config{
		Transport: tr,
		Seeds:     []string{"mem://nobody"},
		Attempts:  50,
		Backoff:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Deposit(1, 1, 1, [16]byte{}) }()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("aborted op returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("op survived Close")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Close took too long to abort the retry loop")
	}
	// Post-close operations fail immediately.
	if err := c.Deposit(2, 1, 1, [16]byte{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close deposit: %v", err)
	}
}

// TestConnPooling: repeated operations to one shard reuse a single pooled
// connection rather than dialing per call.
func TestConnPooling(t *testing.T) {
	tr := transport.NewMem()
	obj := catalog.ObjectID(2)
	med, err := mediator.New(tr, "mem://pooled", oracleFor(obj, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	defer med.Close()
	c, err := New(Config{Transport: tr, Seeds: []string{"mem://pooled"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		if err := c.Deposit(uint64(i), 1, obj, [16]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.conns)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("pool holds %d connections after 20 ops on one shard, want 1", n)
	}
}

// TestConcurrentOps hammers one client from many goroutines; the per-conn
// serialization must keep every reply matched to its caller.
func TestConcurrentOps(t *testing.T) {
	tr := transport.NewMem()
	content := []byte("shared-content")
	digest := sha256.Sum256(content)
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) { return [][32]byte{digest}, true }
	cl, err := mediator.NewCluster(tr, []string{"mem://cc-0", "mem://cc-1", "mem://cc-2"}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := New(Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj := catalog.ObjectID(i + 1)
			ex := uint64(i + 1)
			sender := coreid(i + 10)
			var key [16]byte
			key[0] = byte(i + 1)
			if err := c.Deposit(ex, sender, obj, key); err != nil {
				t.Errorf("deposit %d: %v", i, err)
				return
			}
			sealed, err := mediator.Seal(key, sender, sender+1, obj, 0, content)
			if err != nil {
				t.Errorf("seal %d: %v", i, err)
				return
			}
			got, err := c.Verify(ex, sender+1, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
			if err != nil {
				t.Errorf("verify %d: %v", i, err)
				return
			}
			if got != key {
				t.Errorf("verify %d: reply crossed callers (got key %v)", i, got[0])
			}
		}(i)
	}
	wg.Wait()
}

// coreid shortens the PeerID conversions above.
func coreid(i int) core.PeerID { return core.PeerID(i) }

// pipelineStub is a fake single-shard tier that withholds deposit replies
// until `depth` requests are in flight on one connection, then answers them
// in reverse arrival order. It pins the two demux properties at once: the
// client genuinely pipelines (depth requests outstanding before any reply)
// and replies are matched by ReqID, not arrival order.
type pipelineStub struct {
	ln    transport.Listener
	depth int
	wg    sync.WaitGroup
}

func newPipelineStub(t *testing.T, tr transport.Transport, addr string, depth int) *pipelineStub {
	t.Helper()
	ln, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &pipelineStub{ln: ln, depth: depth}
	s.wg.Add(1)
	go s.accept()
	t.Cleanup(func() {
		ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *pipelineStub) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			var held []*protocol.Envelope // deposits awaiting the batch flush
			for {
				msg, err := conn.Recv()
				if err != nil {
					return
				}
				env, ok := msg.(*protocol.Envelope)
				if !ok {
					continue
				}
				switch env.Msg.(type) {
				case *protocol.MedShardMapReq:
					_ = conn.Send(&protocol.Envelope{ReqID: env.ReqID, Msg: &protocol.MedShardMap{
						Version: protocol.ShardMapVersion,
						Epoch:   1,
						Shards:  []protocol.MedShardEntry{{Index: 0, Addr: s.ln.Addr()}},
					}})
				case *protocol.MedDeposit:
					held = append(held, env)
					if len(held) < s.depth {
						continue
					}
					for i := len(held) - 1; i >= 0; i-- {
						dep := held[i].Msg.(*protocol.MedDeposit)
						_ = conn.Send(&protocol.Envelope{ReqID: held[i].ReqID, Msg: &protocol.MedKey{
							ExchangeID: dep.ExchangeID,
							Key:        dep.Key,
						}})
					}
					held = held[:0]
				}
			}
		}()
	}
}

// TestPipelinedOutOfOrderReplies: eight concurrent deposits against a shard
// that replies to nothing until all eight are queued on the wire, then
// answers newest-first. Every call must still complete with its own ack.
func TestPipelinedOutOfOrderReplies(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	const depth = 8
	tr := transport.NewMem()
	newPipelineStub(t, tr, "mem://pipe-stub", depth)
	c, err := New(Config{Transport: tr, Seeds: []string{"mem://pipe-stub"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make([]error, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Deposit(uint64(i+1), coreid(i+1), catalog.ObjectID(1), [16]byte{byte(i + 1)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pipelined deposit %d: %v", i, err)
		}
	}
}

// TestPipelinedFailover: sixteen verifies launched together against a
// durable two-shard tier whose shards are both killed and restarted while
// the calls are in flight. Every call must return exactly once, with its
// own exchange's key — no reply crossing callers, none lost, none doubled.
func TestPipelinedFailover(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	const calls = 16
	tr := transport.NewMem()
	content := []byte("failover-content")
	digest := sha256.Sum256(content)
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) { return [][32]byte{digest}, true }
	cl, err := mediator.NewClusterOpts(tr, []string{"mem://pf-0", "mem://pf-1"}, oracle,
		mediator.ClusterOpts{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := New(Config{Transport: tr, Seeds: cl.Addrs(), Attempts: 100, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type fixture struct {
		obj    catalog.ObjectID
		ex     uint64
		sender core.PeerID
		key    [16]byte
		sealed []byte
	}
	fixtures := make([]fixture, calls)
	for i := range fixtures {
		f := fixture{obj: catalog.ObjectID(i + 1), ex: uint64(i + 1), sender: coreid(i + 10)}
		f.key[0] = byte(i + 1)
		if err := c.Deposit(f.ex, f.sender, f.obj, f.key); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
		sealed, err := mediator.Seal(f.key, f.sender, f.sender+1, f.obj, 0, content)
		if err != nil {
			t.Fatal(err)
		}
		f.sealed = sealed
		fixtures[i] = f
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	var succeeded int32
	for i := range fixtures {
		wg.Add(1)
		go func(f fixture) {
			defer wg.Done()
			<-start
			got, err := c.Verify(f.ex, f.sender+1, f.sender, f.obj, []protocol.Block{
				{Object: f.obj, Index: 0, Payload: f.sealed},
			})
			if err != nil {
				t.Errorf("verify %d: %v", f.ex, err)
				return
			}
			if got != f.key {
				t.Errorf("verify %d: reply crossed callers (got key %v)", f.ex, got[0])
				return
			}
			atomic.AddInt32(&succeeded, 1)
		}(fixtures[i])
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let the wave hit the wire
	for i := 0; i < cl.Shards(); i++ {
		cl.KillShard(i)
	}
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < cl.Shards(); i++ {
		if err := cl.RestartShard(i); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n := atomic.LoadInt32(&succeeded); n != calls {
		t.Fatalf("%d of %d pipelined verifies completed exactly once", n, calls)
	}
}

// TestElasticReshapeRefreshesMapMidRun resizes the tier under a running
// client: the epoch-invalidation path must pick up each new map (redirects
// carry the fresh epoch), operations must keep landing on the owning
// shards, and a shrink must also prune the pooled connection to the
// retired shard.
func TestElasticReshapeRefreshesMapMidRun(t *testing.T) {
	tr := transport.NewMem()
	content := []byte("elastic-content")
	digest := sha256.Sum256(content)
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) { return [][32]byte{digest}, true }
	cl, err := mediator.NewCluster(tr, []string{"mem://el-0", "mem://el-1"}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := New(Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	run := func(base int) {
		t.Helper()
		for i := 0; i < 16; i++ {
			obj := catalog.ObjectID(base + i)
			ex := uint64(base + i)
			sender := coreid(base + i)
			var key [16]byte
			key[0], key[1] = byte(base), byte(i)
			if err := c.Deposit(ex, sender, obj, key); err != nil {
				t.Fatalf("deposit %d: %v", obj, err)
			}
			sealed, err := mediator.Seal(key, sender, sender+1, obj, 0, content)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Verify(ex, sender+1, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
			if err != nil {
				t.Fatalf("verify %d: %v", obj, err)
			}
			if got != key {
				t.Fatalf("verify %d released the wrong key", obj)
			}
		}
	}

	run(100) // prime the map and the conn pool at 2 shards

	if err := cl.AddShard("mem://el-2"); err != nil {
		t.Fatal(err)
	}
	run(200) // new arcs exist only on shard 2; stale-map redirects must heal
	if got, want := c.Epoch(), cl.Epoch(); got != want {
		t.Fatalf("client epoch %d after grow, cluster at %d", got, want)
	}

	removed := cl.Addrs()[2]
	if err := cl.RemoveShard(); err != nil {
		t.Fatal(err)
	}
	run(300)
	if got, want := c.Epoch(), cl.Epoch(); got != want {
		t.Fatalf("client epoch %d after shrink, cluster at %d", got, want)
	}
	c.mu.Lock()
	_, pooled := c.conns[removed]
	c.mu.Unlock()
	if pooled {
		t.Fatalf("pooled connection to retired shard %s not pruned", removed)
	}
}
