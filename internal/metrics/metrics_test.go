package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.N() != 0 {
		t.Fatalf("N = %d, want 0", s.N())
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Var": s.Var(), "Min": s.Min(), "Max": s.Max(),
	} {
		if !math.IsNaN(v) {
			t.Fatalf("%s on empty stream = %v, want NaN", name, v)
		}
	}
}

func TestStreamMoments(t *testing.T) {
	var s Stream
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic data set is 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v, want 40", s.Sum())
	}
}

func TestStreamSingleObservation(t *testing.T) {
	var s Stream
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single-observation stats wrong")
	}
	if !math.IsNaN(s.Var()) {
		t.Fatalf("Var with one obs = %v, want NaN", s.Var())
	}
}

func TestStreamMatchesBatchMean(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Stream
		sum := 0.0
		for _, x := range clean {
			s.Add(x)
			sum += x
		}
		want := sum / float64(len(clean))
		return math.Abs(s.Mean()-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.9, 90}, {1, 100},
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestSampleQuantileEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("Quantile on empty sample not NaN")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		pts := s.CDF(10)
		if len(pts) == 0 {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].F < pts[i-1].F || pts[i].V < pts[i-1].V {
				return false
			}
		}
		return pts[len(pts)-1].F == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFExactSmallSample(t *testing.T) {
	var s Sample
	for _, x := range []float64{3, 1, 2, 4} {
		s.Add(x)
	}
	pts := s.CDF(4)
	wantV := []float64{1, 2, 3, 4}
	wantF := []float64{0.25, 0.5, 0.75, 1}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for i := range pts {
		if pts[i].V != wantV[i] || pts[i].F != wantF[i] {
			t.Fatalf("point %d = (%v,%v), want (%v,%v)", i, pts[i].V, pts[i].F, wantV[i], wantF[i])
		}
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 2, 3} {
		s.Add(x)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := s.FractionAtOrBelow(tc.x); got != tc.want {
			t.Fatalf("FractionAtOrBelow(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestGroupedKeysInFirstSeenOrder(t *testing.T) {
	g := NewGrouped()
	g.Add("b", 1)
	g.Add("a", 2)
	g.Add("b", 3)
	keys := g.Keys()
	if len(keys) != 2 || keys[0] != "b" || keys[1] != "a" {
		t.Fatalf("keys = %v, want [b a]", keys)
	}
	if g.Get("b").N() != 2 || g.Get("a").N() != 1 {
		t.Fatal("group sizes wrong")
	}
	if g.Get("missing") != nil {
		t.Fatal("missing key returned non-nil")
	}
}

func TestTableAppendAndTSV(t *testing.T) {
	tab := &Table{Title: "demo", XLabel: "x", YLabel: "y"}
	tab.Append("s1", 1, 10)
	tab.Append("s2", 1, 20)
	tab.Append("s1", 2, 11)
	out := tab.TSV()
	if !strings.HasPrefix(out, "# demo\n") {
		t.Fatalf("missing title header: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if lines[1] != "x\ts1\ts2" {
		t.Fatalf("header = %q", lines[1])
	}
	if lines[2] != "1\t10\t20" {
		t.Fatalf("row 1 = %q", lines[2])
	}
	if lines[3] != "2\t11\t-" {
		t.Fatalf("row 2 = %q (missing value should be -)", lines[3])
	}
}

func TestTableDescendingXAxis(t *testing.T) {
	tab := &Table{Title: "desc", XLabel: "x"}
	// Figures 4 and 5 plot upload capacity from 140 down to 40.
	for _, x := range []float64{140, 120, 100, 80, 60, 40} {
		tab.Append("s", x, x/10)
	}
	lines := strings.Split(strings.TrimSpace(tab.TSV()), "\n")
	var xs []float64
	for _, l := range lines[2:] {
		x, err := strconv.ParseFloat(strings.Split(l, "\t")[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		xs = append(xs, x)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(xs))) {
		t.Fatalf("x axis not descending: %v", xs)
	}
}

func TestTableGet(t *testing.T) {
	tab := &Table{}
	tab.Append("a", 1, 2)
	if tab.Get("a") == nil || tab.Get("zzz") != nil {
		t.Fatal("Get misbehaved")
	}
}

func TestMeanCI95(t *testing.T) {
	if m, h := MeanCI95(nil); !math.IsNaN(m) || !math.IsNaN(h) {
		t.Fatalf("empty input: got (%v, %v), want NaNs", m, h)
	}
	if m, h := MeanCI95([]float64{3.5}); m != 3.5 || h != 0 {
		t.Fatalf("single value: got (%v, %v), want (3.5, 0)", m, h)
	}
	// n=4, mean 5, stddev 2: half-width = t(3df)*2/2 = 3.182.
	m, h := MeanCI95([]float64{3, 3, 7, 7})
	if m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	sem := math.Sqrt(16.0/3.0) / 2 // stddev/sqrt(n)
	if want := 3.182 * sem; math.Abs(h-want) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", h, want)
	}
	// Identical observations carry zero spread.
	if _, h := MeanCI95([]float64{2, 2, 2}); h != 0 {
		t.Fatalf("constant sample: half-width %v, want 0", h)
	}
	// Large n falls back to the normal critical value.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	_, h = MeanCI95(xs)
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	if want := 1.96 * s.Stddev() / 10; math.Abs(h-want) > 1e-9 {
		t.Fatalf("normal-regime half-width = %v, want %v", h, want)
	}
}

func TestSampleMerge(t *testing.T) {
	var a, b Sample
	for _, x := range []float64{3, 1} {
		a.Add(x)
	}
	for _, x := range []float64{2, 4} {
		b.Add(x)
	}
	a.sort() // force the cached order so Merge must invalidate it
	a.Merge(&b)
	if a.N() != 4 {
		t.Fatalf("merged N = %d, want 4", a.N())
	}
	// Nearest-rank median of {1,2,3,4} is 2 — and seeing 2 (not 3) proves
	// Merge invalidated the stale sorted cache of [1,3].
	if got := a.Quantile(0.5); got != 2 {
		t.Fatalf("merged median = %v, want 2", got)
	}
	if lo, hi := a.Quantile(0), a.Quantile(1); lo != 1 || hi != 4 {
		t.Fatalf("merged extremes = %v, %v; want 1, 4", lo, hi)
	}
	if b.N() != 2 {
		t.Fatal("Merge mutated the source sample")
	}
}

func TestGroupedMerge(t *testing.T) {
	a, b := NewGrouped(), NewGrouped()
	a.Add("x", 1)
	b.Add("y", 2)
	b.Add("x", 3)
	a.Merge(b)
	if got := a.Keys(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("merged keys = %v, want [x y] (first-seen order)", got)
	}
	if n := a.Get("x").N(); n != 2 {
		t.Fatalf("merged group x has %d samples, want 2", n)
	}
	if n := a.Get("y").N(); n != 1 {
		t.Fatalf("merged group y has %d samples, want 1", n)
	}
}
