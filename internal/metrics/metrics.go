// Package metrics provides the statistics machinery the simulation study
// reports: streaming moments, empirical CDFs, and keyed collections of both,
// plus the plain-text series formatting used by the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates streaming mean and variance (Welford's algorithm) along
// with min/max and sum. The zero value is ready to use.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	s.sum += x
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the sample mean, or NaN with no observations.
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Sum returns the sum of all observations.
func (s *Stream) Sum() float64 { return s.sum }

// Var returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Stream) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or NaN with no observations.
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN with no observations.
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom; beyond 30 the normal approximation 1.96 is used.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// confidence interval (Student t for n <= 31, normal beyond). With no
// observations both are NaN; with one observation the half-width is 0 —
// replicated experiments opt into CI columns only when replication is on, so
// a single replica reports its value with no spread.
func MeanCI95(xs []float64) (mean, half float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	var s Stream
	for _, x := range xs {
		s.Add(x)
	}
	if len(xs) == 1 {
		return s.Mean(), 0
	}
	df := len(xs) - 1
	crit := 1.96
	if df <= len(tCrit95) {
		crit = tCrit95[df-1]
	}
	return s.Mean(), crit * s.Stddev() / math.Sqrt(float64(len(xs)))
}

// Sample retains every observation so quantiles and CDFs can be computed
// exactly. The per-run sample counts in this study are small (tens of
// thousands), so exact retention is preferable to sketching.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Merge appends every observation of o (in insertion order) to s. The
// sharded engine uses it to combine per-domain samples: merging domains in
// ascending domain order keeps the combined sample — and therefore every
// quantile and CDF derived from it — a pure function of (config, seed,
// shards).
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.xs) == 0 {
		return
	}
	s.xs = append(s.xs, o.xs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean, or NaN with no observations.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th empirical quantile (nearest-rank), q in [0, 1].
// It returns NaN with no observations.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.xs[idx]
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X string // formatted abscissa
	V float64
	F float64 // cumulative fraction in (0, 1]
}

// CDF returns the empirical distribution function evaluated at up to points
// evenly spaced positions of the sorted sample (always including the
// maximum). The fractions are nondecreasing and end at 1.
func (s *Sample) CDF(points int) []CDFPoint {
	if len(s.xs) == 0 || points <= 0 {
		return nil
	}
	s.sort()
	if points > len(s.xs) {
		points = len(s.xs)
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*len(s.xs)/points - 1
		f := float64(idx+1) / float64(len(s.xs))
		v := s.xs[idx]
		out = append(out, CDFPoint{X: fmt.Sprintf("%g", v), V: v, F: f})
	}
	return out
}

// FractionAtOrBelow returns the fraction of observations <= x.
func (s *Sample) FractionAtOrBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.xs))
}

// Grouped keys independent Samples by string label, e.g. one distribution per
// traffic class ("non-exchange", "pairwise", "3-way", ...).
type Grouped struct {
	groups map[string]*Sample
	order  []string
}

// NewGrouped returns an empty keyed collection.
func NewGrouped() *Grouped {
	return &Grouped{groups: make(map[string]*Sample)}
}

// Add records an observation under key.
func (g *Grouped) Add(key string, x float64) {
	s, ok := g.groups[key]
	if !ok {
		s = &Sample{}
		g.groups[key] = s
		g.order = append(g.order, key)
	}
	s.Add(x)
}

// Merge folds every group of o into g, appending observations in o's
// first-seen key order. Keys new to g are appended to g's order, so merging
// a fixed sequence of Grouped values yields a fixed key order.
func (g *Grouped) Merge(o *Grouped) {
	if o == nil {
		return
	}
	for _, k := range o.order {
		s, ok := g.groups[k]
		if !ok {
			s = &Sample{}
			g.groups[k] = s
			g.order = append(g.order, k)
		}
		s.Merge(o.groups[k])
	}
}

// Keys returns the keys in first-seen order.
func (g *Grouped) Keys() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Get returns the sample for key, or nil if the key was never added.
func (g *Grouped) Get(key string) *Sample { return g.groups[key] }

// Series is a named sequence of (x, y) points: one plotted line of a paper
// figure.
type Series struct {
	Name   string
	Points []Point
}

// Point is a single (x, y) observation of a series.
type Point struct {
	X float64
	Y float64
}

// Table is a set of series sharing an x-axis, with axis labels; it is the
// in-memory form of one paper figure.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends a new named series and returns it.
func (t *Table) AddSeries(name string) *Series {
	s := &Series{Name: name}
	t.Series = append(t.Series, s)
	return s
}

// Append adds a point to the named series, creating it if needed.
func (t *Table) Append(name string, x, y float64) {
	for _, s := range t.Series {
		if s.Name == name {
			s.Points = append(s.Points, Point{X: x, Y: y})
			return
		}
	}
	s := t.AddSeries(name)
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Get returns the named series, or nil.
func (t *Table) Get(name string) *Series {
	for _, s := range t.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// TSV renders the table as tab-separated values: a comment header, a column
// header row, and one row per distinct x with one column per series. Missing
// values render as "-".
func (t *Table) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "%s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "\t%s", s.Name)
	}
	b.WriteByte('\n')

	xs := t.xAxis()
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, "\t%.4g", y)
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// xAxis returns the sorted union of x values over all series, preserving the
// direction of the first series (the paper plots Figs 4-5 with a reversed
// x-axis; the harness appends points in plot order).
func (t *Table) xAxis() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	descending := false
	if len(t.Series) > 0 && len(t.Series[0].Points) > 1 {
		pts := t.Series[0].Points
		descending = pts[0].X > pts[len(pts)-1].X
	}
	sort.Float64s(xs)
	if descending {
		for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	return xs
}

func lookup(s *Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
