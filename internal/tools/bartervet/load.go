package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// unit is one type-checked set of files: a package together with its
// in-package test files, or a package's external _test package. Analyzers
// see every file and filter _test.go themselves where the contract only
// binds non-test code.
type unit struct {
	dir   string
	fset  *token.FileSet
	files []*ast.File
	info  *types.Info
	pkg   *types.Package
}

// typeString renders a type with local names bare and imported names
// package-qualified, matching how the source spells them.
func (u *unit) typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string {
		if p == u.pkg {
			return ""
		}
		return p.Name()
	})
}

// loader parses and type-checks package directories. One shared FileSet and
// one shared source importer serve every load, so each dependency package is
// compiled from source at most once per run.
type loader struct {
	fset *token.FileSet
	imp  types.Importer
}

func newLoader() *loader {
	// The source importer compiles dependencies with go/build's default
	// context. Disabling cgo keeps that pure-Go (net and friends fall back
	// to their Go implementations), so the tool runs hermetically — no C
	// toolchain, no network.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// load parses dir and returns its check units: the package including its
// in-package test files, plus the external _test package when one exists.
func (l *loader) load(dir string) ([]*unit, error) {
	pkgs, err := parser.ParseDir(l.fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	// Deterministic unit order: package names sorted, external test
	// packages naturally follow their package (foo < foo_test).
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var units []*unit
	for _, name := range names {
		fileNames := make([]string, 0, len(pkgs[name].Files))
		for fname := range pkgs[name].Files {
			fileNames = append(fileNames, fname)
		}
		sort.Strings(fileNames)
		files := make([]*ast.File, 0, len(fileNames))
		for _, fname := range fileNames {
			files = append(files, pkgs[name].Files[fname])
		}
		u, err := l.check(dir, name, files)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// check type-checks one file set as a package.
func (l *loader) check(dir, name string, files []*ast.File) (*unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErr error
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	pkg, err := conf.Check(dir+":"+name, l.fset, files, info)
	if err != nil && typeErr == nil {
		typeErr = err
	}
	if typeErr != nil {
		return nil, fmt.Errorf("type-checking %s (package %s): %v", dir, name, typeErr)
	}
	return &unit{dir: dir, fset: l.fset, files: files, info: info, pkg: pkg}, nil
}

// goDirs returns every directory under root that contains Go files,
// skipping testdata trees (mirrors doccheck).
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// isTestFile reports whether the file holding pos is a _test.go file.
func (u *unit) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(u.fset.Position(pos).Filename, "_test.go")
}
