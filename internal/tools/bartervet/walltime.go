package main

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time entry points that read or wait on the
// wall clock. Referencing any of them — call or function value — makes a
// deterministic package's behavior depend on when it runs.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that build an explicitly
// seeded generator; everything else at package level draws from the shared
// global source, which is seeded randomly at program start.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors, should the module ever migrate.
	"NewPCG": true, "NewChaCha8": true,
}

// checkWallTime flags wall-clock reads and global math/rand draws. Unlike
// the other checks this one covers _test.go files too: a test that reads
// the wall clock or the unseeded global source is a flaky test, and the
// round-trip invariant tests are themselves part of the determinism
// evidence.
func checkWallTime(u *unit, d *diags) {
	for _, f := range u.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := u.info.Uses[pkg].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					d.addf(sel.Pos(), "wall clock: time.%s makes behavior depend on when the run happens; thread simulated time through instead", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				obj, ok := u.info.Uses[sel.Sel].(*types.Func)
				if !ok || seededRandFuncs[sel.Sel.Name] {
					return true // a type, or an explicitly seeded constructor
				}
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // method on a seeded *rand.Rand value
				}
				d.addf(sel.Pos(), "global math/rand: rand.%s draws from the shared unseeded source; use a local rand.New(rand.NewSource(seed)) or the rng package", sel.Sel.Name)
			}
			return true
		})
	}
}
