package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files from current analyzer output:
//
//	go test ./internal/tools/bartervet -run TestGolden -update
//
// Regenerate deliberately — the goldens are the spec for what each analyzer
// must flag, including every seeded violation in the testdata packages.
var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestGolden runs each analyzer over its seeded testdata package and
// compares the full diagnostic list against the committed golden file. If a
// seeded violation is reintroduced into an analyzer's blind spot — or a
// false positive creeps in — the diff names it line by line.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir   string // testdata package, also names the golden file
		check string
	}{
		{"maprange", "maprange"},
		{"walltime", "walltime"},
		{"ptrorder", "ptrorder"},
		{"uncheckedio", "unchecked-io"},
		// The waiver machinery itself: malformed and stale waivers are
		// findings no matter which analyzer runs.
		{"waivers", "maprange"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			got, err := run([]string{tc.check}, []string{filepath.Join("testdata", tc.dir)})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			goldenPath := filepath.Join("testdata", tc.dir+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			want := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
			if len(raw) == 0 {
				want = nil
			}
			if diff := diffLines(want, got); diff != "" {
				t.Errorf("diagnostics differ from %s (re-run with -update if intended):\n%s", goldenPath, diff)
			}
		})
	}
}

// diffLines reports golden lines that vanished and new lines the golden
// does not expect; both inputs are sorted. Counted, not set-based, so a
// line expected twice (two findings on one source line) and produced once
// still diffs.
func diffLines(want, got []string) string {
	counts := make(map[string]int, len(want))
	for _, w := range want {
		counts[w]++
	}
	var b strings.Builder
	for _, g := range got {
		if counts[g] > 0 {
			counts[g]--
			continue
		}
		b.WriteString("+ " + g + "\n")
	}
	for _, w := range want {
		if counts[w] > 0 {
			counts[w]--
			b.WriteString("- " + w + "\n")
		}
	}
	return b.String()
}

// TestParseChecks pins the -checks flag contract.
func TestParseChecks(t *testing.T) {
	if _, err := parseChecks("maprange,unchecked-io"); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	if _, err := parseChecks("maprage"); err == nil {
		t.Fatal("typo'd check accepted")
	}
	if _, err := parseChecks(" , "); err == nil {
		t.Fatal("empty list accepted")
	}
}

// TestDeterministicPackagesAreClean runs the exact configuration `make
// lint` runs, so the contract gate is part of the test suite too: the tree
// must hold zero unwaived violations and zero stale waivers.
func TestDeterministicPackagesAreClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole tree from source; run without -short")
	}
	root := filepath.Join("..", "..", "..")
	var args []string
	for _, p := range deterministicPackages {
		args = append(args, filepath.Join(root, p))
	}
	if got, err := run([]string{"maprange", "walltime", "ptrorder"}, args); err != nil {
		t.Fatalf("run: %v", err)
	} else if len(got) > 0 {
		t.Errorf("determinism contract violated:\n%s", strings.Join(got, "\n"))
	}
	ioArgs := []string{filepath.Join(root, "internal/mediator"), filepath.Join(root, "internal/protocol")}
	if got, err := run([]string{"unchecked-io"}, ioArgs); err != nil {
		t.Fatalf("run: %v", err)
	} else if len(got) > 0 {
		t.Errorf("unchecked-io contract violated:\n%s", strings.Join(got, "\n"))
	}
}

// deterministicPackages mirrors the allowlist in the Makefile's bartervet
// target and docs/DETERMINISM.md.
var deterministicPackages = []string{
	"internal/sim", "internal/eventq", "internal/index", "internal/core",
	"internal/credit", "internal/strategy", "internal/workload",
	"internal/experiment", "internal/runner", "internal/rng", "internal/metrics",
}
