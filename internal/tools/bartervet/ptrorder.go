package main

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// checkPtrOrder flags code that observes pointer numeric values in non-test
// files: converting a pointer to uintptr, taking reflect pointer identity,
// or formatting with %p. Allocation addresses change run to run (and GC can
// move them), so any ordering, hash, or output derived from one
// re-randomizes results.
func checkPtrOrder(u *unit, d *diags) {
	for _, f := range u.files {
		if u.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if uintptrOfPointer(u, call) {
				d.addf(call.Pos(), "uintptr conversion of a pointer: addresses change run to run, so any order or value derived from one is nondeterministic")
				return true
			}
			if name := reflectPointerIdentity(u, call); name != "" {
				d.addf(call.Pos(), "reflect pointer identity: %s exposes the allocation address, which changes run to run", name)
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := formatStringWithPtrVerb(u, arg); ok {
					d.addf(arg.Pos(), "%%p in format string %s: formatted addresses change run to run and must not feed results", lit)
				}
			}
			return true
		})
	}
}

// uintptrOfPointer reports whether call converts a pointer (or
// unsafe.Pointer) to uintptr.
func uintptrOfPointer(u *unit, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := u.info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Uintptr {
		return false
	}
	switch at := u.info.TypeOf(call.Args[0]).Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return at.Kind() == types.UnsafePointer
	}
	return false
}

// reflectPointerIdentity reports a call to reflect.Value.Pointer or
// reflect.Value.UnsafePointer, returning the method name it flags.
func reflectPointerIdentity(u *unit, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Pointer" && sel.Sel.Name != "UnsafePointer") {
		return ""
	}
	s, ok := u.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	named, ok := s.Recv().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "reflect" || obj.Name() != "Value" {
		return ""
	}
	return "reflect.Value." + sel.Sel.Name
}

// formatStringWithPtrVerb reports whether arg is a constant string holding
// a %p verb, returning the literal for the message.
func formatStringWithPtrVerb(u *unit, arg ast.Expr) (string, bool) {
	tv, ok := u.info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	s := constant.StringVal(tv.Value)
	for i := 0; i+1 < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		// Skip flags and width between % and the verb; %%p is a literal
		// percent followed by the letter p, not a verb.
		j := i + 1
		for j < len(s) && (s[j] == '+' || s[j] == '-' || s[j] == '#' || s[j] == ' ' || s[j] == '0' || (s[j] >= '1' && s[j] <= '9') || s[j] == '.') {
			j++
		}
		if j < len(s) && s[j] == 'p' {
			return tv.Value.ExactString(), true
		}
		if j < len(s) && s[j] == '%' {
			i = j // %%: resume after the escape
		}
	}
	return "", false
}
