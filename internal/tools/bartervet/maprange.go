package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkMapRange flags every `range` over a map-typed value in non-test
// files. Map iteration order is randomized per run, and inside the
// deterministic packages candidate order feeds RNG draws and output order —
// one innocent `for k := range m` in a hot path silently re-randomizes
// results the seed was supposed to pin.
//
// Two shapes are accepted without a waiver:
//
//   - `for range m` (and `for _ := range m`): only the count is observed,
//     never the order.
//   - the collect-and-sort idiom: the loop body does nothing but append the
//     keys (optionally behind an if-filter) to slice variables, and one of
//     the next few statements sorts such a slice — the randomized order
//     never escapes.
//
// Anything else needs `//barter:allow maprange <reason>` stating why order
// cannot matter at that site (e.g. the body only mutates an
// order-insensitive set).
func checkMapRange(u *unit, d *diags) {
	for _, f := range u.files {
		if u.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rs, ok := unlabel(stmt).(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := u.info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if countOnly(rs) || collectedAndSorted(u, rs, list[i+1:]) {
					continue
				}
				d.addf(rs.Pos(), "range over map %s: iteration order is nondeterministic — collect and sort the keys, or waive with %s maprange <why order cannot matter>", u.typeString(t), waiverPrefix)
			}
			return true
		})
	}
}

// stmtList returns the statement list a node carries, if any. Every
// statement lives in exactly one of these, so walking them visits each
// range statement alongside its following siblings.
func stmtList(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	}
	return nil
}

// unlabel strips label wrappers so `loop: for k := range m` is seen.
func unlabel(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

// countOnly reports whether the range observes neither keys nor values.
func countOnly(rs *ast.RangeStmt) bool {
	return (rs.Key == nil || isBlank(rs.Key)) && (rs.Value == nil || isBlank(rs.Value))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// collectedAndSorted recognizes the canonical deterministic-iteration
// idiom: the loop body only appends to slice variables, and a sort call on
// one of them follows within the next few sibling statements.
func collectedAndSorted(u *unit, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	collectors := map[types.Object]bool{}
	if !collectOnly(u, rs.Body.List, collectors) || len(collectors) == 0 {
		return false
	}
	const horizon = 5 // statements after the loop that may intervene (e.g. scratch-slice bookkeeping)
	for i, stmt := range rest {
		if i == horizon {
			break
		}
		if sortsCollector(u, stmt, collectors) {
			return true
		}
	}
	return false
}

// collectOnly reports whether every statement is an append into a slice
// variable (recorded in collectors), an if-filter around such appends, or a
// continue.
func collectOnly(u *unit, stmts []ast.Stmt, collectors map[types.Object]bool) bool {
	for _, stmt := range stmts {
		switch s := unlabel(stmt).(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name == "_" {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isAppendTo(u, call, lhs) {
				return false
			}
			collectors[identObj(u, lhs)] = true
		case *ast.IfStmt:
			if s.Else != nil || !collectOnly(u, s.Body.List, collectors) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isAppendTo reports whether call is `append(lhs, ...)`.
func isAppendTo(u *unit, call *ast.CallExpr, lhs *ast.Ident) bool {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if b, ok := u.info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && identObj(u, arg) == identObj(u, lhs)
}

// sortFuncs names the stdlib sorters the idiom accepts, per package.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Sort": true, "Stable": true, "Slice": true, "SliceStable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortsCollector reports whether stmt is a sort./slices. call whose first
// argument is one of the collector slices.
func sortsCollector(u *unit, stmt ast.Stmt, collectors map[types.Object]bool) bool {
	es, ok := unlabel(stmt).(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := u.info.Uses[pkg].(*types.PkgName)
	if !ok {
		return false
	}
	names := sortFuncs[pn.Imported().Path()]
	if names == nil || !names[sel.Sel.Name] {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && collectors[identObj(u, arg)]
}

// identObj resolves an identifier to its object, whether it defines or
// uses it.
func identObj(u *unit, id *ast.Ident) types.Object {
	if o := u.info.Defs[id]; o != nil {
		return o
	}
	return u.info.Uses[id]
}
