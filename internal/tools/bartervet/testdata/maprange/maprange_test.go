package maprangetd

// Test files are outside the maprange contract: map order inside a test
// cannot reach the TSV, so this range must NOT appear in the golden file.

// SumForTest folds a map in whatever order the runtime picks.
func SumForTest(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
