// Package maprangetd seeds the maprange analyzer's golden test: each
// violation here must appear in testdata/maprange.golden, and each accepted
// shape must not.
package maprangetd

import (
	"sort"
	"strings"
)

// Keyed is a named map type: the check must see through the name.
type Keyed map[string]int

// Violations reintroduces the seeded contract breaches.
func Violations(m map[string]int, k Keyed) string {
	var out []string
	for key := range m { // flagged: key order escapes into out
		out = append(out, key)
	}
	for key, v := range k { // flagged: named map type, both sides used
		if v > 0 {
			out = append(out, key)
		}
	}
	var sum float64
	for _, v := range m { // flagged: float accumulation order changes the rounding
		sum += 1 / float64(v)
	}
	collected := make([]string, 0, len(m))
	for key := range m { // flagged: collected but never sorted
		collected = append(collected, key)
	}
	_ = sum
	return strings.Join(out, ",") + strings.Join(collected, ",")
}

// Accepted holds every shape the check passes without a waiver.
func Accepted(m map[string]int) ([]string, []string, int) {
	// The canonical collect-and-sort idiom.
	keys := make([]string, 0, len(m))
	for key := range m {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	// Filtered collect-and-sort, with bookkeeping between loop and sort.
	big := make([]string, 0, len(m))
	for key, v := range m {
		if v > 10 {
			big = append(big, key)
		}
	}
	count := len(big)
	sort.Slice(big, func(i, j int) bool { return big[i] < big[j] })

	// Count-only ranges observe no order.
	n := 0
	for range m {
		n++
	}

	// Waived: the body only feeds an order-insensitive aggregate.
	total := 0
	//barter:allow maprange summation is commutative; no order reaches the result
	for _, v := range m {
		total += v
	}
	return keys, big, n + count + total
}
