// Package waiverstd seeds the waiver-machinery golden test: a waiver must
// name a known check, carry a reason, and actually cover a finding —
// otherwise the waiver itself is the violation, so the inventory of
// exemptions cannot rot.
package waiverstd

import "sort"

// Covered is a correct waiver: used, so silent.
func Covered(m map[string]int) int {
	n := 0
	//barter:allow maprange counting is order-insensitive
	for _, v := range m {
		n += v
	}
	return n
}

// Broken holds one of each waiver failure mode.
func Broken(m map[string]int) []string {
	//barter:allow maprange
	for k := range m { // the reason-less waiver does not cover this: both lines flagged
		delete(m, k+"x")
	}

	//barter:allow mapreange typo in the check name
	for k := range m { // unknown check: both lines flagged
		delete(m, k+"y")
	}

	//barter:allow maprange stale: the loop below collects and sorts, so nothing trips
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
