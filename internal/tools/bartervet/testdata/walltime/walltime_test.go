package walltimetd

import (
	"math/rand"
	"time"
)

// Unlike the other checks, walltime covers _test.go files too: a test that
// reads the wall clock or the unseeded global source is a flaky test. Both
// lines below must appear in the golden file.

// FlakyForTest draws from the global source at a wall-clock moment.
func FlakyForTest() int64 {
	return time.Now().UnixNano() + rand.Int63() // flagged twice
}

// SeededForTest is how the real test suites do it.
func SeededForTest() int64 {
	r := rand.New(rand.NewSource(42))
	return r.Int63()
}
