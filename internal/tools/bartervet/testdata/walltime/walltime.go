// Package walltimetd seeds the walltime analyzer's golden test.
package walltimetd

import (
	"math/rand"
	"time"
)

// Violations reads the wall clock and the global rand source.
func Violations() float64 {
	start := time.Now()                      // flagged
	time.Sleep(1)                            // flagged
	d := time.Since(start)                   // flagged
	deadline := time.After(time.Millisecond) // flagged
	<-deadline
	f := rand.Float64()                // flagged: global source
	n := rand.Intn(10)                 // flagged: global source
	rand.Shuffle(n, func(i, j int) {}) // flagged: global source
	return d.Seconds() + f + float64(n)
}

// Accepted uses explicitly seeded randomness and non-clock time helpers.
func Accepted(seed int64) (float64, time.Time) {
	r := rand.New(rand.NewSource(seed)) // seeded constructor: fine
	z := rand.NewZipf(r, 1.2, 1, 100)   // takes the seeded source: fine
	v := r.Float64() + float64(z.Uint64())

	var d time.Duration = time.Millisecond // the type and constants are fine
	_ = d

	//barter:allow walltime progress logging only; never feeds results
	t := time.Now()
	return v, t.Add(d)
}
