// Package ptrordertd seeds the ptrorder analyzer's golden test.
package ptrordertd

import (
	"fmt"
	"reflect"
	"sort"
	"unsafe"
)

// Node is a pointer-linked element whose address must never order anything.
type Node struct {
	Next *Node
	ID   int
}

// Violations observes pointer numeric values four ways.
func Violations(nodes []*Node) string {
	sort.Slice(nodes, func(i, j int) bool {
		return uintptr(unsafe.Pointer(nodes[i])) < uintptr(unsafe.Pointer(nodes[j])) // flagged twice
	})
	s := fmt.Sprintf("%p", nodes[0])                     // flagged: %p
	s += fmt.Sprintf("node at %+p", nodes[0])            // flagged: %+p counts too
	s += fmt.Sprint(reflect.ValueOf(nodes[0]).Pointer()) // flagged: reflect identity
	return s
}

// Accepted orders by identity the deterministic way and may escape a verb.
func Accepted(nodes []*Node) string {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	s := fmt.Sprintf("100%% of %d nodes", len(nodes)) // %% escape: fine
	s += fmt.Sprintf("%d", nodes[0].ID)               // ordinary verbs: fine
	s += fmt.Sprintf("escape it as %%p")              // literal %p via escape: fine

	//barter:allow ptrorder debug-only dump; never parsed back into state
	s += fmt.Sprintf("%p", nodes[0])
	return s
}
