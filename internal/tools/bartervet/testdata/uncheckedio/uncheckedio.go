// Package uncheckediotd seeds the unchecked-io analyzer's golden test.
package uncheckediotd

import (
	"bytes"
	"os"
	"strings"
)

// journal mimics the WAL shape: a homegrown type whose Write/Sync errors
// are durability.
type journal struct {
	f *os.File
}

func (j *journal) Write(p []byte) (int, error) { return j.f.Write(p) }
func (j *journal) Sync() error                 { return j.f.Sync() }
func (j *journal) Close()                      {} // no error result: never flagged

// Violations drops durability errors every way the check catches.
func Violations(f *os.File, j *journal, rec []byte) {
	f.Write(rec)        // flagged: bare write
	_, _ = f.Write(rec) // flagged: blank-discarded write
	_ = f.Sync()        // flagged: blank-discarded sync
	j.Write(rec)        // flagged: homegrown writer, bare
	defer f.Close()     // flagged: deferred close drops the error
}

// Accepted checks, visibly discards a close, or writes where failure is
// impossible.
func Accepted(f *os.File, j *journal, rec []byte) error {
	if _, err := f.Write(rec); err != nil {
		return err
	}
	_ = f.Close() // explicit, visible decision: fine
	j.Close()     // returns no error: fine

	var buf bytes.Buffer
	buf.Write(rec) // bytes.Buffer cannot fail: fine
	var sb strings.Builder
	sb.WriteString("x") // strings.Builder cannot fail: fine

	w, err := os.Create("out")
	if err != nil {
		return err
	}
	defer w.Close() //barter:allow unchecked-io teardown on the error path; the success path syncs and closes below
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	return w.Sync()
}
