package main

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// waiverPrefix introduces an inline suppression: `//barter:allow <check>
// <reason>` on the flagged line or the line directly above it. The reason
// is mandatory and free-form; it is the audit trail for why the contract
// does not bind at that site.
const waiverPrefix = "//barter:allow"

// waiver is one parsed suppression comment.
type waiver struct {
	file   string
	line   int
	check  string
	reason string
	bad    string // non-empty: the waiver itself is malformed
	used   bool
}

// finding is one pre-waiver diagnostic.
type finding struct {
	file  string
	line  int
	check string
	msg   string
}

// diags collects one unit's findings and matches them against the unit's
// waiver comments when reporting.
type diags struct {
	u       *unit
	check   string // name of the analyzer currently running
	ran     map[string]bool
	items   []finding
	waivers []*waiver
}

// newDiags scans the unit's comments for waivers and prepares a collector
// for the given check list.
func newDiags(u *unit, checks []string) *diags {
	d := &diags{u: u, ran: make(map[string]bool, len(checks))}
	for _, c := range checks {
		d.ran[c] = true
	}
	for _, f := range u.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				pos := u.fset.Position(c.Pos())
				w := &waiver{file: pos.Filename, line: pos.Line}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //barter:allowlist — not a waiver
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					w.bad = "waiver names no check"
				case analyzers[fields[0]] == nil:
					w.bad = fmt.Sprintf("waiver names unknown check %q", fields[0])
				case len(fields) < 2:
					w.bad = fmt.Sprintf("waiver for %s carries no reason", fields[0])
				default:
					w.check = fields[0]
					w.reason = strings.Join(fields[1:], " ")
				}
				d.waivers = append(d.waivers, w)
			}
		}
	}
	return d
}

// addf records a finding for the currently running check.
func (d *diags) addf(pos token.Pos, format string, args ...any) {
	p := d.u.fset.Position(pos)
	d.items = append(d.items, finding{
		file:  p.Filename,
		line:  p.Line,
		check: d.check,
		msg:   fmt.Sprintf(format, args...),
	})
}

// report matches findings against waivers and returns the surviving
// problems: unwaived findings, malformed waivers, and waivers no finding
// used (a stale waiver hides nothing and must be deleted).
func (d *diags) report() []string {
	var out []string
	for _, f := range d.items {
		if w := d.waiverFor(f); w != nil {
			w.used = true
			continue
		}
		out = append(out, fmt.Sprintf("%s:%d: %s: %s", f.file, f.line, f.check, f.msg))
	}
	for _, w := range d.waivers {
		if w.bad != "" {
			out = append(out, fmt.Sprintf("%s:%d: waiver: %s", w.file, w.line, w.bad))
			continue
		}
		if !w.used && d.ran[w.check] {
			out = append(out, fmt.Sprintf("%s:%d: waiver: nothing here trips %s; delete the stale waiver", w.file, w.line, w.check))
		}
	}
	sort.Strings(out)
	return out
}

// waiverFor returns the waiver covering a finding: same check, same file,
// on the finding's line or the line directly above it.
func (d *diags) waiverFor(f finding) *waiver {
	for _, w := range d.waivers {
		if w.bad == "" && w.check == f.check && w.file == f.file &&
			(w.line == f.line || w.line == f.line-1) {
			return w
		}
	}
	return nil
}
