package main

import (
	"go/ast"
	"go/types"
)

// ioMethods are the durability-relevant method names the check watches.
var ioMethods = map[string]bool{
	"Write": true, "WriteString": true, "Sync": true, "Flush": true, "Close": true,
}

// checkUncheckedIO flags dropped errors from Write/WriteString/Sync/Flush/
// Close calls in non-test files. On the mediator WAL and codec paths a
// swallowed write error is durability silently lost: the shard keeps
// acknowledging deposits it is no longer logging.
//
// The rules, from strictest to loosest:
//
//   - a bare statement, `defer`, or `go` dropping the error is always
//     flagged, Close included;
//   - blank-assigning a write-side error (`_, _ = f.Write(b)`, `_ =
//     f.Sync()`) is flagged too — the data is gone even though the discard
//     is visible;
//   - `_ = x.Close()` is accepted: an explicit, visible decision that a
//     close error (teardown, error-path cleanup) has nowhere to go;
//   - receivers whose Write cannot fail (bytes.Buffer, strings.Builder)
//     are exempt.
func checkUncheckedIO(u *unit, d *diags) {
	for _, f := range u.files {
		if u.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if name, ok := droppedIOCall(u, s.X); ok {
					d.addf(s.Pos(), "%s error dropped: check it, or waive with %s unchecked-io <reason>", name, waiverPrefix)
				}
			case *ast.DeferStmt:
				if name, ok := droppedIOCall(u, s.Call); ok {
					d.addf(s.Pos(), "deferred %s drops its error: wrap it to check, blank-assign inside a closure, or waive with %s unchecked-io <reason>", name, waiverPrefix)
				}
			case *ast.GoStmt:
				if name, ok := droppedIOCall(u, s.Call); ok {
					d.addf(s.Pos(), "go %s drops its error", name)
				}
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				name, ok := droppedIOCall(u, s.Rhs[0])
				if !ok || name == "Close" {
					return true // `_ = x.Close()` is an explicit, visible decision
				}
				// The error is the call's last result; flag only when that
				// position lands on the blank identifier.
				if len(s.Lhs) > 0 && isBlank(s.Lhs[len(s.Lhs)-1]) {
					d.addf(s.Pos(), "%s error blank-discarded: a lost write is lost durability — record it (degraded mode) or waive with %s unchecked-io <reason>", name, waiverPrefix)
				}
			}
			return true
		})
	}
}

// droppedIOCall reports whether expr is a watched io method call whose last
// result is an error, returning the method name.
func droppedIOCall(u *unit, expr ast.Expr) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !ioMethods[sel.Sel.Name] {
		return "", false
	}
	s, ok := u.info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	sig, ok := s.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return "", false
	}
	if neverFails(s.Recv()) {
		return "", false
	}
	return sel.Sel.Name, true
}

// neverFails exempts receivers documented to return nil errors always.
func neverFails(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}
