// Command bartervet enforces the engine determinism contract as part of
// `make lint`: the ROADMAP's rule that inside the deterministic packages no
// behavior may depend on map iteration order, pointer values, or wall time —
// the invariant behind byte-identical TSV for the same seed at any
// -parallel — plus the mediator-tier rule that durability-path I/O errors
// must never be swallowed.
//
// Usage:
//
//	bartervet [-checks maprange,walltime,ptrorder,unchecked-io] dir [dir...]
//
// Each argument is walked recursively for Go packages (testdata trees are
// skipped) and every package found is parsed and type-checked from source —
// go/parser + go/types via the stdlib source importer, so the module stays
// dependency-free and the tool runs hermetically under `go run`. The checks:
//
//   - maprange: a range over a map-typed value is an error unless the loop
//     only collects the keys into a slice that is sorted immediately after
//     (the canonical collect-and-sort idiom), because iteration order feeds
//     RNG draws and output order.
//   - walltime: time.Now, time.Since, time.Sleep and friends, and the
//     top-level math/rand functions that draw from the shared unseeded
//     global source, are forbidden. Seeded locals via rand.New(rand.
//     NewSource(...)) are fine. This check alone also covers _test.go
//     files: a test that reads the wall clock or the global source is a
//     flaky test.
//   - ptrorder: converting a pointer to uintptr, taking reflect pointer
//     identity, or formatting with %p — pointer values change run to run,
//     so any of them feeding an output or an ordering re-randomizes it.
//   - unchecked-io: a dropped error from Write/WriteString/Sync/Flush/Close
//     on the mediator WAL and codec paths, where a swallowed error is lost
//     durability. `_ = x.Close()` is accepted as an explicit, visible
//     decision; dropped write/sync errors and bare or deferred Closes are
//     not. Never-failing writers (bytes.Buffer, strings.Builder) are
//     exempt.
//
// A finding is silenced by a waiver comment on the flagged line or the line
// above:
//
//	//barter:allow <check> <reason>
//
// The reason is mandatory; a malformed waiver or one that no finding uses
// is itself an error, so the waiver inventory stays auditable and cannot
// rot. Diagnostics are listed one per line and the exit status is nonzero,
// so a contract regression fails the lint target instead of silently
// re-randomizing results.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// checkNames lists every analyzer in the order reports group naturally.
var checkNames = []string{"maprange", "walltime", "ptrorder", "unchecked-io"}

// analyzers maps a check name to its implementation. Each analyzer walks
// one type-checked unit and reports findings through the diags collector.
var analyzers = map[string]func(*unit, *diags){
	"maprange":     checkMapRange,
	"walltime":     checkWallTime,
	"ptrorder":     checkPtrOrder,
	"unchecked-io": checkUncheckedIO,
}

func main() {
	checksFlag := flag.String("checks", strings.Join(checkNames, ","), "comma-separated checks to run")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: bartervet [-checks list] dir [dir...]")
		os.Exit(2)
	}
	checks, err := parseChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bartervet:", err)
		os.Exit(2)
	}
	problems, err := run(checks, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bartervet:", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "bartervet: %d determinism-contract violations\n", len(problems))
		os.Exit(1)
	}
}

// parseChecks validates the -checks list against the known analyzers.
func parseChecks(list string) ([]string, error) {
	var checks []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if analyzers[name] == nil {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(checkNames, ", "))
		}
		checks = append(checks, name)
	}
	if len(checks) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return checks, nil
}

// run loads every package under the given roots, applies the selected
// checks, and returns the formatted, waiver-filtered findings sorted by
// position.
func run(checks []string, roots []string) ([]string, error) {
	loader := newLoader()
	var problems []string
	for _, root := range roots {
		dirs, err := goDirs(root)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			units, err := loader.load(dir)
			if err != nil {
				return nil, err
			}
			for _, u := range units {
				d := newDiags(u, checks)
				for _, name := range checks {
					d.check = name
					analyzers[name](u, d)
				}
				problems = append(problems, d.report()...)
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}
