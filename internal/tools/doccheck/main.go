// Command doccheck enforces documentation coverage as part of `make lint`.
//
// Usage:
//
//	doccheck [-exported] dir [dir...]
//
// Each argument is walked recursively for Go packages (testdata and test
// files are skipped). Every package found must carry a package doc comment.
// With -exported, every exported top-level declaration — funcs, methods on
// exported receivers, and each exported type, const, and var — must carry a
// doc comment too (a doc comment on a grouped const/var/type block covers
// the whole block). Violations are listed one per line and the exit status
// is nonzero, so godoc coverage regressions fail the lint target instead of
// rotting quietly.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	exported := flag.Bool("exported", false, "also require doc comments on every exported symbol")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-exported] dir [dir...]")
		os.Exit(2)
	}
	var problems []string
	for _, root := range flag.Args() {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			ps, err := checkDir(dir, *exported)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doccheck:", err)
				os.Exit(2)
			}
			problems = append(problems, ps...)
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented declarations\n", len(problems))
		os.Exit(1)
	}
}

// goDirs returns every directory under root that contains non-test Go
// files, skipping testdata trees.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one package directory and reports its documentation
// violations.
func checkDir(dir string, exported bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasDoc = true
			}
		}
		if !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, pkg.Name))
		}
		if !exported {
			continue
		}
		for name, f := range pkg.Files {
			problems = append(problems, checkFile(fset, name, f)...)
		}
	}
	return problems, nil
}

// checkFile reports every exported top-level declaration in one file that
// lacks a doc comment.
func checkFile(fset *token.FileSet, name string, f *ast.File) []string {
	var problems []string
	undocumented := func(pos token.Pos, what, sym string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, sym))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv := receiverType(d); recv != "" {
				if !ast.IsExported(recv) {
					continue // method on an unexported type: internal detail
				}
				undocumented(d.Pos(), "method", recv+"."+d.Name.Name)
			} else {
				undocumented(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			// A doc comment on the grouped block documents every member.
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil {
						undocumented(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							undocumented(n.Pos(), kindWord(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType names a method's receiver type, stripping pointers and
// generic type parameters.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.IndexExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// kindWord names a value declaration's kind for the report.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
