package perfstats

import (
	"strings"
	"testing"
)

// The counters are process-global; each test scopes itself with Reset.

func TestAddRunAndCurrent(t *testing.T) {
	Reset()
	AddRun(Snapshot{Runs: 1, Events: 100, RingSearches: 5, SearchNodesVisited: 50, SearchWantsChecked: 20, RingsStarted: 2})
	AddRun(Snapshot{Runs: 1, Events: 900, RingSearches: 5, SearchNodesVisited: 10, SearchWantsChecked: 30, RingsStarted: 1})
	got := Current()
	want := Snapshot{Runs: 2, Events: 1000, RingSearches: 10, SearchNodesVisited: 60, SearchWantsChecked: 50, RingsStarted: 3}
	if got != want {
		t.Fatalf("Current() = %+v, want %+v", got, want)
	}
	Reset()
	if got := Current(); got != (Snapshot{}) {
		t.Fatalf("Current() after Reset = %+v", got)
	}
}

func TestSub(t *testing.T) {
	a := Snapshot{Runs: 5, Events: 500, RingSearches: 50, SearchNodesVisited: 40, SearchWantsChecked: 30, RingsStarted: 20}
	b := Snapshot{Runs: 2, Events: 100, RingSearches: 10, SearchNodesVisited: 10, SearchWantsChecked: 10, RingsStarted: 5}
	got := a.Sub(b)
	want := Snapshot{Runs: 3, Events: 400, RingSearches: 40, SearchNodesVisited: 30, SearchWantsChecked: 20, RingsStarted: 15}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}

// TestTimerScopesInterval: a timer started after some activity reports only
// what happened since.
func TestTimerScopesInterval(t *testing.T) {
	Reset()
	AddRun(Snapshot{Runs: 1, Events: 11111})
	timer := StartTimer()
	AddRun(Snapshot{Runs: 1, Events: 42, RingSearches: 7, RingsStarted: 3})
	rep := timer.Report()
	for _, want := range []string{"1 run(s)", "events     42", "searches   7", "3 rings started", "alloc"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "11111") {
		t.Fatalf("report leaked pre-timer events:\n%s", rep)
	}
}

func TestRate(t *testing.T) {
	if got := rate(100, 2); got != 50 {
		t.Fatalf("rate(100, 2) = %g", got)
	}
	if got := rate(100, 0); got != 0 {
		t.Fatalf("rate with zero wall = %g", got)
	}
}

func TestBytesHuman(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{512, "512 B"},
		{2 << 10, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, tc := range cases {
		if got := bytesHuman(tc.n); got != tc.want {
			t.Fatalf("bytesHuman(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
