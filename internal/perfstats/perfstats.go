// Package perfstats aggregates engine performance counters across
// simulation runs: events executed, ring-search traversal effort, and (via
// the runtime) allocation totals. Counters are process-global and atomic so
// the parallel experiment runner's workers can publish without coordination,
// and the engine publishes once per completed run — the hot path itself is
// never touched, so enabling the report cannot perturb deterministic output.
//
// cmd/exchsim surfaces a report through its -perf flag; cmd/benchjson feeds
// the benchmark trajectory (BENCH_*.json) from the same numbers.
package perfstats

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"
)

// Snapshot is one consistent view of the aggregated counters.
type Snapshot struct {
	// Runs counts completed simulation runs.
	Runs uint64
	// Events counts discrete events executed.
	Events uint64
	// RingSearches counts ring searches; SearchNodesVisited and
	// SearchWantsChecked aggregate their traversal cost.
	RingSearches       uint64
	SearchNodesVisited uint64
	SearchWantsChecked uint64
	// RingsStarted counts rings that passed validation and started.
	RingsStarted uint64
	// Domains, Barriers, and CrossMsgs describe sharded runs: event-loop
	// domains driven, epoch barriers crossed, and cross-partition mailbox
	// messages applied. All three stay zero for single-threaded runs.
	Domains   uint64
	Barriers  uint64
	CrossMsgs uint64
	// MedRPCs counts mediator RPCs issued through the pipelined client;
	// MedRPCPeak is the peak number concurrently in flight (the achieved
	// pipeline depth). StripesGranted and StripesReassigned count mediated
	// download stripes assigned to origins and reassigned after a stall or
	// failed audit. These four are live-stack counters published as they
	// happen rather than folded in per run.
	MedRPCs           uint64
	MedRPCPeak        uint64
	StripesGranted    uint64
	StripesReassigned uint64
}

var global struct {
	runs, events             atomic.Uint64
	searches, nodes, wants   atomic.Uint64
	rings                    atomic.Uint64
	domains, barriers, xmsgs atomic.Uint64

	medRPCs, medInflight, medPeak atomic.Uint64
	stripesGranted, stripesReass  atomic.Uint64
}

// MedRPCStart records a mediator RPC entering flight, maintaining the peak
// concurrent depth; pair every call with MedRPCDone.
func MedRPCStart() {
	global.medRPCs.Add(1)
	depth := global.medInflight.Add(1)
	for {
		peak := global.medPeak.Load()
		if depth <= peak || global.medPeak.CompareAndSwap(peak, depth) {
			return
		}
	}
}

// MedRPCDone records a mediator RPC leaving flight.
func MedRPCDone() {
	global.medInflight.Add(^uint64(0))
}

// AddStripeGranted counts a mediated download stripe assigned to an origin.
func AddStripeGranted() { global.stripesGranted.Add(1) }

// AddStripeReassigned counts a stripe taken from a failed or departed origin
// and offered for reassignment.
func AddStripeReassigned() { global.stripesReass.Add(1) }

// AddRun folds one run's counters into the global aggregate.
func AddRun(s Snapshot) {
	global.runs.Add(s.Runs)
	global.events.Add(s.Events)
	global.searches.Add(s.RingSearches)
	global.nodes.Add(s.SearchNodesVisited)
	global.wants.Add(s.SearchWantsChecked)
	global.rings.Add(s.RingsStarted)
	global.domains.Add(s.Domains)
	global.barriers.Add(s.Barriers)
	global.xmsgs.Add(s.CrossMsgs)
}

// Current returns the aggregate since process start (or the last Reset).
func Current() Snapshot {
	return Snapshot{
		Runs:               global.runs.Load(),
		Events:             global.events.Load(),
		RingSearches:       global.searches.Load(),
		SearchNodesVisited: global.nodes.Load(),
		SearchWantsChecked: global.wants.Load(),
		RingsStarted:       global.rings.Load(),
		Domains:            global.domains.Load(),
		Barriers:           global.barriers.Load(),
		CrossMsgs:          global.xmsgs.Load(),
		MedRPCs:            global.medRPCs.Load(),
		MedRPCPeak:         global.medPeak.Load(),
		StripesGranted:     global.stripesGranted.Load(),
		StripesReassigned:  global.stripesReass.Load(),
	}
}

// Reset zeroes the aggregate. Tests and report sections use it to scope
// measurements.
func Reset() {
	global.runs.Store(0)
	global.events.Store(0)
	global.searches.Store(0)
	global.nodes.Store(0)
	global.wants.Store(0)
	global.rings.Store(0)
	global.domains.Store(0)
	global.barriers.Store(0)
	global.xmsgs.Store(0)
	global.medRPCs.Store(0)
	global.medInflight.Store(0)
	global.medPeak.Store(0)
	global.stripesGranted.Store(0)
	global.stripesReass.Store(0)
}

// Sub returns s - t field-wise; use it to scope a Snapshot to an interval.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		Runs:               s.Runs - t.Runs,
		Events:             s.Events - t.Events,
		RingSearches:       s.RingSearches - t.RingSearches,
		SearchNodesVisited: s.SearchNodesVisited - t.SearchNodesVisited,
		SearchWantsChecked: s.SearchWantsChecked - t.SearchWantsChecked,
		RingsStarted:       s.RingsStarted - t.RingsStarted,
		Domains:            s.Domains - t.Domains,
		Barriers:           s.Barriers - t.Barriers,
		CrossMsgs:          s.CrossMsgs - t.CrossMsgs,
		MedRPCs:            s.MedRPCs - t.MedRPCs,
		MedRPCPeak:         s.MedRPCPeak, // a peak is not a delta; report the interval's high-water mark
		StripesGranted:     s.StripesGranted - t.StripesGranted,
		StripesReassigned:  s.StripesReassigned - t.StripesReassigned,
	}
}

// Timer scopes a measurement interval: construct with StartTimer before the
// work, call Report after it.
type Timer struct {
	start   time.Time
	base    Snapshot
	memBase runtime.MemStats
}

// StartTimer snapshots the counters, the wall clock, and the allocator.
func StartTimer() *Timer {
	t := &Timer{start: time.Now(), base: Current()}
	runtime.ReadMemStats(&t.memBase)
	return t
}

// Report renders a human-readable digest of everything since StartTimer:
// throughput (events/sec of wall time), search effort, and allocation load.
func (t *Timer) Report() string {
	wall := time.Since(t.start).Seconds()
	s := Current().Sub(t.base)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	allocBytes := mem.TotalAlloc - t.memBase.TotalAlloc
	allocObjs := mem.Mallocs - t.memBase.Mallocs

	var b strings.Builder
	fmt.Fprintf(&b, "perf: %d run(s) in %.2fs wall\n", s.Runs, wall)
	fmt.Fprintf(&b, "perf: events     %d (%.0f events/s)\n", s.Events, rate(s.Events, wall))
	fmt.Fprintf(&b, "perf: searches   %d (%d nodes visited, %d want probes, %d rings started)\n",
		s.RingSearches, s.SearchNodesVisited, s.SearchWantsChecked, s.RingsStarted)
	if s.Domains > 0 {
		fmt.Fprintf(&b, "perf: shards     %d domain(s), %d barrier(s), %d cross-partition msg(s)\n",
			s.Domains, s.Barriers, s.CrossMsgs)
	}
	if s.MedRPCs > 0 {
		fmt.Fprintf(&b, "perf: mediator   %d RPC(s), pipeline depth peak %d\n", s.MedRPCs, s.MedRPCPeak)
	}
	if s.StripesGranted > 0 {
		fmt.Fprintf(&b, "perf: stripes    %d granted, %d reassigned\n", s.StripesGranted, s.StripesReassigned)
	}
	fmt.Fprintf(&b, "perf: alloc      %d objects, %s", allocObjs, bytesHuman(allocBytes))
	if s.Events > 0 {
		fmt.Fprintf(&b, " (%.2f objects/event)", float64(allocObjs)/float64(s.Events))
	}
	b.WriteByte('\n')
	return b.String()
}

func rate(n uint64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(n) / secs
}

func bytesHuman(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
