package strategy

import (
	"testing"

	"barter/internal/rng"
)

func TestCanonicalStrategiesValid(t *testing.T) {
	for _, s := range []Strategy{Sharing(), NonSharing(), AdaptiveFreerider(), Whitewasher(), PartialSharer(), Corrupt()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	labels := CanonicalLabels()
	if len(labels) != 6 {
		t.Fatalf("CanonicalLabels = %v", labels)
	}
}

func TestStrategyValidateRejects(t *testing.T) {
	cases := map[string]Strategy{
		"empty name":         {},
		"bad frac":           {Name: "x", UploadSlotFrac: 1.5},
		"frac on non-sharer": {Name: "x", UploadSlotFrac: 0.5},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestSlotCap(t *testing.T) {
	cases := []struct {
		frac  float64
		slots int
		want  int
	}{
		{0, 8, 8},     // unset: full capacity
		{1, 8, 8},     // full fraction
		{0.25, 8, 2},  // quarter of 8
		{0.25, 4, 1},  // rounds to 1
		{0.25, 1, 1},  // never below one slot
		{0.1, 2, 1},   // floor at one
		{0.9, 2, 2},   // rounds up to full
		{0.5, 10, 5},  // exact half
		{0.26, 10, 3}, // round-to-nearest
	}
	for _, c := range cases {
		s := Strategy{Name: "x", Share: true, UploadSlotFrac: c.frac}
		if got := s.SlotCap(c.slots); got != c.want {
			t.Fatalf("SlotCap(frac=%g, slots=%d) = %d, want %d", c.frac, c.slots, got, c.want)
		}
	}
}

func TestMixValidate(t *testing.T) {
	if err := LegacyMix(0.5).Validate(); err != nil {
		t.Fatalf("legacy mix invalid: %v", err)
	}
	bad := []Mix{
		{},
		{{Strategy: Sharing(), Frac: 0.5}}, // sums to 0.5
		{{Strategy: Sharing(), Frac: 0.5}, {Strategy: Sharing(), Frac: 0.5}},     // duplicate label
		{{Strategy: Sharing(), Frac: -0.1}, {Strategy: NonSharing(), Frac: 1.1}}, // out of range
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad mix %d accepted", i)
		}
	}
}

// TestCountsMatchLegacyRounding pins the byte-identity contract: for the
// two-class legacy mix, Counts must reproduce round(frac*n) free-riders for
// every fraction and population size the figures sweep.
func TestCountsMatchLegacyRounding(t *testing.T) {
	for _, n := range []int{2, 3, 30, 200, 201} {
		for _, frac := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 1} {
			counts := LegacyMix(frac).Counts(n)
			wantFree := int(frac*float64(n) + 0.5)
			if counts[0] != wantFree || counts[1] != n-wantFree {
				t.Fatalf("n=%d frac=%g: counts = %v, want [%d %d]", n, frac, counts, wantFree, n-wantFree)
			}
		}
	}
}

func TestCountsTotalAndSlack(t *testing.T) {
	m := Mix{
		{Strategy: AdaptiveFreerider(), Frac: 1.0 / 3},
		{Strategy: Whitewasher(), Frac: 1.0 / 3},
		{Strategy: Sharing(), Frac: 1.0 / 3},
	}
	for _, n := range []int{1, 2, 7, 100} {
		total := 0
		for _, c := range m.Counts(n) {
			total += c
		}
		if total != n {
			t.Fatalf("n=%d: counts %v total %d", n, m.Counts(n), total)
		}
	}
}

// TestAssignMatchesLegacyDraw pins that a legacy mix assigned through the
// same permutation marks exactly the peers the historical free-rider draw
// marked.
func TestAssignMatchesLegacyDraw(t *testing.T) {
	n, frac := 30, 0.5
	r := rng.New(42)
	perm := r.Perm(n)

	// Historical assignment: first round(frac*n) permutation entries free-ride.
	nFree := int(frac*float64(n) + 0.5)
	wantFree := make([]bool, n)
	for i, p := range perm {
		if i < nFree {
			wantFree[p] = true
		}
	}

	classOf := LegacyMix(frac).Assign(perm)
	for id := 0; id < n; id++ {
		gotFree := classOf[id] == 0 // class 0 is non-sharing in the legacy mix
		if gotFree != wantFree[id] {
			t.Fatalf("peer %d: class %d, wantFree=%v", id, classOf[id], wantFree[id])
		}
	}
}

func TestAssignCoversAllClasses(t *testing.T) {
	m := Mix{
		{Strategy: PartialSharer(), Frac: 0.25},
		{Strategy: NonSharing(), Frac: 0.25},
		{Strategy: Sharing(), Frac: 0.5},
	}
	perm := rng.New(7).Perm(40)
	classOf := m.Assign(perm)
	counts := make([]int, len(m))
	for _, c := range classOf {
		counts[c]++
	}
	want := m.Counts(40)
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("class %d: assigned %d, want %d", i, counts[i], want[i])
		}
	}
}
