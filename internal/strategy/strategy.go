// Package strategy defines the declarative peer-behavior model shared by the
// discrete-event simulator (internal/sim) and the live swarm harness
// (internal/swarm): what a peer contributes, how it cheats, and how it
// manages its identity. Both layers consume the same Strategy values, so an
// experiment figure and a live-network scenario report the same class labels
// from the same source of truth.
//
// A Strategy is purely declarative — it carries no timing or engine state.
// Each layer supplies its own clocks (the simulator in virtual seconds, the
// swarm in wall time) and interprets the flags with its own machinery:
//
//   - Share: the peer serves others from the start. Share false is the
//     classic free-rider of the paper's Table II.
//   - UploadSlotFrac: a sharer that throttles its upload capacity to a
//     fraction of the configured slots (the "partial sharer" adversary).
//   - Adaptive: contributes only while refused — the peer starts as a
//     free-rider and begins serving once its own downloads starve, the
//     canonical probe of whether an incentive scheme coerces contribution.
//   - Whitewash: periodically sheds its identity (and with it any
//     reputation or credit state) and rejoins fresh — the canonical attack
//     on history-based incentive schemes.
//   - Corrupt: serves junk payloads (live swarm only; the simulator does not
//     model block validation).
//
// A population is a Mix: an ordered list of weighted classes. Mix.Counts and
// Mix.Assign turn a mix plus a random permutation into a deterministic
// class assignment; LegacyMix reproduces the paper's two-class
// sharing/non-sharing split exactly, so refactored callers keep
// byte-identical output.
package strategy

import (
	"fmt"
	"math"
)

// Canonical class labels. These strings are the series names that appear in
// figure TSV ("<policy>/<label>") and swarm TSV ("live/<label>").
const (
	LabelSharing     = "sharing"
	LabelNonSharing  = "non-sharing"
	LabelAdaptive    = "adaptive"
	LabelWhitewasher = "whitewasher"
	LabelPartial     = "partial"
	LabelCorrupt     = "corrupt"
)

// Strategy is one peer-behavior class.
type Strategy struct {
	// Name labels the class in results; canonical strategies use the Label*
	// constants.
	Name string
	// Share marks the peer as a contributor from the start.
	Share bool
	// UploadSlotFrac, when in (0, 1), throttles the peer's upload slots to
	// that fraction of the configured capacity (at least one slot). Zero or
	// >= 1 means full capacity.
	UploadSlotFrac float64
	// Adaptive peers contribute only while refused: they start without
	// sharing and begin serving when their own downloads starve.
	Adaptive bool
	// Whitewash peers periodically shed their identity (dropping their
	// queue positions, pending downloads, and any reputation/credit state)
	// and rejoin fresh.
	Whitewash bool
	// Corrupt peers serve junk payloads (live swarm only).
	Corrupt bool
}

// SlotCap returns the number of upload slots the strategy grants out of the
// configured per-peer slots: full capacity unless UploadSlotFrac throttles
// it, and never below one slot.
func (s Strategy) SlotCap(slots int) int {
	if s.UploadSlotFrac <= 0 || s.UploadSlotFrac >= 1 {
		return slots
	}
	c := int(s.UploadSlotFrac*float64(slots) + 0.5)
	if c < 1 {
		c = 1
	}
	if c > slots {
		c = slots
	}
	return c
}

// Validate reports the first problem with the strategy definition, if any.
func (s Strategy) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("strategy: empty class name")
	}
	if s.UploadSlotFrac < 0 || s.UploadSlotFrac > 1 {
		return fmt.Errorf("strategy %q: UploadSlotFrac %g outside [0, 1]", s.Name, s.UploadSlotFrac)
	}
	if s.UploadSlotFrac > 0 && s.UploadSlotFrac < 1 && !s.Share {
		return fmt.Errorf("strategy %q: UploadSlotFrac set on a non-sharing class", s.Name)
	}
	return nil
}

// The canonical strategies.

// Sharing is the paper's contributing peer.
func Sharing() Strategy { return Strategy{Name: LabelSharing, Share: true} }

// NonSharing is the paper's static free-rider: it shares nothing, ever.
func NonSharing() Strategy { return Strategy{Name: LabelNonSharing} }

// AdaptiveFreerider contributes only while refused: it free-rides until its
// own downloads starve, serves while starved, and stops once served.
func AdaptiveFreerider() Strategy { return Strategy{Name: LabelAdaptive, Adaptive: true} }

// Whitewasher is a free-rider that periodically rejoins under a fresh
// identity to shed reputation/credit state.
func Whitewasher() Strategy { return Strategy{Name: LabelWhitewasher, Whitewash: true} }

// PartialSharer contributes through a quarter of the configured upload
// slots: nominally a sharer, materially a throttler.
func PartialSharer() Strategy {
	return Strategy{Name: LabelPartial, Share: true, UploadSlotFrac: 0.25}
}

// Corrupt is a contributor that serves junk payloads (live swarm only).
func Corrupt() Strategy { return Strategy{Name: LabelCorrupt, Share: true, Corrupt: true} }

// CanonicalLabels lists every built-in class label in presentation order;
// result tables that enumerate classes dynamically use this order so columns
// stay stable across scenarios.
func CanonicalLabels() []string {
	return []string{LabelSharing, LabelNonSharing, LabelAdaptive, LabelWhitewasher, LabelPartial, LabelCorrupt}
}

// Class is one weighted entry of a population mix.
type Class struct {
	Strategy
	// Frac is the fraction of the population assigned to this class.
	Frac float64
}

// Mix is an ordered population mix. Order matters: class counts are assigned
// to the leading positions of the run's random permutation in mix order, so
// the same mix always produces the same assignment from the same draw.
type Mix []Class

// LegacyMix is the paper's two-class population: freeriderFrac of the peers
// share nothing, the rest share. The non-sharing class comes first so the
// assignment consumes the run permutation exactly as the historical
// free-rider draw did, keeping refactored output byte-identical.
func LegacyMix(freeriderFrac float64) Mix {
	return Mix{
		{Strategy: NonSharing(), Frac: freeriderFrac},
		{Strategy: Sharing(), Frac: 1 - freeriderFrac},
	}
}

// Validate reports the first problem with the mix, if any: no classes,
// invalid strategies, duplicate labels, fractions outside [0, 1], or
// fractions not summing to one.
func (m Mix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("strategy: empty mix")
	}
	seen := make(map[string]bool, len(m))
	sum := 0.0
	for _, c := range m {
		if err := c.Strategy.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("strategy: duplicate class %q in mix", c.Name)
		}
		seen[c.Name] = true
		if c.Frac < 0 || c.Frac > 1 {
			return fmt.Errorf("strategy: class %q fraction %g outside [0, 1]", c.Name, c.Frac)
		}
		sum += c.Frac
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("strategy: mix fractions sum to %g, want 1", sum)
	}
	return nil
}

// Counts apportions n peers over the mix by cumulative rounding: class k
// receives round(cum_k*n) - round(cum_{k-1}*n) peers, and the last class
// absorbs any rounding slack so the counts always total n. For a two-class
// mix this reproduces the historical round(frac*n) free-rider count exactly.
func (m Mix) Counts(n int) []int {
	counts := make([]int, len(m))
	cum := 0.0
	prev := 0
	for i, c := range m {
		cum += c.Frac
		bound := int(cum*float64(n) + 0.5)
		if i == len(m)-1 {
			bound = n
		}
		if bound < prev {
			bound = prev
		}
		if bound > n {
			bound = n
		}
		counts[i] = bound - prev
		prev = bound
	}
	return counts
}

// Assign maps each peer position to its class index: the first Counts[0]
// entries of perm get class 0, the next Counts[1] get class 1, and so on.
// perm is a permutation of [0, n) (typically rng.Perm), so peer ids carry no
// class information.
func (m Mix) Assign(perm []int) []int {
	classOf := make([]int, len(perm))
	counts := m.Counts(len(perm))
	class, used := 0, 0
	for _, p := range perm {
		for class < len(counts) && used >= counts[class] {
			class++
			used = 0
		}
		classOf[p] = class
		used++
	}
	return classOf
}
