package mediator

import (
	"os"
	"path/filepath"
	"testing"

	"barter/internal/core"
)

func replayAll(t *testing.T, path string) ([]walDeposit, map[core.PeerID]uint32) {
	t.Helper()
	var deps []walDeposit
	flags := make(map[core.PeerID]uint32)
	w, err := openWAL(path,
		func(d walDeposit) { deps = append(deps, d) },
		func(p core.PeerID, n uint32) { flags[p] += n },
	)
	if err != nil {
		t.Fatalf("openWAL replay: %v", err)
	}
	w.Close()
	return deps, flags
}

func TestWALReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0.wal")
	w, err := openWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := walDeposit{exchange: 7, sender: 3, object: 9, key: [16]byte{1, 2, 3}}
	w.appendDeposit(want)
	w.appendFlag(5, 2)
	w.appendFlag(5, 1)
	w.Close()

	deps, flags := replayAll(t, path)
	if len(deps) != 1 || deps[0] != want {
		t.Fatalf("replayed deposits %+v, want [%+v]", deps, want)
	}
	if flags[5] != 3 {
		t.Fatalf("replayed flag count %d, want 3", flags[5])
	}
}

func TestWALTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-1.wal")
	w, err := openWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.appendDeposit(walDeposit{exchange: 1, sender: 2, object: 3})
	w.Close()
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a record header with no payload.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{walTypFlag, 0xAA}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	deps, _ := replayAll(t, path)
	if len(deps) != 1 {
		t.Fatalf("replay after torn tail found %d deposits, want 1", len(deps))
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != intact.Size() {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", after.Size(), intact.Size())
	}

	// The log must keep working after the repair.
	w2, err := openWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w2.appendFlag(9, 1)
	w2.Close()
	deps, flags := replayAll(t, path)
	if len(deps) != 1 || flags[9] != 1 {
		t.Fatalf("append after repair lost records: deposits=%d flags=%v", len(deps), flags)
	}
}

func TestWALDropsCorruptRecordAndTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-2.wal")
	w, err := openWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.appendFlag(1, 1)
	w.appendFlag(2, 1)
	w.Close()
	// Flip a payload byte inside the first record: its checksum fails, and
	// replay must stop there — the second record is unreachable without
	// trusting a corrupt length chain.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, flags := replayAll(t, path)
	if len(flags) != 0 {
		t.Fatalf("corrupt record replayed: %v", flags)
	}
}

// TestWALAppendFailureSurfaces pins the degraded-durability contract: an
// append that cannot reach the file keeps the shard serving, but the first
// error is remembered and every lost record counted — never silently
// swallowed (the unchecked-io contract in docs/DETERMINISM.md).
func TestWALAppendFailureSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0.wal")
	w, err := openWAL(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.Err() != nil {
		t.Fatalf("fresh wal already degraded: %v", w.Err())
	}
	// Close the file out from under the log: every subsequent append must
	// fail the way a revoked fd or torn-down filesystem would make it fail.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	w.appendFlag(1, 1)
	w.appendDeposit(walDeposit{exchange: 1, sender: 2, object: 3})
	if w.Err() == nil {
		t.Fatal("append onto a closed file reported no error")
	}
	if w.dropped != 2 {
		t.Fatalf("dropped = %d, want 2", w.dropped)
	}
	// A nil wal (no DataDir) is never degraded.
	if (*wal)(nil).Err() != nil {
		t.Fatal("nil wal reported an error")
	}
}

func TestReadWALStateMissingFile(t *testing.T) {
	deps, flags, err := readWALState(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil {
		t.Fatalf("missing file: %v", err)
	}
	if len(deps) != 0 || len(flags) != 0 {
		t.Fatalf("missing file yielded state: %v %v", deps, flags)
	}
}
