package mediator

import (
	"sort"
	"sync"

	"barter/internal/catalog"
)

// Consistent hashing over object IDs partitions the mediator tier: every
// shard projects a fixed set of virtual points onto a hash ring, an object
// hashes to a point on the same ring, and the object's primary shard is the
// first virtual point clockwise. The replica — the shard a client fails
// over to when the primary dies mid-verify — is the next distinct shard
// clockwise, so each shard's failover load spreads over the whole tier
// instead of piling onto one neighbor. The mapping is a pure function of
// (object, shard count): every client and every shard agrees on ownership
// without coordination, and growing the tier moves only the arcs adjacent
// to the new shard's points.

// vnodesPerShard is the virtual-point count per shard; enough to keep the
// per-shard load imbalance in the low percent range at small tiers.
const vnodesPerShard = 64

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit hash
// that is identical on every platform (no seed, no architecture variance),
// which the ownership contract above requires.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ringCache memoizes the sorted ring per shard count; tiers are small and
// counts few, so the cache never grows past a handful of entries.
var ringCache sync.Map // int -> []ringPoint

func ringFor(count int) []ringPoint {
	if v, ok := ringCache.Load(count); ok {
		return v.([]ringPoint)
	}
	pts := make([]ringPoint, 0, count*vnodesPerShard)
	for s := 0; s < count; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			pts = append(pts, ringPoint{hash: mix64(uint64(s)<<32 | uint64(v)), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard // deterministic even on collision
	})
	ringCache.Store(count, pts)
	return pts
}

// ShardFor maps obj onto the hash ring of a count-shard tier, returning the
// primary owner and its replica. A tier of one (or fewer) shards trivially
// owns everything.
func ShardFor(obj catalog.ObjectID, count int) (primary, replica int) {
	if count <= 1 {
		return 0, 0
	}
	pts := ringFor(count)
	h := mix64(uint64(uint32(obj)))
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	primary = pts[i].shard
	for j := 1; j < len(pts); j++ {
		if p := pts[(i+j)%len(pts)]; p.shard != primary {
			return primary, p.shard
		}
	}
	return primary, primary
}
