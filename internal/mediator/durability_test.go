package mediator_test

import (
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/protocol"
	"barter/internal/testutil"
	"barter/internal/transport"
)

// durableFixture starts an n-shard cluster with a write-ahead log under dir;
// the oracle knows objects 1..64 (one block each, content derived from id).
func durableFixture(t *testing.T, n int, dir string) (*transport.Mem, *mediator.Cluster, func(catalog.ObjectID) []byte) {
	t.Helper()
	tr := transport.NewMem()
	content := func(o catalog.ObjectID) []byte { return []byte{byte(o), 0xCD, byte(o >> 8)} }
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) {
		if o < 1 || o > 64 {
			return nil, false
		}
		return [][32]byte{sha256.Sum256(content(o))}, true
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "mem://dmed-" + string(rune('a'+i))
	}
	cl, err := mediator.NewClusterOpts(tr, addrs, oracle, mediator.ClusterOpts{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return tr, cl, content
}

// flagCheater runs a junk audit through the client so the tier flags peer.
func flagCheater(t *testing.T, c *medclient.Client, cheater core.PeerID, obj catalog.ObjectID, ex uint64) {
	t.Helper()
	var key [16]byte
	copy(key[:], "cheater-key-....")
	if err := c.Deposit(ex, cheater, obj, key); err != nil {
		t.Fatal(err)
	}
	sealed, err := mediator.Seal(key, cheater, 20, obj, 0, []byte("junk"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(ex, 20, cheater, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}}); !errors.Is(err, medclient.ErrRejected) {
		t.Fatalf("junk passed the audit: %v", err)
	}
}

// TestShardRecoveryMidEscrow kills a shard between deposit and verify and
// restarts it from its log: both the escrowed key and the previously flagged
// cheater must be intact — the tentpole's core promise.
func TestShardRecoveryMidEscrow(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	tr, cl, content := durableFixture(t, 2, t.TempDir())
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const cheater core.PeerID = 66
	flagCheater(t, c, cheater, 7, 700)
	if cl.Flagged(cheater) == 0 {
		t.Fatal("cheater not flagged before the restart")
	}

	obj := catalog.ObjectID(3)
	const sender, receiver core.PeerID = 4, 5
	var key [16]byte
	copy(key[:], "durable-key-....")
	if err := c.Deposit(321, sender, obj, key); err != nil {
		t.Fatal(err)
	}
	// Restart every shard: in-memory state is gone everywhere; only the
	// logs remain. Without a DataDir this exact sequence yields ErrNoKey
	// (see TestClusterRestartLosesEscrowWithoutFlagging).
	for i := 0; i < cl.Shards(); i++ {
		if err := cl.RestartShard(i); err != nil {
			t.Fatal(err)
		}
	}
	sealed, err := mediator.Seal(key, sender, receiver, obj, 0, content(obj))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Verify(321, receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
	if err != nil {
		t.Fatalf("verify after full-tier restart: %v", err)
	}
	if got != key {
		t.Fatal("replayed escrow released the wrong key")
	}
	if cl.Flagged(cheater) == 0 {
		t.Fatal("restart forgot the flagged cheater")
	}
	if cl.Flagged(sender) != 0 {
		t.Fatal("honest sender flagged across restart")
	}
}

// TestClusterRestartRecoversFromLog tears the whole cluster down and builds
// a new one over the same data dir — the library-level equivalent of a
// mediatord process restart. Detection history must carry over.
func TestClusterRestartRecoversFromLog(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	dir := t.TempDir()
	tr, cl, _ := durableFixture(t, 2, dir)
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	const cheater core.PeerID = 77
	flagCheater(t, c, cheater, 9, 900)
	c.Close()
	cl.Close()

	_, cl2, content := durableFixture(t, 2, dir)
	if cl2.Flagged(cheater) == 0 {
		t.Fatal("new cluster over the same data dir forgot the cheater")
	}
	// The escrow from the junk exchange also survived: the same verify now
	// still rejects (key is present, samples still junk) rather than
	// refusing with no-key.
	_ = content
}

// TestFlagReplicationSurvivesAuditorLoss flags a cheater on the object's
// primary, then kills that primary before any restart: the write-through
// flag copy on the replica must keep the tier-wide count nonzero. No data
// dir — this is the replication path, not the log.
func TestFlagReplicationSurvivesAuditorLoss(t *testing.T) {
	tr, cl, _ := clusterFixture(t, 4)
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const cheater core.PeerID = 88
	obj := catalog.ObjectID(5)
	flagCheater(t, c, cheater, obj, 999)

	// Replication is asynchronous: wait for the replica's copy.
	primary, replica := mediator.ShardFor(obj, 4)
	deadline := time.Now().Add(2 * time.Second)
	for cl.Shard(replica).Flagged(cheater) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flag never replicated to the replica shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cl.KillShard(primary)
	if cl.Flagged(cheater) == 0 {
		t.Fatal("killing the auditing shard erased the only flag copy")
	}
}

// TestAddShardMigratesArcs grows the tier mid-run: previously deposited
// escrow whose arcs moved to the new shard must still verify, and the epoch
// must advance so clients refetch the map.
func TestAddShardMigratesArcs(t *testing.T) {
	tr, cl, content := durableFixture(t, 2, t.TempDir())
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const sender, receiver core.PeerID = 10, 20
	keys := make(map[catalog.ObjectID][16]byte)
	for obj := catalog.ObjectID(1); obj <= 32; obj++ {
		var key [16]byte
		key[0], key[1] = byte(obj), 0x5A
		keys[obj] = key
		if err := c.Deposit(uint64(obj), sender, obj, key); err != nil {
			t.Fatalf("deposit %d: %v", obj, err)
		}
	}

	before := cl.Epoch()
	if err := cl.AddShard("mem://dmed-grow"); err != nil {
		t.Fatal(err)
	}
	if cl.Shards() != 3 {
		t.Fatalf("tier size %d after grow, want 3", cl.Shards())
	}
	if cl.Epoch() <= before {
		t.Fatalf("epoch did not advance across AddShard: %d -> %d", before, cl.Epoch())
	}

	moved := 0
	for obj := catalog.ObjectID(1); obj <= 32; obj++ {
		if p, r := mediator.ShardFor(obj, 3); p == 2 || r == 2 {
			moved++
		}
		sealed, err := mediator.Seal(keys[obj], sender, receiver, obj, 0, content(obj))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(uint64(obj), receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
		if err != nil {
			t.Fatalf("verify %d after grow: %v", obj, err)
		}
		if got != keys[obj] {
			t.Fatalf("verify %d released the wrong key after grow", obj)
		}
	}
	if moved == 0 {
		t.Fatal("no arcs moved to the new shard; the migration path was not exercised")
	}
}

// TestRemoveShardMigratesState shrinks the tier: escrow and flags held by
// the departing shard must land on the survivors.
func TestRemoveShardMigratesState(t *testing.T) {
	tr, cl, content := durableFixture(t, 3, t.TempDir())
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const sender, receiver core.PeerID = 10, 20
	keys := make(map[catalog.ObjectID][16]byte)
	for obj := catalog.ObjectID(1); obj <= 32; obj++ {
		var key [16]byte
		key[0], key[1] = byte(obj), 0xC3
		keys[obj] = key
		if err := c.Deposit(uint64(obj), sender, obj, key); err != nil {
			t.Fatalf("deposit %d: %v", obj, err)
		}
	}
	const cheater core.PeerID = 99
	flagCheater(t, c, cheater, 11, 1100)

	before := cl.Epoch()
	if err := cl.RemoveShard(); err != nil {
		t.Fatal(err)
	}
	if cl.Shards() != 2 {
		t.Fatalf("tier size %d after shrink, want 2", cl.Shards())
	}
	if cl.Epoch() <= before {
		t.Fatalf("epoch did not advance across RemoveShard: %d -> %d", before, cl.Epoch())
	}
	if cl.Flagged(cheater) == 0 {
		t.Fatal("shrink lost the flagged cheater")
	}
	for obj := catalog.ObjectID(1); obj <= 32; obj++ {
		sealed, err := mediator.Seal(keys[obj], sender, receiver, obj, 0, content(obj))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Verify(uint64(obj), receiver, sender, obj, []protocol.Block{{Object: obj, Index: 0, Payload: sealed}})
		if err != nil {
			t.Fatalf("verify %d after shrink: %v", obj, err)
		}
		if got != keys[obj] {
			t.Fatalf("verify %d released the wrong key after shrink", obj)
		}
	}

	// The tier refuses to shrink to nothing.
	if err := cl.RemoveShard(); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveShard(); err == nil {
		t.Fatal("removed the last shard")
	}
}

// TestReAddedIndexStartsClean: a shard removed and later re-added at the
// same index must not replay the retired member's log.
func TestReAddedIndexStartsClean(t *testing.T) {
	tr, cl, _ := durableFixture(t, 2, t.TempDir())
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: cl.Addrs()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const cheater core.PeerID = 55
	flagCheater(t, c, cheater, 13, 1300)
	want := cl.Flagged(cheater)
	if want == 0 {
		t.Fatal("cheater not flagged")
	}
	if err := cl.RemoveShard(); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddShard("mem://dmed-readd"); err != nil {
		t.Fatal(err)
	}
	// The flag must survive the round trip (it migrated to the survivor on
	// removal), but the re-added shard must not double-replay a stale log
	// on top of the migrated copy indefinitely — starting clean, it holds
	// only what migration handed it.
	if cl.Flagged(cheater) == 0 {
		t.Fatal("remove+add round trip lost the flag")
	}
}
