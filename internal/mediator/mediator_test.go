package mediator_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/medclient"
	"barter/internal/mediator"
	"barter/internal/protocol"
	"barter/internal/testutil"
	"barter/internal/transport"
)

// rawDial opens a plain TCP connection under the protocol framing, for
// writing pathological bytes no well-behaved transport would emit.
func rawDial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// expectClosed waits for the remote to drop the connection.
func expectClosed(nc net.Conn, timeout time.Duration) error {
	if err := nc.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	var buf [1]byte
	if _, err := nc.Read(buf[:]); err == nil {
		return fmt.Errorf("remote sent data instead of closing")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("remote kept the connection open past %v", timeout)
	}
	return nil
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := [16]byte{1, 2, 3}
	payload := []byte("the quick brown fox")
	sealed, err := mediator.Seal(key, 7, 9, 42, 3, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, payload) {
		t.Fatal("sealed block leaks plaintext")
	}
	origin, recipient, got, err := mediator.Open(key, 42, 3, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if origin != 7 || recipient != 9 || !bytes.Equal(got, payload) {
		t.Fatalf("Open = (%d, %d, %q)", origin, recipient, got)
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	sealed, err := mediator.Seal([16]byte{1}, 7, 9, 42, 3, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong key: either the header check fails or origin/recipient decode
	// to garbage; both must be detectable.
	origin, recipient, _, err := mediator.Open([16]byte{2}, 42, 3, sealed)
	if err == nil && origin == 7 && recipient == 9 {
		t.Fatal("wrong key decrypted to the correct header")
	}
}

func TestOpenWrongPositionFails(t *testing.T) {
	key := [16]byte{5}
	sealed, err := mediator.Seal(key, 7, 9, 42, 3, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mediator.Open(key, 42, 4, sealed); err == nil {
		t.Fatal("block accepted at the wrong index")
	}
	if _, _, _, err := mediator.Open(key, 43, 3, sealed); err == nil {
		t.Fatal("block accepted for the wrong object")
	}
}

func TestOpenTruncated(t *testing.T) {
	if _, _, _, err := mediator.Open([16]byte{}, 1, 1, []byte("short")); err == nil {
		t.Fatal("truncated sealed block accepted")
	}
}

// mediated test fixture: object content and oracle.
func fixture(t *testing.T) (tr *transport.Mem, med *mediator.Mediator, obj catalog.ObjectID, blocks [][]byte) {
	t.Helper()
	tr = transport.NewMem()
	obj = catalog.ObjectID(42)
	blocks = [][]byte{[]byte("block-zero"), []byte("block-one"), []byte("block-two")}
	digests := make([][32]byte, len(blocks))
	for i, b := range blocks {
		digests[i] = sha256.Sum256(b)
	}
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) {
		if o == obj {
			return digests, true
		}
		return nil, false
	}
	var err error
	med, err = mediator.New(tr, "mem://mediator", oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(med.Close)
	return tr, med, obj, blocks
}

// client builds a medclient bootstrapped at the fixture mediator.
func client(t *testing.T, tr transport.Transport) *medclient.Client {
	t.Helper()
	c, err := medclient.New(medclient.Config{Transport: tr, Seeds: []string{"mem://mediator"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func sealAll(t *testing.T, key [16]byte, origin, recipient core.PeerID, obj catalog.ObjectID, blocks [][]byte) []protocol.Block {
	t.Helper()
	out := make([]protocol.Block, len(blocks))
	for i, b := range blocks {
		sealed, err := mediator.Seal(key, origin, recipient, obj, uint32(i), b)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = protocol.Block{Object: obj, Index: uint32(i), Origin: origin, Recipient: recipient, Encrypted: true, Payload: sealed}
	}
	return out
}

// TestHonestExchangeReleasesKey is the happy path: sender A deposits its
// key, receiver B verifies the sealed blocks it received, gets the key, and
// decrypts.
func TestHonestExchangeReleasesKey(t *testing.T) {
	tr, _, obj, blocks := fixture(t)
	var keyA [16]byte
	copy(keyA[:], "secret-key-of-A!")
	const peerA, peerB core.PeerID = 1, 2

	sealed := sealAll(t, keyA, peerA, peerB, obj, blocks)

	clientA := client(t, tr)
	if err := clientA.Deposit(100, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}

	clientB := client(t, tr)
	key, err := clientB.Verify(100, peerB, peerA, obj, sealed[:2])
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if key != keyA {
		t.Fatal("released key differs from deposit")
	}
	// B can now decrypt everything.
	for i, sb := range sealed {
		_, _, payload, err := mediator.Open(key, obj, sb.Index, sb.Payload)
		if err != nil {
			t.Fatalf("decrypt block %d: %v", i, err)
		}
		if !bytes.Equal(payload, blocks[i]) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

// TestMiddlemanCaught reproduces the Section III-B attack: M relays A's
// sealed blocks to C while claiming to be their source. The audit decrypts
// with M's deposited key, finds garbage (or A's origin header), and refuses
// to release anything.
func TestMiddlemanCaught(t *testing.T) {
	tr, med, obj, blocks := fixture(t)
	const peerA, peerM, peerC core.PeerID = 1, 2, 3
	var keyA, keyM [16]byte
	copy(keyA[:], "key-of-honest-A!")
	copy(keyM[:], "key-of-cheater-M")

	// A seals blocks for its exchange with M (A believes M is the trader).
	sealedByA := sealAll(t, keyA, peerA, peerM, obj, blocks)

	// Both keys are escrowed for exchange 200: A's honestly, M's as the
	// claimed sender of the relayed blocks.
	depositor := client(t, tr)
	if err := depositor.Deposit(200, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}
	if err := depositor.Deposit(200, peerM, obj, keyM); err != nil {
		t.Fatal(err)
	}

	// M relays A's sealed blocks to C unchanged (it cannot re-author the
	// encrypted headers). C verifies, claiming sender M.
	clientC := client(t, tr)
	_, err := clientC.Verify(200, peerC, peerM, obj, sealedByA[:2])
	if !errors.Is(err, medclient.ErrRejected) {
		t.Fatalf("middleman relay passed the audit: %v", err)
	}
	if med.Flagged(peerM) == 0 {
		t.Fatal("mediator did not flag the middleman")
	}
}

// TestMisaddressedBlocksRejected: even with the right key, blocks sealed for
// a different recipient fail the audit (a middleman forwarding blocks that
// were addressed to it, alongside the real key, still gains nothing for the
// downstream peer).
func TestMisaddressedBlocksRejected(t *testing.T) {
	tr, _, obj, blocks := fixture(t)
	const peerA, peerM, peerC core.PeerID = 1, 2, 3
	var keyA [16]byte
	copy(keyA[:], "key-of-honest-A!")
	sealedForM := sealAll(t, keyA, peerA, peerM, obj, blocks)

	cl := client(t, tr)
	if err := cl.Deposit(300, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}
	// C claims it received these blocks from A directly.
	if _, err := cl.Verify(300, peerC, peerA, obj, sealedForM[:1]); !errors.Is(err, medclient.ErrRejected) {
		t.Fatalf("misaddressed blocks passed the audit: %v", err)
	}
}

// TestJunkContentRejected: correctly sealed and addressed blocks whose
// payload is garbage fail the oracle digest check.
func TestJunkContentRejected(t *testing.T) {
	tr, med, obj, _ := fixture(t)
	const peerA, peerB core.PeerID = 1, 2
	var keyA [16]byte
	copy(keyA[:], "key-of-junk-send")
	junk := [][]byte{[]byte("garbage-0"), []byte("garbage-1")}
	sealed := sealAll(t, keyA, peerA, peerB, obj, junk)

	cl := client(t, tr)
	if err := cl.Deposit(400, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Verify(400, peerB, peerA, obj, sealed); !errors.Is(err, medclient.ErrRejected) {
		t.Fatalf("junk content passed the audit: %v", err)
	}
	if med.Flagged(peerA) == 0 {
		t.Fatal("junk sender not flagged")
	}
}

// TestVerifyWithoutDeposit: a missing escrow is a transient refusal
// (ErrNoKey), not an audit verdict, and must not flag the claimed sender —
// a shard restart that lost its deposits would otherwise brand honest
// peers.
func TestVerifyWithoutDeposit(t *testing.T) {
	tr, med, obj, blocks := fixture(t)
	var key [16]byte
	sealed := sealAll(t, key, 1, 2, obj, blocks)
	cl := client(t, tr)
	_, err := cl.Verify(500, 2, 1, obj, sealed[:1])
	if !errors.Is(err, medclient.ErrNoKey) {
		t.Fatalf("verify without deposit: %v", err)
	}
	if errors.Is(err, medclient.ErrRejected) {
		t.Fatal("missing key reported as an audit rejection")
	}
	if med.Flagged(1) != 0 {
		t.Fatal("missing deposit flagged the claimed sender")
	}
}

// TestVerifyUnknownObject: an oracle miss is the shard's own blind spot —
// the audit is refused without a verdict, and the claimed sender must not
// be flagged for it.
func TestVerifyUnknownObject(t *testing.T) {
	tr, med, _, _ := fixture(t)
	cl := client(t, tr)
	var key [16]byte
	if err := cl.Deposit(600, 1, 999, key); err != nil {
		t.Fatal(err)
	}
	sealed, err := mediator.Seal(key, 1, 2, 999, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	samples := []protocol.Block{{Object: 999, Index: 0, Payload: sealed}}
	if _, err := cl.Verify(600, 2, 1, 999, samples); !errors.Is(err, medclient.ErrBadRequest) {
		t.Fatalf("unknown object: %v, want ErrBadRequest", err)
	}
	if med.Flagged(1) != 0 {
		t.Fatal("oracle miss flagged the claimed sender")
	}
}

// TestVerifyEmptySamples: a sample-free audit is the requester's fault; it
// must be refused without branding the sender — otherwise anyone could
// frame an honest peer with an empty request naming it.
func TestVerifyEmptySamples(t *testing.T) {
	tr, med, obj, _ := fixture(t)
	cl := client(t, tr)
	var key [16]byte
	if err := cl.Deposit(700, 1, obj, key); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Verify(700, 2, 1, obj, nil); !errors.Is(err, medclient.ErrBadRequest) {
		t.Fatalf("empty samples: %v, want ErrBadRequest", err)
	}
	if med.Flagged(1) != 0 {
		t.Fatal("empty audit flagged the claimed sender")
	}
	// A wrong-object sample is equally the requester's fault.
	sealed, err := mediator.Seal(key, 1, 2, obj, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	wrong := []protocol.Block{{Object: obj + 1, Index: 0, Payload: sealed}}
	if _, err := cl.Verify(700, 2, 1, obj, wrong); !errors.Is(err, medclient.ErrBadRequest) {
		t.Fatalf("wrong-object sample: %v, want ErrBadRequest", err)
	}
	if med.Flagged(1) != 0 {
		t.Fatal("wrong-object sample flagged the claimed sender")
	}
}

// TestVerifyOversizedRejected pins the serve read-path limits: an audit
// claiming more samples than MaxVerifySamples is refused without a verdict
// and without any per-sample work — the in-memory transport carries message
// pointers, so the wire codec's caps never ran and the mediator must
// enforce its own.
func TestVerifyOversizedRejected(t *testing.T) {
	tr, med, obj, _ := fixture(t)
	conn, err := tr.Dial("mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	samples := make([]protocol.Block, mediator.MaxVerifySamples+1)
	for i := range samples {
		samples[i] = protocol.Block{Object: obj, Index: uint32(i), Payload: []byte("x")}
	}
	if err := conn.Send(&protocol.MedVerify{ExchangeID: 800, Requester: 2, Sender: 1, Object: obj, Samples: samples}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	rej, ok := msg.(*protocol.MedReject)
	if !ok || rej.Code != protocol.MedRejectOversize {
		t.Fatalf("oversized verify answered with %T %+v", msg, msg)
	}
	if med.Flagged(1) != 0 {
		t.Fatal("oversized request flagged the claimed sender")
	}
	// The abusive connection is dropped...
	if _, err := conn.Recv(); err == nil {
		t.Fatal("connection survived an oversized audit")
	}
	// ...but the mediator keeps serving everyone else.
	cl := client(t, tr)
	if err := cl.Deposit(801, 1, obj, [16]byte{1}); err != nil {
		t.Fatalf("mediator unserviceable after oversized audit: %v", err)
	}
}

// TestVerifyOversizedPayloadRejected covers the byte-volume limit with a
// sample count under the cap.
func TestVerifyOversizedPayloadRejected(t *testing.T) {
	tr, _, obj, _ := fixture(t)
	conn, err := tr.Dial("mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := make([]byte, mediator.MaxVerifyBytes/2+1)
	samples := []protocol.Block{
		{Object: obj, Index: 0, Payload: big},
		{Object: obj, Index: 1, Payload: big},
	}
	if err := conn.Send(&protocol.MedVerify{ExchangeID: 810, Requester: 2, Sender: 1, Object: obj, Samples: samples}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if rej, ok := msg.(*protocol.MedReject); !ok || rej.Code != protocol.MedRejectOversize {
		t.Fatalf("oversized payload answered with %T %+v", msg, msg)
	}
}

// TestServeRejectsPathologicalFrame is the regression test for the TCP read
// path: a raw connection claiming a multi-gigabyte frame must be dropped by
// the codec's frame cap before any allocation, and the mediator must keep
// serving other clients.
func TestServeRejectsPathologicalFrame(t *testing.T) {
	obj := catalog.ObjectID(42)
	digest := sha256.Sum256([]byte("block"))
	med, err := mediator.New(transport.TCP{}, "127.0.0.1:0", func(o catalog.ObjectID) ([][32]byte, bool) {
		if o == obj {
			return [][32]byte{digest}, true
		}
		return nil, false
	})
	if err != nil {
		t.Fatal(err)
	}
	defer med.Close()

	raw, err := transport.TCP{}.Dial(med.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Reach under the framing: the transport's Conn is message-oriented, so
	// speak raw TCP for the pathological prefix.
	nc, err := rawDial(med.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(protocol.TypeMedVerify)}); err != nil {
		t.Fatal(err)
	}
	// The mediator must close the connection rather than wait for 4 GiB.
	if err := expectClosed(nc, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// A well-formed client still gets service.
	cl, err := medclient.New(medclient.Config{Transport: transport.TCP{}, Seeds: []string{med.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Deposit(900, 1, obj, [16]byte{7}); err != nil {
		t.Fatalf("mediator unserviceable after pathological frame: %v", err)
	}
}

func TestMediatorRequiresOracle(t *testing.T) {
	if _, err := mediator.New(transport.NewMem(), "mem://m", nil); err == nil {
		t.Fatal("mediator without oracle accepted")
	}
}

func TestShardOptsValidated(t *testing.T) {
	oracle := func(catalog.ObjectID) ([][32]byte, bool) { return nil, false }
	tr := transport.NewMem()
	if _, err := mediator.NewShard(tr, "mem://s", oracle, mediator.ShardOpts{Index: 3, Count: 2, Map: func() (uint64, []string) { return 1, nil }}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := mediator.NewShard(tr, "mem://s", oracle, mediator.ShardOpts{Index: 0, Count: 2}); err == nil {
		t.Fatal("sharded mediator without a topology map accepted")
	}
}

func TestMediatorCloseIdempotent(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	_, med, _, _ := fixture(t)
	med.Close()
	med.Close()
}

// TestMediatorCloseWithIdleClient is the regression test for the shutdown
// hang: a connected client that never sends anything used to park a serve
// goroutine in Recv forever, so Close's wg.Wait never returned.
func TestMediatorCloseWithIdleClient(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	tr, med, _, _ := fixture(t)
	idle, err := tr.Dial("mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// Let the mediator accept the connection and park in Recv.
	probe := client(t, tr)
	if err := probe.Deposit(1, 1, 42, [16]byte{1}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		med.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Mediator.Close hung on an idle client connection")
	}
}

// TestMediatorManyConcurrentClients exercises accept/serve/teardown under a
// crowd: dozens of clients deposit and verify at once, then Close must still
// return promptly with half of them left connected and idle.
func TestMediatorManyConcurrentClients(t *testing.T) {
	testutil.CheckGoroutineLeaks(t, 0)
	tr, med, obj, blocks := fixture(t)
	const clients = 40
	var wg sync.WaitGroup
	idle := make([]transport.Conn, 0, clients/2)
	var idleMu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var key [16]byte
			key[0] = byte(i + 1)
			ex := uint64(1000 + i)
			sender := core.PeerID(i + 1)
			if i%2 == 0 {
				c, err := medclient.New(medclient.Config{Transport: tr, Seeds: []string{"mem://mediator"}})
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				defer c.Close()
				if err := c.Deposit(ex, sender, obj, key); err != nil {
					t.Errorf("client %d deposit: %v", i, err)
					return
				}
				sealed := sealAll(t, key, sender, sender+1, obj, blocks)
				if _, err := c.Verify(ex, sender+1, sender, obj, sealed[:1]); err != nil {
					t.Errorf("client %d verify: %v", i, err)
				}
				return
			}
			conn, err := tr.Dial("mem://mediator")
			if err != nil {
				t.Errorf("client %d dial: %v", i, err)
				return
			}
			idleMu.Lock()
			idle = append(idle, conn) // stays connected, never speaks
			idleMu.Unlock()
		}(i)
	}
	wg.Wait()
	done := make(chan struct{})
	go func() {
		med.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Mediator.Close hung with idle clients connected")
	}
	for _, c := range idle {
		c.Close()
	}
}
