package mediator

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"sync"
	"testing"
	"time"

	"barter/internal/catalog"
	"barter/internal/core"
	"barter/internal/protocol"
	"barter/internal/transport"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key := [16]byte{1, 2, 3}
	payload := []byte("the quick brown fox")
	sealed, err := Seal(key, 7, 9, 42, 3, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, payload) {
		t.Fatal("sealed block leaks plaintext")
	}
	origin, recipient, got, err := Open(key, 42, 3, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if origin != 7 || recipient != 9 || !bytes.Equal(got, payload) {
		t.Fatalf("Open = (%d, %d, %q)", origin, recipient, got)
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	sealed, err := Seal([16]byte{1}, 7, 9, 42, 3, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong key: either the header check fails or origin/recipient decode
	// to garbage; both must be detectable.
	origin, recipient, _, err := Open([16]byte{2}, 42, 3, sealed)
	if err == nil && origin == 7 && recipient == 9 {
		t.Fatal("wrong key decrypted to the correct header")
	}
}

func TestOpenWrongPositionFails(t *testing.T) {
	key := [16]byte{5}
	sealed, err := Seal(key, 7, 9, 42, 3, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(key, 42, 4, sealed); err == nil {
		t.Fatal("block accepted at the wrong index")
	}
	if _, _, _, err := Open(key, 43, 3, sealed); err == nil {
		t.Fatal("block accepted for the wrong object")
	}
}

func TestOpenTruncated(t *testing.T) {
	if _, _, _, err := Open([16]byte{}, 1, 1, []byte("short")); err == nil {
		t.Fatal("truncated sealed block accepted")
	}
}

// mediated test fixture: object content and oracle.
func fixture(t *testing.T) (tr *transport.Mem, med *Mediator, obj catalog.ObjectID, blocks [][]byte) {
	t.Helper()
	tr = transport.NewMem()
	obj = catalog.ObjectID(42)
	blocks = [][]byte{[]byte("block-zero"), []byte("block-one"), []byte("block-two")}
	digests := make([][32]byte, len(blocks))
	for i, b := range blocks {
		digests[i] = sha256.Sum256(b)
	}
	oracle := func(o catalog.ObjectID) ([][32]byte, bool) {
		if o == obj {
			return digests, true
		}
		return nil, false
	}
	var err error
	med, err = New(tr, "mem://mediator", oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(med.Close)
	return tr, med, obj, blocks
}

func sealAll(t *testing.T, key [16]byte, origin, recipient core.PeerID, obj catalog.ObjectID, blocks [][]byte) []protocol.Block {
	t.Helper()
	out := make([]protocol.Block, len(blocks))
	for i, b := range blocks {
		sealed, err := Seal(key, origin, recipient, obj, uint32(i), b)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = protocol.Block{Object: obj, Index: uint32(i), Origin: origin, Recipient: recipient, Encrypted: true, Payload: sealed}
	}
	return out
}

// TestHonestExchangeReleasesKey is the happy path: sender A deposits its
// key, receiver B verifies the sealed blocks it received, gets the key, and
// decrypts.
func TestHonestExchangeReleasesKey(t *testing.T) {
	tr, _, obj, blocks := fixture(t)
	var keyA [16]byte
	copy(keyA[:], "secret-key-of-A!")
	const peerA, peerB core.PeerID = 1, 2

	sealed := sealAll(t, keyA, peerA, peerB, obj, blocks)

	clientA, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer clientA.Close()
	if err := clientA.Deposit(100, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}

	clientB, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()
	key, err := clientB.Verify(100, peerB, peerA, obj, sealed[:2])
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if key != keyA {
		t.Fatal("released key differs from deposit")
	}
	// B can now decrypt everything.
	for i, sb := range sealed {
		_, _, payload, err := Open(key, obj, sb.Index, sb.Payload)
		if err != nil {
			t.Fatalf("decrypt block %d: %v", i, err)
		}
		if !bytes.Equal(payload, blocks[i]) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

// TestMiddlemanCaught reproduces the Section III-B attack: M relays A's
// sealed blocks to C while claiming to be their source. The audit decrypts
// with M's deposited key, finds garbage (or A's origin header), and refuses
// to release anything.
func TestMiddlemanCaught(t *testing.T) {
	tr, med, obj, blocks := fixture(t)
	const peerA, peerM, peerC core.PeerID = 1, 2, 3
	var keyA, keyM [16]byte
	copy(keyA[:], "key-of-honest-A!")
	copy(keyM[:], "key-of-cheater-M")

	// A seals blocks for its exchange with M (A believes M is the trader).
	sealedByA := sealAll(t, keyA, peerA, peerM, obj, blocks)

	// Both keys are escrowed for exchange 200: A's honestly, M's as the
	// claimed sender of the relayed blocks.
	depositor, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer depositor.Close()
	if err := depositor.Deposit(200, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}
	if err := depositor.Deposit(200, peerM, obj, keyM); err != nil {
		t.Fatal(err)
	}

	// M relays A's sealed blocks to C unchanged (it cannot re-author the
	// encrypted headers). C verifies, claiming sender M.
	clientC, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer clientC.Close()
	_, err = clientC.Verify(200, peerC, peerM, obj, sealedByA[:2])
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("middleman relay passed the audit: %v", err)
	}
	if med.Flagged(peerM) == 0 {
		t.Fatal("mediator did not flag the middleman")
	}
}

// TestMisaddressedBlocksRejected: even with the right key, blocks sealed for
// a different recipient fail the audit (a middleman forwarding blocks that
// were addressed to it, alongside the real key, still gains nothing for the
// downstream peer).
func TestMisaddressedBlocksRejected(t *testing.T) {
	tr, _, obj, blocks := fixture(t)
	const peerA, peerM, peerC core.PeerID = 1, 2, 3
	var keyA [16]byte
	copy(keyA[:], "key-of-honest-A!")
	sealedForM := sealAll(t, keyA, peerA, peerM, obj, blocks)

	client, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Deposit(300, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}
	// C claims it received these blocks from A directly.
	if _, err := client.Verify(300, peerC, peerA, obj, sealedForM[:1]); !errors.Is(err, ErrRejected) {
		t.Fatalf("misaddressed blocks passed the audit: %v", err)
	}
}

// TestJunkContentRejected: correctly sealed and addressed blocks whose
// payload is garbage fail the oracle digest check.
func TestJunkContentRejected(t *testing.T) {
	tr, med, obj, _ := fixture(t)
	const peerA, peerB core.PeerID = 1, 2
	var keyA [16]byte
	copy(keyA[:], "key-of-junk-send")
	junk := [][]byte{[]byte("garbage-0"), []byte("garbage-1")}
	sealed := sealAll(t, keyA, peerA, peerB, obj, junk)

	client, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Deposit(400, peerA, obj, keyA); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Verify(400, peerB, peerA, obj, sealed); !errors.Is(err, ErrRejected) {
		t.Fatalf("junk content passed the audit: %v", err)
	}
	if med.Flagged(peerA) == 0 {
		t.Fatal("junk sender not flagged")
	}
}

func TestVerifyWithoutDeposit(t *testing.T) {
	tr, _, obj, blocks := fixture(t)
	var key [16]byte
	sealed := sealAll(t, key, 1, 2, obj, blocks)
	client, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Verify(500, 2, 1, obj, sealed[:1]); !errors.Is(err, ErrRejected) {
		t.Fatalf("verify without deposit: %v", err)
	}
}

func TestVerifyUnknownObject(t *testing.T) {
	tr, _, _, _ := fixture(t)
	client, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var key [16]byte
	if err := client.Deposit(600, 1, 999, key); err != nil {
		t.Fatal(err)
	}
	sealed, err := Seal(key, 1, 2, 999, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	samples := []protocol.Block{{Object: 999, Index: 0, Payload: sealed}}
	if _, err := client.Verify(600, 2, 1, 999, samples); !errors.Is(err, ErrRejected) {
		t.Fatalf("unknown object passed: %v", err)
	}
}

func TestVerifyEmptySamples(t *testing.T) {
	tr, _, obj, _ := fixture(t)
	client, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var key [16]byte
	if err := client.Deposit(700, 1, obj, key); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Verify(700, 2, 1, obj, nil); !errors.Is(err, ErrRejected) {
		t.Fatalf("empty samples passed: %v", err)
	}
}

func TestMediatorRequiresOracle(t *testing.T) {
	if _, err := New(transport.NewMem(), "mem://m", nil); err == nil {
		t.Fatal("mediator without oracle accepted")
	}
}

func TestMediatorCloseIdempotent(t *testing.T) {
	_, med, _, _ := fixture(t)
	med.Close()
	med.Close()
}

// TestMediatorCloseWithIdleClient is the regression test for the shutdown
// hang: a connected client that never sends anything used to park a serve
// goroutine in Recv forever, so Close's wg.Wait never returned.
func TestMediatorCloseWithIdleClient(t *testing.T) {
	tr, med, _, _ := fixture(t)
	idle, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// Let the mediator accept the connection and park in Recv.
	probe, err := Dial(tr, "mem://mediator")
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if err := probe.Deposit(1, 1, 42, [16]byte{1}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		med.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Mediator.Close hung on an idle client connection")
	}
}

// TestMediatorManyConcurrentClients exercises accept/serve/teardown under a
// crowd: dozens of clients deposit and verify at once, then Close must still
// return promptly with half of them left connected and idle.
func TestMediatorManyConcurrentClients(t *testing.T) {
	tr, med, obj, blocks := fixture(t)
	const clients = 40
	var wg sync.WaitGroup
	idle := make([]*Client, 0, clients/2)
	var idleMu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(tr, "mem://mediator")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			var key [16]byte
			key[0] = byte(i + 1)
			ex := uint64(1000 + i)
			sender := core.PeerID(i + 1)
			if err := c.Deposit(ex, sender, obj, key); err != nil {
				t.Errorf("client %d deposit: %v", i, err)
				c.Close()
				return
			}
			if i%2 == 0 {
				sealed := sealAll(t, key, sender, sender+1, obj, blocks)
				if _, err := c.Verify(ex, sender+1, sender, obj, sealed[:1]); err != nil {
					t.Errorf("client %d verify: %v", i, err)
				}
				c.Close()
				return
			}
			idleMu.Lock()
			idle = append(idle, c) // stays connected, never speaks again
			idleMu.Unlock()
		}(i)
	}
	wg.Wait()
	done := make(chan struct{})
	go func() {
		med.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Mediator.Close hung with idle clients connected")
	}
	for _, c := range idle {
		c.Close()
	}
}
