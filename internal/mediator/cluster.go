package mediator

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"barter/internal/core"
	"barter/internal/protocol"
	"barter/internal/transport"
)

// Cluster runs N mediator shards over one transport, partitioned by
// consistent hashing over object ID (see ShardFor). Every member serves the
// shared topology map, so a client bootstrapped with any one shard address
// can discover the rest and be redirected on misroute. By default shards
// hold their escrow and flagged-peer state in memory only — killing a shard
// loses it, exactly the failure the node-side client layer must absorb by
// retrying and failing over. With a DataDir every shard keeps a write-ahead
// log instead, so RestartShard recovers the full detection history; and the
// tier is elastic — AddShard and RemoveShard resize the ring at runtime,
// bumping the epoch and migrating only the consistent-hash arcs that moved.
type Cluster struct {
	tr      transport.Transport
	oracle  DigestOracle
	dataDir string

	// reshapeMu serializes topology changes — restarts, grows, shrinks —
	// so two reshapes never interleave their state migrations.
	reshapeMu sync.Mutex

	mu     sync.Mutex
	epoch  uint64
	addrs  []string    // requested listen addrs by index (mem name or host:0)
	live   []string    // current dialable addrs by index
	shards []*Mediator // nil while a shard is down
}

// ClusterOpts tune a mediator tier beyond its address list.
type ClusterOpts struct {
	// DataDir, when non-empty, gives every shard a write-ahead log under
	// it (see ShardOpts.DataDir), so kills and restarts forget nothing.
	DataDir string
}

// NewCluster starts one mediator shard per listen address, all sharing the
// oracle. Restarts keep each shard's index; AddShard and RemoveShard resize
// the tier at runtime.
func NewCluster(tr transport.Transport, addrs []string, oracle DigestOracle) (*Cluster, error) {
	return NewClusterOpts(tr, addrs, oracle, ClusterOpts{})
}

// NewClusterOpts is NewCluster with tuning options.
func NewClusterOpts(tr transport.Transport, addrs []string, oracle DigestOracle, opts ClusterOpts) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("mediator: cluster needs at least one shard address")
	}
	if oracle == nil {
		return nil, errors.New("mediator: digest oracle is required")
	}
	c := &Cluster{
		tr:      tr,
		oracle:  oracle,
		dataDir: opts.DataDir,
		addrs:   append([]string(nil), addrs...),
		live:    make([]string, len(addrs)),
		shards:  make([]*Mediator, len(addrs)),
	}
	for i := range addrs {
		if err := c.startShard(i); err != nil {
			c.Close()
			return nil, fmt.Errorf("mediator: shard %d: %w", i, err)
		}
	}
	return c, nil
}

// snapshot is the Map callback handed to every shard: the current epoch and
// the dialable address of each member.
func (c *Cluster) snapshot() (uint64, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch, append([]string(nil), c.live...)
}

func (c *Cluster) startShard(i int) error {
	c.mu.Lock()
	if i < 0 || i >= len(c.addrs) {
		c.mu.Unlock()
		return fmt.Errorf("mediator: shard %d out of range", i)
	}
	addr := c.addrs[i]
	count := len(c.addrs)
	c.mu.Unlock()
	med, err := NewShard(c.tr, addr, c.oracle, ShardOpts{
		Index:   i,
		Count:   count,
		Map:     c.snapshot,
		DataDir: c.dataDir,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	if i >= len(c.shards) {
		// The tier shrank past this index while the shard was starting.
		c.mu.Unlock()
		med.Close()
		return fmt.Errorf("mediator: shard %d removed during start", i)
	}
	c.shards[i] = med
	c.live[i] = med.Addr()
	c.epoch++
	c.mu.Unlock()
	return nil
}

// Shards returns the current tier size.
func (c *Cluster) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.addrs)
}

// Epoch returns the topology version; it bumps on every shard (re)start and
// every resize.
func (c *Cluster) Epoch() uint64 {
	e, _ := c.snapshot()
	return e
}

// Addrs returns the current dialable address of every shard — the bootstrap
// seeds to hand a client.
func (c *Cluster) Addrs() []string {
	_, a := c.snapshot()
	return a
}

// Shard returns the live mediator at index i, or nil while it is down or
// after the tier shrank past it.
func (c *Cluster) Shard(i int) *Mediator {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.shards) {
		return nil
	}
	return c.shards[i]
}

// KillShard stops shard i abruptly, as a crash would: its in-memory escrow
// and flag counts are gone, though a DataDir-backed shard left its log
// behind for the next restart. It is a no-op on an already-down shard.
func (c *Cluster) KillShard(i int) {
	c.mu.Lock()
	if i < 0 || i >= len(c.shards) {
		c.mu.Unlock()
		return
	}
	med := c.shards[i]
	c.shards[i] = nil
	c.mu.Unlock()
	// Close outside the lock: it waits for serve goroutines, which may be
	// inside the Map callback taking c.mu.
	if med != nil {
		med.Close()
	}
}

// RestartShard brings shard i back — on the same name for in-memory
// transports, on a fresh port for TCP ":0" listens — and bumps the epoch so
// clients notice the topology changed. With a DataDir the shard replays its
// log and remembers every deposit and flag it held.
func (c *Cluster) RestartShard(i int) error {
	c.reshapeMu.Lock()
	defer c.reshapeMu.Unlock()
	c.mu.Lock()
	n := len(c.addrs)
	c.mu.Unlock()
	if i < 0 || i >= n {
		return fmt.Errorf("mediator: shard %d out of range", i)
	}
	c.KillShard(i)
	return c.startShard(i)
}

// AddShard grows the tier by one shard listening on addr: the epoch bumps so
// clients refetch the map, and every deposit whose consistent-hash arc the
// new shard now owns is handed off from the members that held it. Sources
// keep their copies — stale entries are unreachable once ownership moves,
// and harmless. Flags stay where they are: Flagged sums the whole tier.
func (c *Cluster) AddShard(addr string) error {
	c.reshapeMu.Lock()
	defer c.reshapeMu.Unlock()

	c.mu.Lock()
	newIdx := len(c.addrs)
	c.mu.Unlock()

	// A shard previously removed at this index must not resurrect its log.
	if c.dataDir != "" {
		_ = os.Remove(walPath(c.dataDir, newIdx))
	}
	med, err := NewShard(c.tr, addr, c.oracle, ShardOpts{
		Index:   newIdx,
		Count:   newIdx + 1,
		Map:     c.snapshot,
		DataDir: c.dataDir,
	})
	if err != nil {
		return fmt.Errorf("mediator: add shard %d: %w", newIdx, err)
	}

	c.mu.Lock()
	c.addrs = append(c.addrs, addr)
	c.live = append(c.live, med.Addr())
	c.shards = append(c.shards, med)
	c.epoch++
	count := len(c.addrs)
	sources := append([]*Mediator(nil), c.shards[:newIdx]...)
	c.mu.Unlock()

	// Migrate the arcs that moved. A down source contributes from its log,
	// if there is one; otherwise its entries rely on re-escrow convergence,
	// same as before the handoff existed.
	var moved []protocol.MedDepositRecord
	for i, src := range sources {
		for _, d := range c.sourceDeposits(i, src) {
			p, r := ShardFor(d.Object, count)
			if p == newIdx || r == newIdx {
				moved = append(moved, d)
			}
		}
	}
	return c.deliver(uint32(newIdx), newIdx, moved, nil)
}

// RemoveShard shrinks the tier by retiring its last shard, migrating every
// deposit it held to the owners under the shrunk ring and its flags to a
// surviving member. Only the highest index can leave: survivors' ring points
// are a pure function of (index, count), so retiring the tail moves only the
// departing shard's arcs.
func (c *Cluster) RemoveShard() error {
	c.reshapeMu.Lock()
	defer c.reshapeMu.Unlock()

	c.mu.Lock()
	if len(c.addrs) <= 1 {
		c.mu.Unlock()
		return errors.New("mediator: cannot remove the last shard")
	}
	idx := len(c.addrs) - 1
	med := c.shards[idx]
	c.addrs = c.addrs[:idx]
	c.live = c.live[:idx]
	c.shards = c.shards[:idx]
	c.epoch++
	count := len(c.addrs)
	c.mu.Unlock()

	// Extract the departing shard's state — live export, or log replay if
	// it is down — then retire both the shard and its log.
	deposits, flags := c.sourceState(idx, med)
	if med != nil {
		med.Close()
	}
	if c.dataDir != "" {
		_ = os.Remove(walPath(c.dataDir, idx))
	}

	// Deposits go to both owners under the shrunk ring; flags go to the
	// first member that takes them — which shard holds a flag is
	// irrelevant, Flagged sums the tier.
	perTarget := make(map[int][]protocol.MedDepositRecord)
	for _, d := range deposits {
		p, r := ShardFor(d.Object, count)
		perTarget[p] = append(perTarget[p], d)
		if r != p {
			perTarget[r] = append(perTarget[r], d)
		}
	}
	var firstErr error
	flagsSent := len(flags) == 0
	for t := 0; t < count; t++ {
		var fl []protocol.MedFlagRecord
		if !flagsSent {
			fl = flags
		}
		if len(perTarget[t]) == 0 && len(fl) == 0 {
			continue
		}
		if err := c.deliver(uint32(idx), t, perTarget[t], fl); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		flagsSent = true
	}
	if !flagsSent && firstErr == nil {
		firstErr = errors.New("mediator: no member accepted the retired shard's flags")
	}
	return firstErr
}

// sourceDeposits snapshots shard i's deposits for migration: from the live
// mediator, or from its log when it is down.
func (c *Cluster) sourceDeposits(i int, med *Mediator) []protocol.MedDepositRecord {
	deposits, _ := c.sourceState(i, med)
	return deposits
}

func (c *Cluster) sourceState(i int, med *Mediator) ([]protocol.MedDepositRecord, []protocol.MedFlagRecord) {
	if med != nil {
		return med.exportState()
	}
	if c.dataDir == "" {
		return nil, nil
	}
	walDeps, walFlags, err := readWALState(walPath(c.dataDir, i))
	if err != nil {
		return nil, nil
	}
	deposits := make([]protocol.MedDepositRecord, 0, len(walDeps))
	for _, d := range walDeps {
		deposits = append(deposits, protocol.MedDepositRecord{
			ExchangeID: d.exchange, Sender: d.sender, Object: d.object, Key: d.key,
		})
	}
	flags := make([]protocol.MedFlagRecord, 0, len(walFlags))
	for p, n := range walFlags {
		if n > 0 {
			flags = append(flags, protocol.MedFlagRecord{Peer: p, Count: n})
		}
	}
	return deposits, flags
}

// deliver hands records to shard t: over the wire when it is live, straight
// into its log when it is down (reshapeMu holds restarts off meanwhile, so
// the shard replays the records on its next start).
func (c *Cluster) deliver(from uint32, t int, deposits []protocol.MedDepositRecord, flags []protocol.MedFlagRecord) error {
	if len(deposits) == 0 && len(flags) == 0 {
		return nil
	}
	c.mu.Lock()
	var med *Mediator
	var addr string
	if t >= 0 && t < len(c.shards) {
		med = c.shards[t]
		addr = c.live[t]
	}
	c.mu.Unlock()
	if med != nil {
		return c.sendHandoff(from, addr, deposits, flags)
	}
	if c.dataDir == "" {
		return fmt.Errorf("mediator: shard %d is down, migrated state dropped", t)
	}
	w, err := openWAL(walPath(c.dataDir, t), nil, nil)
	if err != nil {
		return err
	}
	defer w.Close()
	for _, d := range deposits {
		w.appendDeposit(walDeposit{exchange: d.ExchangeID, sender: d.Sender, object: d.Object, key: d.Key})
	}
	for _, f := range flags {
		w.appendFlag(f.Peer, f.Count)
	}
	return nil
}

// sendHandoff pushes records to addr in bounded chunks, waiting for each
// acknowledgement so the handoff is durable on the receiver before the
// reshape returns.
func (c *Cluster) sendHandoff(from uint32, addr string, deposits []protocol.MedDepositRecord, flags []protocol.MedFlagRecord) error {
	conn, err := c.tr.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close() //barter:allow unchecked-io teardown: the peer sees the drop; nothing durable rides on this close
	epoch, _ := c.snapshot()
	const chunk = 1024
	for len(deposits) > 0 || len(flags) > 0 {
		msg := &protocol.MedHandoff{From: from, Epoch: epoch}
		n := min(len(deposits), chunk)
		msg.Deposits, deposits = deposits[:n], deposits[n:]
		n = min(len(flags), chunk)
		msg.Flags, flags = flags[:n], flags[n:]
		if err := conn.Send(msg); err != nil {
			return err
		}
		if _, err := conn.Recv(); err != nil {
			return err
		}
	}
	return nil
}

// Flagged sums how many times the tier's live shards caught peer cheating.
// Write-through replication may count one verdict on both owners; consumers
// only ask whether the sum is nonzero.
func (c *Cluster) Flagged(p core.PeerID) int {
	c.mu.Lock()
	shards := append([]*Mediator(nil), c.shards...)
	c.mu.Unlock()
	n := 0
	for _, m := range shards {
		if m != nil {
			n += m.Flagged(p)
		}
	}
	return n
}

// Close stops every shard.
func (c *Cluster) Close() {
	c.mu.Lock()
	n := len(c.shards)
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		c.KillShard(i)
	}
}
