package mediator

import (
	"errors"
	"fmt"
	"sync"

	"barter/internal/core"
	"barter/internal/transport"
)

// Cluster runs N mediator shards over one transport, partitioned by
// consistent hashing over object ID (see ShardFor). Every member serves the
// shared topology map, so a client bootstrapped with any one shard address
// can discover the rest and be redirected on misroute. Shards hold their
// escrow and flagged-peer state in memory only: killing a shard loses it,
// exactly the failure the node-side client layer must absorb by retrying
// and failing over.
type Cluster struct {
	tr     transport.Transport
	oracle DigestOracle

	mu     sync.Mutex
	epoch  uint64
	addrs  []string    // requested listen addrs by index (mem name or host:0)
	live   []string    // current dialable addrs by index
	shards []*Mediator // nil while a shard is down
}

// NewCluster starts one mediator shard per listen address, all sharing the
// oracle. The address list fixes the tier size; restarts keep each shard's
// index.
func NewCluster(tr transport.Transport, addrs []string, oracle DigestOracle) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("mediator: cluster needs at least one shard address")
	}
	if oracle == nil {
		return nil, errors.New("mediator: digest oracle is required")
	}
	c := &Cluster{
		tr:     tr,
		oracle: oracle,
		addrs:  append([]string(nil), addrs...),
		live:   make([]string, len(addrs)),
		shards: make([]*Mediator, len(addrs)),
	}
	for i := range addrs {
		if err := c.startShard(i); err != nil {
			c.Close()
			return nil, fmt.Errorf("mediator: shard %d: %w", i, err)
		}
	}
	return c, nil
}

// snapshot is the Map callback handed to every shard: the current epoch and
// the dialable address of each member.
func (c *Cluster) snapshot() (uint64, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch, append([]string(nil), c.live...)
}

func (c *Cluster) startShard(i int) error {
	med, err := NewShard(c.tr, c.addrs[i], c.oracle, ShardOpts{
		Index: i,
		Count: len(c.addrs),
		Map:   c.snapshot,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.shards[i] = med
	c.live[i] = med.Addr()
	c.epoch++
	c.mu.Unlock()
	return nil
}

// Shards returns the tier size.
func (c *Cluster) Shards() int { return len(c.addrs) }

// Epoch returns the topology version; it bumps on every shard (re)start.
func (c *Cluster) Epoch() uint64 {
	e, _ := c.snapshot()
	return e
}

// Addrs returns the current dialable address of every shard — the bootstrap
// seeds to hand a client.
func (c *Cluster) Addrs() []string {
	_, a := c.snapshot()
	return a
}

// Shard returns the live mediator at index i, or nil while it is down.
func (c *Cluster) Shard(i int) *Mediator {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[i]
}

// KillShard stops shard i abruptly, as a crash would: its escrowed keys and
// flag counts are gone. It is a no-op on an already-down shard.
func (c *Cluster) KillShard(i int) {
	c.mu.Lock()
	med := c.shards[i]
	c.shards[i] = nil
	c.mu.Unlock()
	// Close outside the lock: it waits for serve goroutines, which may be
	// inside the Map callback taking c.mu.
	if med != nil {
		med.Close()
	}
}

// RestartShard brings shard i back — on the same name for in-memory
// transports, on a fresh port for TCP ":0" listens — and bumps the epoch so
// clients notice the topology changed.
func (c *Cluster) RestartShard(i int) error {
	c.KillShard(i)
	return c.startShard(i)
}

// Flagged sums how many times the live shards caught peer cheating. Flags
// on a killed shard are lost with it; detection converges because audits
// retry until the verdict lands on a living shard.
func (c *Cluster) Flagged(p core.PeerID) int {
	c.mu.Lock()
	shards := append([]*Mediator(nil), c.shards...)
	c.mu.Unlock()
	n := 0
	for _, m := range shards {
		if m != nil {
			n += m.Flagged(p)
		}
	}
	return n
}

// Close stops every shard.
func (c *Cluster) Close() {
	for i := range c.addrs {
		c.KillShard(i)
	}
}
