package mediator

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"barter/internal/catalog"
	"barter/internal/core"
)

// The write-ahead log gives a shard process-restart durability: every escrow
// deposit and every flag verdict is appended before the reply leaves, and
// NewShard replays the log so a restarted shard remembers who cheated. The
// format is an 8-byte magic followed by self-delimiting records — one type
// byte, a fixed-size payload, and a CRC-32 (IEEE) of type+payload. Replay
// stops at the first torn or corrupt record and truncates the file there, so
// a crash mid-append costs at most the record being written, never the log.
// Appends are not fsynced: the target failure is a process restart (the
// swarm's kill/restart churn), not a power loss.
const (
	walMagic      = "BARTWAL1"
	walTypDeposit = 1
	walTypFlag    = 2
	walDepositLen = 32 // u64 exchange + u32 sender + u32 object + 16-byte key
	walFlagLen    = 8  // u32 peer + u32 delta
)

type wal struct {
	f *os.File
	// err remembers the first append failure: the shard keeps serving from
	// memory (degraded durability) but the loss is recorded and reported,
	// never silently swallowed. Guarded by the owning shard's mutex, like
	// every append.
	err     error
	dropped int // records lost since err, for the degraded notice
}

// walDeposit is one replayed escrow record.
type walDeposit struct {
	exchange uint64
	sender   core.PeerID
	object   catalog.ObjectID
	key      [16]byte
}

// walPath names shard index's log inside dir.
func walPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.wal", index))
}

// openWAL opens or creates the log at path, replays every intact record into
// the callbacks, truncates whatever torn tail follows the last intact record,
// and leaves the file positioned for appending.
func openWAL(path string, onDeposit func(walDeposit), onFlag func(core.PeerID, uint32)) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	good := 0
	if len(data) >= len(walMagic) && string(data[:len(walMagic)]) == walMagic {
		good = len(walMagic)
		for {
			typ, payload, n := walParseRecord(data[good:])
			if n == 0 {
				break
			}
			switch typ {
			case walTypDeposit:
				d := walDeposit{
					exchange: binary.BigEndian.Uint64(payload[0:8]),
					sender:   core.PeerID(binary.BigEndian.Uint32(payload[8:12])),
					object:   catalog.ObjectID(binary.BigEndian.Uint32(payload[12:16])),
				}
				copy(d.key[:], payload[16:32])
				if onDeposit != nil {
					onDeposit(d)
				}
			case walTypFlag:
				if onFlag != nil {
					onFlag(core.PeerID(binary.BigEndian.Uint32(payload[0:4])), binary.BigEndian.Uint32(payload[4:8]))
				}
			}
			good += n
		}
	} else {
		// Empty or unrecognized: start a fresh log.
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			_ = f.Close()
			return nil, err
		}
		good = len(walMagic)
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	return &wal{f: f}, nil
}

// walParseRecord decodes one record from the head of b, returning its type,
// payload, and total encoded length — or n == 0 if b starts with a torn,
// unknown, or corrupt record.
func walParseRecord(b []byte) (typ byte, payload []byte, n int) {
	if len(b) < 1 {
		return 0, nil, 0
	}
	var plen int
	switch b[0] {
	case walTypDeposit:
		plen = walDepositLen
	case walTypFlag:
		plen = walFlagLen
	default:
		return 0, nil, 0
	}
	total := 1 + plen + 4
	if len(b) < total {
		return 0, nil, 0
	}
	if crc32.ChecksumIEEE(b[:1+plen]) != binary.BigEndian.Uint32(b[1+plen:total]) {
		return 0, nil, 0
	}
	return b[0], b[1 : 1+plen], total
}

func (w *wal) appendDeposit(d walDeposit) {
	rec := make([]byte, 0, 1+walDepositLen+4)
	rec = append(rec, walTypDeposit)
	rec = binary.BigEndian.AppendUint64(rec, d.exchange)
	rec = binary.BigEndian.AppendUint32(rec, uint32(d.sender))
	rec = binary.BigEndian.AppendUint32(rec, uint32(d.object))
	rec = append(rec, d.key[:]...)
	w.append(rec)
}

func (w *wal) appendFlag(p core.PeerID, delta uint32) {
	rec := make([]byte, 0, 1+walFlagLen+4)
	rec = append(rec, walTypFlag)
	rec = binary.BigEndian.AppendUint32(rec, uint32(p))
	rec = binary.BigEndian.AppendUint32(rec, delta)
	w.append(rec)
}

// append seals the record with its checksum and writes it. A write failure
// (disk full, dir removed) degrades the shard to in-memory durability
// rather than failing the client request — but visibly: the first failure
// is remembered (see Err) and announced on stderr, and every lost record is
// counted, so a restart that will forget state is never a surprise.
func (w *wal) append(rec []byte) {
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	if _, err := w.f.Write(rec); err != nil {
		w.dropped++
		if w.err == nil {
			w.err = err
			fmt.Fprintf(os.Stderr, "mediator: wal %s: append failed, degrading to in-memory durability: %v\n", w.f.Name(), err)
		}
	}
}

// Err returns the first append failure, or nil while every record has
// reached the log. A nil wal (shard without a DataDir) never fails.
func (w *wal) Err() error {
	if w == nil {
		return nil
	}
	return w.err
}

func (w *wal) Close() {
	if w != nil && w.f != nil {
		_ = w.f.Close()
	}
}

// readWALState replays a shard's log without starting the shard — how
// RemoveShard extracts a dead member's state for migration. A missing file
// yields empty state, not an error.
func readWALState(path string) (deposits []walDeposit, flags map[core.PeerID]uint32, err error) {
	if _, statErr := os.Stat(path); os.IsNotExist(statErr) {
		return nil, nil, nil
	}
	flags = make(map[core.PeerID]uint32)
	w, err := openWAL(path,
		func(d walDeposit) { deposits = append(deposits, d) },
		func(p core.PeerID, n uint32) { flags[p] += n },
	)
	if err != nil {
		return nil, nil, err
	}
	w.Close()
	return deposits, flags, nil
}
